#include "data/dataset_io.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace gm::data {
namespace {

std::string at_line(std::size_t line_no, const std::string& what) {
  return "line " + std::to_string(line_no) + ": " + what;
}

bool is_letter_token(char c) { return c >= 'A' && c <= 'Z'; }
bool is_digit_token(char c) { return c >= '0' && c <= '9'; }
bool is_blank(char c) { return c == ' ' || c == '\t' || c == '\r'; }

}  // namespace

Dataset read_dataset(std::istream& in) {
  std::string line;
  std::size_t line_no = 0;
  int alphabet_size = -1;

  // Header: first significant line must be "alphabet <N>".
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream header(line);
    std::string keyword;
    header >> keyword >> alphabet_size;
    gm::expects(keyword == "alphabet" && alphabet_size >= 1 && alphabet_size <= 255,
                at_line(line_no, "dataset must start with 'alphabet <N>' (1 <= N <= 255)"));
    break;
  }
  gm::expects(alphabet_size >= 1, "dataset missing 'alphabet <N>' header");

  Dataset dataset{core::Alphabet(alphabet_size), {}};
  // The event encoding — letters ('A'..) or whitespace-separated decimal ids —
  // is detected from the data itself: the first event character decides.
  // (Guessing from the alphabet size misparsed numeric files with <= 26
  // symbols into baffling out-of-alphabet errors.)
  enum class Format { kUnknown, kLetters, kNumeric };
  Format format = Format::kUnknown;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    if (format == Format::kUnknown) {
      const char c = line[first];
      gm::expects(is_letter_token(c) || is_digit_token(c),
                  at_line(line_no, std::string("unrecognized event data starting with '") + c +
                                       "' (expected 'A'.. letters or decimal ids)"));
      format = is_letter_token(c) ? Format::kLetters : Format::kNumeric;
    }
    if (format == Format::kLetters) {
      for (const char c : line) {
        if (is_blank(c)) continue;
        gm::expects(is_letter_token(c),
                    at_line(line_no, std::string("event '") + c +
                                         "' is not a letter in a letter-format dataset"));
        const int v = c - 'A';
        gm::expects(v < alphabet_size,
                    at_line(line_no, std::string("event '") + c +
                                         "' outside the declared alphabet of " +
                                         std::to_string(alphabet_size) + " symbols"));
        dataset.events.push_back(static_cast<core::Symbol>(v));
      }
    } else {
      std::istringstream tokens(line);
      std::string token;
      while (tokens >> token) {
        int v = -1;
        try {
          std::size_t consumed = 0;
          v = std::stoi(token, &consumed);
          gm::expects(consumed == token.size(), at_line(line_no, "event id '" + token +
                                                                     "' is not a decimal number"));
        } catch (const std::logic_error&) {  // invalid_argument / out_of_range
          gm::raise_precondition(
              at_line(line_no, "event id '" + token + "' is not a decimal number"));
        }
        gm::expects(v >= 0 && v < alphabet_size,
                    at_line(line_no, "event id " + std::to_string(v) +
                                         " outside the declared alphabet of " +
                                         std::to_string(alphabet_size) + " symbols"));
        dataset.events.push_back(static_cast<core::Symbol>(v));
      }
    }
  }
  return dataset;
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  gm::expects(static_cast<bool>(in), "cannot open dataset file: " + path);
  return read_dataset(in);
}

void write_dataset(std::ostream& out, const Dataset& dataset) {
  out << "# gpuminer dataset\n";
  out << "alphabet " << dataset.alphabet.size() << "\n";
  const bool letters = dataset.alphabet.size() <= 26;
  constexpr std::size_t kWrap = 80;
  std::size_t column = 0;
  for (const core::Symbol s : dataset.events) {
    gm::expects(dataset.alphabet.contains(s), "event outside the dataset's alphabet");
    if (letters) {
      out << static_cast<char>('A' + s);
      if (++column == kWrap) {
        out << "\n";
        column = 0;
      }
    } else {
      out << static_cast<int>(s);
      out << ((++column % 20 == 0) ? "\n" : " ");
    }
  }
  if (column != 0) out << "\n";
}

void save_dataset(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  gm::expects(static_cast<bool>(out), "cannot create dataset file: " + path);
  write_dataset(out, dataset);
}

}  // namespace gm::data

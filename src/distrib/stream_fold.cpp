#include "distrib/stream_fold.hpp"

#include <array>
#include <utility>

#include "common/error.hpp"
#include "core/automaton.hpp"

namespace gm::distrib {

ChunkScan cold_scan_chunk(std::span<const core::Episode> episodes, core::Semantics semantics,
                          core::ExpiryPolicy expiry, std::vector<core::Symbol> events,
                          std::int64_t base) {
  gm::expects(base >= 0, "chunk base position cannot be negative");
  ChunkScan chunk;
  chunk.begin = base;
  chunk.events = std::move(events);
  chunk.cold.reserve(episodes.size());
  for (const core::Episode& episode : episodes) {
    core::EpisodeAutomaton automaton(episode.symbols(), semantics, expiry);
    core::SegmentOutcome out;
    for (std::size_t i = 0; i < chunk.events.size(); ++i) {
      if (automaton.step(chunk.events[i], base + static_cast<std::int64_t>(i))) ++out.count;
    }
    out.exit_state = automaton.state();
    out.first_match_pos = automaton.first_match_pos();
    chunk.cold.push_back(out);
  }
  return chunk;
}

StreamAssembler::StreamAssembler(std::vector<core::Episode> episodes,
                                 core::Semantics semantics, core::ExpiryPolicy expiry)
    : episodes_(std::move(episodes)),
      semantics_(semantics),
      expiry_(expiry),
      prefix_digest_(core::stream_digest_seed()),
      counts_(episodes_.size(), 0),
      progress_(episodes_.size()) {}

StreamAssembler::StreamAssembler(const core::ScanCheckpoint& checkpoint)
    : episodes_(checkpoint.episodes),
      semantics_(checkpoint.semantics),
      expiry_(checkpoint.expiry),
      high_water_(checkpoint.high_water),
      prefix_digest_(checkpoint.prefix_digest),
      progress_(checkpoint.progress) {
  gm::expects(progress_.size() == episodes_.size(),
              "checkpoint progress must be parallel to its episode list");
  counts_.reserve(progress_.size());
  for (const core::EpisodeProgress& p : progress_) counts_.push_back(p.count);
}

std::size_t StreamAssembler::deliver(ChunkScan chunk) {
  gm::expects(chunk.cold.size() == episodes_.size(),
              "chunk cold outcomes must be parallel to the episode list");
  gm::expects(chunk.begin >= high_water_, "chunk overlaps the already-folded prefix");
  const std::int64_t end = chunk.begin + static_cast<std::int64_t>(chunk.events.size());
  // Reject overlap with parked neighbours: chunks must tile the stream.
  const auto next = pending_.lower_bound(chunk.begin);
  gm::expects(next == pending_.end() || end <= next->first,
              "chunk overlaps a parked chunk");
  if (next != pending_.begin()) {
    const auto prev = std::prev(next);
    gm::expects(prev->first + static_cast<std::int64_t>(prev->second.events.size()) <=
                    chunk.begin,
                "chunk overlaps a parked chunk");
  }
  const bool ready = chunk.begin == high_water_;
  pending_.emplace(chunk.begin, std::move(chunk));
  if (!ready) return 0;
  const std::size_t before = pending_.size();
  fold_ready();
  return before - pending_.size();
}

void StreamAssembler::fold_ready() {
  while (true) {
    const auto it = pending_.find(high_water_);
    if (it == pending_.end()) return;
    const ChunkScan& chunk = it->second;
    const std::int64_t end =
        chunk.begin + static_cast<std::int64_t>(chunk.events.size());
    const std::array<std::int64_t, 2> bounds{chunk.begin, end};
    for (std::size_t i = 0; i < episodes_.size(); ++i) {
      core::SegmentOutcome exit;
      std::int64_t rescanned = 0;
      const std::int64_t completed = core::fold_cold_scans(
          episodes_[i].symbols(), semantics_, expiry_, chunk.events, chunk.begin, bounds,
          std::span<const core::SegmentOutcome>(&chunk.cold[i], 1), progress_[i].state,
          progress_[i].first_pos, &exit, &rescanned);
      counts_[i] += completed;
      progress_[i] = {counts_[i], exit.first_match_pos, exit.exit_state};
      rescanned_ += rescanned;
    }
    prefix_digest_ = core::stream_digest_extend(prefix_digest_, chunk.events);
    high_water_ = end;
    pending_.erase(it);
  }
}

core::ScanCheckpoint StreamAssembler::checkpoint(std::uint64_t generation) const {
  core::ScanCheckpoint out;
  out.semantics = semantics_;
  out.expiry = expiry_;
  out.high_water = high_water_;
  out.prefix_digest = prefix_digest_;
  out.generation = generation;
  out.episodes = episodes_;
  out.progress = progress_;
  return out;
}

}  // namespace gm::distrib

// Dataset I/O round-trip and format-validation tests.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"
#include "data/dataset_io.hpp"
#include "data/generators.hpp"

namespace gm::data {
namespace {

TEST(DatasetIo, LetterRoundTrip) {
  Dataset original{core::Alphabet(26), core::Alphabet(26).parse("HELLOWORLD")};
  std::stringstream buffer;
  write_dataset(buffer, original);
  const Dataset loaded = read_dataset(buffer);
  EXPECT_EQ(loaded.alphabet.size(), 26);
  EXPECT_EQ(loaded.events, original.events);
}

TEST(DatasetIo, NumericRoundTripForLargeAlphabets) {
  Dataset original{core::Alphabet(100), {0, 42, 99, 7, 42}};
  std::stringstream buffer;
  write_dataset(buffer, original);
  const Dataset loaded = read_dataset(buffer);
  EXPECT_EQ(loaded.alphabet.size(), 100);
  EXPECT_EQ(loaded.events, original.events);
}

TEST(DatasetIo, LargeGeneratedRoundTrip) {
  Dataset original{core::Alphabet(26),
                   uniform_database(core::Alphabet(26), 10'000, 4)};
  std::stringstream buffer;
  write_dataset(buffer, original);
  EXPECT_EQ(read_dataset(buffer).events, original.events);
}

TEST(DatasetIo, CommentsAndWhitespaceIgnored) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "alphabet 4\n"
      "# events follow\n"
      "AB BA\n"
      "  CD\n");
  const Dataset dataset = read_dataset(in);
  EXPECT_EQ(dataset.events, (core::Sequence{0, 1, 1, 0, 2, 3}));
}

TEST(DatasetIo, MissingHeaderRejected) {
  std::stringstream in("ABC\n");
  EXPECT_THROW((void)read_dataset(in), gm::PreconditionError);
}

TEST(DatasetIo, OutOfAlphabetEventRejected) {
  std::stringstream letters("alphabet 3\nABD\n");
  EXPECT_THROW((void)read_dataset(letters), gm::PreconditionError);
  std::stringstream ids("alphabet 30\n1 2 30\n");
  EXPECT_THROW((void)read_dataset(ids), gm::PreconditionError);
}

// Regression: the reader used to assume letter format whenever N <= 26, so a
// numeric-token file with a small alphabet misparsed into out-of-alphabet
// errors.  The encoding must be detected from the data, not the header.
TEST(DatasetIo, NumericTokensWithSmallAlphabetParse) {
  std::stringstream in(
      "alphabet 5\n"
      "0 1 2\n"
      "4 3\n");
  const Dataset dataset = read_dataset(in);
  EXPECT_EQ(dataset.events, (core::Sequence{0, 1, 2, 4, 3}));
}

TEST(DatasetIo, LetterTokensWithLargeAlphabetParse) {
  std::stringstream in("alphabet 100\nABBA\n");
  EXPECT_EQ(read_dataset(in).events, (core::Sequence{0, 1, 1, 0}));
}

TEST(DatasetIo, ParseErrorsNameTheLine) {
  auto message_of = [](const std::string& text) -> std::string {
    std::stringstream in(text);
    try {
      (void)read_dataset(in);
    } catch (const gm::PreconditionError& e) {
      return e.what();
    }
    return "";
  };
  EXPECT_NE(message_of("alphabet 3\nAB\nABD\n").find("line 3"), std::string::npos);
  EXPECT_NE(message_of("alphabet 30\n1 2\n1 30\n").find("line 3"), std::string::npos);
  EXPECT_NE(message_of("alphabet 0\n").find("line 1"), std::string::npos);
  EXPECT_NE(message_of("# intro\nalphabet 4\n?!\n").find("line 3"), std::string::npos);
  // Mixed encodings are rejected, not silently reinterpreted.
  EXPECT_NE(message_of("alphabet 26\n0 1 2\nABC\n").find("line 3"), std::string::npos);
  EXPECT_NE(message_of("alphabet 26\n0 1 2x\n").find("not a decimal"), std::string::npos);
}

TEST(DatasetIo, MissingFileRejected) {
  EXPECT_THROW((void)load_dataset("/nonexistent/path/data.txt"), gm::PreconditionError);
}

TEST(DatasetIo, FileRoundTrip) {
  const std::string path = "/tmp/gm_dataset_io_test.txt";
  Dataset original{core::Alphabet(26), core::Alphabet(26).parse("GPUMINING")};
  save_dataset(path, original);
  const Dataset loaded = load_dataset(path);
  EXPECT_EQ(loaded.events, original.events);
}

}  // namespace
}  // namespace gm::data

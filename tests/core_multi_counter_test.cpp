// Exact-equality tests for the single-scan multi-episode engine: randomized
// cross-checks against the per-episode serial reference across both counting
// semantics and expiry windows, plus directed cases for the tricky automaton
// interactions (repeated-symbol episodes, expiry re-bucketing).
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/multi_counter.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "random_episode_util.hpp"

namespace gm::core {
namespace {

using test::random_episodes;

TEST(SingleScan, MatchesSerialOnRandomizedWorkloads) {
  Rng rng(0xC0FFEE);
  const Semantics all_semantics[] = {Semantics::kNonOverlappedSubsequence,
                                     Semantics::kContiguousRestart};
  const std::int64_t windows[] = {0, 1, 2, 3, 7, 16};
  for (int trial = 0; trial < 40; ++trial) {
    const auto alphabet_size = static_cast<int>(rng.between(2, 24));
    const Alphabet alphabet(alphabet_size);
    const auto db = (trial % 2 == 0)
                        ? data::uniform_database(alphabet, 1500, rng())
                        : data::markov_database(alphabet, 1500, 0.6, rng());
    const auto episodes =
        random_episodes(rng, alphabet_size, static_cast<int>(rng.between(1, 40)), 4);
    for (const Semantics semantics : all_semantics) {
      for (const std::int64_t window : windows) {
        const ExpiryPolicy expiry{window};
        const auto expected = count_all(episodes, db, semantics, expiry);
        const auto actual = count_all_single_scan(episodes, db, semantics, expiry);
        ASSERT_EQ(actual, expected)
            << "trial " << trial << " alphabet " << alphabet_size << " semantics "
            << to_string(semantics) << " window " << window;
      }
    }
  }
}

TEST(SingleScan, RepeatedSymbolEpisodeConsumesOneEventPerStep) {
  // <A,A> over "AAAA": the serial automaton pairs events greedily -> 2.
  const std::vector<Episode> episodes = {Episode({0, 0})};
  const Sequence db = {0, 0, 0, 0};
  const auto counts =
      count_all_single_scan(episodes, db, Semantics::kNonOverlappedSubsequence);
  EXPECT_EQ(counts, (std::vector<std::int64_t>{2}));
}

TEST(SingleScan, ExpiredAutomatonCatchesFreshFirstSymbol) {
  // <A,B> with window 2 over "A C C A B": the first A's match expires at the
  // second C; the automaton must be re-bucketed to await A again, catch the
  // second A, and complete on B.
  const std::vector<Episode> episodes = {Episode({0, 1})};
  const Sequence db = {0, 2, 2, 0, 1};
  const auto counts = count_all_single_scan(episodes, db,
                                            Semantics::kNonOverlappedSubsequence,
                                            ExpiryPolicy{2});
  EXPECT_EQ(counts, count_all(episodes, db, Semantics::kNonOverlappedSubsequence,
                              ExpiryPolicy{2}));
  EXPECT_EQ(counts, (std::vector<std::int64_t>{1}));
}

TEST(SingleScan, StaleBucketEntryCannotDoubleStepAfterExpiry) {
  // Adversarial case for the generation tags: episode <B,B>, so the expiry
  // re-bucket files the automaton into the SAME bucket its stale entry lives
  // in.  One B event must advance the automaton exactly once.
  const std::vector<Episode> episodes = {Episode({1, 1})};
  // B at 0 starts a match (awaits B, deadline 2); A's let it expire; then two
  // B's form exactly one occurrence.
  const Sequence db = {1, 0, 0, 1, 1};
  const ExpiryPolicy expiry{2};
  const auto expected = count_all(episodes, db, Semantics::kNonOverlappedSubsequence, expiry);
  const auto actual =
      count_all_single_scan(episodes, db, Semantics::kNonOverlappedSubsequence, expiry);
  EXPECT_EQ(actual, expected);
  EXPECT_EQ(actual, (std::vector<std::int64_t>{1}));
}

// Regression: deadlines are first_pos + window; a near-INT64_MAX window from
// the CLI must not overflow (the serial automaton's subtraction form never
// does), it must simply never expire anything.
TEST(SingleScan, HugeExpiryWindowDoesNotOverflow) {
  const std::vector<Episode> episodes = {Episode({0, 1}), Episode({1, 0, 1})};
  const Sequence db = {0, 2, 1, 0, 1, 1, 0};
  const ExpiryPolicy huge{std::numeric_limits<std::int64_t>::max()};
  EXPECT_EQ(count_all_single_scan(episodes, db, Semantics::kNonOverlappedSubsequence, huge),
            count_all(episodes, db, Semantics::kNonOverlappedSubsequence, huge));
}

TEST(SingleScan, DuplicateEpisodesCountIndependently) {
  const std::vector<Episode> episodes = {Episode({0, 1}), Episode({0, 1}), Episode({1})};
  const Sequence db = {0, 1, 0, 1, 1};
  const auto counts =
      count_all_single_scan(episodes, db, Semantics::kNonOverlappedSubsequence);
  EXPECT_EQ(counts, (std::vector<std::int64_t>{2, 2, 3}));
}

TEST(SingleScan, EmptyInputsHandled) {
  const Sequence db = {0, 1, 2};
  EXPECT_TRUE(count_all_single_scan({}, db, Semantics::kNonOverlappedSubsequence).empty());
  const std::vector<Episode> episodes = {Episode({0, 1})};
  EXPECT_EQ(count_all_single_scan(episodes, {}, Semantics::kNonOverlappedSubsequence),
            (std::vector<std::int64_t>{0}));
}

TEST(SingleScan, ContiguousRestartDensePathMatchesSerial) {
  Rng rng(77);
  const Alphabet alphabet(5);
  const auto db = data::markov_database(alphabet, 3000, 0.5, 123);
  const auto episodes = random_episodes(rng, 5, 25, 3);
  for (const std::int64_t window : {std::int64_t{0}, std::int64_t{4}}) {
    EXPECT_EQ(count_all_single_scan(episodes, db, Semantics::kContiguousRestart,
                                    ExpiryPolicy{window}),
              count_all(episodes, db, Semantics::kContiguousRestart, ExpiryPolicy{window}));
  }
}

}  // namespace
}  // namespace gm::core

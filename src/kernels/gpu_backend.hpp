// Counting backend that runs the episode-counting step on the simulated GPU:
// functional execution for exact counts plus a cost-model prediction of the
// kernel time on the configured card.  Plugs into core::mine_frequent_episodes
// so the full miner (paper Algorithm 1) can run "on" any of the three cards
// with any of the four algorithms.
#pragma once

#include "core/counting.hpp"
#include "kernels/mining_kernels.hpp"
#include "sim/cost_model.hpp"

namespace gm::kernels {

class SimGpuBackend final : public core::CountingBackend {
 public:
  SimGpuBackend(gpusim::DeviceSpec device, MiningLaunchParams params,
                gpusim::CostParams cost_params = {}, gpusim::EngineOptions engine_options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] core::CountResult count(const core::CountRequest& request) override;
  /// The kernels stage episodes into a fixed frame-register array, capping
  /// the level at kernels::kMaxLevel.
  [[nodiscard]] int max_level() const override { return kMaxLevel; }

  [[nodiscard]] const gpusim::DeviceSpec& device() const noexcept { return engine_.spec(); }
  [[nodiscard]] const MiningLaunchParams& params() const noexcept { return params_; }

 private:
  gpusim::Engine engine_;
  MiningLaunchParams params_;
  gpusim::CostModel cost_model_;
};

}  // namespace gm::kernels

#include "planner/auto_backend.hpp"

#include <utility>

#include "common/error.hpp"
#include "planner/workload.hpp"

namespace gm::planner {

AutoBackend::AutoBackend(PlannerOptions options) : options_(std::move(options)) {}

std::string AutoBackend::name() const { return "auto(" + options_.device.name + ")"; }

int AutoBackend::max_level() const {
  return options_.enable_cpu ? 0 : kernels::kMaxLevel;
}

core::CountResult AutoBackend::count(const core::CountRequest& request) {
  gm::expects(!request.episodes.empty(), "count request carries no episodes");

  // Measuring the database statistics costs one O(|DB|) pass per level —
  // noise next to the counting work it steers (>= O(|DB| * |eps|)), and
  // recomputing beats caching by span identity, which a freed-and-reused
  // allocation would silently satisfy for a different stream.
  const Workload workload = workload_of(request);

  Plan plan = plan_level(workload, options_);
  const std::string key = plan.winner().config.label();
  const double predicted_ms = plan.winner().predicted_ms;
  const bool is_gpu = plan.winner().config.kind == BackendKind::kGpuSim;
  auto [it, inserted] = backends_.try_emplace(key, nullptr);
  if (inserted) it->second = make_planned_backend(plan.winner().config, options_);
  plans_.push_back(std::move(plan));
  core::CountResult result = it->second->count(request);

  // Online feedback: fold measured/predicted into the winner's bias with
  // recency weighting.  predicted_ms already carries the current bias, so
  // divide it back out to compare against the raw model value — otherwise a
  // stable 2x model error would compound to 4x, 8x, ... instead of settling
  // at a 2x multiplier.
  const double measured_ms = is_gpu ? result.simulated_kernel_ms : result.host_ms;
  // Same precedence plan_level applies: label match, then kind name.
  auto prior_it = options_.measured_bias.find(key);
  if (prior_it == options_.measured_bias.end()) {
    prior_it = options_.measured_bias.find(
        std::string(backend_kind_name(plans_.back().winner().config.kind)));
  }
  const double prior = prior_it == options_.measured_bias.end() ? 1.0 : prior_it->second;
  const double raw_predicted_ms = predicted_ms / prior;
  const double observed =
      (measured_ms + kFeedbackFloorMs) / (raw_predicted_ms + kFeedbackFloorMs);
  options_.measured_bias[key] = (1.0 - kFeedbackBlend) * prior + kFeedbackBlend * observed;
  return result;
}

}  // namespace gm::planner

// service_demo — the mining-as-a-service API in one page.
//
// Builds a session over a synthetic database, stands up a MiningService, and
// walks the request lifecycle a client sees: a fresh mine, the same query
// again (cache hit), a batched burst of count requests, a request rejected by
// planner-driven admission control, and a database reload invalidating the
// cache.  Every outcome arrives as a structured response — no exceptions
// cross the service boundary.
#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "data/generators.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

int main() {
  using namespace gm;

  data::Dataset dataset{core::Alphabet::english_uppercase(), {}};
  dataset.events = data::uniform_database(dataset.alphabet, 20'000, 7);

  auto session = std::make_shared<service::MiningSession>(
      dataset, service::SessionOptions{.backend = {.name = "auto", .threads = 2}});
  service::MiningService service(session, {.workers = 2});

  // 1. A fresh mining run.  The response carries the result, per-level plan
  //    notes from the adaptive planner, and timing.
  service::MineRequest mine;
  mine.config.support_threshold = 0.004;
  mine.config.max_level = 2;
  mine.client = "demo";
  service::MineResponse first = service.submit(mine).get();
  std::printf("mine #1: %s, %lld frequent episodes in %.2f ms\n",
              std::string(to_string(first.disposition)).c_str(),
              static_cast<long long>(first.result.total_frequent()), first.timing.service_ms);
  for (const std::string& note : first.plan_notes) std::printf("  %s\n", note.c_str());

  // 2. The same query again: served from the result cache, bit-identical.
  service::MineResponse repeat = service.submit(mine).get();
  std::printf("mine #2: %s in %.3f ms (generation %llu)\n",
              std::string(to_string(repeat.disposition)).c_str(), repeat.timing.service_ms,
              static_cast<unsigned long long>(repeat.database_generation));

  // 3. A burst of compatible count requests (same level/semantics/expiry,
  //    distinct episode sets): a worker drains them into one shared backend
  //    call (batched_with > 0).  start_paused queues the whole burst first,
  //    so the batching is deterministic — under live traffic the same
  //    merging happens opportunistically.
  service::MiningService batcher(session, {.workers = 1, .start_paused = true});
  const char* pairs[] = {"AB", "CD", "EF", "GH", "IJ", "KL"};
  std::vector<std::future<service::CountResponse>> burst;
  for (const char* pair : pairs) {
    service::CountRequest count;
    count.episodes = {core::Episode::from_text(dataset.alphabet, pair)};
    burst.push_back(batcher.submit(count));
  }
  batcher.resume();
  for (auto& future : burst) {
    const service::CountResponse response = future.get();
    std::printf("count: %s, counts[0]=%lld, batched with %d other request(s)\n",
                std::string(to_string(response.disposition)).c_str(),
                static_cast<long long>(response.counts.empty() ? -1 : response.counts[0]),
                response.batched_with);
  }

  // 4. Admission control: an impossible latency budget is rejected before
  //    any counting runs, with a machine-readable code and the planner's
  //    prediction in the reason.  (A different shape from the query above —
  //    a cached answer is free, so repeats are served whatever the budget.)
  service::MineRequest hopeless = mine;
  hopeless.config.max_level = 3;
  hopeless.limits.latency_budget_ms = 1e-6;
  const service::MineResponse rejected = service.submit(hopeless).get();
  std::printf("budgeted mine: %s [%s] %s\n",
              std::string(to_string(rejected.disposition)).c_str(),
              std::string(rejected.rejection.code_name()).c_str(),
              rejected.rejection.reason.c_str());

  // 5. Reload: new data, new generation, caches invalidated atomically.
  dataset.events = data::uniform_database(dataset.alphabet, 30'000, 8);
  session->reload(dataset);
  const service::MineResponse fresh = service.submit(mine).get();
  std::printf("after reload: %s (generation %llu, %lld frequent)\n",
              std::string(to_string(fresh.disposition)).c_str(),
              static_cast<unsigned long long>(fresh.database_generation),
              static_cast<long long>(fresh.result.total_frequent()));

  const service::ServiceStats stats = service.stats();
  std::printf("stats: submitted=%llu served=%llu cached=%llu rejected=%llu batched=%llu\n",
              static_cast<unsigned long long>(stats.submitted),
              static_cast<unsigned long long>(stats.served),
              static_cast<unsigned long long>(stats.cached),
              static_cast<unsigned long long>(stats.rejected),
              static_cast<unsigned long long>(stats.batched));
  return 0;
}

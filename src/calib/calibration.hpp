// CalibrationProfile: every runtime-fittable cost constant of the analytic
// models — the kernel workload models' per-loop instruction charges
// (kernels::KernelCostProfile) and the CPU cost curves' per-operation
// nanosecond costs (planner::CpuCostConstants) — as one value type with a
// name->field registry, JSON persistence, and an applicator into
// planner::PlannerOptions.
//
// A default-constructed profile is the *shipped* profile: it carries exactly
// the compile-time constants the models default to, so predictions through
// it are bit-identical to the constant-free call paths (pinned by
// tests/calib_test.cpp).  `backend_shootout --fit-calibration` produces a
// *fitted* profile from measured (candidate, time) samples (see fitter.hpp);
// `--calibration <file>` on the CLI surface loads one back.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "kernels/cost_constants.hpp"
#include "planner/cpu_cost_model.hpp"

namespace gm::planner {
struct PlannerOptions;
}

namespace gm::calib {

/// The JSON `schema` tag this build writes and accepts.
inline constexpr std::string_view kProfileSchema = "gm-calibration/1";

struct CalibrationProfile {
  kernels::KernelCostProfile kernel;
  planner::CpuCostConstants cpu;

  /// Provenance: "shipped" for the built-in defaults, "fitted" for the
  /// output of fit_profile.  Free-form beyond those two.
  std::string source = "shipped";
  /// Where the fit ran (free-form; the shootout records its workload shape
  /// and seed here so a profile is traceable to the run that produced it).
  std::string host;
  /// Measured samples behind a fitted profile (0 for shipped).
  int sample_count = 0;
};

/// One fittable scalar: its serialized name ("kernel.bucket_probe_instr",
/// "cpu.serial_step_ns") and an accessor into the profile.
struct ParamRef {
  std::string_view name;
  double& (*ref)(CalibrationProfile&);
};

/// Every fittable parameter, in serialization order.  JSON I/O and the
/// fitter both iterate this registry, so adding a field to either constants
/// struct means adding exactly one row here (enforced by a size check in
/// calib_test).
[[nodiscard]] const std::vector<ParamRef>& calibration_params();

/// Registry-based access by serialized name; unknown names throw
/// gm::PreconditionError listing the valid ones, and set_param rejects
/// negative values (every constant is a non-negative cost).
[[nodiscard]] double get_param(const CalibrationProfile& profile, std::string_view name);
void set_param(CalibrationProfile& profile, std::string_view name, double value);

/// Install the profile's constants into a planner-options block (the single
/// integration point: AutoBackend, the shootout, and planner_explain all
/// consume profiles this way).
void apply_profile(const CalibrationProfile& profile, planner::PlannerOptions& options);

/// JSON persistence.  Writing uses the shortest-round-trip double format, so
/// save -> load is lossless (pinned by test).  Reading rejects a wrong
/// schema tag, unknown parameter names, and negative values.
[[nodiscard]] std::string to_json(const CalibrationProfile& profile);
[[nodiscard]] CalibrationProfile profile_from_json(std::string_view text);
[[nodiscard]] CalibrationProfile load_profile(const std::string& path);
void save_profile(const CalibrationProfile& profile, const std::string& path);

}  // namespace gm::calib

// MapReduce engine and episode-counting job tests.
#include <gtest/gtest.h>

#include <string>

#include "core/candidate_gen.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "mapreduce/episode_job.hpp"
#include "mapreduce/mapreduce.hpp"

namespace gm::mapreduce {
namespace {

using core::Alphabet;
using core::Semantics;

TEST(MapReduce, WordCount) {
  const std::vector<std::string> docs = {"a b a", "b c", "a"};
  Job<std::string, char, int> job;
  job.threads = 2;
  job.map = [](const std::string& doc, Emitter<char, int>& emitter) {
    for (char c : doc) {
      if (c != ' ') emitter.emit(c, 1);
    }
  };
  job.reduce = [](const char&, const std::vector<int>& values) {
    int sum = 0;
    for (int v : values) sum += v;
    return sum;
  };
  const auto result = run(job, docs);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0], (std::pair<char, int>{'a', 3}));
  EXPECT_EQ(result[1], (std::pair<char, int>{'b', 2}));
  EXPECT_EQ(result[2], (std::pair<char, int>{'c', 1}));
}

TEST(MapReduce, EmptyInputYieldsEmptyOutput) {
  Job<int, int, int> job;
  job.map = [](const int& v, Emitter<int, int>& e) { e.emit(v, 1); };
  job.reduce = [](const int&, const std::vector<int>& vs) { return static_cast<int>(vs.size()); };
  EXPECT_TRUE(run(job, {}).empty());
}

TEST(MapReduce, MissingFunctionsRejected) {
  Job<int, int, int> job;
  EXPECT_THROW((void)run(job, {1}), gm::PreconditionError);
}

TEST(MapReduce, DeterministicAcrossThreadCounts) {
  Job<int, int, long> job;
  job.map = [](const int& v, Emitter<int, long>& e) { e.emit(v % 7, v); };
  job.reduce = [](const int&, const std::vector<long>& vs) {
    long sum = 0;
    for (long v : vs) sum += v;
    return sum;
  };
  std::vector<int> inputs;
  for (int i = 0; i < 500; ++i) inputs.push_back(i);

  job.threads = 1;
  const auto one = run(job, inputs);
  job.threads = 4;
  const auto four = run(job, inputs);
  EXPECT_EQ(one, four);
}

class EpisodeJobProperty : public ::testing::TestWithParam<int /*chunks*/> {};

TEST_P(EpisodeJobProperty, BothGranularitiesMatchTheOracle) {
  const int chunks = GetParam();
  const Alphabet alphabet(5);
  const auto db = data::uniform_database(alphabet, 3001, 77);

  for (int level = 1; level <= 3; ++level) {
    const auto episodes = core::all_distinct_episodes(alphabet, level);
    const auto expected = core::count_all(episodes, db, Semantics::kNonOverlappedSubsequence);

    EpisodeCountOptions options;
    options.threads = 2;
    options.chunks = chunks;
    EXPECT_EQ(count_episodes_thread_level(db, episodes, options), expected)
        << "thread-level, L" << level;
    EXPECT_EQ(count_episodes_block_level(db, episodes, options), expected)
        << "block-level, L" << level << " chunks " << chunks;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EpisodeJobProperty, ::testing::Values(1, 4, 13, 64));

TEST(EpisodeJob, BlockLevelExpiryMatchesChunkedReference) {
  const Alphabet alphabet(4);
  const auto db = data::uniform_database(alphabet, 2000, 13);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);
  const core::ExpiryPolicy expiry{6};

  EpisodeCountOptions options;
  options.chunks = 8;
  options.expiry = expiry;
  const auto counts = count_episodes_block_level(db, episodes, options);

  const auto bounds = core::chunk_boundaries(static_cast<std::int64_t>(db.size()), 8);
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const auto expected = core::count_with_boundaries(
        episodes[i], db, bounds, Semantics::kNonOverlappedSubsequence, expiry,
        core::SpanningFix::kOverlapRescan);
    EXPECT_EQ(counts[i], expected) << episodes[i].to_string(alphabet);
  }
}

}  // namespace
}  // namespace gm::mapreduce

// `--backend auto`: a CountingBackend that re-plans at every counting level.
//
// Each count() call is one mining level, and the candidate set shrinks (or
// explodes) level by level — exactly the axis along which the paper observes
// the winning formulation flipping.  AutoBackend measures the workload shape
// of the incoming request, asks the planner for this level's winner, lazily
// constructs that backend, and delegates.  The full per-level decision
// history stays queryable so the CLI can report what was picked and why.
//
// Online feedback: after every delegated count() the backend compares the
// measured time (wall-clock for CPU formulations, engine-measured kernel
// time for gpusim) against the plan's prediction and folds the ratio into
// its in-memory profile as a recency-weighted bias multiplier
// (PlannerOptions::measured_bias, keyed by candidate label).  A formulation
// that keeps under-delivering gets progressively discounted, so long mining
// runs self-correct mid-session; load a fitted CalibrationProfile (calib/)
// into the options to start from host-measured constants instead of the
// shipped ones.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "planner/planner.hpp"

namespace gm::planner {

class AutoBackend final : public core::CountingBackend {
 public:
  explicit AutoBackend(PlannerOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] core::CountResult count(const core::CountRequest& request) override;
  /// Unbounded when the CPU family is enabled (the planner falls back to a
  /// CPU formulation past the GPU kernels' level cap); otherwise the cap is
  /// the GPU kernels'.
  [[nodiscard]] int max_level() const override;

  /// One plan per count() call, in call order.
  [[nodiscard]] const std::vector<Plan>& plans() const noexcept { return plans_; }
  [[nodiscard]] const PlannerOptions& options() const noexcept { return options_; }

  /// The live measured-bias multipliers (candidate label -> measured /
  /// predicted EWMA) accumulated from delegated count() calls.
  [[nodiscard]] const std::map<std::string, double>& feedback() const noexcept {
    return options_.measured_bias;
  }

  /// EWMA weight of the newest measured/predicted observation.
  static constexpr double kFeedbackBlend = 0.4;
  /// Noise floor (ms) on both sides of the observed ratio, mirroring the
  /// shootout's regret floor: sub-floor levels cannot swing the bias.
  static constexpr double kFeedbackFloorMs = 0.05;

 private:
  PlannerOptions options_;
  std::vector<Plan> plans_;
  /// Constructed backends by candidate label: a formulation that wins several
  /// levels is built once (SimGpuBackend construction stages an engine).
  std::map<std::string, std::unique_ptr<core::CountingBackend>> backends_;
};

}  // namespace gm::planner

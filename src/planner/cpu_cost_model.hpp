// Analytic cost curves of the four CPU counting backends, the host-side
// counterpart of kernels/workload_model.hpp: given a workload shape, predict
// each backend's wall-clock in milliseconds from measured per-operation
// constants (the cost_constants.hpp calibration style, applied to host code).
//
// The curves mirror the complexity table in core/cpu_backend.hpp:
//
//   cpu-serial        |DB| * |eps| automaton steps
//   cpu-parallel      serial work / min(t, |eps|) + per-worker spawn cost
//   cpu-sharded       |DB| * |eps| * L transfer steps / t + compose fold
//                     (expiry degrades it to the episode-parallel curve)
//   cpu-single-scan   |DB| probes + |DB| * |eps| * drain_rate drains
//                     (contiguous restart falls back to the dense scan)
//   cpu-trie-scan     |DB| probes + drains * prefix_compression token drains
//                     + drains / L accepts (shared-prefix trie engine; same
//                     dense fallback as cpu-single-scan under contiguous
//                     restart, so the flat engine wins that tie by label)
//
// drain_rate is the same skew-aware bucket-occupancy term the Algorithm-5
// device model uses (kernels::bucket_drain_rate), so CPU and GPU predictions
// stay comparable on skewed streams.
#pragma once

#include "planner/workload.hpp"

namespace gm::planner {

/// Measured per-operation constants in nanoseconds (except the thread spawn
/// cost, in microseconds).  Defaults were calibrated against backend_shootout
/// wall-clock measurements on a contemporary x86-64 host at -O2 (see
/// bench/backend_shootout.cpp --validate-planner for the live residuals);
/// they are first-order inputs, not guarantees — the planner's regret gate
/// tolerates a 2x model error.
struct CpuCostConstants {
  /// One automaton step of count_occurrences (fetch + compare + advance).
  double serial_step_ns = 1.1;
  /// The same step with expiry enabled: the scan additionally tracks the
  /// match-start position and tests the window, roughly doubling the
  /// per-symbol cost (measured, not derived).
  double serial_expiry_step_ns = 2.0;
  /// One (entry-state, symbol) step of segment_transfer in the sharded map.
  double sharded_step_ns = 1.9;
  /// Single-scan per-position bucket probe (flat bucket-vector load + a
  /// deadline-queue front check; the SoA arena has no hashing or heap peek).
  double scan_probe_ns = 2.0;
  /// Single-scan per drained automaton (swap-out, tight arena-pointer step,
  /// O(1) refile).  Slightly above the pre-SoA constant on paper because the
  /// old value was fitted against an engine whose per-position overheads hid
  /// in the probe term; refit with the arena layout (see calib/).
  double scan_drain_ns = 16.0;
  /// Dense contiguous-restart path: one automaton step per (symbol, episode),
  /// batched symbols-innermost so the episode stays register-resident.
  double scan_dense_step_ns = 1.2;
  /// Trie scan per drained shared-prefix token (child lookup + the interval
  /// split moving the survivors one trie level deeper).  Still a few times
  /// scan_drain_ns — the pooled token arena removed the per-drain allocation,
  /// but splitting interval sets remains heavier than stepping an integer —
  /// so on the host the compression only pays at high prefix mass; the big
  /// shared-prefix win belongs to the device formulation (gpusim-algo5-trie).
  double trie_drain_ns = 50.0;
  /// Trie scan per completed episode occurrence (count bump + swap-remove
  /// from the compact live-token list + idle-interval return).  Accepts are
  /// per episode — prefix sharing cannot compress them.
  double trie_accept_ns = 10.0;
  /// Expiry bookkeeping per match start (monotone deadline-FIFO append +
  /// eventual pop-and-validate; was a binary heap before the SoA rewrite).
  double expiry_heap_ns = 25.0;
  /// Spawn + join cost per worker thread.
  double thread_spawn_us = 60.0;
  /// Sharded fold: composing one (episode, shard) transfer outcome.
  double fold_step_ns = 8.0;
  /// Distrib reduce: folding one (episode, chunk) cold outcome in chunk
  /// order (branch + count add; matches the scale model's merge charge).
  double distrib_merge_ns = 12.0;
  /// Distrib reduce: one serially re-stepped symbol when a chunk entered
  /// with live automaton state (twin-replay until convergence).
  double distrib_rescan_ns = 2.5;
  /// Work-stealing scheduler: claiming one chunk (atomic cursor bump,
  /// victim scan amortized) plus dispatch into the worker closure.
  double distrib_steal_ns = 400.0;
};

/// Chunks per shard the planner assumes when costing distrib candidates —
/// kept equal to distrib::ShardPlanOptions{}.steal_granularity so the model
/// prices the backend it would actually construct.
inline constexpr int kPlannedStealGranularity = 4;

/// Predicted wall-clock (ms) of one counting level on each CPU backend.
/// `threads` is the worker count the backend would actually use (callers
/// should pass core::resolved_thread_count(requested)).  The constants
/// default to the shipped profile; pass a fitted CalibrationProfile's cpu
/// part (calib/) to predict for the measured host instead.
[[nodiscard]] double predict_cpu_serial_ms(const Workload& w, const CpuCostConstants& c = {});
[[nodiscard]] double predict_cpu_parallel_ms(const Workload& w, int threads,
                                             const CpuCostConstants& c = {});
[[nodiscard]] double predict_cpu_sharded_ms(const Workload& w, int threads,
                                            const CpuCostConstants& c = {});
[[nodiscard]] double predict_cpu_single_scan_ms(const Workload& w,
                                                const CpuCostConstants& c = {});
[[nodiscard]] double predict_cpu_trie_ms(const Workload& w, const CpuCostConstants& c = {});

/// The distrib backend's host curve: the single-scan map split over `shards`
/// work-stealing workers, plus the chunk-ordered fold, the expected
/// boundary rescans (bounded by the expiry window or the typical automaton
/// reset distance), and per-chunk steal/claim overhead.
[[nodiscard]] double predict_cpu_distrib_ms(const Workload& w, int shards,
                                            const CpuCostConstants& c = {});

/// Expected host-fold boundary fix-up for a `chunks`-way database split: the
/// twin replay per (episode, interior boundary), bounded by the expiry
/// window or the typical automaton reset distance.  Charged by both distrib
/// flavors — counts always come from the host fold, so simulated-card
/// candidates pay it too.
[[nodiscard]] double distrib_rescan_ms(const Workload& w, int chunks,
                                       const CpuCostConstants& c = {});

}  // namespace gm::planner

// Texture-cache simulator tests.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/cache.hpp"

namespace gpusim {
namespace {

TEST(CacheSim, SpatialLocalityWithinLine) {
  CacheSim cache(1024, 32, 4);
  EXPECT_FALSE(cache.access(0));  // compulsory miss
  for (int b = 1; b < 32; ++b) EXPECT_TRUE(cache.access(static_cast<std::uint64_t>(b)));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 31u);
}

TEST(CacheSim, StreamingMissesOncePerLine) {
  CacheSim cache(8192, 32, 4);
  for (std::uint64_t a = 0; a < 4096; ++a) cache.access(a);
  EXPECT_EQ(cache.stats().misses, 4096u / 32u);
  EXPECT_NEAR(cache.stats().hit_rate(), 31.0 / 32.0, 1e-9);
}

TEST(CacheSim, LruEvictionWithinSet) {
  // Direct-mapped-by-set behaviour: addresses that alias the same set evict
  // each other once associativity is exceeded.
  CacheSim cache(256, 32, 2);  // 4 sets, 2 ways
  const std::uint64_t set_stride = 32 * 4;
  EXPECT_FALSE(cache.access(0 * set_stride));
  EXPECT_FALSE(cache.access(1 * set_stride));
  EXPECT_TRUE(cache.access(0 * set_stride));   // still resident
  EXPECT_FALSE(cache.access(2 * set_stride));  // evicts LRU (addr stride 1)
  EXPECT_TRUE(cache.access(0 * set_stride));
  EXPECT_FALSE(cache.access(1 * set_stride));  // was evicted
}

TEST(CacheSim, WorkingSetLargerThanCacheThrashes) {
  CacheSim cache(1024, 32, 4);  // 32 lines
  // 64 interleaved streams, each revisited after all others: full thrash.
  for (int round = 0; round < 4; ++round) {
    for (int s = 0; s < 64; ++s) cache.access(static_cast<std::uint64_t>(s) * 4096);
  }
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(CacheSim, AccessRangeCountsLineCrossings) {
  CacheSim cache(1024, 32, 4);
  EXPECT_EQ(cache.access_range(30, 4), 2);  // straddles two lines
  EXPECT_EQ(cache.access_range(30, 4), 0);
  EXPECT_EQ(cache.access_range(64, 1), 1);
}

TEST(CacheSim, ResetClearsState) {
  CacheSim cache(1024, 32, 4);
  cache.access(0);
  cache.reset();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_FALSE(cache.access(0));
}

TEST(CacheSim, MissBytes) {
  CacheSim cache(1024, 32, 4);
  for (std::uint64_t a = 0; a < 128; a += 32) cache.access(a);
  EXPECT_EQ(cache.miss_bytes(), 4u * 32u);
}

TEST(CacheSim, RejectsBadGeometry) {
  EXPECT_THROW(CacheSim(100, 32, 4), gm::PreconditionError);   // size < line*assoc... non-pow2 sets
  EXPECT_THROW(CacheSim(1024, 33, 4), gm::PreconditionError);  // non-pow2 line
  EXPECT_THROW(CacheSim(64, 32, 4), gm::PreconditionError);    // too small
}

}  // namespace
}  // namespace gpusim

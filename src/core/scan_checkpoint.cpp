#include "core/scan_checkpoint.hpp"

#include <limits>
#include <utility>

#include "common/error.hpp"

namespace gm::core {
namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

}  // namespace

std::uint64_t stream_digest_seed() { return kFnvOffset; }

std::uint64_t stream_digest_extend(std::uint64_t digest, std::span<const Symbol> events) {
  for (const Symbol s : events) {
    digest ^= static_cast<std::uint64_t>(s);
    digest *= kFnvPrime;
  }
  return digest;
}

StreamScan::StreamScan(std::vector<Episode> episodes, Semantics semantics, ExpiryPolicy expiry,
                       ScanEngine engine)
    : episodes_(std::move(episodes)),
      semantics_(semantics),
      expiry_(expiry),
      engine_(engine),
      prefix_digest_(stream_digest_seed()) {
  if (engine_ == ScanEngine::kTrie) {
    // int64 max disables the trie's database-size window clamp — a streaming
    // scan cannot know the eventual stream length, and deadline arithmetic
    // saturates, so any window longer than the remaining stream simply never
    // fires (identical counts).
    trie_.emplace(episodes_, semantics_, expiry_, std::numeric_limits<std::int64_t>::max());
  } else {
    flat_.emplace(episodes_, semantics_, expiry_);
  }
}

StreamScan::StreamScan(const ScanCheckpoint& checkpoint, ScanEngine engine)
    : StreamScan(checkpoint.episodes, checkpoint.semantics, checkpoint.expiry, engine) {
  gm::expects(checkpoint.progress.size() == checkpoint.episodes.size(),
              "checkpoint progress must be parallel to its episode list");
  gm::expects(checkpoint.high_water >= 0, "checkpoint high-water mark cannot be negative");
  for (std::size_t i = 0; i < checkpoint.progress.size(); ++i) {
    const EpisodeProgress& p = checkpoint.progress[i];
    gm::expects(p.state >= 0 &&
                    p.state < static_cast<int>(checkpoint.episodes[i].symbols().size()),
                "restored state outside the episode's automaton");
    gm::expects(p.state == 0 || (p.first_pos >= 0 && p.first_pos < checkpoint.high_water),
                "in-flight match starts at or beyond the checkpoint high-water mark");
  }
  high_water_ = checkpoint.high_water;
  prefix_digest_ = checkpoint.prefix_digest;
  if (trie_.has_value()) {
    trie_->restore(checkpoint.progress);
  } else {
    flat_->restore(checkpoint.progress);
  }
}

StreamScan::StreamScan(StreamScan&&) noexcept = default;
StreamScan& StreamScan::operator=(StreamScan&&) noexcept = default;
StreamScan::~StreamScan() = default;

void StreamScan::feed(std::span<const Symbol> events) {
  if (trie_.has_value()) {
    trie_->advance_batch(events, high_water_);
  } else {
    flat_->advance_batch(events, high_water_);
  }
  high_water_ += static_cast<std::int64_t>(events.size());
  prefix_digest_ = stream_digest_extend(prefix_digest_, events);
}

ScanCheckpoint StreamScan::checkpoint(std::uint64_t generation) const {
  ScanCheckpoint out;
  out.semantics = semantics_;
  out.expiry = expiry_;
  out.high_water = high_water_;
  out.prefix_digest = prefix_digest_;
  out.generation = generation;
  out.episodes = episodes_;
  out.progress = trie_.has_value() ? trie_->progress() : flat_->progress();
  return out;
}

std::vector<std::int64_t> StreamScan::counts() const {
  return trie_.has_value() ? trie_->counts() : flat_->counts();
}

std::vector<std::int64_t> resume_scan(const ScanCheckpoint& checkpoint,
                                      std::span<const Symbol> new_events, ScanEngine engine) {
  StreamScan scan(checkpoint, engine);
  scan.feed(new_events);
  return scan.counts();
}

}  // namespace gm::core

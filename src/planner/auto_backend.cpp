#include "planner/auto_backend.hpp"

#include <utility>

#include "common/error.hpp"
#include "planner/workload.hpp"

namespace gm::planner {

AutoBackend::AutoBackend(PlannerOptions options) : options_(std::move(options)) {}

std::string AutoBackend::name() const { return "auto(" + options_.device.name + ")"; }

int AutoBackend::max_level() const {
  return options_.enable_cpu ? 0 : kernels::kMaxLevel;
}

core::CountResult AutoBackend::count(const core::CountRequest& request) {
  gm::expects(!request.episodes.empty(), "count request carries no episodes");

  // Measuring the database statistics costs one O(|DB|) pass per level —
  // noise next to the counting work it steers (>= O(|DB| * |eps|)), and
  // recomputing beats caching by span identity, which a freed-and-reused
  // allocation would silently satisfy for a different stream.
  const Workload workload = workload_of(request);

  Plan plan = plan_level(workload, options_);
  const std::string key = plan.winner().config.label();
  auto [it, inserted] = backends_.try_emplace(key, nullptr);
  if (inserted) it->second = make_planned_backend(plan.winner().config, options_);
  plans_.push_back(std::move(plan));
  return it->second->count(request);
}

}  // namespace gm::planner

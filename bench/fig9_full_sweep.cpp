// Figure 9 (appendix): the complete 12-panel sweep — every algorithm at
// every level across all three cards, time (ms) vs. threads per block.
// Panels beyond the paper's 9(a)-(l) cover Algorithm 5 (block-bucketed) and
// are labelled as extensions.
#include <iostream>

#include "bench_support/paper_setup.hpp"
#include "bench_support/report.hpp"
#include "kernels/mining_kernels.hpp"

int main() {
  using gm::bench::paper_time_ms;
  using gm::kernels::Algorithm;

  const auto sweep = gm::bench::paper_thread_sweep();
  const auto cards = gpusim::paper_testbed();
  const std::vector<std::string> labels = {"8800GTS512", "9800GX2", "GTX280"};

  std::cout << "Figure 9: all algorithm x level panels across the testbed (ms)\n";
  int panel = 0;
  for (const Algorithm algorithm : gm::kernels::all_algorithms()) {
    for (int level = 1; level <= 3; ++level) {
      const std::string name =
          panel < 12 ? "Fig 9(" + std::string(1, static_cast<char>('a' + panel)) + ")"
                     : "Fig 9 extension (not in paper)";
      gm::bench::SeriesTable table(
          name + ": " + to_string(algorithm) + " on level " + std::to_string(level), "tpb",
          sweep);
      for (std::size_t c = 0; c < cards.size(); ++c) {
        gm::bench::Series series;
        series.label = labels[c];
        for (const int tpb : sweep) {
          series.values.push_back(paper_time_ms(cards[c], algorithm, level, tpb));
        }
        table.add(std::move(series));
      }
      table.print();
      ++panel;
    }
  }
  return 0;
}

#include "sim/occupancy.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gpusim {

std::string to_string(OccupancyLimiter limiter) {
  switch (limiter) {
    case OccupancyLimiter::kThreadsPerSm: return "threads/SM";
    case OccupancyLimiter::kBlocksPerSm: return "blocks/SM";
    case OccupancyLimiter::kWarpsPerSm: return "warps/SM";
    case OccupancyLimiter::kRegisters: return "registers";
    case OccupancyLimiter::kSharedMemory: return "shared memory";
    case OccupancyLimiter::kGridTooSmall: return "grid size";
  }
  return "?";
}

int warps_for_threads(const DeviceSpec& device, std::int64_t threads) {
  return static_cast<int>((threads + device.warp_size - 1) / device.warp_size);
}

Occupancy compute_occupancy(const DeviceSpec& device, const LaunchConfig& launch) {
  device.validate();
  const std::int64_t tpb = launch.threads_per_block();
  gm::expects(tpb > 0 && launch.total_blocks() > 0, "launch must have threads and blocks");

  if (tpb > device.max_threads_per_block) {
    gm::raise_device("block of " + std::to_string(tpb) + " threads exceeds device limit of " +
                     std::to_string(device.max_threads_per_block));
  }
  if (launch.shared_mem_per_block > device.shared_mem_per_block) {
    gm::raise_device("requested " + std::to_string(launch.shared_mem_per_block) +
                     " B shared memory exceeds per-block limit of " +
                     std::to_string(device.shared_mem_per_block) + " B");
  }

  const int warps_per_block = warps_for_threads(device, tpb);

  // Register allocation is rounded up to the device's allocation unit per
  // block, matching the official occupancy calculator's behaviour.
  const std::int64_t raw_regs = static_cast<std::int64_t>(launch.registers_per_thread) * tpb;
  const std::int64_t unit = device.register_alloc_unit;
  const std::int64_t regs_per_block =
      launch.registers_per_thread == 0 ? 0 : ((raw_regs + unit - 1) / unit) * unit;
  if (regs_per_block > device.registers_per_sm) {
    gm::raise_device("one block needs " + std::to_string(regs_per_block) +
                     " registers; SM has " + std::to_string(device.registers_per_sm));
  }

  struct Candidate {
    std::int64_t blocks;
    OccupancyLimiter limiter;
  };
  const Candidate candidates[] = {
      {device.max_threads_per_sm / tpb, OccupancyLimiter::kThreadsPerSm},
      {device.max_blocks_per_sm, OccupancyLimiter::kBlocksPerSm},
      {device.max_warps_per_sm / warps_per_block, OccupancyLimiter::kWarpsPerSm},
      {regs_per_block == 0 ? std::int64_t{device.max_blocks_per_sm}
                           : device.registers_per_sm / regs_per_block,
       OccupancyLimiter::kRegisters},
      {launch.shared_mem_per_block == 0
           ? std::int64_t{device.max_blocks_per_sm}
           : device.shared_mem_per_sm / launch.shared_mem_per_block,
       OccupancyLimiter::kSharedMemory},
  };

  Occupancy occ;
  std::int64_t best = candidates[0].blocks;
  occ.limiter = candidates[0].limiter;
  for (const auto& c : candidates) {
    if (c.blocks < best) {
      best = c.blocks;
      occ.limiter = c.limiter;
    }
  }
  if (best < 1) {
    gm::raise_device("launch config yields zero active blocks per SM (limited by " +
                     to_string(occ.limiter) + ")");
  }

  const std::int64_t total_blocks = launch.total_blocks();
  occ.active_blocks_per_sm = static_cast<int>(best);

  // If the grid cannot even give every SM one block, the grid itself is the
  // binding constraint (paper C4: "not enough work").
  const std::int64_t hostable = best * device.multiprocessors;
  if (total_blocks < device.multiprocessors) {
    occ.limiter = OccupancyLimiter::kGridTooSmall;
  }

  occ.active_warps_per_sm = occ.active_blocks_per_sm * warps_per_block;
  occ.active_threads_per_sm = static_cast<int>(occ.active_blocks_per_sm * tpb);
  occ.warp_occupancy =
      static_cast<double>(occ.active_warps_per_sm) / device.max_warps_per_sm;

  occ.concurrent_blocks_device =
      static_cast<int>(std::min<std::int64_t>(hostable, total_blocks));
  occ.busy_sms = static_cast<int>(
      std::min<std::int64_t>(device.multiprocessors,
                             (total_blocks + best - 1) / best < device.multiprocessors
                                 ? (total_blocks + best - 1) / best
                                 : device.multiprocessors));
  // Blocks are dealt round-robin, so with more blocks than SMs every SM is
  // busy; otherwise one block per SM.
  if (total_blocks < device.multiprocessors) {
    occ.busy_sms = static_cast<int>(total_blocks);
  }
  occ.waves = static_cast<int>((total_blocks + hostable - 1) / hostable);
  return occ;
}

}  // namespace gpusim

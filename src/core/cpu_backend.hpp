// CPU counting backends: the serial single-core reference (the GMiner-class
// baseline the paper motivates against) and three parallel/indexed
// formulations covering both parallelization axes of the counting step:
//
//   backend            parallel axis     per-level cost (t threads)
//   cpu-serial         —                 O(|DB| * |eps|)
//   cpu-parallel       episodes          O(|DB| * |eps| / t)
//   cpu-sharded        database          O(|DB| * |eps| * L / t) map + fold
//   cpu-single-scan    — (indexed)       O(|DB| * (1 + |eps|/|alphabet|))
//   cpu-trie-scan      — (shared)        O(|DB| * (1 + |prefixes|/|alphabet|))
//
// cpu-parallel scales with the candidate count, cpu-sharded with the stream
// length (the axis that matters when candidates are few but the database is
// long), cpu-single-scan replaces brute-force rescans with one pass driving
// all automata through a waiting-symbol bucket index, and cpu-trie-scan folds
// prefix-sharing candidates into a trie so one partial match advances every
// episode sharing that prefix (core/episode_trie.hpp).
#pragma once

#include <memory>
#include <string_view>

#include "core/counting.hpp"

namespace gm::core {

/// One automaton pass per episode on the calling thread.
class SerialCpuBackend final : public CountingBackend {
 public:
  [[nodiscard]] std::string name() const override { return "cpu-serial"; }
  [[nodiscard]] CountResult count(const CountRequest& request) override;
};

/// Episodes partitioned across `threads` host threads (thread-level
/// parallelism in the paper's taxonomy: one worker = one episode at a time,
/// identity reduce).  Workers accumulate privately and merge at the end, so
/// no two threads ever write adjacent result slots (no false sharing).
class ParallelCpuBackend final : public CountingBackend {
 public:
  /// `threads` = 0 picks the hardware concurrency.
  explicit ParallelCpuBackend(int threads = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] CountResult count(const CountRequest& request) override;

  [[nodiscard]] int threads() const noexcept { return threads_; }

 private:
  int threads_;
};

/// Database partitioned into `threads` shards (block-level parallelism in the
/// paper's taxonomy).  Each (episode, shard) task computes the shard's
/// transfer function; a cheap sequential fold composes them into exactly the
/// serial count (segment_counter's kStateComposition).  With expiry enabled
/// the transfer function is position-dependent, so each episode falls back to
/// a sequential chunk-chain scan and the parallel axis degrades to episodes.
class ShardedCpuBackend final : public CountingBackend {
 public:
  /// `threads` = 0 picks the hardware concurrency; shards == threads.
  explicit ShardedCpuBackend(int threads = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] CountResult count(const CountRequest& request) override;

  [[nodiscard]] int threads() const noexcept { return threads_; }

 private:
  int threads_;
};

/// Single-threaded single-scan engine: one database pass drives all episode
/// automata via the waiting-symbol bucket index (core/multi_counter.hpp).
class SingleScanCpuBackend final : public CountingBackend {
 public:
  [[nodiscard]] std::string name() const override { return "cpu-single-scan"; }
  [[nodiscard]] CountResult count(const CountRequest& request) override;
};

/// Single-threaded shared-prefix engine: one database pass drives trie-node
/// tokens, advancing all prefix-sharing episodes together
/// (core/episode_trie.hpp).  Strongest when the candidate set's
/// prefix-compression factor is small (deep Apriori levels).
class TrieCpuBackend final : public CountingBackend {
 public:
  [[nodiscard]] std::string name() const override { return "cpu-trie-scan"; }
  [[nodiscard]] CountResult count(const CountRequest& request) override;
};

/// The worker count a CPU backend constructed with `threads` will actually
/// use: 0 resolves to the hardware concurrency, and the result is never less
/// than 1.  Exposed as a capability query so a planner predicting backend
/// times applies the same resolution rule the backends themselves do.
[[nodiscard]] int resolved_thread_count(int threads) noexcept;

/// Construct a CPU backend by name: "cpu-serial", "cpu-parallel",
/// "cpu-sharded", "cpu-single-scan", or "cpu-trie-scan" (unprefixed aliases
/// accepted).
/// Returns nullptr for unknown names so callers can layer their own backends
/// (e.g. the simulated GPU) on top of the selection.
[[nodiscard]] std::unique_ptr<CountingBackend> make_cpu_backend(std::string_view name,
                                                                int threads = 0);

}  // namespace gm::core

// Set-associative LRU cache simulator.
//
// Used to model the per-SM read-only texture cache of CUDA 1.x devices
// (6–8 KB working set per the paper, section 4.2.1).  The functional engine
// feeds every lane-level texture fetch through one instance per block; the
// analytic traffic model in the cost model reproduces the same first-order
// behaviour in closed form for full-scale runs.
#pragma once

#include <cstdint>
#include <vector>

namespace gpusim {

class CacheSim {
 public:
  struct Stats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    [[nodiscard]] double hit_rate() const noexcept {
      return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
    }
  };

  /// `size_bytes` total capacity, `line_bytes` block size, `assoc` ways.
  /// All must be powers of two with size >= line * assoc.
  CacheSim(int size_bytes, int line_bytes, int assoc);

  /// Touch one byte address; returns true on hit.  Adjacent bytes within a
  /// line hit after the first access, modelling spatial locality.
  bool access(std::uint64_t address) noexcept;

  /// Touch a byte range (e.g. a multi-byte fetch); returns number of misses.
  int access_range(std::uint64_t address, int bytes) noexcept;

  void reset() noexcept;

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }
  [[nodiscard]] int line_bytes() const noexcept { return line_bytes_; }
  [[nodiscard]] std::uint64_t miss_bytes() const noexcept {
    return stats_.misses * static_cast<std::uint64_t>(line_bytes_);
  }

 private:
  struct Way {
    std::uint64_t tag = ~0ULL;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  int line_bytes_;
  int assoc_;
  int sets_;
  int line_shift_;
  std::uint64_t set_mask_;
  std::uint64_t tick_ = 0;
  std::vector<Way> ways_;  // sets_ * assoc_, row-major by set
  Stats stats_;
};

}  // namespace gpusim

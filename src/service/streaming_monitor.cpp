#include "service/streaming_monitor.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/error.hpp"

namespace gm::service {
namespace {

core::StreamScan make_scan(const MonitorSpec& spec) {
  gm::expects(!spec.episodes.empty(), "monitor must watch at least one episode");
  gm::expects(spec.threshold >= 1, "monitor threshold must be at least 1");
  return core::StreamScan(spec.episodes, spec.semantics, spec.expiry, spec.engine);
}

}  // namespace

StreamingMonitor::StreamingMonitor(MonitorSpec spec)
    : spec_(std::move(spec)),
      scan_(make_scan(spec_)),
      fired_(spec_.episodes.size(), false),
      idle_batches_(spec_.episodes.size(), 0),
      last_counts_(spec_.episodes.size(), 0) {}

StreamingMonitor::StreamingMonitor(MonitorSpec spec, const core::ScanCheckpoint& checkpoint)
    : spec_(std::move(spec)),
      scan_(checkpoint, spec_.engine),
      fired_(spec_.episodes.size()),
      idle_batches_(spec_.episodes.size(), 0),
      last_counts_(spec_.episodes.size(), 0) {
  gm::expects(spec_.threshold >= 1, "monitor threshold must be at least 1");
  gm::expects(checkpoint.episodes.size() == spec_.episodes.size() &&
                  std::equal(checkpoint.episodes.begin(), checkpoint.episodes.end(),
                             spec_.episodes.begin()),
              "monitor checkpoint was captured for a different episode set");
  gm::expects(checkpoint.semantics == spec_.semantics &&
                  checkpoint.expiry.window == spec_.expiry.window,
              "monitor checkpoint was captured under different scan parameters");
  arm_fired();
}

void StreamingMonitor::arm_fired() {
  const std::vector<std::int64_t> counts = scan_.counts();
  last_total_ = std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  for (std::size_t i = 0; i < counts.size(); ++i) fired_[i] = counts[i] >= spec_.threshold;
  last_counts_ = counts;
}

void StreamingMonitor::evict_idle() {
  // Capture the scan, drop the partial match of every long-idle episode, and
  // restore.  The capture/restore path is the bit-exact one checkpoints use,
  // so untouched episodes resume precisely where they were.
  core::ScanCheckpoint ckpt = scan_.checkpoint();
  bool any = false;
  for (std::size_t i = 0; i < ckpt.progress.size(); ++i) {
    if (ckpt.progress[i].state == 0) continue;
    if (idle_batches_[i] < spec_.idle_eviction_generations) continue;
    ckpt.progress[i].state = 0;
    ckpt.progress[i].first_pos = 0;
    ++idle_evictions_;
    any = true;
  }
  if (any) scan_ = core::StreamScan(ckpt, spec_.engine);
}

void StreamingMonitor::on_append(std::span<const core::Symbol> events,
                                 std::uint64_t generation, std::vector<Alert>& alerts) {
  scan_.feed(events);
  const std::vector<std::int64_t> counts = scan_.counts();
  const std::int64_t total = std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  ticks_.push_back({scan_.high_water(), static_cast<std::int64_t>(events.size()),
                    total - last_total_});
  last_total_ = total;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    idle_batches_[i] = counts[i] == last_counts_[i] ? idle_batches_[i] + 1 : 0;
    last_counts_[i] = counts[i];
    if (fired_[i] || counts[i] < spec_.threshold) continue;
    fired_[i] = true;
    alerts.push_back({spec_.name, i, counts[i], scan_.high_water(), generation});
  }
  if (spec_.idle_eviction_generations > 0) evict_idle();
}

}  // namespace gm::service

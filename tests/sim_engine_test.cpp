// Functional-engine tests: kernel execution, barriers, SIMT warp accounting,
// memory views, atomics, and failure modes.
#include <gtest/gtest.h>

#include <numeric>

#include "common/error.hpp"
#include "sim/engine.hpp"
#include "sim/memory.hpp"

namespace gpusim {
namespace {

LaunchConfig cfg(int blocks, int tpb, int shared = 0) {
  LaunchConfig c;
  c.grid = Dim3(blocks);
  c.block = Dim3(tpb);
  c.shared_mem_per_block = shared;
  c.registers_per_thread = 10;
  return c;
}

Engine test_engine() {
  EngineOptions opts;
  opts.host_threads = 2;
  return Engine(geforce_8800_gts_512(), opts);
}

TEST(Engine, VectorAddProducesCorrectResults) {
  const Engine engine = test_engine();
  const int n = 1024;
  std::vector<int> a(n), b(n);
  std::iota(a.begin(), a.end(), 0);
  std::iota(b.begin(), b.end(), 100);
  DeviceBuffer<int> da{std::span<const int>(a)};
  DeviceBuffer<int> db{std::span<const int>(b)};
  DeviceBuffer<int> dc{static_cast<std::size_t>(n)};

  auto ga = da.global();
  auto gb = db.global();
  auto gc = dc.global();
  const KernelFn kernel = [=](ThreadCtx& ctx) mutable -> KernelTask {
    const int i = ctx.global_thread();
    ctx.charge(1);
    gc.store(ctx, static_cast<std::size_t>(i),
             ga.load(ctx, static_cast<std::size_t>(i)) +
                 gb.load(ctx, static_cast<std::size_t>(i)));
    co_return;
  };

  const auto result = engine.launch(cfg(n / 128, 128), kernel);
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(dc.host()[static_cast<std::size_t>(i)], a[static_cast<std::size_t>(i)] +
                                                          b[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(result.totals.blocks, 8);
  EXPECT_EQ(result.totals.global_requests, 3.0 * n);
}

TEST(Engine, SyncthreadsOrdersSharedMemoryPhases) {
  const Engine engine = test_engine();
  const int tpb = 64;
  DeviceBuffer<int> out{static_cast<std::size_t>(tpb)};
  auto gout = out.global();

  // Phase 1: thread i writes slot i; phase 2: thread i reads slot (i+1)%tpb.
  const KernelFn kernel = [=](ThreadCtx& ctx) mutable -> KernelTask {
    SharedArray<int> shared(ctx, static_cast<std::size_t>(ctx.block_dim()));
    shared.store(static_cast<std::size_t>(ctx.thread_idx()), ctx.thread_idx() * 7);
    co_await ctx.syncthreads();
    const int neighbour = (ctx.thread_idx() + 1) % ctx.block_dim();
    gout.store(ctx, static_cast<std::size_t>(ctx.thread_idx()),
               shared.load(static_cast<std::size_t>(neighbour)));
    co_return;
  };

  (void)engine.launch(cfg(1, tpb, tpb * static_cast<int>(sizeof(int))), kernel);
  for (int i = 0; i < tpb; ++i) {
    EXPECT_EQ(out.host()[static_cast<std::size_t>(i)], ((i + 1) % tpb) * 7);
  }
}

TEST(Engine, DivergentBarrierIsDetected) {
  const Engine engine = test_engine();
  const KernelFn kernel = [](ThreadCtx& ctx) -> KernelTask {
    if (ctx.thread_idx() < 16) co_await ctx.syncthreads();  // half the block only
    co_return;
  };
  EXPECT_THROW((void)engine.launch(cfg(1, 32), kernel), gm::DeviceError);
}

TEST(Engine, KernelExceptionsPropagate) {
  const Engine engine = test_engine();
  const KernelFn kernel = [](ThreadCtx& ctx) -> KernelTask {
    if (ctx.global_thread() == 37) gm::raise_invariant("injected failure");
    co_return;
  };
  EXPECT_THROW((void)engine.launch(cfg(2, 32), kernel), gm::InvariantError);
}

TEST(Engine, WarpAccountingTakesMaxOverLanes) {
  const Engine engine = test_engine();
  // Lane i charges i instructions; one 32-lane warp => warp cost = 31,
  // lane total = sum 0..31 = 496.
  const KernelFn kernel = [](ThreadCtx& ctx) -> KernelTask {
    ctx.charge(static_cast<std::uint64_t>(ctx.lane()));
    co_return;
  };
  const auto result = engine.launch(cfg(1, 32), kernel);
  ASSERT_EQ(result.profile.groups.size(), 1u);
  const auto& block = result.profile.groups[0].block;
  EXPECT_DOUBLE_EQ(block.warp_instructions, 31.0);
  EXPECT_DOUBLE_EQ(block.lane_instructions, 496.0);
}

TEST(Engine, SegmentsResetAtBarriers) {
  const Engine engine = test_engine();
  // Segment 1: lane 0 does 10, others 0.  Segment 2: lane 1 does 10.
  // Warp cost must be 10+10+2 barrier-instr... barrier charges 1 to each lane:
  // segment1 max = 11, segment2 max = 10.
  const KernelFn kernel = [](ThreadCtx& ctx) -> KernelTask {
    if (ctx.lane() == 0) ctx.charge(10);
    co_await ctx.syncthreads();
    if (ctx.lane() == 1) ctx.charge(10);
    co_return;
  };
  const auto result = engine.launch(cfg(1, 32), kernel);
  const auto& block = result.profile.groups[0].block;
  EXPECT_EQ(block.syncs, 1);
  EXPECT_DOUBLE_EQ(block.warp_instructions, 21.0);
}

TEST(Engine, MultiWarpBlocksAggregatePerWarp) {
  const Engine engine = test_engine();
  // Warp 0 lanes charge 5, warp 1 lanes charge 9 => block warp cost 14.
  const KernelFn kernel = [](ThreadCtx& ctx) -> KernelTask {
    ctx.charge(ctx.warp() == 0 ? 5u : 9u);
    co_return;
  };
  const auto result = engine.launch(cfg(1, 64), kernel);
  EXPECT_DOUBLE_EQ(result.profile.groups[0].block.warp_instructions, 14.0);
}

TEST(Engine, AtomicsAggregateAcrossBlocks) {
  const Engine engine = test_engine();
  DeviceBuffer<std::uint32_t> counter{1};
  auto gc = counter.global();
  const KernelFn kernel = [=](ThreadCtx& ctx) mutable -> KernelTask {
    (void)gc.atomic_add(ctx, 0, 1);
    co_return;
  };
  const auto result = engine.launch(cfg(8, 32), kernel);
  EXPECT_EQ(counter.host()[0], 256u);
  EXPECT_EQ(result.totals.atomic_requests, 256.0);
}

TEST(Engine, TextureFetchesFeedPerBlockCache) {
  EngineOptions opts;
  opts.host_threads = 1;
  const Engine engine(geforce_8800_gts_512(), opts);
  std::vector<std::uint8_t> data(4096, 7);
  DeviceBuffer<std::uint8_t> buf{std::span<const std::uint8_t>(data)};
  auto tex = buf.texture();
  // One thread streams the whole buffer: one miss per 32-byte line.
  const KernelFn kernel = [=](ThreadCtx& ctx) -> KernelTask {
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < 4096; ++i) sum += tex.fetch(ctx, i);
    if (sum == 0) gm::raise_invariant("unreachable");
    co_return;
  };
  const auto result = engine.launch(cfg(1, 1), kernel);
  EXPECT_EQ(result.texture_cache.accesses, 4096u);
  EXPECT_EQ(result.texture_cache.misses, 4096u / 32u);
  EXPECT_DOUBLE_EQ(result.profile.groups[0].block.tex_miss_bytes, 4096.0);
}

TEST(Engine, IdenticalBlocksCoalesceIntoOneGroup) {
  const Engine engine = test_engine();
  const KernelFn kernel = [](ThreadCtx& ctx) -> KernelTask {
    ctx.charge(3);
    co_return;
  };
  const auto result = engine.launch(cfg(40, 64), kernel);
  EXPECT_EQ(result.profile.groups.size(), 1u);
  EXPECT_EQ(result.profile.groups[0].count, 40);
}

TEST(Engine, OutOfBoundsAccessIsCaught) {
  const Engine engine = test_engine();
  DeviceBuffer<int> buf{4};
  auto g = buf.global();
  const KernelFn kernel = [=](ThreadCtx& ctx) -> KernelTask {
    (void)g.load(ctx, 99);
    co_return;
  };
  EXPECT_THROW((void)engine.launch(cfg(1, 1), kernel), gm::InvariantError);
}

TEST(Engine, SharedArrayBoundsChecked) {
  const Engine engine = test_engine();
  const KernelFn kernel = [](ThreadCtx& ctx) -> KernelTask {
    SharedArray<int> shared(ctx, 4);
    shared.store(99, 1);
    co_return;
  };
  EXPECT_THROW((void)engine.launch(cfg(1, 1, 64), kernel), gm::InvariantError);
}

TEST(Engine, SharedAllocationLimitEnforced) {
  const Engine engine = test_engine();
  const KernelFn kernel = [](ThreadCtx& ctx) -> KernelTask {
    SharedArray<int> shared(ctx, 1024);  // needs 4 KB, block declared 64 B
    shared.store(0, 1);
    co_return;
  };
  EXPECT_THROW((void)engine.launch(cfg(1, 1, 64), kernel), gm::PreconditionError);
}

TEST(Engine, PartialWarpAtBlockEnd) {
  const Engine engine = test_engine();
  const KernelFn kernel = [](ThreadCtx& ctx) -> KernelTask {
    ctx.charge(2);
    co_return;
  };
  const auto result = engine.launch(cfg(1, 48), kernel);  // 1.5 warps
  const auto& block = result.profile.groups[0].block;
  EXPECT_EQ(block.warps, 2);
  EXPECT_DOUBLE_EQ(block.warp_instructions, 4.0);
  EXPECT_DOUBLE_EQ(block.lane_instructions, 96.0);
}

}  // namespace
}  // namespace gpusim

// The client-facing request/response surface of the mining service.
//
// One coherent shape replaces the scattered entry points clients used to
// stitch together (free mine_frequent_episodes + MinerConfig + bench-only
// BackendSpec + CLI flag plumbing): a MineRequest or CountRequest goes in,
// and a response comes back carrying the result, the per-level plan notes,
// how the request was served (fresh / cached / batched), a machine-readable
// rejection when it was not, and timing.  Requests never throw through the
// service boundary — every failure is a Rejection with a stable
// gm::ErrorCode.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "core/miner.hpp"

namespace gm::service {

/// How a response was produced.
enum class Disposition {
  kServed,     ///< counted fresh by a backend
  kCached,     ///< served from the session result cache, bit-identical
  kTruncated,  ///< partial mining result: the latency budget stopped the run
  kRejected,   ///< no work ran; see Rejection
};

[[nodiscard]] std::string_view to_string(Disposition disposition) noexcept;

/// Per-request service-level limits.
struct RequestLimits {
  /// Admission control: reject (or stop, mid-mine) work the planner predicts
  /// to exceed this many milliseconds.  0 = no budget.
  double latency_budget_ms = 0.0;
};

/// One mining run (Algorithm 1, all levels) as a service request.
struct MineRequest {
  core::MinerConfig config;
  RequestLimits limits;
  /// Optional client tag, echoed through logs and the replay bench.
  std::string client;
};

/// One counting call (the paper's map step) over an explicit episode set.
/// All episodes must share one level — that is what makes requests batchable
/// (the service merges compatible queued episode sets into one backend call).
struct CountRequest {
  std::vector<core::Episode> episodes;
  core::Semantics semantics = core::Semantics::kNonOverlappedSubsequence;
  core::ExpiryPolicy expiry = {};
  RequestLimits limits;
  std::string client;
};

/// Machine-readable refusal: a stable code plus a human-readable reason.
struct Rejection {
  ErrorCode code = ErrorCode::kUnknown;
  std::string reason;

  [[nodiscard]] std::string_view code_name() const noexcept { return error_code_name(code); }
};

struct Timing {
  double queue_ms = 0.0;      ///< submit -> worker pickup (0 for direct session calls)
  double service_ms = 0.0;    ///< session work: cache lookup + counting
  double predicted_ms = 0.0;  ///< planner cost prediction the admission check used
};

struct MineResponse {
  Disposition disposition = Disposition::kRejected;
  core::MiningResult result;  ///< empty when rejected
  /// One planner note per counted level ("level 2: 650 candidates, planned
  /// cpu-single-scan, predicted 1.24 ms").
  std::vector<std::string> plan_notes;
  Rejection rejection;  ///< set for kRejected (and the stop reason for kTruncated)
  Timing timing;
  std::uint64_t cache_key = 0;             ///< the session cache key the request mapped to
  std::uint64_t database_generation = 0;   ///< which loaded database served it

  [[nodiscard]] bool ok() const noexcept { return disposition != Disposition::kRejected; }
};

struct CountResponse {
  Disposition disposition = Disposition::kRejected;
  std::vector<std::int64_t> counts;  ///< counts[i] = occurrences of episodes[i]
  Rejection rejection;
  Timing timing;
  std::uint64_t cache_key = 0;
  std::uint64_t database_generation = 0;
  /// Number of other requests whose episodes were counted in the same
  /// backend call (0 = this request was counted alone).
  int batched_with = 0;

  [[nodiscard]] bool ok() const noexcept { return disposition != Disposition::kRejected; }
};

}  // namespace gm::service

#include "service/checkpoint_store.hpp"

#include <charconv>
#include <cstdio>

#include "common/error.hpp"

namespace gm::service {
namespace {

std::string to_hex(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t from_hex(const std::string& text) {
  std::uint64_t v = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v, 16);
  gm::expects(ec == std::errc{} && ptr == text.data() + text.size(),
              "checkpoint digest is not a 64-bit hex string");
  return v;
}

void write_episodes(bench::JsonWriter& json, std::span<const core::Episode> episodes) {
  json.begin_array();
  for (const core::Episode& episode : episodes) {
    json.begin_array();
    for (const core::Symbol s : episode.symbols()) json.value(static_cast<int>(s));
    json.end_array();
  }
  json.end_array();
}

std::vector<core::Episode> read_episodes(const bench::JsonValue& value) {
  gm::expects(value.is_array(), "checkpoint episodes must be an array");
  std::vector<core::Episode> episodes;
  episodes.reserve(value.array.size());
  for (const bench::JsonValue& entry : value.array) {
    gm::expects(entry.is_array(), "checkpoint episode must be a symbol array");
    std::vector<core::Symbol> symbols;
    symbols.reserve(entry.array.size());
    for (const bench::JsonValue& s : entry.array) {
      const std::int64_t v = s.as_int64();
      gm::expects(v >= 0 && v <= 255, "checkpoint episode symbol out of range");
      symbols.push_back(static_cast<core::Symbol>(v));
    }
    episodes.emplace_back(std::move(symbols));
  }
  return episodes;
}

void write_spec(bench::JsonWriter& json, const MonitorSpec& spec) {
  json.begin_object();
  json.field("name", spec.name);
  json.key("episodes");
  write_episodes(json, spec.episodes);
  json.field("semantics", static_cast<int>(spec.semantics));
  json.field("expiry_window", spec.expiry.window);
  json.field("threshold", spec.threshold);
  json.field("engine", static_cast<int>(spec.engine));
  json.end_object();
}

MonitorSpec read_spec(const bench::JsonValue& value) {
  MonitorSpec spec;
  spec.name = value.at("name").as_string();
  spec.episodes = read_episodes(value.at("episodes"));
  spec.semantics = static_cast<core::Semantics>(value.at("semantics").as_int64());
  spec.expiry.window = value.at("expiry_window").as_int64();
  spec.threshold = value.at("threshold").as_int64();
  spec.engine = static_cast<core::ScanEngine>(value.at("engine").as_int64());
  return spec;
}

}  // namespace

void write_checkpoint(bench::JsonWriter& json, const core::ScanCheckpoint& checkpoint) {
  json.begin_object();
  json.field("semantics", static_cast<int>(checkpoint.semantics));
  json.field("expiry_window", checkpoint.expiry.window);
  json.field("high_water", checkpoint.high_water);
  json.field("prefix_digest", to_hex(checkpoint.prefix_digest));
  json.field("generation", static_cast<std::int64_t>(checkpoint.generation));
  json.key("episodes");
  write_episodes(json, checkpoint.episodes);
  json.key("progress");
  json.begin_array();
  for (const core::EpisodeProgress& p : checkpoint.progress) {
    json.begin_array();
    json.value(p.count);
    json.value(p.first_pos);
    json.value(p.state);
    json.end_array();
  }
  json.end_array();
  json.end_object();
}

core::ScanCheckpoint read_checkpoint(const bench::JsonValue& value) {
  core::ScanCheckpoint checkpoint;
  checkpoint.semantics = static_cast<core::Semantics>(value.at("semantics").as_int64());
  checkpoint.expiry.window = value.at("expiry_window").as_int64();
  checkpoint.high_water = value.at("high_water").as_int64();
  checkpoint.prefix_digest = from_hex(value.at("prefix_digest").as_string());
  checkpoint.generation = static_cast<std::uint64_t>(value.at("generation").as_int64());
  checkpoint.episodes = read_episodes(value.at("episodes"));
  const bench::JsonValue& progress = value.at("progress");
  gm::expects(progress.is_array(), "checkpoint progress must be an array");
  checkpoint.progress.reserve(progress.array.size());
  for (const bench::JsonValue& entry : progress.array) {
    gm::expects(entry.is_array() && entry.array.size() == 3,
                "checkpoint progress entry must be [count, first_pos, state]");
    checkpoint.progress.push_back({entry.array[0].as_int64(), entry.array[1].as_int64(),
                                   static_cast<int>(entry.array[2].as_int64())});
  }
  return checkpoint;
}

std::string monitors_to_json(std::span<const MonitorSnapshot> snapshots) {
  bench::JsonWriter json;
  json.begin_object();
  json.field("schema", kCheckpointSchema);
  json.key("monitors");
  json.begin_array();
  for (const MonitorSnapshot& snapshot : snapshots) {
    json.begin_object();
    json.key("spec");
    write_spec(json, snapshot.spec);
    json.key("checkpoint");
    write_checkpoint(json, snapshot.checkpoint);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

namespace {

std::vector<MonitorSnapshot> snapshots_from_doc(const bench::JsonValue& doc) {
  gm::expects(doc.is_object() && doc.at("schema").as_string() == kCheckpointSchema,
              "not a gm-checkpoint/1 document");
  const bench::JsonValue& monitors = doc.at("monitors");
  gm::expects(monitors.is_array(), "gm-checkpoint monitors must be an array");
  std::vector<MonitorSnapshot> snapshots;
  snapshots.reserve(monitors.array.size());
  for (const bench::JsonValue& entry : monitors.array) {
    snapshots.push_back({read_spec(entry.at("spec")), read_checkpoint(entry.at("checkpoint"))});
  }
  return snapshots;
}

}  // namespace

std::vector<MonitorSnapshot> monitors_from_json(std::string_view text) {
  return snapshots_from_doc(bench::parse_json(text));
}

void save_monitors_file(const std::string& path, std::span<const MonitorSnapshot> snapshots) {
  bench::write_json_file(monitors_to_json(snapshots), path);
}

std::vector<MonitorSnapshot> load_monitors_file(const std::string& path) {
  return snapshots_from_doc(bench::parse_json_file(path));
}

}  // namespace gm::service

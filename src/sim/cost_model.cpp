#include "sim/cost_model.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "common/error.hpp"

namespace gpusim {
namespace {

struct BlockPath {
  double pre_tex_cycles = 0.0;  ///< per-warp path excluding texture stalls
  double path_tex_ops = 0.0;
  TexAccessKind kind = TexAccessKind::kNone;
};

/// Work accumulated on one SM during one wave.
struct SmWave {
  double warp_instructions = 0.0;
  double global_bytes = 0.0;
  int syncs = 0;
  int blocks = 0;

  // Texture bookkeeping, split by access kind.
  double strided_traffic = 0.0;      ///< per-lane strided: one line per fetch
  double strided_streams = 0.0;      ///< lanes issuing strided streams
  double friendly_requests = 0.0;    ///< broadcast/coalesced lane requests
  double friendly_private_bytes = 0.0;
  std::map<int, double> friendly_shared_bytes;  ///< sharing_key -> footprint

  std::vector<BlockPath> paths;
};

}  // namespace

TimeBreakdown CostModel::predict(const DeviceSpec& device, const LaunchConfig& launch,
                                 const KernelProfile& profile) const {
  gm::expects(!profile.groups.empty(), "cannot time an empty kernel profile");
  gm::expects(profile.total_blocks() == launch.total_blocks(),
              "profile block count disagrees with launch grid");

  const Occupancy occ = compute_occupancy(device, launch);
  const double cpw = device.cycles_per_warp_instruction;
  const double mlp = std::max(1.0, params_.mem_level_parallelism);
  const double device_bytes_per_cycle = device.bytes_per_cycle();
  const double tpb = static_cast<double>(launch.threads_per_block());

  // Cursor over (group, index-in-group).
  std::size_t group_idx = 0;
  std::int64_t in_group = 0;
  std::int64_t remaining = profile.total_blocks();

  const std::int64_t concurrent =
      static_cast<std::int64_t>(occ.active_blocks_per_sm) * device.multiprocessors;

  TimeBreakdown out;
  double total_cycles = 0.0;
  double issue_bound_cycles = 0.0;
  double latency_bound_cycles = 0.0;
  double bandwidth_bound_cycles = 0.0;
  double sync_cycles_total = 0.0;
  double dispatch_cycles_total = 0.0;

  while (remaining > 0) {
    const std::int64_t wave_blocks = std::min<std::int64_t>(concurrent, remaining);
    const int busy_sms =
        static_cast<int>(std::min<std::int64_t>(device.multiprocessors, wave_blocks));
    std::vector<SmWave> sms(static_cast<std::size_t>(busy_sms));

    for (std::int64_t b = 0; b < wave_blocks; ++b) {
      const BlockProfile& block = profile.groups[group_idx].block;
      SmWave& sm = sms[static_cast<std::size_t>(b % busy_sms)];

      sm.warp_instructions += block.warp_instructions;
      sm.global_bytes += block.global_bytes;
      sm.syncs += block.syncs;
      sm.blocks += 1;

      BlockPath path;
      path.pre_tex_cycles =
          block.path_instructions * cpw +
          (block.path_shared_ops * device.shared_mem_latency +
           block.path_global_ops * device.global_mem_latency) /
              mlp;
      path.path_tex_ops = block.path_tex_ops;
      path.kind = block.texture.kind;
      sm.paths.push_back(path);

      switch (block.texture.kind) {
        case TexAccessKind::kStridedPerLane:
          sm.strided_traffic += block.tex_requests * device.tex_cache_line_bytes;
          sm.strided_streams += tpb;
          break;
        case TexAccessKind::kBroadcast:
        case TexAccessKind::kCoalescedStream:
          sm.friendly_requests += block.tex_requests;
          if (block.texture.sharing_key != 0) {
            auto [it, inserted] =
                sm.friendly_shared_bytes.try_emplace(block.texture.sharing_key, 0.0);
            it->second = std::max(it->second, block.texture.footprint_bytes);
          } else {
            sm.friendly_private_bytes += block.texture.footprint_bytes;
          }
          break;
        case TexAccessKind::kNone:
          // No declared pattern: fall back to the engine-measured traffic.
          sm.friendly_requests += block.tex_requests;
          sm.friendly_private_bytes += block.tex_miss_bytes;
          break;
      }

      if (++in_group == profile.groups[group_idx].count) {
        in_group = 0;
        ++group_idx;
      }
    }
    remaining -= wave_blocks;

    double wave_cycles = 0.0;
    double wave_issue = 0.0;
    double wave_latency = 0.0;
    double wave_bw = 0.0;
    double wave_sync = 0.0;
    double wave_dispatch = 0.0;

    for (const SmWave& sm : sms) {
      // --- texture traffic and effective latencies -------------------------
      double friendly_bytes = sm.friendly_private_bytes;
      for (const auto& [key, bytes] : sm.friendly_shared_bytes) friendly_bytes += bytes;
      const double friendly_miss_rate =
          sm.friendly_requests > 0
              ? std::min(1.0, (friendly_bytes / device.tex_cache_line_bytes) /
                                  sm.friendly_requests)
              : 0.0;
      const double eff_friendly_latency =
          friendly_miss_rate * device.tex_cache_miss_latency +
          (1.0 - friendly_miss_rate) * device.tex_cache_hit_latency;

      const double traffic = friendly_bytes + sm.strided_traffic;

      // DRAM efficiency degrades as strided streams multiply (row-buffer
      // thrashing); the knee is a calibration constant.
      const double bw_efficiency =
          1.0 / (1.0 + sm.strided_streams / params_.bandwidth_stream_knee);
      const double bw_share = device_bytes_per_cycle * bw_efficiency / busy_sms;

      const double issue = sm.warp_instructions * cpw;
      double latency = 0.0;
      for (const BlockPath& p : sm.paths) {
        const double tex_lat = p.kind == TexAccessKind::kStridedPerLane
                                   ? device.tex_cache_miss_latency
                                   : eff_friendly_latency;
        latency = std::max(latency, p.pre_tex_cycles + p.path_tex_ops * tex_lat / mlp);
      }
      const double bandwidth = (traffic + sm.global_bytes) / bw_share;

      const double bound = std::max({issue, latency, bandwidth});
      const double sync = sm.syncs * params_.barrier_cycles;
      const double dispatch = sm.blocks * params_.block_dispatch_cycles;
      const double sm_cycles = bound + sync + dispatch;

      if (sm_cycles > wave_cycles) {
        wave_cycles = sm_cycles;
        wave_issue = issue;
        wave_latency = latency;
        wave_bw = bandwidth;
        wave_sync = sync;
        wave_dispatch = dispatch;
      }
    }

    total_cycles += wave_cycles;
    sync_cycles_total += wave_sync;
    dispatch_cycles_total += wave_dispatch;
    const double bound = std::max({wave_issue, wave_latency, wave_bw});
    if (bound == wave_issue) {
      issue_bound_cycles += bound;
    } else if (bound == wave_latency) {
      latency_bound_cycles += bound;
    } else {
      bandwidth_bound_cycles += bound;
    }
    ++out.waves;
  }

  const double cycles_to_ms = 1.0 / (device.clock_hz() / 1000.0);
  out.launch_ms = params_.kernel_launch_overhead_us / 1000.0;
  out.issue_ms = issue_bound_cycles * cycles_to_ms;
  out.latency_ms = latency_bound_cycles * cycles_to_ms;
  out.bandwidth_ms = bandwidth_bound_cycles * cycles_to_ms;
  out.sync_ms = sync_cycles_total * cycles_to_ms;
  out.dispatch_ms = dispatch_cycles_total * cycles_to_ms;
  out.total_ms = total_cycles * cycles_to_ms + out.launch_ms;

  const double m = std::max({out.issue_ms, out.latency_ms, out.bandwidth_ms});
  out.bound_by = (m == out.issue_ms)     ? "issue"
                 : (m == out.latency_ms) ? "latency"
                                         : "bandwidth";
  return out;
}

}  // namespace gpusim

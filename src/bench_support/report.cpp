#include "bench_support/report.hpp"

#include <algorithm>
#include <iomanip>

#include "common/error.hpp"

namespace gm::bench {

void SeriesTable::add(Series series) {
  gm::expects(series.values.size() == xs_.size(),
              "series length must match the x axis");
  series_.push_back(std::move(series));
}

void SeriesTable::print(std::ostream& os) const {
  os << "\n== " << title_ << " ==\n";
  os << std::left << std::setw(10) << x_label_;
  for (const auto& s : series_) os << std::right << std::setw(16) << s.label;
  os << "\n";
  for (std::size_t row = 0; row < xs_.size(); ++row) {
    os << std::left << std::setw(10) << xs_[row];
    for (const auto& s : series_) {
      os << std::right << std::setw(16) << std::fixed << std::setprecision(3)
         << s.values[row];
    }
    os << "\n";
  }
  os.flush();
}

void SeriesTable::print_csv(std::ostream& os) const {
  os << x_label_;
  for (const auto& s : series_) os << "," << s.label;
  os << "\n";
  for (std::size_t row = 0; row < xs_.size(); ++row) {
    os << xs_[row];
    for (const auto& s : series_) os << "," << s.values[row];
    os << "\n";
  }
  os.flush();
}

std::vector<int> paper_thread_sweep() {
  return {16, 32, 64, 96, 128, 160, 192, 224, 256, 288, 320, 352, 384, 416, 448, 480, 512};
}

void report_check(std::ostream& os, const std::string& claim, bool pass,
                  const std::string& detail) {
  os << (pass ? "[PASS]    " : "[DEVIATE] ") << claim;
  if (!detail.empty()) os << "  -- " << detail;
  os << "\n";
  os.flush();
}

Best best_of(const std::vector<int>& xs, const std::vector<double>& values) {
  gm::expects(!xs.empty() && xs.size() == values.size(), "need a non-empty series");
  const auto it = std::min_element(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(it - values.begin());
  return {xs[idx], *it};
}

}  // namespace gm::bench

// Ablation (paper section 6, future work): episode expiration.
//
// Two effects are measured: (1) functionally, tighter expiry windows make
// fewer occurrences span chunk boundaries (fewer crossers to recover); (2) in
// the performance model, the block kernels' rescan-based spanning fix costs
// O(window) per boundary instead of the O(level * chunk) transfer scan, so
// the reduce-side work shrinks — the paper's prediction.
#include <iostream>

#include "bench_support/paper_setup.hpp"
#include "bench_support/report.hpp"
#include "core/candidate_gen.hpp"
#include "core/segment_counter.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "kernels/workload_model.hpp"

int main() {
  using gm::core::Alphabet;
  using gm::core::ExpiryPolicy;
  using gm::core::Semantics;
  using gm::core::SpanningFix;

  // --- functional effect: crossers vs. window -------------------------------
  const Alphabet alphabet(8);
  const auto db = gm::data::uniform_database(alphabet, 40'000, 17);
  const auto episodes = gm::core::all_distinct_episodes(alphabet, 3);

  std::cout << "Expiry ablation (functional): boundary crossers vs. window\n";
  std::cout << "window      crossers (64 chunks, 336 level-3 episodes, 40k symbols)\n";
  for (const std::int64_t window : {0LL, 256LL, 64LL, 16LL, 4LL}) {
    const ExpiryPolicy expiry{window};
    std::int64_t crossers = 0;
    for (const auto& e : episodes) {
      const auto full = count_occurrences(e, db, Semantics::kNonOverlappedSubsequence, expiry);
      const auto none = count_chunked(e, db, 64, Semantics::kNonOverlappedSubsequence, expiry,
                                      SpanningFix::kNone);
      crossers += full - none;
    }
    std::cout << (window == 0 ? "unbounded" : std::to_string(window))
              << "\t    " << crossers << "\n";
  }

  // --- modelled effect: kernel time vs. window (Algorithm 3, level 3) -------
  const auto device = gpusim::geforce_gtx_280();
  std::cout << "\nExpiry ablation (modelled): Algo3 L3 kernel time on GTX280 @128tpb\n";
  std::cout << "mode            predicted ms\n";
  gm::kernels::WorkloadSpec spec;
  spec.db_size = gm::data::kPaperDatabaseSize;
  spec.episode_count = gm::bench::paper_episode_count(3);
  spec.level = 3;
  spec.params.algorithm = gm::kernels::Algorithm::kBlockTexture;
  spec.params.threads_per_block = 128;

  const gpusim::CostModel model;
  std::cout << "composition     " << predict_mining_time(device, spec, model).total_ms
            << "\n";
  for (const std::int64_t window : {512LL, 64LL, 8LL}) {
    spec.params.expiry = ExpiryPolicy{window};
    const char* pad = window >= 100 ? "    " : window >= 10 ? "     " : "      ";
    std::cout << "expiry W=" << window << pad << predict_mining_time(device, spec, model).total_ms
              << "\n";
  }
  return 0;
}

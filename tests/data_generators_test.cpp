// Workload generator tests: determinism, distributions, planted episodes.
#include <gtest/gtest.h>

#include <array>

#include "common/error.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"

namespace gm::data {
namespace {

using core::Alphabet;

TEST(UniformDatabase, DeterministicAndInRange) {
  const Alphabet alphabet(26);
  const auto a = uniform_database(alphabet, 10'000, 42);
  const auto b = uniform_database(alphabet, 10'000, 42);
  const auto c = uniform_database(alphabet, 10'000, 43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (const auto s : a) EXPECT_LT(s, 26);
}

TEST(UniformDatabase, RoughlyUniform) {
  const Alphabet alphabet(4);
  const auto db = uniform_database(alphabet, 40'000, 7);
  std::array<int, 4> histogram{};
  for (const auto s : db) ++histogram[s];
  for (const int count : histogram) {
    EXPECT_NEAR(count, 10'000, 500);  // ~5 sigma
  }
}

TEST(PaperDatabase, ExactPaperSize) {
  const auto db = paper_database();
  EXPECT_EQ(db.size(), 393'019u);
  EXPECT_EQ(kPaperDatabaseSize, 393'019);
  for (const auto s : db) EXPECT_LT(s, 26);
}

TEST(MarkovDatabase, SelfTransitionCreatesRuns) {
  const Alphabet alphabet(8);
  const auto bursty = markov_database(alphabet, 20'000, 0.9, 5);
  const auto iid = markov_database(alphabet, 20'000, 0.0, 5);
  auto repeats = [](const core::Sequence& seq) {
    int r = 0;
    for (std::size_t i = 1; i < seq.size(); ++i) r += seq[i] == seq[i - 1];
    return r;
  };
  EXPECT_GT(repeats(bursty), 4 * repeats(iid));
}

TEST(MarkovDatabase, RejectsBadProbability) {
  EXPECT_THROW((void)markov_database(Alphabet(4), 10, 1.0, 1), gm::PreconditionError);
  EXPECT_THROW((void)markov_database(Alphabet(4), 10, -0.1, 1), gm::PreconditionError);
}

TEST(SpikeTrain, PlantedCopiesAreLowerBounds) {
  const Alphabet alphabet(12);
  const std::vector<core::Episode> planted = {core::Episode({1, 5, 9}),
                                              core::Episode({3, 2, 0})};
  SpikeTrainConfig config;
  config.size = 20'000;
  config.noise_rate = 0.8;
  config.seed = 31;
  const auto train = spike_train(alphabet, planted, config);

  EXPECT_EQ(static_cast<std::int64_t>(train.events.size()), config.size);
  for (std::size_t i = 0; i < planted.size(); ++i) {
    EXPECT_GT(train.planted_copies[i], 0);
    const auto counted = count_occurrences(planted[i], train.events,
                                           core::Semantics::kNonOverlappedSubsequence);
    EXPECT_GE(counted, train.planted_copies[i]);
  }
}

TEST(ZipfDatabase, FrequenciesAreNormalizedAndRankOrdered) {
  const auto freq = zipf_frequencies(16, 1.0);
  ASSERT_EQ(freq.size(), 16u);
  double total = 0.0;
  for (std::size_t k = 1; k < freq.size(); ++k) {
    EXPECT_GT(freq[k - 1], freq[k]);
    total += freq[k];
  }
  EXPECT_NEAR(total + freq[0], 1.0, 1e-12);
  // s = 0 degenerates to uniform.
  for (const double f : zipf_frequencies(8, 0.0)) EXPECT_DOUBLE_EQ(f, 1.0 / 8.0);
}

TEST(ZipfDatabase, DrawsMatchTheDeclaredDistribution) {
  const Alphabet alphabet(8);
  const std::int64_t n = 100'000;
  const auto db = zipf_database(alphabet, n, 1.0, 42);
  ASSERT_EQ(static_cast<std::int64_t>(db.size()), n);

  std::vector<double> counts(8, 0.0);
  for (const core::Symbol s : db) {
    ASSERT_LT(s, 8);
    counts[s] += 1.0;
  }
  const auto expected = zipf_frequencies(8, 1.0);
  for (std::size_t k = 0; k < counts.size(); ++k) {
    EXPECT_NEAR(counts[k] / static_cast<double>(n), expected[k], 0.01) << "symbol " << k;
  }
  // Deterministic: same seed, same stream.
  EXPECT_EQ(zipf_database(alphabet, 1'000, 1.0, 42),
            core::Sequence(db.begin(), db.begin() + 1'000));
}

TEST(SpikeTrain, PureNoiseHasNoGuaranteedCopies) {
  const Alphabet alphabet(10);
  SpikeTrainConfig config;
  config.size = 1000;
  config.noise_rate = 1.0;
  const auto train = spike_train(alphabet, {core::Episode({0, 1})}, config);
  EXPECT_EQ(train.planted_copies[0], 0);
}

TEST(SpikeTrain, JitterStaysWithinConfiguredBound) {
  // With zero jitter and zero noise, the stream is exact concatenated copies.
  const Alphabet alphabet(6);
  SpikeTrainConfig config;
  config.size = 300;
  config.noise_rate = 0.0;
  config.max_jitter = 0;
  const core::Episode episode({4, 2, 5});
  const auto train = spike_train(alphabet, {episode}, config);
  EXPECT_EQ(train.planted_copies[0], 100);
  for (std::size_t i = 0; i + 2 < train.events.size(); i += 3) {
    EXPECT_EQ(train.events[i], 4);
    EXPECT_EQ(train.events[i + 1], 2);
    EXPECT_EQ(train.events[i + 2], 5);
  }
}

}  // namespace
}  // namespace gm::data

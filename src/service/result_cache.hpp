// Session result cache: repeated queries over a shared database hit memory
// instead of re-counting.
//
// Keys are 64-bit FNV-1a digests over every field that changes the answer —
// database generation + content digest, episode-set digest, semantics,
// expiry window, support threshold, level cap, pruning flag — so two
// requests collide only when they would produce bit-identical results.
// Values are whole responses (MiningResult / count vectors); the cache is a
// plain LRU with hit/miss/eviction/invalidation counters.  Not internally
// synchronized: MiningSession serializes access under its own mutex.
#pragma once

#include <bit>
#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "core/episode.hpp"

namespace gm::service {

/// Incremental FNV-1a digest builder for structured cache keys.
class Digest {
 public:
  Digest& mix(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ = (hash_ ^ ((v >> (8 * i)) & 0xFF)) * 0x100000001b3ULL;
    }
    return *this;
  }
  Digest& mix(std::int64_t v) noexcept { return mix(static_cast<std::uint64_t>(v)); }
  Digest& mix(int v) noexcept {
    return mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  Digest& mix(bool v) noexcept { return mix(static_cast<std::uint64_t>(v ? 1 : 0)); }
  Digest& mix(double v) noexcept { return mix(std::bit_cast<std::uint64_t>(v)); }

  Digest& mix(const core::Episode& episode) noexcept {
    mix(static_cast<std::uint64_t>(episode.level()));
    for (const core::Symbol s : episode.symbols()) {
      hash_ = (hash_ ^ s) * 0x100000001b3ULL;
    }
    return *this;
  }

  template <typename Range>
  Digest& mix_range(const Range& range) noexcept {
    for (const auto& item : range) mix(item);
    return *this;
  }

  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;  // FNV offset basis
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  /// Capacity evictions of entries from the current database generation —
  /// genuine LRU pressure on answers that could still hit.
  std::uint64_t evictions = 0;
  /// Capacity evictions of entries left behind by a generation bump: their
  /// keys mix an old generation, so they could never hit again and dropping
  /// them loses nothing.  Previously folded into `evictions`, which made
  /// append-heavy sessions look capacity-starved when they were not.
  std::uint64_t stale_evictions = 0;
  /// Entries dropped by database reloads (clear() calls), not by capacity.
  std::uint64_t invalidations = 0;
};

/// Fixed-capacity LRU map from digest keys to cached response payloads.
/// The owner reports its database generation via `set_generation` (appends
/// bump it); entries inserted under an older generation are unreachable —
/// every future key mixes the new generation — so their eventual LRU exit is
/// counted as a `stale_eviction`, not capacity pressure.
template <typename Value>
class ResultCache {
 public:
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Look up a key, refreshing its recency on a hit.
  [[nodiscard]] std::optional<Value> get(std::uint64_t key) {
    const auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    order_.splice(order_.begin(), order_, it->second);
    ++stats_.hits;
    return it->second->value;
  }

  void put(std::uint64_t key, Value value) {
    if (capacity_ == 0) return;
    if (const auto it = index_.find(key); it != index_.end()) {
      it->second->value = std::move(value);
      it->second->generation = generation_;
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    order_.emplace_front(Entry{key, generation_, std::move(value)});
    index_.emplace(key, order_.begin());
    if (index_.size() > capacity_) {
      const Entry& victim = order_.back();
      ++(victim.generation == generation_ ? stats_.evictions : stats_.stale_evictions);
      index_.erase(victim.key);
      order_.pop_back();
    }
  }

  /// Owner's current database generation; entries put before the last bump
  /// are stale by definition (their keys can never be asked for again).
  void set_generation(std::uint64_t generation) noexcept { generation_ = generation; }

  /// Drop everything (database reload): counted as invalidations.
  void clear() {
    stats_.invalidations += index_.size();
    index_.clear();
    order_.clear();
  }

  [[nodiscard]] std::size_t size() const noexcept { return index_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    std::uint64_t key;
    std::uint64_t generation;
    Value value;
  };

  std::size_t capacity_;
  std::uint64_t generation_ = 0;
  std::list<Entry> order_;  ///< most recent first
  std::unordered_map<std::uint64_t, typename std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace gm::service

// service_replay — multithreaded traffic replay against the mining service.
//
// C closed-loop client threads replay a seeded mix of MineRequests (drawn
// from a small pool of templates, so repeats hit the result cache) and
// CountRequests (drawn from a pool of episode sets, so concurrent submissions
// batch) against a MiningService.  Every successful response is checked
// bit-for-bit against a direct, uncached oracle (mine_frequent_episodes /
// SerialCpuBackend) computed up front — the replay measures throughput and
// latency *of answers that are provably identical to unserviced mining*.
//
//   service_replay [options]
//     --db <n>              database size             (default 20000)
//     --alphabet <k>        alphabet size             (default 16)
//     --clients <c>         client threads            (default 4)
//     --requests <r>        requests per client       (default 50)
//     --workers <w>         service worker threads    (default 4)
//     --backend <name>      session backend           (default cpu-single-scan)
//     --threads <n>         CPU backend threads       (default 2)
//     --mine-templates <t>  distinct mine shapes      (default 3)
//     --count-templates <t> distinct episode sets     (default 6)
//     --mine-frac <f>       fraction of mine traffic  (default 0.4)
//     --max-batch <b>       service batch limit       (default 16)
//     --budget-ms <ms>      per-request latency budget, 0 = off (default 0)
//     --support <alpha>     template support base     (default 0.002)
//     --max-level <L>       template level cap        (default 3)
//     --seed <s>            replay seed               (default 42)
//     --out <file>          artifact path             (default BENCH_service.json)
//     --min-cache-hits <n>  gate: fail unless the session cache served >= n
//
// Exit status: 0 on success; 1 when any response mismatches its oracle, when
// a request is rejected for a reason other than the configured budget, or
// when the --min-cache-hits gate fails.  CI runs this under the bench job
// and uploads BENCH_service.json (throughput, p50/p99 latency, cache and
// batching counters, plus each count template's measured prefix-compression
// factor and the planner's trie-vs-flat pick tally for those templates —
// even-numbered templates share an apriori-style prefix, odd ones are fully
// random, so both regimes appear in every replay).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_support/cli_args.hpp"
#include "bench_support/json.hpp"
#include "common/rng.hpp"
#include "core/cpu_backend.hpp"
#include "core/miner.hpp"
#include "data/generators.hpp"
#include "planner/planner.hpp"
#include "planner/workload.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::int64_t db_size = 20'000;
  int alphabet = 16;
  int clients = 4;
  int requests = 50;
  int workers = 4;
  std::string backend = "cpu-single-scan";
  int threads = 2;
  int mine_templates = 3;
  int count_templates = 6;
  double mine_frac = 0.4;
  int max_batch = 16;
  double budget_ms = 0.0;
  double support = 0.002;
  int max_level = 3;
  std::uint64_t seed = 42;
  std::string out = "BENCH_service.json";
  std::int64_t min_cache_hits = 0;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--db N] [--alphabet K] [--clients C] [--requests R]\n"
               "       [--workers W] [--backend NAME] [--threads N] [--mine-templates T]\n"
               "       [--count-templates T] [--mine-frac F] [--max-batch B] [--budget-ms MS]\n"
               "       [--support A] [--max-level L] [--seed S] [--out FILE]\n"
               "       [--min-cache-hits N]\n",
               argv0);
  return 2;
}

double percentile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gm;

  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) throw bench::UsageError(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--db") opt.db_size = bench::parse_int64(arg, next(), 1, 1'000'000'000);
      else if (arg == "--alphabet") opt.alphabet = bench::parse_int(arg, next(), 1, 255);
      else if (arg == "--clients") opt.clients = bench::parse_int(arg, next(), 1, 256);
      else if (arg == "--requests") opt.requests = bench::parse_int(arg, next(), 1, 1'000'000);
      else if (arg == "--workers") opt.workers = bench::parse_int(arg, next(), 1, 256);
      else if (arg == "--backend") opt.backend = next();
      else if (arg == "--threads") opt.threads = bench::parse_int(arg, next(), 0, 1 << 10);
      else if (arg == "--mine-templates") opt.mine_templates = bench::parse_int(arg, next(), 1, 64);
      else if (arg == "--count-templates")
        opt.count_templates = bench::parse_int(arg, next(), 1, 256);
      else if (arg == "--mine-frac") opt.mine_frac = bench::parse_double(arg, next(), 0.0, 1.0);
      else if (arg == "--max-batch") opt.max_batch = bench::parse_int(arg, next(), 1, 1 << 10);
      else if (arg == "--budget-ms") opt.budget_ms = bench::parse_double(arg, next(), 0.0, 1e9);
      else if (arg == "--support") opt.support = bench::parse_double(arg, next(), 0.0, 1.0);
      else if (arg == "--max-level") opt.max_level = bench::parse_int(arg, next(), 1, 8);
      else if (arg == "--seed")
        opt.seed = static_cast<std::uint64_t>(bench::parse_int64(arg, next(), 0, INT64_MAX));
      else if (arg == "--out") opt.out = next();
      else if (arg == "--min-cache-hits")
        opt.min_cache_hits = bench::parse_int64(arg, next(), 0, INT64_MAX);
      else if (arg == "--help" || arg == "-h") {
        (void)usage(argv[0]);
        return 0;
      }
      else return usage(argv[0]);
    }
  } catch (const gm::PreconditionError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage(argv[0]);
  }

  try {
    data::Dataset dataset{core::Alphabet(opt.alphabet), {}};
    dataset.events = data::uniform_database(dataset.alphabet, opt.db_size, opt.seed);

    // Request templates.  A small pool replayed by many clients is the
    // repeated-query traffic the cache exists for.
    Rng rng(opt.seed ^ 0x5e51ce5eed5ULL);
    std::vector<service::MineRequest> mine_pool;
    for (int t = 0; t < opt.mine_templates; ++t) {
      service::MineRequest request;
      request.config.support_threshold = opt.support * static_cast<double>(1 + t);
      request.config.max_level = opt.max_level;
      if (t % 3 == 1) request.config.semantics = core::Semantics::kContiguousRestart;
      if (t % 3 == 2) request.config.expiry = {static_cast<std::int64_t>(4 + t)};
      request.limits.latency_budget_ms = opt.budget_ms;
      mine_pool.push_back(std::move(request));
    }
    std::vector<service::CountRequest> count_pool;
    for (int t = 0; t < opt.count_templates; ++t) {
      service::CountRequest request;
      const int level = 1 + static_cast<int>(rng.below(3));
      const int episodes = 8 + static_cast<int>(rng.below(24));
      // Even templates share one (level-1)-symbol prefix across their whole
      // episode set, the shape an apriori join produces — real prefix mass
      // for the shared-prefix trie formulations to react to.  Odd templates
      // stay fully random.
      std::vector<core::Symbol> shared;
      if (t % 2 == 0) {
        for (int s = 0; s + 1 < level; ++s) {
          shared.push_back(
              static_cast<core::Symbol>(rng.below(static_cast<std::uint64_t>(opt.alphabet))));
        }
      }
      for (int e = 0; e < episodes; ++e) {
        std::vector<core::Symbol> symbols = shared;
        while (static_cast<int>(symbols.size()) < level) {
          symbols.push_back(
              static_cast<core::Symbol>(rng.below(static_cast<std::uint64_t>(opt.alphabet))));
        }
        request.episodes.emplace_back(std::move(symbols));
      }
      if (t % 2 == 1) request.expiry = {6};
      request.limits.latency_budget_ms = opt.budget_ms;
      count_pool.push_back(std::move(request));
    }

    // Shared-prefix telemetry: every count template's measured prefix mass,
    // and the formulation the planner picks for its workload (the same
    // plan_level call a session running `--backend auto` makes per level).
    planner::PlannerOptions plan_options;
    plan_options.cpu_threads = opt.threads;
    std::vector<double> template_prefix_mass;
    int trie_picks = 0;
    int flat_picks = 0;
    double mean_prefix_mass = 0.0;
    for (const service::CountRequest& request : count_pool) {
      core::CountRequest raw;
      raw.database = dataset.events;
      raw.episodes = request.episodes;
      raw.semantics = request.semantics;
      raw.expiry = request.expiry;
      const planner::Workload workload = planner::workload_of(raw, opt.alphabet);
      template_prefix_mass.push_back(workload.prefix_compression);
      mean_prefix_mass +=
          workload.prefix_compression / static_cast<double>(count_pool.size());
      const planner::Plan plan = planner::plan_level(workload, plan_options);
      const bool trie_pick =
          plan.winner().config.label().find("trie") != std::string::npos;
      (trie_pick ? trie_picks : flat_picks) += 1;
    }

    // Uncached oracles, computed before the service sees any traffic.
    std::vector<core::MiningResult> mine_oracle;
    for (const service::MineRequest& request : mine_pool) {
      core::SerialCpuBackend serial;
      mine_oracle.push_back(core::mine_frequent_episodes(dataset.events, dataset.alphabet, serial,
                                                         request.config));
    }
    std::vector<std::vector<std::int64_t>> count_oracle;
    for (const service::CountRequest& request : count_pool) {
      core::SerialCpuBackend serial;
      core::CountRequest raw;
      raw.database = dataset.events;
      raw.episodes = request.episodes;
      raw.semantics = request.semantics;
      raw.expiry = request.expiry;
      count_oracle.push_back(serial.count(raw).counts);
    }

    auto session = std::make_shared<service::MiningSession>(
        dataset,
        service::SessionOptions{.backend = {.name = opt.backend, .threads = opt.threads}});
    service::MiningService service(
        session, {.workers = opt.workers,
                  .max_queue = static_cast<std::size_t>(opt.clients) *
                               static_cast<std::size_t>(opt.requests),
                  .max_batch = static_cast<std::size_t>(opt.max_batch)});

    // Closed-loop replay: each client submits, waits, verifies, repeats.
    std::mutex merge_mutex;
    std::vector<double> latencies_ms;
    std::int64_t mismatches = 0;
    std::int64_t unexpected_rejections = 0;
    std::int64_t budget_rejections = 0;
    std::int64_t truncated = 0;

    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> clients;
    clients.reserve(static_cast<std::size_t>(opt.clients));
    for (int c = 0; c < opt.clients; ++c) {
      clients.emplace_back([&, c] {
        Rng client_rng(opt.seed + 1000 + static_cast<std::uint64_t>(c));
        std::vector<double> local_lat;
        std::int64_t local_mismatch = 0, local_unexpected = 0, local_budget = 0, local_trunc = 0;
        for (int r = 0; r < opt.requests; ++r) {
          const Clock::time_point start = Clock::now();
          if (client_rng.chance(opt.mine_frac)) {
            const auto t = static_cast<std::size_t>(client_rng.below(mine_pool.size()));
            const service::MineResponse response = service.submit(mine_pool[t]).get();
            local_lat.push_back(
                std::chrono::duration<double, std::milli>(Clock::now() - start).count());
            if (response.disposition == service::Disposition::kRejected) {
              if (response.rejection.code == ErrorCode::kAdmissionRejected) ++local_budget;
              else ++local_unexpected;
            } else if (response.disposition == service::Disposition::kTruncated) {
              ++local_trunc;
            } else {
              const core::MiningResult& want = mine_oracle[t];
              bool same = response.result.frequent.size() == want.frequent.size();
              for (std::size_t i = 0; same && i < want.frequent.size(); ++i) {
                same = response.result.frequent[i].episode == want.frequent[i].episode &&
                       response.result.frequent[i].count == want.frequent[i].count;
              }
              local_mismatch += same ? 0 : 1;
            }
          } else {
            const auto t = static_cast<std::size_t>(client_rng.below(count_pool.size()));
            const service::CountResponse response = service.submit(count_pool[t]).get();
            local_lat.push_back(
                std::chrono::duration<double, std::milli>(Clock::now() - start).count());
            if (response.disposition == service::Disposition::kRejected) {
              if (response.rejection.code == ErrorCode::kAdmissionRejected) ++local_budget;
              else ++local_unexpected;
            } else {
              local_mismatch += response.counts == count_oracle[t] ? 0 : 1;
            }
          }
        }
        const std::scoped_lock lock(merge_mutex);
        latencies_ms.insert(latencies_ms.end(), local_lat.begin(), local_lat.end());
        mismatches += local_mismatch;
        unexpected_rejections += local_unexpected;
        budget_rejections += local_budget;
        truncated += local_trunc;
      });
    }
    for (std::thread& t : clients) t.join();
    const double wall_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    const service::ServiceStats stats = service.stats();
    const service::CacheStats mine_cache = session->mine_cache_stats();
    const service::CacheStats count_cache = session->count_cache_stats();
    const std::int64_t cache_hits =
        static_cast<std::int64_t>(mine_cache.hits + count_cache.hits);

    std::sort(latencies_ms.begin(), latencies_ms.end());
    const double total = static_cast<double>(latencies_ms.size());
    double mean = 0.0;
    for (const double l : latencies_ms) mean += l / std::max(total, 1.0);
    const double p50 = percentile(latencies_ms, 0.50);
    const double p99 = percentile(latencies_ms, 0.99);
    const double throughput = total / (wall_ms / 1000.0);

    std::printf("service_replay: %d clients x %d requests, %d workers, backend=%s\n",
                opt.clients, opt.requests, opt.workers, opt.backend.c_str());
    std::printf("  wall %.1f ms  throughput %.1f req/s\n", wall_ms, throughput);
    std::printf("  latency ms: mean %.3f  p50 %.3f  p99 %.3f  max %.3f\n", mean, p50, p99,
                latencies_ms.empty() ? 0.0 : latencies_ms.back());
    std::printf("  served %llu  cached %llu  truncated %llu  rejected %llu  batched %llu\n",
                static_cast<unsigned long long>(stats.served),
                static_cast<unsigned long long>(stats.cached),
                static_cast<unsigned long long>(stats.truncated),
                static_cast<unsigned long long>(stats.rejected),
                static_cast<unsigned long long>(stats.batched));
    std::printf("  cache hits %lld (mine %llu / count %llu)  mismatches %lld\n",
                static_cast<long long>(cache_hits),
                static_cast<unsigned long long>(mine_cache.hits),
                static_cast<unsigned long long>(count_cache.hits),
                static_cast<long long>(mismatches));
    std::printf("  count templates: mean prefix mass %.2f, planner picks %d trie / %d flat\n",
                mean_prefix_mass, trie_picks, flat_picks);

    bench::JsonWriter json;
    json.begin_object();
    json.field("schema", "gm-bench-service/1");
    json.field("driver", "service_replay");
    json.key("workload").begin_object();
    json.field("db_size", opt.db_size)
        .field("alphabet", opt.alphabet)
        .field("clients", opt.clients)
        .field("requests_per_client", opt.requests)
        .field("workers", opt.workers)
        .field("backend", opt.backend)
        .field("mine_templates", opt.mine_templates)
        .field("count_templates", opt.count_templates)
        .field("mine_frac", opt.mine_frac)
        .field("max_batch", opt.max_batch)
        .field("budget_ms", opt.budget_ms)
        .field("seed", static_cast<std::int64_t>(opt.seed));
    json.end_object();
    json.field("wall_ms", wall_ms);
    json.field("throughput_rps", throughput);
    json.key("latency_ms")
        .begin_object()
        .field("mean", mean)
        .field("p50", p50)
        .field("p99", p99)
        .field("max", latencies_ms.empty() ? 0.0 : latencies_ms.back())
        .end_object();
    json.key("service")
        .begin_object()
        .field("submitted", static_cast<std::int64_t>(stats.submitted))
        .field("served", static_cast<std::int64_t>(stats.served))
        .field("cached", static_cast<std::int64_t>(stats.cached))
        .field("truncated", static_cast<std::int64_t>(stats.truncated))
        .field("rejected", static_cast<std::int64_t>(stats.rejected))
        .field("batched", static_cast<std::int64_t>(stats.batched))
        .end_object();
    json.key("cache")
        .begin_object()
        .field("mine_hits", static_cast<std::int64_t>(mine_cache.hits))
        .field("mine_misses", static_cast<std::int64_t>(mine_cache.misses))
        .field("count_hits", static_cast<std::int64_t>(count_cache.hits))
        .field("count_misses", static_cast<std::int64_t>(count_cache.misses))
        .end_object();
    json.key("prefix_compression").begin_array();
    for (const double mass : template_prefix_mass) json.value(mass);
    json.end_array();
    json.key("planner")
        .begin_object()
        .field("trie_picks", trie_picks)
        .field("flat_picks", flat_picks)
        .field("mean_prefix_compression", mean_prefix_mass)
        .end_object();
    json.field("budget_rejections", budget_rejections);
    json.field("truncated_runs", truncated);
    json.field("oracle_mismatches", mismatches);
    json.field("unexpected_rejections", unexpected_rejections);
    json.field("min_cache_hits_gate", opt.min_cache_hits);
    json.end_object();
    json.write_file(opt.out);
    std::printf("wrote %s\n", opt.out.c_str());

    if (mismatches > 0) {
      std::fprintf(stderr, "FAIL: %lld responses differed from the uncached oracle\n",
                   static_cast<long long>(mismatches));
      return 1;
    }
    if (unexpected_rejections > 0) {
      std::fprintf(stderr, "FAIL: %lld rejections with codes other than the configured budget\n",
                   static_cast<long long>(unexpected_rejections));
      return 1;
    }
    if (cache_hits < opt.min_cache_hits) {
      std::fprintf(stderr, "FAIL: %lld cache hits < gate %lld\n",
                   static_cast<long long>(cache_hits),
                   static_cast<long long>(opt.min_cache_hits));
      return 1;
    }
    return 0;
  } catch (const gm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

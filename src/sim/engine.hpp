// Functional SIMT execution engine.
//
// Executes a kernel (one coroutine per simulated thread) block by block,
// modelling warp-lockstep issue for the hardware counters: between barriers,
// each warp's cost is the max over its lanes, matching SIMT semantics where
// divergent lanes serialize within the warp.  Blocks are independent (as in
// CUDA) and are executed across a host thread pool.
//
// The engine produces *counters*, not time — `CostModel` (sim/cost_model.hpp)
// turns a `KernelProfile` into predicted execution time for a given card.
#pragma once

#include <cstdint>

#include "sim/device_spec.hpp"
#include "sim/launch.hpp"
#include "sim/occupancy.hpp"
#include "sim/profile.hpp"
#include "sim/thread_ctx.hpp"

namespace gpusim {

struct EngineOptions {
  /// Host threads used to execute independent blocks; 0 = hardware default.
  int host_threads = 0;
  /// Feed every texture fetch through a per-block CacheSim.  Disable to speed
  /// up functional runs whose miss counts are not needed.
  bool simulate_texture_cache = true;
};

struct LaunchResult {
  KernelProfile profile;
  ProfileTotals totals;
  Occupancy occupancy;
  /// Texture-cache statistics accumulated over all blocks (each block is
  /// simulated against its own cache instance; co-residency sharing is a
  /// cost-model concern).
  CacheSim::Stats texture_cache;
};

class Engine {
 public:
  explicit Engine(DeviceSpec spec, EngineOptions options = {});

  [[nodiscard]] const DeviceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const EngineOptions& options() const noexcept { return options_; }

  /// Execute `kernel` under `config`.  Throws gm::DeviceError for launches the
  /// device cannot host and propagates any exception thrown by the kernel
  /// body (including divergent-barrier detection).
  [[nodiscard]] LaunchResult launch(const LaunchConfig& config, const KernelFn& kernel) const;

 private:
  DeviceSpec spec_;
  EngineOptions options_;
};

}  // namespace gpusim

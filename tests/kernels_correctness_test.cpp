// End-to-end functional correctness of the four GPU algorithms: every
// algorithm must reproduce the serial oracle (thread-level and block-level
// composition) or the matching chunked CPU reference (block-level + expiry),
// across semantics, levels, thread counts and data distributions.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/candidate_gen.hpp"
#include "core/segment_counter.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "kernels/mining_kernels.hpp"

namespace gm::kernels {
namespace {

using core::Alphabet;
using core::Episode;
using core::Semantics;
using core::Sequence;

gpusim::Engine small_engine() {
  gpusim::EngineOptions opts;
  opts.host_threads = 2;
  opts.simulate_texture_cache = false;  // speed: miss counts unused here
  return gpusim::Engine(gpusim::geforce_8800_gts_512(), opts);
}

struct Case {
  Algorithm algorithm;
  Semantics semantics;
  int level;
  int threads_per_block;

  friend std::ostream& operator<<(std::ostream& os, const Case& c) {
    return os << to_string(c.algorithm) << "/" << core::to_string(c.semantics) << "/L"
              << c.level << "/t" << c.threads_per_block;
  }
};

class KernelCorrectness : public ::testing::TestWithParam<Case> {};

TEST_P(KernelCorrectness, MatchesSerialOracle) {
  const Case c = GetParam();
  const Alphabet alphabet(5);
  const gpusim::Engine engine = small_engine();

  gm::Rng rng(0xABCD ^ static_cast<unsigned>(c.level * 1337 + c.threads_per_block));
  for (int trial = 0; trial < 3; ++trial) {
    // Prime-ish sizes exercise remainder handling in the chunk geometry.
    const auto size = static_cast<std::int64_t>(731 + rng.below(800));
    const Sequence db = data::uniform_database(alphabet, size, rng());
    const auto episodes = core::all_distinct_episodes(alphabet, c.level);

    MiningLaunchParams params;
    params.algorithm = c.algorithm;
    params.threads_per_block = c.threads_per_block;
    params.semantics = c.semantics;
    params.buffer_bytes = 256;  // many buffer iterations at these sizes

    const MiningRun run = run_mining_kernel(engine, db, episodes, params);
    const auto expected = core::count_all(episodes, db, c.semantics);
    ASSERT_EQ(run.counts.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(run.counts[i], expected[i])
          << c << " episode " << episodes[i].to_string(alphabet) << " size " << size;
    }
  }
}

std::vector<Case> correctness_cases() {
  std::vector<Case> cases;
  for (const Algorithm a : all_algorithms()) {
    for (const Semantics s :
         {Semantics::kNonOverlappedSubsequence, Semantics::kContiguousRestart}) {
      for (const int level : {1, 2, 3}) {
        for (const int tpb : {16, 33, 128}) {
          cases.push_back({a, s, level, tpb});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelCorrectness, ::testing::ValuesIn(correctness_cases()));

// ---------------------------------------------------------------------------
// Expiry mode.
// ---------------------------------------------------------------------------

class KernelExpiry : public ::testing::TestWithParam<std::tuple<Algorithm, int /*window*/>> {};

TEST_P(KernelExpiry, ThreadLevelMatchesOracleBlockLevelMatchesChunkedReference) {
  const auto [algorithm, window] = GetParam();
  const Alphabet alphabet(4);
  const gpusim::Engine engine = small_engine();
  const core::ExpiryPolicy expiry{window};
  const int tpb = 32;
  const int buffer_bytes = 128;

  gm::Rng rng(0x5EED ^ static_cast<unsigned>(window));
  for (int trial = 0; trial < 3; ++trial) {
    const auto size = static_cast<std::int64_t>(500 + rng.below(500));
    const Sequence db = data::uniform_database(alphabet, size, rng());
    const auto episodes = core::all_distinct_episodes(alphabet, 2);

    MiningLaunchParams params;
    params.algorithm = algorithm;
    params.threads_per_block = tpb;
    params.expiry = expiry;
    params.buffer_bytes = buffer_bytes;

    const MiningRun run = run_mining_kernel(engine, db, episodes, params);

    for (std::size_t i = 0; i < episodes.size(); ++i) {
      std::int64_t expected = 0;
      if (!is_block_level(algorithm)) {
        expected = core::count_occurrences(episodes[i], db,
                                           Semantics::kNonOverlappedSubsequence, expiry);
      } else {
        // The kernel's contract in expiry mode: identical to the chunked CPU
        // reference with the same boundary geometry and overlap-rescan fix
        // (a documented approximation of the oracle whose accuracy is pinned
        // in core_segment_counter_test).
        const auto bounds =
            algorithm == Algorithm::kBlockTexture
                ? core::chunk_boundaries(size, tpb)
                : core::buffered_slice_boundaries(size, buffer_bytes, tpb);
        expected = core::count_with_boundaries(episodes[i], db, bounds,
                                               Semantics::kNonOverlappedSubsequence, expiry,
                                               core::SpanningFix::kOverlapRescan);
      }
      ASSERT_EQ(run.counts[i], expected)
          << to_string(algorithm) << " window " << window << " episode "
          << episodes[i].to_string(alphabet);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, KernelExpiry,
                         ::testing::Combine(::testing::ValuesIn(all_algorithms()),
                                            ::testing::Values(3, 8, 40)));

// ---------------------------------------------------------------------------
// Targeted cases.
// ---------------------------------------------------------------------------

TEST(Kernels, PaperAlphabetSmokeRun) {
  // Full 26-letter alphabet, level 2 (650 episodes) on a small database.
  const Alphabet alphabet = Alphabet::english_uppercase();
  const gpusim::Engine engine = small_engine();
  const Sequence db = data::uniform_database(alphabet, 2000, 42);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);

  for (const Algorithm a : all_algorithms()) {
    MiningLaunchParams params;
    params.algorithm = a;
    params.threads_per_block = 64;
    params.buffer_bytes = 512;
    const MiningRun run = run_mining_kernel(engine, db, episodes, params);
    const auto expected =
        core::count_all(episodes, db, Semantics::kNonOverlappedSubsequence);
    ASSERT_EQ(run.counts, expected) << to_string(a);
  }
}

TEST(Kernels, PlantedEpisodesAreFound) {
  const Alphabet alphabet(10);
  const std::vector<Episode> planted = {
      Episode(std::vector<core::Symbol>{0, 3, 7}),
      Episode(std::vector<core::Symbol>{5, 1, 2}),
  };
  data::SpikeTrainConfig config;
  config.size = 3000;
  config.noise_rate = 0.7;
  config.seed = 9;
  const auto train = data::spike_train(alphabet, planted, config);

  const gpusim::Engine engine = small_engine();
  MiningLaunchParams params;
  params.algorithm = Algorithm::kBlockTexture;
  params.threads_per_block = 32;
  const MiningRun run = run_mining_kernel(engine, train.events, planted, params);
  for (std::size_t i = 0; i < planted.size(); ++i) {
    EXPECT_GE(run.counts[i], train.planted_copies[i]);
    EXPECT_GT(run.counts[i], 0);
  }
}

TEST(Kernels, ThreadPaddingProducesSentinelWork) {
  // 5 episodes, 16 threads/block: 11 padded threads must not disturb counts.
  const Alphabet alphabet(5);
  const Sequence db = data::uniform_database(alphabet, 997, 7);
  const auto episodes = core::all_distinct_episodes(alphabet, 1);
  const gpusim::Engine engine = small_engine();

  MiningLaunchParams params;
  params.algorithm = Algorithm::kThreadTexture;
  params.threads_per_block = 16;
  const MiningRun run = run_mining_kernel(engine, db, episodes, params);
  EXPECT_EQ(run.counts, core::count_all(episodes, db, Semantics::kNonOverlappedSubsequence));
  EXPECT_EQ(run.launch.totals.blocks, 1);
}

TEST(Kernels, BlockLevelRejectsMoreThreadsThanSymbols) {
  const Alphabet alphabet(5);
  const Sequence db = data::uniform_database(alphabet, 30, 7);
  const auto episodes = core::all_distinct_episodes(alphabet, 1);
  MiningLaunchParams params;
  params.algorithm = Algorithm::kBlockTexture;
  params.threads_per_block = 64;
  EXPECT_THROW(DeviceProblem(db, episodes, params), gm::PreconditionError);
}

TEST(Kernels, GeometryMatchesPaperConfigurations) {
  // Level 2, 650 episodes, 64 threads: 11 blocks thread-level, 650 block-level.
  auto thread_geo = launch_geometry(Algorithm::kThreadTexture, 650, 2, 64, 8192);
  EXPECT_EQ(thread_geo.blocks, 11);
  EXPECT_EQ(thread_geo.padded_episodes, 704);
  auto block_geo = launch_geometry(Algorithm::kBlockTexture, 650, 2, 64, 8192);
  EXPECT_EQ(block_geo.blocks, 650);
  auto buffered_geo = launch_geometry(Algorithm::kBlockBuffered, 650, 2, 64, 8192);
  EXPECT_EQ(buffered_geo.shared_mem_per_block, 8192);
}

}  // namespace
}  // namespace gm::kernels

// Chunked (segmented) episode counting and boundary-spanning correction.
//
// The paper's block-level algorithms split the database across the threads of
// a block; occurrences spanning a chunk boundary are missed unless an
// "intermediate step between map and reduce" recovers them (paper Figure 5).
// Two strategies are implemented:
//
//  * kStateComposition (exact, default): every chunk computes its transfer
//    function — for each possible automaton entry state, the occurrences
//    completed inside the chunk and the exit state.  Folding the transfer
//    functions left to right yields exactly the serial count.  Cost is
//    O(chunk * (L+1)) per chunk, so the fix-up work grows with both the
//    number of boundaries and the level, matching the paper's C3.
//
//  * kOverlapRescan (approximation): each boundary is patched by rescanning
//    a window of W symbols across it, counting occurrences that start in the
//    left chunk and end in the right one.  It misses occurrences spanning
//    more than W symbols and its fresh-automaton greedy consumption near a
//    boundary can disagree with the serial automaton's, so it is close to
//    but not exactly the serial count even when W bounds the span (expiry).
//    It models the paper's lightweight "intermediate step" and quantifies
//    the accuracy/cost trade-off against composition.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/automaton.hpp"
#include "core/episode.hpp"

namespace gm::core {

enum class SpanningFix {
  kNone,              ///< chunks counted independently; spanning occurrences lost
  kStateComposition,  ///< exact transfer-function composition
  kOverlapRescan,     ///< approximate boundary-window rescan
};

[[nodiscard]] std::string to_string(SpanningFix fix);

/// Result of scanning one chunk from one entry state.
struct SegmentOutcome {
  std::int64_t count = 0;            ///< occurrences completed inside the chunk
  int exit_state = 0;                ///< automaton state at chunk end
  std::int64_t first_match_pos = 0;  ///< absolute position backing exit_state
};

/// Scan database[begin, end) with the automaton entering in `entry_state`
/// (whose first matched symbol was at absolute `entry_first_pos`).
[[nodiscard]] SegmentOutcome scan_segment(std::span<const Symbol> episode, Semantics semantics,
                                          ExpiryPolicy expiry, std::span<const Symbol> database,
                                          std::int64_t begin, std::int64_t end, int entry_state,
                                          std::int64_t entry_first_pos);

/// Transfer function of one chunk: outcome for every entry state 0..L-1.
/// (Entry state L never occurs: the automaton resets upon acceptance.)
struct SegmentTransfer {
  std::vector<SegmentOutcome> by_entry_state;
};

[[nodiscard]] SegmentTransfer segment_transfer(std::span<const Symbol> episode,
                                               Semantics semantics, ExpiryPolicy expiry,
                                               std::span<const Symbol> database,
                                               std::int64_t begin, std::int64_t end);

/// Count an episode over `database` split into `chunks` equal parts using the
/// selected spanning strategy.  With kStateComposition the result equals
/// count_occurrences() for every input; the others are documented
/// approximations.  `overlap_window` is used by kOverlapRescan (defaults to
/// the expiry window when enabled, else 2*L).
[[nodiscard]] std::int64_t count_chunked(const Episode& episode,
                                         std::span<const Symbol> database, int chunks,
                                         Semantics semantics, ExpiryPolicy expiry,
                                         SpanningFix fix,
                                         std::int64_t overlap_window = 0);

/// Exact fold of cold-start chunk scans — the distrib layer's recombination
/// primitive, and the piece that makes database-partitioned counting exact
/// UNDER EXPIRY (where blind transfer-function composition is not
/// well-defined: a nonzero entry state carries an absolute first-match
/// position the cold scan could not know).
///
/// `cold[c]` is chunk [bounds[c], bounds[c+1]) scanned from entry state 0,
/// with `first_match_pos` absolute.  The fold threads the true entry state
/// through in chunk order: a chunk entered in state 0 reuses the cold outcome
/// verbatim (state 0 carries no position, so cold entry IS the true entry);
/// otherwise the true automaton and a cold twin replay the chunk in lockstep
/// until their configurations coincide — equal state, and equal first-match
/// position whenever the state is nonzero and expiry makes positions matter —
/// after which their futures are identical, so the cold outcome's remaining
/// completions (cold count minus the twin's completions so far) are credited
/// and the chunk's cold exit adopted.  A chunk where they never converge was
/// re-scanned whole by the true automaton, which is simply the serial scan.
///
/// Exact for all semantics x expiry combinations.  `rescanned_symbols`, when
/// non-null, receives the number of lockstep-replayed symbols (the fix-up
/// work the distrib cost model charges for).
[[nodiscard]] std::int64_t fold_cold_scans(std::span<const Symbol> episode,
                                           Semantics semantics, ExpiryPolicy expiry,
                                           std::span<const Symbol> database,
                                           std::span<const std::int64_t> bounds,
                                           std::span<const SegmentOutcome> cold,
                                           std::int64_t* rescanned_symbols = nullptr);

/// Entry-state fold over a window of the stream — the streaming/distrib
/// generalization.  `events` holds positions [base, base + events.size()) of
/// the stream, `bounds` are absolute chunk boundaries with
/// `bounds.front() == base`, and `cold[c]` was scanned from state 0 with
/// ABSOLUTE positions (see distrib/stream_fold's cold_scan_chunk).  The fold
/// enters the first chunk in (`entry_state`, `entry_first_pos`) — typically a
/// checkpoint's exit — and reports the occurrences completed inside the
/// window plus, via `exit`, the configuration the next window resumes from.
/// Exact for all semantics x expiry, by the same lockstep-replay argument.
[[nodiscard]] std::int64_t fold_cold_scans(std::span<const Symbol> episode,
                                           Semantics semantics, ExpiryPolicy expiry,
                                           std::span<const Symbol> events, std::int64_t base,
                                           std::span<const std::int64_t> bounds,
                                           std::span<const SegmentOutcome> cold,
                                           int entry_state, std::int64_t entry_first_pos,
                                           SegmentOutcome* exit,
                                           std::int64_t* rescanned_symbols = nullptr);

/// Occurrences crossing `bound` (start < bound <= end < next_bound), found by
/// a fresh-automaton rescan of [bound-window, bound+window).  The shared
/// primitive behind the overlap-rescan fix; the GPU kernels implement the
/// identical loop with hardware-cost charging.
[[nodiscard]] std::int64_t count_boundary_crossers(std::span<const Symbol> episode,
                                                   Semantics semantics, ExpiryPolicy expiry,
                                                   std::span<const Symbol> database,
                                                   std::int64_t bound, std::int64_t next_bound,
                                                   std::int64_t window);

/// Count with an explicit boundary list (bounds.front() == 0,
/// bounds.back() == database.size(), non-decreasing).  This is the primitive
/// the GPU kernels are validated against: pass the same geometry the kernel
/// used and the results must agree element-for-element.
[[nodiscard]] std::int64_t count_with_boundaries(const Episode& episode,
                                                 std::span<const Symbol> database,
                                                 const std::vector<std::int64_t>& bounds,
                                                 Semantics semantics, ExpiryPolicy expiry,
                                                 SpanningFix fix,
                                                 std::int64_t overlap_window = 0);

/// Chunk boundaries for splitting `size` symbols into `chunks` equal parts
/// (remainder spread over the lowest chunks) — shared by CPU and GPU backends
/// so every implementation agrees on the geometry.
[[nodiscard]] std::vector<std::int64_t> chunk_boundaries(std::int64_t size, int chunks);

/// The boundary list the buffered block kernel (Algorithm 4) induces: the
/// database is staged `buffer_symbols` at a time and each staged buffer is
/// split across `threads` slices.
[[nodiscard]] std::vector<std::int64_t> buffered_slice_boundaries(std::int64_t size,
                                                                  std::int64_t buffer_symbols,
                                                                  int threads);

}  // namespace gm::core

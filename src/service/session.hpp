// MiningSession: the long-lived object behind the service API.
//
// A session owns one loaded database (data::Dataset: events + Alphabet), the
// workload statistics the planner scores against (alphabet size + smoothed
// symbol distribution, measured once per load instead of once per request),
// the planner options a BackendSpec implies (including a fitted
// CalibrationProfile when configured), a default counting backend, and the
// result caches.  It serves MineRequest/CountRequest synchronously:
//
//   validate -> cache lookup -> planner-driven admission -> count -> cache
//
// Admission control uses plan_level cost predictions: a request whose
// predicted time exceeds its latency budget is rejected before any counting
// runs (ErrorCode::kAdmissionRejected), and a mining run whose later levels
// blow the remaining budget is stopped between levels with the partial
// result marked kTruncated.  Failures never escape as exceptions — they come
// back as structured Rejections.
//
// Concurrency: any number of threads may call mine/count concurrently.  A
// shared mutex guards the database (reload() takes it exclusively, so a
// reload waits for in-flight requests and atomically invalidates both
// caches); a plain mutex guards the caches; the built-in default backend is
// serialized by its own mutex.  Workers that want real parallelism call the
// *_with variants with a backend of their own (new_backend()), as
// MiningService does.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/counting.hpp"
#include "data/dataset_io.hpp"
#include "planner/planner.hpp"
#include "service/api.hpp"
#include "service/backend_factory.hpp"
#include "service/result_cache.hpp"

namespace gm::service {

struct SessionOptions {
  /// Backend the session constructs for its own use and for new_backend().
  /// "auto" (the default) re-plans the formulation at every counting level.
  BackendSpec backend = {.name = "auto"};
  std::size_t mine_cache_capacity = 128;
  std::size_t count_cache_capacity = 512;
};

class MiningSession {
 public:
  /// Loads `dataset` as generation 1.  Throws gm::Error on an empty dataset
  /// or an unknown backend spec — construction failures are the caller's
  /// configuration bugs, not request-time rejections.
  explicit MiningSession(data::Dataset dataset, SessionOptions options = {});

  MiningSession(const MiningSession&) = delete;
  MiningSession& operator=(const MiningSession&) = delete;

  /// Swap in a new database: bumps the generation, re-measures the workload
  /// statistics, and invalidates both result caches.  Waits for in-flight
  /// requests to drain.
  void reload(data::Dataset dataset);

  /// Serve one request with the session's own backend (serialized).
  [[nodiscard]] MineResponse mine(const MineRequest& request);
  [[nodiscard]] CountResponse count(const CountRequest& request);

  /// Serve with a caller-owned backend (one per worker thread for real
  /// concurrency).  The backend must have been built for this session's
  /// database shape — new_backend() is the supported way to get one.
  [[nodiscard]] MineResponse mine_with(const MineRequest& request,
                                       core::CountingBackend& backend);
  [[nodiscard]] CountResponse count_with(const CountRequest& request,
                                         core::CountingBackend& backend);

  /// Serve several compatible count requests (same level, semantics and
  /// expiry — see batch_key) with one backend call: episodes are
  /// concatenated, counted together, and the counts split back per request.
  /// Requests that hit the cache or fail admission are handled individually;
  /// responses line up with `requests` by index.
  [[nodiscard]] std::vector<CountResponse> count_batch_with(
      std::span<const CountRequest> requests, core::CountingBackend& backend);

  /// A fresh backend per the session's spec, for worker threads.
  [[nodiscard]] std::unique_ptr<core::CountingBackend> new_backend() const;

  /// Two count requests may share a backend call iff their batch keys match
  /// (episode level, semantics, expiry window).
  [[nodiscard]] static std::uint64_t batch_key(const CountRequest& request);

  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] std::int64_t database_size() const;
  [[nodiscard]] int alphabet_size() const;
  [[nodiscard]] CacheStats mine_cache_stats() const;
  [[nodiscard]] CacheStats count_cache_stats() const;
  [[nodiscard]] const SessionOptions& options() const noexcept { return options_; }

 private:
  struct CachedMine {
    core::MiningResult result;
    std::vector<std::string> plan_notes;
    double predicted_ms = 0.0;
  };
  struct CachedCount {
    std::vector<std::int64_t> counts;
    double predicted_ms = 0.0;
  };

  void load_locked(data::Dataset dataset);

  /// Planner workload for one level of the loaded database (db stats cached
  /// at load time; caller holds the shared db lock).
  [[nodiscard]] planner::Workload level_workload(std::int64_t episode_count, int level,
                                                 core::Semantics semantics,
                                                 core::ExpiryPolicy expiry) const;

  [[nodiscard]] std::uint64_t mine_key(const core::MinerConfig& config) const;
  [[nodiscard]] std::uint64_t count_key(const CountRequest& request) const;

  SessionOptions options_;
  planner::PlannerOptions planner_options_;

  mutable std::shared_mutex db_mutex_;
  data::Dataset dataset_;
  std::uint64_t generation_ = 0;
  std::uint64_t db_digest_ = 0;
  std::vector<double> symbol_freq_;

  mutable std::mutex cache_mutex_;
  ResultCache<CachedMine> mine_cache_;
  ResultCache<CachedCount> count_cache_;

  std::mutex backend_mutex_;
  std::unique_ptr<core::CountingBackend> backend_;
};

}  // namespace gm::service

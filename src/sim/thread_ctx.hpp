// Per-thread execution context for simulated kernels.
//
// A kernel is a C++20 coroutine returning `KernelTask`.  The engine resumes
// every thread's coroutine in warp order; `co_await ctx.syncthreads()` models
// a CUDA `__syncthreads()` barrier: the coroutine suspends until every thread
// in the block has arrived.  All work (arithmetic, memory traffic) is charged
// to per-thread hardware counters either implicitly by the memory views
// (sim/memory.hpp) or explicitly via `ThreadCtx::charge`.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/cache.hpp"
#include "sim/device_spec.hpp"
#include "sim/launch.hpp"
#include "sim/profile.hpp"

namespace gpusim {

/// Counters accumulated by one simulated thread ("lane").
struct ThreadCounters {
  std::uint64_t instructions = 0;  ///< issue slots consumed (memory ops included)
  std::uint64_t tex_ops = 0;
  std::uint64_t shared_ops = 0;
  std::uint64_t global_ops = 0;
  std::uint64_t atomic_ops = 0;
  std::uint64_t tex_bytes = 0;
  std::uint64_t global_bytes = 0;
  std::uint64_t syncs = 0;
};

/// Coroutine handle wrapper for one simulated thread's kernel invocation.
class KernelTask {
 public:
  struct promise_type {
    std::exception_ptr exception;
    bool at_barrier = false;

    KernelTask get_return_object() {
      return KernelTask(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() noexcept { exception = std::current_exception(); }
  };
  using Handle = std::coroutine_handle<promise_type>;

  KernelTask() = default;
  explicit KernelTask(Handle handle) : handle_(handle) {}
  KernelTask(KernelTask&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  KernelTask& operator=(KernelTask&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  KernelTask(const KernelTask&) = delete;
  KernelTask& operator=(const KernelTask&) = delete;
  ~KernelTask() { destroy(); }

  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }
  [[nodiscard]] bool at_barrier() const noexcept {
    return handle_ && !handle_.done() && handle_.promise().at_barrier;
  }
  void clear_barrier() noexcept {
    if (handle_ && !handle_.done()) handle_.promise().at_barrier = false;
  }

  /// Run the thread until it finishes or suspends at a barrier.  Rethrows any
  /// exception the kernel body raised.
  void resume() {
    gm::ensure(handle_ && !handle_.done(), "resumed a finished kernel thread");
    handle_.resume();
    if (handle_.done() && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_ = nullptr;
};

/// State shared by all threads of one block (the simulated SM slice).
struct BlockEnv {
  std::vector<std::byte> shared_mem;
  CacheSim* texture_cache = nullptr;  ///< null when cache simulation is off
  TexturePattern declared_pattern;
  bool pattern_declared = false;
};

class ThreadCtx {
 public:
  ThreadCtx(const DeviceSpec& spec, ThreadCoordinates coords, BlockEnv& env)
      : spec_(&spec), coords_(coords), env_(&env) {}

  // --- identity ------------------------------------------------------------
  [[nodiscard]] int thread_idx() const noexcept { return coords_.thread_index; }
  [[nodiscard]] int block_idx() const noexcept { return coords_.block_index; }
  [[nodiscard]] int block_dim() const noexcept { return coords_.block_dim; }
  [[nodiscard]] int grid_dim() const noexcept { return coords_.grid_dim; }
  [[nodiscard]] int global_thread() const noexcept { return coords_.global_thread(); }
  [[nodiscard]] int warp() const noexcept { return coords_.warp_in_block(spec_->warp_size); }
  [[nodiscard]] int lane() const noexcept { return coords_.lane(spec_->warp_size); }
  [[nodiscard]] const DeviceSpec& device() const noexcept { return *spec_; }

  // --- cost charging ---------------------------------------------------------
  /// Charge `n` arithmetic/control instructions to this lane.
  void charge(std::uint64_t n) noexcept { counters_.instructions += n; }

  // Called by the memory views; each memory operation also occupies one issue
  // slot.
  void note_tex_fetch(std::uint64_t address, int bytes) noexcept {
    ++counters_.instructions;
    ++counters_.tex_ops;
    counters_.tex_bytes += static_cast<std::uint64_t>(bytes);
    if (env_->texture_cache != nullptr) {
      env_->texture_cache->access_range(address, bytes);
    }
  }
  void note_shared_access() noexcept {
    ++counters_.instructions;
    ++counters_.shared_ops;
  }
  void note_global_access(int bytes) noexcept {
    ++counters_.instructions;
    ++counters_.global_ops;
    counters_.global_bytes += static_cast<std::uint64_t>(bytes);
  }
  void note_atomic() {
    if (!spec_->supports_atomics()) {
      gm::raise_device("atomic operations require compute capability >= 1.1 (device is " +
                       spec_->name + ")");
    }
    ++counters_.instructions;
    ++counters_.atomic_ops;
  }

  /// Kernels declare their texture access pattern so the analytic cost model
  /// can reason about cross-block cache sharing (see TexturePattern).
  void declare_texture_pattern(const TexturePattern& pattern) noexcept {
    env_->declared_pattern = pattern;
    env_->pattern_declared = true;
  }

  // --- synchronization -------------------------------------------------------
  struct SyncAwaiter {
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<KernelTask::promise_type> h) const noexcept {
      h.promise().at_barrier = true;
    }
    void await_resume() const noexcept {}
  };

  /// CUDA __syncthreads(): `co_await ctx.syncthreads();`
  [[nodiscard]] SyncAwaiter syncthreads() noexcept {
    ++counters_.instructions;
    ++counters_.syncs;
    return SyncAwaiter{};
  }

  // --- shared memory -----------------------------------------------------------
  [[nodiscard]] std::span<std::byte> shared_bytes() noexcept {
    return {env_->shared_mem.data(), env_->shared_mem.size()};
  }

  [[nodiscard]] const ThreadCounters& counters() const noexcept { return counters_; }

 private:
  const DeviceSpec* spec_;
  ThreadCoordinates coords_;
  BlockEnv* env_;
  ThreadCounters counters_;
};

/// A kernel: invoked once per simulated thread.
using KernelFn = std::function<KernelTask(ThreadCtx&)>;

}  // namespace gpusim

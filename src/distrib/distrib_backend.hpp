// DistribBackend: database-partitioned counting over N workers with dynamic
// work stealing and exact recombination — the distribution layer's
// CountingBackend, and the subsystem that retires the seed-era mapreduce/
// module and kernels/multi_gpu.* predictor.
//
// count() builds a weighted ShardPlan, runs each chunk cold (entry state 0)
// on a worker engine via the work-stealing scheduler, and folds the per-chunk
// outcomes in chunk order with core::fold_cold_scans — bit-exact against the
// serial reference for every semantics x expiry combination, including the
// position-dependent expiry case that defeats blind transfer composition.
//
// Workers model three deployment shapes: the single-scan host engine (the
// default, one pass per chunk driving all episodes), the per-episode serial
// scanner (the reference worker), and a simulated GPU card per shard (host
// cold scans for exact counts, the kernels workload model for the per-chunk
// device charge; simulated_kernel_ms is the slowest card's accumulated time,
// so N cards halve-and-again the simulated wall-clock the way the paper's
// dual-die GX2 would).
#pragma once

#include <cstdint>
#include <string>

#include "core/counting.hpp"
#include "distrib/scheduler.hpp"
#include "distrib/shard_plan.hpp"
#include "kernels/mining_kernels.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_spec.hpp"

namespace gm::distrib {

/// Inner engine each worker runs on the chunks it claims.
enum class WorkerKind {
  kSingleScan,  ///< core single-scan engine: one pass per chunk, all episodes
  kSerial,      ///< per-episode scan_segment (the reference worker)
  kGpuSim,      ///< simulated card per shard: host cold scans + analytic charge
};

[[nodiscard]] std::string to_string(WorkerKind kind);

struct DistribOptions {
  int shards = 2;
  int steal_granularity = 4;
  WorkerKind worker = WorkerKind::kSingleScan;
  /// false: equal-symbol chunks instead of drain-weighted ones (tests provoke
  /// steals by disabling the balance estimate on skewed streams).
  bool weighted_plan = true;
  /// kGpuSim only: the card every shard simulates, its launch shape, and the
  /// cost constants the per-chunk charge is computed with.
  gpusim::DeviceSpec device;
  kernels::MiningLaunchParams launch = {};
  kernels::KernelCostProfile kernel_costs = {};
  gpusim::CostParams cost_params = {};

  DistribOptions();  ///< defaults the device to the paper's GTX 280
};

class DistribBackend final : public core::CountingBackend {
 public:
  explicit DistribBackend(DistribOptions options = {});

  /// "distrib-x4[cpu-single-scan]", "distrib-x2[gpusim]", ...
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] core::CountResult count(const core::CountRequest& request) override;
  /// The gpusim worker models cards running the staged kernels, so it
  /// inherits their frame-register level cap; host workers are unbounded.
  [[nodiscard]] int max_level() const override;

  /// Telemetry of the most recent count().
  struct RunTelemetry {
    StealStats steal;
    std::int64_t rescanned_symbols = 0;  ///< fold fix-up work (lockstep replay)
    int chunks = 0;
  };
  [[nodiscard]] const RunTelemetry& last_run() const noexcept { return telemetry_; }
  [[nodiscard]] const DistribOptions& options() const noexcept { return options_; }

 private:
  DistribOptions options_;
  RunTelemetry telemetry_;
};

}  // namespace gm::distrib

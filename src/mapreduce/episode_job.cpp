#include "mapreduce/episode_job.hpp"

#include "common/error.hpp"
#include "core/serial_counter.hpp"

namespace gm::mapreduce {
namespace {

struct ChunkUnit {
  std::size_t episode = 0;
  int chunk = 0;
};

}  // namespace

std::vector<std::int64_t> count_episodes_thread_level(
    std::span<const core::Symbol> database, std::span<const core::Episode> episodes,
    const EpisodeCountOptions& options) {
  gm::expects(!episodes.empty(), "need at least one episode");

  std::vector<std::size_t> indices(episodes.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;

  Job<std::size_t, std::size_t, std::int64_t> job;
  job.threads = options.threads;
  job.map = [&](const std::size_t& index, Emitter<std::size_t, std::int64_t>& emitter) {
    emitter.emit(index, core::count_occurrences(episodes[index], database, options.semantics,
                                                options.expiry));
  };
  job.reduce = [](const std::size_t&, const std::vector<std::int64_t>& values) {
    gm::ensure(values.size() == 1, "thread-level reduce must be the identity");
    return values.front();
  };

  const auto pairs = run(job, indices);
  std::vector<std::int64_t> counts(episodes.size(), 0);
  for (const auto& [key, value] : pairs) counts[key] = value;
  return counts;
}

std::vector<std::int64_t> count_episodes_block_level(
    std::span<const core::Symbol> database, std::span<const core::Episode> episodes,
    const EpisodeCountOptions& options) {
  gm::expects(!episodes.empty(), "need at least one episode");
  gm::expects(options.chunks >= 1, "need at least one chunk");

  const auto bounds =
      core::chunk_boundaries(static_cast<std::int64_t>(database.size()), options.chunks);

  std::vector<ChunkUnit> units;
  units.reserve(episodes.size() * static_cast<std::size_t>(options.chunks));
  for (std::size_t e = 0; e < episodes.size(); ++e) {
    for (int c = 0; c < options.chunks; ++c) units.push_back({e, c});
  }

  // Map emits the chunk's transfer function (outcome per entry state) keyed
  // by episode; reduce sorts by chunk and folds — exactly the spanning
  // correction of Figure 5 expressed as a reduce.
  struct ChunkResult {
    int chunk = 0;
    core::SegmentTransfer transfer;
    std::int64_t rescan_crossers = 0;
  };

  Job<ChunkUnit, std::size_t, ChunkResult> job;
  job.threads = options.threads;
  job.map = [&](const ChunkUnit& unit, Emitter<std::size_t, ChunkResult>& emitter) {
    const auto& episode = episodes[unit.episode];
    ChunkResult result;
    result.chunk = unit.chunk;
    const auto begin = bounds[static_cast<std::size_t>(unit.chunk)];
    const auto end = bounds[static_cast<std::size_t>(unit.chunk) + 1];
    if (!options.expiry.enabled()) {
      result.transfer = core::segment_transfer(episode.symbols(), options.semantics,
                                               options.expiry, database, begin, end);
    } else {
      // Expiry mode: independent chunk count + boundary crossers, matching
      // the GPU kernels' overlap-rescan strategy.
      result.transfer.by_entry_state.push_back(
          core::scan_segment(episode.symbols(), options.semantics, options.expiry, database,
                             begin, end, 0, 0));
      if (unit.chunk + 1 < options.chunks) {
        result.rescan_crossers = core::count_boundary_crossers(
            episode.symbols(), options.semantics, options.expiry, database, end,
            bounds[static_cast<std::size_t>(unit.chunk) + 2], options.expiry.window);
      }
    }
    emitter.emit(unit.episode, std::move(result));
  };
  job.reduce = [&](const std::size_t&, const std::vector<ChunkResult>& values) {
    std::vector<const ChunkResult*> ordered(values.size());
    for (const auto& v : values) {
      gm::ensure(v.chunk >= 0 && static_cast<std::size_t>(v.chunk) < ordered.size(),
                 "chunk index out of range in reduce");
      ordered[static_cast<std::size_t>(v.chunk)] = &v;
    }
    ChunkResult folded;
    std::int64_t count = 0;
    int state = 0;
    for (const ChunkResult* r : ordered) {
      gm::ensure(r != nullptr, "missing chunk in reduce");
      if (!options.expiry.enabled()) {
        const auto& o = r->transfer.by_entry_state[static_cast<std::size_t>(state)];
        count += o.count;
        state = o.exit_state;
      } else {
        count += r->transfer.by_entry_state.front().count + r->rescan_crossers;
      }
    }
    folded.transfer.by_entry_state.push_back({count, 0, 0});
    return folded;
  };

  const auto pairs = run(job, units);
  std::vector<std::int64_t> counts(episodes.size(), 0);
  for (const auto& [key, value] : pairs) {
    counts[key] = value.transfer.by_entry_state.front().count;
  }
  return counts;
}

}  // namespace gm::mapreduce

#include "distrib/scheduler.hpp"

#include <atomic>
#include <thread>

#include "common/error.hpp"

namespace gm::distrib {

StealStats run_sharded(
    const ShardPlan& plan,
    const std::function<void(int worker, int chunk, std::int64_t begin, std::int64_t end)>&
        chunk_fn) {
  gm::expects(plan.shards >= 1 && plan.steal_granularity >= 1, "degenerate shard plan");
  gm::expects(plan.chunk_count() == plan.shards * plan.steal_granularity,
              "shard plan chunk grid is inconsistent");

  const int shards = plan.shards;
  const int g = plan.steal_granularity;
  StealStats stats;
  stats.chunks_by_worker.assign(static_cast<std::size_t>(shards), 0);

  auto run_chunk = [&](int worker, int chunk) {
    chunk_fn(worker, chunk, plan.chunk_bounds[static_cast<std::size_t>(chunk)],
             plan.chunk_bounds[static_cast<std::size_t>(chunk) + 1]);
  };

  if (shards == 1) {
    for (int c = 0; c < plan.chunk_count(); ++c) run_chunk(0, c);
    stats.chunks_by_worker[0] = plan.chunk_count();
    return stats;
  }

  // Per-shard claim cursors: shard s hands out chunks [s*g, (s+1)*g) in
  // order.  fetch_add makes every claim unique; an over-claim (cursor past
  // the shard's end) is simply retried elsewhere.
  std::vector<std::atomic<int>> next(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s) next[static_cast<std::size_t>(s)].store(s * g);
  std::atomic<std::int64_t> total_steals{0};

  auto worker_loop = [&](int w) {
    std::int64_t ran = 0;
    std::int64_t stolen = 0;
    // Home phase: drain the own shard first (locality, and thieves target
    // the most-loaded cursor so they rarely collide with the owner early).
    const int home_end = (w + 1) * g;
    for (;;) {
      const int c = next[static_cast<std::size_t>(w)].fetch_add(1, std::memory_order_relaxed);
      if (c >= home_end) break;
      run_chunk(w, c);
      ++ran;
    }
    // Steal phase: repeatedly pick the victim with the most remaining chunks.
    // The snapshot can be stale; a lost race just re-selects.
    for (;;) {
      int victim = -1;
      int best_remaining = 0;
      for (int v = 0; v < shards; ++v) {
        if (v == w) continue;
        const int remaining =
            (v + 1) * g - next[static_cast<std::size_t>(v)].load(std::memory_order_relaxed);
        if (remaining > best_remaining) {
          best_remaining = remaining;
          victim = v;
        }
      }
      if (victim < 0) break;
      const int c =
          next[static_cast<std::size_t>(victim)].fetch_add(1, std::memory_order_relaxed);
      if (c >= (victim + 1) * g) continue;
      run_chunk(w, c);
      ++ran;
      ++stolen;
    }
    stats.chunks_by_worker[static_cast<std::size_t>(w)] = ran;  // disjoint slot
    total_steals.fetch_add(stolen, std::memory_order_relaxed);
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(shards));
  for (int w = 0; w < shards; ++w) pool.emplace_back([&worker_loop, w] { worker_loop(w); });
  for (auto& t : pool) t.join();
  stats.steals = total_steals.load();
  return stats;
}

}  // namespace gm::distrib

#include "core/serial_counter.hpp"

#include "common/error.hpp"

namespace gm::core {

std::int64_t count_occurrences(const Episode& episode, std::span<const Symbol> database,
                               Semantics semantics, ExpiryPolicy expiry) {
  gm::expects(!episode.empty(), "cannot count an empty episode");
  EpisodeAutomaton automaton(episode.symbols(), semantics, expiry);
  std::int64_t count = 0;
  for (std::size_t i = 0; i < database.size(); ++i) {
    if (automaton.step(database[i], static_cast<std::int64_t>(i))) ++count;
  }
  return count;
}

std::vector<std::int64_t> count_all(std::span<const Episode> episodes,
                                    std::span<const Symbol> database, Semantics semantics,
                                    ExpiryPolicy expiry) {
  std::vector<std::int64_t> counts;
  counts.reserve(episodes.size());
  for (const auto& e : episodes) {
    counts.push_back(count_occurrences(e, database, semantics, expiry));
  }
  return counts;
}

}  // namespace gm::core

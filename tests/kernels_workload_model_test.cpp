// The analytic workload models must reproduce the functional engine's
// measured profiles *exactly* (field for field) — this is what licenses the
// benchmark harnesses to sweep the paper's full problem sizes analytically.
#include <gtest/gtest.h>

#include "core/candidate_gen.hpp"
#include "data/generators.hpp"
#include "kernels/mining_kernels.hpp"
#include "kernels/workload_model.hpp"

namespace gm::kernels {
namespace {

using core::Alphabet;

struct Case {
  Algorithm algorithm;
  int level;
  int threads_per_block;
  std::int64_t db_size;
  int buffer_bytes;
  int expiry_window;  // 0 = disabled

  friend std::ostream& operator<<(std::ostream& os, const Case& c) {
    return os << to_string(c.algorithm) << "/L" << c.level << "/t" << c.threads_per_block
              << "/n" << c.db_size << "/B" << c.buffer_bytes << "/W" << c.expiry_window;
  }
};

class WorkloadModelExact : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadModelExact, ProfileEqualsEngineMeasurement) {
  const Case c = GetParam();
  const Alphabet alphabet(5);
  const auto db = data::uniform_database(alphabet, c.db_size, 1234);
  const auto episodes = core::all_distinct_episodes(alphabet, c.level);

  MiningLaunchParams params;
  params.algorithm = c.algorithm;
  params.threads_per_block = c.threads_per_block;
  params.buffer_bytes = c.buffer_bytes;
  params.expiry = core::ExpiryPolicy{c.expiry_window};

  gpusim::EngineOptions opts;
  opts.host_threads = 2;
  opts.simulate_texture_cache = false;
  const gpusim::Engine engine(gpusim::geforce_8800_gts_512(), opts);

  const MiningRun run = run_mining_kernel(engine, db, episodes, params);

  WorkloadSpec spec;
  spec.db_size = c.db_size;
  spec.episode_count = static_cast<std::int64_t>(episodes.size());
  spec.level = c.level;
  spec.params = params;
  const gpusim::KernelProfile modeled = model_profile(engine.spec(), spec);

  // Launch geometry must agree.
  const gpusim::LaunchConfig launch = model_launch_config(spec);
  EXPECT_EQ(launch.grid, run.launch.profile.total_blocks() > 0
                             ? gpusim::Dim3(static_cast<int>(run.launch.profile.total_blocks()))
                             : launch.grid);
  ASSERT_EQ(modeled.total_blocks(), run.launch.profile.total_blocks());

  // Every block's profile must match exactly (excluding tex_miss_bytes,
  // which the engine measures with the cache simulator and the model leaves
  // to the declared access pattern).
  for (std::int64_t b = 0; b < modeled.total_blocks(); ++b) {
    gpusim::BlockProfile expected = run.launch.profile.block_at(b);
    gpusim::BlockProfile actual = modeled.block_at(b);
    expected.tex_miss_bytes = 0.0;
    actual.tex_miss_bytes = 0.0;
    ASSERT_EQ(actual.warps, expected.warps) << c << " block " << b;
    ASSERT_EQ(actual.syncs, expected.syncs) << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.warp_instructions, expected.warp_instructions)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.warp_tex_ops, expected.warp_tex_ops) << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.warp_shared_ops, expected.warp_shared_ops)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.warp_global_ops, expected.warp_global_ops)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.lane_instructions, expected.lane_instructions)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.tex_requests, expected.tex_requests) << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.shared_requests, expected.shared_requests)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.global_requests, expected.global_requests)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.global_bytes, expected.global_bytes) << c << " block " << b;
    ASSERT_EQ(actual.texture, expected.texture) << c << " block " << b;
  }
}

std::vector<Case> exactness_cases() {
  std::vector<Case> cases;
  // Adversarial sizes: primes and off-by-one around buffer/warp boundaries.
  for (const Algorithm a : all_algorithms()) {
    for (const int level : {1, 3}) {
      cases.push_back({a, level, 33, 997, 128, 0});
      cases.push_back({a, level, 64, 1024, 256, 0});
      cases.push_back({a, level, 48, 769, 130, 0});
      cases.push_back({a, level, 32, 911, 128, 7});  // expiry mode
    }
    cases.push_back({a, 2, 16, 501, 64, 0});
    cases.push_back({a, 2, 128, 2048, 512, 13});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkloadModelExact, ::testing::ValuesIn(exactness_cases()));

TEST(WorkloadModel, FullPaperScaleProfilesAreCheap) {
  // The analytic path must handle the real 393,019-symbol, 15,600-episode
  // configuration instantly and produce sane totals.
  WorkloadSpec spec;
  spec.db_size = data::kPaperDatabaseSize;
  spec.episode_count = 15'600;
  spec.level = 3;
  spec.params.algorithm = Algorithm::kBlockTexture;
  spec.params.threads_per_block = 512;

  const auto device = gpusim::geforce_gtx_280();
  const auto profile = model_profile(device, spec);
  EXPECT_EQ(profile.total_blocks(), 15'600);
  const auto totals = gpusim::aggregate(profile);
  // Every block fetches the whole database once.
  EXPECT_NEAR(totals.tex_requests, 15'600.0 * data::kPaperDatabaseSize, 1.0);
}

}  // namespace
}  // namespace gm::kernels

// Figure 7: impact of the algorithm on the GTX 280 at each problem size —
// absolute time (ms) of every formulation vs. threads per block, plus the
// "best configuration" summary of the paper's conclusion.  Beyond the
// paper's four panels, the sweep includes Algorithm 5 (block-bucketed
// single-scan), whose per-symbol work scales with bucket occupancy
// |episodes|/|alphabet| — the row that shows what the accelerator-oriented
// transformation buys over the paper's episode-sized formulations.
#include <iostream>

#include "bench_support/paper_setup.hpp"
#include "bench_support/report.hpp"
#include "kernels/mining_kernels.hpp"

int main() {
  using gm::bench::paper_time_ms;
  using gm::kernels::Algorithm;

  const auto device = gpusim::geforce_gtx_280();
  const auto sweep = gm::bench::paper_thread_sweep();

  std::cout << "Figure 7: execution time (ms) of each algorithm on the GTX 280\n";
  for (int level = 1; level <= 3; ++level) {
    gm::bench::SeriesTable table(
        "Fig 7(" + std::string(1, static_cast<char>('a' + level - 1)) + "): level " +
            std::to_string(level),
        "tpb", sweep);
    for (const Algorithm algorithm : gm::kernels::all_algorithms()) {
      gm::bench::Series series;
      series.label = "Algorithm" + std::to_string(algorithm_number(algorithm));
      for (const int tpb : sweep) {
        series.values.push_back(paper_time_ms(device, algorithm, level, tpb));
      }
      table.add(std::move(series));
    }
    table.print();

    // Best configuration per level (paper conclusion paragraph).
    double best_ms = 0.0;
    Algorithm best_algorithm = Algorithm::kThreadTexture;
    int best_tpb = 0;
    bool first = true;
    for (const Algorithm algorithm : gm::kernels::all_algorithms()) {
      for (const int tpb : sweep) {
        const double ms = paper_time_ms(device, algorithm, level, tpb);
        if (first || ms < best_ms) {
          best_ms = ms;
          best_algorithm = algorithm;
          best_tpb = tpb;
          first = false;
        }
      }
    }
    std::cout << "Best at level " << level << ": " << to_string(best_algorithm) << " with "
              << best_tpb << " threads/block (" << best_ms << " ms)\n";
  }
  return 0;
}

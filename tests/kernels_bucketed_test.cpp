// Algorithm 5 (block-bucketed single-scan) correctness and hardening:
//
//  * randomized bit-exact equivalence against the serial oracle across both
//    semantics x expiry windows x block sizes (the kernel never chunks the
//    database, so unlike the block-level formulations it owes the oracle
//    exact counts even under expiry);
//  * a paper-Figure-5 regression: occurrences crafted to span the chunk /
//    staging-buffer boundaries of the other formulations, on which all five
//    algorithms must agree with the serial reference;
//  * the level-cap error path: a request beyond kMaxLevel must surface a
//    reportable gm::PreconditionError from every entry point (geometry,
//    kernel launch, backend, miner) instead of an invariant failure deep in
//    the kernel layer;
//  * bucketed launch geometry and the first-symbol staging permutation.
#include <gtest/gtest.h>

#include <string>

#include "common/rng.hpp"
#include "core/candidate_gen.hpp"
#include "core/miner.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "kernels/gpu_backend.hpp"
#include "kernels/mining_kernels.hpp"
#include "kernels/workload_model.hpp"

namespace gm::kernels {
namespace {

using core::Alphabet;
using core::Episode;
using core::Semantics;
using core::Sequence;
using core::Symbol;

gpusim::Engine small_engine() {
  gpusim::EngineOptions opts;
  opts.host_threads = 2;
  opts.simulate_texture_cache = false;
  return gpusim::Engine(gpusim::geforce_8800_gts_512(), opts);
}

/// Uniform-level random episodes; repeated symbols allowed on purpose (they
/// exercise the swapped-out-bucket re-file path).
std::vector<Episode> random_level_episodes(Rng& rng, int alphabet_size, int count, int level) {
  std::vector<Episode> episodes;
  episodes.reserve(static_cast<std::size_t>(count));
  for (int e = 0; e < count; ++e) {
    std::vector<Symbol> symbols;
    symbols.reserve(static_cast<std::size_t>(level));
    for (int i = 0; i < level; ++i) {
      symbols.push_back(
          static_cast<Symbol>(rng.below(static_cast<std::uint64_t>(alphabet_size))));
    }
    episodes.emplace_back(std::move(symbols));
  }
  return episodes;
}

// ---------------------------------------------------------------------------
// Randomized bit-exact equivalence vs the serial oracle.
// ---------------------------------------------------------------------------

struct EquivCase {
  Semantics semantics;
  int window;  // 0 = no expiry
  int threads_per_block;
  bool trie_buckets = false;  // shared-prefix token buckets (trie mode)

  friend std::ostream& operator<<(std::ostream& os, const EquivCase& c) {
    return os << core::to_string(c.semantics) << "/W" << c.window << "/t"
              << c.threads_per_block << (c.trie_buckets ? "/trie" : "/flat");
  }
};

class BucketedEquivalence : public ::testing::TestWithParam<EquivCase> {};

TEST_P(BucketedEquivalence, MatchesSerialOracleBitExact) {
  const EquivCase c = GetParam();
  const gpusim::Engine engine = small_engine();
  const core::ExpiryPolicy expiry{c.window};

  gm::Rng rng(0xB0C4E7 ^ static_cast<unsigned>(c.window * 31 + c.threads_per_block));
  for (int trial = 0; trial < 4; ++trial) {
    const int alphabet_size = static_cast<int>(rng.between(3, 26));
    const Alphabet alphabet(alphabet_size);
    const auto size = static_cast<std::int64_t>(600 + rng.below(1000));
    const Sequence db = data::uniform_database(alphabet, size, rng());
    const int level = static_cast<int>(rng.between(1, std::min(alphabet_size, 4)));
    const int count = static_cast<int>(rng.between(1, 90));
    const auto episodes = random_level_episodes(rng, alphabet_size, count, level);

    MiningLaunchParams params;
    params.algorithm = Algorithm::kBlockBucketed;
    params.threads_per_block = c.threads_per_block;
    params.semantics = c.semantics;
    params.expiry = expiry;
    params.trie_buckets = c.trie_buckets;
    params.buffer_bytes = 192;  // several staging iterations at these sizes

    const MiningRun run = run_mining_kernel(engine, db, episodes, params);
    const auto expected = core::count_all(episodes, db, c.semantics, expiry);
    ASSERT_EQ(run.counts.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(run.counts[i], expected[i])
          << c << " trial " << trial << " alphabet " << alphabet_size << " episode "
          << episodes[i].to_string(alphabet) << " db size " << size;
    }
  }
}

std::vector<EquivCase> equivalence_cases() {
  std::vector<EquivCase> cases;
  for (const Semantics s :
       {Semantics::kNonOverlappedSubsequence, Semantics::kContiguousRestart}) {
    for (const int window : {0, 3, 17, 64}) {
      for (const int tpb : {16, 33, 128}) {
        cases.push_back({s, window, tpb, /*trie_buckets=*/false});
        cases.push_back({s, window, tpb, /*trie_buckets=*/true});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BucketedEquivalence,
                         ::testing::ValuesIn(equivalence_cases()));

// ---------------------------------------------------------------------------
// Figure 5 regression: boundary-spanning occurrences, all five formulations.
// ---------------------------------------------------------------------------

TEST(BucketedFigure5, AllFiveFormulationsAgreeOnBoundarySpanningOccurrences) {
  // Every occurrence of <0,1,2> is stretched across many chunk boundaries:
  // its symbols sit ~97 positions apart in a noise stream, so with 32-128
  // threads splitting ~1000 symbols each occurrence crosses several
  // thread-chunk and staging-buffer edges (the paper's Figure 5 hazard).
  // One level per launch (the kernels pack uniform-level lists): all level 3.
  const Alphabet alphabet(5);
  const std::vector<Episode> episodes = {
      Episode(std::vector<Symbol>{0, 1, 2}), Episode(std::vector<Symbol>{2, 0, 1}),
      Episode(std::vector<Symbol>{1, 2, 0}), Episode(std::vector<Symbol>{3, 3, 3})};

  Sequence db(1021, Symbol{4});  // noise symbol 4, prime length
  for (std::size_t i = 0, k = 0; i < db.size(); i += 97, ++k) {
    db[i] = static_cast<Symbol>(k % 3);  // 0, 1, 2, 0, 1, 2, ... far apart
  }
  const gpusim::Engine engine = small_engine();
  const auto expected =
      core::count_all(episodes, db, Semantics::kNonOverlappedSubsequence);
  ASSERT_GT(expected[0], 0);  // the spanning occurrences exist

  for (const Algorithm algorithm : all_algorithms()) {
    for (const int tpb : {32, 128}) {
      MiningLaunchParams params;
      params.algorithm = algorithm;
      params.threads_per_block = tpb;
      params.buffer_bytes = 128;  // several buffers per occurrence span
      const MiningRun run = run_mining_kernel(engine, db, episodes, params);
      ASSERT_EQ(run.counts, expected) << to_string(algorithm) << " tpb " << tpb;
    }
  }
}

// ---------------------------------------------------------------------------
// Level-cap hardening: precondition errors, not invariant aborts.
// ---------------------------------------------------------------------------

std::vector<Episode> level9_episodes() {
  return {Episode(std::vector<Symbol>{0, 1, 2, 3, 4, 5, 6, 7, 8})};
}

TEST(LevelCap, LaunchGeometryNamesTheCap) {
  try {
    (void)launch_geometry(Algorithm::kBlockBucketed, 10, kMaxLevel + 1, 64, 1024);
    FAIL() << "expected PreconditionError";
  } catch (const gm::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("level"), std::string::npos) << e.what();
  }
}

TEST(LevelCap, RunMiningKernelRejectsBeforeStaging) {
  const Alphabet alphabet(10);
  const Sequence db = data::uniform_database(alphabet, 200, 3);
  const auto episodes = level9_episodes();
  const gpusim::Engine engine = small_engine();
  for (const Algorithm algorithm : all_algorithms()) {
    MiningLaunchParams params;
    params.algorithm = algorithm;
    params.threads_per_block = 32;
    try {
      (void)run_mining_kernel(engine, db, episodes, params);
      FAIL() << "expected PreconditionError for " << to_string(algorithm);
    } catch (const gm::PreconditionError& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("level 9"), std::string::npos) << what;
      EXPECT_NE(what.find("kMaxLevel"), std::string::npos) << what;
    }
  }
}

TEST(LevelCap, WorkloadModelRejectsWithTheSameError) {
  WorkloadSpec spec;
  spec.db_size = 1000;
  spec.episode_count = 10;
  spec.level = kMaxLevel + 1;
  spec.params.algorithm = Algorithm::kThreadTexture;
  EXPECT_THROW((void)model_profile(gpusim::geforce_gtx_280(), spec), gm::PreconditionError);
}

TEST(LevelCap, SimGpuBackendSurfacesReportableError) {
  const Alphabet alphabet(10);
  const auto db = data::uniform_database(alphabet, 300, 11);
  MiningLaunchParams params;
  params.algorithm = Algorithm::kBlockBucketed;
  params.threads_per_block = 32;
  SimGpuBackend gpu(gpusim::geforce_gtx_280(), params);
  EXPECT_EQ(gpu.max_level(), kMaxLevel);

  const auto episodes = level9_episodes();
  core::CountRequest request;
  request.database = db;
  request.episodes = episodes;
  try {
    (void)gpu.count(request);
    FAIL() << "expected PreconditionError";
  } catch (const gm::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds the GPU kernel limit"), std::string::npos)
        << e.what();
  }
}

TEST(LevelCap, MinerChecksBackendCapBeforeCounting) {
  // A backend advertising a cap makes the miner raise a reportable error
  // naming the backend and the remedy *before* the over-cap request is
  // issued — this is the CLI's error path for gpusim --max-level > 8.
  class CappedBackend final : public core::CountingBackend {
   public:
    [[nodiscard]] std::string name() const override { return "capped-test-backend"; }
    [[nodiscard]] int max_level() const override { return 2; }
    [[nodiscard]] core::CountResult count(const core::CountRequest& request) override {
      core::CountResult result;
      result.counts = core::count_all(request.episodes, request.database, request.semantics,
                                      request.expiry);
      return result;
    }
  };

  const Alphabet alphabet(4);
  const auto db = data::uniform_database(alphabet, 400, 5);
  CappedBackend backend;

  core::MinerConfig config;
  config.support_threshold = 0.0;  // everything survives: level 3 is reached
  config.max_level = 3;
  try {
    (void)core::mine_frequent_episodes(db, alphabet, backend, config);
    FAIL() << "expected PreconditionError";
  } catch (const gm::PreconditionError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("capped-test-backend"), std::string::npos) << what;
    EXPECT_NE(what.find("level 3"), std::string::npos) << what;
  }

  // At or below the cap the same configuration mines normally.
  config.max_level = 2;
  const auto result = core::mine_frequent_episodes(db, alphabet, backend, config);
  EXPECT_EQ(static_cast<int>(result.levels.size()), 2);
}

// ---------------------------------------------------------------------------
// Geometry and staging permutation.
// ---------------------------------------------------------------------------

TEST(BucketedGeometry, BlocksScaleWithEpisodesOverCapacity) {
  // capacity = tpb * kBucketEpisodesPerThread.
  const auto geo = launch_geometry(Algorithm::kBlockBucketed, 2600, 3, 64, 1024);
  EXPECT_EQ(geo.blocks, (2600 + 511) / 512);  // 6 blocks
  EXPECT_EQ(geo.padded_episodes, 2600);       // no Mars-style padding
  EXPECT_EQ(geo.shared_mem_per_block, 1024);  // DB staging buffer

  // Fewer episodes than one block's capacity: a single block.
  EXPECT_EQ(launch_geometry(Algorithm::kBlockBucketed, 26, 1, 64, 2048).blocks, 1);
}

TEST(BucketedStaging, CountsReturnInCallerOrderDespiteFirstSymbolSort) {
  // Episodes handed over in descending-first-symbol order with distinct
  // planted counts: the staging sort must not leak into the result order.
  const Alphabet alphabet(4);
  Sequence db;
  for (int k = 0; k < 6; ++k) db.push_back(Symbol{0});
  for (int k = 0; k < 4; ++k) db.push_back(Symbol{1});
  for (int k = 0; k < 2; ++k) db.push_back(Symbol{2});
  const std::vector<Episode> episodes = {Episode(std::vector<Symbol>{2}),
                                         Episode(std::vector<Symbol>{1}),
                                         Episode(std::vector<Symbol>{0})};

  MiningLaunchParams params;
  params.algorithm = Algorithm::kBlockBucketed;
  params.threads_per_block = 16;
  params.buffer_bytes = 64;
  const MiningRun run = run_mining_kernel(small_engine(), db, episodes, params);
  EXPECT_EQ(run.counts, (std::vector<std::int64_t>{2, 4, 6}));
}

// ---------------------------------------------------------------------------
// Trie mode: lexicographic staging, count unpermutation, work reduction.
// ---------------------------------------------------------------------------

TEST(TrieBuckets, CountsReturnInCallerOrderDespiteLexicographicSort) {
  // Level-2 episodes handed over scrambled (descending lex order), with
  // distinct planted counts tied to the first symbol's run length.
  const Alphabet alphabet(4);
  Sequence db;
  for (int k = 0; k < 6; ++k) {
    db.push_back(Symbol{0});
    db.push_back(Symbol{3});
  }
  for (int k = 0; k < 4; ++k) {
    db.push_back(Symbol{1});
    db.push_back(Symbol{3});
  }
  for (int k = 0; k < 2; ++k) {
    db.push_back(Symbol{2});
    db.push_back(Symbol{3});
  }
  const std::vector<Episode> episodes = {Episode(std::vector<Symbol>{2, 3}),
                                         Episode(std::vector<Symbol>{1, 3}),
                                         Episode(std::vector<Symbol>{0, 3})};

  MiningLaunchParams params;
  params.algorithm = Algorithm::kBlockBucketed;
  params.threads_per_block = 16;
  params.trie_buckets = true;
  params.buffer_bytes = 64;
  const MiningRun run = run_mining_kernel(small_engine(), db, episodes, params);
  EXPECT_EQ(run.counts, (std::vector<std::int64_t>{2, 4, 6}));
}

TEST(TrieBuckets, SharedPrefixSetDrainsFewerInstructionsThanFlat) {
  // A candidate set with massive prefix sharing (apriori level-6 joins: four
  // hot length-4 prefixes, each extended by every (y, z) pair): the trie
  // formulation must agree with the oracle bit-for-bit AND charge measurably
  // fewer lane instructions than the flat formulation, since one token drain
  // advances every prefix-sharer and each thread's 8 contiguous slots all
  // ride the same length-4 prefix chain.
  const Alphabet alphabet(4);
  gm::Rng rng(0x5EEDF00D);
  const Sequence db = data::uniform_database(alphabet, 4000, rng());
  std::vector<Episode> episodes;
  const std::vector<std::vector<Symbol>> prefixes = {
      {0, 1, 2, 3}, {1, 2, 3, 0}, {2, 3, 0, 1}, {3, 0, 1, 2}};
  for (const auto& prefix : prefixes) {
    for (int y = 0; y < 4; ++y) {
      for (int z = 0; z < 4; ++z) {
        std::vector<Symbol> symbols = prefix;
        symbols.push_back(static_cast<Symbol>(y));
        symbols.push_back(static_cast<Symbol>(z));
        episodes.emplace_back(std::move(symbols));
      }
    }
  }

  const gpusim::Engine engine = small_engine();
  const auto expected =
      core::count_all(episodes, db, Semantics::kNonOverlappedSubsequence);

  MiningLaunchParams params;
  params.algorithm = Algorithm::kBlockBucketed;
  params.threads_per_block = 8;  // one block, each thread owns one prefix run
  params.buffer_bytes = 512;

  params.trie_buckets = false;
  const MiningRun flat = run_mining_kernel(engine, db, episodes, params);
  params.trie_buckets = true;
  const MiningRun trie = run_mining_kernel(engine, db, episodes, params);

  EXPECT_EQ(flat.counts, expected);
  EXPECT_EQ(trie.counts, expected);
  EXPECT_LT(trie.launch.totals.lane_instructions,
            0.75 * flat.launch.totals.lane_instructions)
      << "trie " << trie.launch.totals.lane_instructions << " vs flat "
      << flat.launch.totals.lane_instructions;
}

TEST(TrieBuckets, RejectedOutsideAlgorithmFive) {
  MiningLaunchParams params;
  params.algorithm = Algorithm::kThreadBuffered;
  params.trie_buckets = true;
  try {
    validate_launch_params(params, 2);
    FAIL() << "expected PreconditionError";
  } catch (const gm::PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("trie_buckets"), std::string::npos) << e.what();
  }
}

}  // namespace
}  // namespace gm::kernels

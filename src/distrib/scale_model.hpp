// Multi-device scaling model: when do N cards beat one?
//
// Subsumes the seed-era kernels/multi_gpu.* predictor.  Two shard axes are
// modeled, matching the two ways the distribution layer can split work:
//
//  * kEpisodes — the candidate set is split across devices and each runs the
//    same kernel over the whole stream (the 9800 GX2 dual-die strategy the
//    paper leaves on the table; counting is embarrassingly parallel across
//    episodes, so the reduce is concatenation and merge_ms stays 0).
//  * kDatabase — the stream is split across devices (the DistribBackend
//    axis); every device counts every episode on its shard, and the host
//    folds the per-shard cold outcomes in chunk order (exact, see
//    core::fold_cold_scans), charged per (episode, device) fold entry.
//
// Total time is the slowest device plus the merge; the imbalance ratio
// (max over mean of per-device kernel time) is reported so the planner can
// fold a skew penalty into its device-count sweep.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/workload_model.hpp"

namespace gm::distrib {

enum class ShardAxis {
  kEpisodes,
  kDatabase,
};

struct ScalePrediction {
  double total_ms = 0.0;   ///< max per-device time + merge_ms
  double merge_ms = 0.0;   ///< host-side recombination charge (kDatabase only)
  double imbalance = 1.0;  ///< max / mean of per-device kernel time
  std::vector<double> per_device_ms;
  /// Episodes (kEpisodes) or stream symbols (kDatabase) per device.
  std::vector<std::int64_t> share_per_device;
};

/// Default per-entry host fold charge backing merge_ms, in nanoseconds per
/// (episode, device) cold-outcome fold step; the planner passes its
/// calibrated cpu.distrib_merge_ns instead.
inline constexpr double kDefaultMergeNsPerEntry = 12.0;

/// Predict kernel time when the workload is split across `devices` copies of
/// `device` along `axis`.  devices == 1 degenerates to predict_mining_time
/// (plus a zero merge on the episode axis).
[[nodiscard]] ScalePrediction predict_scaled_mining(
    const gpusim::DeviceSpec& device, int devices, const kernels::WorkloadSpec& spec,
    ShardAxis axis, const gpusim::CostModel& model = gpusim::CostModel(),
    const kernels::KernelCostProfile& costs = {},
    double merge_ns_per_entry = kDefaultMergeNsPerEntry);

}  // namespace gm::distrib

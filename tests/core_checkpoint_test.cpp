// Resumable-scan checkpoint suite: capture -> (serialize elsewhere) ->
// restore -> resume must equal an uninterrupted scan bit-for-bit, across
// semantics x expiry x capture points x engines — including cross-engine
// resumes (flat capture into trie restore and back) and mid-window captures
// whose expiry deadlines straddle the pause.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/scan_checkpoint.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "random_episode_util.hpp"

namespace gm::core {
namespace {

using test::random_episodes;

constexpr ScanEngine kEngines[] = {ScanEngine::kSingleScan, ScanEngine::kTrie};

std::span<const Symbol> prefix_of(const Sequence& db, std::size_t n) {
  return {db.data(), n};
}

std::span<const Symbol> tail_of(const Sequence& db, std::size_t n) {
  return {db.data() + n, db.size() - n};
}

TEST(ScanCheckpoint, ResumeEqualsUninterruptedAcrossSemanticsExpiryAndEngines) {
  Rng rng(0x5EED5CA7);
  const Semantics all_semantics[] = {Semantics::kNonOverlappedSubsequence,
                                     Semantics::kContiguousRestart};
  const std::int64_t windows[] = {0, 2, 9};
  const double capture_fracs[] = {0.0, 0.37, 0.81, 1.0};
  for (int trial = 0; trial < 5; ++trial) {
    const auto alphabet_size = static_cast<int>(rng.between(3, 16));
    const Alphabet alphabet(alphabet_size);
    const auto db = data::markov_database(alphabet, 700, 0.55, rng());
    const auto episodes =
        random_episodes(rng, alphabet_size, static_cast<int>(rng.between(2, 25)), 4);
    for (const Semantics semantics : all_semantics) {
      for (const std::int64_t window : windows) {
        const ExpiryPolicy expiry{window};
        const auto expected = count_all(episodes, db, semantics, expiry);
        for (const double frac : capture_fracs) {
          const auto cut = static_cast<std::size_t>(frac * static_cast<double>(db.size()));
          for (const ScanEngine capture_engine : kEngines) {
            StreamScan scan(episodes, semantics, expiry, capture_engine);
            scan.feed(prefix_of(db, cut));
            const ScanCheckpoint checkpoint = scan.checkpoint();
            for (const ScanEngine resume_engine : kEngines) {
              ASSERT_EQ(resume_scan(checkpoint, tail_of(db, cut), resume_engine), expected)
                  << "trial " << trial << " semantics " << to_string(semantics) << " window "
                  << window << " cut " << cut << " engines "
                  << static_cast<int>(capture_engine) << "->"
                  << static_cast<int>(resume_engine);
            }
          }
        }
      }
    }
  }
}

TEST(ScanCheckpoint, MidWindowDeadlineFiresAtTheRightPositionAfterResume) {
  // <A,B> window 4 over "A C C | C B": the match starting at 0 is still live
  // at the cut (deadline at position 4), and B arrives at 4 — too late by
  // exactly one position.  An engine that forgot the live deadline would
  // count 1.
  const std::vector<Episode> episodes = {Episode({0, 1})};
  const Sequence db = {0, 2, 2, 2, 1};
  const ExpiryPolicy expiry{4};
  for (const ScanEngine capture_engine : kEngines) {
    for (const ScanEngine resume_engine : kEngines) {
      StreamScan scan(episodes, Semantics::kNonOverlappedSubsequence, expiry, capture_engine);
      scan.feed(prefix_of(db, 3));
      const auto counts =
          resume_scan(scan.checkpoint(), tail_of(db, 3), resume_engine);
      EXPECT_EQ(counts, (std::vector<std::int64_t>{0}));
    }
  }
  // Same shape, window 5: the deadline now clears B's position, so the match
  // must survive the pause and complete.
  const ExpiryPolicy wider{5};
  for (const ScanEngine capture_engine : kEngines) {
    for (const ScanEngine resume_engine : kEngines) {
      StreamScan scan(episodes, Semantics::kNonOverlappedSubsequence, wider, capture_engine);
      scan.feed(prefix_of(db, 3));
      const auto counts =
          resume_scan(scan.checkpoint(), tail_of(db, 3), resume_engine);
      EXPECT_EQ(counts, (std::vector<std::int64_t>{1}));
    }
  }
}

TEST(ScanCheckpoint, AnyBatchingIsBitExactWithOneShotFeed) {
  Rng rng(0xBA7C4);
  const Alphabet alphabet(8);
  const auto db = data::uniform_database(alphabet, 900, rng());
  const auto episodes = random_episodes(rng, 8, 15, 3);
  const ExpiryPolicy expiry{6};
  const auto expected = count_all(episodes, db, Semantics::kNonOverlappedSubsequence, expiry);
  for (const ScanEngine engine : kEngines) {
    StreamScan scan(episodes, Semantics::kNonOverlappedSubsequence, expiry, engine);
    std::size_t fed = 0;
    while (fed < db.size()) {
      const auto batch = std::min<std::size_t>(rng.between(1, 97), db.size() - fed);
      scan.feed({db.data() + fed, batch});
      fed += batch;
    }
    EXPECT_EQ(scan.counts(), expected);
    EXPECT_EQ(scan.high_water(), static_cast<std::int64_t>(db.size()));
  }
}

TEST(ScanCheckpoint, DigestIsBatchingInvariantAndGenerationRoundTrips) {
  const Sequence db = {3, 1, 4, 1, 5, 9, 2, 6};
  const std::uint64_t whole = stream_digest_extend(stream_digest_seed(), db);
  std::uint64_t chunked = stream_digest_seed();
  chunked = stream_digest_extend(chunked, prefix_of(db, 3));
  chunked = stream_digest_extend(chunked, tail_of(db, 3));
  EXPECT_EQ(chunked, whole);

  StreamScan scan({Episode({1, 2})}, Semantics::kNonOverlappedSubsequence, {});
  scan.feed(db);
  const ScanCheckpoint checkpoint = scan.checkpoint(42);
  EXPECT_EQ(checkpoint.prefix_digest, whole);
  EXPECT_EQ(checkpoint.generation, 42u);
  EXPECT_EQ(checkpoint.high_water, 8);
}

TEST(ScanCheckpoint, MalformedCheckpointsAreRefused) {
  StreamScan scan({Episode({0, 1, 2})}, Semantics::kNonOverlappedSubsequence, {});
  const Sequence db = {0, 1, 0, 1};
  scan.feed(db);
  const ScanCheckpoint good = scan.checkpoint();

  ScanCheckpoint truncated = good;
  truncated.progress.clear();
  EXPECT_THROW(StreamScan{truncated}, gm::Error);

  ScanCheckpoint bad_state = good;
  bad_state.progress[0].state = 3;  // == level: automata reset on accept
  EXPECT_THROW(StreamScan{bad_state}, gm::Error);

  ScanCheckpoint bad_pos = good;
  bad_pos.progress[0].state = 1;
  bad_pos.progress[0].first_pos = good.high_water;  // at/after the high-water mark
  EXPECT_THROW(StreamScan{bad_pos}, gm::Error);
}

}  // namespace
}  // namespace gm::core

// Resumable scan checkpoints: pause a multi-episode counting scan anywhere in
// the stream, serialize it, and continue later bit-exactly.
//
// Why this is possible at all: a serial episode automaton's future depends
// only on (state, first_match_pos) — expiry is evaluated at step time from
// first_pos, never from hidden timers — so a scan over N episodes is fully
// determined by N `EpisodeProgress` records plus the next stream position.
// That capture is engine-agnostic: progress taken from the flat single-scan
// engine restores into the shared-prefix trie engine and vice versa, because
// both are bit-exact re-groupings of the same N serial automata.
//
// A `ScanCheckpoint` bundles the progress records with everything needed to
// refuse a bogus resume: the scan parameters (semantics + expiry), the
// episode list itself, the event high-water mark (count of consumed events ==
// the next absolute position), a running FNV-1a digest of the consumed
// prefix, and the caller's database generation.  `StreamScan` is the live
// object: construct fresh or from a checkpoint, `feed()` event batches as
// they arrive, `checkpoint()` at any batch boundary.
//
// Mid-window captures are first-class: an in-flight match whose expiry
// deadline lies beyond the checkpoint re-arms on restore from its absolute
// first_pos, so a window straddling the pause fires at exactly the position
// it would have in an uninterrupted scan.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/episode.hpp"
#include "core/episode_trie.hpp"
#include "core/multi_counter.hpp"

namespace gm::core {

/// Which incremental engine drives the scan.  Checkpoints do not record this:
/// a capture from either engine restores into either engine.
enum class ScanEngine {
  kSingleScan,  // flat symbol -> waiting-automata index (core/multi_counter)
  kTrie,        // shared-prefix token engine (core/episode_trie)
};

/// A paused scan, serializable and engine-agnostic.  `high_water` is the
/// number of events consumed so far (== the absolute position the next fed
/// event must carry); `prefix_digest` is FNV-1a over those events' symbols,
/// so a resume against a database whose retained prefix changed is refused
/// by callers that track digests; `generation` is whatever database version
/// tag the caller wants round-tripped (the service layer stores its session
/// generation here).
struct ScanCheckpoint {
  Semantics semantics = Semantics::kNonOverlappedSubsequence;
  ExpiryPolicy expiry;
  std::int64_t high_water = 0;
  std::uint64_t prefix_digest = 0;
  std::uint64_t generation = 0;
  std::vector<Episode> episodes;
  std::vector<EpisodeProgress> progress;  // parallel to `episodes`
};

/// FNV-1a seed for an empty event prefix.
[[nodiscard]] std::uint64_t stream_digest_seed();

/// Extends a running FNV-1a event digest by one batch.  Chunked digesting is
/// associative-by-concatenation: digesting a stream in any batching yields
/// the same value as one pass.
[[nodiscard]] std::uint64_t stream_digest_extend(std::uint64_t digest,
                                                 std::span<const Symbol> events);

/// Incremental multi-episode scan with capture/resume.  Owns its episode
/// list, so checkpoints and the object itself outlive the caller's storage.
class StreamScan {
 public:
  /// A fresh scan positioned before the first event.
  StreamScan(std::vector<Episode> episodes, Semantics semantics, ExpiryPolicy expiry,
             ScanEngine engine = ScanEngine::kSingleScan);

  /// Continues a captured scan on either engine.  Validates internal
  /// consistency (progress parallel to episodes, states inside each
  /// episode's automaton, in-flight first positions before the high-water
  /// mark); database prefix identity is the caller's check via
  /// `prefix_digest()`.
  explicit StreamScan(const ScanCheckpoint& checkpoint,
                      ScanEngine engine = ScanEngine::kSingleScan);

  StreamScan(StreamScan&&) noexcept;
  StreamScan& operator=(StreamScan&&) noexcept;
  ~StreamScan();

  /// Consumes the next batch of events; positions continue from the
  /// high-water mark, so feeding a stream in any batching is bit-exact with
  /// one uninterrupted scan.
  void feed(std::span<const Symbol> events);

  /// Captures the paused scan.  `generation` is round-tripped verbatim.
  [[nodiscard]] ScanCheckpoint checkpoint(std::uint64_t generation = 0) const;

  /// Per-episode occurrence counts over everything fed so far, in episode
  /// order — exactly `count_occurrences(episodes[i], prefix, ...)`.
  [[nodiscard]] std::vector<std::int64_t> counts() const;

  [[nodiscard]] std::span<const Episode> episodes() const { return episodes_; }
  [[nodiscard]] Semantics semantics() const { return semantics_; }
  [[nodiscard]] ExpiryPolicy expiry() const { return expiry_; }
  [[nodiscard]] ScanEngine engine() const { return engine_; }
  [[nodiscard]] std::int64_t high_water() const { return high_water_; }
  [[nodiscard]] std::uint64_t prefix_digest() const { return prefix_digest_; }

 private:
  std::vector<Episode> episodes_;
  Semantics semantics_ = Semantics::kNonOverlappedSubsequence;
  ExpiryPolicy expiry_;
  ScanEngine engine_ = ScanEngine::kSingleScan;
  std::int64_t high_water_ = 0;
  std::uint64_t prefix_digest_ = 0;
  std::optional<MultiCounter> flat_;
  std::optional<TrieCounter> trie_;
};

/// One-shot resume: restores `checkpoint`, feeds `new_events`, and returns
/// the per-episode counts over prefix + new_events.  Bit-exact with a full
/// recount of the concatenated stream, for every semantics and expiry.
[[nodiscard]] std::vector<std::int64_t> resume_scan(
    const ScanCheckpoint& checkpoint, std::span<const Symbol> new_events,
    ScanEngine engine = ScanEngine::kSingleScan);

}  // namespace gm::core

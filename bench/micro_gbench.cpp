// google-benchmark microbenchmarks of the substrate itself: automaton
// stepping, serial counting, chunked composition, cache simulation, the
// functional engine, and the analytic model (which must stay in the
// microsecond range to make full-scale sweeps free).
#include <benchmark/benchmark.h>

#include "core/candidate_gen.hpp"
#include "core/segment_counter.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "kernels/mining_kernels.hpp"
#include "kernels/workload_model.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"

namespace {

using gm::core::Alphabet;
using gm::core::Episode;
using gm::core::Semantics;

const Alphabet kAlphabet = Alphabet::english_uppercase();

void BM_AutomatonScan(benchmark::State& state) {
  const auto db = gm::data::uniform_database(kAlphabet, 100'000, 3);
  const Episode episode = Episode::from_text(kAlphabet, "ABC");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        count_occurrences(episode, db, Semantics::kNonOverlappedSubsequence));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_AutomatonScan);

void BM_ChunkedComposition(benchmark::State& state) {
  const auto db = gm::data::uniform_database(kAlphabet, 100'000, 3);
  const Episode episode = Episode::from_text(kAlphabet, "ABC");
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_chunked(episode, db, static_cast<int>(state.range(0)),
                                           Semantics::kNonOverlappedSubsequence, {},
                                           gm::core::SpanningFix::kStateComposition));
  }
}
BENCHMARK(BM_ChunkedComposition)->Arg(8)->Arg(64);

void BM_CacheSimStream(benchmark::State& state) {
  gpusim::CacheSim cache(8192, 32, 4);
  std::uint64_t address = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(address));
    address += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimStream);

void BM_FunctionalEngineLaunch(benchmark::State& state) {
  gpusim::EngineOptions opts;
  opts.host_threads = 1;
  opts.simulate_texture_cache = false;
  const gpusim::Engine engine(gpusim::geforce_8800_gts_512(), opts);
  const auto db = gm::data::uniform_database(kAlphabet, 2'000, 3);
  const auto episodes = gm::core::all_distinct_episodes(kAlphabet, 1);
  gm::kernels::MiningLaunchParams params;
  params.algorithm = gm::kernels::Algorithm::kThreadTexture;
  params.threads_per_block = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gm::kernels::run_mining_kernel(engine, db, episodes, params));
  }
  state.SetItemsProcessed(state.iterations() * 26 * 2'000);  // lane-chars simulated
}
BENCHMARK(BM_FunctionalEngineLaunch);

void BM_AnalyticModelFullScale(benchmark::State& state) {
  const auto device = gpusim::geforce_gtx_280();
  const gpusim::CostModel model;
  gm::kernels::WorkloadSpec spec;
  spec.db_size = gm::data::kPaperDatabaseSize;
  spec.episode_count = 15'600;
  spec.level = 3;
  spec.params.algorithm = gm::kernels::Algorithm::kBlockBuffered;
  spec.params.threads_per_block = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict_mining_time(device, spec, model));
  }
}
BENCHMARK(BM_AnalyticModelFullScale);

void BM_SpikeTrainGeneration(benchmark::State& state) {
  const std::vector<Episode> planted = {Episode::from_text(kAlphabet, "ABC")};
  gm::data::SpikeTrainConfig config;
  config.size = 50'000;
  for (auto _ : state) {
    config.seed += 1;
    benchmark::DoNotOptimize(gm::data::spike_train(kAlphabet, planted, config));
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_SpikeTrainGeneration);

}  // namespace

BENCHMARK_MAIN();

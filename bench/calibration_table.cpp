// Calibration report: predicted kernel times at reference configurations,
// side by side with the values read off the paper's published figures.
//
// This is the tool used to fit the cost-model constants (see
// kernels/cost_constants.hpp and gpusim::CostParams); EXPERIMENTS.md records
// the final residuals.  "paper" values are approximate readings from the
// figure axes, not tabulated numbers.
#include <cmath>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/paper_setup.hpp"
#include "kernels/mining_kernels.hpp"

namespace {

using gm::bench::paper_time_ms;
using gm::kernels::Algorithm;

struct Reference {
  std::string figure;
  std::string card;
  Algorithm algorithm;
  int level;
  int tpb;
  double paper_ms;  ///< approximate reading from the figure
};

const std::vector<Reference> kReferences = {
    // Fig 9(a): Algo1 L1 — flat, clock-ordered (8800 fastest).
    {"9a", "8800", Algorithm::kThreadTexture, 1, 128, 127.0},
    {"9a", "gx2", Algorithm::kThreadTexture, 1, 128, 140.0},
    {"9a", "gtx280", Algorithm::kThreadTexture, 1, 128, 160.0},
    {"9a", "gtx280", Algorithm::kThreadTexture, 1, 512, 290.0},
    // Fig 8(a)/9(b): Algo1 L2 — flat bands 165/180/215.
    {"8a", "8800", Algorithm::kThreadTexture, 2, 256, 165.0},
    {"8a", "gx2", Algorithm::kThreadTexture, 2, 256, 180.0},
    {"8a", "gtx280", Algorithm::kThreadTexture, 2, 256, 215.0},
    // Fig 9(c): Algo1 L3.
    {"9c", "gtx280", Algorithm::kThreadTexture, 3, 96, 300.0},
    {"9c", "gtx280", Algorithm::kThreadTexture, 3, 512, 700.0},
    // Fig 9(d-f): Algo2.
    {"9d", "gtx280", Algorithm::kThreadBuffered, 1, 512, 45.0},
    {"9e", "gtx280", Algorithm::kThreadBuffered, 2, 512, 50.0},
    {"9f", "gtx280", Algorithm::kThreadBuffered, 3, 96, 200.0},
    {"9f", "gtx280", Algorithm::kThreadBuffered, 3, 512, 500.0},
    // Fig 8(b)/9(g): Algo3 L1 — bandwidth-split plateaus.
    {"8b", "8800", Algorithm::kBlockTexture, 1, 16, 13.0},
    {"8b", "8800", Algorithm::kBlockTexture, 1, 256, 6.0},
    {"8b", "gtx280", Algorithm::kBlockTexture, 1, 256, 2.0},
    // Fig 7(b)/9(h): Algo3 L2 — best overall at 64 threads.
    {"7b", "gtx280", Algorithm::kBlockTexture, 2, 64, 70.0},
    {"7b", "gtx280", Algorithm::kBlockTexture, 2, 512, 200.0},
    // Fig 9(i): Algo3 L3.
    {"9i", "gtx280", Algorithm::kBlockTexture, 3, 512, 2000.0},
    {"9i", "8800", Algorithm::kBlockTexture, 3, 512, 3700.0},
    // Fig 9(j): Algo4 L1 — sub-ms to few-ms; best config of C4.
    {"9j", "gtx280", Algorithm::kBlockBuffered, 1, 256, 1.0},
    {"9j", "gtx280", Algorithm::kBlockBuffered, 1, 16, 6.0},
    // Fig 7(b)/9(k): Algo4 L2 — crossing Algo3 near 240 threads.
    {"7b", "gtx280", Algorithm::kBlockBuffered, 2, 16, 450.0},
    {"7b", "gtx280", Algorithm::kBlockBuffered, 2, 256, 120.0},
    // Fig 9(l): Algo4 L3.
    {"9l", "gtx280", Algorithm::kBlockBuffered, 3, 96, 900.0},
    {"9l", "8800", Algorithm::kBlockBuffered, 3, 512, 1700.0},
};

}  // namespace

int main() {
  std::cout << "Calibration: model predictions vs. paper figure readings\n";
  std::cout << std::left << std::setw(6) << "fig" << std::setw(8) << "card" << std::setw(24)
            << "algorithm" << std::setw(4) << "L" << std::setw(6) << "tpb" << std::right
            << std::setw(12) << "paper ms" << std::setw(12) << "model ms" << std::setw(10)
            << "ratio" << "  bound-by\n";

  double log_error = 0.0;
  for (const auto& r : kReferences) {
    const auto device = gpusim::device_by_name(r.card);
    const auto breakdown = gm::bench::paper_breakdown(device, r.algorithm, r.level, r.tpb);
    const double ratio = breakdown.total_ms / r.paper_ms;
    log_error += std::abs(std::log(ratio));
    std::cout << std::left << std::setw(6) << r.figure << std::setw(8) << r.card
              << std::setw(24) << to_string(r.algorithm) << std::setw(4) << r.level
              << std::setw(6) << r.tpb << std::right << std::fixed << std::setprecision(2)
              << std::setw(12) << r.paper_ms << std::setw(12) << breakdown.total_ms
              << std::setw(10) << ratio << "  " << breakdown.bound_by << "\n";
  }
  std::cout << "\nmean |log ratio| = " << std::setprecision(3)
            << log_error / kReferences.size()
            << "  (0 = perfect; 0.69 = factor of 2 off on average)\n";
  return 0;
}

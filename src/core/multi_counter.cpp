#include "core/multi_counter.hpp"

#include <algorithm>
#include <array>
#include <limits>

#include "common/error.hpp"
#include "common/simd.hpp"

namespace gm::core {
namespace {

// Deadlines are first_pos + window with a user-supplied window, so saturate
// instead of overflowing: a deadline at int64 max never fires, exactly like
// any window longer than the remaining stream.
std::int64_t deadline_at(std::int64_t first_pos, std::int64_t window) {
  return first_pos > std::numeric_limits<std::int64_t>::max() - window
             ? std::numeric_limits<std::int64_t>::max()
             : first_pos + window;
}

}  // namespace

// Engine state behind MultiCounter, struct-of-arrays: every per-episode
// record lives in parallel arrays indexed by a dense slot id, episode symbols
// are concatenated into one arena (`sym_pool`), and nothing is allocated per
// event — buckets and the deadline queue reach a steady-state capacity and
// stay there.
//
// Sparse-path invariant: every slot is filed in exactly one bucket, the one
// for the symbol it currently awaits (episode[state]), with `pos_in_bucket`
// as the backreference enabling O(1) swap-remove when expiry moves it.  That
// single-membership discipline replaces the old generation-tagged lazy
// invalidation: a bucket never holds stale entries, so the drain loop touches
// only live work.
//
// Expiry deadlines form a monotone queue: a deadline is pushed at match start
// with `pos + window`, and positions strictly increase, so pushes arrive in
// nondecreasing order and a FIFO scan replaces the old binary heap.  Pops
// validate against the slot's live first_pos (a completed-and-restarted match
// has a different deadline), exactly as the heap version did.  restore() is
// the one producer of unordered deadlines; it sorts its batch once, and every
// later push lands at or after the restored horizon (restored first_pos
// precede all future stream positions).
//
// The dense path (kContiguousRestart, whose mismatch edges let any symbol
// transition any in-flight automaton and so defeat a waiting-symbol index)
// keeps the same SoA arrays and steps every slot per symbol; its batch drive
// runs symbols innermost per slot so the episode's arena slice and the
// slot's scalars stay register/L1-resident across the whole batch.
struct MultiCounter::Impl {
  Semantics semantics = Semantics::kNonOverlappedSubsequence;
  ExpiryPolicy expiry;
  bool dense = false;

  // SoA arena, indexed by slot id (== episode index in construction order).
  std::vector<Symbol> sym_pool;          // all episode symbols, concatenated
  std::vector<std::uint32_t> ep_off;     // slot -> offset into sym_pool
  std::vector<std::uint32_t> ep_len;     // slot -> episode level
  std::vector<std::int64_t> counts;      // slot -> accepted occurrences
  std::vector<std::int64_t> first_pos;   // slot -> first matched position
  std::vector<std::int32_t> states;      // slot -> matched-symbol count
  std::vector<std::uint32_t> in_bucket;  // slot -> index within its bucket

  // Sparse path: symbol -> slots awaiting it (direct-mapped, Symbol is 8-bit).
  std::array<std::vector<std::uint32_t>, 256> buckets;
  std::vector<std::uint32_t> scratch;

  // Monotone deadline FIFO: live window is [deadline_head, deadlines.size()).
  struct Deadline {
    std::int64_t at = 0;
    std::uint32_t slot = 0;
  };
  std::vector<Deadline> deadlines;
  std::size_t deadline_head = 0;

  [[nodiscard]] std::size_t slot_count() const { return ep_len.size(); }
  [[nodiscard]] bool deadlines_empty() const { return deadline_head == deadlines.size(); }

  /// Append `slot` to the bucket for `s`, recording the backreference.
  void file(std::uint32_t slot, Symbol s) {
    auto& bucket = buckets[s];
    in_bucket[slot] = static_cast<std::uint32_t>(bucket.size());
    bucket.push_back(slot);
  }

  /// Swap-remove `slot` from the bucket it is currently filed in.
  void unfile(std::uint32_t slot) {
    auto& bucket = buckets[sym_pool[ep_off[slot] + static_cast<std::uint32_t>(states[slot])]];
    const std::uint32_t hole = in_bucket[slot];
    const std::uint32_t moved = bucket.back();
    bucket[hole] = moved;
    in_bucket[moved] = hole;
    bucket.pop_back();
  }

  /// Push a deadline, preserving FIFO order.  Pushes are monotone along any
  /// legal advance() sequence; the sorted-insert fallback only runs if a
  /// caller feeds non-increasing positions, keeping expiry correct anyway.
  void push_deadline(std::int64_t at, std::uint32_t slot) {
    if (deadlines.empty() || at >= deadlines.back().at) {
      deadlines.push_back({at, slot});
      return;
    }
    const auto it = std::upper_bound(
        deadlines.begin() + static_cast<std::ptrdiff_t>(deadline_head), deadlines.end(), at,
        [](std::int64_t value, const Deadline& d) { return value < d.at; });
    deadlines.insert(it, {at, slot});
  }

  /// Reset every match that can no longer finish by `pos`: the serial
  /// automaton resets them at step time, so they must be back in their
  /// episode[0] bucket before this symbol is dispatched.  A linear pass over
  /// the due prefix of the deadline FIFO; first_pos deliberately survives
  /// the reset (the serial automaton keeps it too — progress() must match).
  void expire_due(std::int64_t pos) {
    while (deadline_head < deadlines.size() && deadlines[deadline_head].at <= pos) {
      const Deadline d = deadlines[deadline_head++];
      if (states[d.slot] > 0 && deadline_at(first_pos[d.slot], expiry.window) == d.at) {
        unfile(d.slot);
        states[d.slot] = 0;
        file(d.slot, sym_pool[ep_off[d.slot]]);
      }
    }
    // Amortized O(1) compaction keeps the FIFO's memory bounded by the live
    // entry count instead of growing with stream length.
    if (deadline_head > 1024 && deadline_head * 2 >= deadlines.size()) {
      deadlines.erase(deadlines.begin(),
                      deadlines.begin() + static_cast<std::ptrdiff_t>(deadline_head));
      deadline_head = 0;
    }
  }

  void advance_sparse(Symbol s, std::int64_t pos) {
    if (expiry.enabled() && !deadlines_empty()) expire_due(pos);
    auto& bucket = buckets[s];
    if (bucket.empty()) return;
    // Swap the bucket out before advancing: an automaton whose next awaited
    // symbol is also `s` (repeated-symbol episode) must re-file for the NEXT
    // occurrence, not be stepped twice on this one.
    scratch.swap(bucket);
    const Symbol* const pool = sym_pool.data();
    const bool deadline_needed = expiry.enabled();
    for (const std::uint32_t slot : scratch) {
      std::uint32_t st = static_cast<std::uint32_t>(states[slot]);
      const std::uint32_t off = ep_off[slot];
      if (st == 0) {
        first_pos[slot] = pos;
        // Level-1 episodes complete in this same step, so a deadline could
        // never fire usefully — don't flood the queue with one per match.
        if (deadline_needed && ep_len[slot] > 1) {
          push_deadline(deadline_at(pos, expiry.window), slot);
        }
      }
      ++st;
      if (st == ep_len[slot]) {
        ++counts[slot];
        st = 0;
      }
      states[slot] = static_cast<std::int32_t>(st);
      file(slot, pool[off + st]);
    }
    scratch.clear();
  }

  /// Dense batch drive: symbols innermost so each slot's episode slice and
  /// scalars stay hot across the whole batch (one pass over the slot arrays
  /// per batch instead of one per symbol).
  void advance_dense_batch(std::span<const Symbol> symbols, std::int64_t start_pos) {
    const Symbol* const pool = sym_pool.data();
    const bool expiring = expiry.enabled();
    const std::int64_t window = expiry.window;
    for (std::size_t slot = 0; slot < slot_count(); ++slot) {
      const Symbol* const ep = pool + ep_off[slot];
      const auto len = static_cast<std::int32_t>(ep_len[slot]);
      std::int32_t st = states[slot];
      std::int64_t fp = first_pos[slot];
      std::int64_t accepted = 0;
      for (std::size_t i = 0; i < symbols.size(); ++i) {
        const Symbol s = symbols[i];
        const std::int64_t pos = start_pos + static_cast<std::int64_t>(i);
        if (expiring && st > 0 && pos - fp >= window) st = 0;
        if (s == ep[st]) {
          if (st == 0) fp = pos;
          if (++st == len) {
            ++accepted;
            st = 0;
          }
        } else if (st != 0) {
          // Figure 3: mismatches fall back to start, except that a symbol
          // equal to a1 restarts the match at state 1.
          if (s == ep[0]) {
            st = 1;
            fp = pos;
          } else {
            st = 0;
          }
        }
      }
      states[slot] = st;
      first_pos[slot] = fp;
      counts[slot] += accepted;
    }
  }
};

MultiCounter::MultiCounter(std::span<const Episode> episodes, Semantics semantics,
                           ExpiryPolicy expiry)
    : impl_(std::make_unique<Impl>()) {
  for (const auto& e : episodes) gm::expects(!e.empty(), "cannot count an empty episode");
  gm::expects(episodes.size() <= std::numeric_limits<std::uint32_t>::max(),
              "too many episodes for the single-scan index");
  Impl& im = *impl_;
  im.semantics = semantics;
  im.expiry = expiry;
  im.dense = semantics == Semantics::kContiguousRestart;

  const auto n = static_cast<std::uint32_t>(episodes.size());
  im.ep_off.reserve(n);
  im.ep_len.reserve(n);
  std::size_t total_symbols = 0;
  for (const auto& e : episodes) total_symbols += e.symbols().size();
  gm::expects(total_symbols <= std::numeric_limits<std::uint32_t>::max(),
              "episode symbols overflow the arena index");
  im.sym_pool.reserve(total_symbols);
  for (const auto& e : episodes) {
    im.ep_off.push_back(static_cast<std::uint32_t>(im.sym_pool.size()));
    im.ep_len.push_back(static_cast<std::uint32_t>(e.symbols().size()));
    im.sym_pool.insert(im.sym_pool.end(), e.symbols().begin(), e.symbols().end());
  }
  im.counts.assign(n, 0);
  im.first_pos.assign(n, 0);
  im.states.assign(n, 0);
  if (im.dense) return;

  im.in_bucket.assign(n, 0);
  for (std::uint32_t slot = 0; slot < n; ++slot) {
    im.file(slot, im.sym_pool[im.ep_off[slot]]);
  }
}

MultiCounter::MultiCounter(MultiCounter&&) noexcept = default;
MultiCounter& MultiCounter::operator=(MultiCounter&&) noexcept = default;
MultiCounter::~MultiCounter() = default;

void MultiCounter::restore(std::span<const EpisodeProgress> progress) {
  Impl& im = *impl_;
  gm::expects(progress.size() == im.slot_count(), "progress list must match the episode list");
  for (std::size_t slot = 0; slot < progress.size(); ++slot) {
    const EpisodeProgress& p = progress[slot];
    gm::expects(p.state >= 0 && p.state < static_cast<int>(im.ep_len[slot]),
                "restored state outside the episode's automaton");
    im.counts[slot] = p.count;
    im.states[slot] = p.state;
    im.first_pos[slot] = p.first_pos;
  }
  if (im.dense) return;

  gm::expects(im.deadlines_empty(), "restore() must precede the first advance()");
  for (auto& bucket : im.buckets) bucket.clear();
  for (std::uint32_t slot = 0; slot < static_cast<std::uint32_t>(progress.size()); ++slot) {
    im.file(slot,
            im.sym_pool[im.ep_off[slot] + static_cast<std::uint32_t>(im.states[slot])]);
    if (im.states[slot] > 0 && im.expiry.enabled()) {
      im.deadlines.push_back({deadline_at(im.first_pos[slot], im.expiry.window), slot});
    }
  }
  // One sort re-establishes the monotone-FIFO invariant: every future push
  // is at a strictly later stream position than any restored first_pos.
  std::sort(im.deadlines.begin(), im.deadlines.end(),
            [](const Impl::Deadline& a, const Impl::Deadline& b) { return a.at < b.at; });
}

void MultiCounter::advance(Symbol symbol, std::int64_t pos) {
  Impl& im = *impl_;
  if (im.dense) {
    im.advance_dense_batch({&symbol, 1}, pos);
    return;
  }
  im.advance_sparse(symbol, pos);
}

void MultiCounter::advance_batch(std::span<const Symbol> symbols, std::int64_t start_pos) {
  Impl& im = *impl_;
  if (im.dense) {
    im.advance_dense_batch(symbols, start_pos);
    return;
  }
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    im.advance_sparse(symbols[i], start_pos + static_cast<std::int64_t>(i));
  }
}

void MultiCounter::reset() {
  Impl& im = *impl_;
  std::fill(im.counts.begin(), im.counts.end(), 0);
  std::fill(im.first_pos.begin(), im.first_pos.end(), 0);
  std::fill(im.states.begin(), im.states.end(), 0);
  im.deadlines.clear();
  im.deadline_head = 0;
  if (im.dense) return;
  for (auto& bucket : im.buckets) bucket.clear();
  for (std::uint32_t slot = 0; slot < static_cast<std::uint32_t>(im.slot_count()); ++slot) {
    im.file(slot, im.sym_pool[im.ep_off[slot]]);
  }
}

std::vector<std::int64_t> MultiCounter::counts() const { return impl_->counts; }

EpisodeProgress MultiCounter::progress_of(std::size_t episode) const {
  const Impl& im = *impl_;
  gm::expects(episode < im.slot_count(), "episode index out of range");
  return {im.counts[episode], im.first_pos[episode], im.states[episode]};
}

std::vector<EpisodeProgress> MultiCounter::progress() const {
  const Impl& im = *impl_;
  std::vector<EpisodeProgress> progress(im.slot_count());
  GM_SIMD_LOOP
  for (std::size_t slot = 0; slot < progress.size(); ++slot) {
    progress[slot].count = im.counts[slot];
    progress[slot].first_pos = im.first_pos[slot];
    progress[slot].state = im.states[slot];
  }
  return progress;
}

std::size_t MultiCounter::episode_count() const { return impl_->slot_count(); }

std::vector<std::int64_t> count_all_single_scan(std::span<const Episode> episodes,
                                                std::span<const Symbol> database,
                                                Semantics semantics, ExpiryPolicy expiry) {
  if (episodes.empty()) return {};
  MultiCounter counter(episodes, semantics, expiry);
  counter.advance_batch(database, 0);
  return counter.counts();
}

std::vector<std::int64_t> count_all_single_scan(std::span<const Episode> episodes,
                                                std::span<const Symbol> database,
                                                Semantics semantics, ExpiryPolicy expiry,
                                                std::vector<ScanExit>& exits) {
  if (episodes.empty()) {
    exits.clear();
    return {};
  }
  MultiCounter counter(episodes, semantics, expiry);
  counter.advance_batch(database, 0);
  const std::vector<EpisodeProgress> progress = counter.progress();
  exits.assign(progress.size(), {});
  for (std::size_t a = 0; a < progress.size(); ++a) {
    exits[a] = {progress[a].state, progress[a].first_pos};
  }
  return counter.counts();
}

}  // namespace gm::core

// Shard-local streaming scans recombined exactly, even when append batches
// reach shards out of order.
//
// In the distributed setting every shard owns a slice of the candidate set
// and scans the whole stream, but append batches travel through a queue per
// shard: batch 7 can land before batch 5.  A shard cannot advance its truth
// scan past a gap — episode automata are sequential — but it CAN cold-scan
// any batch the moment it arrives (fresh automata, absolute positions) and
// park the outcome.  When the missing batches land, `fold_cold_scans`'s
// entry-state overload stitches the parked cold outcomes onto the truth scan
// in stream order: the truth automaton lockstep-replays each chunk only until
// it converges with the cold twin, so the out-of-order path re-touches a few
// symbols per boundary instead of rescanning the batches.
//
// `StreamAssembler` is that per-shard state machine: deliver chunks in ANY
// order, and counts()/checkpoint() always reflect exactly the contiguous
// stream prefix assembled so far — bit-exact with a single uninterrupted
// scan, for every semantics x expiry.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "core/episode.hpp"
#include "core/scan_checkpoint.hpp"
#include "core/segment_counter.hpp"

namespace gm::distrib {

/// One stream slice scanned cold (fresh automata, absolute positions):
/// everything a shard can precompute about a batch before its predecessors
/// arrive.
struct ChunkScan {
  std::int64_t begin = 0;  ///< absolute position of events.front()
  std::vector<core::Symbol> events;
  std::vector<core::SegmentOutcome> cold;  ///< per episode, absolute first_match_pos
};

/// Cold-scans one batch for every episode.  `base` is the batch's absolute
/// stream position; outcomes carry absolute first-match positions so they
/// feed the entry-state fold directly.
[[nodiscard]] ChunkScan cold_scan_chunk(std::span<const core::Episode> episodes,
                                        core::Semantics semantics, core::ExpiryPolicy expiry,
                                        std::vector<core::Symbol> events, std::int64_t base);

/// Per-shard reassembly: accepts cold-scanned chunks in any order and folds
/// every contiguous prefix onto the truth state as soon as it exists.
class StreamAssembler {
 public:
  StreamAssembler(std::vector<core::Episode> episodes, core::Semantics semantics,
                  core::ExpiryPolicy expiry);

  /// Resumes from a checkpoint instead of stream position 0.
  explicit StreamAssembler(const core::ScanCheckpoint& checkpoint);

  /// Hands over one cold-scanned chunk.  Chunks must tile the stream exactly
  /// (each begin equals a past or future chunk's end); a chunk at a position
  /// already folded is rejected.  Returns the number of chunks folded into
  /// the truth state by this delivery (0 if the chunk was parked).
  std::size_t deliver(ChunkScan chunk);

  /// Counts over the contiguous prefix [0, high_water()) — exactly what an
  /// uninterrupted scan of that prefix yields.  Parked chunks beyond a gap
  /// are not included until the gap fills.
  [[nodiscard]] std::vector<std::int64_t> counts() const { return counts_; }

  /// Next absolute position the truth scan needs; chunks at this position
  /// fold immediately, later ones park.
  [[nodiscard]] std::int64_t high_water() const { return high_water_; }

  /// Number of chunks parked behind a gap.
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }

  /// Cumulative symbols lockstep-replayed by the folds — the out-of-order
  /// overhead (0 when every chunk arrives in order and enters in state 0).
  [[nodiscard]] std::int64_t rescanned_symbols() const { return rescanned_; }

  /// Checkpoint of the contiguous prefix; restores into StreamScan or
  /// another StreamAssembler.
  [[nodiscard]] core::ScanCheckpoint checkpoint(std::uint64_t generation = 0) const;

 private:
  void fold_ready();

  std::vector<core::Episode> episodes_;
  core::Semantics semantics_ = core::Semantics::kNonOverlappedSubsequence;
  core::ExpiryPolicy expiry_;
  std::int64_t high_water_ = 0;
  std::uint64_t prefix_digest_ = 0;
  std::vector<std::int64_t> counts_;
  std::vector<core::EpisodeProgress> progress_;  ///< counts folded separately
  std::map<std::int64_t, ChunkScan> pending_;    ///< keyed by absolute begin
  std::int64_t rescanned_ = 0;
};

}  // namespace gm::distrib

#include "core/episode_trie.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <utility>

#include "common/error.hpp"

namespace gm::core {
namespace {

/// Contiguous run [lo, hi) of lexicographically sorted episode indices.
struct Interval {
  std::uint32_t lo = 0;
  std::uint32_t hi = 0;
};

/// Removes episode `e` from a sorted disjoint interval list.  Returns false
/// (list untouched) when `e` is not a member.
bool remove_point(std::vector<Interval>& intervals, std::uint32_t e) {
  auto it = std::upper_bound(
      intervals.begin(), intervals.end(), e,
      [](std::uint32_t value, const Interval& iv) { return value < iv.lo; });
  if (it == intervals.begin()) return false;
  --it;
  if (e >= it->hi) return false;
  const Interval old = *it;
  if (old.lo == e && old.hi == e + 1) {
    intervals.erase(it);
  } else if (old.lo == e) {
    it->lo = e + 1;
  } else if (old.hi == e + 1) {
    it->hi = e;
  } else {
    it->hi = e;
    intervals.insert(it + 1, Interval{e + 1, old.hi});
  }
  return true;
}

/// Moves `intervals ∩ [lo, hi)` into `out` (appended in order), keeping the
/// rest.  At most the two boundary intervals are split.
void extract_range(std::vector<Interval>& intervals, std::uint32_t lo, std::uint32_t hi,
                   std::vector<Interval>& out) {
  auto first = std::partition_point(intervals.begin(), intervals.end(),
                                    [&](const Interval& iv) { return iv.hi <= lo; });
  auto it = first;
  Interval right_keep{0, 0};
  while (it != intervals.end() && it->lo < hi) {
    out.push_back({std::max(it->lo, lo), std::min(it->hi, hi)});
    if (it->hi > hi) right_keep = {hi, it->hi};
    ++it;
  }
  if (first == it) return;  // nothing overlapped
  if (first->lo < lo) {
    first->hi = lo;  // keep the left remainder in place
    ++first;
  }
  it = intervals.erase(first, it);
  if (right_keep.hi > right_keep.lo) intervals.insert(it, right_keep);
}

/// Sorts a batch of returned intervals and coalesces adjacent runs.
void normalize(std::vector<Interval>& intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::size_t w = 0;
  for (std::size_t r = 0; r < intervals.size(); ++r) {
    if (w > 0 && intervals[w - 1].hi == intervals[r].lo) {
      intervals[w - 1].hi = intervals[r].hi;
    } else {
      intervals[w++] = intervals[r];
    }
  }
  intervals.resize(w);
}

std::int64_t member_count(const std::vector<Interval>& intervals) {
  std::int64_t total = 0;
  for (const Interval& iv : intervals) total += iv.hi - iv.lo;
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// EpisodeTrie
// ---------------------------------------------------------------------------

EpisodeTrie::EpisodeTrie(std::span<const Episode> episodes) {
  gm::expects(episodes.size() <= std::numeric_limits<std::uint32_t>::max(),
              "too many episodes for the trie index");
  order_.resize(episodes.size());
  std::iota(order_.begin(), order_.end(), 0u);
  std::stable_sort(order_.begin(), order_.end(), [&](std::uint32_t a, std::uint32_t b) {
    return episodes[a] < episodes[b];  // lexicographic on symbols
  });

  nodes_.emplace_back();  // root: empty prefix, covers everything
  nodes_.front().hi = static_cast<std::uint32_t>(episodes.size());
  root_children_.fill(0);

  // Consecutive sorted episodes share a path prefix, so insertion is one walk
  // down the shared part plus fresh nodes for the new suffix: linear overall.
  std::vector<std::uint32_t> path;  // nodes of the previous episode's spine
  std::span<const Symbol> prev;
  for (std::uint32_t k = 0; k < static_cast<std::uint32_t>(order_.size()); ++k) {
    const std::span<const Symbol> symbols = episodes[order_[k]].symbols();
    total_symbols_ += static_cast<std::int64_t>(symbols.size());
    std::size_t shared = 0;
    while (shared < symbols.size() && shared < prev.size() &&
           symbols[shared] == prev[shared]) {
      ++shared;
    }
    path.resize(shared);
    for (const std::uint32_t n : path) nodes_[n].hi = k + 1;
    for (std::size_t d = shared; d < symbols.size(); ++d) {
      const std::uint32_t parent = path.empty() ? 0 : path.back();
      const auto child = static_cast<std::uint32_t>(nodes_.size());
      Node node;
      node.first_symbol = path.empty() ? symbols[d] : nodes_[path.front()].first_symbol;
      node.depth = static_cast<std::int32_t>(d) + 1;
      node.lo = k;
      node.hi = k + 1;
      nodes_.push_back(std::move(node));
      nodes_[parent].children.push_back({symbols[d], child});
      if (parent == 0) root_children_[symbols[d]] = child;
      path.push_back(child);
    }
    if (!path.empty()) nodes_[path.back()].terminals.push_back(k);
    prev = symbols;
  }
}

double prefix_compression(std::span<const Episode> episodes) {
  if (episodes.empty()) return 1.0;
  const EpisodeTrie trie(episodes);
  if (trie.total_symbols() == 0) return 1.0;
  return static_cast<double>(trie.node_count() - 1) /
         static_cast<double>(trie.total_symbols());
}

// ---------------------------------------------------------------------------
// TrieCounter
// ---------------------------------------------------------------------------

namespace {

struct BucketEntry {
  std::uint32_t token = 0;
  std::uint64_t gen = 0;
};

// Saturating first_pos + window: restored checkpoints carry user-supplied
// windows the database-size clamp never saw, and a deadline at int64 max
// never fires — exactly like any window longer than the remaining stream.
std::int64_t deadline_at(std::int64_t first_pos, std::int64_t window) {
  return first_pos > std::numeric_limits<std::int64_t>::max() - window
             ? std::numeric_limits<std::int64_t>::max()
             : first_pos + window;
}

}  // namespace

// Token storage is struct-of-arrays: a token — one in-flight partial match,
// a trie node plus the episodes mid-match with exactly that prefix since
// `first_pos`, all in lockstep — is a dense id into the parallel `tok_*`
// arrays.  Member interval vectors are pooled: release() clears but keeps
// capacity and the freelist hands the storage to the next token, so steady
// state allocates nothing per event.  `tok_gen` invalidates bucket entries
// left behind by released tokens (a token files under several child edges at
// once, so physical removal would need per-edge backrefs; one generation
// compare per drained entry is cheaper).
//
// Expiry is a monotone deadline queue plus a linear sweep.  Every live
// token's first_pos is the stream position of some root dispatch, and root
// dispatches happen at strictly increasing positions, so pushing
// `first_pos + window` at root-token creation yields a nondecreasing queue —
// a FIFO of plain positions, no token refs, no heap.  When the front
// matures, one linear pass over the token arrays expires every due token
// (child tokens inherited their root's first_pos, so the sweep catches them
// under the same queue entry).  restore() is the one unordered producer; it
// sorts its batch once, and future pushes land at or after it.
struct TrieCounter::Impl {
  std::vector<std::int64_t> counts;  // sorted-episode order

  // SoA token arena, indexed by dense token id.
  std::vector<std::uint32_t> tok_node;
  std::vector<std::int64_t> tok_first;
  std::vector<std::uint64_t> tok_gen;
  std::vector<std::vector<Interval>> tok_members;  // empty <=> not live
  std::vector<std::uint32_t> free_tokens;

  // Compact live-token list (swap-remove via tok_live_idx backrefs): the
  // expiry sweep touches exactly the in-flight tokens, not the arena's peak.
  std::vector<std::uint32_t> live;
  std::vector<std::uint32_t> tok_live_idx;

  // Symbol is 8-bit, so direct-mapped tables cover every alphabet: waiting
  // tokens by awaited symbol, and idle (state-0) episodes by first symbol.
  std::vector<std::vector<BucketEntry>> buckets{256};
  std::vector<std::vector<Interval>> idle{256};
  std::vector<BucketEntry> scratch;

  // Monotone deadline FIFO: live window is [deadline_head, deadlines.size()).
  std::vector<std::int64_t> deadlines;
  std::size_t deadline_head = 0;

  [[nodiscard]] bool deadlines_empty() const { return deadline_head == deadlines.size(); }
  [[nodiscard]] bool deadline_due(std::int64_t pos) const {
    return deadline_head < deadlines.size() && deadlines[deadline_head] <= pos;
  }

  void push_deadline(std::int64_t at) {
    if (deadlines.empty() || at >= deadlines.back()) {
      deadlines.push_back(at);
      return;
    }
    // Out-of-order (caller violated monotone positions): insert sorted so
    // expiry stays correct anyway.
    deadlines.insert(std::upper_bound(deadlines.begin() +
                                          static_cast<std::ptrdiff_t>(deadline_head),
                                      deadlines.end(), at),
                     at);
  }

  std::uint32_t acquire() {
    std::uint32_t id = 0;
    if (!free_tokens.empty()) {
      id = free_tokens.back();
      free_tokens.pop_back();
    } else {
      id = static_cast<std::uint32_t>(tok_members.size());
      tok_node.push_back(0);
      tok_first.push_back(0);
      tok_gen.push_back(0);
      tok_members.emplace_back();
      tok_live_idx.push_back(0);
    }
    tok_live_idx[id] = static_cast<std::uint32_t>(live.size());
    live.push_back(id);
    return id;
  }

  void release(std::uint32_t id) {
    tok_members[id].clear();  // keeps capacity: the interval pool is reused
    ++tok_gen[id];
    free_tokens.push_back(id);
    const std::uint32_t hole = tok_live_idx[id];
    const std::uint32_t moved = live.back();
    live[hole] = moved;
    tok_live_idx[moved] = hole;
    live.pop_back();
  }

  /// Linear expiry sweep: return every due token's members to the idle sets
  /// and release it.  One pass over the live list — no per-token heap
  /// entries to chase.  Members go back BEFORE dispatch, so they can catch a
  /// fresh first symbol at this very position — exactly the single-scan
  /// re-bucketing.
  void expire_due(std::int64_t pos, const EpisodeTrie& trie, std::int64_t window, Ops& ops) {
    for (std::size_t i = 0; i < live.size();) {
      const std::uint32_t id = live[i];
      if (deadline_at(tok_first[id], window) > pos) {
        ++i;
        continue;
      }
      const Symbol first = trie.node(tok_node[id]).first_symbol;
      for (const Interval& iv : tok_members[id]) {
        idle[first].push_back(iv);
        ++ops.files;
      }
      release(id);  // swap-remove refills live[i]; revisit the same index
      ++ops.heap_ops;
    }
    while (deadline_due(pos)) ++deadline_head;
    // Amortized O(1) compaction keeps the FIFO bounded by live entries.
    if (deadline_head > 1024 && deadline_head * 2 >= deadlines.size()) {
      deadlines.erase(deadlines.begin(),
                      deadlines.begin() + static_cast<std::ptrdiff_t>(deadline_head));
      deadline_head = 0;
    }
  }

  /// Accept terminals and file the surviving token under every child edge it
  /// still has members for.  Call right after the token lands on
  /// `trie.node(tok_node[id])` — filings go into the live buckets, so a
  /// repeated prefix symbol waits for its NEXT occurrence.
  void arrive(std::uint32_t id, const EpisodeTrie& trie, Ops& ops) {
    std::vector<Interval>& members = tok_members[id];
    const EpisodeTrie::Node& node = trie.node(tok_node[id]);
    for (const std::uint32_t e : node.terminals) {
      if (!remove_point(members, e)) continue;
      ++counts[e];
      ++ops.accepts;
      ++ops.files;
      idle[node.first_symbol].push_back({e, e + 1});
    }
    if (members.empty()) {
      release(id);
      return;
    }
    // Children and member intervals are both ordered by sorted-episode index,
    // so one merge walk finds every child edge with members behind it.
    std::size_t j = 0;
    for (const EpisodeTrie::Edge& edge : node.children) {
      const EpisodeTrie::Node& child = trie.node(edge.node);
      while (j < members.size() && members[j].hi <= child.lo) ++j;
      if (j == members.size()) break;
      if (members[j].lo < child.hi) {
        buckets[edge.symbol].push_back({id, tok_gen[id]});
        ++ops.files;
      }
    }
  }
};

TrieCounter::TrieCounter(std::span<const Episode> episodes, Semantics semantics,
                         ExpiryPolicy expiry, std::int64_t database_size)
    : semantics_(semantics), expiry_(expiry) {
  for (const auto& e : episodes) gm::expects(!e.empty(), "cannot count an empty episode");
  if (semantics_ == Semantics::kContiguousRestart) {
    // Dense fallback: mismatch edges let any symbol transition any in-flight
    // automaton, so the waiting-symbol index (and the trie) cannot skip work.
    dense_automata_.reserve(episodes.size());
    for (const auto& e : episodes) dense_automata_.emplace_back(e.symbols(), semantics_, expiry_);
    dense_counts_.assign(episodes.size(), 0);
    return;
  }
  // Same overflow guard as the single-scan engine: deadlines are
  // first_pos + window, and any window >= |DB| behaves identically.
  if (expiry_.enabled()) expiry_.window = std::min(expiry_.window, database_size);
  trie_ = std::make_unique<EpisodeTrie>(episodes);
  impl_ = std::make_unique<Impl>();
  impl_->counts.assign(episodes.size(), 0);
  // Every episode starts idle; each root subtree is one contiguous interval.
  for (const EpisodeTrie::Edge& edge : trie_->root().children) {
    const EpisodeTrie::Node& child = trie_->node(edge.node);
    impl_->idle[edge.symbol].push_back({child.lo, child.hi});
    ++ops_.files;
  }
}

TrieCounter::TrieCounter(TrieCounter&&) noexcept = default;
TrieCounter& TrieCounter::operator=(TrieCounter&&) noexcept = default;
TrieCounter::~TrieCounter() = default;

void TrieCounter::advance(Symbol symbol, std::int64_t pos) {
  if (!dense_automata_.empty() || trie_ == nullptr) {
    for (std::size_t a = 0; a < dense_automata_.size(); ++a) {
      if (dense_automata_[a].step(symbol, pos)) ++dense_counts_[a];
    }
    ops_.dense_steps += static_cast<std::int64_t>(dense_automata_.size());
    return;
  }
  advance_sparse(symbol, pos);
}

void TrieCounter::advance_batch(std::span<const Symbol> symbols, std::int64_t start_pos) {
  if (!dense_automata_.empty() || trie_ == nullptr) {
    // Symbols innermost per automaton: the episode stays register/L1-resident
    // across the whole batch instead of being re-fetched per stream symbol.
    for (std::size_t a = 0; a < dense_automata_.size(); ++a) {
      EpisodeAutomaton& automaton = dense_automata_[a];
      std::int64_t accepted = 0;
      for (std::size_t i = 0; i < symbols.size(); ++i) {
        if (automaton.step(symbols[i], start_pos + static_cast<std::int64_t>(i))) ++accepted;
      }
      dense_counts_[a] += accepted;
    }
    ops_.dense_steps +=
        static_cast<std::int64_t>(dense_automata_.size() * symbols.size());
    return;
  }
  for (std::size_t i = 0; i < symbols.size(); ++i) {
    advance_sparse(symbols[i], start_pos + static_cast<std::int64_t>(i));
  }
}

void TrieCounter::advance_sparse(Symbol symbol, std::int64_t pos) {
  Impl& im = *impl_;
  ++ops_.probes;

  // Expire matches that can no longer finish by this position.  The monotone
  // queue front tells us whether ANY token is due; the sweep then handles
  // every due token in one linear pass over the arena.
  if (expiry_.enabled() && im.deadline_due(pos)) {
    im.expire_due(pos, *trie_, expiry_.window, ops_);
  }

  // Swap the waiting bucket out first: everything filed from here on (fresh
  // root tokens, advanced child tokens) awaits the NEXT occurrence of
  // `symbol`, never a second step on this one.
  auto& bucket = im.buckets[symbol];
  im.scratch.swap(bucket);

  // Root dispatch: every idle episode whose first symbol is `symbol` starts a
  // match together, as ONE token over the swapped-out idle interval set.
  const std::uint32_t start_node = trie_->root_child(symbol);
  if (start_node != 0 && !im.idle[symbol].empty()) {
    const std::uint32_t id = im.acquire();
    im.tok_node[id] = start_node;
    im.tok_first[id] = pos;
    im.tok_members[id].swap(im.idle[symbol]);
    normalize(im.tok_members[id]);
    ops_.starts += member_count(im.tok_members[id]);
    if (expiry_.enabled()) {
      im.push_deadline(deadline_at(pos, expiry_.window));
      ++ops_.heap_ops;
    }
    im.arrive(id, *trie_, ops_);
  }

  // Drain waiting tokens: each one advances all its members sharing the next
  // prefix symbol in a single split toward the matching child.
  for (const BucketEntry entry : im.scratch) {
    if (im.tok_gen[entry.token] != entry.gen) continue;  // expired since
    const EpisodeTrie::Node& node = trie_->node(im.tok_node[entry.token]);
    const auto edge = std::lower_bound(
        node.children.begin(), node.children.end(), symbol,
        [](const EpisodeTrie::Edge& e, Symbol s) { return e.symbol < s; });
    if (edge == node.children.end() || edge->symbol != symbol) continue;
    ++ops_.drains;
    const EpisodeTrie::Node& child = trie_->node(edge->node);
    const std::uint32_t id = im.acquire();
    im.tok_node[id] = edge->node;
    im.tok_first[id] = im.tok_first[entry.token];
    extract_range(im.tok_members[entry.token], child.lo, child.hi, im.tok_members[id]);
    if (im.tok_members[id].empty()) {  // defensive: filings always have members
      im.release(id);
      continue;
    }
    // A child token inherits its root dispatch's first_pos, so its deadline
    // is already covered by that root's queue entry — no push here.
    if (im.tok_members[entry.token].empty()) im.release(entry.token);
    im.arrive(id, *trie_, ops_);
  }
  im.scratch.clear();
}

void TrieCounter::restore(std::span<const EpisodeProgress> progress) {
  if (trie_ == nullptr) {
    gm::expects(progress.size() == dense_automata_.size(),
                "progress list must match the episode list");
    for (std::size_t i = 0; i < progress.size(); ++i) {
      dense_automata_[i].restore(progress[i].state, progress[i].first_pos);
      dense_counts_[i] = progress[i].count;
    }
    return;
  }
  Impl& im = *impl_;
  gm::expects(progress.size() == im.counts.size(), "progress list must match the episode list");
  for (auto& bucket : im.buckets) bucket.clear();
  for (auto& set : im.idle) set.clear();
  im.deadlines.clear();
  im.deadline_head = 0;
  im.tok_node.clear();
  im.tok_first.clear();
  im.tok_gen.clear();
  im.tok_members.clear();
  im.free_tokens.clear();
  im.live.clear();
  im.tok_live_idx.clear();

  // The capture may come from a differently-grouped engine (the flat
  // single-scan counter, or a trie counter that split tokens along another
  // history), so tokens are rebuilt from scratch: every in-flight episode
  // walks its spine down to depth == state, and episodes landing on the same
  // (node, first_pos) merge into one token — same matched prefix, same match
  // start means lockstep forever after, so the grouping cannot change counts.
  const std::span<const std::uint32_t> order = trie_->order();
  std::map<std::pair<std::uint32_t, std::int64_t>, std::uint32_t> groups;
  for (std::uint32_t k = 0; k < static_cast<std::uint32_t>(order.size()); ++k) {
    const EpisodeProgress& p = progress[order[k]];
    im.counts[k] = p.count;
    gm::expects(p.state >= 0, "restored state outside the episode's automaton");
    // Walk by subtree containment: the child covering sorted index k is the
    // next node on this episode's spine.  Children sorted by symbol are also
    // sorted by `lo` (lexicographic order), so binary search applies.  The
    // walk runs out of children exactly when state >= the episode's length,
    // which doubles as the range validation.
    std::uint32_t node = 0;
    for (int d = 0; d < p.state; ++d) {
      const auto& children = trie_->node(node).children;
      const auto it = std::partition_point(
          children.begin(), children.end(),
          [&](const EpisodeTrie::Edge& e) { return trie_->node(e.node).hi <= k; });
      gm::expects(it != children.end() && trie_->node(it->node).lo <= k,
                  "restored state outside the episode's automaton");
      node = it->node;
    }
    if (p.state == 0) {
      const auto& children = trie_->root().children;
      const auto it = std::partition_point(
          children.begin(), children.end(),
          [&](const EpisodeTrie::Edge& e) { return trie_->node(e.node).hi <= k; });
      im.idle[it->symbol].push_back({k, k + 1});
      continue;
    }
    const auto [group, inserted] = groups.try_emplace({node, p.first_pos}, 0u);
    if (inserted) {
      const std::uint32_t id = im.acquire();
      group->second = id;
      im.tok_node[id] = node;
      im.tok_first[id] = p.first_pos;
    }
    auto& members = im.tok_members[group->second];
    if (!members.empty() && members.back().hi == k) {
      members.back().hi = k + 1;  // k ascends, so runs coalesce in place
    } else {
      members.push_back({k, k + 1});
    }
  }
  for (auto& set : im.idle) normalize(set);
  // No member can be a terminal of its node (state < level always, since the
  // automaton resets on accept), so arrive() only files.  Restored deadlines
  // are one sorted batch; every future root dispatch is at a later stream
  // position than any restored first_pos, so the FIFO stays monotone.
  for (const auto& [key, id] : groups) {
    if (expiry_.enabled()) {
      im.deadlines.push_back(deadline_at(im.tok_first[id], expiry_.window));
      ++ops_.heap_ops;
    }
    im.arrive(id, *trie_, ops_);
  }
  std::sort(im.deadlines.begin(), im.deadlines.end());
}

std::vector<EpisodeProgress> TrieCounter::progress() const {
  if (trie_ == nullptr) {
    std::vector<EpisodeProgress> out;
    out.reserve(dense_automata_.size());
    for (std::size_t a = 0; a < dense_automata_.size(); ++a) {
      out.push_back({dense_counts_[a], dense_automata_[a].first_match_pos(),
                     dense_automata_[a].state()});
    }
    return out;
  }
  const Impl& im = *impl_;
  const std::span<const std::uint32_t> order = trie_->order();
  std::vector<EpisodeProgress> out(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) out[order[k]] = {im.counts[k], 0, 0};
  for (std::size_t id = 0; id < im.tok_members.size(); ++id) {
    if (im.tok_members[id].empty()) continue;  // released onto the free list
    const std::int32_t depth = trie_->node(im.tok_node[id]).depth;
    for (const Interval& iv : im.tok_members[id]) {
      for (std::uint32_t k = iv.lo; k < iv.hi; ++k) {
        out[order[k]].first_pos = im.tok_first[id];
        out[order[k]].state = depth;
      }
    }
  }
  return out;
}

std::vector<std::int64_t> TrieCounter::counts() const {
  if (trie_ == nullptr) return dense_counts_;
  std::vector<std::int64_t> result(impl_->counts.size(), 0);
  const std::span<const std::uint32_t> order = trie_->order();
  for (std::size_t k = 0; k < order.size(); ++k) result[order[k]] = impl_->counts[k];
  return result;
}

std::vector<std::int64_t> count_all_trie_scan(std::span<const Episode> episodes,
                                              std::span<const Symbol> database,
                                              Semantics semantics, ExpiryPolicy expiry) {
  if (episodes.empty()) return {};
  TrieCounter counter(episodes, semantics, expiry,
                      static_cast<std::int64_t>(database.size()));
  counter.advance_batch(database, 0);
  return counter.counts();
}

}  // namespace gm::core

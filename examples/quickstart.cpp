// Quickstart: mine frequent episodes from a symbol sequence, first with the
// serial CPU reference, then on a simulated GeForce GTX 280 with the paper's
// Algorithm 3 (block-level, texture memory).
//
//   $ ./examples/quickstart
#include <iostream>

#include "core/cpu_backend.hpp"
#include "core/miner.hpp"
#include "data/generators.hpp"
#include "kernels/gpu_backend.hpp"

int main() {
  using namespace gm;

  // A seeded synthetic event stream over the letters A..Z (the paper's
  // alphabet).  Real deployments would parse their own event log.
  const core::Alphabet alphabet = core::Alphabet::english_uppercase();
  const core::Sequence database = data::uniform_database(alphabet, 50'000, /*seed=*/2009);

  // Mining configuration: find all episodes up to level 3 whose support
  // (count / database size) exceeds 0.1%.
  core::MinerConfig config;
  config.support_threshold = 0.001;
  config.max_level = 3;

  // --- 1. serial CPU reference ------------------------------------------------
  core::SerialCpuBackend cpu;
  const core::MiningResult cpu_result =
      core::mine_frequent_episodes(database, alphabet, cpu, config);

  std::cout << "Serial CPU miner:\n";
  for (const auto& level : cpu_result.levels) {
    std::cout << "  level " << level.level << ": " << level.candidates << " candidates, "
              << level.frequent << " frequent, counted in " << level.count_host_ms
              << " ms\n";
  }

  // --- 2. simulated GPU -------------------------------------------------------
  kernels::MiningLaunchParams params;
  params.algorithm = kernels::Algorithm::kBlockTexture;
  params.threads_per_block = 64;
  kernels::SimGpuBackend gpu(gpusim::geforce_gtx_280(), params);

  const core::MiningResult gpu_result =
      core::mine_frequent_episodes(database, alphabet, gpu, config);

  std::cout << "\nSimulated GTX 280 (" << gpu.name() << "):\n";
  for (const auto& level : gpu_result.levels) {
    std::cout << "  level " << level.level << ": " << level.candidates << " candidates, "
              << level.frequent << " frequent, predicted kernel time "
              << level.simulated_kernel_ms << " ms\n";
  }

  // --- 3. results agree ---------------------------------------------------------
  std::cout << "\nTop frequent episodes (identical across backends: "
            << (cpu_result.total_frequent() == gpu_result.total_frequent() ? "yes" : "NO")
            << "):\n";
  int shown = 0;
  for (const auto& f : gpu_result.frequent) {
    if (f.episode.level() < 2) continue;  // single letters are unexciting
    std::cout << "  " << f.episode.to_string(alphabet) << "  count=" << f.count
              << "  support=" << f.support << "\n";
    if (++shown == 8) break;
  }
  return 0;
}

#include "sim/memory.hpp"

namespace gpusim::detail {

std::uint64_t allocate_address_range(std::uint64_t bytes) {
  // Simulated addresses only feed the cache model; ranges are spaced out on
  // 1 MiB boundaries so buffers never share cache lines.
  static std::atomic<std::uint64_t> next{1ULL << 20};
  constexpr std::uint64_t kAlign = 1ULL << 20;
  const std::uint64_t rounded = (bytes + kAlign - 1) / kAlign * kAlign + kAlign;
  return next.fetch_add(rounded, std::memory_order_relaxed);
}

}  // namespace gpusim::detail

// Ablation (paper section 6, future work): larger episodes (L >> 3).
//
// The paper asks how the constant-time thread-level algorithms behave as L
// grows.  Episode counts explode combinatorially (Table 1), so a reduced
// alphabet keeps candidate sets bounded while L runs to 6; the model reports
// predicted time per level for the thread- and block-level representatives.
#include <iostream>

#include "bench_support/report.hpp"
#include "core/candidate_gen.hpp"
#include "data/generators.hpp"
#include "kernels/workload_model.hpp"

int main() {
  using gm::kernels::Algorithm;

  const auto device = gpusim::geforce_gtx_280();
  const gpusim::CostModel model;
  const int alphabet = 10;  // keeps level-6 candidates at 151,200

  std::cout << "Large-level ablation: alphabet of " << alphabet
            << " symbols, 393,019-symbol database, GTX280 @128tpb (predicted ms)\n\n";
  std::cout << "L     episodes        Algo1 (thread,tex)   Algo4 (block,buf)   ratio A4/A1\n";
  for (int level = 1; level <= 6; ++level) {
    const auto episodes =
        static_cast<std::int64_t>(gm::core::episode_space_size(alphabet, level));
    gm::kernels::WorkloadSpec spec;
    spec.db_size = gm::data::kPaperDatabaseSize;
    spec.episode_count = episodes;
    spec.level = level;
    spec.params.threads_per_block = 128;

    spec.params.algorithm = Algorithm::kThreadTexture;
    const double thread_ms = predict_mining_time(device, spec, model).total_ms;
    spec.params.algorithm = Algorithm::kBlockBuffered;
    const double block_ms = predict_mining_time(device, spec, model).total_ms;

    const std::string pad(16 - std::to_string(episodes).size(), ' ');
    std::cout << level << "     " << episodes << pad << thread_ms << "\t\t     " << block_ms
              << "\t\t " << block_ms / thread_ms << "\n";
  }
  std::cout << "\nThread-level stays near-constant until the episode count exceeds the\n"
               "card's resident-thread capacity; block-level grows with both episode\n"
               "count (blocks) and level (transfer-scan work) — the paper's C1/C3.\n";
  return 0;
}

// Episode-counting finite state machines (paper Figure 3).
//
// Two counting semantics are provided because the paper is ambiguous:
//
//  * kNonOverlappedSubsequence (default): the automaton waits in its current
//    state until the next episode symbol arrives (occurrences are
//    subsequences, matching the paper's formal definition in section 3.1);
//    on completion it resets, so occurrences are counted greedily without
//    overlap.  This is the Patnaik/Sastry/Unnikrishnan frequent-episode
//    semantics from the neuroscience literature the paper builds on.
//
//  * kContiguousRestart: a literal reading of Figure 3's FSM, whose mismatch
//    edges fall back to `start` (or to state 1 when the mismatching symbol
//    equals a1).  This counts contiguous occurrences, like naive string
//    matching.
//
// Episode expiration (paper section 6, future work) is supported by both:
// an in-progress match is abandoned when the window from its first matched
// symbol reaches `window` positions; the current symbol may immediately
// start a fresh match.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/episode.hpp"

namespace gm::core {

enum class Semantics {
  kNonOverlappedSubsequence,
  kContiguousRestart,
};

[[nodiscard]] std::string to_string(Semantics semantics);

/// Episode expiration: an occurrence is valid only when
/// (last index - first index) < window.  Disabled when window == 0.
struct ExpiryPolicy {
  std::int64_t window = 0;

  [[nodiscard]] bool enabled() const noexcept { return window > 0; }
  friend bool operator==(ExpiryPolicy, ExpiryPolicy) = default;
};

/// Deterministic automaton tracking one episode through a symbol stream.
///
/// `state` counts matched symbols (0 = start, level = accepted-and-reset).
/// The automaton is deliberately tiny and copyable: GPU kernels instantiate
/// one per (thread, episode).
class EpisodeAutomaton {
 public:
  EpisodeAutomaton(std::span<const Symbol> episode, Semantics semantics,
                   ExpiryPolicy expiry = {}) noexcept
      : episode_(episode), semantics_(semantics), expiry_(expiry) {}

  /// Feed the symbol at absolute position `pos`; returns true when an
  /// occurrence completed at this symbol.
  bool step(Symbol s, std::int64_t pos) noexcept {
    if (expiry_.enabled() && state_ > 0 && pos - first_pos_ >= expiry_.window) {
      // The running match can no longer finish inside the window; abandon it
      // and let the current symbol start a fresh match.
      state_ = 0;
    }
    const auto level = static_cast<int>(episode_.size());
    if (s == episode_[static_cast<std::size_t>(state_)]) {
      if (state_ == 0) first_pos_ = pos;
      ++state_;
      if (state_ == level) {
        state_ = 0;
        return true;
      }
      return false;
    }
    if (semantics_ == Semantics::kContiguousRestart && state_ != 0) {
      // Figure 3: mismatches fall back to start, except that a symbol equal
      // to a1 restarts the match at state 1.
      if (s == episode_[0]) {
        state_ = 1;
        first_pos_ = pos;
        // A level-1 episode completes immediately (handled above since
        // state_ == 0 would have matched); level >= 2 here.
      } else {
        state_ = 0;
      }
    }
    return false;
  }

  [[nodiscard]] int state() const noexcept { return state_; }
  [[nodiscard]] std::int64_t first_match_pos() const noexcept { return first_pos_; }

  /// Restore mid-stream progress (used by segment composition).
  void restore(int state, std::int64_t first_match_pos) noexcept {
    state_ = state;
    first_pos_ = first_match_pos;
  }

  void reset() noexcept {
    state_ = 0;
    first_pos_ = 0;
  }

 private:
  std::span<const Symbol> episode_;
  Semantics semantics_;
  ExpiryPolicy expiry_;
  int state_ = 0;
  std::int64_t first_pos_ = 0;
};

}  // namespace gm::core

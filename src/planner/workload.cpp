#include "planner/workload.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/episode_trie.hpp"
#include "kernels/workload_model.hpp"

namespace gm::planner {

Workload workload_of(const core::CountRequest& request, int alphabet_size_hint) {
  gm::expects(!request.database.empty(), "workload needs a non-empty database");
  gm::expects(!request.episodes.empty(), "workload needs at least one episode");
  Workload w;
  w.db_size = static_cast<std::int64_t>(request.database.size());
  w.episode_count = static_cast<std::int64_t>(request.episodes.size());
  w.level = request.episodes.front().level();
  const auto max_symbol =
      *std::max_element(request.database.begin(), request.database.end());
  w.alphabet_size = std::max(static_cast<int>(max_symbol) + 1, alphabet_size_hint);
  w.symbol_freq = kernels::measured_symbol_freq(request.database, w.alphabet_size);
  w.prefix_compression = core::prefix_compression(request.episodes);
  w.semantics = request.semantics;
  w.expiry = request.expiry;
  return w;
}

}  // namespace gm::planner

#include "sim/profile.hpp"

#include "common/error.hpp"

namespace gpusim {

const BlockProfile& KernelProfile::block_at(std::int64_t index) const {
  std::int64_t seen = 0;
  for (const auto& g : groups) {
    if (index < seen + g.count) return g.block;
    seen += g.count;
  }
  gm::raise_precondition("block index out of range in KernelProfile::block_at");
}

ProfileTotals aggregate(const KernelProfile& profile) {
  ProfileTotals t;
  for (const auto& g : profile.groups) {
    const auto n = static_cast<double>(g.count);
    t.warp_instructions += n * g.block.warp_instructions;
    t.lane_instructions += n * g.block.lane_instructions;
    t.tex_requests += n * g.block.tex_requests;
    t.tex_miss_bytes += n * g.block.tex_miss_bytes;
    t.shared_requests += n * g.block.shared_requests;
    t.global_requests += n * g.block.global_requests;
    t.atomic_requests += n * g.block.atomic_requests;
    t.syncs += g.count * g.block.syncs;
    t.blocks += g.count;
  }
  return t;
}

}  // namespace gpusim

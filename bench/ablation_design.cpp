// Ablations of this reproduction's own design choices (DESIGN.md section 4):
//
//  * spanning-fix strategy: exact state composition vs. naive overlap rescan
//    vs. none — accuracy and modelled cost;
//  * staging-buffer size for the buffered kernels;
//  * Mars-style thread padding vs. an idealized no-padding launch;
//  * dual-die 9800 GX2 (the multi-GPU extension the paper left unused).
#include <iostream>

#include "bench_support/paper_setup.hpp"
#include "core/candidate_gen.hpp"
#include "core/segment_counter.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "distrib/scale_model.hpp"
#include "kernels/workload_model.hpp"

int main() {
  using gm::core::Alphabet;
  using gm::core::Semantics;
  using gm::core::SpanningFix;
  using gm::kernels::Algorithm;

  // --- spanning strategy accuracy -------------------------------------------
  const Alphabet alphabet(6);
  const auto db = gm::data::uniform_database(alphabet, 30'000, 23);
  const auto episodes = gm::core::all_distinct_episodes(alphabet, 2);
  std::cout << "Spanning-fix ablation (30k symbols, 64 chunks, level-2 episodes):\n";
  std::cout << "strategy            total count     error vs serial\n";
  std::int64_t serial_total = 0;
  for (const auto& e : episodes) {
    serial_total += count_occurrences(e, db, Semantics::kNonOverlappedSubsequence);
  }
  for (const SpanningFix fix :
       {SpanningFix::kStateComposition, SpanningFix::kOverlapRescan, SpanningFix::kNone}) {
    std::int64_t total = 0;
    for (const auto& e : episodes) {
      total += count_chunked(e, db, 64, Semantics::kNonOverlappedSubsequence, {}, fix);
    }
    std::cout << to_string(fix) << std::string(20 - to_string(fix).size(), ' ') << total
              << "\t    " << total - serial_total << "\n";
  }

  // --- buffer size for the buffered kernels ----------------------------------
  const auto device = gpusim::geforce_gtx_280();
  const gpusim::CostModel model;
  std::cout << "\nStaging-buffer ablation: Algo4 L2 on GTX280 @256tpb (predicted ms)\n";
  for (const int buffer : {2048, 4096, 8192, 16384}) {
    gm::kernels::WorkloadSpec spec;
    spec.db_size = gm::data::kPaperDatabaseSize;
    spec.episode_count = gm::bench::paper_episode_count(2);
    spec.level = 2;
    spec.params.algorithm = Algorithm::kBlockBuffered;
    spec.params.threads_per_block = 256;
    spec.params.buffer_bytes = buffer;
    std::cout << "  " << buffer << " B: " << predict_mining_time(device, spec, model).total_ms
              << " ms\n";
  }

  // --- padding cost (thread-level kernels) -----------------------------------
  std::cout << "\nMars-style padding ablation: Algo1 L1 on GTX280 (predicted ms)\n";
  std::cout << "  (26 episodes padded up to a full block vs. a hypothetical exact launch)\n";
  for (const int tpb : {32, 128, 512}) {
    gm::kernels::WorkloadSpec padded;
    padded.db_size = gm::data::kPaperDatabaseSize;
    padded.episode_count = 26;
    padded.level = 1;
    padded.params.algorithm = Algorithm::kThreadTexture;
    padded.params.threads_per_block = tpb;

    gm::kernels::WorkloadSpec exact = padded;  // 26 threads in a 26-wide block
    exact.params.threads_per_block = 26;

    std::cout << "  tpb " << tpb << ": padded "
              << predict_mining_time(device, padded, model).total_ms << " ms vs exact-launch "
              << predict_mining_time(device, exact, model).total_ms << " ms\n";
  }

  // --- dual-die GX2 ------------------------------------------------------------
  std::cout << "\nDual-die 9800 GX2 (episode partitioning, Algo1 L3 @128tpb):\n";
  gm::kernels::WorkloadSpec spec;
  spec.db_size = gm::data::kPaperDatabaseSize;
  spec.episode_count = gm::bench::paper_episode_count(3);
  spec.level = 3;
  spec.params.algorithm = Algorithm::kThreadTexture;
  spec.params.threads_per_block = 128;
  const auto gx2 = gpusim::geforce_9800_gx2();
  const auto one = gm::distrib::predict_scaled_mining(
      gx2, 1, spec, gm::distrib::ShardAxis::kEpisodes, model);
  const auto two = gm::distrib::predict_scaled_mining(
      gx2, 2, spec, gm::distrib::ShardAxis::kEpisodes, model);
  std::cout << "  1 die: " << one.total_ms << " ms;  2 dies: " << two.total_ms
            << " ms  (speedup " << one.total_ms / two.total_ms << "x)\n";
  return 0;
}

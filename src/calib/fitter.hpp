// The calibration fitter: per-term, non-negative least-squares (in log
// space) of the CalibrationProfile constants against measured
// (candidate-features, time) samples.
//
// Samples come from two places: `backend_shootout --validate-planner` /
// `--fit-calibration` measurement loops (CPU backends by wall-clock, gpusim
// candidates by engine-measured kernel time, weight 1) and the
// calibration_table paper-figure probes (weight ~0.1, anchoring the kernel
// terms when a fit run has few or no GPU samples).  The loss is the weighted
// sum of squared log-ratios between predicted and measured time, each side
// floored by `floor_ms` — the same noise floor the shootout's regret ratio
// uses, so sub-floor samples cannot dominate the fit.
//
// The optimizer is coordinate descent: one bounded 1-D minimization per
// registry parameter per sweep (coarse grid + golden-section refinement,
// robust to the cost model's piecewise max structure), clamped to
// [0, shipped * max_scale].  Every prediction is linear in the CPU constants
// and piecewise-monotone in the kernel charges, so a handful of sweeps
// converges; parameters no sample exercises keep their shipped values.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "calib/calibration.hpp"
#include "planner/planner.hpp"
#include "planner/workload.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_spec.hpp"

namespace gm::calib {

/// One measured data point: the candidate that ran, the workload shape it
/// ran on, and what it cost.
struct FitSample {
  planner::Workload workload;
  planner::CandidateConfig config;
  /// gpusim candidates only: the card and timing-model parameters the
  /// measurement used (ignored for CPU candidates).
  gpusim::DeviceSpec device;
  gpusim::CostParams cost_params = {};
  double measured_ms = 0.0;
  double weight = 1.0;
};

/// What the profile predicts for a sample's candidate on its workload
/// (the same curves plan_level scores with).
[[nodiscard]] double predict_sample_ms(const CalibrationProfile& profile,
                                       const FitSample& sample);

struct FitOptions {
  /// Coordinate-descent sweeps over the parameter registry.
  int max_sweeps = 6;
  /// Per-term search bound: [0, shipped_value * max_scale].
  double max_scale = 16.0;
  /// Noise floor added to both sides of the log-ratio loss (ms).
  double floor_ms = 0.05;
  /// Stop sweeping once a full sweep improves the loss by less than this
  /// relative fraction.
  double rel_tolerance = 1e-4;
};

struct FitReport {
  int sweeps = 0;
  double initial_loss = 0.0;
  double final_loss = 0.0;
  /// Registry names of the parameters the fit moved (>0.1% relative).
  std::vector<std::string> adjusted;
};

/// Weighted squared-log-ratio loss of a profile over the samples.
[[nodiscard]] double fit_loss(const CalibrationProfile& profile,
                              std::span<const FitSample> samples, double floor_ms);

/// Fit `profile` in place (starting from its current values) and stamp its
/// provenance fields.  Throws gm::PreconditionError on an empty sample set
/// or non-positive measurements/weights.
FitReport fit_profile(CalibrationProfile& profile, std::span<const FitSample> samples,
                      const FitOptions& options = {});

}  // namespace gm::calib

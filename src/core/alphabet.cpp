#include "core/alphabet.hpp"

#include "common/error.hpp"

namespace gm::core {

Alphabet::Alphabet(int size) : size_(size) {
  gm::expects(size >= 1 && size <= 255, "alphabet size must be in [1, 255]");
}

std::string Alphabet::symbol_name(Symbol s) const {
  gm::expects(contains(s), "symbol outside alphabet");
  if (size_ <= 26) return std::string(1, static_cast<char>('A' + s));
  // Built via += rather than operator+ to dodge GCC 12's -Wrestrict false
  // positive on short-string concatenation (GCC PR 105329).
  std::string name = "s";
  name += std::to_string(static_cast<int>(s));
  return name;
}

Sequence Alphabet::parse(std::string_view text) const {
  gm::expects(size_ <= 26, "text parsing requires an alphabet of at most 26 letters");
  Sequence out;
  out.reserve(text.size());
  for (char c : text) {
    const int v = c - 'A';
    gm::expects(v >= 0 && v < size_, std::string("character '") + c + "' outside alphabet");
    out.push_back(static_cast<Symbol>(v));
  }
  return out;
}

std::string Alphabet::format(const Sequence& seq) const {
  gm::expects(size_ <= 26, "text formatting requires an alphabet of at most 26 letters");
  std::string out;
  out.reserve(seq.size());
  for (Symbol s : seq) {
    gm::expects(contains(s), "sequence symbol outside alphabet");
    out.push_back(static_cast<char>('A' + s));
  }
  return out;
}

}  // namespace gm::core

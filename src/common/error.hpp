// Error-handling primitives shared by every gpuminer module.
//
// Style follows the C++ Core Guidelines: preconditions are checked with
// `expects()`, postconditions/invariants with `ensure()`, both of which throw
// typed exceptions carrying a formatted message.  No macros; call sites pass
// context strings explicitly.
//
// Every gm::Error additionally carries a stable ErrorCode so layers that
// report failures as data rather than stack unwinding — the service layer's
// MineResponse/CountResponse rejections, the CLI's exit-status mapping — can
// return a machine-readable reason without parsing the message text.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gm {

/// Stable machine-readable failure taxonomy.  Values are append-only: the
/// service layer serializes `error_code_name()` into responses and BENCH
/// artifacts, so renaming or reordering existing entries breaks consumers.
enum class ErrorCode {
  kUnknown = 0,
  /// Malformed command-line / request syntax (bench::UsageError).
  kUsage,
  /// A configuration value outside its documented domain (e.g. a support
  /// threshold above 1): fixable by the caller, before any work ran.
  kInvalidConfig,
  /// A caller violated a documented API precondition.
  kPrecondition,
  /// An internal invariant failed (a bug in this library).
  kInvariant,
  /// The simulated device rejected an operation.
  kDevice,
  /// The request exceeds a backend capability bound (e.g. the GPU kernels'
  /// episode-level cap kernels::kMaxLevel).
  kCapability,
  /// Admission control rejected the request: the planner predicts it would
  /// exceed its latency budget.
  kAdmissionRejected,
  /// The service request queue is at capacity.
  kQueueFull,
  /// The service is shutting down and will not serve the request.
  kShutdown,
};

/// Stable snake_case name of a code ("invalid_config", "queue_full", ...).
[[nodiscard]] std::string_view error_code_name(ErrorCode code) noexcept;

/// Base class for all gpuminer errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrorCode code = ErrorCode::kUnknown)
      : std::runtime_error(what), code_(code) {}

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what,
                             ErrorCode code = ErrorCode::kPrecondition)
      : Error(what, code) {}
};

/// An internal invariant failed (a bug in this library, not the caller).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what, ErrorCode::kInvariant) {}
};

/// The simulated device rejected an operation (e.g. launch config exceeds
/// hardware limits, or an atomic op unsupported at this compute capability).
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error(what, ErrorCode::kDevice) {}
};

[[noreturn]] void raise_precondition(std::string_view message,
                                     std::source_location loc = std::source_location::current());
/// Like raise_precondition, but tagging the error with a specific code
/// (kInvalidConfig, kCapability, ...) for machine-readable consumers.
[[noreturn]] void raise_precondition(std::string_view message, ErrorCode code,
                                     std::source_location loc = std::source_location::current());
[[noreturn]] void raise_invariant(std::string_view message,
                                  std::source_location loc = std::source_location::current());
[[noreturn]] void raise_device(std::string_view message,
                               std::source_location loc = std::source_location::current());

/// Check a documented precondition of a public entry point.
inline void expects(bool condition, std::string_view message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) raise_precondition(message, loc);
}

/// Check an internal invariant.
inline void ensure(bool condition, std::string_view message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) raise_invariant(message, loc);
}

}  // namespace gm

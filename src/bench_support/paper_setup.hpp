// Shared configuration of the paper-reproduction benches: the evaluation
// workload (393,019 letters, episode levels 1-3), one-call helpers that
// predict a mining kernel's time on a card via the analytic workload model,
// and the backend selection shared by the CLI and the bench drivers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/counting.hpp"
#include "kernels/mining_kernels.hpp"
#include "kernels/workload_model.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_spec.hpp"

namespace gm::bench {

/// Everything needed to name a counting backend on a command line.
struct BackendSpec {
  /// "cpu-serial" | "cpu-parallel" | "cpu-sharded" | "cpu-single-scan" |
  /// "gpusim" | "auto" (unprefixed cpu aliases accepted).  "auto" plans the
  /// formulation per counting level (planner::AutoBackend): `card` names the
  /// device its GPU candidates are scored for and `threads` its CPU worker
  /// budget; `launch` is ignored (the planner sweeps algorithms and
  /// threads-per-block itself).
  std::string name = "gpusim";
  int threads = 0;  ///< CPU backends: 0 = hardware concurrency
  std::string card = "gtx280";
  kernels::MiningLaunchParams launch = {};  ///< gpusim only
  /// "auto" only: path of a fitted calibration profile (see calib/ and
  /// `backend_shootout --fit-calibration`) whose constants replace the
  /// shipped cost-model defaults the planner scores with.  Empty = shipped.
  std::string calibration;
};

/// Construct the backend a spec names.  Throws gm::PreconditionError for an
/// unknown name, listing the valid ones.
[[nodiscard]] std::unique_ptr<core::CountingBackend> make_backend(const BackendSpec& spec);

/// The names make_backend accepts (for --help text and shootout sweeps).
[[nodiscard]] std::vector<std::string_view> backend_names();

/// Episode counts of the paper's levels over the 26-letter alphabet.
[[nodiscard]] std::int64_t paper_episode_count(int level);

/// Predicted kernel time (ms) for one paper configuration.
[[nodiscard]] double paper_time_ms(const gpusim::DeviceSpec& device,
                                   kernels::Algorithm algorithm, int level,
                                   int threads_per_block,
                                   const gpusim::CostModel& model = gpusim::CostModel{});

/// Same, returning the full mechanism breakdown.
[[nodiscard]] gpusim::TimeBreakdown paper_breakdown(const gpusim::DeviceSpec& device,
                                                    kernels::Algorithm algorithm, int level,
                                                    int threads_per_block,
                                                    const gpusim::CostModel& model =
                                                        gpusim::CostModel{});

}  // namespace gm::bench

#include "bench_support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <system_error>

#include "common/error.hpp"

namespace gm::bench {
namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void JsonWriter::before_value() {
  if (stack_.empty()) {
    gm::expects(out_.empty(), "JSON document already holds a complete top-level value");
    return;
  }
  if (stack_.back() == Scope::kObject) {
    gm::expects(pending_key_, "JSON object values need a key() first");
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  gm::expects(!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_,
              "unbalanced JSON end_object");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  gm::expects(!stack_.empty() && stack_.back() == Scope::kArray, "unbalanced JSON end_array");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  gm::expects(!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_,
              "JSON key() belongs inside an object, once per value");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  append_escaped(out_, name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  append_escaped(out_, text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  // Shortest representation that parses back to the same double: fitted
  // calibration profiles round-trip losslessly through write -> parse.
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), number);
  gm::ensure(ec == std::errc{}, "double formatting overflowed its buffer");
  out_.append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() const {
  gm::expects(stack_.empty(), "JSON document has unclosed containers");
  return out_;
}

void JsonWriter::write_file(const std::string& path) const { write_json_file(str(), path); }

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

namespace {

/// Recursive-descent parser over a string_view; `pos_` is the byte offset
/// every error message carries.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after the JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    gm::raise_precondition("JSON parse error at offset " + std::to_string(pos_) + ": " +
                           what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "', got '" + peek() + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else fail("invalid hex digit in \\u escape");
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the paired low surrogate.
            if (!consume_literal("\\u")) fail("unpaired UTF-16 surrogate");
            const std::uint32_t low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) fail("invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: fail(std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  /// JSON number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  /// (stricter than from_chars, which would accept leading zeros).
  static bool valid_number(std::string_view t) {
    std::size_t i = 0;
    const auto digit = [&](std::size_t j) {
      return j < t.size() && t[j] >= '0' && t[j] <= '9';
    };
    if (i < t.size() && t[i] == '-') ++i;
    if (!digit(i)) return false;
    if (t[i] == '0') {
      ++i;
    } else {
      while (digit(i)) ++i;
    }
    if (i < t.size() && t[i] == '.') {
      ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    if (i < t.size() && (t[i] == 'e' || t[i] == 'E')) {
      ++i;
      if (i < t.size() && (t[i] == '+' || t[i] == '-')) ++i;
      if (!digit(i)) return false;
      while (digit(i)) ++i;
    }
    return i == t.size();
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (!valid_number(token) || ec != std::errc{} ||
        ptr != token.data() + token.size()) {
      pos_ = start;
      fail("malformed number '" + std::string(token) + "'");
    }
    JsonValue out;
    out.kind = JsonValue::Kind::kNumber;
    out.number = value;
    return out;
  }

  JsonValue parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting deeper than the reader's limit");
    skip_whitespace();
    JsonValue out;
    switch (peek()) {
      case '{': {
        expect('{');
        out.kind = JsonValue::Kind::kObject;
        skip_whitespace();
        if (peek() == '}') {
          ++pos_;
          break;
        }
        while (true) {
          skip_whitespace();
          std::string key = parse_string();
          skip_whitespace();
          expect(':');
          out.object.emplace_back(std::move(key), parse_value());
          skip_whitespace();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          break;
        }
        break;
      }
      case '[': {
        expect('[');
        out.kind = JsonValue::Kind::kArray;
        skip_whitespace();
        if (peek() == ']') {
          ++pos_;
          break;
        }
        while (true) {
          out.array.push_back(parse_value());
          skip_whitespace();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          break;
        }
        break;
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        out.string = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("expected 'true'");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("expected 'false'");
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("expected 'null'");
        break;
      default: out = parse_number(); break;
    }
    --depth_;
    return out;
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool JsonValue::as_bool() const {
  gm::expects(kind == Kind::kBool, "JSON value is not a boolean");
  return boolean;
}

double JsonValue::as_double() const {
  gm::expects(kind == Kind::kNumber, "JSON value is not a number");
  return number;
}

std::int64_t JsonValue::as_int64() const {
  gm::expects(kind == Kind::kNumber, "JSON value is not a number");
  // Range before cast: converting an out-of-range double to int64 is UB.
  // 2^63 is exactly representable; the valid doubles are [-2^63, 2^63).
  gm::expects(number >= -9223372036854775808.0 && number < 9223372036854775808.0,
              "JSON number is not an integer");
  const auto as_int = static_cast<std::int64_t>(number);
  gm::expects(static_cast<double>(as_int) == number, "JSON number is not an integer");
  return as_int;
}

const std::string& JsonValue::as_string() const {
  gm::expects(kind == Kind::kString, "JSON value is not a string");
  return string;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  gm::expects(kind == Kind::kObject, "JSON member lookup on a non-object");
  for (const auto& [name, value] : object) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) {
    gm::raise_precondition("JSON object has no member '" + std::string(key) + "'");
  }
  return *value;
}

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse_document(); }

JsonValue parse_json_file(const std::string& path) {
  std::ifstream file(path);
  gm::expects(file.good(), "cannot open '" + path + "' for reading");
  std::string text((std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  gm::expects(!file.bad(), "failed reading '" + path + "'");
  return parse_json(text);
}

void write_json_file(std::string_view text, const std::string& path) {
  std::ofstream file(path);
  gm::expects(file.good(), "cannot open '" + path + "' for writing");
  file << text << '\n';
  file.close();
  gm::expects(file.good(), "failed writing '" + path + "'");
}

}  // namespace gm::bench

#include "planner/planner.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "core/cpu_backend.hpp"
#include "distrib/distrib_backend.hpp"
#include "distrib/scale_model.hpp"
#include "kernels/gpu_backend.hpp"
#include "kernels/workload_model.hpp"

namespace gm::planner {
namespace {

std::string fmt_ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ms < 10.0 ? "%.3f" : "%.2f", ms);
  return buf;
}

ScoredCandidate score_cpu(const Workload& w, BackendKind kind, int threads,
                          const CpuCostConstants& constants) {
  ScoredCandidate c;
  c.config.kind = kind;
  c.config.threads = threads;
  c.feasible = true;
  switch (kind) {
    case BackendKind::kCpuSerial:
      c.predicted_ms = predict_cpu_serial_ms(w, constants);
      c.reason = "single-core reference scan";
      break;
    case BackendKind::kCpuParallel:
      c.predicted_ms = predict_cpu_parallel_ms(w, threads, constants);
      c.reason = "episode-parallel map";
      break;
    case BackendKind::kCpuSharded:
      c.predicted_ms = predict_cpu_sharded_ms(w, threads, constants);
      c.reason = w.expiry.enabled() ? "expiry degrades sharding to episode parallelism"
                                    : "database-sharded map + compose fold";
      break;
    case BackendKind::kCpuSingleScan:
      c.predicted_ms = predict_cpu_single_scan_ms(w, constants);
      c.reason = w.semantics == core::Semantics::kContiguousRestart
                     ? "dense single scan (contiguous restart)"
                     : "bucket-indexed single scan";
      break;
    case BackendKind::kCpuTrieScan: {
      c.predicted_ms = predict_cpu_trie_ms(w, constants);
      char note[64];
      std::snprintf(note, sizeof(note), "shared-prefix trie scan (prefix mass %.2f)",
                    w.prefix_compression);
      c.reason = w.semantics == core::Semantics::kContiguousRestart
                     ? "dense single scan (contiguous restart)"
                     : note;
      break;
    }
    case BackendKind::kGpuSim:
    case BackendKind::kDistrib:
      gm::raise_precondition("score_cpu called for a non-CPU kind");
      break;
  }
  return c;
}

/// One distrib candidate per device count.  Host flavor: the work-stealing
/// single-scan curve.  Card flavor: the scale model's database-axis split
/// (per-shard kernel time + merge + imbalance), minimized over the launch
/// sweep so the candidate carries the launch each card would actually run.
ScoredCandidate score_distrib(const Workload& w, int devices, bool gpu,
                              const PlannerOptions& options) {
  ScoredCandidate c;
  c.config.kind = BackendKind::kDistrib;
  c.config.threads = devices;
  c.config.distrib_gpu = gpu;
  if (!gpu) {
    c.feasible = true;
    c.predicted_ms = predict_cpu_distrib_ms(w, devices, options.cpu_constants);
    c.reason = "work-stealing single-scan shards";
    return c;
  }
  if (w.level > kernels::kMaxLevel) {
    c.reason = "backend max_level " + std::to_string(kernels::kMaxLevel) +
               " < requested level " + std::to_string(w.level) +
               " (frame-register episode staging)";
    return c;
  }
  // Counts come from the host fold (always exact); the launch only shapes
  // the simulated card time, so no exactness gate applies here.
  const gpusim::CostModel model(options.cost_params);
  double best_ms = 0.0;
  bool found = false;
  for (const kernels::Algorithm algorithm : kernels::all_algorithms()) {
    for (const int tpb : options.tpb_sweep) {
      if (tpb > options.device.max_threads_per_block) continue;
      try {
        const auto scaled = distrib::predict_scaled_mining(
            options.device, devices, gpu_workload_spec(w, algorithm, tpb),
            distrib::ShardAxis::kDatabase, model, options.kernel_costs);
        if (!found || scaled.total_ms < best_ms) {
          found = true;
          best_ms = scaled.total_ms;
          c.config.algorithm = algorithm;
          c.config.threads_per_block = tpb;
          char note[96];
          std::snprintf(note, sizeof(note),
                        "%d card(s) x algo%d/t%d, merge %.3f ms, imbalance %.2f", devices,
                        kernels::algorithm_number(algorithm), tpb, scaled.merge_ms,
                        scaled.imbalance);
          c.reason = note;
        }
      } catch (const gm::Error&) {
        // This (algorithm, tpb) cannot run on the per-card shard; skip it.
      }
    }
  }
  if (!found) {
    c.reason = "no launch in the sweep fits the per-card shard";
    return c;
  }
  c.feasible = true;
  // Counts come from the host fold even on simulated cards, so the card
  // flavor pays the boundary fix-up too — on kernel-bound shapes it is
  // noise, but it keeps tiny workloads from drifting onto the device axis.
  c.predicted_ms = best_ms + distrib_rescan_ms(w, devices, options.cpu_constants);
  return c;
}

ScoredCandidate score_gpu(const Workload& w, kernels::Algorithm algorithm, int tpb,
                          bool trie_buckets, const PlannerOptions& options) {
  ScoredCandidate c;
  c.config.kind = BackendKind::kGpuSim;
  c.config.algorithm = algorithm;
  c.config.threads_per_block = tpb;
  c.config.trie_buckets = trie_buckets;

  // Capability gates, checked in the order a user could fix them; the
  // catch-all below keeps any further kernel-layer precondition from
  // escaping as an exception instead of a rejection.
  if (w.level > kernels::kMaxLevel) {
    c.reason = "backend max_level " + std::to_string(kernels::kMaxLevel) +
               " < requested level " + std::to_string(w.level) +
               " (frame-register episode staging)";
    return c;
  }
  if (tpb > options.device.max_threads_per_block) {
    c.reason = "threads_per_block " + std::to_string(tpb) + " exceeds the device limit " +
               std::to_string(options.device.max_threads_per_block);
    return c;
  }
  if (kernels::is_block_level(algorithm) && tpb > w.db_size) {
    c.reason = "block-level chunking needs threads_per_block <= |DB| (" +
               std::to_string(w.db_size) + ")";
    return c;
  }
  if (options.require_exact && w.expiry.enabled() && kernels::is_block_level(algorithm)) {
    c.reason = "inexact under expiry (overlap-rescan approximation); "
               "relax require_exact to allow";
    return c;
  }
  try {
    const gpusim::CostModel model(options.cost_params);
    c.breakdown =
        kernels::predict_mining_time(options.device,
                                     gpu_workload_spec(w, algorithm, tpb, trie_buckets),
                                     model, options.kernel_costs);
    c.predicted_ms = c.breakdown.total_ms;
    c.feasible = true;
    c.reason = "bound by " + c.breakdown.bound_by;
    if (trie_buckets) {
      char note[48];
      std::snprintf(note, sizeof(note), "; trie prefix mass %.2f", w.prefix_compression);
      c.reason += note;
    }
  } catch (const gm::Error& e) {
    c.reason = e.what();
  }
  return c;
}

/// Measured-bias multiplier for a candidate: exact label match first, then
/// the backend kind name, then 1 (no feedback recorded).
double bias_for(const PlannerOptions& options, const CandidateConfig& config) {
  if (options.measured_bias.empty()) return 1.0;
  auto it = options.measured_bias.find(config.label());
  if (it == options.measured_bias.end()) {
    it = options.measured_bias.find(std::string(backend_kind_name(config.kind)));
  }
  return it == options.measured_bias.end() ? 1.0 : it->second;
}

}  // namespace

PlannerOptions::PlannerOptions() : device(gpusim::geforce_gtx_280()) {}

kernels::WorkloadSpec gpu_workload_spec(const Workload& w, kernels::Algorithm algorithm,
                                        int tpb, bool trie_buckets) {
  kernels::WorkloadSpec spec;
  spec.db_size = w.db_size;
  spec.episode_count = w.episode_count;
  spec.level = w.level;
  spec.alphabet_size = w.alphabet_size;
  if (kernels::is_bucketed(algorithm)) {
    spec.symbol_freq = w.symbol_freq;
    spec.prefix_compression = w.prefix_compression;
  }
  spec.params.algorithm = algorithm;
  spec.params.threads_per_block = tpb;
  spec.params.semantics = w.semantics;
  spec.params.expiry = w.expiry;
  spec.params.trie_buckets = trie_buckets;
  return spec;
}

std::string_view backend_kind_name(BackendKind kind) {
  switch (kind) {
    case BackendKind::kCpuSerial: return "cpu-serial";
    case BackendKind::kCpuParallel: return "cpu-parallel";
    case BackendKind::kCpuSharded: return "cpu-sharded";
    case BackendKind::kCpuSingleScan: return "cpu-single-scan";
    case BackendKind::kCpuTrieScan: return "cpu-trie-scan";
    case BackendKind::kGpuSim: return "gpusim";
    case BackendKind::kDistrib: return "distrib";
  }
  gm::raise_precondition("unknown backend kind");
}

std::string CandidateConfig::label() const {
  if (kind == BackendKind::kDistrib) {
    return std::string(distrib_gpu ? "distrib-gpu-x" : "distrib-x") + std::to_string(threads);
  }
  if (kind == BackendKind::kGpuSim) {
    return "gpusim-algo" + std::to_string(kernels::algorithm_number(algorithm)) +
           (trie_buckets ? "-trie" : "") + "/t" + std::to_string(threads_per_block);
  }
  std::string name(backend_kind_name(kind));
  if (kind == BackendKind::kCpuParallel || kind == BackendKind::kCpuSharded) {
    name += "-x" + std::to_string(threads);
  }
  return name;
}

Plan plan_level(const Workload& workload, const PlannerOptions& options) {
  gm::expects(workload.db_size > 0, "planner needs a non-empty database");
  gm::expects(workload.episode_count > 0, "planner needs at least one episode");
  gm::expects(workload.level >= 1, "planner needs a positive level");
  gm::expects(options.enable_cpu || options.enable_gpu,
              "planner needs at least one enabled candidate family");

  Plan plan;
  plan.workload = workload;

  if (options.enable_cpu) {
    const int threads = core::resolved_thread_count(options.cpu_threads);
    plan.table.push_back(score_cpu(workload, BackendKind::kCpuSerial, 1,
                                   options.cpu_constants));
    plan.table.push_back(score_cpu(workload, BackendKind::kCpuParallel, threads,
                                   options.cpu_constants));
    plan.table.push_back(score_cpu(workload, BackendKind::kCpuSharded, threads,
                                   options.cpu_constants));
    plan.table.push_back(score_cpu(workload, BackendKind::kCpuSingleScan, 1,
                                   options.cpu_constants));
    plan.table.push_back(score_cpu(workload, BackendKind::kCpuTrieScan, 1,
                                   options.cpu_constants));
  }
  if (options.enable_gpu) {
    gm::expects(!options.tpb_sweep.empty(),
                "planner needs a non-empty threads-per-block sweep");
    for (const kernels::Algorithm algorithm : kernels::all_algorithms()) {
      for (const int tpb : options.tpb_sweep) {
        plan.table.push_back(score_gpu(workload, algorithm, tpb, false, options));
        // The block-bucketed kernel also runs in shared-prefix trie mode; a
        // second candidate per tpb lets the sort decide trie vs flat from the
        // workload's measured prefix mass.
        if (kernels::is_bucketed(algorithm)) {
          plan.table.push_back(score_gpu(workload, algorithm, tpb, true, options));
        }
      }
    }
  }
  // The device-count axis: one distrib candidate per flavor per sweep entry,
  // so the table answers "when does 2x card beat 1x card at this level".
  for (const int devices : options.device_sweep) {
    gm::expects(devices >= 1, "device_sweep entries must be positive");
    if (options.enable_cpu) {
      plan.table.push_back(score_distrib(workload, devices, false, options));
    }
    if (options.enable_gpu) {
      plan.table.push_back(score_distrib(workload, devices, true, options));
    }
  }

  // Fold in any online-feedback multipliers before ranking, and say so in
  // the note: a biased prediction should never read like a pure model value.
  for (ScoredCandidate& c : plan.table) {
    if (!c.feasible) continue;
    const double bias = bias_for(options, c.config);
    if (bias == 1.0) continue;
    gm::expects(bias > 0.0, "measured_bias multipliers must be positive");
    c.predicted_ms *= bias;
    char note[48];
    std::snprintf(note, sizeof(note), "; x%.2f measured bias", bias);
    c.reason += note;
  }

  // Feasible candidates first, fastest first; label as the deterministic
  // tie-break.  Rejected candidates keep enumeration order at the tail so
  // the table reads "ranking, then rejections".
  std::stable_sort(plan.table.begin(), plan.table.end(),
                   [](const ScoredCandidate& a, const ScoredCandidate& b) {
                     if (a.feasible != b.feasible) return a.feasible;
                     if (!a.feasible) return false;
                     if (a.predicted_ms != b.predicted_ms) {
                       return a.predicted_ms < b.predicted_ms;
                     }
                     return a.config.label() < b.config.label();
                   });

  const std::size_t feasible = plan.feasible_count();
  if (feasible == 0) {
    gm::raise_precondition("planner found no feasible formulation for level " +
                           std::to_string(workload.level) + " (" +
                           std::to_string(plan.table.size()) + " candidates rejected)");
  }

  const ScoredCandidate& win = plan.table.front();
  plan.explanation = "picked " + win.config.label() + " (predicted " +
                     fmt_ms(win.predicted_ms) + " ms, " + win.reason + ")";
  if (feasible > 1) {
    const ScoredCandidate& runner_up = plan.table[1];
    char ratio[32];
    std::snprintf(ratio, sizeof(ratio), "%.2f",
                  win.predicted_ms > 0.0 ? runner_up.predicted_ms / win.predicted_ms : 0.0);
    plan.explanation += "; " + std::string(ratio) + "x ahead of runner-up " +
                        runner_up.config.label() + " (" + fmt_ms(runner_up.predicted_ms) +
                        " ms)";
  } else {
    plan.explanation += "; the only feasible candidate";
  }
  if (plan.table.size() > feasible) {
    plan.explanation +=
        "; rejected " + std::to_string(plan.table.size() - feasible) + " candidates";
  }
  return plan;
}

std::unique_ptr<core::CountingBackend> make_planned_backend(const CandidateConfig& config,
                                                            const PlannerOptions& options) {
  if (config.kind == BackendKind::kDistrib) {
    distrib::DistribOptions d;
    d.shards = config.threads;
    d.worker = config.distrib_gpu ? distrib::WorkerKind::kGpuSim
                                  : distrib::WorkerKind::kSingleScan;
    d.device = options.device;
    d.cost_params = options.cost_params;
    d.kernel_costs = options.kernel_costs;
    if (config.distrib_gpu) {
      d.launch.algorithm = config.algorithm;
      d.launch.threads_per_block = config.threads_per_block;
    }
    return std::make_unique<distrib::DistribBackend>(d);
  }
  if (config.kind == BackendKind::kGpuSim) {
    kernels::MiningLaunchParams params;
    params.algorithm = config.algorithm;
    params.threads_per_block = config.threads_per_block;
    params.trie_buckets = config.trie_buckets;
    return std::make_unique<kernels::SimGpuBackend>(options.device, params,
                                                    options.cost_params);
  }
  auto backend =
      core::make_cpu_backend(backend_kind_name(config.kind), config.threads);
  gm::ensure(backend != nullptr, "planner named an unknown CPU backend");
  return backend;
}

std::string format_plan(const Plan& plan) {
  const Workload& w = plan.workload;
  char prefix[32];
  std::snprintf(prefix, sizeof(prefix), "%.2f", w.prefix_compression);
  std::string out = "workload: |DB|=" + std::to_string(w.db_size) +
                    " |episodes|=" + std::to_string(w.episode_count) +
                    " level=" + std::to_string(w.level) +
                    " alphabet=" + std::to_string(w.alphabet_size) +
                    " prefix-mass=" + prefix +
                    " semantics=" + core::to_string(w.semantics) +
                    " expiry=" + std::to_string(w.expiry.window) + "\n";
  char row[256];
  std::snprintf(row, sizeof(row), "  %-24s %12s  %s\n", "candidate", "predicted ms",
                "note");
  out += row;
  for (const ScoredCandidate& c : plan.table) {
    if (c.feasible) {
      std::snprintf(row, sizeof(row), "  %-24s %12s  %s\n", c.config.label().c_str(),
                    fmt_ms(c.predicted_ms).c_str(), c.reason.c_str());
    } else {
      std::snprintf(row, sizeof(row), "  %-24s %12s  rejected: %s\n",
                    c.config.label().c_str(), "-", c.reason.c_str());
    }
    out += row;
  }
  out += "  => " + plan.explanation + "\n";
  return out;
}

}  // namespace gm::planner

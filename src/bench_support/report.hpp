// Reporting helpers for the benchmark harnesses: fixed-width series tables
// (one row per threads-per-block value, matching the paper's figure axes),
// CSV emission, and paper-reference comparisons.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace gm::bench {

/// One curve: y-value per swept x (threads per block).
struct Series {
  std::string label;
  std::vector<double> values;
};

/// A figure-like table: one column per series, one row per x value.
class SeriesTable {
 public:
  SeriesTable(std::string title, std::string x_label, std::vector<int> xs)
      : title_(std::move(title)), x_label_(std::move(x_label)), xs_(std::move(xs)) {}

  void add(Series series);

  /// Pretty fixed-width table to `os`.
  void print(std::ostream& os = std::cout) const;
  /// Machine-readable CSV to `os`.
  void print_csv(std::ostream& os) const;

  [[nodiscard]] const std::vector<Series>& series() const noexcept { return series_; }
  [[nodiscard]] const std::vector<int>& xs() const noexcept { return xs_; }

 private:
  std::string title_;
  std::string x_label_;
  std::vector<int> xs_;
  std::vector<Series> series_;
};

/// The paper's figure-axis sweep: threads per block 16, 32, 64, ..., 512.
[[nodiscard]] std::vector<int> paper_thread_sweep();

/// Qualitative check line: prints PASS/DEVIATE with an explanation.
void report_check(std::ostream& os, const std::string& claim, bool pass,
                  const std::string& detail);

/// min / argmin over a series (for "best configuration" reports).
struct Best {
  int x = 0;
  double value = 0.0;
};
[[nodiscard]] Best best_of(const std::vector<int>& xs, const std::vector<double>& values);

}  // namespace gm::bench

// streaming_replay — append-heavy replay: incremental monitors vs full recount.
//
// A MiningSession starts from a seeded prefix, registers M streaming monitors
// (random episode sets with thresholds placed so crossings happen mid-stream),
// then replays B append batches.  Two lanes are timed per batch:
//
//   incremental — session.append_events(): every monitor advances by exactly
//                 the batch (plus the session's digest/frequency upkeep);
//   full recount — count_all() over the entire stream so far for every
//                 monitor's episode set, the cost a non-resumable engine
//                 would pay to answer the same "what are the counts now?".
//
// After every batch the incremental counts are checked bit-for-bit against
// the recount, so the measured speedup is between two provably identical
// answers.  Alert latency is the wall clock from batch arrival to the alert
// surfacing out of append_events, reported as p50/p99/max.  An optional
// shard-fold lane re-assembles the whole stream from cold-scanned chunks
// delivered in a shuffled order (distrib::StreamAssembler) and cross-checks
// the final counts, reporting the fold's rescanned-symbol overhead.
//
//   streaming_replay [options]
//     --db <n>            seeded prefix size          (default 4000)
//     --alphabet <k>      alphabet size               (default 12)
//     --batches <b>       append batches              (default 30)
//     --batch-size <s>    events per batch            (default 200)
//     --monitors <m>      streaming monitors          (default 2)
//     --episodes <e>      episodes per monitor        (default 12)
//     --max-level <L>     episode level cap           (default 3)
//     --expiry <w>        expiry window, 0 = off      (default 7)
//     --semantics <s>     nonoverlap | contig         (default nonoverlap)
//     --engine <e>        flat | trie monitor engine  (default flat)
//     --shard-chunks <n>  out-of-order fold lane, 0 = off (default 8)
//     --seed <s>          replay seed                 (default 42)
//     --out <file>        artifact path               (default BENCH_streaming.json)
//     --min-speedup <x>   gate: incremental must beat full recount by >= x
//                         (0 = report only)
//
// Exit status: 0 on success; 1 when any batch's incremental counts differ
// from the recount, when the shard-fold lane disagrees, or when the
// --min-speedup gate fails.  CI runs this under the bench job and uploads
// BENCH_streaming.json.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_support/cli_args.hpp"
#include "bench_support/json.hpp"
#include "common/rng.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "distrib/stream_fold.hpp"
#include "service/session.hpp"
#include "service/streaming_monitor.hpp"

namespace {

using Clock = std::chrono::steady_clock;

struct Options {
  std::int64_t db_size = 4'000;
  int alphabet = 12;
  int batches = 30;
  std::int64_t batch_size = 200;
  int monitors = 2;
  int episodes = 12;
  int max_level = 3;
  std::int64_t expiry = 7;
  gm::core::Semantics semantics = gm::core::Semantics::kNonOverlappedSubsequence;
  gm::core::ScanEngine engine = gm::core::ScanEngine::kSingleScan;
  int shard_chunks = 8;
  std::uint64_t seed = 42;
  std::string out = "BENCH_streaming.json";
  double min_speedup = 0.0;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--db N] [--alphabet K] [--batches B] [--batch-size S]\n"
               "       [--monitors M] [--episodes E] [--max-level L] [--expiry W]\n"
               "       [--semantics nonoverlap|contig] [--engine flat|trie]\n"
               "       [--shard-chunks N] [--seed S] [--out FILE] [--min-speedup X]\n",
               argv0);
  return 2;
}

double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[index];
}

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gm;

  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) throw bench::UsageError(arg + " needs a value");
        return argv[++i];
      };
      if (arg == "--db") opt.db_size = bench::parse_int64(arg, next(), 1, 1'000'000'000);
      else if (arg == "--alphabet") opt.alphabet = bench::parse_int(arg, next(), 1, 255);
      else if (arg == "--batches") opt.batches = bench::parse_int(arg, next(), 1, 100'000);
      else if (arg == "--batch-size")
        opt.batch_size = bench::parse_int64(arg, next(), 1, 100'000'000);
      else if (arg == "--monitors") opt.monitors = bench::parse_int(arg, next(), 1, 64);
      else if (arg == "--episodes") opt.episodes = bench::parse_int(arg, next(), 1, 4096);
      else if (arg == "--max-level") opt.max_level = bench::parse_int(arg, next(), 1, 8);
      else if (arg == "--expiry") opt.expiry = bench::parse_int64(arg, next(), 0, INT64_MAX);
      else if (arg == "--semantics") {
        const std::string value = next();
        if (value == "contig") opt.semantics = core::Semantics::kContiguousRestart;
        else if (value == "nonoverlap")
          opt.semantics = core::Semantics::kNonOverlappedSubsequence;
        else return usage(argv[0]);
      } else if (arg == "--engine") {
        const std::string value = next();
        if (value == "trie") opt.engine = core::ScanEngine::kTrie;
        else if (value == "flat") opt.engine = core::ScanEngine::kSingleScan;
        else return usage(argv[0]);
      } else if (arg == "--shard-chunks")
        opt.shard_chunks = bench::parse_int(arg, next(), 0, 4096);
      else if (arg == "--seed")
        opt.seed = static_cast<std::uint64_t>(bench::parse_int64(arg, next(), 0, INT64_MAX));
      else if (arg == "--out") opt.out = next();
      else if (arg == "--min-speedup")
        opt.min_speedup = bench::parse_double(arg, next(), 0.0, 1e9);
      else if (arg == "--help" || arg == "-h") {
        (void)usage(argv[0]);
        return 0;
      }
      else return usage(argv[0]);
    }
  } catch (const gm::PreconditionError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return usage(argv[0]);
  }

  try {
    data::Dataset dataset{core::Alphabet(opt.alphabet), {}};
    dataset.events = data::uniform_database(dataset.alphabet, opt.db_size, opt.seed);
    std::vector<core::Symbol> full = dataset.events;  // the recount lane's stream

    // Monitor specs: random episode sets, thresholds placed above the prefix
    // counts so crossings happen mid-replay and the alert lane has work.
    Rng rng(opt.seed ^ 0x57123A11ULL);
    const std::int64_t total_append = static_cast<std::int64_t>(opt.batches) * opt.batch_size;
    std::vector<service::MonitorSpec> specs;
    for (int m = 0; m < opt.monitors; ++m) {
      service::MonitorSpec spec;
      spec.name = "monitor-" + std::to_string(m);
      for (int e = 0; e < opt.episodes; ++e) {
        const int level = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(opt.max_level)));
        std::vector<core::Symbol> symbols;
        for (int s = 0; s < level; ++s) {
          symbols.push_back(
              static_cast<core::Symbol>(rng.below(static_cast<std::uint64_t>(opt.alphabet))));
        }
        spec.episodes.emplace_back(std::move(symbols));
      }
      spec.semantics = opt.semantics;
      spec.expiry = {opt.expiry};
      spec.engine = opt.engine;
      const auto initial = core::count_all(spec.episodes, full, spec.semantics, spec.expiry);
      const std::int64_t peak = *std::max_element(initial.begin(), initial.end());
      // Halfway up the busiest episode's expected growth over the replay.
      spec.threshold =
          peak + std::max<std::int64_t>(1, peak * total_append / (2 * opt.db_size));
      specs.push_back(std::move(spec));
    }

    service::MiningSession session(
        std::move(dataset), service::SessionOptions{.backend = {.name = "serial"}});
    std::int64_t alerts_fired = 0;
    for (const service::MonitorSpec& spec : specs) {
      alerts_fired += static_cast<std::int64_t>(session.register_monitor(spec).size());
    }

    // Pre-generate every batch so RNG cost stays out of both timed lanes.
    std::vector<std::vector<core::Symbol>> batches;
    for (int b = 0; b < opt.batches; ++b) {
      batches.push_back(data::uniform_database(core::Alphabet(opt.alphabet), opt.batch_size, rng()));
    }

    std::vector<double> incremental_ms, recount_ms, alert_latency_ms;
    std::int64_t mismatches = 0;
    for (int b = 0; b < opt.batches; ++b) {
      const Clock::time_point inc_start = Clock::now();
      const service::MiningSession::AppendOutcome outcome = session.append_events(batches[b]);
      const double inc = ms_since(inc_start);
      incremental_ms.push_back(inc);
      // Detection latency: the alert surfaced `inc` ms after its batch arrived.
      for (std::size_t a = 0; a < outcome.alerts.size(); ++a) alert_latency_ms.push_back(inc);
      alerts_fired += static_cast<std::int64_t>(outcome.alerts.size());

      full.insert(full.end(), batches[b].begin(), batches[b].end());
      const Clock::time_point re_start = Clock::now();
      std::vector<std::vector<std::int64_t>> recounts;
      for (const service::MonitorSpec& spec : specs) {
        recounts.push_back(core::count_all(spec.episodes, full, spec.semantics, spec.expiry));
      }
      recount_ms.push_back(ms_since(re_start));

      for (std::size_t m = 0; m < specs.size(); ++m) {
        if (session.monitor_counts(specs[m].name) != recounts[m]) {
          ++mismatches;
          std::fprintf(stderr, "MISMATCH: batch %d monitor %s diverged from recount\n", b,
                       specs[m].name.c_str());
        }
      }
    }

    double incremental_total = 0.0, recount_total = 0.0;
    for (const double t : incremental_ms) incremental_total += t;
    for (const double t : recount_ms) recount_total += t;
    const double speedup = incremental_total > 0.0 ? recount_total / incremental_total : 0.0;

    // Out-of-order shard-fold lane: cold-scan uneven chunks tiling the whole
    // stream, deliver shuffled, and the assembled counts must equal both the
    // recount and the live session.
    std::int64_t fold_rescanned = -1;
    double fold_wall_ms = 0.0;
    bool fold_exact = true;
    if (opt.shard_chunks > 0) {
      const service::MonitorSpec& spec = specs.front();
      std::vector<std::pair<std::int64_t, std::int64_t>> extents;  // [begin, end)
      const auto total = static_cast<std::int64_t>(full.size());
      std::int64_t at = 0;
      for (int c = 0; c < opt.shard_chunks && at < total; ++c) {
        const std::int64_t even = (total - at) / (opt.shard_chunks - c);
        const std::int64_t size = c + 1 == opt.shard_chunks
                                      ? total - at
                                      : std::max<std::int64_t>(1, even / 2 + static_cast<std::int64_t>(
                                                                                rng.below(static_cast<std::uint64_t>(even) + 1)));
        extents.emplace_back(at, std::min(at + size, total));
        at = extents.back().second;
      }
      for (std::size_t i = extents.size() - 1; i > 0; --i) {
        std::swap(extents[i], extents[rng.below(i + 1)]);
      }
      const Clock::time_point fold_start = Clock::now();
      distrib::StreamAssembler assembler(spec.episodes, spec.semantics, spec.expiry);
      for (const auto& [begin, end] : extents) {
        assembler.deliver(distrib::cold_scan_chunk(
            spec.episodes, spec.semantics, spec.expiry,
            {full.begin() + begin, full.begin() + end}, begin));
      }
      fold_wall_ms = ms_since(fold_start);
      fold_rescanned = assembler.rescanned_symbols();
      fold_exact = assembler.high_water() == total &&
                   assembler.counts() == session.monitor_counts(spec.name);
      if (!fold_exact) {
        std::fprintf(stderr, "MISMATCH: shard-fold lane diverged from the live session\n");
      }
    }

    std::sort(incremental_ms.begin(), incremental_ms.end());
    std::sort(recount_ms.begin(), recount_ms.end());
    std::sort(alert_latency_ms.begin(), alert_latency_ms.end());

    std::printf("streaming_replay: %d batches x %lld events onto %lld, %d monitors x %d episodes\n",
                opt.batches, static_cast<long long>(opt.batch_size),
                static_cast<long long>(opt.db_size), opt.monitors, opt.episodes);
    std::printf("  incremental %.2f ms  full recount %.2f ms  speedup %.1fx\n", incremental_total,
                recount_total, speedup);
    std::printf("  alerts %lld  latency ms: p50 %.3f  p99 %.3f  max %.3f\n",
                static_cast<long long>(alerts_fired), percentile(alert_latency_ms, 0.50),
                percentile(alert_latency_ms, 0.99),
                alert_latency_ms.empty() ? 0.0 : alert_latency_ms.back());
    if (fold_rescanned >= 0) {
      std::printf("  shard fold: %d chunks shuffled, %.2f ms, rescanned %lld symbols, %s\n",
                  opt.shard_chunks, fold_wall_ms, static_cast<long long>(fold_rescanned),
                  fold_exact ? "exact" : "MISMATCH");
    }

    bench::JsonWriter json;
    json.begin_object();
    json.field("schema", "gm-bench-streaming/1");
    json.field("driver", "streaming_replay");
    json.key("workload").begin_object();
    json.field("db_size", opt.db_size)
        .field("alphabet", opt.alphabet)
        .field("batches", opt.batches)
        .field("batch_size", opt.batch_size)
        .field("monitors", opt.monitors)
        .field("episodes_per_monitor", opt.episodes)
        .field("max_level", opt.max_level)
        .field("expiry", opt.expiry)
        .field("semantics", std::string(core::to_string(opt.semantics)))
        .field("engine", opt.engine == core::ScanEngine::kTrie ? "trie" : "flat")
        .field("seed", static_cast<std::int64_t>(opt.seed));
    json.end_object();
    json.key("incremental_ms")
        .begin_object()
        .field("total", incremental_total)
        .field("p50", percentile(incremental_ms, 0.50))
        .field("p99", percentile(incremental_ms, 0.99))
        .end_object();
    json.key("full_recount_ms")
        .begin_object()
        .field("total", recount_total)
        .field("p50", percentile(recount_ms, 0.50))
        .field("p99", percentile(recount_ms, 0.99))
        .end_object();
    json.field("speedup", speedup);
    json.key("alerts")
        .begin_object()
        .field("fired", alerts_fired)
        .field("latency_p50_ms", percentile(alert_latency_ms, 0.50))
        .field("latency_p99_ms", percentile(alert_latency_ms, 0.99))
        .field("latency_max_ms", alert_latency_ms.empty() ? 0.0 : alert_latency_ms.back())
        .end_object();
    json.key("shard_fold")
        .begin_object()
        .field("chunks", opt.shard_chunks)
        .field("wall_ms", fold_wall_ms)
        .field("rescanned_symbols", fold_rescanned)
        .field("exact", fold_exact)
        .end_object();
    json.field("count_mismatches", mismatches);
    json.field("min_speedup_gate", opt.min_speedup);
    json.end_object();
    json.write_file(opt.out);
    std::printf("wrote %s\n", opt.out.c_str());

    if (mismatches > 0) {
      std::fprintf(stderr, "FAIL: %lld batches diverged from the full recount\n",
                   static_cast<long long>(mismatches));
      return 1;
    }
    if (!fold_exact) {
      std::fprintf(stderr, "FAIL: shard-fold lane diverged\n");
      return 1;
    }
    if (opt.min_speedup > 0.0 && speedup < opt.min_speedup) {
      std::fprintf(stderr, "FAIL: incremental speedup %.2fx < gate %.2fx\n", speedup,
                   opt.min_speedup);
      return 1;
    }
    return 0;
  } catch (const gm::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

#include "data/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace gm::data {

core::Sequence uniform_database(const core::Alphabet& alphabet, std::int64_t size,
                                std::uint64_t seed) {
  gm::expects(size >= 0, "database size must be non-negative");
  Rng rng(seed);
  core::Sequence out;
  out.reserve(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    const auto draw = rng.below(static_cast<std::uint64_t>(alphabet.size()));
    out.push_back(static_cast<core::Symbol>(draw));
  }
  return out;
}

core::Sequence paper_database(std::uint64_t seed) {
  return uniform_database(core::Alphabet::english_uppercase(), kPaperDatabaseSize, seed);
}

core::Sequence markov_database(const core::Alphabet& alphabet, std::int64_t size,
                               double self_transition, std::uint64_t seed) {
  gm::expects(size >= 0, "database size must be non-negative");
  gm::expects(self_transition >= 0.0 && self_transition < 1.0,
              "self transition probability must be in [0, 1)");
  Rng rng(seed);
  core::Sequence out;
  out.reserve(static_cast<std::size_t>(size));
  auto draw = [&]() {
    return static_cast<core::Symbol>(rng.below(static_cast<std::uint64_t>(alphabet.size())));
  };
  core::Symbol current = draw();
  for (std::int64_t i = 0; i < size; ++i) {
    if (!rng.chance(self_transition)) current = draw();
    out.push_back(current);
  }
  return out;
}

std::vector<double> zipf_frequencies(int alphabet_size, double exponent) {
  gm::expects(alphabet_size >= 1, "alphabet must be non-empty");
  gm::expects(exponent >= 0.0, "Zipf exponent must be non-negative");
  std::vector<double> freq(static_cast<std::size_t>(alphabet_size));
  double total = 0.0;
  for (int k = 0; k < alphabet_size; ++k) {
    freq[static_cast<std::size_t>(k)] = std::pow(static_cast<double>(k) + 1.0, -exponent);
    total += freq[static_cast<std::size_t>(k)];
  }
  for (double& f : freq) f /= total;
  return freq;
}

core::Sequence zipf_database(const core::Alphabet& alphabet, std::int64_t size,
                             double exponent, std::uint64_t seed) {
  gm::expects(size >= 0, "database size must be non-negative");
  const std::vector<double> freq = zipf_frequencies(alphabet.size(), exponent);
  std::vector<double> cumulative(freq.size());
  std::partial_sum(freq.begin(), freq.end(), cumulative.begin());
  cumulative.back() = 1.0;  // guard against rounding: the last bucket owns [c, 1)

  Rng rng(seed);
  core::Sequence out;
  out.reserve(static_cast<std::size_t>(size));
  for (std::int64_t i = 0; i < size; ++i) {
    const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), rng.unit());
    out.push_back(static_cast<core::Symbol>(it - cumulative.begin()));
  }
  return out;
}

SpikeTrain spike_train(const core::Alphabet& alphabet,
                       const std::vector<core::Episode>& planted,
                       const SpikeTrainConfig& config) {
  gm::expects(!planted.empty(), "need at least one planted episode");
  gm::expects(config.size > 0, "spike train must be non-empty");
  gm::expects(config.noise_rate >= 0.0 && config.noise_rate <= 1.0,
              "noise rate must be in [0, 1]");
  for (const auto& e : planted) {
    for (const core::Symbol s : e.symbols()) {
      gm::expects(alphabet.contains(s), "planted episode symbol outside alphabet");
    }
  }

  Rng rng(config.seed);
  SpikeTrain train;
  train.events.reserve(static_cast<std::size_t>(config.size));
  train.planted_copies.assign(planted.size(), 0);

  auto noise = [&]() {
    return static_cast<core::Symbol>(rng.below(static_cast<std::uint64_t>(alphabet.size())));
  };

  while (static_cast<std::int64_t>(train.events.size()) < config.size) {
    if (rng.chance(config.noise_rate)) {
      train.events.push_back(noise());
      continue;
    }
    // Emit one full cascade with jitter; abort cleanly at the size limit so
    // partially emitted cascades are never recorded as planted copies.
    const std::size_t which = rng.below(planted.size());
    const auto& episode = planted[which];
    bool complete = true;
    for (int i = 0; i < episode.level(); ++i) {
      if (static_cast<std::int64_t>(train.events.size()) >= config.size) {
        complete = false;
        break;
      }
      train.events.push_back(episode.at(i));
      if (i + 1 < episode.level()) {
        const auto jitter =
            static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(config.max_jitter) + 1));
        for (std::int64_t j = 0;
             j < jitter && static_cast<std::int64_t>(train.events.size()) < config.size; ++j) {
          train.events.push_back(noise());
        }
      }
    }
    if (complete) ++train.planted_copies[which];
  }
  return train;
}

}  // namespace gm::data

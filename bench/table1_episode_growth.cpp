// Table 1: potential number of episodes of length L from an alphabet of size
// N — analytic formula cross-checked against the candidate generator, plus
// the paper's evaluation sizes (26 / 650 / 15,600).
#include <iomanip>
#include <iostream>

#include "core/candidate_gen.hpp"

int main() {
  using gm::core::Alphabet;
  using gm::core::all_distinct_episodes;
  using gm::core::episode_space_size;

  std::cout << "Table 1: episodes of length L over an alphabet of N symbols (N!/(N-L)!)\n\n";
  std::cout << std::left << std::setw(6) << "N";
  for (int level = 1; level <= 5; ++level) {
    std::cout << std::right << std::setw(14) << ("L=" + std::to_string(level));
  }
  std::cout << "\n";
  for (const int n : {4, 8, 16, 26}) {
    std::cout << std::left << std::setw(6) << n;
    for (int level = 1; level <= 5; ++level) {
      std::cout << std::right << std::setw(14) << episode_space_size(n, level);
    }
    std::cout << "\n";
  }

  std::cout << "\nPaper evaluation sizes (N=26): ";
  for (int level = 1; level <= 3; ++level) {
    const auto formula = episode_space_size(26, level);
    const auto enumerated = all_distinct_episodes(Alphabet(26), level).size();
    const char* tag = formula == enumerated ? " (verified) " : " (MISMATCH!) ";
    std::cout << "L" << level << "=" << formula << tag;
  }
  std::cout << "\n";
  return 0;
}

// Device-spec and occupancy-calculator tests, pinned to the paper's Table 2
// values and the occupancy arithmetic its characterizations rely on.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/device_spec.hpp"
#include "sim/occupancy.hpp"

namespace gpusim {
namespace {

TEST(DeviceSpec, PaperTable2Values) {
  const DeviceSpec gts = geforce_8800_gts_512();
  EXPECT_EQ(gts.multiprocessors, 16);
  EXPECT_EQ(gts.total_cores(), 128);
  EXPECT_DOUBLE_EQ(gts.core_clock_mhz, 1625.0);
  EXPECT_DOUBLE_EQ(gts.mem_bandwidth_gbps, 57.6);
  EXPECT_EQ(gts.registers_per_sm, 8192);
  EXPECT_EQ(gts.max_threads_per_sm, 768);
  EXPECT_EQ(gts.max_warps_per_sm, 24);
  EXPECT_EQ(gts.compute_capability, (ComputeCapability{1, 1}));

  const DeviceSpec gx2 = geforce_9800_gx2();
  EXPECT_DOUBLE_EQ(gx2.core_clock_mhz, 1500.0);
  EXPECT_DOUBLE_EQ(gx2.mem_bandwidth_gbps, 64.0);

  const DeviceSpec gtx = geforce_gtx_280();
  EXPECT_EQ(gtx.multiprocessors, 30);
  EXPECT_EQ(gtx.total_cores(), 240);
  EXPECT_DOUBLE_EQ(gtx.mem_bandwidth_gbps, 141.7);
  EXPECT_EQ(gtx.registers_per_sm, 16384);
  EXPECT_EQ(gtx.max_threads_per_sm, 1024);
  EXPECT_EQ(gtx.max_warps_per_sm, 32);
  EXPECT_TRUE(gtx.compute_capability.at_least({1, 3}));
}

TEST(DeviceSpec, FeatureGates) {
  EXPECT_TRUE(geforce_8800_gts_512().supports_atomics());
  EXPECT_FALSE(geforce_8800_gts_512().supports_double_precision());
  EXPECT_TRUE(geforce_gtx_280().supports_double_precision());
}

TEST(DeviceSpec, LookupByName) {
  EXPECT_EQ(device_by_name("gtx280").multiprocessors, 30);
  EXPECT_EQ(device_by_name("8800").multiprocessors, 16);
  EXPECT_DOUBLE_EQ(device_by_name("GX2").core_clock_mhz, 1500.0);
  EXPECT_THROW((void)device_by_name("voodoo2"), gm::PreconditionError);
}

TEST(DeviceSpec, BandwidthInBytesPerCycle) {
  const DeviceSpec gtx = geforce_gtx_280();
  EXPECT_NEAR(gtx.bytes_per_cycle(), 141.7e9 / 1.296e9, 1e-9);
}

LaunchConfig cfg(int blocks, int tpb, int shared = 0, int regs = 10) {
  LaunchConfig c;
  c.grid = Dim3(blocks);
  c.block = Dim3(tpb);
  c.shared_mem_per_block = shared;
  c.registers_per_thread = regs;
  return c;
}

TEST(Occupancy, ThreadLimitBinds512On768Device) {
  // Paper section 4.2.1: two 512-thread blocks cannot be co-resident on a
  // 768-active-thread SM.
  const auto occ = compute_occupancy(geforce_8800_gts_512(), cfg(100, 512));
  EXPECT_EQ(occ.active_blocks_per_sm, 1);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kThreadsPerSm);
  EXPECT_EQ(occ.active_threads_per_sm, 512);
}

TEST(Occupancy, GTX280Hosts2x512) {
  const auto occ = compute_occupancy(geforce_gtx_280(), cfg(100, 512));
  EXPECT_EQ(occ.active_blocks_per_sm, 2);
  EXPECT_EQ(occ.active_threads_per_sm, 1024);
}

TEST(Occupancy, BlockLimitBindsSmallBlocks) {
  const auto occ = compute_occupancy(geforce_gtx_280(), cfg(1000, 32));
  EXPECT_EQ(occ.active_blocks_per_sm, 8);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kBlocksPerSm);
}

TEST(Occupancy, PaperC6Limit240ConcurrentEpisodes) {
  // C6: block-level algorithms are limited to 8 blocks x 30 SMs = 240
  // episodes in flight on the GTX 280.
  const auto occ = compute_occupancy(geforce_gtx_280(), cfg(15'600, 32));
  EXPECT_EQ(occ.concurrent_blocks_device, 240);
  EXPECT_EQ(occ.waves, 65);
}

TEST(Occupancy, SharedMemoryLimitsResidency) {
  // A 16 KB block owns the whole SM (the buffered kernels' regime, C2).
  const auto occ = compute_occupancy(geforce_8800_gts_512(), cfg(100, 64, 16 * 1024));
  EXPECT_EQ(occ.active_blocks_per_sm, 1);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kSharedMemory);
}

TEST(Occupancy, RegisterLimit) {
  // 256 threads x 32 registers = 8192: exactly one block on G92.
  const auto occ = compute_occupancy(geforce_8800_gts_512(), cfg(100, 256, 0, 32));
  EXPECT_EQ(occ.active_blocks_per_sm, 1);
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kRegisters);
}

TEST(Occupancy, WarpOccupancyMetric) {
  // 8 blocks x 2 warps = 16 of 32 warps on GTX 280.
  const auto occ = compute_occupancy(geforce_gtx_280(), cfg(1000, 64));
  EXPECT_EQ(occ.active_warps_per_sm, 16);
  EXPECT_DOUBLE_EQ(occ.warp_occupancy, 0.5);
}

TEST(Occupancy, GridSmallerThanDevice) {
  const auto occ = compute_occupancy(geforce_gtx_280(), cfg(26, 64));
  EXPECT_EQ(occ.limiter, OccupancyLimiter::kGridTooSmall);
  EXPECT_EQ(occ.busy_sms, 26);
  EXPECT_EQ(occ.waves, 1);
}

TEST(Occupancy, RejectsImpossibleLaunches) {
  EXPECT_THROW((void)compute_occupancy(geforce_8800_gts_512(), cfg(1, 1024)), gm::DeviceError);
  EXPECT_THROW((void)compute_occupancy(geforce_8800_gts_512(), cfg(1, 64, 17 * 1024)),
               gm::DeviceError);
  EXPECT_THROW((void)compute_occupancy(geforce_8800_gts_512(), cfg(1, 512, 0, 200)),
               gm::DeviceError);
}

TEST(Occupancy, WarpsForThreads) {
  const DeviceSpec d = geforce_gtx_280();
  EXPECT_EQ(warps_for_threads(d, 1), 1);
  EXPECT_EQ(warps_for_threads(d, 32), 1);
  EXPECT_EQ(warps_for_threads(d, 33), 2);
  EXPECT_EQ(warps_for_threads(d, 512), 16);
}

}  // namespace
}  // namespace gpusim

// Episodes: ordered sequences of symbols to be discovered in a database.
//
// An episode A = <a1, a2, ..., aL> appears in database D when its symbols
// occur at increasing indices (paper section 3.1).  The episode *level* is
// its length L.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/alphabet.hpp"

namespace gm::core {

class Episode {
 public:
  Episode() = default;
  explicit Episode(std::vector<Symbol> symbols);

  /// Convenience: build from text ("AB" -> <A,B>) under the given alphabet.
  [[nodiscard]] static Episode from_text(const Alphabet& alphabet, std::string_view text);

  [[nodiscard]] int level() const noexcept { return static_cast<int>(symbols_.size()); }
  [[nodiscard]] bool empty() const noexcept { return symbols_.empty(); }
  [[nodiscard]] Symbol at(int i) const;
  [[nodiscard]] std::span<const Symbol> symbols() const noexcept { return symbols_; }

  /// True when no symbol repeats (the paper's episode space, Table 1).
  [[nodiscard]] bool has_distinct_symbols() const;

  /// The episode with element `drop` removed (for Apriori subset pruning).
  [[nodiscard]] Episode without(int drop) const;

  [[nodiscard]] std::string to_string(const Alphabet& alphabet) const;

  friend bool operator==(const Episode&, const Episode&) = default;
  friend auto operator<=>(const Episode& a, const Episode& b) {
    return a.symbols_ <=> b.symbols_;
  }

 private:
  std::vector<Symbol> symbols_;
};

struct EpisodeHash {
  [[nodiscard]] std::size_t operator()(const Episode& e) const noexcept {
    std::size_t h = 0x9e3779b97f4a7c15ULL;
    for (Symbol s : e.symbols()) h = (h ^ s) * 0x100000001b3ULL;
    return h;
  }
};

/// Flat, device-friendly layout of an episode list: all symbols concatenated,
/// constant stride `level`, padded episodes marked with an invalid symbol.
/// This is what the GPU kernels consume.
struct PackedEpisodes {
  std::vector<Symbol> symbols;  ///< episode_count * level entries
  int level = 0;
  std::int64_t episode_count = 0;  ///< real episodes (before padding)
  std::int64_t padded_count = 0;   ///< episodes including sentinel padding

  /// Sentinel symbol used for padded episode slots (never matches: the
  /// database is validated to contain only symbols < sentinel).
  static constexpr Symbol kSentinel = 0xFF;

  [[nodiscard]] std::span<const Symbol> episode(std::int64_t index) const;
};

/// Pack `episodes` (all of one level) and pad the list to `padded_count`
/// entries (Mars-style MapReduce record padding so every thread owns a slot).
[[nodiscard]] PackedEpisodes pack_episodes(std::span<const Episode> episodes,
                                           std::int64_t padded_count = 0);

}  // namespace gm::core

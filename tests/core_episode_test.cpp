// Unit tests for episodes, alphabets and the packed device layout.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "core/alphabet.hpp"
#include "core/episode.hpp"

namespace gm::core {
namespace {

const Alphabet kAbc = Alphabet::english_uppercase();

TEST(Alphabet, ParseAndFormatRoundTrip) {
  const Sequence seq = kAbc.parse("HELLO");
  EXPECT_EQ(seq.size(), 5u);
  EXPECT_EQ(seq[0], 'H' - 'A');
  EXPECT_EQ(kAbc.format(seq), "HELLO");
}

TEST(Alphabet, RejectsOutOfRangeCharacters) {
  EXPECT_THROW((void)kAbc.parse("abc"), gm::PreconditionError);
  EXPECT_THROW((void)Alphabet(5).parse("F"), gm::PreconditionError);
}

TEST(Alphabet, SymbolNames) {
  EXPECT_EQ(kAbc.symbol_name(0), "A");
  EXPECT_EQ(kAbc.symbol_name(25), "Z");
  EXPECT_EQ(Alphabet(100).symbol_name(42), "s42");
}

TEST(Alphabet, SizeBounds) {
  EXPECT_THROW(Alphabet(0), gm::PreconditionError);
  EXPECT_THROW(Alphabet(256), gm::PreconditionError);
  EXPECT_NO_THROW(Alphabet(255));
}

TEST(Episode, BasicProperties) {
  const Episode e = Episode::from_text(kAbc, "ACB");
  EXPECT_EQ(e.level(), 3);
  EXPECT_EQ(e.at(0), 0);
  EXPECT_EQ(e.at(1), 2);
  EXPECT_EQ(e.at(2), 1);
  EXPECT_EQ(e.to_string(kAbc), "<A,C,B>");
  EXPECT_TRUE(e.has_distinct_symbols());
  EXPECT_FALSE(Episode::from_text(kAbc, "ABA").has_distinct_symbols());
}

TEST(Episode, WithoutDropsOneElement) {
  const Episode e = Episode::from_text(kAbc, "ABC");
  EXPECT_EQ(e.without(0), Episode::from_text(kAbc, "BC"));
  EXPECT_EQ(e.without(1), Episode::from_text(kAbc, "AC"));
  EXPECT_EQ(e.without(2), Episode::from_text(kAbc, "AB"));
  EXPECT_THROW((void)Episode::from_text(kAbc, "A").without(0), gm::PreconditionError);
}

TEST(Episode, ComparisonAndHash) {
  const Episode a = Episode::from_text(kAbc, "AB");
  const Episode b = Episode::from_text(kAbc, "AB");
  const Episode c = Episode::from_text(kAbc, "BA");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(EpisodeHash{}(a), EpisodeHash{}(b));
  EXPECT_LT(a, c);  // temporal order matters
}

TEST(Episode, EmptyEpisodeRejected) {
  EXPECT_THROW(Episode(std::vector<Symbol>{}), gm::PreconditionError);
}

TEST(PackedEpisodes, LayoutAndPadding) {
  const std::vector<Episode> eps = {Episode::from_text(kAbc, "AB"),
                                    Episode::from_text(kAbc, "CD")};
  const PackedEpisodes packed = pack_episodes(eps, 5);
  EXPECT_EQ(packed.level, 2);
  EXPECT_EQ(packed.episode_count, 2);
  EXPECT_EQ(packed.padded_count, 5);
  EXPECT_EQ(packed.symbols.size(), 10u);
  EXPECT_EQ(packed.episode(0)[0], 0);
  EXPECT_EQ(packed.episode(1)[1], 3);
  EXPECT_EQ(packed.episode(4)[0], PackedEpisodes::kSentinel);
  EXPECT_EQ(packed.episode(4)[1], PackedEpisodes::kSentinel);
}

TEST(PackedEpisodes, PaddingNeverBelowCount) {
  const std::vector<Episode> eps = {Episode::from_text(kAbc, "A"),
                                    Episode::from_text(kAbc, "B")};
  const PackedEpisodes packed = pack_episodes(eps, 1);
  EXPECT_EQ(packed.padded_count, 2);
}

TEST(PackedEpisodes, MixedLevelsRejected) {
  const std::vector<Episode> eps = {Episode::from_text(kAbc, "A"),
                                    Episode::from_text(kAbc, "AB")};
  EXPECT_THROW((void)pack_episodes(eps), gm::PreconditionError);
}

}  // namespace
}  // namespace gm::core

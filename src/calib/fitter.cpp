#include "calib/fitter.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/cpu_backend.hpp"
#include "distrib/scale_model.hpp"
#include "kernels/workload_model.hpp"

namespace gm::calib {
namespace {

/// Minimize `f` over [lo, hi]: coarse grid to locate the basin (the cost
/// model's max() structure can make the slice non-unimodal), then
/// golden-section refinement inside the bracketing cell.
template <typename F>
double minimize_1d(F&& f, double lo, double hi) {
  constexpr int kGridPoints = 13;
  constexpr int kGoldenIters = 24;
  constexpr double kInvPhi = 0.6180339887498949;

  double best_x = lo;
  double best_f = f(lo);
  for (int i = 1; i < kGridPoints; ++i) {
    const double x = lo + (hi - lo) * i / (kGridPoints - 1);
    const double fx = f(x);
    if (fx < best_f) {
      best_f = fx;
      best_x = x;
    }
  }
  const double cell = (hi - lo) / (kGridPoints - 1);
  double a = std::max(lo, best_x - cell);
  double b = std::min(hi, best_x + cell);

  double x1 = b - kInvPhi * (b - a);
  double x2 = a + kInvPhi * (b - a);
  double f1 = f(x1);
  double f2 = f(x2);
  for (int i = 0; i < kGoldenIters; ++i) {
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kInvPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kInvPhi * (b - a);
      f2 = f(x2);
    }
  }
  const double mid = 0.5 * (a + b);
  const double fmid = f(mid);
  return fmid < best_f ? mid : best_x;
}

}  // namespace

double predict_sample_ms(const CalibrationProfile& profile, const FitSample& sample) {
  using planner::BackendKind;
  const planner::Workload& w = sample.workload;
  switch (sample.config.kind) {
    case BackendKind::kCpuSerial: return planner::predict_cpu_serial_ms(w, profile.cpu);
    case BackendKind::kCpuParallel:
      return planner::predict_cpu_parallel_ms(w, sample.config.threads, profile.cpu);
    case BackendKind::kCpuSharded:
      return planner::predict_cpu_sharded_ms(w, sample.config.threads, profile.cpu);
    case BackendKind::kCpuSingleScan:
      return planner::predict_cpu_single_scan_ms(w, profile.cpu);
    case BackendKind::kCpuTrieScan: return planner::predict_cpu_trie_ms(w, profile.cpu);
    case BackendKind::kDistrib: {
      if (sample.config.distrib_gpu) {
        const gpusim::CostModel model(sample.cost_params);
        return distrib::predict_scaled_mining(
                   sample.device, sample.config.threads,
                   planner::gpu_workload_spec(w, sample.config.algorithm,
                                              sample.config.threads_per_block),
                   distrib::ShardAxis::kDatabase, model, profile.kernel)
            .total_ms;
      }
      return planner::predict_cpu_distrib_ms(w, sample.config.threads, profile.cpu);
    }
    case BackendKind::kGpuSim: {
      const gpusim::CostModel model(sample.cost_params);
      return kernels::predict_mining_time(
                 sample.device,
                 planner::gpu_workload_spec(w, sample.config.algorithm,
                                            sample.config.threads_per_block,
                                            sample.config.trie_buckets),
                 model, profile.kernel)
          .total_ms;
    }
  }
  gm::raise_precondition("unknown candidate kind in calibration sample");
}

double fit_loss(const CalibrationProfile& profile, std::span<const FitSample> samples,
                double floor_ms) {
  double loss = 0.0;
  for (const FitSample& sample : samples) {
    const double predicted = predict_sample_ms(profile, sample);
    const double r =
        std::log((predicted + floor_ms) / (sample.measured_ms + floor_ms));
    loss += sample.weight * r * r;
  }
  return loss;
}

FitReport fit_profile(CalibrationProfile& profile, std::span<const FitSample> samples,
                      const FitOptions& options) {
  gm::expects(!samples.empty(), "calibration fit needs at least one sample");
  gm::expects(options.max_sweeps >= 1, "calibration fit needs at least one sweep");
  for (const FitSample& sample : samples) {
    gm::expects(sample.measured_ms >= 0.0, "calibration samples need non-negative times");
    gm::expects(sample.weight > 0.0, "calibration samples need positive weights");
  }

  // Search bounds come from the *shipped* values, not the current ones, so
  // restarting a fit from a previous fit cannot walk the bounds outward.
  const CalibrationProfile shipped;

  std::vector<double> entry_values;
  entry_values.reserve(calibration_params().size());
  for (const ParamRef& param : calibration_params()) {
    entry_values.push_back(get_param(profile, param.name));
  }

  // Per-sample prediction cache.  Paper-scale GPU predictions cost real
  // time, and most parameters touch only a few samples (bucket terms never
  // move a dense-kernel sample), so each 1-D search recomputes only the
  // samples the parameter actually affects and keeps the rest's loss
  // contribution as a precomputed base.
  const auto term = [&](double predicted, const FitSample& sample) {
    const double r =
        std::log((predicted + options.floor_ms) / (sample.measured_ms + options.floor_ms));
    return sample.weight * r * r;
  };
  std::vector<double> pred(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    pred[i] = predict_sample_ms(profile, samples[i]);
  }
  const auto total_loss = [&] {
    double loss = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) loss += term(pred[i], samples[i]);
    return loss;
  };

  FitReport report;
  report.initial_loss = total_loss();
  double loss = report.initial_loss;

  std::vector<std::size_t> affected;
  std::vector<double> scratch;
  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    const double sweep_start_loss = loss;
    ++report.sweeps;
    for (const ParamRef& param : calibration_params()) {
      double& value = param.ref(profile);
      const double before = value;
      const double hi = get_param(shipped, param.name) * options.max_scale;

      // Which samples does this parameter move?  Probe both ends of the
      // search interval; a sample inert at 0, hi and the incumbent value
      // stays inert everywhere (every charge enters the models
      // monotonically).
      affected.clear();
      for (std::size_t i = 0; i < samples.size(); ++i) {
        value = 0.0;
        const double at_zero = predict_sample_ms(profile, samples[i]);
        value = hi;
        const double at_hi = predict_sample_ms(profile, samples[i]);
        value = before;
        if (at_zero != at_hi || at_zero != pred[i]) affected.push_back(i);
      }
      if (affected.empty()) continue;

      double base = loss;
      for (const std::size_t i : affected) base -= term(pred[i], samples[i]);

      scratch.resize(affected.size());
      const auto slice_loss = [&](double x) {
        value = x;
        double partial = base;
        for (std::size_t j = 0; j < affected.size(); ++j) {
          scratch[j] = predict_sample_ms(profile, samples[affected[j]]);
          partial += term(scratch[j], samples[affected[j]]);
        }
        return partial;
      };

      const double best = minimize_1d(slice_loss, 0.0, hi);
      const double candidate_loss = slice_loss(best);  // refreshes scratch
      if (candidate_loss <= loss) {
        value = best;
        loss = candidate_loss;
        for (std::size_t j = 0; j < affected.size(); ++j) pred[affected[j]] = scratch[j];
      } else {
        value = before;  // golden section landed worse than the incumbent
      }
    }
    if (sweep_start_loss - loss <= options.rel_tolerance * std::max(sweep_start_loss, 1e-12)) {
      break;
    }
  }

  report.final_loss = loss;
  for (std::size_t i = 0; i < calibration_params().size(); ++i) {
    const ParamRef& param = calibration_params()[i];
    const double fitted = get_param(profile, param.name);
    const double denom = std::max(std::abs(entry_values[i]), 1e-12);
    if (std::abs(fitted - entry_values[i]) / denom > 1e-3) {
      report.adjusted.emplace_back(param.name);
    }
  }
  profile.source = "fitted";
  profile.sample_count = static_cast<int>(samples.size());
  return report;
}

}  // namespace gm::calib

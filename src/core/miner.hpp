// Frequent episode mining driver — the paper's Algorithm 1.
//
// Level by level: generate candidate episodes, count them with the supplied
// backend (the expensive, parallelizable step), eliminate infrequent ones,
// and expand the survivors into the next level's candidates until no
// candidate survives or `max_level` is reached.
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidate_gen.hpp"
#include "core/counting.hpp"

namespace gm::core {

struct MinerConfig {
  /// Support threshold alpha: an episode is frequent when count/n > alpha.
  double support_threshold = 0.0;
  /// Stop after this level (0 = run until the candidate set is empty).
  /// The paper's future work (section 6) discusses L >> 3; the default keeps
  /// runs bounded the same way the paper's evaluation does.
  int max_level = 3;
  Semantics semantics = Semantics::kNonOverlappedSubsequence;
  ExpiryPolicy expiry = {};
  /// Apply Apriori sub-episode pruning during candidate generation.
  bool apriori_prune = true;
};

struct FrequentEpisode {
  Episode episode;
  std::int64_t count = 0;
  double support = 0.0;
};

struct LevelReport {
  int level = 0;
  std::int64_t candidates = 0;
  std::int64_t frequent = 0;
  double count_host_ms = 0.0;
  double simulated_kernel_ms = 0.0;
};

struct MiningResult {
  std::vector<FrequentEpisode> frequent;  ///< all levels, discovery order
  std::vector<LevelReport> levels;

  [[nodiscard]] std::int64_t total_frequent() const noexcept {
    return static_cast<std::int64_t>(frequent.size());
  }
};

/// Run Algorithm 1 over `database` using `backend` for the counting step.
[[nodiscard]] MiningResult mine_frequent_episodes(std::span<const Symbol> database,
                                                  const Alphabet& alphabet,
                                                  CountingBackend& backend,
                                                  const MinerConfig& config);

}  // namespace gm::core

#include "kernels/multi_gpu.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gm::kernels {

MultiGpuPrediction predict_multi_gpu(const gpusim::DeviceSpec& device, int dies,
                                     const WorkloadSpec& spec,
                                     const gpusim::CostModel& model) {
  gm::expects(dies >= 1, "need at least one die");
  gm::expects(spec.episode_count >= 1, "need at least one episode");

  MultiGpuPrediction out;
  const std::int64_t base = spec.episode_count / dies;
  const std::int64_t extra = spec.episode_count % dies;
  for (int d = 0; d < dies; ++d) {
    const std::int64_t share = base + (d < extra ? 1 : 0);
    out.episodes_per_die.push_back(share);
    if (share == 0) {
      out.per_die_ms.push_back(0.0);
      continue;
    }
    WorkloadSpec die_spec = spec;
    die_spec.episode_count = share;
    out.per_die_ms.push_back(predict_mining_time(device, die_spec, model).total_ms);
  }
  out.total_ms = *std::max_element(out.per_die_ms.begin(), out.per_die_ms.end());
  return out;
}

}  // namespace gm::kernels

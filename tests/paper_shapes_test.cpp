// Figure-shape regression tests: the qualitative properties of every paper
// figure (orderings, trends, crossovers, plateaus) asserted against the
// analytic model, so any cost-model change that would break a reproduced
// shape fails CI rather than silently corrupting EXPERIMENTS.md.
#include <gtest/gtest.h>

#include <algorithm>

#include "bench_support/paper_setup.hpp"
#include "bench_support/report.hpp"
#include "data/generators.hpp"
#include "kernels/workload_model.hpp"

namespace gm::bench {
namespace {

using kernels::Algorithm;

std::vector<double> sweep_series(const gpusim::DeviceSpec& device, Algorithm algorithm,
                                 int level) {
  std::vector<double> values;
  for (const int tpb : paper_thread_sweep()) {
    values.push_back(paper_time_ms(device, algorithm, level, tpb));
  }
  return values;
}

double spread(const std::vector<double>& v) {
  const auto [lo, hi] = std::minmax_element(v.begin(), v.end());
  return *hi / *lo;
}

// ---------------------------------------------------------------------------
// Figure 6 — level impact on the GTX 280.
// ---------------------------------------------------------------------------

TEST(Fig6, ThreadLevelRatiosStaySmall) {
  // 6(a)/6(b): 600x the episodes costs single-digit time factors.  The
  // paper's panels run to ~2.4 (Algo1) and ~11 (Algo2).
  const auto gtx = gpusim::geforce_gtx_280();
  for (const Algorithm a : {Algorithm::kThreadTexture, Algorithm::kThreadBuffered}) {
    const double bound = a == Algorithm::kThreadTexture ? 4.0 : 12.0;
    const auto l1 = sweep_series(gtx, a, 1);
    const auto l3 = sweep_series(gtx, a, 3);
    for (std::size_t i = 4; i < l1.size(); ++i) {  // past the tiny-tpb regime
      EXPECT_LT(l3[i] / l1[i], bound) << to_string(a) << " point " << i;
    }
  }
}

TEST(Fig6, Algo2RelativeRatioFallsWithThreads) {
  // 6(b): the L3/L1 ratio decreases monotonically in trend (first vs last).
  const auto gtx = gpusim::geforce_gtx_280();
  const auto l1 = sweep_series(gtx, Algorithm::kThreadBuffered, 1);
  const auto l3 = sweep_series(gtx, Algorithm::kThreadBuffered, 3);
  EXPECT_GT(l3.front() / l1.front(), 4.0 * (l3.back() / l1.back()));
}

TEST(Fig6, BlockLevelRatiosScaleWithEpisodeCount) {
  // 6(c)/6(d): block-level pays per episode; L3/L1 lands in the hundreds.
  const auto gtx = gpusim::geforce_gtx_280();
  for (const Algorithm a : {Algorithm::kBlockTexture, Algorithm::kBlockBuffered}) {
    const double r = paper_time_ms(gtx, a, 3, 256) / paper_time_ms(gtx, a, 1, 256);
    EXPECT_GT(r, 100.0) << to_string(a);
    EXPECT_LT(r, 5000.0) << to_string(a);
  }
}

// ---------------------------------------------------------------------------
// Figure 7 — algorithm impact on the GTX 280.
// ---------------------------------------------------------------------------

TEST(Fig7a, Level1BlockLevelWinsByOrdersOfMagnitude) {
  const auto gtx = gpusim::geforce_gtx_280();
  const auto a1 = sweep_series(gtx, Algorithm::kThreadTexture, 1);
  const auto a2 = sweep_series(gtx, Algorithm::kThreadBuffered, 1);
  const double thread_best = std::min(*std::min_element(a1.begin(), a1.end()),
                                      *std::min_element(a2.begin(), a2.end()));
  const auto a4 = sweep_series(gtx, Algorithm::kBlockBuffered, 1);
  const double a4_best = *std::min_element(a4.begin(), a4.end());
  EXPECT_GT(thread_best / a4_best, 10.0);
  EXPECT_LT(a4_best, 1.5) << "paper C4: Algorithm 4 at L1 is ~sub-millisecond";
}

TEST(Fig7b, Level2CrossoverAlgo4UndercutsAlgo3AtHighThreads) {
  const auto gtx = gpusim::geforce_gtx_280();
  const auto a3 = sweep_series(gtx, Algorithm::kBlockTexture, 2);
  const auto a4 = sweep_series(gtx, Algorithm::kBlockBuffered, 2);
  // Algo4 is worse at the small-tpb end and better somewhere past it.
  EXPECT_GT(a4.front(), a3.front());
  bool crossover = false;
  for (std::size_t i = 0; i < a3.size(); ++i) crossover |= a4[i] < a3[i];
  EXPECT_TRUE(crossover);
}

TEST(Fig7c, Level3ThreadLevelBeatsBlockLevelEverywhere) {
  const auto gtx = gpusim::geforce_gtx_280();
  const auto a2 = sweep_series(gtx, Algorithm::kThreadBuffered, 3);
  const auto a3 = sweep_series(gtx, Algorithm::kBlockTexture, 3);
  const auto a4 = sweep_series(gtx, Algorithm::kBlockBuffered, 3);
  for (std::size_t i = 0; i < a2.size(); ++i) {
    EXPECT_LT(a2[i], a3[i]) << "point " << i;
    EXPECT_LT(a2[i], a4[i]) << "point " << i;
  }
}

// ---------------------------------------------------------------------------
// Figure 8 — card impact.
// ---------------------------------------------------------------------------

TEST(Fig8a, ClockOrderingHoldsAtEveryThreadCount) {
  const auto gts = sweep_series(gpusim::geforce_8800_gts_512(), Algorithm::kThreadTexture, 2);
  const auto gx2 = sweep_series(gpusim::geforce_9800_gx2(), Algorithm::kThreadTexture, 2);
  const auto gtx = sweep_series(gpusim::geforce_gtx_280(), Algorithm::kThreadTexture, 2);
  for (std::size_t i = 0; i < gts.size(); ++i) {
    EXPECT_LT(gts[i], gx2[i]) << "point " << i;
    EXPECT_LT(gx2[i], gtx[i]) << "point " << i;
  }
}

TEST(Fig8a, ThreadLevelIsFlatThroughMidRange) {
  // The paper's L2 bands are flat; ours must vary < 10% from 16..256 tpb.
  const auto gts = sweep_series(gpusim::geforce_8800_gts_512(), Algorithm::kThreadTexture, 2);
  const std::vector<double> mid(gts.begin(), gts.begin() + 9);  // 16..256
  EXPECT_LT(spread(mid), 1.10);
}

TEST(Fig8b, BandwidthOrderingHoldsOnThePlateau) {
  // Past the latency-bound start, GTX280 < GX2 <= 8800 (141.7 / 64 / 57.6 GB/s).
  const auto gts = sweep_series(gpusim::geforce_8800_gts_512(), Algorithm::kBlockTexture, 1);
  const auto gx2 = sweep_series(gpusim::geforce_9800_gx2(), Algorithm::kBlockTexture, 1);
  const auto gtx = sweep_series(gpusim::geforce_gtx_280(), Algorithm::kBlockTexture, 1);
  for (std::size_t i = 4; i < gts.size(); ++i) {  // plateau region
    EXPECT_LT(gtx[i], gx2[i]) << "point " << i;
    EXPECT_LE(gx2[i], gts[i] * 1.02) << "point " << i;
  }
}

TEST(Fig8b, LatencyBoundStartFallsToThePlateau) {
  // All cards start high at 16tpb and drop by >25% into the plateau.
  for (const auto& card : gpusim::paper_testbed()) {
    const auto series = sweep_series(card, Algorithm::kBlockTexture, 1);
    EXPECT_GT(series.front(), 1.25 * series[4]) << card.name;
  }
}

// ---------------------------------------------------------------------------
// Figure 9 — appendix-wide invariants.
// ---------------------------------------------------------------------------

TEST(Fig9, EveryPanelIsFiniteAndPositive) {
  for (const auto& card : gpusim::paper_testbed()) {
    for (const Algorithm a : kernels::all_algorithms()) {
      for (int level = 1; level <= 3; ++level) {
        for (const double v : sweep_series(card, a, level)) {
          ASSERT_GT(v, 0.0);
          ASSERT_LT(v, 60'000.0) << "no panel exceeds a minute";
        }
      }
    }
  }
}

TEST(Fig9i, Algo3Level3IsBandwidthBoundAndTrafficDominated) {
  // Traffic is threads-independent (one line fetch per symbol per lane),
  // so the curve is flat within 2x while the cards split by bandwidth.
  const auto gts = sweep_series(gpusim::geforce_8800_gts_512(), Algorithm::kBlockTexture, 3);
  const auto gtx = sweep_series(gpusim::geforce_gtx_280(), Algorithm::kBlockTexture, 3);
  EXPECT_LT(spread(gts), 2.0);
  for (std::size_t i = 0; i < gts.size(); ++i) EXPECT_GT(gts[i], 1.5 * gtx[i]);
}

TEST(Fig9l, Algo4Level3RisesWithThreads) {
  const auto gtx = sweep_series(gpusim::geforce_gtx_280(), Algorithm::kBlockBuffered, 3);
  EXPECT_GT(gtx.back(), gtx[2]);  // 512tpb slower than 64tpb
}

// ---------------------------------------------------------------------------
// Conclusion-paragraph claims.
// ---------------------------------------------------------------------------

TEST(Conclusions, BestAlgorithmFlipsWithProblemSize) {
  // "a MapReduce-based implementation must dynamically adapt the type and
  // level of parallelism": the winning algorithm differs between L1 and L3.
  // Scoped to the paper's four formulations like the sibling conclusion
  // tests — Algorithm 5 is outside the paper's claim.
  const auto gtx = gpusim::geforce_gtx_280();
  auto winner = [&](int level) {
    Algorithm best = Algorithm::kThreadTexture;
    double best_ms = 0.0;
    bool first = true;
    for (const Algorithm a : kernels::paper_algorithms()) {
      const auto series = sweep_series(gtx, a, level);
      const double m = *std::min_element(series.begin(), series.end());
      if (first || m < best_ms) {
        best_ms = m;
        best = a;
        first = false;
      }
    }
    return best;
  };
  const Algorithm l1 = winner(1);
  const Algorithm l3 = winner(3);
  EXPECT_TRUE(is_block_level(l1));
  EXPECT_FALSE(is_block_level(l3));
}

TEST(Conclusions, OldestCardFastestForSmallProblems) {
  // "the oldest card we tested was consistently the fastest for small
  // problem sizes" — thread-level kernels at L1/L2.
  for (int level = 1; level <= 2; ++level) {
    for (const Algorithm a : {Algorithm::kThreadTexture, Algorithm::kThreadBuffered}) {
      const auto gts = sweep_series(gpusim::geforce_8800_gts_512(), a, level);
      const auto gtx = sweep_series(gpusim::geforce_gtx_280(), a, level);
      int wins = 0;
      for (std::size_t i = 0; i < gts.size(); ++i) wins += gts[i] < gtx[i];
      // "consistently": all but at most two sweep points (bandwidth-bound
      // corners can flip to the GTX 280).
      EXPECT_GE(wins, static_cast<int>(gts.size()) - 2) << to_string(a) << " L" << level;
    }
  }
}

TEST(Conclusions, NewestCardFastestForLargeProblems) {
  // "the best execution time for large problem sizes always occurs on the
  // newest generation": best-over-everything at L3, over the paper's four
  // formulations.  Algorithm 5 deliberately breaks this claim — bucketing
  // shrinks L3 to a small-grid kernel, and per the paper's own small-problem
  // observation the oldest card then wins — so it stays out of this sweep.
  auto best_on = [&](const gpusim::DeviceSpec& card) {
    double best = 1e300;
    for (const Algorithm a : kernels::paper_algorithms()) {
      const auto series = sweep_series(card, a, 3);
      best = std::min(best, *std::min_element(series.begin(), series.end()));
    }
    return best;
  };
  const double gtx = best_on(gpusim::geforce_gtx_280());
  EXPECT_LT(gtx, best_on(gpusim::geforce_8800_gts_512()));
  EXPECT_LT(gtx, best_on(gpusim::geforce_9800_gx2()));
}

}  // namespace
}  // namespace gm::bench

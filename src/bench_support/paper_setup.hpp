// Shared configuration of the paper-reproduction benches: the evaluation
// workload (393,019 letters, episode levels 1-3), one-call helpers that
// predict a mining kernel's time on a card via the analytic workload model,
// and deprecated aliases of the backend factory (now
// service/backend_factory.hpp) for old bench call sites.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/counting.hpp"
#include "kernels/mining_kernels.hpp"
#include "kernels/workload_model.hpp"
#include "service/backend_factory.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_spec.hpp"

namespace gm::bench {

/// Deprecated aliases: the backend factory moved to
/// service/backend_factory.hpp (gm::service) so clients pick backends
/// without linking the benchmark harness.  These keep old bench call sites
/// compiling; new code should use gm::service directly.
using BackendSpec = service::BackendSpec;

inline std::unique_ptr<core::CountingBackend> make_backend(const BackendSpec& spec) {
  return service::make_backend(spec);
}

inline std::vector<std::string_view> backend_names() { return service::backend_names(); }

/// Episode counts of the paper's levels over the 26-letter alphabet.
[[nodiscard]] std::int64_t paper_episode_count(int level);

/// Predicted kernel time (ms) for one paper configuration.
[[nodiscard]] double paper_time_ms(const gpusim::DeviceSpec& device,
                                   kernels::Algorithm algorithm, int level,
                                   int threads_per_block,
                                   const gpusim::CostModel& model = gpusim::CostModel{});

/// Same, returning the full mechanism breakdown.
[[nodiscard]] gpusim::TimeBreakdown paper_breakdown(const gpusim::DeviceSpec& device,
                                                    kernels::Algorithm algorithm, int level,
                                                    int threads_per_block,
                                                    const gpusim::CostModel& model =
                                                        gpusim::CostModel{});

}  // namespace gm::bench

// MiningSession: the long-lived object behind the service API.
//
// A session owns one loaded database (data::Dataset: events + Alphabet), the
// workload statistics the planner scores against (alphabet size + smoothed
// symbol distribution, measured once per load instead of once per request),
// the planner options a BackendSpec implies (including a fitted
// CalibrationProfile when configured), a default counting backend, and the
// result caches.  It serves MineRequest/CountRequest synchronously:
//
//   validate -> cache lookup -> planner-driven admission -> count -> cache
//
// Admission control uses plan_level cost predictions: a request whose
// predicted time exceeds its latency budget is rejected before any counting
// runs (ErrorCode::kAdmissionRejected), and a mining run whose later levels
// blow the remaining budget is stopped between levels with the partial
// result marked kTruncated.  Failures never escape as exceptions — they come
// back as structured Rejections.
//
// Concurrency: any number of threads may call mine/count concurrently.  A
// shared mutex guards the database (reload() takes it exclusively, so a
// reload waits for in-flight requests and atomically invalidates both
// caches); a plain mutex guards the caches; the built-in default backend is
// serialized by its own mutex.  Workers that want real parallelism call the
// *_with variants with a backend of their own (new_backend()), as
// MiningService does.
//
// Streaming: append_events() extends the database in place — generation
// bumps, the content digest and measured symbol frequencies update
// incrementally, and registered StreamingMonitors advance by exactly the new
// events.  Unlike reload(), an append does NOT clear the result caches:
// cache keys mix the generation, so entries for earlier generations can
// never be returned for a new request, yet a client that pinned an old
// response's cache key still observes it until LRU age-out.  Monitors
// persist across restarts via monitor_snapshots()/restore_monitor()
// (service/checkpoint_store serializes them as gm-checkpoint/1 JSON).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/counting.hpp"
#include "data/dataset_io.hpp"
#include "planner/planner.hpp"
#include "service/api.hpp"
#include "service/backend_factory.hpp"
#include "service/checkpoint_store.hpp"
#include "service/result_cache.hpp"
#include "service/streaming_monitor.hpp"

namespace gm::service {

struct SessionOptions {
  /// Backend the session constructs for its own use and for new_backend().
  /// "auto" (the default) re-plans the formulation at every counting level.
  BackendSpec backend = {.name = "auto"};
  std::size_t mine_cache_capacity = 128;
  std::size_t count_cache_capacity = 512;
};

class MiningSession {
 public:
  /// Loads `dataset` as generation 1.  Throws gm::Error on an empty dataset
  /// or an unknown backend spec — construction failures are the caller's
  /// configuration bugs, not request-time rejections.
  explicit MiningSession(data::Dataset dataset, SessionOptions options = {});

  MiningSession(const MiningSession&) = delete;
  MiningSession& operator=(const MiningSession&) = delete;

  /// Swap in a new database: bumps the generation, re-measures the workload
  /// statistics, and invalidates both result caches.  Waits for in-flight
  /// requests to drain.  Registered monitors are dropped: their scans
  /// describe a stream that no longer exists.
  void reload(data::Dataset dataset);

  /// What one append did: the generation it created, the stream size after
  /// it, and every monitor alert the batch fired.
  struct AppendOutcome {
    std::uint64_t generation = 0;
    std::int64_t database_size = 0;
    std::vector<Alert> alerts;
  };

  /// Extend the database with a batch of new events (all inside the session
  /// alphabet).  Bumps the generation and incrementally updates the content
  /// digest and measured symbol frequencies; still-cached results from
  /// earlier generations stay resident (their keys can no longer be
  /// produced) instead of being invalidated wholesale like reload() does.
  /// Every registered monitor advances over exactly this batch.
  AppendOutcome append_events(std::span<const core::Symbol> events);

  /// Register a streaming monitor.  Its scan consumes the current database
  /// immediately, so counts always cover the whole stream; episodes already
  /// at threshold fire their alerts in the returned list.  Names must be
  /// unique within the session.
  std::vector<Alert> register_monitor(MonitorSpec spec);

  /// Resume a persisted monitor: verifies the checkpoint's prefix digest
  /// against the loaded database (throws gm::Error on mismatch), then scans
  /// only the events appended since the capture.  Alerts the catch-up fires
  /// are returned; episodes already at threshold at capture stay quiet.
  std::vector<Alert> restore_monitor(const MonitorSnapshot& snapshot);

  /// Current counts of a registered monitor (throws on unknown name).
  [[nodiscard]] std::vector<std::int64_t> monitor_counts(std::string_view name) const;

  /// Every registered monitor, captured for persistence.  The embedded
  /// checkpoints carry the current generation.
  [[nodiscard]] std::vector<MonitorSnapshot> monitor_snapshots() const;

  /// The smoothed symbol distribution the planner scores against, as
  /// maintained incrementally across appends (bit-identical to
  /// kernels::measured_symbol_freq over the full stream).
  [[nodiscard]] std::vector<double> measured_frequencies() const;

  /// Serve one request with the session's own backend (serialized).
  [[nodiscard]] MineResponse mine(const MineRequest& request);
  [[nodiscard]] CountResponse count(const CountRequest& request);

  /// Serve with a caller-owned backend (one per worker thread for real
  /// concurrency).  The backend must have been built for this session's
  /// database shape — new_backend() is the supported way to get one.
  [[nodiscard]] MineResponse mine_with(const MineRequest& request,
                                       core::CountingBackend& backend);
  [[nodiscard]] CountResponse count_with(const CountRequest& request,
                                         core::CountingBackend& backend);

  /// Serve several compatible count requests (same level, semantics and
  /// expiry — see batch_key) with one backend call: episodes are
  /// concatenated, counted together, and the counts split back per request.
  /// Requests that hit the cache or fail admission are handled individually;
  /// responses line up with `requests` by index.
  [[nodiscard]] std::vector<CountResponse> count_batch_with(
      std::span<const CountRequest> requests, core::CountingBackend& backend);

  /// A fresh backend per the session's spec, for worker threads.
  [[nodiscard]] std::unique_ptr<core::CountingBackend> new_backend() const;

  /// Two count requests may share a backend call iff their batch keys match
  /// (episode level, semantics, expiry window).
  [[nodiscard]] static std::uint64_t batch_key(const CountRequest& request);

  [[nodiscard]] std::uint64_t generation() const;
  [[nodiscard]] std::int64_t database_size() const;
  [[nodiscard]] int alphabet_size() const;
  [[nodiscard]] CacheStats mine_cache_stats() const;
  [[nodiscard]] CacheStats count_cache_stats() const;
  [[nodiscard]] const SessionOptions& options() const noexcept { return options_; }

 private:
  struct CachedMine {
    core::MiningResult result;
    std::vector<std::string> plan_notes;
    double predicted_ms = 0.0;
  };
  struct CachedCount {
    std::vector<std::int64_t> counts;
    double predicted_ms = 0.0;
  };

  void load_locked(data::Dataset dataset);
  void refresh_symbol_freq_locked();

  /// Planner workload for one level of the loaded database (db stats cached
  /// at load time; caller holds the shared db lock).
  [[nodiscard]] planner::Workload level_workload(std::int64_t episode_count, int level,
                                                 core::Semantics semantics,
                                                 core::ExpiryPolicy expiry) const;

  [[nodiscard]] std::uint64_t mine_key(const core::MinerConfig& config) const;
  [[nodiscard]] std::uint64_t count_key(const CountRequest& request) const;

  SessionOptions options_;
  planner::PlannerOptions planner_options_;

  mutable std::shared_mutex db_mutex_;
  data::Dataset dataset_;
  std::uint64_t generation_ = 0;
  Digest db_digest_state_;  ///< running content digest; appends extend it
  std::uint64_t db_digest_ = 0;
  std::vector<std::int64_t> symbol_counts_;  ///< raw occurrence counts per symbol
  std::vector<double> symbol_freq_;
  std::vector<StreamingMonitor> monitors_;

  mutable std::mutex cache_mutex_;
  ResultCache<CachedMine> mine_cache_;
  ResultCache<CachedCount> count_cache_;

  std::mutex backend_mutex_;
  std::unique_ptr<core::CountingBackend> backend_;
};

}  // namespace gm::service

// Closed-form workload models of the five mining kernels.
//
// `model_profile` computes, analytically, the KernelProfile the functional
// engine would measure for a given problem size and launch — the per-warp
// segment maxima, memory-operation counts and barrier structure of
// mining_kernels.cpp, without touching any data.  This is what lets the
// benchmark harnesses sweep the paper's full 393,019-symbol configuration
// space in milliseconds; tests/kernels/workload_model_test.cpp asserts exact
// field-for-field equality against the engine on adversarial small sizes.
//
// The paper's four formulations charge data-independently (the paper's C1
// constant-time-per-symbol observation), so their models are *exact*.  The
// bucketed formulation's drain work depends on the data; its model is exact
// for the dense contiguous-restart path and an expectation elsewhere: each
// automaton awaits exactly one symbol, so a uniform stream drains it with
// probability 1/|alphabet| per position, making the per-symbol work term
// scale with bucket occupancy |episodes|/|alphabet| instead of |episodes|.
// Expiry re-bucket traffic (also data-dependent) is a renewal expectation:
// attempts start at rate 1 / (1/q + E[min(T, W-1)]) per position (q the
// drain rate, T the completion time over L-1 geometric dwells), each
// charging a deadline push, a pop for the share whose deadline matures
// inside the stream, and — for the share that expires — the episode[0]
// re-file, state store and stale-entry drain; it converges to one push+pop
// per match start (rate drains/L) as the window widens, and is pinned
// against the engine across windows by kernels_workload_model_test.
#pragma once

#include <span>
#include <vector>

#include "kernels/mining_kernels.hpp"
#include "sim/cost_model.hpp"
#include "sim/device_spec.hpp"
#include "sim/profile.hpp"

namespace gm::kernels {

/// Problem shape (no data needed: kernel charges are data-independent,
/// matching the paper's C1 constant-time-per-symbol observation).
struct WorkloadSpec {
  std::int64_t db_size = 0;
  std::int64_t episode_count = 0;
  int level = 1;
  /// Bucketed formulation only: divisor of the expected bucket occupancy
  /// (|episodes|/|alphabet| automata await each scanned symbol on a uniform
  /// stream).  Defaults to the paper's 26-letter alphabet.
  int alphabet_size = 26;
  /// Bucketed formulation only: measured (or synthetic) symbol distribution
  /// of the stream, `alphabet_size` entries summing to 1.  Empty means
  /// uniform, which keeps the drain term at the exact |episodes|/|alphabet|
  /// occupancy the uniform-stream tests pin.  A skewed distribution lowers
  /// the expected drain rate (automata park in rare-symbol buckets), per
  /// `bucket_drain_rate`.
  std::vector<double> symbol_freq;
  /// Trie-bucketed formulation only: distinct-prefix mass of the candidate
  /// set — trie nodes over total episode symbols, in (0, 1] — measured from
  /// the actual candidates via core::prefix_compression.  1.0 means no two
  /// candidates share a prefix (the trie degenerates to the flat engine);
  /// apriori level-L sets sit near 1/L plus the last-symbol fringe.  Scales
  /// the trie drain/expiry terms: one token drain advances every episode
  /// sharing the prefix.
  double prefix_compression = 1.0;
  MiningLaunchParams params;
};

/// Expected per-position drain probability of one waiting automaton when the
/// stream draws symbols i.i.d. from `symbol_freq` and awaited symbols are
/// uniform over the alphabet.  An automaton's dwell time in the bucket of a
/// symbol with probability p is geometric with mean 1/p, so a level-L cycle
/// takes S = sum of L dwells and the automaton advances L/S times per
/// position; taking the expectation with a second-order Jensen correction
/// gives  (1 / mean_dwell) * (1 + cv^2 / level)  where cv is the coefficient
/// of variation of the dwell distribution.  Uniform frequencies make cv = 0
/// and recover exactly 1/|alphabet|.  Zero frequencies are allowed (their
/// buckets park automata for the rest of the stream) but make the rate 0, so
/// callers measuring from data should smooth (see `measured_symbol_freq`).
[[nodiscard]] double bucket_drain_rate(std::span<const double> symbol_freq, int level);

/// Empirical symbol distribution of a database with add-one (Laplace)
/// smoothing, so absent symbols keep a small positive frequency and
/// `bucket_drain_rate` stays finite.  Symbols >= alphabet_size are rejected.
[[nodiscard]] std::vector<double> measured_symbol_freq(std::span<const core::Symbol> database,
                                                       int alphabet_size);

/// The launch configuration run_mining_kernel would use for this spec.
[[nodiscard]] gpusim::LaunchConfig model_launch_config(const WorkloadSpec& spec);

/// The kernel profile the functional engine would measure for this spec
/// (tex_miss_bytes is left 0: declared texture patterns drive the traffic
/// model instead).  `costs` supplies the per-loop instruction charges; the
/// default profile carries the shipped cost_constants.hpp values and predicts
/// bit-identically to the pre-profile code (pinned by test), while a fitted
/// profile (see calib/) adapts the model to a measured host.
[[nodiscard]] gpusim::KernelProfile model_profile(const gpusim::DeviceSpec& device,
                                                  const WorkloadSpec& spec,
                                                  const KernelCostProfile& costs = {});

/// Convenience: predicted kernel time for this spec on this card.
[[nodiscard]] gpusim::TimeBreakdown predict_mining_time(const gpusim::DeviceSpec& device,
                                                        const WorkloadSpec& spec,
                                                        const gpusim::CostModel& model,
                                                        const KernelCostProfile& costs = {});

}  // namespace gm::kernels

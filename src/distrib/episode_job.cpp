#include "distrib/episode_job.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/cpu_backend.hpp"
#include "core/segment_counter.hpp"
#include "core/serial_counter.hpp"

namespace gm::distrib {
namespace {

/// Claim task indices from a shared counter on `threads` workers (inline when
/// one suffices).  Tasks write disjoint preallocated slots; callers read
/// after the join.
template <typename Fn>
void for_each_task(int threads, std::size_t tasks, Fn&& task_fn) {
  const int workers = std::min<int>(core::resolved_thread_count(threads),
                                    static_cast<int>(std::max<std::size_t>(tasks, 1)));
  std::atomic<std::size_t> next{0};
  auto drain = [&] {
    for (;;) {
      const std::size_t t = next.fetch_add(1, std::memory_order_relaxed);
      if (t >= tasks) return;
      task_fn(t);
    }
  };
  if (workers <= 1) {
    drain();
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(drain);
  for (auto& t : pool) t.join();
}

}  // namespace

std::vector<std::int64_t> count_episodes_thread_level(
    std::span<const core::Symbol> database, std::span<const core::Episode> episodes,
    const EpisodeCountOptions& options) {
  for (const auto& e : episodes) gm::expects(!e.empty(), "cannot count an empty episode");
  std::vector<std::int64_t> counts(episodes.size(), 0);
  for_each_task(options.threads, episodes.size(), [&](std::size_t e) {
    counts[e] = core::count_occurrences(episodes[e], database, options.semantics,
                                        options.expiry);
  });
  return counts;
}

std::vector<std::int64_t> count_episodes_block_level(
    std::span<const core::Symbol> database, std::span<const core::Episode> episodes,
    const EpisodeCountOptions& options) {
  gm::expects(options.chunks >= 1, "need at least one chunk");
  for (const auto& e : episodes) gm::expects(!e.empty(), "cannot count an empty episode");
  std::vector<std::int64_t> counts(episodes.size(), 0);
  if (episodes.empty() || database.empty()) return counts;

  const auto bounds =
      core::chunk_boundaries(static_cast<std::int64_t>(database.size()), options.chunks);
  const auto chunk_count = static_cast<std::size_t>(options.chunks);

  // Map: one cold scan per (episode, chunk), claimed off a shared counter.
  std::vector<core::SegmentOutcome> cold(episodes.size() * chunk_count);
  for_each_task(options.threads, cold.size(), [&](std::size_t task) {
    const std::size_t e = task / chunk_count;
    const std::size_t c = task % chunk_count;
    cold[task] = core::scan_segment(episodes[e].symbols(), options.semantics, options.expiry,
                                    database, bounds[c], bounds[c + 1], 0, 0);
  });

  // Reduce: fold each episode's outcomes in chunk order (exact; see
  // core::fold_cold_scans).
  for (std::size_t e = 0; e < episodes.size(); ++e) {
    counts[e] = core::fold_cold_scans(
        episodes[e].symbols(), options.semantics, options.expiry, database, bounds,
        std::span<const core::SegmentOutcome>(cold).subspan(e * chunk_count, chunk_count));
  }
  return counts;
}

}  // namespace gm::distrib

// Portable auto-vectorization hints for the counting hot loops.
//
// GM_SIMD_LOOP marks a loop whose iterations the compiler may treat as
// independent (no loop-carried aliasing through the SoA arrays), enabling
// vectorization/interleaving it would otherwise forgo out of caution.  The
// hints are advisory: code under them must be correct without them, so
// unknown compilers simply get the plain loop.  No intrinsics, no OpenMP
// runtime dependency — `#pragma omp simd` would need -fopenmp(-simd) flags,
// while these per-compiler loop pragmas work with the stock toolchain.
#pragma once

#if defined(__clang__)
#define GM_SIMD_LOOP _Pragma("clang loop vectorize(enable) interleave(enable)")
#elif defined(__GNUC__)
#define GM_SIMD_LOOP _Pragma("GCC ivdep")
#else
#define GM_SIMD_LOOP
#endif

#include "core/episode.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace gm::core {

Episode::Episode(std::vector<Symbol> symbols) : symbols_(std::move(symbols)) {
  gm::expects(!symbols_.empty(), "episode must contain at least one symbol");
  gm::expects(symbols_.size() <= 255, "episode level limited to 255");
}

Episode Episode::from_text(const Alphabet& alphabet, std::string_view text) {
  return Episode(alphabet.parse(text));
}

Symbol Episode::at(int i) const {
  gm::expects(i >= 0 && i < level(), "episode index out of range");
  return symbols_[static_cast<std::size_t>(i)];
}

bool Episode::has_distinct_symbols() const {
  auto sorted = symbols_;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

Episode Episode::without(int drop) const {
  gm::expects(drop >= 0 && drop < level(), "drop index out of range");
  gm::expects(level() > 1, "cannot drop from a level-1 episode");
  std::vector<Symbol> out;
  out.reserve(symbols_.size() - 1);
  for (int i = 0; i < level(); ++i) {
    if (i != drop) out.push_back(symbols_[static_cast<std::size_t>(i)]);
  }
  return Episode(std::move(out));
}

std::string Episode::to_string(const Alphabet& alphabet) const {
  std::string out = "<";
  for (int i = 0; i < level(); ++i) {
    if (i > 0) out += ",";
    out += alphabet.symbol_name(symbols_[static_cast<std::size_t>(i)]);
  }
  out += ">";
  return out;
}

std::span<const Symbol> PackedEpisodes::episode(std::int64_t index) const {
  gm::expects(index >= 0 && index < padded_count, "packed episode index out of range");
  return {symbols.data() + index * level, static_cast<std::size_t>(level)};
}

PackedEpisodes pack_episodes(std::span<const Episode> episodes, std::int64_t padded_count) {
  gm::expects(!episodes.empty(), "cannot pack an empty episode list");
  PackedEpisodes packed;
  packed.level = episodes.front().level();
  packed.episode_count = static_cast<std::int64_t>(episodes.size());
  packed.padded_count = std::max<std::int64_t>(padded_count, packed.episode_count);
  packed.symbols.reserve(static_cast<std::size_t>(packed.padded_count * packed.level));
  for (const auto& e : episodes) {
    gm::expects(e.level() == packed.level, "all packed episodes must share one level");
    packed.symbols.insert(packed.symbols.end(), e.symbols().begin(), e.symbols().end());
  }
  for (std::int64_t i = packed.episode_count; i < packed.padded_count; ++i) {
    packed.symbols.insert(packed.symbols.end(), static_cast<std::size_t>(packed.level),
                          PackedEpisodes::kSentinel);
  }
  return packed;
}

}  // namespace gm::core

#include "service/streaming_monitor.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/error.hpp"

namespace gm::service {
namespace {

core::StreamScan make_scan(const MonitorSpec& spec) {
  gm::expects(!spec.episodes.empty(), "monitor must watch at least one episode");
  gm::expects(spec.threshold >= 1, "monitor threshold must be at least 1");
  return core::StreamScan(spec.episodes, spec.semantics, spec.expiry, spec.engine);
}

}  // namespace

StreamingMonitor::StreamingMonitor(MonitorSpec spec)
    : spec_(std::move(spec)), scan_(make_scan(spec_)), fired_(spec_.episodes.size(), false) {}

StreamingMonitor::StreamingMonitor(MonitorSpec spec, const core::ScanCheckpoint& checkpoint)
    : spec_(std::move(spec)), scan_(checkpoint, spec_.engine), fired_(spec_.episodes.size()) {
  gm::expects(spec_.threshold >= 1, "monitor threshold must be at least 1");
  gm::expects(checkpoint.episodes.size() == spec_.episodes.size() &&
                  std::equal(checkpoint.episodes.begin(), checkpoint.episodes.end(),
                             spec_.episodes.begin()),
              "monitor checkpoint was captured for a different episode set");
  gm::expects(checkpoint.semantics == spec_.semantics &&
                  checkpoint.expiry.window == spec_.expiry.window,
              "monitor checkpoint was captured under different scan parameters");
  arm_fired();
}

void StreamingMonitor::arm_fired() {
  const std::vector<std::int64_t> counts = scan_.counts();
  last_total_ = std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  for (std::size_t i = 0; i < counts.size(); ++i) fired_[i] = counts[i] >= spec_.threshold;
}

void StreamingMonitor::on_append(std::span<const core::Symbol> events,
                                 std::uint64_t generation, std::vector<Alert>& alerts) {
  scan_.feed(events);
  const std::vector<std::int64_t> counts = scan_.counts();
  const std::int64_t total = std::accumulate(counts.begin(), counts.end(), std::int64_t{0});
  ticks_.push_back({scan_.high_water(), static_cast<std::int64_t>(events.size()),
                    total - last_total_});
  last_total_ = total;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (fired_[i] || counts[i] < spec_.threshold) continue;
    fired_[i] = true;
    alerts.push_back({spec_.name, i, counts[i], scan_.high_water(), generation});
  }
}

}  // namespace gm::service

// End-to-end miner tests (paper Algorithm 1) across counting backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/cpu_backend.hpp"
#include "core/miner.hpp"
#include "data/generators.hpp"

namespace gm::core {
namespace {

const Alphabet kAbc = Alphabet::english_uppercase();

MiningResult mine(const Sequence& db, const Alphabet& alphabet, const MinerConfig& config) {
  SerialCpuBackend backend;
  return mine_frequent_episodes(db, alphabet, backend, config);
}

TEST(Miner, FindsPlantedEpisodeThroughLevels) {
  // "ABC" repeated dominates: every prefix must be frequent, and <A,B,C>
  // must be discovered at level 3.
  Sequence db;
  for (int i = 0; i < 200; ++i) {
    db.push_back(0);
    db.push_back(1);
    db.push_back(2);
  }
  MinerConfig config;
  config.support_threshold = 0.05;
  config.max_level = 3;
  const auto result = mine(db, Alphabet(3), config);

  ASSERT_EQ(result.levels.size(), 3u);
  EXPECT_EQ(result.levels[0].frequent, 3);  // A, B, C all frequent
  const Episode abc({0, 1, 2});
  const bool found = std::any_of(result.frequent.begin(), result.frequent.end(),
                                 [&](const auto& f) { return f.episode == abc; });
  EXPECT_TRUE(found);
}

TEST(Miner, ThresholdEliminatesRareSymbols) {
  // 'Z' appears once in 1000 symbols of 'A'.
  Sequence db(1000, 0);
  db[500] = 25;
  MinerConfig config;
  config.support_threshold = 0.01;
  config.max_level = 2;
  const auto result = mine(db, kAbc, config);
  ASSERT_GE(result.levels.size(), 1u);
  EXPECT_EQ(result.levels[0].frequent, 1);  // only 'A'
}

TEST(Miner, MaxLevelBoundsTheRun) {
  const auto db = data::uniform_database(Alphabet(4), 2000, 5);
  MinerConfig config;
  config.support_threshold = 0.0;
  config.max_level = 2;
  const auto result = mine(db, Alphabet(4), config);
  EXPECT_EQ(result.levels.size(), 2u);
  for (const auto& f : result.frequent) EXPECT_LE(f.episode.level(), 2);
}

TEST(Miner, UnboundedRunTerminatesWhenCandidatesDie) {
  // A 2-symbol alphabet with support so high only singles survive.
  Sequence db;
  for (int i = 0; i < 100; ++i) db.push_back(static_cast<Symbol>(i % 2));
  MinerConfig config;
  config.support_threshold = 0.4;  // pairs have support ~0.25 each
  config.max_level = 0;            // unbounded
  const auto result = mine(db, Alphabet(2), config);
  EXPECT_LE(result.levels.size(), 3u);
  EXPECT_TRUE(result.levels.back().frequent == 0 ||
              result.levels.back().level < 3);
}

TEST(Miner, CandidateCountsMatchPaperWithZeroThreshold) {
  // With threshold 0 on uniform data every candidate survives: the level
  // sizes must be exactly Table 1's 26 / 650 / 15,600... level 2 candidates
  // are 26*26 here because the general model allows repeats; the paper's
  // distinct-symbol space is the all_distinct_episodes enumeration instead.
  const auto db = data::uniform_database(kAbc, 5000, 3);
  MinerConfig config;
  config.support_threshold = 0.0;
  config.max_level = 2;
  config.apriori_prune = false;
  const auto result = mine(db, kAbc, config);
  EXPECT_EQ(result.levels[0].candidates, 26);
  EXPECT_EQ(result.levels[1].candidates, 26 * 26);
}

TEST(Miner, ParallelCpuBackendAgreesWithSerial) {
  const auto db = data::uniform_database(Alphabet(6), 3000, 8);
  MinerConfig config;
  config.support_threshold = 0.002;
  config.max_level = 3;

  SerialCpuBackend serial;
  ParallelCpuBackend parallel(3);
  const auto a = mine_frequent_episodes(db, Alphabet(6), serial, config);
  const auto b = mine_frequent_episodes(db, Alphabet(6), parallel, config);

  ASSERT_EQ(a.total_frequent(), b.total_frequent());
  for (std::size_t i = 0; i < a.frequent.size(); ++i) {
    EXPECT_EQ(a.frequent[i].episode, b.frequent[i].episode);
    EXPECT_EQ(a.frequent[i].count, b.frequent[i].count);
  }
}

TEST(Miner, ExpiryReducesCounts) {
  const auto db = data::uniform_database(Alphabet(4), 4000, 9);
  MinerConfig loose;
  loose.support_threshold = 0.0;
  loose.max_level = 2;
  MinerConfig tight = loose;
  tight.expiry = ExpiryPolicy{2};

  const auto all = mine(db, Alphabet(4), loose);
  const auto windowed = mine(db, Alphabet(4), tight);
  // Same candidates (threshold 0), smaller or equal counts with expiry.
  ASSERT_EQ(all.frequent.size(), windowed.frequent.size());
  bool some_smaller = false;
  for (std::size_t i = 0; i < all.frequent.size(); ++i) {
    EXPECT_LE(windowed.frequent[i].count, all.frequent[i].count);
    if (windowed.frequent[i].count < all.frequent[i].count) some_smaller = true;
  }
  EXPECT_TRUE(some_smaller);
}

// Regression: the support test used to run twice (eliminate_infrequent and a
// second inline loop) and could drift.  The per-level report and the
// discovered-episode list must come from the one keep decision.
TEST(Miner, LevelReportsAgreeWithDiscoveredEpisodes) {
  const auto db = data::uniform_database(Alphabet(5), 3000, 21);
  MinerConfig config;
  config.support_threshold = 0.01;
  config.max_level = 3;
  const auto result = mine(db, Alphabet(5), config);

  std::vector<std::int64_t> per_level(static_cast<std::size_t>(config.max_level) + 1, 0);
  for (const auto& f : result.frequent) {
    ASSERT_LE(f.episode.level(), config.max_level);
    ++per_level[static_cast<std::size_t>(f.episode.level())];
    EXPECT_GT(f.support, config.support_threshold);
    EXPECT_EQ(f.support, static_cast<double>(f.count) / static_cast<double>(db.size()));
  }
  for (const auto& level : result.levels) {
    EXPECT_EQ(level.frequent, per_level[static_cast<std::size_t>(level.level)]);
  }
}

TEST(Miner, ShardedAndSingleScanBackendsAgreeWithSerial) {
  const auto db = data::uniform_database(Alphabet(6), 3000, 8);
  MinerConfig config;
  config.support_threshold = 0.002;
  config.max_level = 3;
  config.expiry = ExpiryPolicy{12};

  SerialCpuBackend serial;
  ShardedCpuBackend sharded(4);
  SingleScanCpuBackend single_scan;
  const auto a = mine_frequent_episodes(db, Alphabet(6), serial, config);
  const auto b = mine_frequent_episodes(db, Alphabet(6), sharded, config);
  const auto c = mine_frequent_episodes(db, Alphabet(6), single_scan, config);

  ASSERT_EQ(a.total_frequent(), b.total_frequent());
  ASSERT_EQ(a.total_frequent(), c.total_frequent());
  for (std::size_t i = 0; i < a.frequent.size(); ++i) {
    EXPECT_EQ(a.frequent[i].episode, b.frequent[i].episode);
    EXPECT_EQ(a.frequent[i].count, b.frequent[i].count);
    EXPECT_EQ(a.frequent[i].episode, c.frequent[i].episode);
    EXPECT_EQ(a.frequent[i].count, c.frequent[i].count);
  }
}

TEST(Miner, RejectsBadInputs) {
  SerialCpuBackend backend;
  MinerConfig config;
  EXPECT_THROW((void)mine_frequent_episodes({}, kAbc, backend, config),
               gm::PreconditionError);
  const Sequence bad = {0, 200};  // symbol outside a 26-letter alphabet
  EXPECT_THROW((void)mine_frequent_episodes(bad, kAbc, backend, config),
               gm::PreconditionError);
}

TEST(Miner, ValidatesConfigDomainsWithInvalidConfigCode) {
  // Out-of-domain configs used to silently produce empty (threshold > 1) or
  // surprising runs; they are now rejected before any counting happens.
  MinerConfig config;
  config.support_threshold = 1.5;
  try {
    validate_miner_config(config);
    FAIL() << "support_threshold 1.5 should be rejected";
  } catch (const gm::Error& e) {
    EXPECT_EQ(e.code(), gm::ErrorCode::kInvalidConfig);
    EXPECT_NE(std::string(e.what()).find("[0, 1]"), std::string::npos);
  }
  config = {};
  config.max_level = -1;
  try {
    validate_miner_config(config);
    FAIL() << "negative max_level should be rejected";
  } catch (const gm::Error& e) {
    EXPECT_EQ(e.code(), gm::ErrorCode::kInvalidConfig);
  }
  config = {};
  config.expiry.window = -3;
  EXPECT_THROW(validate_miner_config(config), gm::PreconditionError);
  config = {};  // defaults are valid
  EXPECT_NO_THROW(validate_miner_config(config));
  config.support_threshold = 1.0;
  config.max_level = 0;
  EXPECT_NO_THROW(validate_miner_config(config));

  SerialCpuBackend backend;
  const Sequence db = {0, 1, 2, 0, 1, 2};
  config = {};
  config.support_threshold = -0.5;
  EXPECT_THROW((void)mine_frequent_episodes(db, kAbc, backend, config),
               gm::PreconditionError);
}

TEST(Miner, LevelCapErrorCarriesCapabilityCode) {
  class CappedBackend final : public CountingBackend {
   public:
    [[nodiscard]] std::string name() const override { return "capped"; }
    [[nodiscard]] int max_level() const override { return 1; }
    [[nodiscard]] CountResult count(const CountRequest& request) override {
      SerialCpuBackend serial;
      return serial.count(request);
    }
  };
  Sequence db;
  for (int i = 0; i < 50; ++i) {
    db.push_back(0);
    db.push_back(1);
  }
  CappedBackend backend;
  MinerConfig config;
  config.support_threshold = 0.0;
  config.max_level = 3;
  try {
    (void)mine_frequent_episodes(db, kAbc, backend, config);
    FAIL() << "mining past the backend level cap should be rejected";
  } catch (const gm::Error& e) {
    EXPECT_EQ(e.code(), gm::ErrorCode::kCapability);
  }
}

TEST(Miner, ObserverSeesLevelsAndCanTruncate) {
  class StopAfterOne final : public LevelObserver {
   public:
    bool on_level_start(int level, std::span<const Episode> candidates) override {
      starts.push_back({level, static_cast<std::int64_t>(candidates.size())});
      return level <= 1;
    }
    void on_level_done(const LevelReport& report) override { done.push_back(report.level); }
    std::vector<std::pair<int, std::int64_t>> starts;
    std::vector<int> done;
  };

  Sequence db;
  for (int i = 0; i < 100; ++i) {
    db.push_back(0);
    db.push_back(1);
    db.push_back(2);
  }
  MinerConfig config;
  config.support_threshold = 0.1;
  config.max_level = 3;
  SerialCpuBackend backend;

  StopAfterOne observer;
  const MiningResult truncated =
      mine_frequent_episodes(db, kAbc, backend, config, &observer);
  EXPECT_TRUE(truncated.truncated);
  ASSERT_EQ(truncated.levels.size(), 1u);
  ASSERT_EQ(observer.starts.size(), 2u);
  EXPECT_EQ(observer.starts[0].first, 1);
  EXPECT_EQ(observer.starts[0].second, 26);  // level-1 candidates = alphabet
  EXPECT_EQ(observer.starts[1].first, 2);
  EXPECT_EQ(observer.done, std::vector<int>{1});

  // The truncated prefix is bit-identical to the classic run's first level.
  const MiningResult full = mine(db, kAbc, config);
  EXPECT_FALSE(full.truncated);
  EXPECT_EQ(truncated.levels[0].frequent, full.levels[0].frequent);
  for (std::size_t i = 0; i < truncated.frequent.size(); ++i) {
    EXPECT_EQ(truncated.frequent[i].episode, full.frequent[i].episode);
    EXPECT_EQ(truncated.frequent[i].count, full.frequent[i].count);
  }
}

}  // namespace
}  // namespace gm::core

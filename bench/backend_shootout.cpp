// backend_shootout — wall-clock comparison of the CPU counting backends on
// configurable workload shapes, and an end-to-end cross-check that every
// backend returns bit-identical counts to the serial reference.
//
// The interesting axes are the ones the paper characterizes:
//   * stream length (--db): favors database sharding (cpu-sharded)
//   * candidate count (--episodes): favors episode parallelism (cpu-parallel)
//   * alphabet size (--alphabet): favors the waiting-symbol bucket index
//     (cpu-single-scan), whose per-symbol work is |episodes|/|alphabet|
//
// The default configuration is a large-alphabet, long-stream shape where the
// single-scan engine should beat the episode-parallel backend outright.
//
//   backend_shootout [--db N] [--alphabet N] [--episodes N] [--level L]
//                    [--threads T] [--expiry W] [--semantics subseq|contig]
//                    [--repeat R] [--seed S]
//                    [--gpu] [--card 8800|gx2|gtx280] [--tpb N]
//
// --gpu additionally runs every simulated-GPU formulation (algorithms 1-5)
// through the functional engine and cross-checks its counts end to end; use
// a small --db, the functional engine is orders of magnitude slower than the
// CPU backends.  Exits nonzero on any backend disagreement, so a tiny
// configuration doubles as a CTest smoke test (label bench_smoke).  The
// block-level algorithms (3/4) under expiry use the documented overlap-rescan
// approximation and are reported as "approx" instead of being gated.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "bench_support/cli_args.hpp"
#include "bench_support/paper_setup.hpp"
#include "common/rng.hpp"
#include "core/cpu_backend.hpp"
#include "data/generators.hpp"
#include "kernels/mining_kernels.hpp"

namespace {

struct Options {
  std::int64_t db_size = 2'000'000;
  int alphabet = 200;
  int episodes = 400;
  int level = 3;
  int threads = 0;
  std::int64_t expiry = 0;
  int repeat = 3;
  std::uint64_t seed = 2009;
  bool gpu = false;
  std::string card = "gtx280";
  int tpb = 32;
  gm::core::Semantics semantics = gm::core::Semantics::kNonOverlappedSubsequence;
};

std::vector<gm::core::Episode> random_episodes(const gm::core::Alphabet& alphabet, int count,
                                               int level, gm::Rng& rng) {
  std::vector<gm::core::Symbol> pool(static_cast<std::size_t>(alphabet.size()));
  std::iota(pool.begin(), pool.end(), gm::core::Symbol{0});
  std::vector<gm::core::Episode> episodes;
  episodes.reserve(static_cast<std::size_t>(count));
  for (int e = 0; e < count; ++e) {
    // Partial Fisher-Yates: the first `level` slots become a random
    // distinct-symbol episode (the paper's episode space).
    for (int i = 0; i < level; ++i) {
      const auto j = static_cast<std::size_t>(i) +
                     static_cast<std::size_t>(rng.below(pool.size() - static_cast<std::size_t>(i)));
      std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    }
    episodes.emplace_back(
        std::vector<gm::core::Symbol>(pool.begin(), pool.begin() + level));
  }
  return episodes;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::cerr << arg << " needs a value\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--db")
        opt.db_size = gm::bench::parse_int64(arg, next(), 1, 1'000'000'000);
      else if (arg == "--alphabet") opt.alphabet = gm::bench::parse_int(arg, next(), 1, 255);
      else if (arg == "--episodes")
        opt.episodes = gm::bench::parse_int(arg, next(), 1, 10'000'000);
      else if (arg == "--level") opt.level = gm::bench::parse_int(arg, next(), 1, 255);
      else if (arg == "--threads") opt.threads = gm::bench::parse_int(arg, next(), 0, 1 << 20);
      else if (arg == "--expiry")
        opt.expiry = gm::bench::parse_int64(arg, next(), 0, 1'000'000'000);
      else if (arg == "--repeat") opt.repeat = gm::bench::parse_int(arg, next(), 1, 1000);
      else if (arg == "--seed")
        opt.seed = static_cast<std::uint64_t>(
            gm::bench::parse_int64(arg, next(), 0, std::numeric_limits<std::int64_t>::max()));
      else if (arg == "--gpu") opt.gpu = true;
      else if (arg == "--card") opt.card = next();
      else if (arg == "--tpb") opt.tpb = gm::bench::parse_int(arg, next(), 1, 1 << 16);
      else if (arg == "--semantics") {
        const std::string name = next();
        if (name == "contig") opt.semantics = gm::core::Semantics::kContiguousRestart;
        else if (name != "subseq") {
          std::cerr << "unknown semantics: " << name << "\n";
          return 2;
        }
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return 2;
      }
    }
  } catch (const gm::PreconditionError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (opt.level > opt.alphabet) {
    std::cerr << "invalid configuration: --level exceeds --alphabet\n";
    return 2;
  }

  const gm::core::Alphabet alphabet(opt.alphabet);
  gm::Rng rng(opt.seed);
  const auto db = gm::data::uniform_database(alphabet, opt.db_size, rng());
  const auto episodes = random_episodes(alphabet, opt.episodes, opt.level, rng);

  gm::core::CountRequest request;
  request.database = db;
  request.episodes = episodes;
  request.semantics = opt.semantics;
  request.expiry = gm::core::ExpiryPolicy{opt.expiry};

  std::cout << "backend shootout: db=" << opt.db_size << " alphabet=" << opt.alphabet
            << " episodes=" << opt.episodes << " level=" << opt.level
            << " expiry=" << opt.expiry << " semantics=" << to_string(opt.semantics)
            << " repeat=" << opt.repeat << "\n\n";

  std::vector<std::int64_t> reference;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool all_agree = true;
  double single_scan_ms = 0.0;

  std::printf("%-20s %12s %10s %10s\n", "backend", "best ms", "vs serial", "agrees");
  for (const auto name :
       {"cpu-serial", "cpu-parallel", "cpu-sharded", "cpu-single-scan"}) {
    gm::bench::BackendSpec spec;
    spec.name = name;
    spec.threads = opt.threads;
    const auto backend = gm::bench::make_backend(spec);

    double best_ms = 0.0;
    gm::core::CountResult result;
    for (int r = 0; r < opt.repeat; ++r) {
      result = backend->count(request);
      best_ms = (r == 0) ? result.host_ms : std::min(best_ms, result.host_ms);
    }

    bool agrees = true;
    if (reference.empty()) {
      reference = result.counts;  // cpu-serial runs first: it is the reference
      serial_ms = best_ms;
    } else {
      agrees = result.counts == reference;
      all_agree = all_agree && agrees;
    }
    if (std::string(name) == "cpu-parallel") parallel_ms = best_ms;
    if (std::string(name) == "cpu-single-scan") single_scan_ms = best_ms;
    std::printf("%-20s %12.2f %9.2fx %10s\n", backend->name().c_str(), best_ms,
                best_ms > 0 ? serial_ms / best_ms : 0.0, agrees ? "yes" : "NO");
  }

  if (opt.gpu) try {
    // Every simulated-GPU formulation end to end through the functional
    // engine.  Exact against the serial reference except algorithms 3/4
    // under expiry (documented overlap-rescan approximation -> "approx").
    std::printf("\ngpusim on %s, %d threads/block:\n", opt.card.c_str(), opt.tpb);
    for (const gm::kernels::Algorithm algorithm : gm::kernels::all_algorithms()) {
      const std::string label =
          "gpusim-algo" + std::to_string(gm::kernels::algorithm_number(algorithm));
      if (gm::kernels::is_block_level(algorithm) &&
          static_cast<std::int64_t>(opt.tpb) > opt.db_size) {
        std::printf("%-20s %12s  (skipped: --tpb exceeds --db)\n", label.c_str(), "-");
        continue;
      }
      gm::bench::BackendSpec spec;
      spec.name = "gpusim";
      spec.card = opt.card;
      spec.launch.algorithm = algorithm;
      spec.launch.threads_per_block = opt.tpb;
      const auto backend = gm::bench::make_backend(spec);

      double best_ms = 0.0;
      gm::core::CountResult result;
      for (int r = 0; r < opt.repeat; ++r) {
        result = backend->count(request);
        best_ms = (r == 0) ? result.host_ms : std::min(best_ms, result.host_ms);
      }
      const bool approximate =
          request.expiry.enabled() && gm::kernels::is_block_level(algorithm);
      const bool agrees = result.counts == reference;
      if (!approximate) all_agree = all_agree && agrees;
      std::printf("%-20s %12.2f %9.2fx %10s\n", label.c_str(), best_ms,
                  best_ms > 0 ? serial_ms / best_ms : 0.0,
                  approximate ? (agrees ? "yes*" : "approx") : (agrees ? "yes" : "NO"));
    }
    if (request.expiry.enabled()) {
      std::printf("(*/approx: block-level expiry rows use the overlap-rescan approximation)\n");
    }
  } catch (const gm::Error& e) {
    // An unknown --card or an unsupportable --level/--tpb for the GPU
    // formulations (including DeviceError for launches the card cannot
    // host, e.g. --tpb beyond the device's block limit) is a bad
    // invocation, not a backend disagreement.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (parallel_ms > 0 && single_scan_ms > 0) {
    std::printf("\nsingle-scan vs episode-parallel: %.2fx\n", parallel_ms / single_scan_ms);
  }
  if (!all_agree) {
    std::cerr << "\nERROR: backend disagreement against the serial reference\n";
    return 1;
  }
  return 0;
}

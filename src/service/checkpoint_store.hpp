// JSON persistence for scan checkpoints and streaming monitors.
//
// Sessions survive restarts by writing their monitors to disk: each snapshot
// pairs a MonitorSpec with the ScanCheckpoint of its scan at capture time.
// On reload the session verifies the checkpoint's stream-prefix digest
// against the reloaded database (a resume against different data is refused,
// not silently wrong), restores the scan, and replays only the events
// appended since the capture.
//
// Format notes: documents are tagged "gm-checkpoint/1"; 64-bit digests are
// hex strings because JSON numbers are doubles and would silently round
// them; positions/counts are plain integers (they stay far under 2^53).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "bench_support/json.hpp"
#include "core/scan_checkpoint.hpp"
#include "service/streaming_monitor.hpp"

namespace gm::service {

inline constexpr std::string_view kCheckpointSchema = "gm-checkpoint/1";

/// One persisted monitor: what it watches + where its scan paused.
struct MonitorSnapshot {
  MonitorSpec spec;
  core::ScanCheckpoint checkpoint;
};

/// Emits `checkpoint` as one JSON object into an open writer (composable
/// into larger documents; the snapshot serializers below use it).
void write_checkpoint(bench::JsonWriter& json, const core::ScanCheckpoint& checkpoint);

/// Parses a checkpoint object written by write_checkpoint.  Throws gm::Error
/// on structural mismatches.
[[nodiscard]] core::ScanCheckpoint read_checkpoint(const bench::JsonValue& value);

/// Serialize / parse a whole monitor set ("gm-checkpoint/1" document).
[[nodiscard]] std::string monitors_to_json(std::span<const MonitorSnapshot> snapshots);
[[nodiscard]] std::vector<MonitorSnapshot> monitors_from_json(std::string_view text);

/// File convenience wrappers with gm::Error on I/O or schema mismatch.
void save_monitors_file(const std::string& path, std::span<const MonitorSnapshot> snapshots);
[[nodiscard]] std::vector<MonitorSnapshot> load_monitors_file(const std::string& path);

}  // namespace gm::service

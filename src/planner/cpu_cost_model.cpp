#include "planner/cpu_cost_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "kernels/workload_model.hpp"

namespace gm::planner {
namespace {

constexpr double kNsToMs = 1e-6;
constexpr double kUsToMs = 1e-3;

double checked_shape(const Workload& w) {
  gm::expects(w.db_size > 0, "cpu cost model needs a non-empty database");
  gm::expects(w.episode_count > 0, "cpu cost model needs at least one episode");
  gm::expects(w.level >= 1, "cpu cost model needs a positive level");
  return static_cast<double>(w.db_size) * static_cast<double>(w.episode_count);
}

/// Skew-aware per-position drain probability of one waiting automaton —
/// shared with the Algorithm-5 device model so host and device predictions
/// agree on what a Zipfian stream does to bucket occupancy.
double drain_rate(const Workload& w) {
  if (w.symbol_freq.empty()) return 1.0 / static_cast<double>(w.alphabet_size);
  return kernels::bucket_drain_rate(w.symbol_freq, w.level);
}

double spawn_ms(int workers, const CpuCostConstants& c) {
  return workers > 1 ? static_cast<double>(workers) * c.thread_spawn_us * kUsToMs : 0.0;
}

}  // namespace

double predict_cpu_serial_ms(const Workload& w, const CpuCostConstants& c) {
  const double steps = checked_shape(w);
  // Expiry costs twice per scanned symbol (window tracking) plus deadline
  // bookkeeping per match start — except at level 1, where a single-symbol
  // occurrence can never expire mid-match (the same L > 1 guard the
  // Algorithm-5 device model applies to its heap term).
  const double step_ns = w.expiry.enabled() ? c.serial_expiry_step_ns : c.serial_step_ns;
  double ms = steps * step_ns * kNsToMs;
  if (w.expiry.enabled() && w.level > 1) {
    ms += steps * drain_rate(w) / static_cast<double>(w.level) * c.expiry_heap_ns * kNsToMs;
  }
  return ms;
}

double predict_cpu_parallel_ms(const Workload& w, int threads, const CpuCostConstants& c) {
  gm::expects(threads >= 1, "cpu cost model needs a positive thread count");
  const int workers =
      static_cast<int>(std::min<std::int64_t>(threads, w.episode_count));
  return predict_cpu_serial_ms(w, c) / workers + spawn_ms(workers, c);
}

double predict_cpu_sharded_ms(const Workload& w, int threads, const CpuCostConstants& c) {
  gm::expects(threads >= 1, "cpu cost model needs a positive thread count");
  if (w.expiry.enabled()) {
    // Position-dependent transfer functions force the per-episode fallback:
    // the parallel axis degrades to episodes (see ShardedCpuBackend).
    return predict_cpu_parallel_ms(w, threads, c);
  }
  const double steps = checked_shape(w);
  // Each (episode, shard) task steps every entry state (level of them) per
  // shard symbol; shards == threads, so total transfer work is steps * L
  // spread over `threads` workers, plus the sequential compose fold.
  const double map_ms = steps * static_cast<double>(w.level) * c.sharded_step_ns * kNsToMs /
                        static_cast<double>(threads);
  const double fold_ms = static_cast<double>(w.episode_count) *
                         static_cast<double>(threads) * c.fold_step_ns * kNsToMs;
  return map_ms + fold_ms + spawn_ms(threads, c);
}

double predict_cpu_single_scan_ms(const Workload& w, const CpuCostConstants& c) {
  const double steps = checked_shape(w);
  const double db = static_cast<double>(w.db_size);
  if (w.semantics == core::Semantics::kContiguousRestart) {
    // Dense fallback: mismatch edges mean every symbol can advance any
    // automaton, so the bucket index cannot skip work.
    return steps * c.scan_dense_step_ns * kNsToMs;
  }
  const double drains = steps * drain_rate(w);
  double ms = db * c.scan_probe_ns * kNsToMs + drains * c.scan_drain_ns * kNsToMs;
  if (w.expiry.enabled() && w.level > 1) {
    // One deadline push per match start (~drains / level) plus its pop;
    // level-1 occurrences cannot expire mid-match.
    ms += drains / static_cast<double>(w.level) * c.expiry_heap_ns * kNsToMs;
  }
  return ms;
}

double predict_cpu_trie_ms(const Workload& w, const CpuCostConstants& c) {
  const double steps = checked_shape(w);
  const double db = static_cast<double>(w.db_size);
  if (w.semantics == core::Semantics::kContiguousRestart) {
    // Identical dense fallback to cpu-single-scan: the predicted times tie
    // and the deterministic label tie-break hands the flat engine the win.
    return steps * c.scan_dense_step_ns * kNsToMs;
  }
  gm::expects(w.prefix_compression > 0.0 && w.prefix_compression <= 1.0,
              "trie cost model needs prefix_compression in (0, 1]");
  const double rho = w.prefix_compression;
  // Flat drains shrink to token drains by the distinct-prefix mass; accepts
  // (one per completed occurrence, at rate drain_rate / L per episode) stay
  // per-episode.  The curve sits well above cpu-single-scan for realistic
  // prefix masses (trie_drain_ns >> scan_drain_ns: interval-set splits vs an
  // integer step), which is the point — the planner should only leave the
  // flat host engine for the trie when sharing is extreme; the routine
  // shared-prefix win is the device formulation's.
  const double drains = steps * drain_rate(w);
  double ms = db * c.scan_probe_ns * kNsToMs + drains * rho * c.trie_drain_ns * kNsToMs +
              drains / static_cast<double>(w.level) * c.trie_accept_ns * kNsToMs;
  if (w.expiry.enabled() && w.level > 1) {
    // Deadlines ride tokens, not episodes: the heap term compresses too.
    ms += drains * rho / static_cast<double>(w.level) * c.expiry_heap_ns * kNsToMs;
  }
  return ms;
}

double predict_cpu_distrib_ms(const Workload& w, int shards, const CpuCostConstants& c) {
  gm::expects(shards >= 1, "cpu cost model needs a positive shard count");
  const int chunks = shards * kPlannedStealGranularity;

  // Map: each worker cold-scans its claimed chunks with the single-scan
  // engine; stealing keeps the split near-perfect, so divide by shards.
  const double map_ms = predict_cpu_single_scan_ms(w, c) / static_cast<double>(shards);

  // Reduce: one fold step per (episode, chunk), plus the expected serial
  // rescan where a chunk boundary lands inside a live match.
  const double fold_ms = static_cast<double>(w.episode_count) *
                         static_cast<double>(chunks) * c.distrib_merge_ns * kNsToMs;
  const double steal_ms = static_cast<double>(chunks) * c.distrib_steal_ns * kNsToMs;
  return map_ms + fold_ms + distrib_rescan_ms(w, chunks, c) + steal_ms + spawn_ms(shards, c);
}

double distrib_rescan_ms(const Workload& w, int chunks, const CpuCostConstants& c) {
  gm::expects(chunks >= 1, "cpu cost model needs a positive chunk count");
  // Under expiry the twin replay converges within the window (a live match
  // older than the window resets); without it, within roughly one automaton
  // reset distance (level * alphabet symbols between drains).  Both are
  // capped by the chunk itself.
  const double chunk_symbols =
      static_cast<double>(w.db_size) / static_cast<double>(chunks);
  const double reset_distance = w.expiry.enabled()
                                    ? static_cast<double>(w.expiry.window)
                                    : static_cast<double>(w.level) *
                                          static_cast<double>(w.alphabet_size);
  return static_cast<double>(w.episode_count) * static_cast<double>(chunks - 1) *
         std::min(reset_distance, chunk_symbols) * c.distrib_rescan_ns * kNsToMs;
}

}  // namespace gm::planner

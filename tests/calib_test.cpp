// The CalibrationProfile subsystem's contract: the default profile is the
// shipped constants and predicts bit-identically to the constant-free call
// paths; the registry covers every fittable field; JSON persistence
// round-trips losslessly; and the fitter recovers perturbed constants from
// synthetic measurements without ever going negative.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "calib/calibration.hpp"
#include "calib/fitter.hpp"
#include "common/error.hpp"
#include "kernels/workload_model.hpp"
#include "planner/cpu_cost_model.hpp"
#include "planner/planner.hpp"
#include "sim/device_spec.hpp"

namespace gm::calib {
namespace {

planner::Workload cpu_workload() {
  planner::Workload w;
  w.db_size = 1'000'000;
  w.episode_count = 120;
  w.level = 3;
  w.alphabet_size = 64;
  return w;
}

/// Perturb every parameter deterministically (and keep it positive).
CalibrationProfile perturbed_profile() {
  CalibrationProfile profile;
  int i = 0;
  for (const ParamRef& param : calibration_params()) {
    const double shipped = get_param(profile, param.name);
    set_param(profile, param.name, shipped * (1.0 + 0.0137 * ++i) + 1.0 / 3.0);
  }
  profile.source = "fitted";
  profile.host = "unit-test \"host\"\n(escaped)";
  profile.sample_count = 42;
  return profile;
}

TEST(CalibrationProfile, RegistryCoversEveryConstant) {
  // 13 kernel instruction charges + 14 CPU cost constants.  If this fails
  // after adding a field to either struct, add the matching registry row
  // (and nothing else: JSON I/O and the fitter pick it up from there).
  EXPECT_EQ(calibration_params().size(), 27u);
  std::set<std::string_view> names;
  for (const ParamRef& param : calibration_params()) {
    EXPECT_TRUE(names.insert(param.name).second) << "duplicate: " << param.name;
    EXPECT_TRUE(param.name.starts_with("kernel.") || param.name.starts_with("cpu."))
        << param.name;
  }
}

TEST(CalibrationProfile, DefaultIsTheShippedConstants) {
  const CalibrationProfile profile;
  EXPECT_EQ(profile.source, "shipped");
  EXPECT_EQ(profile.sample_count, 0);
  EXPECT_DOUBLE_EQ(profile.kernel.unbuffered_scan_instr, kernels::kUnbufferedScanInstr);
  EXPECT_DOUBLE_EQ(profile.kernel.expiry_heap_instr, kernels::kExpiryHeapInstr);
  EXPECT_DOUBLE_EQ(profile.cpu.serial_step_ns, planner::CpuCostConstants{}.serial_step_ns);
  EXPECT_DOUBLE_EQ(get_param(profile, "kernel.bucket_probe_instr"),
                   kernels::kBucketProbeInstr);
  EXPECT_THROW((void)get_param(profile, "kernel.no_such_param"), gm::PreconditionError);
}

TEST(CalibrationProfile, DefaultProfilePredictsBitIdentically) {
  // The tentpole pin: threading the profile through the models must not
  // move a single bit when the defaults are used.
  const auto device = gpusim::geforce_gtx_280();
  for (const kernels::Algorithm algorithm : kernels::all_algorithms()) {
    kernels::WorkloadSpec spec;
    spec.db_size = 40'007;
    spec.episode_count = 650;
    spec.level = 2;
    spec.alphabet_size = 26;
    spec.params.algorithm = algorithm;
    spec.params.threads_per_block = 96;

    const auto implicit_profile = aggregate(kernels::model_profile(device, spec));
    const auto explicit_profile =
        aggregate(kernels::model_profile(device, spec, kernels::KernelCostProfile{}));
    EXPECT_EQ(implicit_profile.warp_instructions, explicit_profile.warp_instructions);
    EXPECT_EQ(implicit_profile.lane_instructions, explicit_profile.lane_instructions);
    EXPECT_EQ(implicit_profile.tex_requests, explicit_profile.tex_requests);
    EXPECT_EQ(implicit_profile.shared_requests, explicit_profile.shared_requests);
    EXPECT_EQ(implicit_profile.global_requests, explicit_profile.global_requests);

    const gpusim::CostModel model;
    EXPECT_EQ(kernels::predict_mining_time(device, spec, model).total_ms,
              kernels::predict_mining_time(device, spec, model, {}).total_ms);
  }

  const planner::Workload w = cpu_workload();
  EXPECT_EQ(planner::predict_cpu_serial_ms(w),
            planner::predict_cpu_serial_ms(w, planner::CpuCostConstants{}));
  // And the curve itself stays the shipped closed form: steps * step_ns.
  EXPECT_DOUBLE_EQ(planner::predict_cpu_serial_ms(w),
                   static_cast<double>(w.db_size) * static_cast<double>(w.episode_count) *
                       1.1 * 1e-6);
}

TEST(CalibrationProfile, KernelChargesActuallyFlowThroughTheModel) {
  const auto device = gpusim::geforce_gtx_280();
  kernels::WorkloadSpec spec;
  spec.db_size = 10'000;
  spec.episode_count = 512;
  spec.level = 2;
  spec.alphabet_size = 32;
  spec.params.algorithm = kernels::Algorithm::kBlockBucketed;
  spec.params.threads_per_block = 64;

  kernels::KernelCostProfile doubled;
  doubled.bucket_probe_instr *= 2.0;
  const auto shipped = aggregate(kernels::model_profile(device, spec));
  const auto scaled = aggregate(kernels::model_profile(device, spec, doubled));
  // One extra charge per scanned position per owning thread, nothing else.
  EXPECT_GT(scaled.lane_instructions, shipped.lane_instructions);
  EXPECT_EQ(scaled.tex_requests, shipped.tex_requests);
  EXPECT_EQ(scaled.global_requests, shipped.global_requests);
}

TEST(CalibrationProfile, JsonRoundTripIsLossless) {
  const CalibrationProfile original = perturbed_profile();
  const std::string text = to_json(original);
  const CalibrationProfile loaded = profile_from_json(text);
  for (const ParamRef& param : calibration_params()) {
    EXPECT_EQ(get_param(loaded, param.name), get_param(original, param.name))
        << param.name;  // bitwise: the writer emits shortest-round-trip doubles
  }
  EXPECT_EQ(loaded.source, original.source);
  EXPECT_EQ(loaded.host, original.host);
  EXPECT_EQ(loaded.sample_count, original.sample_count);
  // Serialize -> parse -> serialize is a fixed point.
  EXPECT_EQ(to_json(loaded), text);
}

TEST(CalibrationProfile, JsonRejectsWrongSchemaUnknownParamsAndNegatives) {
  EXPECT_THROW((void)profile_from_json(R"({"params":{}})"), gm::PreconditionError);
  EXPECT_THROW((void)profile_from_json(R"({"schema":"gm-calibration/999","params":{}})"),
               gm::PreconditionError);
  EXPECT_THROW(
      (void)profile_from_json(
          R"({"schema":"gm-calibration/1","params":{"kernel.typo_instr":3}})"),
      gm::PreconditionError);
  EXPECT_THROW(
      (void)profile_from_json(
          R"({"schema":"gm-calibration/1","params":{"cpu.serial_step_ns":-1}})"),
      gm::PreconditionError);
  // Missing params keep their shipped defaults (forward compatibility).
  const CalibrationProfile partial = profile_from_json(
      R"({"schema":"gm-calibration/1","params":{"cpu.serial_step_ns":2.5}})");
  EXPECT_DOUBLE_EQ(partial.cpu.serial_step_ns, 2.5);
  EXPECT_DOUBLE_EQ(partial.cpu.scan_drain_ns, planner::CpuCostConstants{}.scan_drain_ns);
}

TEST(CalibrationProfile, ApplyInstallsBothConstantBlocks) {
  const CalibrationProfile profile = perturbed_profile();
  planner::PlannerOptions options;
  apply_profile(profile, options);
  EXPECT_DOUBLE_EQ(options.cpu_constants.scan_drain_ns, profile.cpu.scan_drain_ns);
  EXPECT_DOUBLE_EQ(options.kernel_costs.bucket_probe_instr,
                   profile.kernel.bucket_probe_instr);

  // And the planner's scored table moves with the applied constants.
  planner::PlannerOptions shipped;
  shipped.cpu_threads = 4;
  shipped.enable_gpu = false;
  planner::PlannerOptions fitted = shipped;
  apply_profile(profile, fitted);
  const planner::Workload w = cpu_workload();
  const auto find_serial = [](const planner::Plan& plan) {
    for (const auto& c : plan.table) {
      if (c.config.kind == planner::BackendKind::kCpuSerial) return c.predicted_ms;
    }
    return -1.0;
  };
  const double shipped_ms = find_serial(plan_level(w, shipped));
  const double fitted_ms = find_serial(plan_level(w, fitted));
  EXPECT_DOUBLE_EQ(fitted_ms / shipped_ms, profile.cpu.serial_step_ns / 1.1);
}

TEST(CalibrationProfile, MeasuredBiasReordersThePlan) {
  // The AutoBackend feedback path: a large measured bias on the would-be
  // winner must flip the pick, and the note must say the prediction is
  // biased.
  planner::PlannerOptions options;
  options.cpu_threads = 4;
  options.enable_gpu = false;
  const planner::Workload w = cpu_workload();
  const std::string winner = plan_level(w, options).winner().config.label();

  options.measured_bias[winner] = 1000.0;
  const planner::Plan biased = plan_level(w, options);
  EXPECT_NE(biased.winner().config.label(), winner);
  for (const auto& c : biased.table) {
    if (c.config.label() == winner) {
      EXPECT_NE(c.reason.find("measured bias"), std::string::npos) << c.reason;
    }
  }
}

// ---------------------------------------------------------------------------
// Fitter
// ---------------------------------------------------------------------------

std::vector<FitSample> synthetic_cpu_samples(const CalibrationProfile& truth) {
  std::vector<FitSample> samples;
  // Shapes chosen so each constant is identifiable: serial samples pin
  // serial_step_ns, single-scan samples split probe/drain via different
  // alphabet sizes, dense samples pin scan_dense_step_ns.
  for (const std::int64_t db : {400'000, 1'000'000, 2'500'000}) {
    for (const int alphabet : {32, 128}) {
      planner::Workload w;
      w.db_size = db;
      w.episode_count = 160;
      w.level = 3;
      w.alphabet_size = alphabet;

      FitSample serial;
      serial.workload = w;
      serial.config.kind = planner::BackendKind::kCpuSerial;
      samples.push_back(serial);

      FitSample scan;
      scan.workload = w;
      scan.config.kind = planner::BackendKind::kCpuSingleScan;
      samples.push_back(scan);

      FitSample dense;
      dense.workload = w;
      dense.workload.semantics = core::Semantics::kContiguousRestart;
      dense.config.kind = planner::BackendKind::kCpuSingleScan;
      samples.push_back(dense);
    }
  }
  for (FitSample& sample : samples) {
    sample.measured_ms = predict_sample_ms(truth, sample);
  }
  return samples;
}

TEST(CalibrationFitter, RecoversPerturbedCpuConstantsFromSyntheticSamples) {
  CalibrationProfile truth;
  truth.cpu.serial_step_ns = 3.3;       // 3x the shipped 1.1
  truth.cpu.scan_drain_ns = 30.0;       // just under 2x the shipped 16.0
  truth.cpu.scan_dense_step_ns = 0.75;  // well under the shipped 1.2
  const std::vector<FitSample> samples = synthetic_cpu_samples(truth);

  CalibrationProfile fitted;
  const FitReport report = fit_profile(fitted, samples);
  EXPECT_GT(report.initial_loss, 0.0);
  EXPECT_LT(report.final_loss, report.initial_loss * 0.01);
  EXPECT_EQ(fitted.source, "fitted");
  EXPECT_EQ(fitted.sample_count, static_cast<int>(samples.size()));
  EXPECT_FALSE(report.adjusted.empty());

  EXPECT_NEAR(fitted.cpu.serial_step_ns, 3.3, 0.1);
  EXPECT_NEAR(fitted.cpu.scan_dense_step_ns, 0.75, 0.05);
  // Untouched-by-any-sample constants keep their shipped values.
  EXPECT_DOUBLE_EQ(fitted.cpu.thread_spawn_us,
                   planner::CpuCostConstants{}.thread_spawn_us);
  // A refit on the same samples is stable (no drift on re-entry).
  CalibrationProfile refitted = fitted;
  const FitReport again = fit_profile(refitted, samples);
  EXPECT_LE(again.final_loss, report.final_loss * 1.01 + 1e-12);
}

TEST(CalibrationFitter, LowersLossOnGpuKernelSamples) {
  CalibrationProfile truth;
  truth.kernel.bucket_probe_instr = 6.0;  // 2x shipped
  truth.kernel.bucket_drain_instr = 9.0;  // 3x shipped

  std::vector<FitSample> samples;
  for (const int tpb : {32, 64}) {
    for (const int alphabet : {16, 64}) {
      FitSample sample;
      sample.workload.db_size = 30'000;
      sample.workload.episode_count = 640;
      sample.workload.level = 2;
      sample.workload.alphabet_size = alphabet;
      sample.config.kind = planner::BackendKind::kGpuSim;
      sample.config.algorithm = kernels::Algorithm::kBlockBucketed;
      sample.config.threads_per_block = tpb;
      sample.device = gpusim::geforce_gtx_280();
      sample.measured_ms = predict_sample_ms(truth, sample);
      samples.push_back(std::move(sample));
    }
  }

  CalibrationProfile fitted;
  const FitReport report = fit_profile(fitted, samples);
  EXPECT_LT(report.final_loss, report.initial_loss * 0.25);
  // The charge terms are collinear (several raise per-symbol work the same
  // way), so individual constants are not identifiable — but the fitted
  // *predictions* must land on the measurements.
  for (const FitSample& sample : samples) {
    EXPECT_NEAR(predict_sample_ms(fitted, sample) / sample.measured_ms, 1.0, 0.03);
  }
}

TEST(CalibrationFitter, StaysNonNegativeOnZeroMeasurements) {
  // Measured times of zero pull every exercised constant toward the lower
  // bound; the bound is 0, never below.
  std::vector<FitSample> samples;
  FitSample sample;
  sample.workload = cpu_workload();
  sample.config.kind = planner::BackendKind::kCpuSerial;
  sample.measured_ms = 0.0;
  samples.push_back(sample);

  CalibrationProfile fitted;
  (void)fit_profile(fitted, samples);
  for (const ParamRef& param : calibration_params()) {
    EXPECT_GE(get_param(fitted, param.name), 0.0) << param.name;
  }
  EXPECT_LT(fitted.cpu.serial_step_ns, 1.1);
}

TEST(CalibrationFitter, RejectsDegenerateInputs) {
  CalibrationProfile profile;
  EXPECT_THROW((void)fit_profile(profile, {}), gm::PreconditionError);

  FitSample bad;
  bad.workload = cpu_workload();
  bad.config.kind = planner::BackendKind::kCpuSerial;
  bad.measured_ms = -1.0;
  std::vector<FitSample> samples = {bad};
  EXPECT_THROW((void)fit_profile(profile, samples), gm::PreconditionError);

  samples[0].measured_ms = 1.0;
  samples[0].weight = 0.0;
  EXPECT_THROW((void)fit_profile(profile, samples), gm::PreconditionError);
}

}  // namespace
}  // namespace gm::calib

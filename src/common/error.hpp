// Error-handling primitives shared by every gpuminer module.
//
// Style follows the C++ Core Guidelines: preconditions are checked with
// `expects()`, postconditions/invariants with `ensure()`, both of which throw
// typed exceptions carrying a formatted message.  No macros; call sites pass
// context strings explicitly.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gm {

/// Base class for all gpuminer errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition of a public API.
class PreconditionError : public Error {
 public:
  explicit PreconditionError(const std::string& what) : Error(what) {}
};

/// An internal invariant failed (a bug in this library, not the caller).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error(what) {}
};

/// The simulated device rejected an operation (e.g. launch config exceeds
/// hardware limits, or an atomic op unsupported at this compute capability).
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error(what) {}
};

[[noreturn]] void raise_precondition(std::string_view message,
                                     std::source_location loc = std::source_location::current());
[[noreturn]] void raise_invariant(std::string_view message,
                                  std::source_location loc = std::source_location::current());
[[noreturn]] void raise_device(std::string_view message,
                               std::source_location loc = std::source_location::current());

/// Check a documented precondition of a public entry point.
inline void expects(bool condition, std::string_view message,
                    std::source_location loc = std::source_location::current()) {
  if (!condition) raise_precondition(message, loc);
}

/// Check an internal invariant.
inline void ensure(bool condition, std::string_view message,
                   std::source_location loc = std::source_location::current()) {
  if (!condition) raise_invariant(message, loc);
}

}  // namespace gm

// Kernel launch geometry: CUDA-style dim3 grids/blocks plus per-launch
// resource declarations (shared memory, registers per thread).
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace gpusim {

/// CUDA dim3: up to three logical dimensions, each >= 1.
struct Dim3 {
  int x = 1;
  int y = 1;
  int z = 1;

  constexpr Dim3() = default;
  constexpr Dim3(int x_, int y_ = 1, int z_ = 1) : x(x_), y(y_), z(z_) {}

  [[nodiscard]] constexpr std::int64_t count() const noexcept {
    return static_cast<std::int64_t>(x) * y * z;
  }
  friend bool operator==(Dim3, Dim3) = default;
};

/// Full description of one kernel launch.
struct LaunchConfig {
  Dim3 grid{1};
  Dim3 block{1};
  /// Dynamic shared memory requested per block, in bytes.
  int shared_mem_per_block = 0;
  /// Registers consumed per thread (compiler-reported in real CUDA; declared
  /// by the kernel here).  Drives the occupancy calculation.
  int registers_per_thread = 16;

  [[nodiscard]] std::int64_t total_blocks() const noexcept { return grid.count(); }
  [[nodiscard]] std::int64_t threads_per_block() const noexcept { return block.count(); }
  [[nodiscard]] std::int64_t total_threads() const noexcept {
    return total_blocks() * threads_per_block();
  }
};

/// Linear indices handed to kernels; mirrors threadIdx/blockIdx flattening.
struct ThreadCoordinates {
  int block_index = 0;   ///< linearized blockIdx
  int thread_index = 0;  ///< linearized threadIdx within the block
  int block_dim = 1;     ///< threads per block
  int grid_dim = 1;      ///< blocks in grid

  [[nodiscard]] constexpr int global_thread() const noexcept {
    return block_index * block_dim + thread_index;
  }
  [[nodiscard]] constexpr int warp_in_block(int warp_size) const noexcept {
    return thread_index / warp_size;
  }
  [[nodiscard]] constexpr int lane(int warp_size) const noexcept {
    return thread_index % warp_size;
  }
};

}  // namespace gpusim

// gminer_cli — a command-line frequent-episode miner over the public API,
// the "tool a downstream user would actually run".
//
//   gminer_cli [options] [dataset.txt]
//     --backend <name>             counting backend       (default gpusim;
//                                  names from service::backend_names();
//                                  "auto" re-plans the formulation at every
//                                  mining level from the analytic cost models)
//     --threads <n>                CPU backend threads, 0 = hw (default 0)
//     --shards <n>                 distrib backends: shard/device count
//                                  (0 = hw threads, or 2 cards for
//                                  distrib-gpu); with "auto": score distrib
//                                  candidates at 1..n devices (default 0)
//     --card <8800|gx2|gtx280>     simulated card         (default gtx280)
//     --algo <1|2|3|4|5>           GPU algorithm          (default 3;
//                                  5 = block-bucketed single-scan)
//     --explain                    with --backend auto: dump each level's
//                                  full planner decision table to stderr
//     --calibration <file>         with --backend auto: load a fitted
//                                  calibration profile (see backend_shootout
//                                  --fit-calibration) instead of the shipped
//                                  cost constants
//     --tpb <n>                    threads per block      (default 64)
//     --support <alpha>            support threshold      (default 0.001)
//     --max-level <L>              episode length bound   (default 3)
//     --expiry <W>                 expiry window, 0 = off (default 0)
//     --semantics <subseq|contig>  counting semantics     (default subseq)
//     --cpu                        alias for --backend cpu-serial
//     --demo                       run on a built-in synthetic dataset
//
// Numeric flags are parsed with std::from_chars and rejected with an error
// naming the flag when non-numeric or out of range (std::atoi would silently
// turn garbage into 0).  Without a dataset argument, reads the dataset
// format (see data/dataset_io.hpp) from stdin.
#include <cstring>
#include <iostream>
#include <limits>
#include <memory>
#include <string>

#include "bench_support/cli_args.hpp"
#include "core/miner.hpp"
#include "data/dataset_io.hpp"
#include "data/generators.hpp"
#include "planner/auto_backend.hpp"
#include "service/backend_factory.hpp"

namespace {

void print_usage(std::ostream& out, const char* argv0) {
  out << "usage: " << argv0
      << " [--backend <name>] [--threads N] [--shards N] [--card 8800|gx2|gtx280]\n"
         "       [--algo 1..5] [--tpb N] [--support A] [--max-level L] [--expiry W]\n"
         "       [--semantics subseq|contig] [--cpu] [--demo] [--explain]\n"
         "       [--calibration profile.json] [dataset.txt]\n"
         "backends:";
  for (const auto name : gm::service::backend_names()) out << " " << name;
  out << "\n";
}

// Bad invocation: usage goes to stderr and the exit status is 2.  An explicit
// --help prints to stdout and exits 0 (handled at the call site).
int usage(const char* argv0) {
  print_usage(std::cerr, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gm;

  std::string backend_name = "gpusim";
  int threads = 0;
  int shards = 0;
  std::string card = "gtx280";
  int algo = 3;
  int tpb = 64;
  double support = 0.001;
  int max_level = 3;
  std::int64_t expiry = 0;
  bool demo = false;
  bool explain = false;
  std::string calibration_path;
  std::string semantics_name = "subseq";
  std::string dataset_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::cerr << arg << " needs a value\n";
          std::exit(usage(argv[0]));
        }
        return argv[++i];
      };
      if (arg == "--backend") backend_name = next();
      else if (arg == "--threads") threads = bench::parse_int(arg, next(), 0, 1 << 20);
      else if (arg == "--shards") shards = bench::parse_int(arg, next(), 0, 1 << 10);
      else if (arg == "--card") card = next();
      else if (arg == "--algo") algo = bench::parse_int(arg, next(), 1, 5);
      else if (arg == "--tpb") tpb = bench::parse_int(arg, next(), 1, 1 << 16);
      else if (arg == "--support") support = bench::parse_double(arg, next(), 0.0, 1.0);
      else if (arg == "--max-level") max_level = bench::parse_int(arg, next(), 0, 255);
      else if (arg == "--expiry")
        expiry = bench::parse_int64(arg, next(), 0, std::numeric_limits<std::int64_t>::max());
      else if (arg == "--semantics") {
        semantics_name = next();
        if (semantics_name != "subseq" && semantics_name != "contig") {
          throw bench::UsageError("--semantics expects 'subseq' or 'contig', got '" +
                                  semantics_name + "'");
        }
      }
      else if (arg == "--calibration") calibration_path = next();
      else if (arg == "--cpu") backend_name = "cpu-serial";
      else if (arg == "--demo") demo = true;
      else if (arg == "--explain") explain = true;
      else if (arg == "--help" || arg == "-h") {
        print_usage(std::cout, argv[0]);
        return 0;
      }
      else if (!arg.empty() && arg[0] == '-') return usage(argv[0]);
      else dataset_path = arg;
    }
  } catch (const gm::PreconditionError& e) {
    // A malformed flag value is a bad invocation (exit 2), not a data error.
    std::cerr << "error: " << e.what() << "\n";
    return usage(argv[0]);
  }

  try {
    data::Dataset dataset;
    if (demo) {
      dataset.alphabet = core::Alphabet::english_uppercase();
      dataset.events = data::uniform_database(dataset.alphabet, 50'000, 99);
    } else if (!dataset_path.empty()) {
      dataset = data::load_dataset(dataset_path);
    } else {
      dataset = data::read_dataset(std::cin);
    }
    std::cerr << "dataset: " << dataset.events.size() << " events over "
              << dataset.alphabet.size() << " symbols\n";

    core::MinerConfig config;
    config.support_threshold = support;
    config.max_level = max_level;
    config.expiry = core::ExpiryPolicy{expiry};
    if (semantics_name == "contig") {
      config.semantics = core::Semantics::kContiguousRestart;
    }

    if (!calibration_path.empty() && backend_name != "auto") {
      std::cerr << "error: --calibration only applies to --backend auto\n";
      return usage(argv[0]);
    }
    service::BackendSpec spec;
    spec.name = backend_name;
    spec.threads = threads;
    spec.shards = shards;
    spec.card = card;
    spec.launch.algorithm = static_cast<kernels::Algorithm>(algo);
    spec.launch.threads_per_block = tpb;
    spec.calibration = calibration_path;
    std::unique_ptr<core::CountingBackend> backend;
    try {
      backend = service::make_backend(spec);
    } catch (const gm::PreconditionError& e) {
      // An unknown backend name is a bad invocation (exit 2), not a data error.
      std::cerr << "error: " << e.what() << "\n";
      return usage(argv[0]);
    }
    std::cerr << "backend: " << backend->name() << "\n";

    const auto result =
        core::mine_frequent_episodes(dataset.events, dataset.alphabet, *backend, config);

    // With --backend auto, report what the planner picked at each level (the
    // winning formulation flips as the candidate set shrinks); --explain
    // additionally dumps the full per-level decision tables.
    const auto* adaptive = dynamic_cast<const planner::AutoBackend*>(backend.get());

    for (const auto& level : result.levels) {
      std::cerr << "level " << level.level << ": " << level.candidates << " candidates -> "
                << level.frequent << " frequent";
      if (level.simulated_kernel_ms > 0) {
        std::cerr << " (simulated kernel " << level.simulated_kernel_ms << " ms)";
      }
      std::cerr << "\n";
      if (adaptive != nullptr) {
        const std::size_t i = static_cast<std::size_t>(level.level) - 1;
        if (i < adaptive->plans().size()) {
          const planner::Plan& plan = adaptive->plans()[i];
          std::cerr << "  plan: " << plan.explanation << "\n";
          if (explain) std::cerr << planner::format_plan(plan);
        }
      }
    }

    // Results to stdout: one "episode count support" row each.
    for (const auto& f : result.frequent) {
      std::cout << f.episode.to_string(dataset.alphabet) << " " << f.count << " "
                << f.support << "\n";
    }
    return 0;
  } catch (const gm::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}

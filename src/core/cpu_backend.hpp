// CPU counting backends: the serial single-core reference (the GMiner-class
// baseline the paper motivates against) and an episode-parallel std::thread
// implementation (the fair multicore comparator).
#pragma once

#include "core/counting.hpp"

namespace gm::core {

/// One automaton pass per episode on the calling thread.
class SerialCpuBackend final : public CountingBackend {
 public:
  [[nodiscard]] std::string name() const override { return "cpu-serial"; }
  [[nodiscard]] CountResult count(const CountRequest& request) override;
};

/// Episodes partitioned across `threads` host threads (thread-level
/// parallelism in the paper's taxonomy: one worker = one episode at a time,
/// identity reduce).
class ParallelCpuBackend final : public CountingBackend {
 public:
  /// `threads` = 0 picks the hardware concurrency.
  explicit ParallelCpuBackend(int threads = 0);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] CountResult count(const CountRequest& request) override;

  [[nodiscard]] int threads() const noexcept { return threads_; }

 private:
  int threads_;
};

}  // namespace gm::core

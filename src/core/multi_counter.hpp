// Single-scan multi-episode counting engine.
//
// The serial reference (`count_all`) re-scans the full database once per
// episode, so level-L counting costs O(|DB| * |candidates|) automaton steps.
// This engine makes ONE pass over the event stream and advances *all* episode
// automata simultaneously through a symbol -> waiting-automata bucket index:
// each automaton is filed under the symbol it is currently waiting for, so the
// work per stream symbol is proportional to the automata actually awaiting
// that symbol (|candidates| / |alphabet| in expectation) instead of
// |candidates|.  This is the accelerator-oriented transformation of the
// counting step — one stream drive, many machines — applied on the host.
//
// Episode expiry (ExpiryPolicy) is handled with lazy deadlines: starting a
// match schedules `first_pos + window` on a min-heap, and before each stream
// position every automaton whose deadline has passed is reset and re-bucketed
// to await episode[0] again (it must be able to catch a fresh first symbol
// even though its old awaited symbol never arrived).  Stale bucket entries
// left behind by expiry are invalidated by a per-automaton generation counter.
//
// kContiguousRestart semantics are served by a dense per-episode path: its
// mismatch edges mean *every* symbol can transition any in-flight automaton,
// so a waiting-symbol index cannot skip work.  The dense path still reads the
// database once, stepping each automaton per symbol.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "core/episode.hpp"

namespace gm::core {

/// Count every episode in one pass over `database`.  Exactly equals
/// `count_occurrences(episodes[i], ...)` element-for-element for all inputs.
[[nodiscard]] std::vector<std::int64_t> count_all_single_scan(
    std::span<const Episode> episodes, std::span<const Symbol> database, Semantics semantics,
    ExpiryPolicy expiry = {});

/// Per-episode automaton configuration at scan end, exactly what the serial
/// automaton would hold after stepping the same span (expiry resets happen at
/// step time in both engines, so a deadline maturing past the last position
/// leaves the state intact in both).  Positions are relative to the scanned
/// span; callers folding chunk scans normalize by the chunk offset.
struct ScanExit {
  int state = 0;
  std::int64_t first_match_pos = 0;
};

/// Single-scan counting that also reports each episode's exit configuration
/// (the distrib layer's cold-scan worker).  `exits` is resized to the episode
/// count.  Counts equal the plain overload exactly.
[[nodiscard]] std::vector<std::int64_t> count_all_single_scan(
    std::span<const Episode> episodes, std::span<const Symbol> database, Semantics semantics,
    ExpiryPolicy expiry, std::vector<ScanExit>& exits);

}  // namespace gm::core

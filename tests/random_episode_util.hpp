// Shared test helper: random episode lists for the randomized backend
// equivalence suites.  Repeats are allowed on purpose — repeated-symbol
// episodes exercise the single-scan engine's re-file-into-the-swapped-out
// bucket path and the automaton's greedy consumption.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/episode.hpp"

namespace gm::core::test {

inline std::vector<Episode> random_episodes(Rng& rng, int alphabet_size, int count,
                                            int max_level) {
  std::vector<Episode> episodes;
  episodes.reserve(static_cast<std::size_t>(count));
  for (int e = 0; e < count; ++e) {
    const auto level = static_cast<int>(rng.between(1, max_level));
    std::vector<Symbol> symbols;
    symbols.reserve(static_cast<std::size_t>(level));
    for (int i = 0; i < level; ++i) {
      symbols.push_back(
          static_cast<Symbol>(rng.below(static_cast<std::uint64_t>(alphabet_size))));
    }
    episodes.emplace_back(std::move(symbols));
  }
  return episodes;
}

}  // namespace gm::core::test

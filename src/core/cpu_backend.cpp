#include "core/cpu_backend.hpp"

#include <atomic>
#include <chrono>
#include <thread>

#include "common/error.hpp"
#include "core/serial_counter.hpp"

namespace gm::core {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

CountResult SerialCpuBackend::count(const CountRequest& request) {
  const auto start = Clock::now();
  CountResult result;
  result.counts = count_all(request.episodes, request.database, request.semantics,
                            request.expiry);
  result.host_ms = elapsed_ms(start);
  return result;
}

ParallelCpuBackend::ParallelCpuBackend(int threads)
    : threads_(threads > 0 ? threads
                           : static_cast<int>(std::thread::hardware_concurrency())) {
  if (threads_ <= 0) threads_ = 1;
}

std::string ParallelCpuBackend::name() const {
  return "cpu-parallel-x" + std::to_string(threads_);
}

CountResult ParallelCpuBackend::count(const CountRequest& request) {
  const auto start = Clock::now();
  CountResult result;
  result.counts.assign(request.episodes.size(), 0);

  const int workers = std::min<int>(threads_, std::max<std::size_t>(request.episodes.size(), 1));
  std::atomic<std::size_t> next{0};
  auto work = [&]() {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= request.episodes.size()) return;
      result.counts[i] = count_occurrences(request.episodes[i], request.database,
                                           request.semantics, request.expiry);
    }
  };

  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(work);
    for (auto& t : pool) t.join();
  }
  result.host_ms = elapsed_ms(start);
  return result;
}

}  // namespace gm::core

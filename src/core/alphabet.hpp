// Symbol alphabet for temporal databases.
//
// The paper's evaluation uses the 26 upper-case English letters; neuroscience
// workloads use one symbol per recorded neuron.  Symbols are dense 8-bit ids
// so a database is simply a contiguous byte sequence (cheap to place in
// simulated texture memory).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gm::core {

/// One event type (letter / neuron id).
using Symbol = std::uint8_t;

/// An ordered event database D = d1..dn (paper section 3.1).
using Sequence = std::vector<Symbol>;

class Alphabet {
 public:
  /// Alphabet of `size` symbols with ids 0..size-1.  1 <= size <= 255.
  explicit Alphabet(int size);

  /// The paper's alphabet: 'A'..'Z'.
  [[nodiscard]] static Alphabet english_uppercase() { return Alphabet(26); }

  [[nodiscard]] int size() const noexcept { return size_; }
  [[nodiscard]] bool contains(Symbol s) const noexcept { return s < size_; }

  /// Printable form of a symbol: 'A'.. for small alphabets, "s<N>" otherwise.
  [[nodiscard]] std::string symbol_name(Symbol s) const;

  /// Parse a text database (e.g. "ABCAB") into a Sequence.
  /// Throws gm::PreconditionError on characters outside the alphabet.
  [[nodiscard]] Sequence parse(std::string_view text) const;

  /// Render a sequence back to text (small alphabets only).
  [[nodiscard]] std::string format(const Sequence& seq) const;

 private:
  int size_;
};

}  // namespace gm::core

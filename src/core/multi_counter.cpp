#include "core/multi_counter.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace gm::core {
namespace {

// One episode automaton flattened for the bucket index.  `gen` invalidates
// bucket entries left behind when the automaton moves without being processed
// from its bucket (expiry re-bucketing).
struct Slot {
  std::span<const Symbol> episode;
  std::int64_t count = 0;
  std::int64_t first_pos = 0;
  std::uint64_t gen = 0;  // 64-bit: cannot wrap within an int64-indexed stream
  int state = 0;
};

struct BucketEntry {
  std::uint32_t slot = 0;
  std::uint64_t gen = 0;
};

// Pending expiry deadline for slot `slot`'s in-flight match.  Validated on
// pop against the slot's live first_pos (a completed-and-restarted match has
// a different deadline), so no generation is needed here.
struct Deadline {
  std::int64_t at = 0;
  std::uint32_t slot = 0;
  friend bool operator>(const Deadline& a, const Deadline& b) { return a.at > b.at; }
};

// Deadlines are first_pos + window with a user-supplied window, so saturate
// instead of overflowing: a deadline at int64 max never fires, exactly like
// any window longer than the remaining stream.
std::int64_t deadline_at(std::int64_t first_pos, std::int64_t window) {
  return first_pos > std::numeric_limits<std::int64_t>::max() - window
             ? std::numeric_limits<std::int64_t>::max()
             : first_pos + window;
}

}  // namespace

// Engine state behind MultiCounter.  The dense path (kContiguousRestart,
// whose mismatch edges let any symbol transition any in-flight automaton and
// so defeat a waiting-symbol index) keeps one automaton per episode; the
// sparse path keeps the symbol -> waiting-slot bucket index.
struct MultiCounter::Impl {
  Semantics semantics = Semantics::kNonOverlappedSubsequence;
  ExpiryPolicy expiry;

  // Sparse path.
  std::vector<Slot> slots;
  std::vector<std::vector<BucketEntry>> buckets;  // direct-mapped: Symbol is 8-bit
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<>> deadlines;
  std::vector<BucketEntry> scratch;

  // Dense fallback.
  std::vector<EpisodeAutomaton> dense_automata;
  std::vector<std::int64_t> dense_counts;

  [[nodiscard]] bool dense() const { return !dense_automata.empty(); }

  void advance_sparse(Symbol s, std::int64_t pos) {
    // Expire matches that can no longer finish by this position: the serial
    // automaton resets them at step time, so they must be back in their
    // episode[0] bucket before this symbol is dispatched.
    if (expiry.enabled()) {
      while (!deadlines.empty() && deadlines.top().at <= pos) {
        const Deadline d = deadlines.top();
        deadlines.pop();
        Slot& slot = slots[d.slot];
        if (slot.state > 0 && deadline_at(slot.first_pos, expiry.window) == d.at) {
          slot.state = 0;
          ++slot.gen;  // the entry still filed under the old awaited symbol dies
          buckets[slot.episode[0]].push_back({d.slot, slot.gen});
        }
      }
    }

    auto& bucket = buckets[s];
    if (bucket.empty()) return;
    // Swap the bucket out before advancing: an automaton whose next awaited
    // symbol is also `s` (repeated-symbol episode) must re-file for the NEXT
    // occurrence, not be stepped twice on this one.
    scratch.swap(bucket);
    for (const BucketEntry entry : scratch) {
      Slot& slot = slots[entry.slot];
      if (slot.gen != entry.gen) continue;  // stale: expired/re-bucketed since
      if (slot.state == 0) {
        slot.first_pos = pos;
        // Level-1 episodes complete in this same step, so a deadline could
        // never fire usefully — don't flood the heap with one per match.
        if (expiry.enabled() && slot.episode.size() > 1) {
          deadlines.push({deadline_at(pos, expiry.window), entry.slot});
        }
      }
      ++slot.state;
      ++slot.gen;
      if (slot.state == static_cast<int>(slot.episode.size())) {
        ++slot.count;
        slot.state = 0;
      }
      buckets[slot.episode[static_cast<std::size_t>(slot.state)]].push_back(
          {entry.slot, slot.gen});
    }
    scratch.clear();
  }
};

MultiCounter::MultiCounter(std::span<const Episode> episodes, Semantics semantics,
                           ExpiryPolicy expiry)
    : impl_(std::make_unique<Impl>()) {
  for (const auto& e : episodes) gm::expects(!e.empty(), "cannot count an empty episode");
  gm::expects(episodes.size() <= std::numeric_limits<std::uint32_t>::max(),
              "too many episodes for the single-scan index");
  impl_->semantics = semantics;
  impl_->expiry = expiry;

  if (semantics == Semantics::kContiguousRestart) {
    impl_->dense_automata.reserve(episodes.size());
    for (const auto& e : episodes) {
      impl_->dense_automata.emplace_back(e.symbols(), semantics, expiry);
    }
    impl_->dense_counts.assign(episodes.size(), 0);
    return;
  }

  impl_->buckets.resize(256);
  impl_->slots.reserve(episodes.size());
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(episodes.size()); ++i) {
    Slot slot;
    slot.episode = episodes[i].symbols();
    impl_->slots.push_back(slot);
    impl_->buckets[impl_->slots[i].episode[0]].push_back({i, 0});
  }
}

MultiCounter::MultiCounter(MultiCounter&&) noexcept = default;
MultiCounter& MultiCounter::operator=(MultiCounter&&) noexcept = default;
MultiCounter::~MultiCounter() = default;

void MultiCounter::restore(std::span<const EpisodeProgress> progress) {
  Impl& im = *impl_;
  if (im.dense()) {
    gm::expects(progress.size() == im.dense_automata.size(),
                "progress list must match the episode list");
    for (std::size_t i = 0; i < progress.size(); ++i) {
      im.dense_automata[i].restore(progress[i].state, progress[i].first_pos);
      im.dense_counts[i] = progress[i].count;
    }
    return;
  }
  gm::expects(progress.size() == im.slots.size(), "progress list must match the episode list");
  for (auto& bucket : im.buckets) bucket.clear();
  gm::expects(im.deadlines.empty(), "restore() must precede the first advance()");
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(im.slots.size()); ++i) {
    Slot& slot = im.slots[i];
    const EpisodeProgress& p = progress[i];
    gm::expects(p.state >= 0 && p.state < static_cast<int>(slot.episode.size()),
                "restored state outside the episode's automaton");
    slot.count = p.count;
    slot.state = p.state;
    slot.first_pos = p.first_pos;
    im.buckets[slot.episode[static_cast<std::size_t>(slot.state)]].push_back({i, slot.gen});
    if (slot.state > 0 && im.expiry.enabled()) {
      im.deadlines.push({deadline_at(slot.first_pos, im.expiry.window), i});
    }
  }
}

void MultiCounter::advance(Symbol symbol, std::int64_t pos) {
  Impl& im = *impl_;
  if (im.dense()) {
    for (std::size_t a = 0; a < im.dense_automata.size(); ++a) {
      if (im.dense_automata[a].step(symbol, pos)) ++im.dense_counts[a];
    }
    return;
  }
  im.advance_sparse(symbol, pos);
}

std::vector<std::int64_t> MultiCounter::counts() const {
  const Impl& im = *impl_;
  if (im.dense()) return im.dense_counts;
  std::vector<std::int64_t> counts;
  counts.reserve(im.slots.size());
  for (const Slot& slot : im.slots) counts.push_back(slot.count);
  return counts;
}

std::vector<EpisodeProgress> MultiCounter::progress() const {
  const Impl& im = *impl_;
  std::vector<EpisodeProgress> progress;
  if (im.dense()) {
    progress.reserve(im.dense_automata.size());
    for (std::size_t a = 0; a < im.dense_automata.size(); ++a) {
      progress.push_back({im.dense_counts[a], im.dense_automata[a].first_match_pos(),
                          im.dense_automata[a].state()});
    }
    return progress;
  }
  progress.reserve(im.slots.size());
  for (const Slot& slot : im.slots) {
    progress.push_back({slot.count, slot.first_pos, slot.state});
  }
  return progress;
}

std::size_t MultiCounter::episode_count() const {
  return impl_->dense() ? impl_->dense_automata.size() : impl_->slots.size();
}

std::vector<std::int64_t> count_all_single_scan(std::span<const Episode> episodes,
                                                std::span<const Symbol> database,
                                                Semantics semantics, ExpiryPolicy expiry) {
  if (episodes.empty()) return {};
  MultiCounter counter(episodes, semantics, expiry);
  for (std::size_t i = 0; i < database.size(); ++i) {
    counter.advance(database[i], static_cast<std::int64_t>(i));
  }
  return counter.counts();
}

std::vector<std::int64_t> count_all_single_scan(std::span<const Episode> episodes,
                                                std::span<const Symbol> database,
                                                Semantics semantics, ExpiryPolicy expiry,
                                                std::vector<ScanExit>& exits) {
  if (episodes.empty()) {
    exits.clear();
    return {};
  }
  MultiCounter counter(episodes, semantics, expiry);
  for (std::size_t i = 0; i < database.size(); ++i) {
    counter.advance(database[i], static_cast<std::int64_t>(i));
  }
  const std::vector<EpisodeProgress> progress = counter.progress();
  exits.assign(progress.size(), {});
  for (std::size_t a = 0; a < progress.size(); ++a) {
    exits[a] = {progress[a].state, progress[a].first_pos};
  }
  return counter.counts();
}

}  // namespace gm::core

#include "service/backend_factory.hpp"

#include <utility>

#include "calib/calibration.hpp"
#include "common/error.hpp"
#include "core/cpu_backend.hpp"
#include "distrib/distrib_backend.hpp"
#include "kernels/gpu_backend.hpp"
#include "planner/auto_backend.hpp"
#include "sim/device_spec.hpp"

namespace gm::service {

std::vector<std::string_view> backend_names() {
  return {"cpu-serial", "cpu-parallel", "cpu-sharded", "cpu-single-scan", "cpu-trie-scan",
          "distrib", "distrib-gpu", "gpusim", "auto"};
}

planner::PlannerOptions planner_options_for(const BackendSpec& spec) {
  planner::PlannerOptions options;
  options.device = gpusim::device_by_name(spec.card);
  options.cpu_threads = spec.threads;
  if (spec.shards > 0) {
    // Open the device-count axis: the caller declared shards-many devices
    // exist, so "auto" scores every count up to that budget.
    options.device_sweep.resize(static_cast<std::size_t>(spec.shards));
    for (int n = 1; n <= spec.shards; ++n) {
      options.device_sweep[static_cast<std::size_t>(n - 1)] = n;
    }
  }
  if (!spec.calibration.empty()) {
    calib::apply_profile(calib::load_profile(spec.calibration), options);
  }
  return options;
}

std::unique_ptr<core::CountingBackend> make_backend(const BackendSpec& spec) {
  if (auto cpu = core::make_cpu_backend(spec.name, spec.threads)) return cpu;
  if (spec.name == "distrib" || spec.name == "distrib-gpu") {
    distrib::DistribOptions options;
    const bool gpu = spec.name == "distrib-gpu";
    // Host flavor defaults to one shard per hardware thread; the card flavor
    // to the paper's dual-die 9800 GX2 deployment.
    options.shards = spec.shards > 0 ? spec.shards
                     : gpu           ? 2
                                     : core::resolved_thread_count(0);
    options.worker = gpu ? distrib::WorkerKind::kGpuSim : distrib::WorkerKind::kSingleScan;
    options.device = gpusim::device_by_name(spec.card);
    options.launch = spec.launch;
    return std::make_unique<distrib::DistribBackend>(options);
  }
  if (spec.name == "gpusim") {
    return std::make_unique<kernels::SimGpuBackend>(gpusim::device_by_name(spec.card),
                                                    spec.launch);
  }
  if (spec.name == "auto") {
    return std::make_unique<planner::AutoBackend>(planner_options_for(spec));
  }
  std::string known;
  for (const auto name : backend_names()) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  gm::raise_precondition("unknown backend '" + spec.name + "' (expected one of: " + known +
                         ")");
}

}  // namespace gm::service

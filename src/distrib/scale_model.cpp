#include "distrib/scale_model.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/segment_counter.hpp"

namespace gm::distrib {

ScalePrediction predict_scaled_mining(const gpusim::DeviceSpec& device, int devices,
                                      const kernels::WorkloadSpec& spec, ShardAxis axis,
                                      const gpusim::CostModel& model,
                                      const kernels::KernelCostProfile& costs,
                                      double merge_ns_per_entry) {
  gm::expects(devices >= 1, "need at least one device");
  gm::expects(spec.episode_count >= 1, "need at least one episode");

  ScalePrediction out;
  if (axis == ShardAxis::kEpisodes) {
    const std::int64_t base = spec.episode_count / devices;
    const std::int64_t extra = spec.episode_count % devices;
    for (int d = 0; d < devices; ++d) {
      const std::int64_t share = base + (d < extra ? 1 : 0);
      out.share_per_device.push_back(share);
      if (share == 0) {
        out.per_device_ms.push_back(0.0);
        continue;
      }
      kernels::WorkloadSpec device_spec = spec;
      device_spec.episode_count = share;
      out.per_device_ms.push_back(
          kernels::predict_mining_time(device, device_spec, model, costs).total_ms);
    }
  } else {
    const auto bounds = core::chunk_boundaries(spec.db_size, devices);
    for (int d = 0; d < devices; ++d) {
      const std::int64_t share =
          bounds[static_cast<std::size_t>(d) + 1] - bounds[static_cast<std::size_t>(d)];
      out.share_per_device.push_back(share);
      if (share == 0) {
        out.per_device_ms.push_back(0.0);
        continue;
      }
      kernels::WorkloadSpec device_spec = spec;
      device_spec.db_size = share;
      out.per_device_ms.push_back(
          kernels::predict_mining_time(device, device_spec, model, costs).total_ms);
    }
    // Every device contributes one cold outcome per episode to the host fold.
    out.merge_ms = static_cast<double>(spec.episode_count) * devices * merge_ns_per_entry *
                   1e-6;
  }

  const double max_ms = *std::max_element(out.per_device_ms.begin(), out.per_device_ms.end());
  double sum = 0.0;
  for (const double ms : out.per_device_ms) sum += ms;
  const double mean = sum / devices;
  out.imbalance = mean > 0.0 ? max_ms / mean : 1.0;
  out.total_ms = max_ms + out.merge_ms;
  return out;
}

}  // namespace gm::distrib

// Device explorer: the "which algorithm / how many threads / which card"
// advisor the paper's eight characterizations add up to.
//
// Give it a problem size (episode level) and it prints, for every card and
// algorithm, the best thread count, the predicted time, occupancy, and the
// binding mechanism — the decision the paper says must be made dynamically.
//
//   $ ./examples/device_explorer [level]
#include <cstdlib>
#include <iomanip>
#include <iostream>

#include "bench_support/paper_setup.hpp"
#include "bench_support/report.hpp"
#include "data/generators.hpp"
#include "kernels/workload_model.hpp"
#include "sim/occupancy.hpp"

int main(int argc, char** argv) {
  const int level = argc > 1 ? std::atoi(argv[1]) : 2;
  if (level < 1 || level > 3) {
    std::cerr << "usage: device_explorer [level 1..3]\n";
    return 1;
  }

  const auto sweep = gm::bench::paper_thread_sweep();
  const gpusim::CostModel model;

  std::cout << "Problem: level " << level << " (" << gm::bench::paper_episode_count(level)
            << " episodes over 393,019 symbols)\n\n";
  std::cout << std::left << std::setw(30) << "card" << std::setw(24) << "algorithm"
            << std::right << std::setw(10) << "best tpb" << std::setw(12) << "time (ms)"
            << std::setw(12) << "occupancy" << "  bound by\n";

  double overall_best = 0.0;
  std::string overall_desc;
  bool first = true;

  for (const auto& card : gpusim::paper_testbed()) {
    for (const auto algorithm : gm::kernels::all_algorithms()) {
      double best_ms = 0.0;
      int best_tpb = 0;
      std::string bound;
      double occupancy = 0.0;
      bool first_point = true;
      for (const int tpb : sweep) {
        gm::kernels::WorkloadSpec spec;
        spec.db_size = gm::data::kPaperDatabaseSize;
        spec.episode_count = gm::bench::paper_episode_count(level);
        spec.level = level;
        spec.params.algorithm = algorithm;
        spec.params.threads_per_block = tpb;
        const auto breakdown = predict_mining_time(card, spec, model);
        if (first_point || breakdown.total_ms < best_ms) {
          best_ms = breakdown.total_ms;
          best_tpb = tpb;
          bound = breakdown.bound_by;
          const auto occ = compute_occupancy(card, model_launch_config(spec));
          occupancy = occ.warp_occupancy;
          first_point = false;
        }
      }
      std::cout << std::left << std::setw(30) << card.name << std::setw(24)
                << to_string(algorithm) << std::right << std::setw(10) << best_tpb
                << std::setw(12) << std::fixed << std::setprecision(2) << best_ms
                << std::setw(11) << std::setprecision(0) << occupancy * 100 << "%"
                << "  " << bound << "\n";
      if (first || best_ms < overall_best) {
        overall_best = best_ms;
        overall_desc = card.name + ", " + to_string(algorithm) + " @" +
                       std::to_string(best_tpb) + " threads/block";
        first = false;
      }
    }
  }
  std::cout << "\nRecommendation: " << overall_desc << " ("
            << std::setprecision(2) << overall_best << " ms)\n";
  std::cout << "\nNote the paper's headline: the best configuration changes with the\n"
               "problem size — rerun with level 1 or 3 and watch the winner flip.\n";
  return 0;
}

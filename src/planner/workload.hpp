// The workload shape the formulation planner scores: everything that moves
// the predicted cost of a counting level — stream length, candidate count,
// episode level, alphabet size, measured symbol skew, counting semantics and
// expiry — and nothing tied to a particular backend.  One Workload describes
// one mining level; the miner's candidate set shrinks level by level, which
// is exactly why the winning formulation flips and the planner re-plans.
#pragma once

#include <cstdint>
#include <vector>

#include "core/counting.hpp"

namespace gm::planner {

struct Workload {
  std::int64_t db_size = 0;
  std::int64_t episode_count = 0;
  int level = 1;
  int alphabet_size = 26;
  /// Measured stream symbol distribution (`alphabet_size` entries summing to
  /// 1), feeding the bucketed formulations' skew-aware occupancy term.  Empty
  /// means assume uniform.
  std::vector<double> symbol_freq;
  /// Distinct-prefix mass of the candidate set (trie nodes over total episode
  /// symbols, in (0, 1]), measured from the actual episodes via
  /// core::prefix_compression.  Drives the shared-prefix trie formulations'
  /// drain terms: 1.0 (the default, and any level-1 set) means no sharing,
  /// apriori level-L sets sit near 1/L plus the last-symbol fringe.
  double prefix_compression = 1.0;
  core::Semantics semantics = core::Semantics::kNonOverlappedSubsequence;
  core::ExpiryPolicy expiry = {};
};

/// Derive the workload of one counting request, measuring the alphabet size
/// (max symbol + 1, at least `alphabet_size_hint`) and the smoothed symbol
/// distribution from the database.  Costs one O(|DB|) pass — noise next to
/// the counting work the resulting plan steers, so per-request recomputation
/// is the norm (AutoBackend does exactly that).
[[nodiscard]] Workload workload_of(const core::CountRequest& request,
                                   int alphabet_size_hint = 0);

}  // namespace gm::planner

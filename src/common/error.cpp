#include "common/error.hpp"

#include <sstream>

namespace gm {
namespace {

std::string format(std::string_view kind, std::string_view message,
                   const std::source_location& loc) {
  std::ostringstream os;
  os << kind << ": " << message << " [" << loc.file_name() << ":" << loc.line() << " "
     << loc.function_name() << "]";
  return os.str();
}

}  // namespace

void raise_precondition(std::string_view message, std::source_location loc) {
  throw PreconditionError(format("precondition violated", message, loc));
}

void raise_invariant(std::string_view message, std::source_location loc) {
  throw InvariantError(format("invariant violated", message, loc));
}

void raise_device(std::string_view message, std::source_location loc) {
  throw DeviceError(format("device error", message, loc));
}

}  // namespace gm

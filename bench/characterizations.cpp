// The paper's eight characterizations (C1-C8) re-derived from the model,
// each reported PASS or DEVIATE with the measured evidence.  This is the
// headline "shape" reproduction: who wins, by what factor, where crossovers
// fall.
#include <cmath>
#include <iostream>
#include <sstream>

#include "bench_support/paper_setup.hpp"
#include "bench_support/report.hpp"
#include "kernels/mining_kernels.hpp"

namespace {

using gm::bench::paper_time_ms;
using gm::bench::report_check;
using gm::kernels::Algorithm;

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

}  // namespace

int main() {
  const auto gtx = gpusim::geforce_gtx_280();
  const auto gts = gpusim::geforce_8800_gts_512();
  const auto gx2 = gpusim::geforce_9800_gx2();
  const auto sweep = gm::bench::paper_thread_sweep();
  auto& out = std::cout;

  auto series = [&](const gpusim::DeviceSpec& device, Algorithm a, int level) {
    std::vector<double> values;
    for (const int tpb : sweep) values.push_back(paper_time_ms(device, a, level, tpb));
    return values;
  };
  auto best = [&](const gpusim::DeviceSpec& device, Algorithm a, int level) {
    return gm::bench::best_of(sweep, series(device, a, level));
  };

  out << "Paper characterizations re-derived from the simulator\n\n";

  // C1 — thread-parallel algorithms are O(1) per episode: 600x more episodes
  // (L3 vs L1) costs far less than 600x more time.
  {
    const double l1 = paper_time_ms(gtx, Algorithm::kThreadTexture, 1, 96);
    const double l3 = paper_time_ms(gtx, Algorithm::kThreadTexture, 3, 96);
    const double ratio = l3 / l1;
    report_check(out, "C1: thread-level is effectively constant-time per episode",
                 ratio < 4.0,
                 "Algo1 GTX280 @96tpb: L3/L1 time ratio " + fmt(ratio) +
                     " for 600x the episodes");
  }

  // C2 — Algorithm 2's buffering penalty is amortized as threads are added:
  // the L3/L1 relative-time ratio falls with threads per block (Fig 6b).
  {
    const auto l1 = series(gtx, Algorithm::kThreadBuffered, 1);
    const auto l3 = series(gtx, Algorithm::kThreadBuffered, 3);
    const double ratio_16 = l3.front() / l1.front();
    const double ratio_512 = l3.back() / l1.back();
    report_check(out, "C2: buffering penalty amortized with more threads (Algo2)",
                 ratio_512 < ratio_16,
                 "relative L3/L1 falls from " + fmt(ratio_16) + " @16tpb to " +
                     fmt(ratio_512) + " @512tpb");
  }

  // C3 — block-parallel does not scale with block size: Algo4 L3 time grows
  // with threads per block, and the level gaps widen.
  {
    const auto a4l3 = series(gtx, Algorithm::kBlockBuffered, 3);
    const double t64 = paper_time_ms(gtx, Algorithm::kBlockBuffered, 3, 64);
    const double gap21 = paper_time_ms(gtx, Algorithm::kBlockBuffered, 2, 256) -
                         paper_time_ms(gtx, Algorithm::kBlockBuffered, 1, 256);
    const double gap32 = paper_time_ms(gtx, Algorithm::kBlockBuffered, 3, 256) -
                         paper_time_ms(gtx, Algorithm::kBlockBuffered, 2, 256);
    report_check(out, "C3: block-level loses per-episode performance as threads grow",
                 a4l3.back() > t64 && gap32 > gap21,
                 "Algo4 L3: " + fmt(t64) + "ms @64tpb vs " + fmt(a4l3.back()) +
                     "ms @512tpb; level gaps " + fmt(gap21) + " -> " + fmt(gap32) + "ms");
  }

  // C4 — thread-level alone is insufficient for small problems (L1): block
  // parallelism is orders of magnitude faster, Algo4 sub-millisecond-class.
  {
    const auto best_thread = std::min(best(gtx, Algorithm::kThreadTexture, 1).value,
                                      best(gtx, Algorithm::kThreadBuffered, 1).value);
    const auto best_block = std::min(best(gtx, Algorithm::kBlockTexture, 1).value,
                                     best(gtx, Algorithm::kBlockBuffered, 1).value);
    const auto algo4 = best(gtx, Algorithm::kBlockBuffered, 1);
    report_check(out, "C4: at L1 block-level is orders of magnitude faster; Algo4 ~sub-ms",
                 best_thread / best_block > 10.0 && algo4.value < 1.5,
                 "thread best " + fmt(best_thread) + "ms vs block best " + fmt(best_block) +
                     "ms; Algo4 best " + fmt(algo4.value) + "ms @" +
                     std::to_string(algo4.x) + "tpb");
  }

  // C5 — at L2, block level depends on block size; paper: Algo3@64 is the
  // overall winner and Algo4 overtakes Algo3 at high thread counts.
  {
    const auto a3 = best(gtx, Algorithm::kBlockTexture, 2);
    bool crossover = false;
    for (const int tpb : sweep) {
      if (paper_time_ms(gtx, Algorithm::kBlockBuffered, 2, tpb) <
          paper_time_ms(gtx, Algorithm::kBlockTexture, 2, tpb)) {
        crossover = true;
        break;
      }
    }
    report_check(out, "C5: at L2 block-level depends on block size (Algo3 best near 64tpb)",
                 a3.x <= 128 && crossover,
                 "Algo3 best @" + std::to_string(a3.x) + "tpb (" + fmt(a3.value) +
                     "ms); Algo4-beats-Algo3 crossover " +
                     (crossover ? "exists" : "missing"));
  }

  // C6 — at L3 thread-level parallelism wins: more episodes in flight than
  // the 240-block cap of block-level kernels.
  {
    const auto best_thread = std::min(best(gtx, Algorithm::kThreadTexture, 3).value,
                                      best(gtx, Algorithm::kThreadBuffered, 3).value);
    const auto best_block = std::min(best(gtx, Algorithm::kBlockTexture, 3).value,
                                     best(gtx, Algorithm::kBlockBuffered, 3).value);
    report_check(out, "C6: at L3 thread-level beats block-level",
                 best_thread < best_block,
                 "thread best " + fmt(best_thread) + "ms vs block best " + fmt(best_block) +
                     "ms");
  }

  // C7 — thread-level is shader-clock bound for small/medium problems: the
  // oldest (highest-clocked) card is fastest and times scale ~1/clock.
  {
    const double t_gts = paper_time_ms(gts, Algorithm::kThreadTexture, 2, 128);
    const double t_gx2 = paper_time_ms(gx2, Algorithm::kThreadTexture, 2, 128);
    const double t_gtx = paper_time_ms(gtx, Algorithm::kThreadTexture, 2, 128);
    const double clock_scaled = t_gts * (1625.0 / 1296.0);
    const bool ordered = t_gts < t_gx2 && t_gx2 < t_gtx;
    const bool linear = std::abs(clock_scaled - t_gtx) / t_gtx < 0.1;
    report_check(out, "C7: thread-level scales with shader clock (oldest card fastest)",
                 ordered && linear,
                 "Algo1 L2 @128tpb: 8800=" + fmt(t_gts) + " GX2=" + fmt(t_gx2) +
                     " GTX280=" + fmt(t_gtx) + "ms; clock-scaled 8800 -> " +
                     fmt(clock_scaled) + "ms");
  }

  // C8 — block-level (Algo3) is memory-bandwidth bound: the GTX 280's
  // 141.7 GB/s beats the ~60 GB/s cards by roughly the bandwidth ratio.
  {
    const double t_gts = paper_time_ms(gts, Algorithm::kBlockTexture, 1, 256);
    const double t_gtx = paper_time_ms(gtx, Algorithm::kBlockTexture, 1, 256);
    const double speedup = t_gts / t_gtx;
    const double bw_ratio = 141.7 / 57.6;
    report_check(out, "C8: block-level follows memory bandwidth (GTX280 wins Algo3)",
                 t_gtx < t_gts && speedup > 0.5 * bw_ratio,
                 "Algo3 L1 @256tpb: 8800=" + fmt(t_gts) + "ms vs GTX280=" + fmt(t_gtx) +
                     "ms (speedup " + fmt(speedup) + ", bandwidth ratio " + fmt(bw_ratio) +
                     ")");
  }

  // Conclusion sanity: the paper's per-level optimal configurations.  The
  // sweep covers the paper's four formulations — Algorithm 5 is not part of
  // the paper's conclusion claims (see fig7_algorithm_impact for its rows).
  out << "\nPer-level best configurations on the GTX 280 (paper: L1 Algo4@256, L2 "
         "Algo3@64, L3 thread-level@96):\n";
  for (int level = 1; level <= 3; ++level) {
    double best_ms = 0.0;
    Algorithm best_a = Algorithm::kThreadTexture;
    int best_tpb = 0;
    bool first = true;
    for (const Algorithm a : gm::kernels::paper_algorithms()) {
      for (const int tpb : sweep) {
        const double ms = paper_time_ms(gtx, a, level, tpb);
        if (first || ms < best_ms) {
          best_ms = ms;
          best_a = a;
          best_tpb = tpb;
          first = false;
        }
      }
    }
    out << "  L" << level << ": " << to_string(best_a) << " @" << best_tpb << "tpb ("
        << fmt(best_ms) << " ms)\n";
  }
  return 0;
}

// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component in gpuminer (database generators, planted
// episodes, property tests) consumes an explicitly seeded `Rng` so all runs
// are reproducible across machines.  The generator is SplitMix64, which has
// excellent statistical behaviour for the non-cryptographic purposes here and
// a trivially portable implementation.
#pragma once

#include <cstdint>
#include <limits>

namespace gm {

/// SplitMix64 generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound).  `bound` must be nonzero.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double unit() noexcept;

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) noexcept;

  /// Derive an independent child generator (for parallel streams).
  Rng split() noexcept { return Rng(operator()()); }

 private:
  std::uint64_t state_;
};

}  // namespace gm

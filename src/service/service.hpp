// MiningService: the concurrent front end over a MiningSession.
//
// Clients submit() MineRequest/CountRequest from any thread and get a
// std::future back; a pool of worker threads (each owning its own counting
// backend, so requests really run in parallel) drains a shared queue.  When
// a worker picks up a count request it also drains every other queued count
// request with the same batch key (episode level, semantics, expiry) up to
// max_batch and serves them with one backend call — batching is what turns
// many small concurrent queries into the large counting launches the paper's
// kernels are built for.  Admission control happens twice: at submit() a
// full queue rejects immediately (ErrorCode::kQueueFull), and at service
// time the session's planner-driven budget check rejects work predicted to
// blow its latency budget.  No failure escapes as an exception; every future
// resolves to a response whose rejection carries a stable code.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <variant>
#include <vector>

#include "service/api.hpp"
#include "service/session.hpp"

namespace gm::service {

struct ServiceOptions {
  /// Worker threads, each with its own backend instance.
  int workers = 2;
  /// submit() rejects (kQueueFull) once this many requests are queued.
  std::size_t max_queue = 256;
  /// Most count requests one backend call may merge.
  std::size_t max_batch = 16;
  /// Construct with workers idle until resume() — deterministic batching for
  /// tests and benchmarks (submit a burst, then release the workers).
  bool start_paused = false;
};

struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;     ///< fresh results (includes truncated)
  std::uint64_t cached = 0;     ///< served from the session result cache
  std::uint64_t truncated = 0;  ///< budget-stopped partial mining results
  std::uint64_t rejected = 0;   ///< all rejection codes, incl. queue-full
  std::uint64_t batched = 0;    ///< count requests that shared a backend call
};

class MiningService {
 public:
  explicit MiningService(std::shared_ptr<MiningSession> session, ServiceOptions options = {});
  ~MiningService();

  MiningService(const MiningService&) = delete;
  MiningService& operator=(const MiningService&) = delete;

  [[nodiscard]] std::future<MineResponse> submit(MineRequest request);
  [[nodiscard]] std::future<CountResponse> submit(CountRequest request);

  /// Release workers constructed with start_paused.  Idempotent.
  void resume();

  /// Reject every queued request (kShutdown) and join the workers.  Called
  /// by the destructor; safe to call twice.
  void stop();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] MiningSession& session() noexcept { return *session_; }

 private:
  using Clock = std::chrono::steady_clock;

  struct MineJob {
    MineRequest request;
    std::promise<MineResponse> promise;
    Clock::time_point submitted;
  };
  struct CountJob {
    CountRequest request;
    std::promise<CountResponse> promise;
    Clock::time_point submitted;
    std::uint64_t batch = 0;
  };
  using Job = std::variant<MineJob, CountJob>;

  void worker_loop();
  void serve_mine(MineJob job, core::CountingBackend& backend);
  void serve_counts(std::vector<CountJob> jobs, core::CountingBackend& backend);
  void record(Disposition disposition);

  std::shared_ptr<MiningSession> session_;
  ServiceOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  ServiceStats stats_;
  bool paused_ = false;
  bool stopping_ = false;

  std::vector<std::thread> workers_;
};

}  // namespace gm::service

#include "core/miner.hpp"

#include <string>

#include "common/error.hpp"

namespace gm::core {

void validate_miner_config(const MinerConfig& config) {
  if (!(config.support_threshold >= 0.0 && config.support_threshold <= 1.0)) {
    gm::raise_precondition(
        "support_threshold must lie in [0, 1] (an episode is frequent when count/|DB| exceeds "
        "it), got " +
            std::to_string(config.support_threshold),
        ErrorCode::kInvalidConfig);
  }
  if (config.max_level < 0) {
    gm::raise_precondition(
        "max_level must be >= 0 (0 runs until the candidate set is empty), got " +
            std::to_string(config.max_level),
        ErrorCode::kInvalidConfig);
  }
  if (config.expiry.window < 0) {
    gm::raise_precondition("expiry window must be >= 0 (0 disables expiry), got " +
                               std::to_string(config.expiry.window),
                           ErrorCode::kInvalidConfig);
  }
}

MiningResult mine_frequent_episodes(std::span<const Symbol> database, const Alphabet& alphabet,
                                    CountingBackend& backend, const MinerConfig& config,
                                    LevelObserver* observer) {
  gm::expects(!database.empty(), "database must be non-empty");
  validate_miner_config(config);
  for (const Symbol s : database) {
    gm::expects(alphabet.contains(s), "database symbol outside alphabet");
  }

  MiningResult result;
  const auto n = static_cast<std::int64_t>(database.size());

  std::vector<Episode> candidates = level1_candidates(alphabet);
  int level = 1;
  while (!candidates.empty() && (config.max_level == 0 || level <= config.max_level)) {
    // Surface a capped backend (e.g. the GPU kernels' kMaxLevel episode
    // staging bound) as a reportable error before issuing the request,
    // instead of an abort deep inside the kernel layer.
    if (const int cap = backend.max_level(); cap > 0 && level > cap) {
      gm::raise_precondition(
          "backend '" + backend.name() + "' counts episodes only up to level " +
              std::to_string(cap) + ", but mining reached level " + std::to_string(level) +
              " — lower the level cap (--max-level) or switch to a CPU backend",
          ErrorCode::kCapability);
    }

    if (observer != nullptr && !observer->on_level_start(level, candidates)) {
      result.truncated = true;
      break;
    }

    CountRequest request;
    request.database = database;
    request.episodes = candidates;  // view, not a per-level deep copy
    request.semantics = config.semantics;
    request.expiry = config.expiry;

    const CountResult counted = backend.count(request);
    gm::ensure(counted.counts.size() == candidates.size(),
               "backend returned wrong number of counts");

    // One support decision feeds both the mining report and the next level,
    // so the two can never disagree on what survived.
    const std::vector<std::size_t> keep =
        eliminate_infrequent(candidates, counted.counts, n, config.support_threshold);

    LevelReport report;
    report.level = level;
    report.candidates = static_cast<std::int64_t>(candidates.size());
    report.frequent = static_cast<std::int64_t>(keep.size());
    report.count_host_ms = counted.host_ms;
    report.simulated_kernel_ms = counted.simulated_kernel_ms;
    result.levels.push_back(report);

    std::vector<Episode> frequent_here;
    frequent_here.reserve(keep.size());
    for (const std::size_t i : keep) {
      const double support =
          static_cast<double>(counted.counts[i]) / static_cast<double>(n);
      result.frequent.push_back({candidates[i], counted.counts[i], support});
      frequent_here.push_back(candidates[i]);
    }

    if (observer != nullptr) observer->on_level_done(report);

    candidates = generate_candidates(frequent_here, config.apriori_prune);
    ++level;
  }
  return result;
}

}  // namespace gm::core

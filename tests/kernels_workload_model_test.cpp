// The analytic workload models must reproduce the functional engine's
// measured profiles *exactly* (field for field) — this is what licenses the
// benchmark harnesses to sweep the paper's full problem sizes analytically.
// The bucketed formulation's drain work is data-dependent, so exactness is
// asserted on its data-independent dense (contiguous-restart) path only; the
// bucketed path gets an expectation-accuracy band plus the occupancy-scaling
// property the formulation exists for.
#include <gtest/gtest.h>

#include "core/candidate_gen.hpp"
#include "data/generators.hpp"
#include "kernels/mining_kernels.hpp"
#include "kernels/workload_model.hpp"

namespace gm::kernels {
namespace {

using core::Alphabet;

struct Case {
  Algorithm algorithm;
  int level;
  int threads_per_block;
  std::int64_t db_size;
  int buffer_bytes;
  int expiry_window;  // 0 = disabled
  core::Semantics semantics = core::Semantics::kNonOverlappedSubsequence;

  friend std::ostream& operator<<(std::ostream& os, const Case& c) {
    return os << to_string(c.algorithm) << "/" << core::to_string(c.semantics) << "/L"
              << c.level << "/t" << c.threads_per_block << "/n" << c.db_size << "/B"
              << c.buffer_bytes << "/W" << c.expiry_window;
  }
};

class WorkloadModelExact : public ::testing::TestWithParam<Case> {};

TEST_P(WorkloadModelExact, ProfileEqualsEngineMeasurement) {
  const Case c = GetParam();
  const Alphabet alphabet(5);
  const auto db = data::uniform_database(alphabet, c.db_size, 1234);
  const auto episodes = core::all_distinct_episodes(alphabet, c.level);

  MiningLaunchParams params;
  params.algorithm = c.algorithm;
  params.threads_per_block = c.threads_per_block;
  params.buffer_bytes = c.buffer_bytes;
  params.expiry = core::ExpiryPolicy{c.expiry_window};
  params.semantics = c.semantics;

  gpusim::EngineOptions opts;
  opts.host_threads = 2;
  opts.simulate_texture_cache = false;
  const gpusim::Engine engine(gpusim::geforce_8800_gts_512(), opts);

  const MiningRun run = run_mining_kernel(engine, db, episodes, params);

  WorkloadSpec spec;
  spec.db_size = c.db_size;
  spec.episode_count = static_cast<std::int64_t>(episodes.size());
  spec.level = c.level;
  spec.alphabet_size = alphabet.size();
  spec.params = params;
  const gpusim::KernelProfile modeled = model_profile(engine.spec(), spec);

  // Launch geometry must agree.
  const gpusim::LaunchConfig launch = model_launch_config(spec);
  EXPECT_EQ(launch.grid, run.launch.profile.total_blocks() > 0
                             ? gpusim::Dim3(static_cast<int>(run.launch.profile.total_blocks()))
                             : launch.grid);
  ASSERT_EQ(modeled.total_blocks(), run.launch.profile.total_blocks());

  // Every block's profile must match exactly (excluding tex_miss_bytes,
  // which the engine measures with the cache simulator and the model leaves
  // to the declared access pattern).
  for (std::int64_t b = 0; b < modeled.total_blocks(); ++b) {
    gpusim::BlockProfile expected = run.launch.profile.block_at(b);
    gpusim::BlockProfile actual = modeled.block_at(b);
    expected.tex_miss_bytes = 0.0;
    actual.tex_miss_bytes = 0.0;
    ASSERT_EQ(actual.warps, expected.warps) << c << " block " << b;
    ASSERT_EQ(actual.syncs, expected.syncs) << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.warp_instructions, expected.warp_instructions)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.warp_tex_ops, expected.warp_tex_ops) << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.warp_shared_ops, expected.warp_shared_ops)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.warp_global_ops, expected.warp_global_ops)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.lane_instructions, expected.lane_instructions)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.tex_requests, expected.tex_requests) << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.shared_requests, expected.shared_requests)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.global_requests, expected.global_requests)
        << c << " block " << b;
    ASSERT_DOUBLE_EQ(actual.global_bytes, expected.global_bytes) << c << " block " << b;
    ASSERT_EQ(actual.texture, expected.texture) << c << " block " << b;
  }
}

std::vector<Case> exactness_cases() {
  std::vector<Case> cases;
  // Adversarial sizes: primes and off-by-one around buffer/warp boundaries.
  // The paper's four formulations charge data-independently under both
  // semantics, so subsequence cases cover them exactly.
  for (const Algorithm a : paper_algorithms()) {
    for (const int level : {1, 3}) {
      cases.push_back({a, level, 33, 997, 128, 0});
      cases.push_back({a, level, 64, 1024, 256, 0});
      cases.push_back({a, level, 48, 769, 130, 0});
      cases.push_back({a, level, 32, 911, 128, 7});  // expiry mode
    }
    cases.push_back({a, 2, 16, 501, 64, 0});
    cases.push_back({a, 2, 128, 2048, 512, 13});
  }
  // The bucketed formulation is exact on its dense contiguous-restart path
  // (data-independent per-symbol charges), including under expiry.
  const Algorithm b = Algorithm::kBlockBucketed;
  const core::Semantics contig = core::Semantics::kContiguousRestart;
  for (const int level : {1, 3}) {
    cases.push_back({b, level, 33, 997, 128, 0, contig});
    cases.push_back({b, level, 64, 1024, 256, 0, contig});
    cases.push_back({b, level, 48, 769, 130, 0, contig});
    cases.push_back({b, level, 32, 911, 128, 7, contig});  // expiry mode
  }
  cases.push_back({b, 2, 16, 501, 64, 0, contig});
  cases.push_back({b, 2, 128, 2048, 512, 13, contig});
  // Multi-block grids: 20 episodes / capacity 8 -> 3 blocks carrying 7/7/6
  // slots (remainder group ordering), and 60 / capacity 16 -> 4 even blocks.
  cases.push_back({b, 2, 1, 501, 64, 0, contig});
  cases.push_back({b, 3, 2, 769, 96, 4, contig});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, WorkloadModelExact, ::testing::ValuesIn(exactness_cases()));

// ---------------------------------------------------------------------------
// Bucketed formulation (Algorithm 5): expectation model.
// ---------------------------------------------------------------------------

TEST(WorkloadModel, BucketedLaunchConfigMatchesDeviceProblem) {
  const Alphabet alphabet(6);
  const auto db = data::uniform_database(alphabet, 1500, 7);
  const auto episodes = core::all_distinct_episodes(alphabet, 3);  // 120 episodes

  MiningLaunchParams params;
  params.algorithm = Algorithm::kBlockBucketed;
  params.threads_per_block = 8;  // capacity 64 -> 2 blocks
  params.buffer_bytes = 256;
  DeviceProblem problem(db, episodes, params);

  WorkloadSpec spec;
  spec.db_size = 1500;
  spec.episode_count = static_cast<std::int64_t>(episodes.size());
  spec.level = 3;
  spec.alphabet_size = alphabet.size();
  spec.params = params;
  const gpusim::LaunchConfig modeled = model_launch_config(spec);
  EXPECT_EQ(modeled.grid, problem.launch_config().grid);
  EXPECT_EQ(modeled.block, problem.launch_config().block);
  EXPECT_EQ(modeled.shared_mem_per_block, problem.launch_config().shared_mem_per_block);
  EXPECT_EQ(modeled.registers_per_thread, problem.launch_config().registers_per_thread);
  EXPECT_EQ(modeled.grid, gpusim::Dim3(2));
}

TEST(WorkloadModel, BucketedSubseqModelTracksEngineOnUniformData) {
  // The bucketed path's drain counts are data-dependent; the model is the
  // uniform-stream expectation.  Deterministic fields (staging copies,
  // buffer loads, barriers) must match exactly; instruction and global
  // traffic totals must land within a tight band of the measurement.
  const Alphabet alphabet(8);
  const auto db = data::uniform_database(alphabet, 3000, 97);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);  // 56 episodes

  MiningLaunchParams params;
  params.algorithm = Algorithm::kBlockBucketed;
  params.threads_per_block = 32;
  params.buffer_bytes = 256;

  gpusim::EngineOptions opts;
  opts.host_threads = 2;
  opts.simulate_texture_cache = false;
  const gpusim::Engine engine(gpusim::geforce_8800_gts_512(), opts);
  const MiningRun run = run_mining_kernel(engine, db, episodes, params);
  const auto measured = gpusim::aggregate(run.launch.profile);

  WorkloadSpec spec;
  spec.db_size = 3000;
  spec.episode_count = static_cast<std::int64_t>(episodes.size());
  spec.level = 2;
  spec.alphabet_size = alphabet.size();
  spec.params = params;
  const auto modeled = gpusim::aggregate(model_profile(engine.spec(), spec));

  EXPECT_EQ(modeled.blocks, measured.blocks);
  EXPECT_EQ(modeled.syncs, measured.syncs);
  EXPECT_DOUBLE_EQ(modeled.tex_requests, measured.tex_requests);
  EXPECT_DOUBLE_EQ(modeled.shared_requests, measured.shared_requests);
  EXPECT_NEAR(modeled.lane_instructions / measured.lane_instructions, 1.0, 0.10);
  EXPECT_NEAR(modeled.global_requests / measured.global_requests, 1.0, 0.10);
}

TEST(WorkloadModel, DrainRateUniformRecoversOneOverAlphabet) {
  const std::vector<double> uniform(16, 1.0 / 16.0);
  for (const int level : {1, 3, 8}) {
    EXPECT_NEAR(bucket_drain_rate(uniform, level), 1.0 / 16.0, 1e-12);
  }
}

TEST(WorkloadModel, DrainRateFallsWithSkew) {
  // Automata park in rare-symbol buckets: the heavier the skew, the lower
  // the expected per-position drain probability.
  const double uniform = bucket_drain_rate(data::zipf_frequencies(32, 0.0), 2);
  const double mild = bucket_drain_rate(data::zipf_frequencies(32, 0.5), 2);
  const double heavy = bucket_drain_rate(data::zipf_frequencies(32, 1.0), 2);
  EXPECT_NEAR(uniform, 1.0 / 32.0, 1e-12);
  EXPECT_LT(mild, uniform);
  EXPECT_LT(heavy, mild);
  EXPECT_GT(heavy, 0.0);
}

TEST(WorkloadModel, MeasuredSymbolFreqSmoothsAbsentSymbols) {
  const std::vector<core::Symbol> db = {0, 0, 1};
  const auto freq = measured_symbol_freq(db, 4);
  ASSERT_EQ(freq.size(), 4u);
  double total = 0.0;
  for (const double f : freq) {
    EXPECT_GT(f, 0.0);  // Laplace smoothing keeps dead symbols positive
    total += f;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(freq[0], freq[1]);
  EXPECT_GT(freq[1], freq[2]);
  EXPECT_DOUBLE_EQ(freq[2], freq[3]);
}

TEST(WorkloadModel, BucketedSkewAwareModelTracksEngineOnZipfData) {
  // The ROADMAP's Zipfian pin: on a skewed stream, the measured-frequency
  // occupancy term must keep the expectation model inside the same accuracy
  // band the uniform test enforces, where the uniform-occupancy model
  // overshoots (it charges 1/|alphabet| drains per automaton position, but
  // skew parks automata in rare-symbol buckets).
  const Alphabet alphabet(8);
  const auto db = data::zipf_database(alphabet, 4000, 1.0, 71);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);  // 56 episodes

  MiningLaunchParams params;
  params.algorithm = Algorithm::kBlockBucketed;
  params.threads_per_block = 32;
  params.buffer_bytes = 256;

  gpusim::EngineOptions opts;
  opts.host_threads = 2;
  opts.simulate_texture_cache = false;
  const gpusim::Engine engine(gpusim::geforce_8800_gts_512(), opts);
  const MiningRun run = run_mining_kernel(engine, db, episodes, params);
  const auto measured = gpusim::aggregate(run.launch.profile);

  WorkloadSpec spec;
  spec.db_size = static_cast<std::int64_t>(db.size());
  spec.episode_count = static_cast<std::int64_t>(episodes.size());
  spec.level = 2;
  spec.alphabet_size = alphabet.size();
  spec.symbol_freq = measured_symbol_freq(db, alphabet.size());
  spec.params = params;
  const auto skew_model = gpusim::aggregate(model_profile(engine.spec(), spec));

  spec.symbol_freq.clear();
  const auto uniform_model = gpusim::aggregate(model_profile(engine.spec(), spec));

  // Deterministic fields are unaffected by the drain expectation.
  EXPECT_EQ(skew_model.blocks, measured.blocks);
  EXPECT_EQ(skew_model.syncs, measured.syncs);
  EXPECT_DOUBLE_EQ(skew_model.tex_requests, measured.tex_requests);
  EXPECT_DOUBLE_EQ(skew_model.shared_requests, measured.shared_requests);

  // Skew-aware model: inside the expectation band.
  EXPECT_NEAR(skew_model.lane_instructions / measured.lane_instructions, 1.0, 0.10);
  EXPECT_NEAR(skew_model.global_requests / measured.global_requests, 1.0, 0.15);

  // The uniform model misses high on this stream, and by more than the
  // skew-aware band — the term exists because it changes the prediction.
  EXPECT_GT(uniform_model.lane_instructions, skew_model.lane_instructions * 1.05);
  EXPECT_GT(uniform_model.global_requests / measured.global_requests, 1.15);
}

TEST(WorkloadModel, BucketedExpiryReBucketModelTracksEngineAcrossWindows) {
  // The ROADMAP's expiry pin: the re-bucket traffic model (deadline heap
  // push+pop per attempt at the renewal rate, plus the expired share's
  // episode[0] re-file, state store and stale-entry drain) must track the
  // engine across expiry windows the way the dense path is pinned — tight
  // windows multiply the traffic (every start expires and restarts), wide
  // windows converge to the first-order one-push-pop-per-match-start term.
  const Alphabet alphabet(8);
  const auto db = data::uniform_database(alphabet, 3000, 97);

  for (const int level : {2, 3}) {
    const auto episodes = core::all_distinct_episodes(alphabet, level);

    gpusim::EngineOptions opts;
    opts.host_threads = 2;
    opts.simulate_texture_cache = false;
    const gpusim::Engine engine(gpusim::geforce_8800_gts_512(), opts);

    const auto run_both = [&](std::int64_t window) {
      MiningLaunchParams params;
      params.algorithm = Algorithm::kBlockBucketed;
      params.threads_per_block = 32;
      params.buffer_bytes = 256;
      params.expiry = core::ExpiryPolicy{window};

      const MiningRun run = run_mining_kernel(engine, db, episodes, params);
      WorkloadSpec spec;
      spec.db_size = static_cast<std::int64_t>(db.size());
      spec.episode_count = static_cast<std::int64_t>(episodes.size());
      spec.level = level;
      spec.alphabet_size = alphabet.size();
      spec.params = params;
      return std::pair{gpusim::aggregate(model_profile(engine.spec(), spec)),
                       gpusim::aggregate(run.launch.profile)};
    };

    const auto [base_model, base_meas] = run_both(0);
    double prev_model_instr = std::numeric_limits<double>::infinity();
    for (const std::int64_t window : {2, 4, 8, 16, 64}) {
      const auto [model, meas] = run_both(window);
      // Totals stay inside the bucketed expectation band.
      EXPECT_NEAR(model.lane_instructions / meas.lane_instructions, 1.0, 0.06)
          << "L" << level << " W" << window;
      EXPECT_NEAR(model.global_requests / meas.global_requests, 1.0, 0.10)
          << "L" << level << " W" << window;
      // The expiry *delta* itself — the traffic this model exists for — must
      // match the measured extra work, not just vanish into the total.
      const double model_delta = model.lane_instructions - base_model.lane_instructions;
      const double meas_delta = meas.lane_instructions - base_meas.lane_instructions;
      ASSERT_GT(meas_delta, 0.0) << "L" << level << " W" << window;
      EXPECT_NEAR(model_delta / meas_delta, 1.0, 0.10) << "L" << level << " W" << window;
      // Tighter windows mean strictly more modeled re-bucket traffic.
      EXPECT_LT(model.lane_instructions, prev_model_instr) << "L" << level << " W" << window;
      prev_model_instr = model.lane_instructions;
    }

    // Window-equals-stream limit: no deadline ever matures, so the model
    // must degenerate to one push (no pop, no expiry traffic) per match
    // start at rate drains/level — and the engine agrees.
    const auto [wide_model, wide_meas] = run_both(static_cast<std::int64_t>(db.size()));
    const double drains = static_cast<double>(episodes.size()) *
                          static_cast<double>(db.size()) / alphabet.size();
    const double push_only = base_model.lane_instructions +
                             1.0 * kExpiryHeapInstr * drains / level;
    EXPECT_NEAR(wide_model.lane_instructions / push_only, 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(wide_model.global_requests, base_model.global_requests);
    EXPECT_NEAR(wide_model.lane_instructions / wide_meas.lane_instructions, 1.0, 0.06);
  }
}

TEST(WorkloadModel, BucketedPerSymbolWorkScalesWithBucketOccupancy) {
  // The acceptance property of the formulation: the modeled per-symbol work
  // term scales with bucket occupancy |episodes|/|alphabet|, not |episodes|.
  // Episode counts are multiples of the block capacity so every thread owns
  // exactly kBucketEpisodesPerThread automata and ownership patterns cancel.
  const auto lane_instr = [](std::int64_t episode_count, int alphabet_size) {
    WorkloadSpec spec;
    spec.db_size = 10'000;
    spec.episode_count = episode_count;
    spec.level = 3;
    spec.alphabet_size = alphabet_size;
    spec.params.algorithm = Algorithm::kBlockBucketed;
    spec.params.threads_per_block = 64;  // capacity 512
    return gpusim::aggregate(model_profile(gpusim::geforce_gtx_280(), spec))
        .lane_instructions;
  };

  // Halving the occupancy by doubling the alphabet removes a fixed work
  // term D/A: t(A) - t(2A) = D/(2A), so consecutive doublings halve the gap.
  const double t52 = lane_instr(2560, 52);
  const double t104 = lane_instr(2560, 104);
  const double t208 = lane_instr(2560, 208);
  EXPECT_GT(t52, t104);
  EXPECT_GT(t104, t208);
  EXPECT_NEAR((t52 - t104) / (t104 - t208), 2.0, 1e-6);

  // The occupancy term is proportional to |episodes| at fixed alphabet:
  // doubling the episodes doubles it (and doubles the grid).
  const double gap_e = lane_instr(5120, 52) - lane_instr(5120, 104);
  EXPECT_NEAR(gap_e / (t52 - t104), 2.0, 1e-6);
}

TEST(WorkloadModel, FullPaperScaleProfilesAreCheap) {
  // The analytic path must handle the real 393,019-symbol, 15,600-episode
  // configuration instantly and produce sane totals.
  WorkloadSpec spec;
  spec.db_size = data::kPaperDatabaseSize;
  spec.episode_count = 15'600;
  spec.level = 3;
  spec.params.algorithm = Algorithm::kBlockTexture;
  spec.params.threads_per_block = 512;

  const auto device = gpusim::geforce_gtx_280();
  const auto profile = model_profile(device, spec);
  EXPECT_EQ(profile.total_blocks(), 15'600);
  const auto totals = gpusim::aggregate(profile);
  // Every block fetches the whole database once.
  EXPECT_NEAR(totals.tex_requests, 15'600.0 * data::kPaperDatabaseSize, 1.0);
}

}  // namespace
}  // namespace gm::kernels

#include "common/rng.hpp"

namespace gm {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded rejection method.
  if (bound == 0) return 0;
  std::uint64_t x = operator()();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = operator()();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::unit() noexcept {
  // 53 high-quality bits into the mantissa.
  return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return unit() < p;
}

}  // namespace gm

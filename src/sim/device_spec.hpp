// Architectural description of a simulated CUDA-class GPU.
//
// The fields mirror Table 2 of Archuleta et al. (IPPS 2009) plus the handful
// of micro-architectural constants the paper's analysis invokes (warp issue
// rate, texture-cache working set, memory latencies).  Everything the cost
// model and functional engine need about a card lives here; the three cards
// evaluated in the paper are provided as named presets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace gpusim {

/// CUDA compute capability ("generation"), e.g. 1.1 for G92, 1.3 for GT200.
struct ComputeCapability {
  int major = 1;
  int minor = 0;

  friend bool operator==(ComputeCapability, ComputeCapability) = default;
  /// True when this capability is at least `other` (feature gating).
  [[nodiscard]] bool at_least(ComputeCapability other) const noexcept {
    return major > other.major || (major == other.major && minor >= other.minor);
  }
};

/// Full architectural parameter set for one GPU die.
///
/// Latencies are expressed in *shader-clock cycles* so they scale naturally
/// with `core_clock_mhz` in the cost model.
struct DeviceSpec {
  std::string name;

  // --- Table 2 fields -------------------------------------------------------
  int multiprocessors = 16;        ///< number of SMs
  int cores_per_sm = 8;            ///< scalar processors per SM
  double core_clock_mhz = 1500.0;  ///< shader (processor) clock
  double mem_bandwidth_gbps = 64.0;
  int device_mem_mb = 512;
  ComputeCapability compute_capability{1, 1};
  int registers_per_sm = 8192;
  int max_threads_per_block = 512;
  int max_threads_per_sm = 768;
  int max_blocks_per_sm = 8;
  int max_warps_per_sm = 24;

  // --- micro-architectural constants (CUDA 1.x programming guide / paper) ---
  int warp_size = 32;
  int shared_mem_per_sm = 16 * 1024;    ///< bytes
  int shared_mem_per_block = 16 * 1024; ///< bytes available to one block
  int tex_cache_bytes = 8 * 1024;       ///< per-SM texture cache working set
  int tex_cache_line_bytes = 32;
  int tex_cache_assoc = 4;              ///< set associativity (model choice)
  int register_alloc_unit = 256;        ///< register file allocation granularity

  /// Cycles for one warp instruction to complete on an SM (8 cores x 4 =
  /// 32 lanes => 4 cycles per warp instruction).  Paper section 2.1.1.
  double cycles_per_warp_instruction = 4.0;

  // Memory latencies in shader cycles.
  double tex_cache_hit_latency = 96.0;
  double tex_cache_miss_latency = 420.0;
  double shared_mem_latency = 38.0;
  double global_mem_latency = 360.0;

  /// True if 32-bit atomic operations are supported (compute >= 1.1, paper
  /// section 4.2.1).
  [[nodiscard]] bool supports_atomics() const noexcept {
    return compute_capability.at_least({1, 1});
  }
  /// True if double-precision floating point is supported (compute >= 1.3).
  [[nodiscard]] bool supports_double_precision() const noexcept {
    return compute_capability.at_least({1, 3});
  }

  [[nodiscard]] int total_cores() const noexcept { return multiprocessors * cores_per_sm; }
  [[nodiscard]] double clock_hz() const noexcept { return core_clock_mhz * 1e6; }
  /// Device-memory bandwidth in bytes per shader cycle (whole device).
  [[nodiscard]] double bytes_per_cycle() const noexcept {
    return mem_bandwidth_gbps * 1e9 / clock_hz();
  }

  /// Throws gm::PreconditionError if any field is out of range.
  void validate() const;
};

/// The three cards of the paper's testbed (Table 2).
///
/// The GeForce 9800 GX2 carries two G92 dies; the paper drives a single die,
/// so `geforce_9800_gx2()` describes one die at its 1500 MHz clock and
/// 64 GB/s per-die bandwidth.  Use `MultiDevice` (sim/multi_device.hpp) to
/// model both dies.
[[nodiscard]] DeviceSpec geforce_8800_gts_512();
[[nodiscard]] DeviceSpec geforce_9800_gx2();
[[nodiscard]] DeviceSpec geforce_gtx_280();

/// All paper testbed cards in paper order.
[[nodiscard]] std::vector<DeviceSpec> paper_testbed();

/// Look up a preset by (case-insensitive) name fragment, e.g. "gtx280",
/// "8800", "gx2".  Throws gm::PreconditionError for unknown names.
[[nodiscard]] DeviceSpec device_by_name(const std::string& name);

}  // namespace gpusim

// planner_explain — dump the formulation planner's decision table for a set
// of reference workload shapes: the paper's evaluation workload at levels
// 1-3, a large-alphabet stream (single-scan territory), a Zipf-skewed stream
// (exercising the skew-aware occupancy term), and an expiry workload.  This
// is the "show your work" tool for `--backend auto`: every candidate the
// planner considered, its predicted time, and why the losers lost.
//
//   planner_explain [--card 8800|gx2|gtx280] [--threads T] [--json PATH]
//
// --json writes the same tables as a machine-readable BENCH artifact (the CI
// bench job uploads it as BENCH_planner.json).
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/cli_args.hpp"
#include "bench_support/json.hpp"
#include "bench_support/paper_setup.hpp"
#include "calib/calibration.hpp"
#include "core/candidate_gen.hpp"
#include "core/cpu_backend.hpp"
#include "core/episode_trie.hpp"
#include "data/generators.hpp"
#include "planner/planner.hpp"

namespace {

struct Shape {
  std::string name;
  gm::planner::Workload workload;
};

std::vector<Shape> reference_shapes() {
  namespace planner = gm::planner;
  std::vector<Shape> shapes;

  // The paper's evaluation workload, level by level: the candidate count
  // explodes from 26 to 15,600, which is exactly where the winning
  // formulation flips.  The prefix-compression factor is measured from the
  // real candidate set of the level (all distinct-symbol episodes, the
  // apriori superset the miner counts), not assumed — level-L sets land near
  // 1/L plus the last-symbol fringe.
  const gm::core::Alphabet paper_alphabet(26);
  for (int level = 1; level <= 3; ++level) {
    planner::Workload w;
    w.db_size = gm::data::kPaperDatabaseSize;
    w.episode_count = gm::bench::paper_episode_count(level);
    w.level = level;
    w.alphabet_size = 26;
    w.prefix_compression =
        gm::core::prefix_compression(gm::core::all_distinct_episodes(paper_alphabet, level));
    shapes.push_back({"paper-level" + std::to_string(level), w});
  }

  {
    planner::Workload w;
    w.db_size = 2'000'000;
    w.episode_count = 400;
    w.level = 3;
    w.alphabet_size = 200;
    shapes.push_back({"large-alphabet", w});
  }
  {
    planner::Workload w;
    w.db_size = 500'000;
    w.episode_count = 1'000;
    w.level = 2;
    w.alphabet_size = 64;
    w.symbol_freq = gm::data::zipf_frequencies(64, 1.0);
    shapes.push_back({"zipf-skewed", w});
  }
  {
    planner::Workload w;
    w.db_size = gm::data::kPaperDatabaseSize;
    w.episode_count = 325;
    w.level = 2;
    w.alphabet_size = 26;
    w.expiry = gm::core::ExpiryPolicy{32};
    shapes.push_back({"paper-expiry", w});
  }
  return shapes;
}

/// Fitted prediction for the candidate labelled `label`, or a negative
/// sentinel when the fitted plan rejected it.
double predicted_for(const gm::planner::Plan& plan, const std::string& label) {
  for (const auto& candidate : plan.table) {
    if (candidate.config.label() == label) {
      return candidate.feasible ? candidate.predicted_ms : -1.0;
    }
  }
  return -1.0;
}

/// The side-by-side shipped-vs-fitted table for one shape.
void print_diff(const gm::planner::Plan& shipped, const gm::planner::Plan& fitted) {
  std::printf("  %-24s %14s %14s %8s  note\n", "candidate", "shipped ms", "fitted ms",
              "ratio");
  for (const auto& candidate : shipped.table) {
    const std::string label = candidate.config.label();
    const double fitted_ms = predicted_for(fitted, label);
    if (!candidate.feasible || fitted_ms < 0) {
      std::printf("  %-24s %14s %14s %8s  rejected\n", label.c_str(),
                  candidate.feasible ? "ok" : "-", fitted_ms < 0 ? "-" : "ok", "-");
      continue;
    }
    std::printf("  %-24s %14.3f %14.3f %8.2f%s\n", label.c_str(), candidate.predicted_ms,
                fitted_ms, fitted_ms / candidate.predicted_ms,
                label == fitted.winner().config.label()
                    ? "  <- fitted pick"
                    : (label == shipped.winner().config.label() ? "  <- shipped pick" : ""));
  }
  const bool flipped =
      shipped.winner().config.label() != fitted.winner().config.label();
  std::printf("  => pick %s: shipped %s, fitted %s\n", flipped ? "FLIPPED" : "unchanged",
              shipped.winner().config.label().c_str(),
              fitted.winner().config.label().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string card = "gtx280";
  int threads = 0;
  std::string json_path;
  std::string calibration_path;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::cerr << arg << " needs a value\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--card") card = next();
      else if (arg == "--threads") threads = gm::bench::parse_int(arg, next(), 0, 1 << 20);
      else if (arg == "--json") json_path = next();
      else if (arg == "--calibration") calibration_path = next();
      else {
        std::cerr << "usage: " << argv[0] << " [--card 8800|gx2|gtx280] [--threads T]"
                  << " [--json PATH] [--calibration PROFILE.json]\n";
        return 2;
      }
    }

    gm::planner::PlannerOptions options;
    options.device = gpusim::device_by_name(card);
    options.cpu_threads = threads;

    const bool have_calibration = !calibration_path.empty();
    gm::planner::PlannerOptions fitted_options = options;
    if (have_calibration) {
      const auto profile = gm::calib::load_profile(calibration_path);
      gm::calib::apply_profile(profile, fitted_options);
      std::cout << "calibration: " << calibration_path << " (source=" << profile.source
                << ", " << profile.sample_count << " samples)\n\n";
    }

    gm::bench::JsonWriter json;
    json.begin_object();
    json.field("schema", "gm-bench-planner/1");
    json.field("driver", "planner_explain");
    json.field("card", card);
    json.field("cpu_threads", gm::core::resolved_thread_count(threads));
    json.field("calibration", have_calibration ? calibration_path : "shipped");
    json.key("shapes").begin_array();

    for (const auto& [name, workload] : reference_shapes()) {
      const gm::planner::Plan plan = gm::planner::plan_level(workload, options);
      std::cout << "=== " << name << " ===\n" << gm::planner::format_plan(plan);
      gm::planner::Plan fitted_plan;
      if (have_calibration) {
        fitted_plan = gm::planner::plan_level(workload, fitted_options);
        std::cout << "shipped vs fitted:\n";
        print_diff(plan, fitted_plan);
      }
      std::cout << "\n";

      json.begin_object();
      json.field("name", name);
      json.key("workload").begin_object();
      json.field("db_size", workload.db_size)
          .field("episode_count", workload.episode_count)
          .field("level", workload.level)
          .field("alphabet", workload.alphabet_size)
          .field("prefix_compression", workload.prefix_compression)
          .field("semantics", to_string(workload.semantics))
          .field("expiry", workload.expiry.window)
          .field("skewed", !workload.symbol_freq.empty());
      json.end_object();
      json.field("pick", plan.winner().config.label());
      json.field("pick_predicted_ms", plan.winner().predicted_ms);
      json.field("explanation", plan.explanation);
      if (have_calibration) {
        json.field("fitted_pick", fitted_plan.winner().config.label());
        json.field("fitted_pick_predicted_ms", fitted_plan.winner().predicted_ms);
        json.field("pick_changed",
                   plan.winner().config.label() != fitted_plan.winner().config.label());
      }
      json.key("candidates").begin_array();
      for (const auto& candidate : plan.table) {
        json.begin_object();
        json.field("label", candidate.config.label());
        json.field("feasible", candidate.feasible);
        json.field("predicted_ms", candidate.feasible ? candidate.predicted_ms : -1.0);
        if (have_calibration) {
          json.field("fitted_predicted_ms",
                     predicted_for(fitted_plan, candidate.config.label()));
        }
        json.field("note", candidate.reason);
        json.end_object();
      }
      json.end_array();
      json.end_object();
    }

    json.end_array();
    json.end_object();
    if (!json_path.empty()) {
      json.write_file(json_path);
      std::cout << "wrote " << json_path << "\n";
    }
    return 0;
  } catch (const gm::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}

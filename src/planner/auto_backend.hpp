// `--backend auto`: a CountingBackend that re-plans at every counting level.
//
// Each count() call is one mining level, and the candidate set shrinks (or
// explodes) level by level — exactly the axis along which the paper observes
// the winning formulation flipping.  AutoBackend measures the workload shape
// of the incoming request, asks the planner for this level's winner, lazily
// constructs that backend, and delegates.  The full per-level decision
// history stays queryable so the CLI can report what was picked and why.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "planner/planner.hpp"

namespace gm::planner {

class AutoBackend final : public core::CountingBackend {
 public:
  explicit AutoBackend(PlannerOptions options = {});

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] core::CountResult count(const core::CountRequest& request) override;
  /// Unbounded when the CPU family is enabled (the planner falls back to a
  /// CPU formulation past the GPU kernels' level cap); otherwise the cap is
  /// the GPU kernels'.
  [[nodiscard]] int max_level() const override;

  /// One plan per count() call, in call order.
  [[nodiscard]] const std::vector<Plan>& plans() const noexcept { return plans_; }
  [[nodiscard]] const PlannerOptions& options() const noexcept { return options_; }

 private:
  PlannerOptions options_;
  std::vector<Plan> plans_;
  /// Constructed backends by candidate label: a formulation that wins several
  /// levels is built once (SimGpuBackend construction stages an engine).
  std::map<std::string, std::unique_ptr<core::CountingBackend>> backends_;
};

}  // namespace gm::planner

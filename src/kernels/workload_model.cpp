#include "kernels/workload_model.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/error.hpp"

namespace gm::kernels {
namespace {

using gpusim::BlockProfile;
using gpusim::KernelProfile;
using gpusim::TexAccessKind;
using gpusim::TexturePattern;

/// Per-lane totals within one barrier-delimited segment.
struct LaneTotals {
  double instr = 0;
  double tex = 0;
  double shared = 0;
  double glob = 0;
  double glob_bytes = 0;

  LaneTotals& operator+=(const LaneTotals& o) {
    instr += o.instr;
    tex += o.tex;
    shared += o.shared;
    glob += o.glob;
    glob_bytes += o.glob_bytes;
    return *this;
  }
};

/// Accumulates a BlockProfile from per-lane segment descriptions, mirroring
/// the engine's warp aggregation (per-segment, per-field max over lanes).
class BlockModel {
 public:
  BlockModel(int threads, int warp_size) : threads_(threads), warp_size_(warp_size) {
    profile_.warps = (threads + warp_size - 1) / warp_size;
  }

  /// One segment: `lane_fn(lane)` gives that lane's totals.  A segment that
  /// `ends_with_sync` charges the barrier instruction to every lane and
  /// increments the block's barrier count.
  void segment(const std::function<LaneTotals(int)>& lane_fn, bool ends_with_sync) {
    LaneTotals segment_max;  // max over warps: the segment's critical path
    for (int w = 0; w * warp_size_ < threads_; ++w) {
      LaneTotals warp_max;
      for (int lane = w * warp_size_; lane < std::min(threads_, (w + 1) * warp_size_);
           ++lane) {
        LaneTotals lt = lane_fn(lane);
        if (ends_with_sync) lt.instr += 1;
        warp_max.instr = std::max(warp_max.instr, lt.instr);
        warp_max.tex = std::max(warp_max.tex, lt.tex);
        warp_max.shared = std::max(warp_max.shared, lt.shared);
        warp_max.glob = std::max(warp_max.glob, lt.glob);
        profile_.lane_instructions += lt.instr;
        profile_.tex_requests += lt.tex;
        profile_.shared_requests += lt.shared;
        profile_.global_requests += lt.glob;
        profile_.global_bytes += lt.glob_bytes;
      }
      profile_.warp_instructions += warp_max.instr;
      profile_.warp_tex_ops += warp_max.tex;
      profile_.warp_shared_ops += warp_max.shared;
      profile_.warp_global_ops += warp_max.glob;
      segment_max.instr = std::max(segment_max.instr, warp_max.instr);
      segment_max.tex = std::max(segment_max.tex, warp_max.tex);
      segment_max.shared = std::max(segment_max.shared, warp_max.shared);
      segment_max.glob = std::max(segment_max.glob, warp_max.glob);
    }
    profile_.path_instructions += segment_max.instr;
    profile_.path_tex_ops += segment_max.tex;
    profile_.path_shared_ops += segment_max.shared;
    profile_.path_global_ops += segment_max.glob;
    if (ends_with_sync) ++profile_.syncs;
  }

  [[nodiscard]] BlockProfile finish(const TexturePattern& pattern) {
    profile_.texture = pattern;
    return profile_;
  }

 private:
  int threads_;
  int warp_size_;
  BlockProfile profile_;
};

struct Range {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  [[nodiscard]] std::int64_t size() const noexcept { return end - begin; }
};

Range thread_chunk(std::int64_t size, int threads, int tid) {
  const std::int64_t base = size / threads;
  const std::int64_t extra = size % threads;
  Range r;
  r.begin = tid * base + std::min<std::int64_t>(tid, extra);
  r.end = r.begin + base + (tid < extra ? 1 : 0);
  return r;
}

/// Elements lane `tid` copies in an interleaved load of `n` elements.
std::int64_t copy_count(std::int64_t n, int threads, int tid) {
  if (tid >= n) return 0;
  return (n - 1 - tid) / threads + 1;
}

/// Rescan window length around `bound` (expiry mode).
std::int64_t rescan_len(std::int64_t db_size, std::int64_t bound, std::int64_t window) {
  const std::int64_t lo = std::max<std::int64_t>(0, bound - window);
  const std::int64_t hi = std::min(db_size, bound + window);
  return hi - lo;
}

/// Steady-state expiry statistics of one bucketed automaton (subsequence
/// semantics, level L > 1) on a stream whose per-position drain probability
/// is `q`.
///
/// A match *attempt* starts when episode[0] drains (deadline heap push) and
/// ends either completed — T more positions, T = sum of L-1 Geom(q) dwells —
/// or expired at the deadline, W positions after the start, where the kernel
/// re-files the automaton under episode[0] (the re-bucket traffic this
/// models).  Expiry runs before the position's bucket dispatch, so
/// completion needs T <= W - 1.  The renewal cycle between consecutive
/// attempt starts is
///
///   C = 1/q + E[min(T, W - 1)],   E[min(T, M)] = sum_{w<M} P(T > w)
///
/// with P(T > w) = P(Binomial(w, q) < L - 1), evaluated incrementally and
/// truncated once the tail is negligible (windows beyond the stream clamp to
/// |DB| upstream).  As W grows, p -> 0 and C -> L/q, recovering exactly the
/// first-order "one heap push+pop per match start" term at rate q/L.
struct BucketExpiryStats {
  double attempts_per_position = 0.0;  ///< 1 / C
  double expiry_prob = 0.0;            ///< p = P(T > W - 1)
};

BucketExpiryStats bucket_expiry_stats(double q, int level, std::int64_t window) {
  BucketExpiryStats stats;
  if (q <= 0.0) return stats;  // dead buckets park automata forever
  const std::int64_t M = window - 1;
  // b[k] = P(Binomial(w, q) = k) for k < level - 1, advanced in w.
  std::vector<double> b(static_cast<std::size_t>(level - 1), 0.0);
  b[0] = 1.0;  // w = 0
  double tail = 1.0;  // P(T > 0): T >= level - 1 >= 1
  double e_min = 0.0;
  std::int64_t w = 0;
  while (w < M && tail > 1e-12) {
    e_min += tail;
    for (std::size_t k = b.size(); k-- > 0;) {
      b[k] = b[k] * (1.0 - q) + (k > 0 ? b[k - 1] * q : 0.0);
    }
    ++w;
    tail = 0.0;
    for (const double bk : b) tail += bk;
  }
  // Tail truncated before reaching M: the remaining summands are < 1e-12
  // each; p is effectively 0.
  const double p = w < M ? 0.0 : tail;
  stats.expiry_prob = p;
  stats.attempts_per_position = 1.0 / (1.0 / q + e_min);
  return stats;
}

// --------------------------------------------------------------------------
// Per-algorithm block models (mirrors of mining_kernels.cpp).
// --------------------------------------------------------------------------

BlockProfile algo1_block(const gpusim::DeviceSpec& dev, const WorkloadSpec& s, int t,
                         const KernelCostProfile& p) {
  const double N = static_cast<double>(s.db_size);
  BlockModel block(t, dev.warp_size);
  block.segment(
      [&](int) {
        LaneTotals lt;
        lt.instr = N * (p.unbuffered_scan_instr + 2) + 1;  // scan + fetch + ep load; store
        lt.tex = N;
        lt.glob = N + 1;
        lt.glob_bytes = N * 1 + 4;
        return lt;
      },
      /*ends_with_sync=*/false);
  return block.finish({TexAccessKind::kBroadcast, N, /*sharing_key=*/1});
}

BlockProfile algo2_block(const gpusim::DeviceSpec& dev, const WorkloadSpec& s, int t,
                         const KernelCostProfile& p) {
  const std::int64_t B = s.params.buffer_bytes;
  const int L = s.level;
  BlockModel block(t, dev.warp_size);

  bool first = true;
  for (std::int64_t base = 0; base < s.db_size; base += B) {
    const std::int64_t n = std::min<std::int64_t>(B, s.db_size - base);
    const bool upfront = first;
    first = false;
    // Load segment (plus the one-time episode staging in the first segment).
    block.segment(
        [&, n, upfront](int lane) {
          LaneTotals lt;
          if (upfront) {
            lt.instr += L;
            lt.glob += L;
            lt.glob_bytes += L;
          }
          const auto c = static_cast<double>(copy_count(n, t, lane));
          lt.instr += c * (p.buffer_copy_instr + 2);  // copy math + fetch + store
          lt.tex += c;
          lt.shared += c;
          return lt;
        },
        /*ends_with_sync=*/true);
    // Process segment: every thread scans the whole buffer.
    block.segment(
        [&, n](int) {
          LaneTotals lt;
          lt.instr = static_cast<double>(n) * (p.buffered_scan_instr + 1);
          lt.shared = static_cast<double>(n);
          return lt;
        },
        /*ends_with_sync=*/true);
  }
  // Final store.
  block.segment(
      [](int) {
        LaneTotals lt;
        lt.instr = 1;
        lt.glob = 1;
        lt.glob_bytes = 4;
        return lt;
      },
      /*ends_with_sync=*/false);
  return block.finish(
      {TexAccessKind::kCoalescedStream, static_cast<double>(s.db_size), /*sharing_key=*/2});
}

BlockProfile algo3_block(const gpusim::DeviceSpec& dev, const WorkloadSpec& s, int t,
                         const KernelCostProfile& p) {
  const int L = s.level;
  const bool expiry = s.params.expiry.enabled();
  const bool simple = expiry || L == 1;  // no composition machinery
  BlockModel block(t, dev.warp_size);

  // Map segment: episode staging + chunk scan (+ boundary rescan with
  // expiry) + outcome store, ending at the barrier.
  block.segment(
      [&](int lane) {
        LaneTotals lt;
        lt.instr += L;  // episode staging
        lt.glob += L;
        lt.glob_bytes += L;
        const Range chunk = thread_chunk(s.db_size, t, lane);
        const auto c = static_cast<double>(chunk.size());
        if (!simple) {
          lt.instr += c * (p.block_scan_instr + 2 + L * p.automaton_step_instr);
          lt.tex += c;
          lt.glob += c;
          lt.glob_bytes += c;
          lt.instr += 2.0 * L;  // outcome packing + stores (device memory)
          lt.glob += L;
          lt.glob_bytes += 4.0 * L;
        } else {
          lt.instr += c * (p.block_scan_instr + 2 + p.automaton_step_instr);
          lt.tex += c;
          lt.glob += c;
          lt.glob_bytes += c;
          if (expiry && chunk.end < s.db_size) {
            const auto w = static_cast<double>(
                rescan_len(s.db_size, chunk.end, s.params.expiry.window));
            lt.instr += w * (p.rescan_instr + 1 + p.automaton_step_instr);
            lt.tex += w;
          }
          lt.instr += 2;  // outcome store
          lt.glob += 1;
          lt.glob_bytes += 4;
        }
        return lt;
      },
      /*ends_with_sync=*/true);
  // Fold segment: thread 0 only, reading the device-memory transfer table.
  block.segment(
      [&](int lane) {
        LaneTotals lt;
        if (lane == 0) {
          lt.instr = static_cast<double>(t) * (p.fold_step_instr + 1) + 1;
          lt.glob = static_cast<double>(t) + 1;
          lt.glob_bytes = 4.0 * t + 4;
        }
        return lt;
      },
      /*ends_with_sync=*/false);
  return block.finish(
      {TexAccessKind::kStridedPerLane, static_cast<double>(s.db_size), /*sharing_key=*/0});
}

BlockProfile algo4_block(const gpusim::DeviceSpec& dev, const WorkloadSpec& s, int t,
                         const KernelCostProfile& p) {
  const std::int64_t B = s.params.buffer_bytes;
  const int L = s.level;
  const bool expiry = s.params.expiry.enabled();
  const bool simple = expiry || L == 1;  // no composition machinery
  BlockModel block(t, dev.warp_size);

  bool first = true;
  for (std::int64_t base = 0; base < s.db_size; base += B) {
    const std::int64_t n = std::min<std::int64_t>(B, s.db_size - base);
    const bool upfront = first;
    first = false;
    // Load segment: (first) episode staging, (later, !expiry) thread-0 fold
    // of the previous iteration, cooperative copy.
    block.segment(
        [&, n, upfront](int lane) {
          LaneTotals lt;
          if (upfront) {
            lt.instr += L;
            lt.glob += L;
            lt.glob_bytes += L;
          } else if (!simple && lane == 0) {
            lt.instr += static_cast<double>(t) * (p.fold_step_instr + 1);
            lt.glob += static_cast<double>(t);
            lt.glob_bytes += 4.0 * t;
          }
          const auto c = static_cast<double>(copy_count(n, t, lane));
          lt.instr += c * (p.buffer_copy_instr + 2);
          lt.tex += c;
          lt.shared += c;
          return lt;
        },
        /*ends_with_sync=*/true);
    // Process segment.
    block.segment(
        [&, n, base](int lane) {
          LaneTotals lt;
          const Range slice = thread_chunk(n, t, lane);
          const auto c = static_cast<double>(slice.size());
          if (!simple) {
            lt.instr += c * (p.block_scan_instr + 2 + L * p.automaton_step_instr);
            lt.shared += c;
            lt.glob += c;
            lt.glob_bytes += c;
            lt.instr += 2.0 * L;  // outcome stores to device memory
            lt.glob += L;
            lt.glob_bytes += 4.0 * L;
          } else {
            lt.instr += c * (p.block_scan_instr + 2 + p.automaton_step_instr);
            lt.shared += c;
            lt.glob += c;
            lt.glob_bytes += c;
            const std::int64_t bound = base + slice.end;
            if (expiry && bound < s.db_size) {
              const auto w = static_cast<double>(
                  rescan_len(s.db_size, bound, s.params.expiry.window));
              lt.instr += w * (p.rescan_instr + 1 + p.automaton_step_instr);
              lt.tex += w;
            }
          }
          return lt;
        },
        /*ends_with_sync=*/true);
  }

  if (!simple) {
    // Final fold + store (thread 0).
    block.segment(
        [&](int lane) {
          LaneTotals lt;
          if (lane == 0) {
            lt.instr = static_cast<double>(t) * (p.fold_step_instr + 1) + 1;
            lt.glob = static_cast<double>(t) + 1;
            lt.glob_bytes = 4.0 * t + 4;
          }
          return lt;
        },
        /*ends_with_sync=*/false);
  } else {
    // Outcome store, barrier, then thread-0 sum + store.
    block.segment(
        [](int) {
          LaneTotals lt;
          lt.instr = 2;
          lt.glob = 1;
          lt.glob_bytes = 4;
          return lt;
        },
        /*ends_with_sync=*/true);
    block.segment(
        [&](int lane) {
          LaneTotals lt;
          if (lane == 0) {
            lt.instr = static_cast<double>(t) * (p.fold_step_instr + 1) + 1;
            lt.glob = static_cast<double>(t) + 1;
            lt.glob_bytes = 4.0 * t + 4;
          }
          return lt;
        },
        /*ends_with_sync=*/false);
  }
  return block.finish(
      {TexAccessKind::kCoalescedStream, static_cast<double>(s.db_size), /*sharing_key=*/4});
}

// Mirror of algo5_kernel for a block owning `slots_in_block` episode slots
// (thread `lane` owns copy_count(slots_in_block, t, lane) of them).  Exact
// for the dense contiguous-restart path; expectation over a uniform stream
// for the bucketed path (see the header comment).
BlockProfile algo5_block(const gpusim::DeviceSpec& dev, const WorkloadSpec& s, int t,
                         std::int64_t slots_in_block, const KernelCostProfile& p) {
  const std::int64_t B = s.params.buffer_bytes;
  const int L = s.level;
  const double A = static_cast<double>(s.alphabet_size);
  const double drain_rate =
      s.symbol_freq.empty() ? 1.0 / A : bucket_drain_rate(s.symbol_freq, L);
  const bool dense = s.params.semantics == gm::core::Semantics::kContiguousRestart;
  // Trie-bucketed: token drains replace per-automaton drains, scaled by the
  // measured distinct-prefix mass; the dense contiguous-restart fallback
  // charges identically to the flat formulation (the kernel runs the same
  // per-automaton loop), so the flag is ignored there.
  const bool trie = s.params.trie_buckets && !dense;
  const double eps = s.prefix_compression;
  const bool expiry = s.params.expiry.enabled();
  // The kernel clamps deadlines the same way (windows beyond the stream are
  // indistinguishable from |DB|).
  const std::int64_t window = std::min(s.params.expiry.window, s.db_size);
  const BucketExpiryStats ex = (!dense && expiry && L > 1)
                                   ? bucket_expiry_stats(drain_rate, L, window)
                                   : BucketExpiryStats{};
  // A deadline pushed at position t only pops (and can only expire) if it
  // matures inside the stream, t + W < |DB|: the fraction of attempts whose
  // heap entry is ever revisited.
  const double mature_frac =
      s.db_size > window
          ? static_cast<double>(s.db_size - window) / static_cast<double>(s.db_size)
          : 0.0;
  BlockModel block(t, dev.warp_size);

  const auto owned_of = [&](int lane) {
    return static_cast<double>(copy_count(slots_in_block, t, lane));
  };

  bool first = true;
  for (std::int64_t base = 0; base < s.db_size; base += B) {
    const std::int64_t n = std::min<std::int64_t>(B, s.db_size - base);
    const bool upfront = first;
    first = false;
    // Load segment (+ one-time episode staging and initial bucket filing).
    block.segment(
        [&, n, upfront](int lane) {
          LaneTotals lt;
          if (upfront) {
            const double owned = owned_of(lane);
            lt.instr += owned * L;
            lt.glob += owned * L;
            lt.glob_bytes += owned * L;
            if (!dense) lt.instr += owned * p.bucket_file_instr;
          }
          const auto c = static_cast<double>(copy_count(n, t, lane));
          lt.instr += c * (p.buffer_copy_instr + 2);
          lt.tex += c;
          lt.shared += c;
          return lt;
        },
        /*ends_with_sync=*/true);
    // Scan segment: threads with no automata skip the whole buffer.
    block.segment(
        [&, n](int lane) {
          LaneTotals lt;
          const double owned = owned_of(lane);
          if (owned == 0) return lt;
          const auto N = static_cast<double>(n);
          lt.shared += N;
          if (dense) {
            lt.instr += N * (p.buffered_scan_instr + 1 + owned * p.automaton_step_instr);
          } else if (trie) {
            // Expectation, not exact: drain events shrink by the
            // distinct-prefix mass eps (one token per shared prefix), while
            // accept events stay per-episode — every occurrence of every
            // candidate still completes individually at rate q / L.  Each
            // token drain re-reads/writes one automaton record (2 global
            // ops, 8 bytes) like a flat drain.
            const double token_drains = owned * N * drain_rate * eps;
            const double accepts = owned * N * drain_rate / static_cast<double>(L);
            lt.instr += N * (p.bucket_probe_instr + 1) +
                        token_drains * (p.trie_drain_instr + p.bucket_file_instr + 2) +
                        accepts * p.trie_accept_instr;
            lt.glob += 2 * token_drains;
            lt.glob_bytes += 8 * token_drains;
            if (expiry && L > 1) {
              // The trie engine refreshes a token's deadline at every
              // surviving arrival (a push per token drain) and pops the
              // matured share of attempts, which also start per token.
              const double attempts = owned * N * ex.attempts_per_position * eps;
              lt.instr += (token_drains + attempts * mature_frac) * p.expiry_heap_instr;
            }
          } else {
            // Expected drains: every automaton awaits exactly one symbol, so
            // each position hits a given automaton's bucket w.p. 1/alphabet
            // on a uniform stream, or bucket_drain_rate under measured skew.
            const double drains = owned * N * drain_rate;
            lt.instr += N * (p.bucket_probe_instr + 1) +
                        drains * (p.bucket_drain_instr + p.automaton_step_instr +
                                  p.bucket_file_instr + 2);
            lt.glob += 2 * drains;
            lt.glob_bytes += 8 * drains;
            if (expiry && L > 1) {
              // One deadline push per attempt start plus a pop for the
              // matured share, at the renewal attempt rate (= drains / L
              // when the window is wide); the expired share additionally
              // re-files under episode[0], stores its reset state, and
              // leaves a stale bucket entry that later drains to a
              // generation-tag miss.
              const double attempts = owned * N * ex.attempts_per_position;
              const double expired = attempts * ex.expiry_prob * mature_frac;
              lt.instr += attempts * (1.0 + mature_frac) * p.expiry_heap_instr +
                          expired * (p.bucket_file_instr + p.bucket_drain_instr);
              lt.glob += expired;
              lt.glob_bytes += 4.0 * expired;
            }
          }
          return lt;
        },
        /*ends_with_sync=*/true);
  }
  // Final count stores.
  block.segment(
      [&](int lane) {
        LaneTotals lt;
        const double owned = owned_of(lane);
        lt.instr = 2 * owned;
        lt.glob = owned;
        lt.glob_bytes = 4 * owned;
        return lt;
      },
      /*ends_with_sync=*/false);
  return block.finish(
      {TexAccessKind::kCoalescedStream, static_cast<double>(s.db_size), /*sharing_key=*/5});
}

}  // namespace

double bucket_drain_rate(std::span<const double> symbol_freq, int level) {
  gm::expects(!symbol_freq.empty(), "drain rate needs at least one symbol frequency");
  gm::expects(level >= 1, "drain rate needs a positive level");
  double total = 0.0;
  double mean_dwell = 0.0;
  double mean_dwell_sq = 0.0;
  const double n = static_cast<double>(symbol_freq.size());
  for (const double p : symbol_freq) {
    gm::expects(p >= 0.0, "symbol frequencies must be non-negative");
    total += p;
    if (p <= 0.0) return 0.0;  // a dead bucket parks every automaton reaching it
    mean_dwell += (1.0 / p) / n;
    mean_dwell_sq += (1.0 / (p * p)) / n;
  }
  gm::expects(std::abs(total - 1.0) < 1e-6, "symbol frequencies must sum to 1");
  const double variance = std::max(0.0, mean_dwell_sq - mean_dwell * mean_dwell);
  const double cv_sq = variance / (mean_dwell * mean_dwell);
  return (1.0 / mean_dwell) * (1.0 + cv_sq / static_cast<double>(level));
}

std::vector<double> measured_symbol_freq(std::span<const core::Symbol> database,
                                         int alphabet_size) {
  gm::expects(alphabet_size >= 1, "alphabet must be non-empty");
  std::vector<double> freq(static_cast<std::size_t>(alphabet_size), 0.0);
  for (const core::Symbol s : database) {
    gm::expects(static_cast<int>(s) < alphabet_size, "database symbol outside alphabet");
    freq[static_cast<std::size_t>(s)] += 1.0;
  }
  const double denom =
      static_cast<double>(database.size()) + static_cast<double>(alphabet_size);
  for (double& f : freq) f = (f + 1.0) / denom;
  return freq;
}

gpusim::LaunchConfig model_launch_config(const WorkloadSpec& spec) {
  const LaunchGeometry geo =
      launch_geometry(spec.params.algorithm, spec.episode_count, spec.level,
                      spec.params.threads_per_block, spec.params.buffer_bytes);
  gpusim::LaunchConfig config;
  config.grid = gpusim::Dim3(static_cast<int>(geo.blocks));
  config.block = gpusim::Dim3(spec.params.threads_per_block);
  config.shared_mem_per_block = geo.shared_mem_per_block;
  config.registers_per_thread = kRegistersPerThread;
  return config;
}

gpusim::KernelProfile model_profile(const gpusim::DeviceSpec& device, const WorkloadSpec& spec,
                                    const KernelCostProfile& costs) {
  gm::expects(spec.db_size > 0, "database must be non-empty");
  gm::expects(spec.episode_count > 0, "need at least one episode");
  validate_launch_params(spec.params, spec.level);

  const int t = spec.params.threads_per_block;
  const LaunchGeometry geo =
      launch_geometry(spec.params.algorithm, spec.episode_count, spec.level,
                      spec.params.threads_per_block, spec.params.buffer_bytes);
  KernelProfile profile;

  if (is_bucketed(spec.params.algorithm)) {
    gm::expects(spec.alphabet_size >= 1 && spec.alphabet_size <= 255,
                "bucketed model needs an alphabet size in [1, 255]");
    gm::expects(spec.symbol_freq.empty() ||
                    spec.symbol_freq.size() == static_cast<std::size_t>(spec.alphabet_size),
                "symbol_freq must be empty (uniform) or carry one entry per alphabet symbol");
    gm::expects(!spec.params.trie_buckets ||
                    (spec.prefix_compression > 0.0 && spec.prefix_compression <= 1.0),
                "trie model needs prefix_compression in (0, 1]");
    // Blocks own thread_chunk slices of the episode list: the first
    // `extra` blocks carry one slot more than the rest.
    const std::int64_t base = spec.episode_count / geo.blocks;
    const std::int64_t extra = spec.episode_count % geo.blocks;
    if (extra > 0) profile.add_block(algo5_block(device, spec, t, base + 1, costs), extra);
    if (geo.blocks > extra) {
      profile.add_block(algo5_block(device, spec, t, base, costs), geo.blocks - extra);
    }
    return profile;
  }

  BlockProfile block;
  switch (spec.params.algorithm) {
    case Algorithm::kThreadTexture: block = algo1_block(device, spec, t, costs); break;
    case Algorithm::kThreadBuffered: block = algo2_block(device, spec, t, costs); break;
    case Algorithm::kBlockTexture: block = algo3_block(device, spec, t, costs); break;
    case Algorithm::kBlockBuffered: block = algo4_block(device, spec, t, costs); break;
    case Algorithm::kBlockBucketed: break;  // handled above
  }
  profile.add_block(block, geo.blocks);
  return profile;
}

gpusim::TimeBreakdown predict_mining_time(const gpusim::DeviceSpec& device,
                                          const WorkloadSpec& spec,
                                          const gpusim::CostModel& model,
                                          const KernelCostProfile& costs) {
  return model.predict(device, model_launch_config(spec), model_profile(device, spec, costs));
}

}  // namespace gm::kernels

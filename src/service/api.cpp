#include "service/api.hpp"

namespace gm::service {

std::string_view to_string(Disposition disposition) noexcept {
  switch (disposition) {
    case Disposition::kServed: return "served";
    case Disposition::kCached: return "cached";
    case Disposition::kTruncated: return "truncated";
    case Disposition::kRejected: return "rejected";
  }
  return "rejected";
}

}  // namespace gm::service

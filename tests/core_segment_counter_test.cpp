// Chunked counting and spanning-correction tests (paper Figure 5), including
// randomized property tests that the state-composition fix is exact.
#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.hpp"
#include "core/candidate_gen.hpp"
#include "core/segment_counter.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"

namespace gm::core {
namespace {

const Alphabet kAbc = Alphabet::english_uppercase();

TEST(ChunkBoundaries, CoverAndBalance) {
  const auto b = chunk_boundaries(10, 3);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0);
  EXPECT_EQ(b[1], 4);  // remainder to the lowest chunks
  EXPECT_EQ(b[2], 7);
  EXPECT_EQ(b[3], 10);
}

TEST(ChunkBoundaries, MoreChunksThanSymbols) {
  const auto b = chunk_boundaries(2, 4);
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b.back(), 2);  // trailing chunks empty
}

TEST(BufferedSliceBoundaries, MatchPerBufferChunking) {
  // 10 symbols, buffer of 4, 2 threads: buffers [0,4),[4,8),[8,10),
  // each split into 2 slices.
  const auto b = buffered_slice_boundaries(10, 4, 2);
  const std::vector<std::int64_t> expected = {0, 2, 4, 6, 8, 9, 10};
  EXPECT_EQ(b, expected);
}

TEST(SpanningFix, PaperFigure5Scenario) {
  // Figure 5: searching B => C with a chunk split that severs an occurrence;
  // without the fix one appearance is lost.
  const Sequence db = kAbc.parse("ABCBCA");
  const Episode bc = Episode::from_text(kAbc, "BC");
  const auto serial =
      count_occurrences(bc, db, Semantics::kNonOverlappedSubsequence);
  EXPECT_EQ(serial, 2);

  // Split right between the B and the C of the second occurrence.
  const std::vector<std::int64_t> bounds = {0, 4, 6};
  EXPECT_LT(count_with_boundaries(bc, db, bounds, Semantics::kNonOverlappedSubsequence, {},
                                  SpanningFix::kNone),
            serial);
  EXPECT_EQ(count_with_boundaries(bc, db, bounds, Semantics::kNonOverlappedSubsequence, {},
                                  SpanningFix::kStateComposition),
            serial);
}

TEST(SegmentTransfer, EntryStatesBehaveIndependently) {
  const Sequence db = kAbc.parse("CAB");
  const Episode abc = Episode::from_text(kAbc, "ABC");
  const auto transfer = segment_transfer(abc.symbols(), Semantics::kNonOverlappedSubsequence,
                                         {}, db, 0, 3);
  ASSERT_EQ(transfer.by_entry_state.size(), 3u);
  // Entry state 0: sees C,A,B -> ends in state 2, no completion.
  EXPECT_EQ(transfer.by_entry_state[0].count, 0);
  EXPECT_EQ(transfer.by_entry_state[0].exit_state, 2);
  // Entry state 2 (waiting for C): completes at the first symbol, then A,B.
  EXPECT_EQ(transfer.by_entry_state[2].count, 1);
  EXPECT_EQ(transfer.by_entry_state[2].exit_state, 2);
}

class CompositionProperty
    : public ::testing::TestWithParam<std::tuple<Semantics, int /*level*/, int /*chunks*/>> {};

TEST_P(CompositionProperty, MatchesSerialOracleOnRandomData) {
  const auto [semantics, level, chunks] = GetParam();
  Rng rng(0xC0FFEE ^ static_cast<unsigned>(level * 131 + chunks));
  for (int trial = 0; trial < 12; ++trial) {
    const auto size = static_cast<std::int64_t>(50 + rng.below(400));
    const Alphabet alphabet(4);  // small alphabet => many matches and spans
    const Sequence db = data::uniform_database(alphabet, size, rng());
    const auto episodes = all_distinct_episodes(alphabet, level);
    for (const auto& e : episodes) {
      const auto expected = count_occurrences(e, db, semantics);
      const auto chunked =
          count_chunked(e, db, chunks, semantics, {}, SpanningFix::kStateComposition);
      ASSERT_EQ(chunked, expected)
          << "episode " << e.to_string(alphabet) << " size " << size << " chunks " << chunks;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompositionProperty,
    ::testing::Combine(::testing::Values(Semantics::kNonOverlappedSubsequence,
                                         Semantics::kContiguousRestart),
                       ::testing::Values(1, 2, 3), ::testing::Values(2, 7, 32)));

class ExpiryRescanProperty
    : public ::testing::TestWithParam<std::tuple<int /*window*/, int /*chunks*/>> {};

TEST_P(ExpiryRescanProperty, ApproximatesSerialOracleWithinTolerance) {
  // The overlap-rescan fix is a documented approximation even with expiry:
  // the rescan automaton's greedy consumption near a boundary can disagree
  // with the serial automaton's.  It must recover at least the independent
  // per-chunk count and stay close to the oracle on random data.
  const auto [window, chunks] = GetParam();
  const ExpiryPolicy expiry{window};
  Rng rng(0xFEED ^ static_cast<unsigned>(window * 17 + chunks));
  std::int64_t total_abs_error = 0;
  std::int64_t total_expected = 0;
  std::int64_t boundary_episode_pairs = 0;
  for (int trial = 0; trial < 12; ++trial) {
    // Keep chunks at least 4x the window: the rescan approximation is only
    // meaningful when boundaries are far apart relative to the window (the
    // paper's regime: ~768-symbol chunks vs. small expiry thresholds).
    const auto size = std::max<std::int64_t>(static_cast<std::int64_t>(60 + rng.below(300)),
                                             4LL * window * chunks);
    const Alphabet alphabet(4);
    const Sequence db = data::uniform_database(alphabet, size, rng());
    for (int level = 1; level <= 3; ++level) {
      for (const auto& e : all_distinct_episodes(alphabet, level)) {
        const auto expected =
            count_occurrences(e, db, Semantics::kNonOverlappedSubsequence, expiry);
        const auto independent = count_chunked(e, db, chunks,
                                               Semantics::kNonOverlappedSubsequence, expiry,
                                               SpanningFix::kNone);
        const auto patched = count_chunked(e, db, chunks, Semantics::kNonOverlappedSubsequence,
                                           expiry, SpanningFix::kOverlapRescan);
        ASSERT_GE(patched, independent)
            << "rescan must only add crossers: " << e.to_string(alphabet);
        total_abs_error += std::abs(patched - expected);
        total_expected += expected;
        boundary_episode_pairs += chunks - 1;
      }
    }
  }
  // Aggregate accuracy: the greedy mismatch near a boundary costs a fraction
  // of one occurrence per (boundary, episode) pair on this very dense data
  // (4-letter alphabet); overall the approximation stays within 10% of the
  // oracle.  The exact alternative is kStateComposition.
  EXPECT_LE(static_cast<double>(total_abs_error),
            0.02 * static_cast<double>(total_expected) +
                0.3 * static_cast<double>(boundary_episode_pairs) + 2.0)
      << "window " << window << " chunks " << chunks;
  EXPECT_LE(static_cast<double>(total_abs_error), 0.10 * static_cast<double>(total_expected))
      << "window " << window << " chunks " << chunks;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ExpiryRescanProperty,
                         ::testing::Combine(::testing::Values(2, 5, 16),
                                            ::testing::Values(2, 5, 19)));

TEST(OverlapRescanWithoutExpiry, IsDocumentedApproximation) {
  // Without a span bound, an occurrence whose start lies more than `window`
  // symbols before the boundary is invisible to the rescan: span 8 here,
  // window 2*level = 4.
  const Sequence db = kAbc.parse("AXXXXXXXB");
  const Episode ab = Episode::from_text(kAbc, "AB");
  const std::vector<std::int64_t> bounds = {0, 5, 9};
  const auto approx = count_with_boundaries(ab, db, bounds,
                                            Semantics::kNonOverlappedSubsequence, {},
                                            SpanningFix::kOverlapRescan);
  EXPECT_EQ(approx, 0);
  EXPECT_EQ(count_occurrences(ab, db, Semantics::kNonOverlappedSubsequence), 1);
}

TEST(ExpiryShrinksSpanningWork, FewerCrossersWithTighterWindows) {
  // Paper section 6 prediction: with expiration, fewer episodes span
  // boundaries.  Measure crossers as (composition - none) for decreasing
  // windows on the same data.
  Rng rng(99);
  const Alphabet alphabet(4);
  const Sequence db = data::uniform_database(alphabet, 4000, rng());
  const Episode e = Episode::from_text(kAbc, "ABC");

  auto crossers = [&](ExpiryPolicy expiry) {
    const auto full = count_occurrences(e, db, Semantics::kNonOverlappedSubsequence, expiry);
    const auto none = count_chunked(e, db, 64, Semantics::kNonOverlappedSubsequence, expiry,
                                    SpanningFix::kNone);
    return full - none;
  };

  const auto unbounded = crossers({});
  const auto wide = crossers({64});
  const auto tight = crossers({4});
  EXPECT_GE(unbounded, wide);
  EXPECT_GE(wide, tight);
  EXPECT_GE(tight, 0);
}

}  // namespace
}  // namespace gm::core

#include "bench_support/paper_setup.hpp"

#include "core/candidate_gen.hpp"
#include "data/generators.hpp"

namespace gm::bench {

std::int64_t paper_episode_count(int level) {
  return static_cast<std::int64_t>(gm::core::episode_space_size(26, level));
}

gpusim::TimeBreakdown paper_breakdown(const gpusim::DeviceSpec& device,
                                      kernels::Algorithm algorithm, int level,
                                      int threads_per_block, const gpusim::CostModel& model) {
  kernels::WorkloadSpec spec;
  spec.db_size = data::kPaperDatabaseSize;
  spec.episode_count = paper_episode_count(level);
  spec.level = level;
  spec.params.algorithm = algorithm;
  spec.params.threads_per_block = threads_per_block;
  return kernels::predict_mining_time(device, spec, model);
}

double paper_time_ms(const gpusim::DeviceSpec& device, kernels::Algorithm algorithm, int level,
                     int threads_per_block, const gpusim::CostModel& model) {
  return paper_breakdown(device, algorithm, level, threads_per_block, model).total_ms;
}

}  // namespace gm::bench

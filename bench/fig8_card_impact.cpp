// Figure 8: impact of the card — Algorithm 1 at level 2 (clock-bound,
// oldest card fastest: C7) and Algorithm 3 at level 1 (bandwidth-bound,
// newest card fastest: C8), across the three testbed cards.
#include <iostream>

#include "bench_support/paper_setup.hpp"
#include "bench_support/report.hpp"
#include "kernels/mining_kernels.hpp"

int main() {
  using gm::bench::paper_time_ms;
  using gm::kernels::Algorithm;

  const auto sweep = gm::bench::paper_thread_sweep();
  const auto cards = gpusim::paper_testbed();
  const std::vector<std::string> labels = {"8800GTS512", "9800GX2", "GTX280"};

  struct Panel {
    std::string name;
    Algorithm algorithm;
    int level;
  };
  const std::vector<Panel> panels = {
      {"Fig 8(a): Algorithm 1 on level 2", Algorithm::kThreadTexture, 2},
      {"Fig 8(b): Algorithm 3 on level 1", Algorithm::kBlockTexture, 1},
  };

  for (const auto& panel : panels) {
    gm::bench::SeriesTable table(panel.name + " (ms)", "tpb", sweep);
    for (std::size_t c = 0; c < cards.size(); ++c) {
      gm::bench::Series series;
      series.label = labels[c];
      for (const int tpb : sweep) {
        series.values.push_back(paper_time_ms(cards[c], panel.algorithm, panel.level, tpb));
      }
      table.add(std::move(series));
    }
    table.print();
  }
  return 0;
}

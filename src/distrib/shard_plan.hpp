// Weighted database partition for the distribution layer.
//
// A ShardPlan splits the event stream into a shards x steal_granularity chunk
// grid: shard s owns the contiguous run of chunks [s*g, (s+1)*g), and the
// scheduler (scheduler.hpp) lets finished workers steal chunks from loaded
// ones.  Cut points are weighted by estimated per-position drain work — a
// position whose symbol appears in many candidate episodes advances more
// waiting automata — so drain-heavy regions get shorter chunks and shards
// start out balanced even on skewed streams.  The estimate is first-order
// (i.i.d. positions, no automaton state); work stealing absorbs what it
// misses, and the skew tests assert exactly that.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/episode.hpp"

namespace gm::distrib {

struct ShardPlanOptions {
  int shards = 2;
  int steal_granularity = 4;  ///< stealable chunks per shard
  /// false: plain equal-symbol chunks (the seed-era geometry; used by tests
  /// that need a deliberately misbalanced plan to provoke steals).
  bool weighted = true;
};

struct ShardPlan {
  int shards = 1;
  int steal_granularity = 1;
  /// shards * steal_granularity + 1 non-decreasing entries covering the
  /// database; chunk k spans [chunk_bounds[k], chunk_bounds[k+1]).
  std::vector<std::int64_t> chunk_bounds;
  /// Estimated drain work per chunk, in weight units (telemetry only; the
  /// scheduler balances by chunk count, the planner by symbol share).
  std::vector<double> chunk_weight;

  [[nodiscard]] int chunk_count() const noexcept {
    return static_cast<int>(chunk_bounds.size()) - 1;
  }
  [[nodiscard]] int home_shard(int chunk) const noexcept {
    return chunk / steal_granularity;
  }
};

/// Build the chunk grid for counting `episodes` over `database`.  Weighted
/// cuts equalize estimated drain work per chunk; unweighted cuts equalize
/// symbols (core::chunk_boundaries geometry).
[[nodiscard]] ShardPlan make_shard_plan(std::span<const core::Symbol> database,
                                        std::span<const core::Episode> episodes,
                                        const ShardPlanOptions& options = {});

}  // namespace gm::distrib

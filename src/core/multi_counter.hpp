// Single-scan multi-episode counting engine.
//
// The serial reference (`count_all`) re-scans the full database once per
// episode, so level-L counting costs O(|DB| * |candidates|) automaton steps.
// This engine makes ONE pass over the event stream and advances *all* episode
// automata simultaneously through a symbol -> waiting-automata bucket index:
// each automaton is filed under the symbol it is currently waiting for, so the
// work per stream symbol is proportional to the automata actually awaiting
// that symbol (|candidates| / |alphabet| in expectation) instead of
// |candidates|.  This is the accelerator-oriented transformation of the
// counting step — one stream drive, many machines — applied on the host.
//
// The engine state is struct-of-arrays: per-episode records live in parallel
// arrays indexed by dense slot ids, episode symbols sit in one contiguous
// arena, and buckets are flat index vectors — nothing is allocated per event.
//
// Episode expiry (ExpiryPolicy) is handled with lazy deadlines: starting a
// match schedules `first_pos + window` on a monotone FIFO (pushes arrive in
// nondecreasing order because positions strictly increase), and before each
// stream position every automaton whose deadline has passed is reset and
// re-bucketed to await episode[0] again (it must be able to catch a fresh
// first symbol even though its old awaited symbol never arrived).  Each slot
// is filed in exactly one bucket with a backreference, so expiry moves it by
// O(1) swap-remove and buckets never hold stale entries.
//
// kContiguousRestart semantics are served by a dense per-episode path: its
// mismatch edges mean *every* symbol can transition any in-flight automaton,
// so a waiting-symbol index cannot skip work.  The dense path still reads the
// database once, stepping each automaton per symbol.
//
// The engine is exposed two ways: the one-shot `count_all_single_scan`
// functions scan a complete span, and the incremental `MultiCounter` class
// feeds one symbol at a time — the resumable object behind streaming scan
// checkpoints (core/scan_checkpoint.hpp), whose per-episode progress can be
// captured mid-stream and reinstated later to continue bit-exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "core/episode.hpp"

namespace gm::core {

/// Count every episode in one pass over `database`.  Exactly equals
/// `count_occurrences(episodes[i], ...)` element-for-element for all inputs.
[[nodiscard]] std::vector<std::int64_t> count_all_single_scan(
    std::span<const Episode> episodes, std::span<const Symbol> database, Semantics semantics,
    ExpiryPolicy expiry = {});

/// Per-episode automaton configuration at scan end, exactly what the serial
/// automaton would hold after stepping the same span (expiry resets happen at
/// step time in both engines, so a deadline maturing past the last position
/// leaves the state intact in both).  Positions are relative to the scanned
/// span; callers folding chunk scans normalize by the chunk offset.
struct ScanExit {
  int state = 0;
  std::int64_t first_match_pos = 0;
};

/// Single-scan counting that also reports each episode's exit configuration
/// (the distrib layer's cold-scan worker).  `exits` is resized to the episode
/// count.  Counts equal the plain overload exactly.
[[nodiscard]] std::vector<std::int64_t> count_all_single_scan(
    std::span<const Episode> episodes, std::span<const Symbol> database, Semantics semantics,
    ExpiryPolicy expiry, std::vector<ScanExit>& exits);

/// One episode's complete scan configuration: the automaton state (matched
/// symbols + absolute first-match position) plus the occurrences accumulated
/// so far.  This is the per-episode unit a ScanCheckpoint persists — the
/// serial automaton's future depends on nothing else, which is what makes
/// captured scans resumable bit-exactly.
struct EpisodeProgress {
  std::int64_t count = 0;
  std::int64_t first_pos = 0;
  int state = 0;

  friend bool operator==(const EpisodeProgress&, const EpisodeProgress&) = default;
};

/// Incremental single-scan engine: feed the stream one symbol at a time via
/// `advance()` with absolute positions, capture `progress()` at any point,
/// and `restore()` it into a fresh counter to continue exactly where the
/// captured scan stopped.  Unlike the one-shot functions, expiry deadlines
/// use saturating arithmetic instead of a database-size clamp, so the engine
/// never needs to know the eventual stream length (behaviour is identical:
/// any window at least as long as the remaining stream can never fire).
class MultiCounter {
 public:
  /// `episodes` is viewed, not copied — the caller keeps it alive.
  MultiCounter(std::span<const Episode> episodes, Semantics semantics, ExpiryPolicy expiry);
  MultiCounter(MultiCounter&&) noexcept;
  MultiCounter& operator=(MultiCounter&&) noexcept;
  ~MultiCounter();

  /// Reinstate captured per-episode progress (parallel to the construction
  /// episode list).  Must be called before the first advance(); in-flight
  /// matches re-arm their expiry deadlines from the restored first_pos.
  void restore(std::span<const EpisodeProgress> progress);

  /// Feed the symbol at absolute position `pos` (strictly increasing).
  void advance(Symbol symbol, std::int64_t pos);

  /// Feed a contiguous batch: symbols[i] is at position start_pos + i.
  /// Exactly equivalent to advancing one symbol at a time, but lets the
  /// engine amortize dispatch — the dense path runs symbols innermost per
  /// slot so episode data stays register/L1-resident across the batch.
  void advance_batch(std::span<const Symbol> symbols, std::int64_t start_pos);

  /// Reset to the freshly-constructed state (counts zeroed, every automaton
  /// idle) without releasing the arena: the episode pool, buckets, and
  /// deadline queue keep their capacity, so a worker can scan many chunks
  /// with zero per-chunk allocation.
  void reset();

  /// Per-episode counts in construction order.
  [[nodiscard]] std::vector<std::int64_t> counts() const;

  /// Per-episode scan configuration, sufficient to restore() later.
  [[nodiscard]] std::vector<EpisodeProgress> progress() const;

  /// One episode's scan configuration, allocation-free.
  [[nodiscard]] EpisodeProgress progress_of(std::size_t episode) const;

  [[nodiscard]] std::size_t episode_count() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace gm::core

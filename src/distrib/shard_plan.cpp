#include "distrib/shard_plan.hpp"

#include <array>

#include "common/error.hpp"
#include "core/segment_counter.hpp"

namespace gm::distrib {
namespace {

/// Estimated drain work of one stream position carrying symbol `s`: the base
/// scan charge plus one unit per candidate occurrence of the symbol (every
/// automaton parked on `s` advances when it arrives).
std::array<double, 256> symbol_weights(std::span<const core::Episode> episodes) {
  std::array<double, 256> weight;
  weight.fill(1.0);
  for (const auto& e : episodes) {
    for (const core::Symbol s : e.symbols()) weight[s] += 1.0;
  }
  return weight;
}

}  // namespace

ShardPlan make_shard_plan(std::span<const core::Symbol> database,
                          std::span<const core::Episode> episodes,
                          const ShardPlanOptions& options) {
  gm::expects(options.shards >= 1, "need at least one shard");
  gm::expects(options.steal_granularity >= 1, "need at least one chunk per shard");

  ShardPlan plan;
  plan.shards = options.shards;
  plan.steal_granularity = options.steal_granularity;
  const int chunks = options.shards * options.steal_granularity;
  const auto size = static_cast<std::int64_t>(database.size());
  const auto weight = symbol_weights(episodes);

  if (!options.weighted) {
    plan.chunk_bounds = core::chunk_boundaries(size, chunks);
  } else {
    double total = 0.0;
    for (const core::Symbol s : database) total += weight[s];
    plan.chunk_bounds.reserve(static_cast<std::size_t>(chunks) + 1);
    plan.chunk_bounds.push_back(0);
    double running = 0.0;
    int cut = 1;
    for (std::int64_t i = 0; i < size; ++i) {
      running += weight[database[static_cast<std::size_t>(i)]];
      // A single heavy position can pass several targets at once; the extra
      // cuts land here too, leaving empty chunks the scheduler skips cheaply.
      while (cut < chunks &&
             running >= total * static_cast<double>(cut) / static_cast<double>(chunks)) {
        plan.chunk_bounds.push_back(i + 1);
        ++cut;
      }
    }
    while (static_cast<int>(plan.chunk_bounds.size()) < chunks + 1) {
      plan.chunk_bounds.push_back(size);
    }
    plan.chunk_bounds.back() = size;
  }

  plan.chunk_weight.assign(static_cast<std::size_t>(chunks), 0.0);
  for (int c = 0; c < chunks; ++c) {
    double w = 0.0;
    for (std::int64_t i = plan.chunk_bounds[static_cast<std::size_t>(c)];
         i < plan.chunk_bounds[static_cast<std::size_t>(c) + 1]; ++i) {
      w += weight[database[static_cast<std::size_t>(i)]];
    }
    plan.chunk_weight[static_cast<std::size_t>(c)] = w;
  }
  gm::ensure(plan.chunk_bounds.size() == static_cast<std::size_t>(chunks) + 1 &&
                 plan.chunk_bounds.back() == size,
             "shard plan must cover the database");
  return plan;
}

}  // namespace gm::distrib

// Market-basket temporal rules — the paper's introductory example: how often
// does {peanut butter, bread} => {jelly} occur, and does order matter?
//
// A synthetic purchase stream plants the cascade P -> B -> J (and, rarely,
// the reversed B -> P -> J); mining under both counting semantics shows that
// temporal data mining distinguishes orderings that classic association-rule
// mining conflates.
#include <algorithm>
#include <iostream>

#include "core/cpu_backend.hpp"
#include "core/miner.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "kernels/gpu_backend.hpp"

int main() {
  using namespace gm;

  // Product alphabet: 0=PeanutButter 1=Bread 2=Jelly 3..11 other groceries.
  const core::Alphabet products(12);
  auto name = [](core::Symbol s) -> std::string {
    switch (s) {
      case 0: return "PeanutButter";
      case 1: return "Bread";
      case 2: return "Jelly";
      default: return "item" + std::to_string(static_cast<int>(s));
    }
  };

  const core::Episode pbj({0, 1, 2});  // P -> B -> J
  const core::Episode bpj({1, 0, 2});  // B -> P -> J (rare)
  data::SpikeTrainConfig purchases;
  purchases.size = 30'000;
  purchases.noise_rate = 0.9;
  purchases.max_jitter = 3;
  purchases.seed = 7;
  // Plant P->B->J nine times as often as B->P->J.
  std::vector<core::Episode> planted;
  for (int i = 0; i < 9; ++i) planted.push_back(pbj);
  planted.push_back(bpj);
  const auto stream = data::spike_train(products, planted, purchases);

  std::cout << "Purchase stream of " << stream.events.size() << " events\n\n";

  // Count the two orderings under both semantics.
  for (const core::Semantics semantics :
       {core::Semantics::kNonOverlappedSubsequence, core::Semantics::kContiguousRestart}) {
    const auto c_pbj = count_occurrences(pbj, stream.events, semantics);
    const auto c_bpj = count_occurrences(bpj, stream.events, semantics);
    std::cout << to_string(semantics) << ":\n";
    std::cout << "  {" << name(0) << ", " << name(1) << "} => {" << name(2)
              << "} : " << c_pbj << "\n";
    std::cout << "  {" << name(1) << ", " << name(0) << "} => {" << name(2)
              << "} : " << c_bpj << "\n";
    std::cout << "  order matters: " << (c_pbj > 2 * c_bpj ? "yes" : "no") << "\n\n";
  }

  // Full mining run on the simulated 8800 GTS 512 — the paper's finding that
  // the *oldest* card is fastest for small problems makes it the right pick
  // for a 12-product catalogue.
  kernels::MiningLaunchParams params;
  params.algorithm = kernels::Algorithm::kBlockBuffered;
  params.threads_per_block = 256;
  kernels::SimGpuBackend gpu(gpusim::geforce_8800_gts_512(), params);

  core::MinerConfig config;
  config.support_threshold = 0.005;
  config.max_level = 3;
  // Purchases more than 10 events apart are unrelated sessions: the expiry
  // window (paper section 6) suppresses coincidental long-range triples.
  config.expiry = core::ExpiryPolicy{10};

  const auto result = core::mine_frequent_episodes(stream.events, products, gpu, config);

  std::vector<core::FrequentEpisode> level3;
  for (const auto& f : result.frequent) {
    if (f.episode.level() == 3) level3.push_back(f);
  }
  std::sort(level3.begin(), level3.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });

  std::cout << "Top temporal rules on " << gpu.name() << ":\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(level3.size(), 8); ++i) {
    std::cout << "  ";
    for (int k = 0; k < level3[i].episode.level(); ++k) {
      std::cout << (k ? " -> " : "") << name(level3[i].episode.at(k));
    }
    std::cout << "  (count " << level3[i].count << ")"
              << (level3[i].episode == pbj ? "   <- the paper's rule" : "") << "\n";
  }
  const bool pbj_on_top = !level3.empty() && level3.front().episode == pbj;
  std::cout << "\n{PeanutButter, Bread} => {Jelly} ranked first: "
            << (pbj_on_top ? "yes" : "no") << "\n";
  return pbj_on_top ? 0 : 1;
}

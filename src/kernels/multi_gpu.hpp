// Multi-die execution model.
//
// The paper's GeForce 9800 GX2 carries two G92 dies but was driven as a
// single device; this extension models the obvious dual-die strategy the
// paper leaves on the table: partition the episode set across dies, run the
// same kernel on each, and finish when the slowest die finishes (counting is
// embarrassingly parallel across episodes, so no cross-die reduce beyond
// concatenation is needed).
#pragma once

#include <vector>

#include "kernels/workload_model.hpp"

namespace gm::kernels {

struct MultiGpuPrediction {
  double total_ms = 0.0;                ///< max over dies + per-die launch
  std::vector<double> per_die_ms;
  std::vector<std::int64_t> episodes_per_die;
};

/// Predict the kernel time when `spec.episode_count` episodes are split as
/// evenly as possible across `dies` copies of `device`.
[[nodiscard]] MultiGpuPrediction predict_multi_gpu(
    const gpusim::DeviceSpec& device, int dies, const WorkloadSpec& spec,
    const gpusim::CostModel& model = gpusim::CostModel());

}  // namespace gm::kernels

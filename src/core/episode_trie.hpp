// Shared-prefix co-counting: a prefix-trie episode engine.
//
// Apriori level-L candidates share (L-1)-prefixes by construction, yet the
// single-scan engine (`core/multi_counter`) still advances one automaton per
// episode.  This engine folds the candidate set into a prefix trie and
// advances *tokens* instead: a token is one in-flight partial match pinned to
// a trie node, carrying the set of episodes that are mid-match with exactly
// that prefix and the same match start.  One token drain advances every
// episode sharing the prefix, shrinking per-symbol work from
// O(|episodes| / |alphabet|) toward O(|distinct prefixes| / |alphabet|).
//
// Why tokens and not per-node state: under non-overlapped semantics two
// episodes through the same prefix node can be desynchronized (one accepted
// and restarted while the other still waits deeper), so a node may host
// several tokens with different match starts.  Episodes inside one token are
// provably in lockstep — same matched prefix, same first_pos — so expiry and
// advancement act on the token as a unit and bit-exactness vs `SerialCounter`
// is preserved for every input.
//
// The machinery mirrors `multi_counter` deliberately: the same 256-entry
// symbol -> waiting-bucket index (buckets hold trie tokens, not automata), the
// same swap-the-bucket-before-draining discipline for repeated-symbol
// prefixes, the same generation-tagged lazy expiry deadlines, and the same
// dense per-episode fallback for kContiguousRestart (whose mismatch edges
// defeat any waiting-symbol index).
//
// Episode sets are represented as interval lists over the lexicographically
// sorted candidate order, where every subtree is one contiguous index range:
// splitting a token toward a child is interval arithmetic, and a whole idle
// subtree restarts as a single interval.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "core/episode.hpp"
#include "core/multi_counter.hpp"

namespace gm::core {

/// Prefix trie over a candidate set.  Nodes are distinct nonempty prefixes;
/// episode indices are re-ordered lexicographically (see `order()`) so that
/// every subtree covers the contiguous sorted-index range `[lo, hi)`.
class EpisodeTrie {
 public:
  struct Edge {
    Symbol symbol = 0;
    std::uint32_t node = 0;
  };

  struct Node {
    Symbol first_symbol = 0;  // depth-1 ancestor's edge symbol (== prefix[0])
    std::int32_t depth = 0;
    std::uint32_t lo = 0;  // sorted-episode index range covered by this subtree
    std::uint32_t hi = 0;
    std::vector<Edge> children;             // sorted by symbol
    std::vector<std::uint32_t> terminals;   // sorted indices of episodes ending here
  };

  /// Builds the trie.  Accepts any order (indices are sorted internally) and
  /// any mix of levels; duplicates become distinct terminals of one node.
  explicit EpisodeTrie(std::span<const Episode> episodes);

  [[nodiscard]] const Node& node(std::uint32_t index) const { return nodes_[index]; }
  [[nodiscard]] const Node& root() const { return nodes_.front(); }
  /// Root child reached by `symbol`, or 0 (the root itself) when absent.
  [[nodiscard]] std::uint32_t root_child(Symbol symbol) const {
    return root_children_[symbol];
  }
  /// Number of nodes including the root; `node_count() - 1` distinct prefixes.
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  /// Sum of episode levels == total automaton states the flat engine tracks.
  [[nodiscard]] std::int64_t total_symbols() const { return total_symbols_; }
  /// `order()[k]` = original index of the k-th episode in sorted order.
  [[nodiscard]] std::span<const std::uint32_t> order() const { return order_; }

 private:
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> order_;
  std::array<std::uint32_t, 256> root_children_{};
  std::int64_t total_symbols_ = 0;
};

/// Distinct-prefix count over total automaton states, in (0, 1]: 1.0 means no
/// two candidates share any prefix (the trie degenerates to the flat engine),
/// 1/|episodes|-ish means everything rides one shared chain.  This is the
/// candidate-set-shape signal the planner's trie cost curves consume.
[[nodiscard]] double prefix_compression(std::span<const Episode> episodes);

/// Incremental shared-prefix counting engine: feed the stream one symbol at a
/// time via `advance()`.  `database_size` clamps expiry deadlines exactly as
/// the single-scan engine does (any window >= |DB| behaves identically).
class TrieCounter {
 public:
  /// Work counters, cumulative across `advance()` calls.  The gpusim trie
  /// kernel charges instruction costs from the per-position deltas, so these
  /// define the unit of work the cost models price.
  struct Ops {
    std::int64_t probes = 0;       // bucket probes (one per sparse position)
    std::int64_t drains = 0;       // live token drains (each one a prefix step)
    std::int64_t files = 0;        // bucket filings + idle-set returns
    std::int64_t accepts = 0;      // completed episode occurrences
    std::int64_t heap_ops = 0;     // deadline pushes + fired expiries
    std::int64_t starts = 0;       // episodes swept into a fresh root token
    std::int64_t dense_steps = 0;  // dense-fallback automaton steps
  };

  TrieCounter(std::span<const Episode> episodes, Semantics semantics, ExpiryPolicy expiry,
              std::int64_t database_size);
  TrieCounter(TrieCounter&&) noexcept;
  TrieCounter& operator=(TrieCounter&&) noexcept;
  ~TrieCounter();

  void advance(Symbol symbol, std::int64_t pos);

  /// Feed a contiguous batch: symbols[i] is at position start_pos + i.
  /// Exactly equivalent to advancing one symbol at a time; the dense
  /// fallback runs symbols innermost per automaton.
  void advance_batch(std::span<const Symbol> symbols, std::int64_t start_pos);

  /// Reinstate captured per-episode progress (ORIGINAL input order, parallel
  /// to the construction episode list); must be called before the first
  /// advance().  In-flight episodes regroup into shared-prefix tokens — two
  /// episodes with the same matched prefix and first-match position are in
  /// lockstep by definition, so the regrouped engine continues bit-exactly.
  void restore(std::span<const EpisodeProgress> progress);

  /// Per-episode scan configuration in the ORIGINAL input order, sufficient
  /// to restore() into a fresh counter (an episode's state is its token's
  /// trie depth; idle episodes report state 0).
  [[nodiscard]] std::vector<EpisodeProgress> progress() const;

  /// Per-episode counts in the ORIGINAL input order.
  [[nodiscard]] std::vector<std::int64_t> counts() const;
  [[nodiscard]] const Ops& ops() const { return ops_; }
  [[nodiscard]] const EpisodeTrie& trie() const { return *trie_; }

 private:
  struct Impl;
  void advance_sparse(Symbol symbol, std::int64_t pos);

  Semantics semantics_;
  ExpiryPolicy expiry_;
  Ops ops_;
  std::unique_ptr<EpisodeTrie> trie_;              // sparse path
  std::unique_ptr<Impl> impl_;                     // sparse path
  std::vector<EpisodeAutomaton> dense_automata_;   // kContiguousRestart fallback
  std::vector<std::int64_t> dense_counts_;
};

/// Count every episode in one pass using the shared-prefix engine.  Exactly
/// equals `count_occurrences(episodes[i], ...)` element-for-element for all
/// inputs, like `count_all_single_scan`.
[[nodiscard]] std::vector<std::int64_t> count_all_trie_scan(
    std::span<const Episode> episodes, std::span<const Symbol> database, Semantics semantics,
    ExpiryPolicy expiry = {});

}  // namespace gm::core

// Unit tests for the episode-counting automaton (paper Figure 3) under both
// semantics and with expiry windows.
#include <gtest/gtest.h>

#include "core/alphabet.hpp"
#include "core/automaton.hpp"
#include "core/episode.hpp"
#include "core/serial_counter.hpp"

namespace gm::core {
namespace {

const Alphabet kAbc = Alphabet::english_uppercase();

std::int64_t count(std::string_view db, std::string_view episode, Semantics semantics,
                   ExpiryPolicy expiry = {}) {
  return count_occurrences(Episode::from_text(kAbc, episode), kAbc.parse(db), semantics,
                           expiry);
}

TEST(Automaton, Level1CountsEverySymbol) {
  EXPECT_EQ(count("AAAA", "A", Semantics::kNonOverlappedSubsequence), 4);
  EXPECT_EQ(count("AAAA", "A", Semantics::kContiguousRestart), 4);
  EXPECT_EQ(count("BBBB", "A", Semantics::kNonOverlappedSubsequence), 0);
}

TEST(Automaton, SubsequenceAllowsGaps) {
  // A...B counts as an appearance per the paper's formal definition.
  EXPECT_EQ(count("ACB", "AB", Semantics::kNonOverlappedSubsequence), 1);
  EXPECT_EQ(count("AXXXB", "AB", Semantics::kNonOverlappedSubsequence), 1);
}

TEST(Automaton, ContiguousRestartRejectsGaps) {
  EXPECT_EQ(count("ACB", "AB", Semantics::kContiguousRestart), 0);
  EXPECT_EQ(count("AB", "AB", Semantics::kContiguousRestart), 1);
}

TEST(Automaton, ContiguousRestartOnFirstSymbol) {
  // Figure 3: a mismatching symbol equal to a1 restarts at state 1.
  EXPECT_EQ(count("AAB", "AB", Semantics::kContiguousRestart), 1);
  EXPECT_EQ(count("AAAB", "AB", Semantics::kContiguousRestart), 1);
  EXPECT_EQ(count("ABAB", "AB", Semantics::kContiguousRestart), 2);
}

TEST(Automaton, NonOverlappedCountIsGreedy) {
  // A single automaton counts sequential, non-interleaved occurrences: in
  // AABB the greedy match A@0..B@2 consumes the automaton, leaving only the
  // trailing B — interleaved pairs are not counted separately.
  EXPECT_EQ(count("ABAB", "AB", Semantics::kNonOverlappedSubsequence), 2);
  EXPECT_EQ(count("ABB", "AB", Semantics::kNonOverlappedSubsequence), 1);
  EXPECT_EQ(count("AABB", "AB", Semantics::kNonOverlappedSubsequence), 1);
}

TEST(Automaton, PaperFigure5Example) {
  // Searching B => C in "ABCBCA ABCB C" style data; spanning handled later,
  // serial truth here: "ABCBCABCBC" has two non-overlapped B..C occurrences
  // in each half.
  EXPECT_EQ(count("ABCBCA", "BC", Semantics::kNonOverlappedSubsequence), 2);
  EXPECT_EQ(count("ABCBCAABCBC", "BC", Semantics::kNonOverlappedSubsequence), 4);
}

TEST(Automaton, RepeatedSymbolsInEpisode) {
  EXPECT_EQ(count("AA", "AA", Semantics::kNonOverlappedSubsequence), 1);
  EXPECT_EQ(count("AAAA", "AA", Semantics::kNonOverlappedSubsequence), 2);
  // ABABA: A@0 pairs with A@2, the final A@4 is left unmatched.
  EXPECT_EQ(count("ABABA", "AA", Semantics::kNonOverlappedSubsequence), 1);
}

TEST(Automaton, TripleEpisode) {
  EXPECT_EQ(count("ABC", "ABC", Semantics::kNonOverlappedSubsequence), 1);
  EXPECT_EQ(count("AXBXC", "ABC", Semantics::kNonOverlappedSubsequence), 1);
  EXPECT_EQ(count("ABCABC", "ABC", Semantics::kNonOverlappedSubsequence), 2);
  // AABBCC: the greedy automaton uses A@0,B@2,C@4; the interleaved second
  // copy is consumed and only one occurrence is counted.
  EXPECT_EQ(count("AABBCC", "ABC", Semantics::kNonOverlappedSubsequence), 1);
  EXPECT_EQ(count("CBA", "ABC", Semantics::kNonOverlappedSubsequence), 0);
}

TEST(Automaton, OrderMattersTemporalDataMining) {
  // The paper stresses {peanut butter, bread} => jelly differs from
  // {bread, peanut butter} => jelly: order is significant.
  EXPECT_EQ(count("ABJ", "ABJ", Semantics::kNonOverlappedSubsequence), 1);
  EXPECT_EQ(count("ABJ", "BAJ", Semantics::kNonOverlappedSubsequence), 0);
}

TEST(Automaton, ExpiryWindowRejectsSlowOccurrences) {
  const ExpiryPolicy w3{3};
  // Span (end - start) must be < 3.
  EXPECT_EQ(count("AB", "AB", Semantics::kNonOverlappedSubsequence, w3), 1);
  EXPECT_EQ(count("AXB", "AB", Semantics::kNonOverlappedSubsequence, w3), 1);
  EXPECT_EQ(count("AXXB", "AB", Semantics::kNonOverlappedSubsequence, w3), 0);
}

TEST(Automaton, ExpiryAllowsRestartAfterAbandon) {
  const ExpiryPolicy w2{2};
  // First A expires, second A completes with B.
  EXPECT_EQ(count("AXAB", "AB", Semantics::kNonOverlappedSubsequence, w2), 1);
}

TEST(Automaton, ExpiredSymbolCanStartFreshMatch) {
  const ExpiryPolicy w2{2};
  // At the expiry position the current symbol may begin a new match.
  EXPECT_EQ(count("BXXAB", "AB", Semantics::kNonOverlappedSubsequence, w2), 1);
  EXPECT_EQ(count("AXA", "AB", Semantics::kNonOverlappedSubsequence, w2), 0);
}

TEST(Automaton, StateRestoreRoundTrips) {
  const Episode e = Episode::from_text(kAbc, "ABC");
  EpisodeAutomaton a(e.symbols(), Semantics::kNonOverlappedSubsequence);
  EXPECT_EQ(a.state(), 0);
  a.step(0, 0);  // 'A'
  EXPECT_EQ(a.state(), 1);
  EXPECT_EQ(a.first_match_pos(), 0);
  EpisodeAutomaton b(e.symbols(), Semantics::kNonOverlappedSubsequence);
  b.restore(a.state(), a.first_match_pos());
  b.step(1, 1);  // 'B'
  b.step(2, 2);  // 'C'
  EXPECT_EQ(b.state(), 0);  // reset after acceptance
}

TEST(Automaton, EmptyDatabaseCountsZero) {
  EXPECT_EQ(count("", "AB", Semantics::kNonOverlappedSubsequence), 0);
}

TEST(Automaton, SemanticsToString) {
  EXPECT_EQ(to_string(Semantics::kNonOverlappedSubsequence), "non-overlapped-subsequence");
  EXPECT_EQ(to_string(Semantics::kContiguousRestart), "contiguous-restart");
}

}  // namespace
}  // namespace gm::core

// Neuroscience scenario (the paper's motivating application): discover
// neuronal firing cascades in a multi-electrode recording.
//
// A synthetic spike train over 20 "neurons" embeds three ground-truth
// cascades in background noise.  The miner — running on the simulated
// GTX 280 with the fastest configuration the paper found for medium problem
// sizes — must surface exactly those cascades among its top level-3
// episodes, with an expiry window standing in for biological plausibility
// (a cascade spanning seconds is noise, not causation).
#include <algorithm>
#include <iostream>

#include "core/miner.hpp"
#include "data/generators.hpp"
#include "kernels/gpu_backend.hpp"

int main() {
  using namespace gm;

  const core::Alphabet neurons(20);
  const std::vector<core::Episode> cascades = {
      core::Episode({2, 11, 5}),   // stimulus -> relay -> motor
      core::Episode({7, 3, 18}),
      core::Episode({14, 9, 0}),
  };

  data::SpikeTrainConfig recording;
  recording.size = 60'000;
  recording.noise_rate = 0.85;
  recording.max_jitter = 2;
  recording.seed = 424242;
  const data::SpikeTrain train = data::spike_train(neurons, cascades, recording);

  std::cout << "Synthetic recording: " << train.events.size() << " spikes from "
            << neurons.size() << " neurons; planted cascades:\n";
  for (std::size_t i = 0; i < cascades.size(); ++i) {
    std::cout << "  " << cascades[i].to_string(neurons) << " x" << train.planted_copies[i]
              << "\n";
  }

  // Mine on the simulated GTX 280.  An expiry window of 12 events keeps only
  // tight cascades; support threshold tuned to the planted density.
  kernels::MiningLaunchParams params;
  params.algorithm = kernels::Algorithm::kThreadBuffered;
  params.threads_per_block = 96;  // the paper's level-3 recommendation
  kernels::SimGpuBackend gpu(gpusim::geforce_gtx_280(), params);

  core::MinerConfig config;
  config.support_threshold = 0.002;
  config.max_level = 3;
  config.expiry = core::ExpiryPolicy{12};

  const core::MiningResult result =
      core::mine_frequent_episodes(train.events, neurons, gpu, config);

  double total_kernel_ms = 0.0;
  for (const auto& level : result.levels) total_kernel_ms += level.simulated_kernel_ms;
  std::cout << "\nMined " << result.total_frequent() << " frequent episodes in "
            << total_kernel_ms << " ms of predicted GPU time ("
            << result.levels.size() << " levels)\n";

  // Rank level-3 survivors by count; the planted cascades must lead.
  std::vector<core::FrequentEpisode> level3;
  for (const auto& f : result.frequent) {
    if (f.episode.level() == 3) level3.push_back(f);
  }
  std::sort(level3.begin(), level3.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });

  std::cout << "\nTop level-3 cascades:\n";
  int hits = 0;
  for (std::size_t i = 0; i < std::min<std::size_t>(level3.size(), 6); ++i) {
    const bool planted =
        std::find(cascades.begin(), cascades.end(), level3[i].episode) != cascades.end();
    if (planted && i < cascades.size()) ++hits;
    std::cout << "  " << level3[i].episode.to_string(neurons) << "  count="
              << level3[i].count << (planted ? "   <- planted" : "") << "\n";
  }
  std::cout << "\nRecovered " << hits << "/" << cascades.size()
            << " planted cascades in the top ranks\n";
  return hits == static_cast<int>(cascades.size()) ? 0 : 1;
}

// Frequent episode mining driver — the paper's Algorithm 1.
//
// Level by level: generate candidate episodes, count them with the supplied
// backend (the expensive, parallelizable step), eliminate infrequent ones,
// and expand the survivors into the next level's candidates until no
// candidate survives or `max_level` is reached.
#pragma once

#include <cstdint>
#include <vector>

#include "core/candidate_gen.hpp"
#include "core/counting.hpp"

namespace gm::core {

struct MinerConfig {
  /// Support threshold alpha: an episode is frequent when count/n > alpha.
  double support_threshold = 0.0;
  /// Stop after this level (0 = run until the candidate set is empty).
  /// The paper's future work (section 6) discusses L >> 3; the default keeps
  /// runs bounded the same way the paper's evaluation does.
  int max_level = 3;
  Semantics semantics = Semantics::kNonOverlappedSubsequence;
  ExpiryPolicy expiry = {};
  /// Apply Apriori sub-episode pruning during candidate generation.
  bool apriori_prune = true;
};

struct FrequentEpisode {
  Episode episode;
  std::int64_t count = 0;
  double support = 0.0;
};

struct LevelReport {
  int level = 0;
  std::int64_t candidates = 0;
  std::int64_t frequent = 0;
  double count_host_ms = 0.0;
  double simulated_kernel_ms = 0.0;
};

struct MiningResult {
  std::vector<FrequentEpisode> frequent;  ///< all levels, discovery order
  std::vector<LevelReport> levels;
  /// True when a LevelObserver stopped the run before the candidate set was
  /// exhausted (e.g. the service layer's latency-budget enforcement): the
  /// levels counted so far are complete and exact, later ones never ran.
  bool truncated = false;

  [[nodiscard]] std::int64_t total_frequent() const noexcept {
    return static_cast<std::int64_t>(frequent.size());
  }
};

/// Per-level hook into the mining loop.  The service layer uses it to predict
/// each level's cost before counting (admission/budget enforcement) and to
/// collect per-level plan notes; passing no observer reproduces the classic
/// one-shot behaviour bit for bit.
class LevelObserver {
 public:
  virtual ~LevelObserver() = default;
  /// Called with each level's candidate set before the counting request is
  /// issued.  Return false to stop the run: the level is not counted and the
  /// result is marked truncated.
  virtual bool on_level_start(int level, std::span<const Episode> candidates) = 0;
  /// Called after each counted level's elimination step.
  virtual void on_level_done(const LevelReport& report) = 0;
};

/// Validate a MinerConfig, throwing gm::PreconditionError tagged
/// ErrorCode::kInvalidConfig with an actionable message when a field is
/// outside its domain (support_threshold outside [0,1], negative max_level).
/// mine_frequent_episodes and the service layer's request admission both
/// apply it, so a bad config is rejected before any counting work runs.
void validate_miner_config(const MinerConfig& config);

/// Run Algorithm 1 over `database` using `backend` for the counting step.
/// The optional observer sees every level; the two-argument-shorter classic
/// signature is unchanged.
[[nodiscard]] MiningResult mine_frequent_episodes(std::span<const Symbol> database,
                                                  const Alphabet& alphabet,
                                                  CountingBackend& backend,
                                                  const MinerConfig& config,
                                                  LevelObserver* observer = nullptr);

}  // namespace gm::core

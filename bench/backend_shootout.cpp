// backend_shootout — wall-clock comparison of the CPU counting backends on
// configurable workload shapes, and an end-to-end cross-check that every
// backend returns bit-identical counts to the serial reference.
//
// The interesting axes are the ones the paper characterizes:
//   * stream length (--db): favors database sharding (cpu-sharded)
//   * candidate count (--episodes): favors episode parallelism (cpu-parallel)
//   * alphabet size (--alphabet): favors the waiting-symbol bucket index
//     (cpu-single-scan), whose per-symbol work is |episodes|/|alphabet|
//
// The default configuration is a large-alphabet, long-stream shape where the
// single-scan engine should beat the episode-parallel backend outright.
//
//   backend_shootout [--db N] [--alphabet N] [--episodes N] [--level L]
//                    [--threads T] [--expiry W] [--semantics subseq|contig]
//                    [--repeat R] [--seed S] [--zipf S] [--prefix-pool P]
//                    [--gpu] [--card 8800|gx2|gtx280] [--tpb N]
//                    [--validate-planner] [--tpb-sweep A,B,...] [--devices N]
//                    [--max-regret R] [--json PATH]
//                    [--calibration PROFILE.json] [--fit-calibration OUT.json]
//                    [--shard-sweep 1..8] [--min-efficiency E]
//
// --prefix-pool P draws every candidate's first level-1 symbols from a pool
// of P random prefixes instead of fully at random, mimicking the shared
// prefixes of an apriori level-L candidate set; the measured prefix mass
// lands near (P * (L-1) + |episodes|) / (|episodes| * L), the regime where
// the shared-prefix trie formulations (cpu-trie-scan, gpusim-algo5-trie)
// overtake the flat ones.  The planner-validation JSON records the measured
// prefix_compression per level plus trie-vs-flat pick tallies.
//
// --gpu additionally runs every simulated-GPU formulation (algorithms 1-5)
// through the functional engine and cross-checks its counts end to end; use
// a small --db, the functional engine is orders of magnitude slower than the
// CPU backends.  Exits nonzero on any backend disagreement, so a tiny
// configuration doubles as a CTest smoke test (label bench_smoke).  The
// block-level algorithms (3/4) under expiry use the documented overlap-rescan
// approximation and are reported as "approx" instead of being gated.
//
// --validate-planner switches to the planner-honesty mode: for each mining
// level 1..L it asks planner::plan_level for this level's winner, then
// *measures* every feasible candidate (CPU backends by wall-clock,
// simulated-GPU candidates — only with --gpu — by the engine-measured kernel
// time) and reports the planner's regret, measured(pick) / measured(best).
// --max-regret R turns the report into a gate (exit 1 beyond R); --json
// writes the whole decision-and-measurement table as a machine-readable
// BENCH artifact (the CI bench job uploads it).  --zipf S draws the database
// from a Zipf(S) symbol distribution instead of uniform, exercising the
// skew-aware occupancy terms end to end.
//
// --shard-sweep A..B (or a comma list) switches to the distrib scaling mode:
// for each device count N it runs the work-stealing shard engine twice —
// host workers (wall-clock) and simulated cards (deterministic kernel-time)
// — cross-checks both against the serial reference, and reports per-count
// throughput, scaling efficiency base_ms / (N * ms_N), and the scheduler's
// steal counters.  --json writes the table as a BENCH artifact
// (BENCH_scaling.json in CI); --min-efficiency E gates on the *simulated*
// efficiency at 4 cards (kernel time is deterministic, so the gate holds on
// a 2-core CI runner where wall-clock efficiency cannot).
//
// Calibration: --fit-calibration OUT.json (implies --validate-planner) fits
// a CalibrationProfile — the planner's cost constants — from this run's
// measured (candidate, time) samples plus the paper-figure probes of
// bench/calibration_table (weight 0.1), and persists it as JSON.
// --calibration PROFILE.json loads a previously fitted profile in place of
// the shipped constants, so `--fit-calibration out.json` followed by
// `--calibration out.json --validate-planner` demonstrates the regret drop
// on the host that produced the profile (the seeded RNG makes both runs see
// the same stream and candidate sets).
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <limits>
#include <numeric>
#include <string>
#include <vector>

#include "bench_support/cli_args.hpp"
#include "bench_support/json.hpp"
#include "bench_support/paper_refs.hpp"
#include "bench_support/paper_setup.hpp"
#include "calib/calibration.hpp"
#include "calib/fitter.hpp"
#include "common/rng.hpp"
#include "core/candidate_gen.hpp"
#include "core/cpu_backend.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "distrib/distrib_backend.hpp"
#include "kernels/mining_kernels.hpp"
#include "planner/planner.hpp"
#include "planner/workload.hpp"
#include "service/backend_factory.hpp"

namespace {

struct Options {
  std::int64_t db_size = 2'000'000;
  int alphabet = 200;
  int episodes = 400;
  int level = 3;
  int threads = 0;
  std::int64_t expiry = 0;
  int repeat = 3;
  std::uint64_t seed = 2009;
  double zipf = 0.0;  ///< 0 = uniform stream
  int prefix_pool = 0;  ///< 0 = fully random episodes; >0 = shared prefixes
  bool gpu = false;
  std::string card = "gtx280";
  int tpb = 32;
  bool validate_planner = false;
  std::vector<int> tpb_sweep;      ///< planner validation; empty = {tpb}
  double max_regret = 0.0;         ///< planner validation gate; 0 = report only
  std::string json_path;           ///< planner validation artifact; empty = none
  std::string calibration_path;    ///< fitted profile to load; empty = shipped
  std::string fit_path;            ///< profile to fit and write; empty = no fit
  std::vector<int> shard_sweep;    ///< distrib scaling mode; empty = off
  double min_efficiency = 0.0;     ///< scaling gate at 4 cards; 0 = report only
  int devices = 0;                 ///< planner validation: device_sweep 1..N; 0 = off
  gm::core::Semantics semantics = gm::core::Semantics::kNonOverlappedSubsequence;
};

std::vector<gm::core::Episode> random_episodes(const gm::core::Alphabet& alphabet, int count,
                                               int level, int prefix_pool, gm::Rng& rng) {
  std::vector<gm::core::Symbol> pool(static_cast<std::size_t>(alphabet.size()));
  std::iota(pool.begin(), pool.end(), gm::core::Symbol{0});
  const auto draw_distinct = [&](int n) {
    // Partial Fisher-Yates: the first `n` slots become a random
    // distinct-symbol prefix (the paper's episode space).
    for (int i = 0; i < n; ++i) {
      const auto j = static_cast<std::size_t>(i) +
                     static_cast<std::size_t>(rng.below(pool.size() - static_cast<std::size_t>(i)));
      std::swap(pool[static_cast<std::size_t>(i)], pool[j]);
    }
    return std::vector<gm::core::Symbol>(pool.begin(), pool.begin() + n);
  };

  std::vector<gm::core::Episode> episodes;
  episodes.reserve(static_cast<std::size_t>(count));
  if (prefix_pool > 0 && level > 1) {
    // Shared-prefix mode: every episode starts with one of `prefix_pool`
    // fixed (level-1)-prefixes and ends in a random unused symbol, the shape
    // an apriori join produces.
    std::vector<std::vector<gm::core::Symbol>> prefixes;
    prefixes.reserve(static_cast<std::size_t>(prefix_pool));
    for (int p = 0; p < prefix_pool; ++p) prefixes.push_back(draw_distinct(level - 1));
    for (int e = 0; e < count; ++e) {
      auto symbols = prefixes[rng.below(prefixes.size())];
      gm::core::Symbol last;
      do {
        last = static_cast<gm::core::Symbol>(rng.below(static_cast<std::size_t>(alphabet.size())));
      } while (std::find(symbols.begin(), symbols.end(), last) != symbols.end());
      symbols.push_back(last);
      episodes.emplace_back(std::move(symbols));
    }
  } else {
    for (int e = 0; e < count; ++e) episodes.emplace_back(draw_distinct(level));
  }
  return episodes;
}

/// Floor applied to measured times before forming the regret ratio, so
/// scheduler jitter between near-instant candidates cannot manufacture
/// regret (a contended CI runner perturbs sub-0.1ms wall-clock samples by
/// ~0.1ms; at the ms-plus scale where regret is meaningful the floor is
/// negligible).  Recorded in the JSON artifact as `regret_floor_ms` so the
/// reported ratio stays reproducible from the reported times.
constexpr double kRegretFloorMs = 0.05;

/// Planner-honesty mode: plan each level, measure every feasible candidate,
/// report (and optionally gate on) the planner's regret.
int run_planner_validation(const Options& opt, const gm::core::Alphabet& alphabet,
                           const gm::core::Sequence& db, gm::Rng& rng) {
  namespace planner = gm::planner;

  planner::PlannerOptions popt;
  popt.device = gpusim::device_by_name(opt.card);
  popt.cpu_threads = opt.threads;
  popt.enable_gpu = opt.gpu;
  if (!opt.tpb_sweep.empty()) popt.tpb_sweep = opt.tpb_sweep;
  else if (opt.gpu) popt.tpb_sweep = {opt.tpb};
  // --devices N opens the planner's device-count axis: distrib candidates
  // at every count in 1..N enter the scored (and measured) table.
  for (int n = 1; n <= opt.devices; ++n) popt.device_sweep.push_back(n);

  // Applying the default (shipped) profile is a bit-identical no-op, so the
  // load-and-apply path is exercised on every validation run.
  gm::calib::CalibrationProfile profile;
  if (!opt.calibration_path.empty()) {
    profile = gm::calib::load_profile(opt.calibration_path);
    std::printf("loaded calibration %s (source=%s, %d samples%s%s)\n",
                opt.calibration_path.c_str(), profile.source.c_str(), profile.sample_count,
                profile.host.empty() ? "" : ", fitted on ",
                profile.host.empty() ? "" : profile.host.c_str());
  }
  gm::calib::apply_profile(profile, popt);

  std::printf("planner validation: card=%s gpu=%s levels=1..%d max-regret=%s calibration=%s\n\n",
              opt.card.c_str(), opt.gpu ? "yes" : "no", opt.level,
              opt.max_regret > 0 ? std::to_string(opt.max_regret).c_str() : "off",
              opt.calibration_path.empty() ? "shipped" : opt.calibration_path.c_str());

  gm::bench::JsonWriter json;
  json.begin_object();
  json.field("schema", "gm-bench-shootout/1");
  json.field("driver", "backend_shootout --validate-planner");
  json.key("workload").begin_object();
  json.field("db_size", opt.db_size)
      .field("alphabet", opt.alphabet)
      .field("episodes", opt.episodes)
      .field("max_level", opt.level)
      .field("expiry", opt.expiry)
      .field("semantics", to_string(opt.semantics))
      .field("zipf", opt.zipf)
      .field("prefix_pool", opt.prefix_pool)
      .field("card", opt.card)
      .field("cpu_threads", gm::core::resolved_thread_count(opt.threads))
      .field("seed", static_cast<std::int64_t>(opt.seed));
  json.end_object();
  json.field("max_regret_gate", opt.max_regret);
  json.field("regret_floor_ms", kRegretFloorMs);
  json.field("calibration",
             opt.calibration_path.empty() ? "shipped" : opt.calibration_path);
  json.field("calibration_source", profile.source);
  json.key("levels").begin_array();

  bool gate_failed = false;
  bool all_agree = true;
  double worst_regret = 1.0;
  int trie_picks = 0;
  int flat_picks = 0;
  std::vector<gm::calib::FitSample> fit_samples;

  for (int level = 1; level <= opt.level; ++level) {
    // Level 1 counts every singleton (as the miner does); deeper levels use
    // a seeded random candidate set of the configured size.
    const std::vector<gm::core::Episode> episodes =
        level == 1 ? gm::core::all_distinct_episodes(alphabet, 1)
                   : random_episodes(alphabet, opt.episodes, level, opt.prefix_pool, rng);

    gm::core::CountRequest request;
    request.database = db;
    request.episodes = episodes;
    request.semantics = opt.semantics;
    request.expiry = gm::core::ExpiryPolicy{opt.expiry};

    const planner::Workload workload = planner::workload_of(request, opt.alphabet);
    const planner::Plan plan = planner::plan_level(workload, popt);

    std::printf("level %d (%zu episodes): %s\n", level, episodes.size(),
                plan.explanation.c_str());
    std::printf("  %-24s %12s %12s %8s  %s\n", "candidate", "predicted", "measured",
                "pred/meas", "note");

    // Measure every feasible candidate; the serial oracle anchors the
    // agreement check (the pick itself might use a documented approximation
    // when require_exact is relaxed, so it cannot serve as the reference).
    const std::vector<std::int64_t> reference = gm::core::count_all(
        request.episodes, request.database, request.semantics, request.expiry);
    std::vector<double> measured(plan.table.size(),
                                 std::numeric_limits<double>::quiet_NaN());
    double best_measured = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < plan.table.size(); ++i) {
      const planner::ScoredCandidate& candidate = plan.table[i];
      if (!candidate.feasible) continue;
      const auto backend = planner::make_planned_backend(candidate.config, popt);
      // Device-time candidates are measured by simulated kernel time: the
      // single-card formulations through the functional engine, the distrib
      // card flavor through its per-chunk device model.
      const bool is_gpu =
          candidate.config.kind == planner::BackendKind::kGpuSim ||
          (candidate.config.kind == planner::BackendKind::kDistrib &&
           candidate.config.distrib_gpu);
      // The simulated kernel time is deterministic: one repetition.
      const int reps = is_gpu ? 1 : opt.repeat;
      gm::core::CountResult result;
      double best_ms = 0.0;
      for (int r = 0; r < reps; ++r) {
        result = backend->count(request);
        const double ms = is_gpu ? result.simulated_kernel_ms : result.host_ms;
        best_ms = (r == 0) ? ms : std::min(best_ms, ms);
      }
      measured[i] = best_ms;
      best_measured = std::min(best_measured, best_ms);
      if (!opt.fit_path.empty()) {
        gm::calib::FitSample sample;
        sample.workload = workload;
        sample.config = candidate.config;
        sample.device = popt.device;
        sample.cost_params = popt.cost_params;
        sample.measured_ms = best_ms;
        fit_samples.push_back(std::move(sample));
      }
      // Exactness ride-along (free: the counts were just computed).  The
      // planner's require_exact gate keeps approximate formulations out of
      // the feasible table, so every measured candidate must agree.
      if (result.counts != reference) {
        std::printf("  %-24s DISAGREES with the reference counts\n",
                    candidate.config.label().c_str());
        all_agree = false;
      }
    }

    const double pick_measured = measured[0];
    const double regret =
        (pick_measured + kRegretFloorMs) / (best_measured + kRegretFloorMs);
    worst_regret = std::max(worst_regret, regret);

    const bool trie_pick =
        plan.winner().config.label().find("trie") != std::string::npos;
    (trie_pick ? trie_picks : flat_picks) += 1;

    json.begin_object();
    json.field("level", level);
    json.field("episode_count", static_cast<std::int64_t>(episodes.size()));
    json.field("prefix_compression", workload.prefix_compression);
    json.field("pick", plan.winner().config.label());
    json.field("pick_predicted_ms", plan.winner().predicted_ms);
    json.field("pick_measured_ms", pick_measured);
    json.field("best_measured_ms", best_measured);
    json.field("regret", regret);
    json.field("explanation", plan.explanation);
    json.key("candidates").begin_array();
    for (std::size_t i = 0; i < plan.table.size(); ++i) {
      const planner::ScoredCandidate& candidate = plan.table[i];
      json.begin_object();
      json.field("label", candidate.config.label());
      json.field("backend", planner::backend_kind_name(candidate.config.kind));
      json.field("feasible", candidate.feasible);
      json.field("predicted_ms", candidate.feasible ? candidate.predicted_ms : -1.0);
      json.field("measured_ms", measured[i]);  // NaN (-> null) when unmeasured
      json.field("note", candidate.reason);
      json.end_object();

      if (candidate.feasible) {
        const bool is_best = measured[i] == best_measured;
        std::printf("  %-24s %12.3f %12.3f %8.2f  %s%s%s\n",
                    candidate.config.label().c_str(), candidate.predicted_ms, measured[i],
                    measured[i] > 0 ? candidate.predicted_ms / measured[i] : 0.0,
                    i == 0 ? "<- pick " : "", is_best ? "[best] " : "",
                    candidate.reason.c_str());
      } else {
        std::printf("  %-24s %12s %12s %8s  rejected: %s\n",
                    candidate.config.label().c_str(), "-", "-", "-",
                    candidate.reason.c_str());
      }
    }
    json.end_array();
    json.end_object();

    std::printf("  regret: %.3fx (pick %.3f ms vs best %.3f ms, %.2f ms noise floor)\n\n",
                regret, pick_measured, best_measured, kRegretFloorMs);
    if (opt.max_regret > 0 && regret > opt.max_regret) gate_failed = true;
  }

  json.end_array();
  json.field("worst_regret", worst_regret);
  json.field("trie_picks", trie_picks);
  json.field("flat_picks", flat_picks);
  json.field("agree", all_agree);
  std::printf("picks: %d shared-prefix trie, %d flat\n", trie_picks, flat_picks);

  if (!opt.fit_path.empty()) {
    // Fit from this run's measurements, anchored by the paper-figure probes
    // at a tenth of the weight, starting from whatever profile this run
    // loaded (so fits can be refined incrementally).
    const std::size_t measured_count = fit_samples.size();
    for (gm::calib::FitSample& ref : gm::bench::paper_reference_samples(0.1)) {
      fit_samples.push_back(std::move(ref));
    }
    gm::calib::CalibrationProfile fitted = profile;
    const gm::calib::FitReport fit = gm::calib::fit_profile(fitted, fit_samples);
    char host[192];
    std::snprintf(host, sizeof(host),
                  "db=%lld alphabet=%d episodes=%d level=%d threads=%d expiry=%lld "
                  "zipf=%g gpu=%s card=%s seed=%llu",
                  static_cast<long long>(opt.db_size), opt.alphabet, opt.episodes,
                  opt.level, gm::core::resolved_thread_count(opt.threads),
                  static_cast<long long>(opt.expiry), opt.zipf, opt.gpu ? "yes" : "no",
                  opt.card.c_str(), static_cast<unsigned long long>(opt.seed));
    fitted.host = host;
    gm::calib::save_profile(fitted, opt.fit_path);
    std::printf(
        "fitted calibration from %zu measured + %zu paper-ref samples: "
        "loss %.4f -> %.4f in %d sweeps, %zu constants adjusted\nwrote %s\n",
        measured_count, fit_samples.size() - measured_count, fit.initial_loss,
        fit.final_loss, fit.sweeps, fit.adjusted.size(), opt.fit_path.c_str());

    json.key("fit").begin_object();
    json.field("path", opt.fit_path);
    json.field("measured_samples", static_cast<std::int64_t>(measured_count));
    json.field("paper_ref_samples",
               static_cast<std::int64_t>(fit_samples.size() - measured_count));
    json.field("initial_loss", fit.initial_loss);
    json.field("final_loss", fit.final_loss);
    json.field("sweeps", fit.sweeps);
    json.key("adjusted").begin_array();
    for (const std::string& name : fit.adjusted) json.value(name);
    json.end_array();
    json.end_object();
  }

  json.end_object();
  if (!opt.json_path.empty()) {
    json.write_file(opt.json_path);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }

  if (!all_agree) {
    std::cerr << "ERROR: a planner candidate disagreed with the reference counts\n";
    return 1;
  }
  if (gate_failed) {
    std::cerr << "ERROR: planner regret " << worst_regret << "x exceeds the --max-regret "
              << opt.max_regret << "x gate\n";
    return 1;
  }
  return 0;
}

/// Distrib scaling mode: run the work-stealing shard engine at every swept
/// device count, twice per count (host workers by wall-clock, simulated
/// cards by deterministic kernel time), and report throughput + scaling
/// efficiency + steal counters.  The --min-efficiency gate reads the
/// simulated efficiency at 4 cards: kernel time is a pure model output, so
/// the gate holds on CI runners with fewer host cores than shards.
int run_shard_sweep(const Options& opt, const gm::core::Alphabet& alphabet,
                    const gm::core::Sequence& db, gm::Rng& rng) {
  namespace distrib = gm::distrib;

  const auto episodes =
      random_episodes(alphabet, opt.episodes, opt.level, opt.prefix_pool, rng);
  gm::core::CountRequest request;
  request.database = db;
  request.episodes = episodes;
  request.semantics = opt.semantics;
  request.expiry = gm::core::ExpiryPolicy{opt.expiry};
  const std::vector<std::int64_t> reference = gm::core::count_all(
      request.episodes, request.database, request.semantics, request.expiry);

  std::printf("shard sweep: db=%lld alphabet=%d episodes=%zu level=%d expiry=%lld "
              "card=%s repeat=%d\n\n",
              static_cast<long long>(opt.db_size), opt.alphabet, episodes.size(),
              opt.level, static_cast<long long>(opt.expiry), opt.card.c_str(),
              opt.repeat);
  std::printf("%7s %12s %12s %10s %10s %8s %8s %10s\n", "shards", "host ms", "sim ms",
              "host eff", "sim eff", "steals", "chunks", "rescanned");

  gm::bench::JsonWriter json;
  json.begin_object();
  json.field("schema", "gm-bench-scaling/1");
  json.field("driver", "backend_shootout --shard-sweep");
  json.key("workload").begin_object();
  json.field("db_size", opt.db_size)
      .field("alphabet", opt.alphabet)
      .field("episodes", static_cast<std::int64_t>(episodes.size()))
      .field("level", opt.level)
      .field("expiry", opt.expiry)
      .field("semantics", to_string(opt.semantics))
      .field("zipf", opt.zipf)
      .field("card", opt.card)
      .field("seed", static_cast<std::int64_t>(opt.seed));
  json.end_object();
  json.field("min_efficiency_gate", opt.min_efficiency);
  json.key("sweep").begin_array();

  // Episode-symbol steps per run: the throughput numerator both flavors share.
  const double steps =
      static_cast<double>(opt.db_size) * static_cast<double>(episodes.size());

  bool all_agree = true;
  double host_base_ms = 0.0;  // 1-shard times anchor the efficiency ratios
  double sim_base_ms = 0.0;
  double gate_efficiency = -1.0;
  int gate_shards = 0;

  for (const int shards : opt.shard_sweep) {
    double host_ms = 0.0;
    double sim_ms = 0.0;
    std::int64_t steals = 0;
    std::int64_t rescanned = 0;
    int chunks = 0;

    for (const bool gpu : {false, true}) {
      distrib::DistribOptions options;
      options.shards = shards;
      options.worker =
          gpu ? distrib::WorkerKind::kGpuSim : distrib::WorkerKind::kSingleScan;
      options.device = gpusim::device_by_name(opt.card);
      options.launch.threads_per_block = opt.tpb;
      distrib::DistribBackend backend(options);
      // The simulated kernel time is deterministic: one repetition suffices.
      const int reps = gpu ? 1 : opt.repeat;
      gm::core::CountResult result;
      double best_ms = 0.0;
      for (int r = 0; r < reps; ++r) {
        result = backend.count(request);
        const double ms = gpu ? result.simulated_kernel_ms : result.host_ms;
        best_ms = (r == 0) ? ms : std::min(best_ms, ms);
      }
      if (result.counts != reference) {
        std::printf("%7d %s DISAGREES with the reference counts\n", shards,
                    backend.name().c_str());
        all_agree = false;
      }
      if (gpu) {
        sim_ms = best_ms;
      } else {
        host_ms = best_ms;
        steals = backend.last_run().steal.steals;
        rescanned = backend.last_run().rescanned_symbols;
        chunks = backend.last_run().chunks;
      }
    }

    if (shards == 1) {
      host_base_ms = host_ms;
      sim_base_ms = sim_ms;
    }
    const double host_eff =
        host_base_ms > 0.0 ? host_base_ms / (shards * host_ms) : 0.0;
    const double sim_eff = sim_base_ms > 0.0 ? sim_base_ms / (shards * sim_ms) : 0.0;
    // The gate anchors at 4 cards (the ISSUE's reference point); if the
    // sweep stops short, the largest swept count stands in.
    if (shards == 4 || (gate_shards != 4 && shards > gate_shards)) {
      gate_shards = shards;
      gate_efficiency = sim_eff;
    }

    json.begin_object();
    json.field("shards", shards);
    json.field("host_ms", host_ms);
    json.field("host_msteps_per_s", host_ms > 0.0 ? steps / host_ms / 1e3 : 0.0);
    json.field("host_efficiency", host_eff);
    json.field("simulated_kernel_ms", sim_ms);
    json.field("simulated_msteps_per_s", sim_ms > 0.0 ? steps / sim_ms / 1e3 : 0.0);
    json.field("simulated_efficiency", sim_eff);
    json.field("steals", steals);
    json.field("chunks", chunks);
    json.field("rescanned_symbols", rescanned);
    json.end_object();

    std::printf("%7d %12.3f %12.3f %9.2f%% %9.2f%% %8lld %8d %10lld\n", shards, host_ms,
                sim_ms, 100.0 * host_eff, 100.0 * sim_eff,
                static_cast<long long>(steals), chunks,
                static_cast<long long>(rescanned));
  }

  json.end_array();
  json.field("gate_shards", gate_shards);
  json.field("gate_efficiency", gate_efficiency);
  json.field("agree", all_agree);
  json.end_object();
  if (!opt.json_path.empty()) {
    json.write_file(opt.json_path);
    std::printf("wrote %s\n", opt.json_path.c_str());
  }

  std::printf("\nsimulated efficiency at %d cards: %.2f%% (gate %s)\n", gate_shards,
              100.0 * gate_efficiency,
              opt.min_efficiency > 0.0 ? std::to_string(opt.min_efficiency).c_str()
                                       : "off");
  if (!all_agree) {
    std::cerr << "ERROR: a distrib run disagreed with the reference counts\n";
    return 1;
  }
  if (opt.min_efficiency > 0.0 && gate_efficiency < opt.min_efficiency) {
    std::cerr << "ERROR: simulated scaling efficiency " << gate_efficiency << " at "
              << gate_shards << " cards is below the --min-efficiency "
              << opt.min_efficiency << " gate\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> const char* {
        if (i + 1 >= argc) {
          std::cerr << arg << " needs a value\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--db")
        opt.db_size = gm::bench::parse_int64(arg, next(), 1, 1'000'000'000);
      else if (arg == "--alphabet") opt.alphabet = gm::bench::parse_int(arg, next(), 1, 255);
      else if (arg == "--episodes")
        opt.episodes = gm::bench::parse_int(arg, next(), 1, 10'000'000);
      else if (arg == "--level") opt.level = gm::bench::parse_int(arg, next(), 1, 255);
      else if (arg == "--threads") opt.threads = gm::bench::parse_int(arg, next(), 0, 1 << 20);
      else if (arg == "--expiry")
        opt.expiry = gm::bench::parse_int64(arg, next(), 0, 1'000'000'000);
      else if (arg == "--repeat") opt.repeat = gm::bench::parse_int(arg, next(), 1, 1000);
      else if (arg == "--seed")
        opt.seed = static_cast<std::uint64_t>(
            gm::bench::parse_int64(arg, next(), 0, std::numeric_limits<std::int64_t>::max()));
      else if (arg == "--zipf") opt.zipf = gm::bench::parse_double(arg, next(), 0.0, 10.0);
      else if (arg == "--prefix-pool")
        opt.prefix_pool = gm::bench::parse_int(arg, next(), 0, 10'000'000);
      else if (arg == "--gpu") opt.gpu = true;
      else if (arg == "--card") opt.card = next();
      else if (arg == "--tpb") opt.tpb = gm::bench::parse_int(arg, next(), 1, 1 << 16);
      else if (arg == "--validate-planner") opt.validate_planner = true;
      else if (arg == "--tpb-sweep") {
        std::string list = next();
        for (std::size_t pos = 0; pos <= list.size();) {
          const std::size_t comma = std::min(list.find(',', pos), list.size());
          opt.tpb_sweep.push_back(
              gm::bench::parse_int(arg, list.substr(pos, comma - pos), 1, 1 << 16));
          pos = comma + 1;
        }
      }
      else if (arg == "--shard-sweep") {
        // "1..8" sweeps the whole range; "1,2,4,8" names the counts.
        const std::string list = next();
        const std::size_t dots = list.find("..");
        if (dots != std::string::npos) {
          const int lo = gm::bench::parse_int(arg, list.substr(0, dots), 1, 1 << 10);
          const int hi =
              gm::bench::parse_int(arg, list.substr(dots + 2), lo, 1 << 10);
          for (int n = lo; n <= hi; ++n) opt.shard_sweep.push_back(n);
        } else {
          for (std::size_t pos = 0; pos <= list.size();) {
            const std::size_t comma = std::min(list.find(',', pos), list.size());
            opt.shard_sweep.push_back(
                gm::bench::parse_int(arg, list.substr(pos, comma - pos), 1, 1 << 10));
            pos = comma + 1;
          }
        }
      }
      else if (arg == "--min-efficiency")
        opt.min_efficiency = gm::bench::parse_double(arg, next(), 0.0, 1.0);
      else if (arg == "--devices") opt.devices = gm::bench::parse_int(arg, next(), 1, 1 << 10);
      else if (arg == "--max-regret")
        opt.max_regret = gm::bench::parse_double(arg, next(), 1.0, 1000.0);
      else if (arg == "--json") opt.json_path = next();
      else if (arg == "--calibration") opt.calibration_path = next();
      else if (arg == "--fit-calibration") opt.fit_path = next();
      else if (arg == "--semantics") {
        const std::string name = next();
        if (name == "contig") opt.semantics = gm::core::Semantics::kContiguousRestart;
        else if (name != "subseq") {
          std::cerr << "unknown semantics: " << name << "\n";
          return 2;
        }
      } else {
        std::cerr << "unknown option: " << arg << "\n";
        return 2;
      }
    }
  } catch (const gm::PreconditionError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (opt.level > opt.alphabet) {
    std::cerr << "invalid configuration: --level exceeds --alphabet\n";
    return 2;
  }
  // Fitting runs the same plan-and-measure loop validation does.
  if (!opt.fit_path.empty()) opt.validate_planner = true;
  if (opt.validate_planner && !opt.shard_sweep.empty()) {
    std::cerr << "--validate-planner and --shard-sweep are separate modes\n";
    return 2;
  }
  if (!opt.validate_planner &&
      (opt.max_regret > 0 || !opt.tpb_sweep.empty() || !opt.calibration_path.empty() ||
       opt.devices > 0)) {
    std::cerr << "--max-regret/--tpb-sweep/--calibration/--devices only apply with "
                 "--validate-planner\n";
    return 2;
  }
  if (!opt.json_path.empty() && !opt.validate_planner && opt.shard_sweep.empty()) {
    std::cerr << "--json only applies with --validate-planner or --shard-sweep\n";
    return 2;
  }
  if (opt.min_efficiency > 0 && opt.shard_sweep.empty()) {
    std::cerr << "--min-efficiency only applies with --shard-sweep\n";
    return 2;
  }

  const gm::core::Alphabet alphabet(opt.alphabet);
  gm::Rng rng(opt.seed);
  const auto db = opt.zipf > 0.0
                      ? gm::data::zipf_database(alphabet, opt.db_size, opt.zipf, rng())
                      : gm::data::uniform_database(alphabet, opt.db_size, rng());

  if (opt.validate_planner) try {
    return run_planner_validation(opt, alphabet, db, rng);
  } catch (const gm::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (!opt.shard_sweep.empty()) try {
    return run_shard_sweep(opt, alphabet, db, rng);
  } catch (const gm::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  const auto episodes =
      random_episodes(alphabet, opt.episodes, opt.level, opt.prefix_pool, rng);

  gm::core::CountRequest request;
  request.database = db;
  request.episodes = episodes;
  request.semantics = opt.semantics;
  request.expiry = gm::core::ExpiryPolicy{opt.expiry};

  std::cout << "backend shootout: db=" << opt.db_size << " alphabet=" << opt.alphabet
            << " episodes=" << opt.episodes << " level=" << opt.level
            << " expiry=" << opt.expiry << " semantics=" << to_string(opt.semantics)
            << " repeat=" << opt.repeat << "\n\n";

  std::vector<std::int64_t> reference;
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool all_agree = true;
  double single_scan_ms = 0.0;

  std::printf("%-20s %12s %10s %10s\n", "backend", "best ms", "vs serial", "agrees");
  for (const auto name :
       {"cpu-serial", "cpu-parallel", "cpu-sharded", "cpu-single-scan", "cpu-trie-scan"}) {
    gm::service::BackendSpec spec;
    spec.name = name;
    spec.threads = opt.threads;
    const auto backend = gm::service::make_backend(spec);

    double best_ms = 0.0;
    gm::core::CountResult result;
    for (int r = 0; r < opt.repeat; ++r) {
      result = backend->count(request);
      best_ms = (r == 0) ? result.host_ms : std::min(best_ms, result.host_ms);
    }

    bool agrees = true;
    if (reference.empty()) {
      reference = result.counts;  // cpu-serial runs first: it is the reference
      serial_ms = best_ms;
    } else {
      agrees = result.counts == reference;
      all_agree = all_agree && agrees;
    }
    if (std::string(name) == "cpu-parallel") parallel_ms = best_ms;
    if (std::string(name) == "cpu-single-scan") single_scan_ms = best_ms;
    std::printf("%-20s %12.2f %9.2fx %10s\n", backend->name().c_str(), best_ms,
                best_ms > 0 ? serial_ms / best_ms : 0.0, agrees ? "yes" : "NO");
  }

  if (opt.gpu) try {
    // Every simulated-GPU formulation end to end through the functional
    // engine.  Exact against the serial reference except algorithms 3/4
    // under expiry (documented overlap-rescan approximation -> "approx").
    std::printf("\ngpusim on %s, %d threads/block:\n", opt.card.c_str(), opt.tpb);
    for (const gm::kernels::Algorithm algorithm : gm::kernels::all_algorithms()) {
      const std::string label =
          "gpusim-algo" + std::to_string(gm::kernels::algorithm_number(algorithm));
      if (gm::kernels::is_block_level(algorithm) &&
          static_cast<std::int64_t>(opt.tpb) > opt.db_size) {
        std::printf("%-20s %12s  (skipped: --tpb exceeds --db)\n", label.c_str(), "-");
        continue;
      }
      gm::service::BackendSpec spec;
      spec.name = "gpusim";
      spec.card = opt.card;
      spec.launch.algorithm = algorithm;
      spec.launch.threads_per_block = opt.tpb;
      const auto backend = gm::service::make_backend(spec);

      double best_ms = 0.0;
      gm::core::CountResult result;
      for (int r = 0; r < opt.repeat; ++r) {
        result = backend->count(request);
        best_ms = (r == 0) ? result.host_ms : std::min(best_ms, result.host_ms);
      }
      const bool approximate =
          request.expiry.enabled() && gm::kernels::is_block_level(algorithm);
      const bool agrees = result.counts == reference;
      if (!approximate) all_agree = all_agree && agrees;
      std::printf("%-20s %12.2f %9.2fx %10s\n", label.c_str(), best_ms,
                  best_ms > 0 ? serial_ms / best_ms : 0.0,
                  approximate ? (agrees ? "yes*" : "approx") : (agrees ? "yes" : "NO"));
    }
    if (request.expiry.enabled()) {
      std::printf("(*/approx: block-level expiry rows use the overlap-rescan approximation)\n");
    }
  } catch (const gm::Error& e) {
    // An unknown --card or an unsupportable --level/--tpb for the GPU
    // formulations (including DeviceError for launches the card cannot
    // host, e.g. --tpb beyond the device's block limit) is a bad
    // invocation, not a backend disagreement.
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  if (parallel_ms > 0 && single_scan_ms > 0) {
    std::printf("\nsingle-scan vs episode-parallel: %.2fx\n", parallel_ms / single_scan_ms);
  }
  if (!all_agree) {
    std::cerr << "\nERROR: backend disagreement against the serial reference\n";
    return 1;
  }
  return 0;
}

// The paper's four GPU algorithms (section 3.3) plus the bucket-indexed
// fifth formulation, written against the gpusim kernel API:
//
//   Algorithm 1  thread-level, texture     one thread : one episode
//   Algorithm 2  thread-level, buffered    one thread : one episode, DB staged
//                                          through shared memory
//   Algorithm 3  block-level,  texture     one block : one episode, threads
//                                          split the DB, spanning fix + sum
//   Algorithm 4  block-level,  buffered    one block : one episode, threads
//                                          split each staged buffer
//   Algorithm 5  block-bucketed,           one block : a contiguous
//                single-scan, buffered     first-symbol range of episodes;
//                                          threads drain waiting-automata
//                                          buckets per scanned symbol
//
// Thread-level kernels pad the episode list so every thread owns a slot
// (Mars-style record padding; padded threads scan with a sentinel episode,
// reproducing the paper's "nothing but contention" observation).  Block-level
// kernels recover boundary-spanning occurrences (paper Figure 5) exactly:
// without expiry via automaton transfer-function composition, with expiry via
// boundary-window rescans (exact because expiry bounds the occurrence span).
//
// Algorithm 5 is the device-side port of the host single-scan engine
// (core/multi_counter): episodes are sorted by first symbol so each block
// owns a contiguous symbol range's waiting-automata buckets, threads own
// interleaved slices of the block's episodes, and every automaton is filed
// under the symbol it currently awaits, so per-symbol device work scales with
// bucket occupancy (|episodes|/|alphabet| in expectation) instead of
// |episodes|.  It never chunks the database, so it is bit-exact against the
// serial oracle for both semantics and every expiry window (expiry uses the
// host engine's lazy deadlines + generation-tagged re-bucketing; contiguous
// restart falls back to a dense per-thread scan, still one database pass).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/automaton.hpp"
#include "core/episode.hpp"
#include "sim/engine.hpp"
#include "sim/memory.hpp"

#include "kernels/cost_constants.hpp"

namespace gm::kernels {

enum class Algorithm {
  kThreadTexture = 1,
  kThreadBuffered = 2,
  kBlockTexture = 3,
  kBlockBuffered = 4,
  kBlockBucketed = 5,
};

[[nodiscard]] std::string to_string(Algorithm algorithm);
[[nodiscard]] int algorithm_number(Algorithm algorithm);
/// One block per episode with threads splitting the database (Algorithms 3/4).
[[nodiscard]] bool is_block_level(Algorithm algorithm);
/// Stages the database through shared memory (Algorithms 2/4/5).
[[nodiscard]] bool is_buffered(Algorithm algorithm);
/// Bucket-indexed single-scan formulation (Algorithm 5).
[[nodiscard]] bool is_bucketed(Algorithm algorithm);
/// Every implemented formulation, in algorithm-number order.
[[nodiscard]] const std::vector<Algorithm>& all_algorithms();
/// The paper's original four formulations (figure/conclusion reproductions).
[[nodiscard]] const std::vector<Algorithm>& paper_algorithms();

/// Maximum episode level the kernels support (frame-register episode copy).
inline constexpr int kMaxLevel = 8;

struct MiningLaunchParams {
  Algorithm algorithm = Algorithm::kThreadTexture;
  int threads_per_block = 128;
  core::Semantics semantics = core::Semantics::kNonOverlappedSubsequence;
  core::ExpiryPolicy expiry = {};
  int buffer_bytes = kDefaultBufferBytes;  ///< buffered algorithms only
  /// Algorithm 5 only: bucket shared-prefix trie tokens instead of
  /// per-episode automata.  Staging sorts the candidates into full
  /// lexicographic order (so every trie subtree is a contiguous slot range),
  /// each thread owns a *contiguous* slot range instead of an interleaved
  /// slice, and one waiting token advances every owned episode sharing that
  /// prefix — per-symbol drain work scales with |distinct prefixes| instead
  /// of |episodes| (core/episode_trie.hpp).  Contiguous-restart semantics
  /// keep the dense per-thread fallback, charged identically to the flat
  /// formulation.
  bool trie_buckets = false;
};

/// Validate a launch configuration against an episode level *before* any
/// device staging happens.  Throws gm::PreconditionError with an actionable
/// message (naming the offending value and the kMaxLevel cap) instead of
/// letting the request trip an invariant deep inside the kernel layer.  Every
/// kernel-layer entry point (DeviceProblem, run_mining_kernel, the workload
/// models, SimGpuBackend) funnels through this check.
void validate_launch_params(const MiningLaunchParams& params, int level);

/// A counting problem staged into simulated device memory, ready to launch.
///
/// Owns the device buffers; `kernel()` returns a kernel closure over views
/// into them, so the problem must outlive the launch.
class DeviceProblem {
 public:
  DeviceProblem(const core::Sequence& database, std::span<const core::Episode> episodes,
                const MiningLaunchParams& params);

  [[nodiscard]] const gpusim::LaunchConfig& launch_config() const noexcept { return config_; }
  [[nodiscard]] gpusim::KernelFn kernel();
  [[nodiscard]] const core::PackedEpisodes& packed() const noexcept { return packed_; }
  [[nodiscard]] const MiningLaunchParams& params() const noexcept { return params_; }

  /// Per-episode counts (real episodes only, in the caller's original
  /// episode order) after the kernel ran.
  [[nodiscard]] std::vector<std::int64_t> extract_counts() const;

 private:
  /// Validates, then packs the episode list for the device.  The bucketed
  /// formulation packs in first-symbol-sorted order (so each block owns a
  /// contiguous symbol range of initial waiting buckets) and records the
  /// permutation in `order` (sorted slot -> original index); the other
  /// formulations leave `order` empty (identity).
  static core::PackedEpisodes stage_episodes(std::span<const core::Episode> episodes,
                                             const MiningLaunchParams& params,
                                             std::vector<std::int64_t>& order);

  MiningLaunchParams params_;
  std::vector<std::int64_t> order_;  ///< bucketed: sorted slot -> caller index
  core::PackedEpisodes packed_;
  gpusim::DeviceBuffer<core::Symbol> db_;
  gpusim::DeviceBuffer<core::Symbol> episodes_;
  gpusim::DeviceBuffer<std::uint32_t> counts_;
  gpusim::DeviceBuffer<std::uint32_t> scratch_;  ///< block-level transfer tables
  gpusim::LaunchConfig config_;
  std::int64_t db_size_ = 0;
};

/// Functional run: stage, launch on `engine`, unpack counts + profile.
struct MiningRun {
  std::vector<std::int64_t> counts;
  gpusim::LaunchResult launch;
};

[[nodiscard]] MiningRun run_mining_kernel(const gpusim::Engine& engine,
                                          const core::Sequence& database,
                                          std::span<const core::Episode> episodes,
                                          const MiningLaunchParams& params);

/// The launch geometry a given problem size produces (shared by the kernels
/// and the analytic workload models).
///
/// Bucketed (Algorithm 5): each block owns up to
/// threads_per_block * kBucketEpisodesPerThread episode slots, so the grid
/// scales with |episodes| / capacity rather than |episodes|; no padding.
struct LaunchGeometry {
  std::int64_t blocks = 0;
  std::int64_t padded_episodes = 0;  ///< thread-level: episodes incl. padding
  int shared_mem_per_block = 0;
};

[[nodiscard]] LaunchGeometry launch_geometry(Algorithm algorithm, std::int64_t episode_count,
                                             int level, int threads_per_block,
                                             int buffer_bytes);

}  // namespace gm::kernels

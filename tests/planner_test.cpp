// The planner's contract: shape-dependent picks that match the paper's
// characterization (dense formulations for small-alphabet/huge-episode
// shapes, bucket-indexed ones for large alphabets), capability gates that
// are never violated (no pick above a backend's max_level), determinism, and
// an explanation for every rejection.  AutoBackend rides along: per-level
// re-planning must stay bit-exact with the serial reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/cpu_backend.hpp"
#include "core/miner.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "planner/auto_backend.hpp"
#include "planner/cpu_cost_model.hpp"
#include "planner/planner.hpp"
#include "planner/workload.hpp"
#include "service/backend_factory.hpp"

namespace gm::planner {
namespace {

Workload basic_workload() {
  Workload w;
  w.db_size = 393'019;
  w.episode_count = 650;
  w.level = 2;
  w.alphabet_size = 26;
  return w;
}

PlannerOptions deterministic_options() {
  PlannerOptions options;
  options.cpu_threads = 4;  // pin: hardware concurrency varies by machine
  return options;
}

bool is_bucket_indexed(const CandidateConfig& config) {
  if (config.kind == BackendKind::kCpuSingleScan) return true;
  return config.kind == BackendKind::kGpuSim && kernels::is_bucketed(config.algorithm);
}

TEST(Planner, PicksDenseGpuPathForSmallAlphabetHugeEpisodeShapes) {
  // The paper's level-3 evaluation shape: 15,600 candidates over 26 symbols.
  // Bucket occupancy |eps|/|alphabet| = 600 makes the bucketed formulations
  // hopeless; a dense GPU formulation must win.
  Workload w = basic_workload();
  w.episode_count = 15'600;
  w.level = 3;
  const Plan plan = plan_level(w, deterministic_options());
  ASSERT_TRUE(plan.winner().feasible);
  EXPECT_EQ(plan.winner().config.kind, BackendKind::kGpuSim);
  EXPECT_FALSE(is_bucket_indexed(plan.winner().config));
}

TEST(Planner, PicksBucketedPathForLargeAlphabetShapes) {
  // Large alphabet, few candidates: per-symbol bucket occupancy is tiny, so
  // a bucket-indexed formulation (host single-scan or Algorithm 5) wins.
  Workload w;
  w.db_size = 2'000'000;
  w.episode_count = 400;
  w.level = 3;
  w.alphabet_size = 200;
  const Plan plan = plan_level(w, deterministic_options());
  ASSERT_TRUE(plan.winner().feasible);
  EXPECT_TRUE(is_bucket_indexed(plan.winner().config)) << plan.winner().config.label();
}

TEST(Planner, GpuOnlyPlannerFlipsToBucketedKernelOnLargeAlphabets) {
  // Same flip inside the GPU candidate family alone: the block-bucketed
  // kernel must beat the dense formulations once the alphabet dwarfs the
  // per-thread bucket occupancy.
  PlannerOptions options = deterministic_options();
  options.enable_cpu = false;
  Workload w;
  w.db_size = 500'000;
  w.episode_count = 20'000;
  w.level = 3;
  w.alphabet_size = 200;
  const Plan plan = plan_level(w, options);
  ASSERT_TRUE(plan.winner().feasible);
  ASSERT_EQ(plan.winner().config.kind, BackendKind::kGpuSim);
  EXPECT_EQ(plan.winner().config.algorithm, kernels::Algorithm::kBlockBucketed)
      << plan.winner().config.label();
}

TEST(Planner, FlipsToTrieFormulationsOnSharedPrefixCandidateSets) {
  // The shared-prefix flip, pinned from both ends.  A large-candidate
  // bucket-friendly shape with no prefix sharing (prefix mass 1, e.g. a
  // level-1 set) must stay on a flat formulation: the trie's heavier
  // per-drain constant buys nothing.  The same shape with an apriori-style
  // candidate set (prefix mass ~ 1/L) must flip to a trie formulation, CPU
  // or GPU — one token drain advances every prefix-sharer.
  Workload w;
  w.db_size = 2'000'000;
  w.episode_count = 12'000;
  w.level = 3;
  w.alphabet_size = 200;

  Workload flat_set = w;
  flat_set.prefix_compression = 1.0;
  const Plan flat_plan = plan_level(flat_set, deterministic_options());
  ASSERT_TRUE(flat_plan.winner().feasible);
  EXPECT_EQ(flat_plan.winner().config.label().find("trie"), std::string::npos)
      << flat_plan.winner().config.label();

  Workload shared_set = w;
  shared_set.prefix_compression = 0.35;
  const Plan trie_plan = plan_level(shared_set, deterministic_options());
  ASSERT_TRUE(trie_plan.winner().feasible);
  EXPECT_NE(trie_plan.winner().config.label().find("trie"), std::string::npos)
      << trie_plan.winner().config.label();

  // Both trie families are in the scored table: the host engine and a trie
  // variant of every bucketed tpb point.
  bool saw_cpu_trie = false;
  bool saw_gpu_trie = false;
  for (const ScoredCandidate& c : trie_plan.table) {
    saw_cpu_trie |= c.config.kind == BackendKind::kCpuTrieScan;
    saw_gpu_trie |= c.config.kind == BackendKind::kGpuSim && c.config.trie_buckets;
  }
  EXPECT_TRUE(saw_cpu_trie);
  EXPECT_TRUE(saw_gpu_trie);

  // Model pins behind the flip.  Device side: the trie spec predicts
  // strictly less kernel time than the flat bucketed spec once prefixes are
  // shared, and strictly more when they are not (heavier per-drain charge,
  // nothing compressed).  Host side: the trie engine's interval-set splits
  // price it above the flat single scan even with sharing — the host curve
  // only flips under extreme compression, by design.
  const auto gpu_ms = [](const Workload& workload, bool trie) {
    const PlannerOptions options;
    return kernels::predict_mining_time(
               options.device,
               gpu_workload_spec(workload, kernels::Algorithm::kBlockBucketed, 128, trie),
               gpusim::CostModel(options.cost_params), options.kernel_costs)
        .total_ms;
  };
  EXPECT_LT(gpu_ms(shared_set, true), gpu_ms(shared_set, false));
  EXPECT_GT(gpu_ms(flat_set, true), gpu_ms(flat_set, false));
  const CpuCostConstants constants;
  EXPECT_GT(predict_cpu_trie_ms(flat_set, constants),
            predict_cpu_single_scan_ms(flat_set, constants));
  EXPECT_GT(predict_cpu_trie_ms(shared_set, constants),
            predict_cpu_single_scan_ms(shared_set, constants));

  // Contiguous restart runs the identical dense fallback on both engines:
  // the curves tie exactly and the label tie-break hands flat the win.
  Workload dense = shared_set;
  dense.semantics = core::Semantics::kContiguousRestart;
  EXPECT_DOUBLE_EQ(predict_cpu_trie_ms(dense, constants),
                   predict_cpu_single_scan_ms(dense, constants));
}

TEST(Planner, NeverPicksBackendWhoseMaxLevelIsBelowRequest) {
  Workload w = basic_workload();
  w.level = kernels::kMaxLevel + 1;
  w.episode_count = 10;
  const PlannerOptions options = deterministic_options();
  const Plan plan = plan_level(w, options);

  // The pick must come from a family whose constructed backend can count the
  // level; every GPU candidate must be rejected with a reason naming the cap.
  const auto backend = make_planned_backend(plan.winner().config, options);
  EXPECT_TRUE(backend->max_level() == 0 || backend->max_level() >= w.level);
  for (const ScoredCandidate& c : plan.table) {
    if (c.config.kind == BackendKind::kGpuSim) {
      EXPECT_FALSE(c.feasible);
      EXPECT_NE(c.reason.find("max_level"), std::string::npos) << c.reason;
    }
  }
}

TEST(Planner, IsDeterministicAndExplainsEveryRejection) {
  Workload w = basic_workload();
  w.level = kernels::kMaxLevel + 2;  // force a mixed feasible/rejected table
  const PlannerOptions options = deterministic_options();
  const Plan a = plan_level(w, options);
  const Plan b = plan_level(w, options);

  ASSERT_EQ(a.table.size(), b.table.size());
  for (std::size_t i = 0; i < a.table.size(); ++i) {
    EXPECT_EQ(a.table[i].config.label(), b.table[i].config.label());
    EXPECT_EQ(a.table[i].feasible, b.table[i].feasible);
    EXPECT_DOUBLE_EQ(a.table[i].predicted_ms, b.table[i].predicted_ms);
    EXPECT_EQ(a.table[i].reason, b.table[i].reason);
  }
  EXPECT_EQ(a.explanation, b.explanation);
  EXPECT_FALSE(a.explanation.empty());
  for (const ScoredCandidate& c : a.table) {
    EXPECT_FALSE(c.reason.empty()) << c.config.label();
  }
  // Feasible candidates are sorted fastest-first ahead of the rejected tail.
  bool seen_infeasible = false;
  double last_ms = 0.0;
  for (const ScoredCandidate& c : a.table) {
    if (!c.feasible) {
      seen_infeasible = true;
      continue;
    }
    EXPECT_FALSE(seen_infeasible) << "feasible candidate after a rejected one";
    EXPECT_GE(c.predicted_ms, last_ms);
    last_ms = c.predicted_ms;
  }
}

TEST(Planner, RejectsOversizedThreadsPerBlockWithReason) {
  PlannerOptions options = deterministic_options();
  options.tpb_sweep = {64, 4096};  // above every paper card's block limit
  const Plan plan = plan_level(basic_workload(), options);
  bool saw_rejected_tpb = false;
  for (const ScoredCandidate& c : plan.table) {
    if (c.config.kind == BackendKind::kGpuSim && c.config.threads_per_block == 4096) {
      EXPECT_FALSE(c.feasible);
      EXPECT_NE(c.reason.find("device limit"), std::string::npos) << c.reason;
      saw_rejected_tpb = true;
    }
  }
  EXPECT_TRUE(saw_rejected_tpb);
}

TEST(Planner, ThrowsWhenNoCandidateIsFeasible) {
  PlannerOptions options = deterministic_options();
  options.enable_cpu = false;  // GPU only...
  Workload w = basic_workload();
  w.level = kernels::kMaxLevel + 1;  // ...and every GPU candidate is capped
  EXPECT_THROW((void)plan_level(w, options), gm::PreconditionError);
}

TEST(Planner, SkewedFrequenciesLowerBucketIndexedPredictions) {
  Workload uniform;
  uniform.db_size = 1'000'000;
  uniform.episode_count = 500;
  uniform.level = 2;
  uniform.alphabet_size = 64;
  Workload skewed = uniform;
  skewed.symbol_freq = data::zipf_frequencies(64, 1.0);

  const CpuCostConstants constants;
  EXPECT_LT(predict_cpu_single_scan_ms(skewed, constants),
            predict_cpu_single_scan_ms(uniform, constants));
  // Dense backends are occupancy-blind: unchanged by skew.
  EXPECT_DOUBLE_EQ(predict_cpu_serial_ms(skewed, constants),
                   predict_cpu_serial_ms(uniform, constants));
}

TEST(Planner, WorkloadOfMeasuresShapeAndSkew) {
  const core::Alphabet alphabet(16);
  const auto db = data::zipf_database(alphabet, 20'000, 1.0, 9);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);

  core::CountRequest request;
  request.database = db;
  request.episodes = episodes;
  const Workload w = workload_of(request, alphabet.size());

  EXPECT_EQ(w.db_size, 20'000);
  EXPECT_EQ(w.episode_count, static_cast<std::int64_t>(episodes.size()));
  EXPECT_EQ(w.level, 2);
  EXPECT_EQ(w.alphabet_size, 16);
  ASSERT_EQ(w.symbol_freq.size(), 16u);
  EXPECT_GT(w.symbol_freq[0], w.symbol_freq[15]);  // measured skew, not uniform
}

TEST(AutoBackend, MatchesSerialReferenceAcrossLevels) {
  const core::Alphabet alphabet(12);
  const auto db = data::uniform_database(alphabet, 8'000, 77);

  core::MinerConfig config;
  config.support_threshold = 0.0004;
  config.max_level = 3;

  core::SerialCpuBackend reference;
  const auto expected = core::mine_frequent_episodes(db, alphabet, reference, config);

  AutoBackend adaptive{deterministic_options()};
  const auto actual = core::mine_frequent_episodes(db, alphabet, adaptive, config);

  ASSERT_EQ(actual.frequent.size(), expected.frequent.size());
  for (std::size_t i = 0; i < actual.frequent.size(); ++i) {
    EXPECT_EQ(actual.frequent[i].episode, expected.frequent[i].episode);
    EXPECT_EQ(actual.frequent[i].count, expected.frequent[i].count);
  }
  // One recorded plan per mining level, each with a usable explanation.
  ASSERT_EQ(adaptive.plans().size(), expected.levels.size());
  for (const Plan& plan : adaptive.plans()) {
    EXPECT_FALSE(plan.explanation.empty());
    EXPECT_TRUE(plan.winner().feasible);
  }
}

TEST(AutoBackend, ReusesConstructedBackendsAcrossLevels) {
  // Same stream counted twice at the same level shape: the second call must
  // plan again (two plans) but reuse the cached backend (identical pick).
  const core::Alphabet alphabet(10);
  const auto db = data::uniform_database(alphabet, 5'000, 3);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);

  core::CountRequest request;
  request.database = db;
  request.episodes = episodes;

  AutoBackend adaptive{deterministic_options()};
  const auto first = adaptive.count(request);
  const auto second = adaptive.count(request);
  EXPECT_EQ(first.counts, second.counts);
  ASSERT_EQ(adaptive.plans().size(), 2u);
  EXPECT_EQ(adaptive.plans()[0].winner().config.label(),
            adaptive.plans()[1].winner().config.label());
}

TEST(AutoBackend, FeedbackRecordsRecencyWeightedBias) {
  // Every delegated count() must fold measured/predicted into the winner's
  // bias.  The update is an EWMA toward the floored observed ratio, so after
  // one call the bias sits strictly between the prior (1) and the
  // observation, and it always stays positive.
  const core::Alphabet alphabet(10);
  const auto db = data::uniform_database(alphabet, 5'000, 3);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);

  core::CountRequest request;
  request.database = db;
  request.episodes = episodes;

  AutoBackend adaptive{deterministic_options()};
  (void)adaptive.count(request);
  ASSERT_EQ(adaptive.feedback().size(), 1u);
  const auto [label, bias] = *adaptive.feedback().begin();
  EXPECT_EQ(label, adaptive.plans()[0].winner().config.label());
  EXPECT_GT(bias, 0.0);

  // The next plan's prediction for that winner carries the bias (the note
  // says so), and repeated feedback keeps the multiplier finite.
  (void)adaptive.count(request);
  if (adaptive.plans()[1].winner().config.label() == label && bias != 1.0) {
    EXPECT_NE(adaptive.plans()[1].winner().reason.find("measured bias"),
              std::string::npos);
  }
  for (const auto& [key, value] : adaptive.feedback()) {
    EXPECT_GT(value, 0.0) << key;
    EXPECT_LT(value, 1e6) << key;
  }
}

TEST(AutoBackend, FeedbackConvergesToStableModelError) {
  // A persistent model error must settle at the observed ratio instead of
  // compounding.  The update divides the prior bias back out of the biased
  // prediction before forming the new observation; replicate the EWMA from
  // the observable plan/result pairs and require exact agreement — were the
  // divide-out dropped (bias fed on bias), the replicated values would
  // diverge from the implementation's by the second call.
  const core::Alphabet alphabet(16);
  const auto db = data::uniform_database(alphabet, 4'000, 11);
  const auto episodes = core::all_distinct_episodes(alphabet, 1);

  core::CountRequest request;
  request.database = db;
  request.episodes = episodes;

  PlannerOptions options = deterministic_options();
  // Grossly understate the serial cost so the model error is large and of
  // known sign: measured wall-clock will exceed the prediction.
  options.cpu_constants.serial_step_ns = 1e-4;
  options.cpu_constants.serial_expiry_step_ns = 1e-4;
  AutoBackend adaptive{options};

  std::map<std::string, double> expected;
  for (int call = 0; call < 6; ++call) {
    const core::CountResult result = adaptive.count(request);
    const Plan& plan = adaptive.plans().back();
    const std::string label = plan.winner().config.label();
    const bool is_gpu = plan.winner().config.kind == BackendKind::kGpuSim;
    const double measured = is_gpu ? result.simulated_kernel_ms : result.host_ms;
    const double prior = expected.count(label) > 0 ? expected[label] : 1.0;
    const double raw = plan.winner().predicted_ms / prior;
    const double observed = (measured + AutoBackend::kFeedbackFloorMs) /
                            (raw + AutoBackend::kFeedbackFloorMs);
    expected[label] = (1.0 - AutoBackend::kFeedbackBlend) * prior +
                      AutoBackend::kFeedbackBlend * observed;
    ASSERT_DOUBLE_EQ(adaptive.feedback().at(label), expected[label]) << "call " << call;
    EXPECT_GT(adaptive.feedback().at(label), 0.0);
    EXPECT_TRUE(std::isfinite(adaptive.feedback().at(label)));
  }
}

TEST(Planner, DefaultCandidateSpaceHasNoDistribCandidates) {
  // The planner must not assume extra devices exist: without an explicit
  // device_sweep the table is exactly the single-device space.
  const Plan plan = plan_level(basic_workload(), deterministic_options());
  for (const ScoredCandidate& c : plan.table) {
    EXPECT_NE(c.config.kind, BackendKind::kDistrib) << c.config.label();
  }
}

TEST(Planner, DeviceSweepFlipsToMultiCardOnTheLargeEvaluationShape) {
  // The paper's level-3 shape is kernel-bound, so splitting the stream over
  // two (then four) simulated cards nearly halves the dominant term while
  // the merge charge stays tiny: the device axis must flip the plan to a
  // multi-device candidate, and more cards must keep predicting faster.
  Workload w = basic_workload();
  w.episode_count = 15'600;
  w.level = 3;
  PlannerOptions options = deterministic_options();
  options.device_sweep = {1, 2, 4};
  const Plan plan = plan_level(w, options);

  ASSERT_TRUE(plan.winner().feasible);
  EXPECT_EQ(plan.winner().config.kind, BackendKind::kDistrib);
  EXPECT_TRUE(plan.winner().config.distrib_gpu);
  EXPECT_GT(plan.winner().config.threads, 1);

  auto predicted = [&](const std::string& label) {
    for (const ScoredCandidate& c : plan.table) {
      if (c.config.label() == label) {
        EXPECT_TRUE(c.feasible) << label;
        return c.predicted_ms;
      }
    }
    ADD_FAILURE() << label << " missing from the table";
    return 0.0;
  };
  EXPECT_LT(predicted("distrib-gpu-x4"), predicted("distrib-gpu-x2"));
  EXPECT_LT(predicted("distrib-gpu-x2"), predicted("distrib-gpu-x1"));
  EXPECT_LT(predicted("distrib-x4"), predicted("distrib-x2"));
}

TEST(Planner, TinyShapesResistTheDeviceAxis) {
  // On a small level-1 workload the per-shard spawn/merge overhead exceeds
  // the scan itself: the winner must stay a single-device formulation.
  Workload w;
  w.db_size = 2'000;
  w.episode_count = 26;
  w.level = 1;
  w.alphabet_size = 26;
  PlannerOptions options = deterministic_options();
  options.device_sweep = {1, 2, 4, 8};
  const Plan plan = plan_level(w, options);
  ASSERT_TRUE(plan.winner().feasible);
  EXPECT_FALSE(plan.winner().config.kind == BackendKind::kDistrib &&
               plan.winner().config.threads > 1)
      << plan.winner().config.label();
}

TEST(Planner, PlannedDistribBackendsCountExactly) {
  const auto alphabet = core::Alphabet(6);
  const auto db = data::zipf_database(alphabet, 6'000, 1.0, 5);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);
  const core::ExpiryPolicy expiry{21};
  core::SerialCpuBackend reference;
  core::CountRequest request;
  request.database = db;
  request.episodes = episodes;
  request.expiry = expiry;
  const auto expected = reference.count(request);

  for (const bool gpu : {false, true}) {
    CandidateConfig config;
    config.kind = BackendKind::kDistrib;
    config.threads = 3;
    config.distrib_gpu = gpu;
    config.threads_per_block = 128;
    const auto backend = make_planned_backend(config, deterministic_options());
    const std::string expected_name =
        gpu ? "distrib-x3[gpusim]" : "distrib-x3[cpu-single-scan]";
    EXPECT_EQ(backend->name(), expected_name);
    const auto result = backend->count(request);
    EXPECT_EQ(result.counts, expected.counts) << expected_name;
    if (gpu) {
      EXPECT_GT(result.simulated_kernel_ms, 0.0);
    }
  }
}

TEST(AutoBackend, MakeBackendSpellsDistribAndOpensTheDeviceAxis) {
  service::BackendSpec spec;
  spec.name = "distrib";
  spec.shards = 3;
  EXPECT_EQ(service::make_backend(spec)->name(), "distrib-x3[cpu-single-scan]");

  spec.name = "distrib-gpu";
  spec.shards = 0;  // defaults to the GX2's two dies
  EXPECT_EQ(service::make_backend(spec)->name(), "distrib-x2[gpusim]");

  spec.name = "auto";
  spec.shards = 3;
  const PlannerOptions options = service::planner_options_for(spec);
  EXPECT_EQ(options.device_sweep, (std::vector<int>{1, 2, 3}));

  const auto names = service::backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "distrib"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "distrib-gpu"), names.end());
}

TEST(AutoBackend, MakeBackendSpellsAuto) {
  service::BackendSpec spec;
  spec.name = "auto";
  spec.threads = 2;
  spec.card = "8800";
  const auto backend = service::make_backend(spec);
  ASSERT_NE(dynamic_cast<AutoBackend*>(backend.get()), nullptr);
  EXPECT_EQ(backend->max_level(), 0);  // CPU fallback keeps it unbounded

  const auto names = service::backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "auto"), names.end());
}

}  // namespace
}  // namespace gm::planner

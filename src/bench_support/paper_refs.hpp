// The paper-figure reference points the kernel cost model was calibrated
// against: (card, algorithm, level, threads-per-block) -> approximate
// milliseconds read off the published figure axes.  bench/calibration_table
// prints model-vs-paper residuals over this table, and the calibration
// fitter consumes the same points as low-weight microbench probes so the
// kernel instruction charges stay anchored to the published curves when a
// fit run has few (or no) simulated-GPU measurements of its own.
#pragma once

#include <string>
#include <vector>

#include "calib/fitter.hpp"
#include "kernels/mining_kernels.hpp"

namespace gm::bench {

struct PaperReference {
  std::string figure;  ///< e.g. "9a"
  std::string card;    ///< gpusim::device_by_name key
  kernels::Algorithm algorithm;
  int level;
  int tpb;
  double paper_ms;  ///< approximate reading from the figure
};

/// Every reference point (the table EXPERIMENTS.md records residuals for).
[[nodiscard]] const std::vector<PaperReference>& paper_references();

/// The same points as calibration fit samples on the paper's evaluation
/// workload (393,019 symbols, level-l episode space over 26 letters), each
/// carrying `weight` (callers pass well under the measured samples' 1.0).
[[nodiscard]] std::vector<calib::FitSample> paper_reference_samples(double weight);

}  // namespace gm::bench

// The paper's four GPU algorithms (section 3.3), written against the gpusim
// kernel API:
//
//   Algorithm 1  thread-level, texture     one thread : one episode
//   Algorithm 2  thread-level, buffered    one thread : one episode, DB staged
//                                          through shared memory
//   Algorithm 3  block-level,  texture     one block : one episode, threads
//                                          split the DB, spanning fix + sum
//   Algorithm 4  block-level,  buffered    one block : one episode, threads
//                                          split each staged buffer
//
// Thread-level kernels pad the episode list so every thread owns a slot
// (Mars-style record padding; padded threads scan with a sentinel episode,
// reproducing the paper's "nothing but contention" observation).  Block-level
// kernels recover boundary-spanning occurrences (paper Figure 5) exactly:
// without expiry via automaton transfer-function composition, with expiry via
// boundary-window rescans (exact because expiry bounds the occurrence span).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/automaton.hpp"
#include "core/episode.hpp"
#include "sim/engine.hpp"
#include "sim/memory.hpp"

#include "kernels/cost_constants.hpp"

namespace gm::kernels {

enum class Algorithm {
  kThreadTexture = 1,
  kThreadBuffered = 2,
  kBlockTexture = 3,
  kBlockBuffered = 4,
};

[[nodiscard]] std::string to_string(Algorithm algorithm);
[[nodiscard]] int algorithm_number(Algorithm algorithm);
[[nodiscard]] bool is_block_level(Algorithm algorithm);
[[nodiscard]] bool is_buffered(Algorithm algorithm);
/// All four algorithms in paper order.
[[nodiscard]] const std::vector<Algorithm>& all_algorithms();

/// Maximum episode level the kernels support (frame-register episode copy).
inline constexpr int kMaxLevel = 8;

struct MiningLaunchParams {
  Algorithm algorithm = Algorithm::kThreadTexture;
  int threads_per_block = 128;
  core::Semantics semantics = core::Semantics::kNonOverlappedSubsequence;
  core::ExpiryPolicy expiry = {};
  int buffer_bytes = kDefaultBufferBytes;  ///< buffered algorithms only
};

/// A counting problem staged into simulated device memory, ready to launch.
///
/// Owns the device buffers; `kernel()` returns a kernel closure over views
/// into them, so the problem must outlive the launch.
class DeviceProblem {
 public:
  DeviceProblem(const core::Sequence& database, std::span<const core::Episode> episodes,
                const MiningLaunchParams& params);

  [[nodiscard]] const gpusim::LaunchConfig& launch_config() const noexcept { return config_; }
  [[nodiscard]] gpusim::KernelFn kernel();
  [[nodiscard]] const core::PackedEpisodes& packed() const noexcept { return packed_; }
  [[nodiscard]] const MiningLaunchParams& params() const noexcept { return params_; }

  /// Per-episode counts (real episodes only) after the kernel ran.
  [[nodiscard]] std::vector<std::int64_t> extract_counts() const;

 private:
  MiningLaunchParams params_;
  core::PackedEpisodes packed_;
  gpusim::DeviceBuffer<core::Symbol> db_;
  gpusim::DeviceBuffer<core::Symbol> episodes_;
  gpusim::DeviceBuffer<std::uint32_t> counts_;
  gpusim::DeviceBuffer<std::uint32_t> scratch_;  ///< block-level transfer tables
  gpusim::LaunchConfig config_;
  std::int64_t db_size_ = 0;
};

/// Functional run: stage, launch on `engine`, unpack counts + profile.
struct MiningRun {
  std::vector<std::int64_t> counts;
  gpusim::LaunchResult launch;
};

[[nodiscard]] MiningRun run_mining_kernel(const gpusim::Engine& engine,
                                          const core::Sequence& database,
                                          std::span<const core::Episode> episodes,
                                          const MiningLaunchParams& params);

/// The launch geometry a given problem size produces (shared by the kernels
/// and the analytic workload models).
struct LaunchGeometry {
  std::int64_t blocks = 0;
  std::int64_t padded_episodes = 0;  ///< thread-level: episodes incl. padding
  int shared_mem_per_block = 0;
};

[[nodiscard]] LaunchGeometry launch_geometry(Algorithm algorithm, std::int64_t episode_count,
                                             int level, int threads_per_block,
                                             int buffer_bytes);

}  // namespace gm::kernels

// Kernel execution profiles: the interchange format between the *functional*
// engine (which measures these numbers by executing a kernel) and the
// *analytic* workload models (which compute them in closed form), and the
// sole input — besides DeviceSpec and LaunchConfig — of the timing model.
//
// A profile describes per-block work at warp granularity.  Blocks of the
// mining kernels are nearly homogeneous, so profiles store groups of
// identical blocks rather than one record per block; this keeps full-scale
// (15,600-block) profiles tiny.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/launch.hpp"

namespace gpusim {

/// How a block's lanes address texture memory.  CC 1.x texture caches serve
/// warp-uniform and warp-sequential streams well but retain almost nothing
/// for per-lane strided streams (each lane walking its own region brings a
/// full line per fetch) — the mechanism behind the paper's C8.
enum class TexAccessKind {
  kNone,             ///< block issues no texture fetches
  kBroadcast,        ///< all lanes of a warp fetch the same address
  kCoalescedStream,  ///< a warp's lanes fetch 32 consecutive bytes (one line)
  kStridedPerLane,   ///< each lane streams through its own distant region
};

/// How a block touches texture memory; consumed by the cost model's
/// texture-cache traffic estimator.
struct TexturePattern {
  TexAccessKind kind = TexAccessKind::kNone;
  /// Unique bytes the block touches over its lifetime (compulsory traffic
  /// for the cache-friendly kinds).
  double footprint_bytes = 0.0;
  /// Blocks with the same nonzero key read the same addresses in the same
  /// order; when co-resident on an SM they share one cache footprint.
  int sharing_key = 0;

  friend bool operator==(const TexturePattern&, const TexturePattern&) = default;
};

/// Aggregated work of one block.
///
/// "warp_*" fields are sums over barrier-delimited segments of the
/// max-over-lanes count in each warp: the SIMT issue cost of the block.
/// "lane_instructions" is the plain sum over lanes, so
/// warp_instructions * warp_size / lane_instructions measures divergence.
struct BlockProfile {
  int warps = 0;
  int syncs = 0;  ///< __syncthreads barriers executed

  double warp_instructions = 0.0;
  double warp_tex_ops = 0.0;
  double warp_shared_ops = 0.0;
  double warp_global_ops = 0.0;
  double warp_atomic_ops = 0.0;

  // Critical-path view: per segment, the max over warps of that segment's
  // per-warp cost, summed over segments.  Barriers synchronize the block, so
  // this is the serial chain no amount of warp overlap can hide (e.g. the
  // thread-0 fold in the block-level kernels).
  double path_instructions = 0.0;
  double path_tex_ops = 0.0;
  double path_shared_ops = 0.0;
  double path_global_ops = 0.0;

  double lane_instructions = 0.0;

  double tex_requests = 0.0;      ///< lane-level texture fetches
  double tex_miss_bytes = 0.0;    ///< device traffic measured/modelled in isolation
  double shared_requests = 0.0;
  double global_requests = 0.0;
  double global_bytes = 0.0;
  double atomic_requests = 0.0;

  TexturePattern texture;

  friend bool operator==(const BlockProfile&, const BlockProfile&) = default;
};

/// Profile of one kernel launch: groups of identical blocks, in launch order.
struct KernelProfile {
  struct Group {
    BlockProfile block;
    std::int64_t count = 0;
  };

  std::vector<Group> groups;

  [[nodiscard]] std::int64_t total_blocks() const noexcept {
    std::int64_t n = 0;
    for (const auto& g : groups) n += g.count;
    return n;
  }

  /// Append a block, coalescing with the last group when identical.
  void add_block(const BlockProfile& block, std::int64_t count = 1) {
    if (!groups.empty() && groups.back().block == block) {
      groups.back().count += count;
    } else {
      groups.push_back({block, count});
    }
  }

  /// The i-th block's profile (blocks are laid out group by group).
  [[nodiscard]] const BlockProfile& block_at(std::int64_t index) const;
};

/// Whole-launch sums, for reporting and tests.
struct ProfileTotals {
  double warp_instructions = 0.0;
  double lane_instructions = 0.0;
  double tex_requests = 0.0;
  double tex_miss_bytes = 0.0;
  double shared_requests = 0.0;
  double global_requests = 0.0;
  double atomic_requests = 0.0;
  std::int64_t syncs = 0;
  std::int64_t blocks = 0;
};

[[nodiscard]] ProfileTotals aggregate(const KernelProfile& profile);

}  // namespace gpusim

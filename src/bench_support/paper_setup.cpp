#include "bench_support/paper_setup.hpp"

#include <utility>

#include "calib/calibration.hpp"
#include "common/error.hpp"
#include "core/candidate_gen.hpp"
#include "core/cpu_backend.hpp"
#include "data/generators.hpp"
#include "kernels/gpu_backend.hpp"
#include "planner/auto_backend.hpp"

namespace gm::bench {

std::vector<std::string_view> backend_names() {
  return {"cpu-serial", "cpu-parallel", "cpu-sharded", "cpu-single-scan", "gpusim", "auto"};
}

std::unique_ptr<core::CountingBackend> make_backend(const BackendSpec& spec) {
  if (auto cpu = core::make_cpu_backend(spec.name, spec.threads)) return cpu;
  if (spec.name == "gpusim") {
    return std::make_unique<kernels::SimGpuBackend>(gpusim::device_by_name(spec.card),
                                                    spec.launch);
  }
  if (spec.name == "auto") {
    planner::PlannerOptions options;
    options.device = gpusim::device_by_name(spec.card);
    options.cpu_threads = spec.threads;
    if (!spec.calibration.empty()) {
      calib::apply_profile(calib::load_profile(spec.calibration), options);
    }
    return std::make_unique<planner::AutoBackend>(std::move(options));
  }
  std::string known;
  for (const auto name : backend_names()) {
    if (!known.empty()) known += ", ";
    known += name;
  }
  gm::raise_precondition("unknown backend '" + spec.name + "' (expected one of: " + known +
                         ")");
}

std::int64_t paper_episode_count(int level) {
  return static_cast<std::int64_t>(gm::core::episode_space_size(26, level));
}

gpusim::TimeBreakdown paper_breakdown(const gpusim::DeviceSpec& device,
                                      kernels::Algorithm algorithm, int level,
                                      int threads_per_block, const gpusim::CostModel& model) {
  kernels::WorkloadSpec spec;
  spec.db_size = data::kPaperDatabaseSize;
  spec.episode_count = paper_episode_count(level);
  spec.level = level;
  spec.params.algorithm = algorithm;
  spec.params.threads_per_block = threads_per_block;
  return kernels::predict_mining_time(device, spec, model);
}

double paper_time_ms(const gpusim::DeviceSpec& device, kernels::Algorithm algorithm, int level,
                     int threads_per_block, const gpusim::CostModel& model) {
  return paper_breakdown(device, algorithm, level, threads_per_block, model).total_ms;
}

}  // namespace gm::bench

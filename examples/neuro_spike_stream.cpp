// Neuroscience scenario, streamed: live cascade alerting on a growing
// multi-electrode recording.
//
// The offline half of the story (neuro_spike_mining) discovers firing
// cascades after the experiment ends.  Here the recording is split: the
// first half is mined offline to pick the cascades worth watching, then the
// second half arrives as live append batches against a MiningSession with a
// registered StreamingMonitor — every batch advances the counts by exactly
// the new spikes, and threshold crossings surface as alerts while the
// "experiment" is still running.  Mid-stream the session checkpoints its
// monitors to a gm-checkpoint/1 JSON file and a second session restores from
// it (the acquisition box rebooting), after which both must agree spike for
// spike.  The final counts are verified against a from-scratch recount of
// the whole recording.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/cpu_backend.hpp"
#include "core/miner.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "service/checkpoint_store.hpp"
#include "service/session.hpp"

int main() {
  using namespace gm;

  const core::Alphabet neurons(20);
  const std::vector<core::Episode> cascades = {
      core::Episode({2, 11, 5}),   // stimulus -> relay -> motor
      core::Episode({7, 3, 18}),
      core::Episode({14, 9, 0}),
  };

  data::SpikeTrainConfig recording;
  recording.size = 60'000;
  recording.noise_rate = 0.85;
  recording.max_jitter = 2;
  recording.seed = 424242;
  const data::SpikeTrain train = data::spike_train(neurons, cascades, recording);
  const std::size_t half = train.events.size() / 2;
  const core::ExpiryPolicy expiry{12};

  std::cout << "Recording: " << train.events.size() << " spikes; mining the first " << half
            << " offline, streaming the rest live\n";

  // Offline pass over the first half: surface the cascades worth watching.
  core::SerialCpuBackend serial;
  core::MinerConfig config;
  config.support_threshold = 0.002;
  config.max_level = 3;
  config.expiry = expiry;
  const std::vector<core::Symbol> offline(train.events.begin(),
                                          train.events.begin() + static_cast<std::ptrdiff_t>(half));
  const core::MiningResult mined = core::mine_frequent_episodes(offline, neurons, serial, config);

  std::vector<core::FrequentEpisode> level3;
  for (const auto& f : mined.frequent) {
    if (f.episode.level() == 3) level3.push_back(f);
  }
  std::sort(level3.begin(), level3.end(),
            [](const auto& a, const auto& b) { return a.count > b.count; });
  if (level3.size() < cascades.size()) {
    std::cerr << "offline mining surfaced too few level-3 cascades\n";
    return 1;
  }

  // Watch the top cascades; threshold halfway up their expected doubling, so
  // the crossings land mid-stream.
  service::MonitorSpec spec;
  spec.name = "cascades";
  spec.expiry = expiry;
  std::cout << "\nWatching the top " << cascades.size() << " mined cascades:\n";
  for (std::size_t i = 0; i < cascades.size(); ++i) {
    spec.episodes.push_back(level3[i].episode);
    spec.threshold = std::max(spec.threshold, level3[i].count + level3[i].count / 2);
    std::cout << "  " << level3[i].episode.to_string(neurons) << "  offline count "
              << level3[i].count << "\n";
  }
  std::cout << "Alert threshold: " << spec.threshold << " occurrences\n";

  service::MiningSession session(
      data::Dataset{neurons, offline},
      service::SessionOptions{.backend = {.name = "serial"}});
  (void)session.register_monitor(spec);

  // Stream the second half in acquisition-sized batches; reboot mid-stream.
  const std::string checkpoint_path = "neuro_spike_monitors.json";
  constexpr std::size_t kBatch = 2'000;
  std::vector<service::Alert> alerts;
  std::unique_ptr<service::MiningSession> rebooted;
  std::size_t fed = half;
  int batch_index = 0;
  const int total_batches = static_cast<int>((train.events.size() - half + kBatch - 1) / kBatch);
  while (fed < train.events.size()) {
    const std::size_t n = std::min(kBatch, train.events.size() - fed);
    const std::span<const core::Symbol> batch{train.events.data() + fed, n};
    const auto outcome = session.append_events(batch);
    for (const auto& alert : outcome.alerts) {
      std::cout << "ALERT at spike " << alert.position << ": "
                << spec.episodes[alert.episode_index].to_string(neurons) << " reached "
                << alert.count << "\n";
    }
    alerts.insert(alerts.end(), outcome.alerts.begin(), outcome.alerts.end());
    if (rebooted) {
      const auto twin = rebooted->append_events(batch);
      if (twin.alerts.size() != outcome.alerts.size() ||
          rebooted->monitor_counts("cascades") != session.monitor_counts("cascades")) {
        std::cerr << "restored session diverged from the live one\n";
        return 1;
      }
    }
    fed += n;
    ++batch_index;
    if (!rebooted && batch_index == total_batches / 2) {
      // "Reboot": persist the monitors, then restore them into a fresh
      // session over the stream as it stands.  The restore verifies the
      // stream-prefix digest, so resuming against the wrong recording throws.
      service::save_monitors_file(checkpoint_path, session.monitor_snapshots());
      std::cout << "-- checkpointed " << fed << " spikes to " << checkpoint_path
                << ", restoring into a fresh session --\n";
      rebooted = std::make_unique<service::MiningSession>(
          data::Dataset{neurons, {train.events.begin(),
                                  train.events.begin() + static_cast<std::ptrdiff_t>(fed)}},
          service::SessionOptions{.backend = {.name = "serial"}});
      for (const auto& snapshot : service::load_monitors_file(checkpoint_path)) {
        (void)rebooted->restore_monitor(snapshot);
      }
    }
  }
  std::remove(checkpoint_path.c_str());

  // Ground truth: a from-scratch recount of the whole recording.
  const auto recount =
      core::count_all(spec.episodes, train.events, spec.semantics, spec.expiry);
  if (session.monitor_counts("cascades") != recount) {
    std::cerr << "streamed counts diverged from the full recount\n";
    return 1;
  }

  std::cout << "\nFinal counts (streamed == recount, verified):\n";
  for (std::size_t i = 0; i < spec.episodes.size(); ++i) {
    std::cout << "  " << spec.episodes[i].to_string(neurons) << "  count " << recount[i] << "\n";
  }

  std::vector<bool> alerted(spec.episodes.size(), false);
  for (const auto& alert : alerts) alerted[alert.episode_index] = true;
  const auto fired = static_cast<std::size_t>(
      std::count(alerted.begin(), alerted.end(), true));
  std::cout << fired << "/" << spec.episodes.size()
            << " watched cascades crossed their threshold live\n";
  return fired == spec.episodes.size() ? 0 : 1;
}

// Minimal streaming JSON emitter for the machine-readable benchmark
// artifacts (BENCH_*.json): the CI bench job uploads what the drivers write
// here, and downstream tooling (regression dashboards, the regret gate)
// parses it.  Commas and nesting are managed automatically; misuse (a value
// in an object without a key, unbalanced end calls) trips a precondition
// error rather than emitting malformed JSON.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gm::bench {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Name the next value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);  ///< non-finite numbers emit null
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);

  /// Shorthand: key(name).value(v).
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The finished document.  Throws if containers are still open.
  [[nodiscard]] const std::string& str() const;

  /// Write the finished document (plus a trailing newline) to `path`,
  /// throwing gm::Error when the file cannot be written.
  void write_file(const std::string& path) const;

 private:
  enum class Scope { kObject, kArray };

  void before_value();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

}  // namespace gm::bench

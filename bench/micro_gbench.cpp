// Microbenchmarks of the substrate, in two tiers.
//
// The counting lane (`--counting`) is the regression-gated hot-path
// microbench: it races the optimized single-scan engines (flat SoA and
// shared-prefix trie) against the serial per-episode oracle across alphabet
// size x expiry x prefix mass, cross-checks every engine's counts against the
// oracle, and emits a schema-stamped BENCH_counting.json so the events/sec
// trajectory is tracked commit over commit.  CI gates the reference shape
// (large alphabet, no expiry) on a relative floor (optimized >= 2x serial)
// and an absolute events/sec floor recorded in the artifact; both reproduce
// locally with one command:
//
//   micro_gbench --counting --out BENCH_counting.json --min-speedup 2
//                --min-events-per-sec 2e7   (one line)
//
// The lane is self-timed (std::chrono, best of --repeat runs) so it builds
// and gates everywhere; the Google Benchmark micro suite below rides along
// only when the package exists (run with no arguments or gbench flags).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "bench_support/cli_args.hpp"
#include "bench_support/json.hpp"
#include "common/rng.hpp"
#include "core/episode_trie.hpp"
#include "core/multi_counter.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"

namespace {

using gm::core::Alphabet;
using gm::core::Episode;
using gm::core::ExpiryPolicy;
using gm::core::Semantics;
using gm::core::Symbol;

struct CountingOptions {
  std::string out = "BENCH_counting.json";
  std::int64_t db_size = 200'000;
  int episodes = 256;
  int level = 3;
  int repeat = 3;
  std::uint64_t seed = 2009;
  double min_speedup = 0.0;         ///< gate: flat vs serial on the reference shape
  double min_events_per_sec = 0.0;  ///< gate: absolute flat floor on the reference shape
};

/// One point of the shape grid.  `prefix_pool` 0 draws fully random episodes;
/// P > 0 draws each episode's (level-1)-prefix from a pool of P (the
/// apriori-candidate shape the trie engine compresses).
struct Shape {
  int alphabet = 26;
  std::int64_t expiry = 0;
  int prefix_pool = 0;
  bool reference = false;  ///< the gated large-alphabet shape
};

std::vector<Episode> make_episodes(const Shape& shape, const CountingOptions& opt,
                                   gm::Rng& rng) {
  const auto symbol = [&] {
    return static_cast<Symbol>(rng.below(static_cast<std::uint64_t>(shape.alphabet)));
  };
  std::vector<std::vector<Symbol>> prefixes;
  for (int p = 0; p < shape.prefix_pool; ++p) {
    std::vector<Symbol> prefix;
    for (int i = 0; i + 1 < opt.level; ++i) prefix.push_back(symbol());
    prefixes.push_back(std::move(prefix));
  }
  std::vector<Episode> episodes;
  episodes.reserve(static_cast<std::size_t>(opt.episodes));
  for (int e = 0; e < opt.episodes; ++e) {
    std::vector<Symbol> symbols;
    if (!prefixes.empty() && opt.level > 1) {
      symbols = prefixes[static_cast<std::size_t>(e) % prefixes.size()];
      symbols.push_back(symbol());
    } else {
      for (int i = 0; i < opt.level; ++i) symbols.push_back(symbol());
    }
    episodes.emplace_back(std::move(symbols));
  }
  return episodes;
}

/// Best-of-N wall clock of `fn` (which returns the counts it produced, so the
/// work cannot be optimized away and every run is cross-checked).
template <typename Fn>
double best_seconds(int repeat, std::vector<std::int64_t>& counts, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  double best = 1e300;
  for (int r = 0; r < repeat; ++r) {
    const auto start = Clock::now();
    counts = fn();
    best = std::min(best, std::chrono::duration<double>(Clock::now() - start).count());
  }
  return best;
}

int run_counting_lane(const CountingOptions& opt) {
  // The alphabet axis tops out at 250: symbols are dense 8-bit ids, so the
  // "large alphabet" reference shape is the widest the layout supports.
  const std::vector<Shape> shapes = {
      {4, 0, 0, false},    {4, 17, 0, false},    {64, 0, 0, false},  {64, 17, 0, false},
      {64, 0, 8, false},   {250, 0, 0, true},    {250, 17, 0, false}, {250, 0, 8, false},
  };

  gm::bench::JsonWriter json;
  json.begin_object();
  json.field("schema", "gm-bench-counting/1");
  json.field("db_size", opt.db_size);
  json.field("episodes", opt.episodes);
  json.field("level", opt.level);
  json.field("repeat", opt.repeat);
  json.field("seed", static_cast<std::int64_t>(opt.seed));
  json.field("min_speedup_gate", opt.min_speedup);
  json.field("events_per_sec_floor", opt.min_events_per_sec);
  json.key("shapes").begin_array();

  bool gate_failed = false;
  std::printf("%9s %7s %12s %6s | %11s %11s %11s | %8s %8s\n", "alphabet", "expiry",
              "prefix_pool", "rho", "serial_ev/s", "flat_ev/s", "trie_ev/s", "flat_x",
              "trie_x");
  for (const Shape& shape : shapes) {
    gm::Rng rng(opt.seed + static_cast<std::uint64_t>(shape.alphabet) * 1000 +
                static_cast<std::uint64_t>(shape.expiry) * 7 +
                static_cast<std::uint64_t>(shape.prefix_pool));
    const Alphabet alphabet(shape.alphabet);
    const auto db = gm::data::uniform_database(alphabet, opt.db_size, opt.seed + 1);
    const std::vector<Episode> episodes = make_episodes(shape, opt, rng);
    const double rho = gm::core::prefix_compression(episodes);
    const ExpiryPolicy expiry{shape.expiry};
    const Semantics semantics = Semantics::kNonOverlappedSubsequence;

    std::vector<std::int64_t> oracle;
    std::vector<std::int64_t> flat;
    std::vector<std::int64_t> trie;
    const double serial_s = best_seconds(opt.repeat, oracle, [&] {
      return gm::core::count_all(episodes, db, semantics, expiry);
    });
    const double flat_s = best_seconds(opt.repeat, flat, [&] {
      return gm::core::count_all_single_scan(episodes, db, semantics, expiry);
    });
    const double trie_s = best_seconds(opt.repeat, trie, [&] {
      return gm::core::count_all_trie_scan(episodes, db, semantics, expiry);
    });
    if (flat != oracle || trie != oracle) {
      std::fprintf(stderr,
                   "FAIL: engine counts diverge from the serial oracle "
                   "(alphabet %d, expiry %lld, prefix_pool %d)\n",
                   shape.alphabet, static_cast<long long>(shape.expiry), shape.prefix_pool);
      return 1;
    }

    const double db_events = static_cast<double>(opt.db_size);
    const double serial_eps = db_events / serial_s;
    const double flat_eps = db_events / flat_s;
    const double trie_eps = db_events / trie_s;
    const double flat_speedup = serial_s / flat_s;
    const double trie_speedup = serial_s / trie_s;
    std::printf("%9d %7lld %12d %6.3f | %11.3e %11.3e %11.3e | %8.2f %8.2f\n",
                shape.alphabet, static_cast<long long>(shape.expiry), shape.prefix_pool, rho,
                serial_eps, flat_eps, trie_eps, flat_speedup, trie_speedup);

    json.begin_object();
    json.field("alphabet", shape.alphabet);
    json.field("expiry", shape.expiry);
    json.field("prefix_pool", shape.prefix_pool);
    json.field("prefix_compression", rho);
    json.field("reference", shape.reference);
    json.field("serial_events_per_sec", serial_eps);
    json.field("flat_events_per_sec", flat_eps);
    json.field("trie_events_per_sec", trie_eps);
    json.field("flat_speedup_vs_serial", flat_speedup);
    json.field("trie_speedup_vs_serial", trie_speedup);
    json.end_object();

    if (shape.reference) {
      if (opt.min_speedup > 0.0 && flat_speedup < opt.min_speedup) {
        std::fprintf(stderr,
                     "GATE FAIL: flat single-scan %.2fx serial on the reference shape, "
                     "gate requires >= %.2fx\n",
                     flat_speedup, opt.min_speedup);
        gate_failed = true;
      }
      if (opt.min_events_per_sec > 0.0 && flat_eps < opt.min_events_per_sec) {
        std::fprintf(stderr,
                     "GATE FAIL: flat single-scan %.3e events/sec on the reference shape, "
                     "floor is %.3e\n",
                     flat_eps, opt.min_events_per_sec);
        gate_failed = true;
      }
    }
  }
  json.end_array();
  json.end_object();
  json.write_file(opt.out);
  std::printf("wrote %s\n", opt.out.c_str());
  return gate_failed ? 1 : 0;
}

constexpr const char* kUsage =
    "usage: micro_gbench --counting [--out FILE] [--db N] [--episodes N] [--level L]\n"
    "                    [--repeat R] [--seed S] [--min-speedup X]\n"
    "                    [--min-events-per-sec F]\n"
    "       micro_gbench [google-benchmark flags]   (micro suite, when built in)\n";

}  // namespace

#ifdef GM_HAVE_GBENCH
#include <benchmark/benchmark.h>

#include "core/candidate_gen.hpp"
#include "core/segment_counter.hpp"
#include "kernels/mining_kernels.hpp"
#include "kernels/workload_model.hpp"
#include "sim/cache.hpp"
#include "sim/engine.hpp"

namespace {

const Alphabet kAlphabet = Alphabet::english_uppercase();

void BM_AutomatonScan(benchmark::State& state) {
  const auto db = gm::data::uniform_database(kAlphabet, 100'000, 3);
  const Episode episode = Episode::from_text(kAlphabet, "ABC");
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        count_occurrences(episode, db, Semantics::kNonOverlappedSubsequence));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_AutomatonScan);

void BM_SingleScanLargeAlphabet(benchmark::State& state) {
  const Alphabet alphabet(250);
  const auto db = gm::data::uniform_database(alphabet, 100'000, 3);
  gm::Rng rng(11);
  CountingOptions opt;
  opt.episodes = 256;
  const std::vector<Episode> episodes = make_episodes({250, 0, 0, false}, opt, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gm::core::count_all_single_scan(
        episodes, db, Semantics::kNonOverlappedSubsequence));
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_SingleScanLargeAlphabet);

void BM_ChunkedComposition(benchmark::State& state) {
  const auto db = gm::data::uniform_database(kAlphabet, 100'000, 3);
  const Episode episode = Episode::from_text(kAlphabet, "ABC");
  for (auto _ : state) {
    benchmark::DoNotOptimize(count_chunked(episode, db, static_cast<int>(state.range(0)),
                                           Semantics::kNonOverlappedSubsequence, {},
                                           gm::core::SpanningFix::kStateComposition));
  }
}
BENCHMARK(BM_ChunkedComposition)->Arg(8)->Arg(64);

void BM_CacheSimStream(benchmark::State& state) {
  gpusim::CacheSim cache(8192, 32, 4);
  std::uint64_t address = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(address));
    address += 1;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheSimStream);

void BM_FunctionalEngineLaunch(benchmark::State& state) {
  gpusim::EngineOptions opts;
  opts.host_threads = 1;
  opts.simulate_texture_cache = false;
  const gpusim::Engine engine(gpusim::geforce_8800_gts_512(), opts);
  const auto db = gm::data::uniform_database(kAlphabet, 2'000, 3);
  const auto episodes = gm::core::all_distinct_episodes(kAlphabet, 1);
  gm::kernels::MiningLaunchParams params;
  params.algorithm = gm::kernels::Algorithm::kThreadTexture;
  params.threads_per_block = 32;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gm::kernels::run_mining_kernel(engine, db, episodes, params));
  }
  state.SetItemsProcessed(state.iterations() * 26 * 2'000);  // lane-chars simulated
}
BENCHMARK(BM_FunctionalEngineLaunch);

void BM_AnalyticModelFullScale(benchmark::State& state) {
  const auto device = gpusim::geforce_gtx_280();
  const gpusim::CostModel model;
  gm::kernels::WorkloadSpec spec;
  spec.db_size = gm::data::kPaperDatabaseSize;
  spec.episode_count = 15'600;
  spec.level = 3;
  spec.params.algorithm = gm::kernels::Algorithm::kBlockBuffered;
  spec.params.threads_per_block = 512;
  for (auto _ : state) {
    benchmark::DoNotOptimize(predict_mining_time(device, spec, model));
  }
}
BENCHMARK(BM_AnalyticModelFullScale);

void BM_SpikeTrainGeneration(benchmark::State& state) {
  const std::vector<Episode> planted = {Episode::from_text(kAlphabet, "ABC")};
  gm::data::SpikeTrainConfig config;
  config.size = 50'000;
  for (auto _ : state) {
    config.seed += 1;
    benchmark::DoNotOptimize(gm::data::spike_train(kAlphabet, planted, config));
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_SpikeTrainGeneration);

}  // namespace
#endif  // GM_HAVE_GBENCH

int main(int argc, char** argv) {
  bool counting = false;
  CountingOptions opt;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      const auto next = [&]() -> std::string_view {
        if (i + 1 >= argc) throw gm::bench::UsageError(std::string(arg) + " needs a value");
        return argv[++i];
      };
      if (arg == "--counting") {
        counting = true;
      } else if (arg == "--out") {
        opt.out = std::string(next());
      } else if (arg == "--db") {
        opt.db_size = gm::bench::parse_int64(arg, next(), 1, 1'000'000'000);
      } else if (arg == "--episodes") {
        opt.episodes = gm::bench::parse_int(arg, next(), 1, 1'000'000);
      } else if (arg == "--level") {
        opt.level = gm::bench::parse_int(arg, next(), 1, 16);
      } else if (arg == "--repeat") {
        opt.repeat = gm::bench::parse_int(arg, next(), 1, 100);
      } else if (arg == "--seed") {
        opt.seed = static_cast<std::uint64_t>(
            gm::bench::parse_int64(arg, next(), 0, std::numeric_limits<std::int64_t>::max()));
      } else if (arg == "--min-speedup") {
        opt.min_speedup = gm::bench::parse_double(arg, next(), 0.0, 1e9);
      } else if (arg == "--min-events-per-sec") {
        opt.min_events_per_sec = gm::bench::parse_double(arg, next(), 0.0, 1e18);
      } else if (arg == "--help" || arg == "-h") {
        std::printf("%s", kUsage);
        return 0;
      } else if (!counting) {
        break;  // not a counting-lane flag: hand the whole line to gbench
      } else {
        throw gm::bench::UsageError("unknown flag '" + std::string(arg) + "'");
      }
    }
    if (counting) return run_counting_lane(opt);
  } catch (const gm::bench::UsageError& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), kUsage);
    return 2;
  }
#ifdef GM_HAVE_GBENCH
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
#else
  std::fprintf(stderr,
               "built without Google Benchmark; only the counting lane is available\n%s",
               kUsage);
  return 2;
#endif
}

#include "bench_support/paper_refs.hpp"

#include "bench_support/paper_setup.hpp"
#include "data/generators.hpp"
#include "sim/device_spec.hpp"

namespace gm::bench {

const std::vector<PaperReference>& paper_references() {
  using kernels::Algorithm;
  static const std::vector<PaperReference> kReferences = {
      // Fig 9(a): Algo1 L1 — flat, clock-ordered (8800 fastest).
      {"9a", "8800", Algorithm::kThreadTexture, 1, 128, 127.0},
      {"9a", "gx2", Algorithm::kThreadTexture, 1, 128, 140.0},
      {"9a", "gtx280", Algorithm::kThreadTexture, 1, 128, 160.0},
      {"9a", "gtx280", Algorithm::kThreadTexture, 1, 512, 290.0},
      // Fig 8(a)/9(b): Algo1 L2 — flat bands 165/180/215.
      {"8a", "8800", Algorithm::kThreadTexture, 2, 256, 165.0},
      {"8a", "gx2", Algorithm::kThreadTexture, 2, 256, 180.0},
      {"8a", "gtx280", Algorithm::kThreadTexture, 2, 256, 215.0},
      // Fig 9(c): Algo1 L3.
      {"9c", "gtx280", Algorithm::kThreadTexture, 3, 96, 300.0},
      {"9c", "gtx280", Algorithm::kThreadTexture, 3, 512, 700.0},
      // Fig 9(d-f): Algo2.
      {"9d", "gtx280", Algorithm::kThreadBuffered, 1, 512, 45.0},
      {"9e", "gtx280", Algorithm::kThreadBuffered, 2, 512, 50.0},
      {"9f", "gtx280", Algorithm::kThreadBuffered, 3, 96, 200.0},
      {"9f", "gtx280", Algorithm::kThreadBuffered, 3, 512, 500.0},
      // Fig 8(b)/9(g): Algo3 L1 — bandwidth-split plateaus.
      {"8b", "8800", Algorithm::kBlockTexture, 1, 16, 13.0},
      {"8b", "8800", Algorithm::kBlockTexture, 1, 256, 6.0},
      {"8b", "gtx280", Algorithm::kBlockTexture, 1, 256, 2.0},
      // Fig 7(b)/9(h): Algo3 L2 — best overall at 64 threads.
      {"7b", "gtx280", Algorithm::kBlockTexture, 2, 64, 70.0},
      {"7b", "gtx280", Algorithm::kBlockTexture, 2, 512, 200.0},
      // Fig 9(i): Algo3 L3.
      {"9i", "gtx280", Algorithm::kBlockTexture, 3, 512, 2000.0},
      {"9i", "8800", Algorithm::kBlockTexture, 3, 512, 3700.0},
      // Fig 9(j): Algo4 L1 — sub-ms to few-ms; best config of C4.
      {"9j", "gtx280", Algorithm::kBlockBuffered, 1, 256, 1.0},
      {"9j", "gtx280", Algorithm::kBlockBuffered, 1, 16, 6.0},
      // Fig 7(b)/9(k): Algo4 L2 — crossing Algo3 near 240 threads.
      {"7b", "gtx280", Algorithm::kBlockBuffered, 2, 16, 450.0},
      {"7b", "gtx280", Algorithm::kBlockBuffered, 2, 256, 120.0},
      // Fig 9(l): Algo4 L3.
      {"9l", "gtx280", Algorithm::kBlockBuffered, 3, 96, 900.0},
      {"9l", "8800", Algorithm::kBlockBuffered, 3, 512, 1700.0},
  };
  return kReferences;
}

std::vector<calib::FitSample> paper_reference_samples(double weight) {
  std::vector<calib::FitSample> samples;
  samples.reserve(paper_references().size());
  for (const PaperReference& ref : paper_references()) {
    calib::FitSample sample;
    sample.workload.db_size = data::kPaperDatabaseSize;
    sample.workload.episode_count = paper_episode_count(ref.level);
    sample.workload.level = ref.level;
    sample.workload.alphabet_size = 26;
    sample.config.kind = planner::BackendKind::kGpuSim;
    sample.config.algorithm = ref.algorithm;
    sample.config.threads_per_block = ref.tpb;
    sample.device = gpusim::device_by_name(ref.card);
    sample.measured_ms = ref.paper_ms;
    sample.weight = weight;
    samples.push_back(std::move(sample));
  }
  return samples;
}

}  // namespace gm::bench

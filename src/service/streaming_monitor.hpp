// Live alerting over an appended event stream.
//
// A StreamingMonitor watches one registered episode set with one incremental
// scan (core::StreamScan): every append batch advances the scan by exactly
// the new events — never a recount — and episodes whose occurrence count
// reaches the monitor's threshold raise an Alert on the batch that crossed
// it.  Counts are always exact: after any sequence of appends the monitor
// reports precisely what a from-scratch scan of the whole stream would, for
// every semantics x expiry, because the underlying engines are bit-exact
// resumable (see core/scan_checkpoint.hpp).
//
// Monitors checkpoint like any stream scan, so a session can persist them
// (service/checkpoint_store) and resume after a restart: restore verifies the
// stream prefix via the checkpoint digest, replays only the events appended
// since the capture, and re-derives alert state from the counts — an episode
// already over threshold at restore does not re-fire.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/episode.hpp"
#include "core/scan_checkpoint.hpp"

namespace gm::service {

/// What to watch: an episode set under fixed scan parameters, alerting when
/// any episode's count reaches `threshold`.
///
/// `idle_eviction_generations`, when positive, evicts the in-flight partial
/// match of any episode whose count has not advanced for that many
/// consecutive append batches: the automaton drops back to idle (count and
/// alert latch untouched) so a long-dormant episode stops pinning mid-match
/// state.  Eviction is per-episode — automata are independent in both scan
/// engines — so episodes that keep advancing alert exactly as they would
/// without eviction; only a dormant episode can lose an occurrence that
/// would have straddled its idle stretch.  Zero disables eviction.
struct MonitorSpec {
  std::string name;
  std::vector<core::Episode> episodes;
  core::Semantics semantics = core::Semantics::kNonOverlappedSubsequence;
  core::ExpiryPolicy expiry;
  std::int64_t threshold = 1;
  core::ScanEngine engine = core::ScanEngine::kSingleScan;
  std::int64_t idle_eviction_generations = 0;
};

/// One threshold crossing.  `position` is the stream high-water mark after
/// the batch that fired it — the alert's detection latency against the
/// occurrence that crossed the threshold is bounded by that batch's size.
struct Alert {
  std::string monitor;
  std::size_t episode_index = 0;  ///< into MonitorSpec::episodes
  std::int64_t count = 0;         ///< count at detection
  std::int64_t position = 0;
  std::uint64_t generation = 0;   ///< database generation at detection
};

/// Per-batch progress record: how far the monitor has read and how many
/// occurrences the batch completed (across all watched episodes).
struct MonitorTick {
  std::int64_t position = 0;
  std::int64_t batch_events = 0;
  std::int64_t new_occurrences = 0;
};

class StreamingMonitor {
 public:
  /// A monitor positioned before the first event.  Callers registering
  /// against a non-empty stream feed the existing prefix via on_append (the
  /// session does this), so counts always cover the whole stream.
  explicit StreamingMonitor(MonitorSpec spec);

  /// Resumes a persisted monitor.  The checkpoint must carry exactly the
  /// spec's episode set and scan parameters; episodes already at threshold
  /// re-arm as fired so they do not alert again.
  StreamingMonitor(MonitorSpec spec, const core::ScanCheckpoint& checkpoint);

  /// Advance over one append batch; threshold crossings append to `alerts`.
  void on_append(std::span<const core::Symbol> events, std::uint64_t generation,
                 std::vector<Alert>& alerts);

  [[nodiscard]] const MonitorSpec& spec() const { return spec_; }
  [[nodiscard]] std::vector<std::int64_t> counts() const { return scan_.counts(); }
  [[nodiscard]] std::int64_t high_water() const { return scan_.high_water(); }
  [[nodiscard]] const std::vector<MonitorTick>& ticks() const { return ticks_; }
  [[nodiscard]] core::ScanCheckpoint checkpoint(std::uint64_t generation = 0) const {
    return scan_.checkpoint(generation);
  }

  /// Total in-flight partial matches dropped by idle eviction so far.
  [[nodiscard]] std::int64_t idle_evictions() const { return idle_evictions_; }

 private:
  void arm_fired();
  void evict_idle();

  MonitorSpec spec_;
  core::StreamScan scan_;
  std::vector<bool> fired_;  ///< alert-once latch, derived from counts on restore
  std::vector<MonitorTick> ticks_;
  std::int64_t last_total_ = 0;
  std::vector<std::int64_t> idle_batches_;  ///< consecutive appends without a count advance
  std::vector<std::int64_t> last_counts_;
  std::int64_t idle_evictions_ = 0;
};

}  // namespace gm::service

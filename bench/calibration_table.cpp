// Calibration report: predicted kernel times at reference configurations,
// side by side with the values read off the paper's published figures.
//
// This is the tool used to fit the cost-model constants (see
// kernels/cost_constants.hpp and gpusim::CostParams); EXPERIMENTS.md records
// the final residuals.  "paper" values are approximate readings from the
// figure axes, not tabulated numbers.
#include <cmath>
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench_support/paper_refs.hpp"
#include "bench_support/paper_setup.hpp"
#include "kernels/mining_kernels.hpp"

using gm::bench::paper_references;

int main() {
  std::cout << "Calibration: model predictions vs. paper figure readings\n";
  std::cout << std::left << std::setw(6) << "fig" << std::setw(8) << "card" << std::setw(24)
            << "algorithm" << std::setw(4) << "L" << std::setw(6) << "tpb" << std::right
            << std::setw(12) << "paper ms" << std::setw(12) << "model ms" << std::setw(10)
            << "ratio" << "  bound-by\n";

  double log_error = 0.0;
  for (const auto& r : paper_references()) {
    const auto device = gpusim::device_by_name(r.card);
    const auto breakdown = gm::bench::paper_breakdown(device, r.algorithm, r.level, r.tpb);
    const double ratio = breakdown.total_ms / r.paper_ms;
    log_error += std::abs(std::log(ratio));
    std::cout << std::left << std::setw(6) << r.figure << std::setw(8) << r.card
              << std::setw(24) << to_string(r.algorithm) << std::setw(4) << r.level
              << std::setw(6) << r.tpb << std::right << std::fixed << std::setprecision(2)
              << std::setw(12) << r.paper_ms << std::setw(12) << breakdown.total_ms
              << std::setw(10) << ratio << "  " << breakdown.bound_by << "\n";
  }
  std::cout << "\nmean |log ratio| = " << std::setprecision(3)
            << log_error / paper_references().size()
            << "  (0 = perfect; 0.69 = factor of 2 off on average)\n";
  return 0;
}

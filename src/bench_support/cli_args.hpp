// Checked command-line number parsing shared by the CLI-facing drivers
// (examples/gminer_cli, bench/backend_shootout).
//
// std::atoi/atof silently turn garbage into 0 — "--tpb x64" would launch one
// thread per block and "--support 0.01%" would mine everything.  These
// helpers parse with std::from_chars, require the whole token to be
// consumed, and reject out-of-range values, throwing gm::PreconditionError
// with a message that names the offending flag so drivers can print it and
// exit with a usage error.
#pragma once

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>
#include <system_error>

#include "common/error.hpp"

namespace gm::bench {

/// A malformed command-line value.  Carries the plain message (no
/// source-location decoration): it is printed verbatim to the terminal next
/// to the usage text.  Tagged gm::ErrorCode::kUsage so the service layer can
/// map request-syntax failures to a machine-readable rejection.
class UsageError : public gm::PreconditionError {
 public:
  explicit UsageError(const std::string& what)
      : PreconditionError(what, gm::ErrorCode::kUsage) {}
};

namespace detail {

template <typename T>
[[nodiscard]] T parse_number(std::string_view flag, std::string_view text) {
  T value{};
  const char* const first = text.data();
  const char* const last = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec == std::errc::result_out_of_range) {
    throw UsageError(std::string(flag) + ": value '" + std::string(text) +
                     "' is out of range");
  }
  if (ec != std::errc{} || ptr != last || text.empty()) {
    throw UsageError(std::string(flag) + " expects a number, got '" + std::string(text) + "'");
  }
  return value;
}

template <typename T>
void check_range(std::string_view flag, T value, T min_value, T max_value) {
  if (value < min_value || value > max_value) {
    throw UsageError(std::string(flag) + " expects a value in [" + std::to_string(min_value) +
                     ", " + std::to_string(max_value) + "], got " + std::to_string(value));
  }
}

}  // namespace detail

/// Parse `text` as an int in [min_value, max_value].
[[nodiscard]] inline int parse_int(std::string_view flag, std::string_view text, int min_value,
                                   int max_value) {
  const int value = detail::parse_number<int>(flag, text);
  detail::check_range(flag, value, min_value, max_value);
  return value;
}

/// Parse `text` as an int64 in [min_value, max_value].
[[nodiscard]] inline std::int64_t parse_int64(std::string_view flag, std::string_view text,
                                              std::int64_t min_value, std::int64_t max_value) {
  const std::int64_t value = detail::parse_number<std::int64_t>(flag, text);
  detail::check_range(flag, value, min_value, max_value);
  return value;
}

/// Parse `text` as a double in [min_value, max_value] (rejects NaN by range).
[[nodiscard]] inline double parse_double(std::string_view flag, std::string_view text,
                                         double min_value, double max_value) {
  const double value = detail::parse_number<double>(flag, text);
  if (!(value >= min_value && value <= max_value)) {
    throw UsageError(std::string(flag) + " expects a value in [" + std::to_string(min_value) +
                     ", " + std::to_string(max_value) + "], got '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace gm::bench

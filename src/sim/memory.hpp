// Simulated device memory spaces.
//
// `DeviceBuffer<T>` owns storage "on the device"; kernels access it through
// cost-charging views: `TextureView` (read-only, served by the per-SM texture
// cache), `GlobalView` (read/write device memory, optional atomics), and
// `SharedArray` (per-block on-chip scratch).  Host code moves data in and out
// via `host()` — transfers are not part of kernel time, matching the paper's
// measurement methodology (kernel-invocation to kernel-return).
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "sim/thread_ctx.hpp"

namespace gpusim {

namespace detail {
/// Process-wide allocator of disjoint simulated address ranges.
[[nodiscard]] std::uint64_t allocate_address_range(std::uint64_t bytes);
}  // namespace detail

template <typename T>
class TextureView;
template <typename T>
class GlobalView;

/// Owning simulated device allocation.
template <typename T>
class DeviceBuffer {
 public:
  explicit DeviceBuffer(std::size_t count)
      : storage_(count), base_(detail::allocate_address_range(count * sizeof(T))) {}

  explicit DeviceBuffer(std::span<const T> host_data)
      : storage_(host_data.begin(), host_data.end()),
        base_(detail::allocate_address_range(host_data.size() * sizeof(T))) {}

  DeviceBuffer(DeviceBuffer&&) noexcept = default;
  DeviceBuffer& operator=(DeviceBuffer&&) noexcept = default;
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::uint64_t base_address() const noexcept { return base_; }

  /// Host-side access (cudaMemcpy analogue; free of kernel-time charges).
  [[nodiscard]] std::span<T> host() noexcept { return storage_; }
  [[nodiscard]] std::span<const T> host() const noexcept { return storage_; }

  [[nodiscard]] TextureView<T> texture() const noexcept {
    return TextureView<T>(storage_.data(), storage_.size(), base_);
  }
  [[nodiscard]] GlobalView<T> global() noexcept {
    return GlobalView<T>(storage_.data(), storage_.size(), base_);
  }

 private:
  std::vector<T> storage_;
  std::uint64_t base_;
};

/// Read-only view served through the texture unit and its per-SM cache.
template <typename T>
class TextureView {
 public:
  TextureView() = default;
  TextureView(const T* data, std::size_t size, std::uint64_t base)
      : data_(data), size_(size), base_(base) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// tex1Dfetch analogue: charges one texture fetch to the calling lane.
  [[nodiscard]] T fetch(ThreadCtx& ctx, std::size_t index) const {
    gm::ensure(index < size_, "texture fetch out of bounds");
    ctx.note_tex_fetch(base_ + index * sizeof(T), sizeof(T));
    return data_[index];
  }

 private:
  const T* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t base_ = 0;
};

/// Read/write view of device ("global") memory.
template <typename T>
class GlobalView {
 public:
  GlobalView() = default;
  GlobalView(T* data, std::size_t size, std::uint64_t base)
      : data_(data), size_(size), base_(base) {}

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  [[nodiscard]] T load(ThreadCtx& ctx, std::size_t index) const {
    gm::ensure(index < size_, "global load out of bounds");
    ctx.note_global_access(sizeof(T));
    return data_[index];
  }

  void store(ThreadCtx& ctx, std::size_t index, T value) {
    gm::ensure(index < size_, "global store out of bounds");
    ctx.note_global_access(sizeof(T));
    data_[index] = value;
  }

  /// 32/64-bit atomic add; requires compute capability >= 1.1 (paper §4.2.1).
  /// Returns the previous value, like CUDA atomicAdd.
  T atomic_add(ThreadCtx& ctx, std::size_t index, T delta) {
    static_assert(std::atomic_ref<T>::required_alignment <= alignof(std::max_align_t));
    gm::ensure(index < size_, "atomic out of bounds");
    ctx.note_atomic();
    ctx.note_global_access(sizeof(T));
    return std::atomic_ref<T>(data_[index]).fetch_add(delta, std::memory_order_relaxed);
  }

 private:
  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::uint64_t base_ = 0;
};

/// Typed window into the block's shared-memory arena.  Loads and stores are
/// charged to the calling lane; the arena itself lives in BlockEnv so every
/// thread of the block sees the same bytes.
template <typename T>
class SharedArray {
 public:
  SharedArray(ThreadCtx& ctx, std::size_t count, std::size_t byte_offset = 0) : ctx_(&ctx) {
    auto bytes = ctx.shared_bytes();
    gm::expects(byte_offset + count * sizeof(T) <= bytes.size(),
                "shared array exceeds the block's shared memory allocation");
    gm::expects(reinterpret_cast<std::uintptr_t>(bytes.data() + byte_offset) % alignof(T) == 0,
                "shared array misaligned for element type");
    data_ = reinterpret_cast<T*>(bytes.data() + byte_offset);
    count_ = count;
  }

  [[nodiscard]] std::size_t size() const noexcept { return count_; }

  [[nodiscard]] T load(std::size_t index) const {
    gm::ensure(index < count_, "shared load out of bounds");
    ctx_->note_shared_access();
    return data_[index];
  }

  void store(std::size_t index, T value) {
    gm::ensure(index < count_, "shared store out of bounds");
    ctx_->note_shared_access();
    data_[index] = value;
  }

 private:
  ThreadCtx* ctx_;
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace gpusim

#include "core/multi_counter.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/error.hpp"

namespace gm::core {
namespace {

// One episode automaton flattened for the bucket index.  `gen` invalidates
// bucket entries left behind when the automaton moves without being processed
// from its bucket (expiry re-bucketing).
struct Slot {
  std::span<const Symbol> episode;
  std::int64_t count = 0;
  std::int64_t first_pos = 0;
  std::uint64_t gen = 0;  // 64-bit: cannot wrap within an int64-indexed stream
  int state = 0;
};

struct BucketEntry {
  std::uint32_t slot = 0;
  std::uint64_t gen = 0;
};

// Pending expiry deadline for slot `slot`'s in-flight match.  Validated on
// pop against the slot's live first_pos (a completed-and-restarted match has
// a different deadline), so no generation is needed here.
struct Deadline {
  std::int64_t at = 0;
  std::uint32_t slot = 0;
  friend bool operator>(const Deadline& a, const Deadline& b) { return a.at > b.at; }
};

// Dense fallback: step every automaton on every symbol.  Used for
// kContiguousRestart, whose mismatch edges let any symbol transition any
// in-flight automaton, defeating a waiting-symbol index.  Still a single
// database read, unlike the per-episode rescans of count_all.
std::vector<std::int64_t> count_dense(std::span<const Episode> episodes,
                                      std::span<const Symbol> database, Semantics semantics,
                                      ExpiryPolicy expiry, std::vector<ScanExit>* exits) {
  std::vector<EpisodeAutomaton> automata;
  automata.reserve(episodes.size());
  for (const auto& e : episodes) automata.emplace_back(e.symbols(), semantics, expiry);
  std::vector<std::int64_t> counts(episodes.size(), 0);
  for (std::size_t i = 0; i < database.size(); ++i) {
    const Symbol s = database[i];
    const auto pos = static_cast<std::int64_t>(i);
    for (std::size_t a = 0; a < automata.size(); ++a) {
      if (automata[a].step(s, pos)) ++counts[a];
    }
  }
  if (exits != nullptr) {
    exits->assign(episodes.size(), {});
    for (std::size_t a = 0; a < automata.size(); ++a) {
      (*exits)[a] = {automata[a].state(), automata[a].first_match_pos()};
    }
  }
  return counts;
}

std::vector<std::int64_t> count_all_single_scan_impl(std::span<const Episode> episodes,
                                                     std::span<const Symbol> database,
                                                     Semantics semantics, ExpiryPolicy expiry,
                                                     std::vector<ScanExit>* exits) {
  for (const auto& e : episodes) gm::expects(!e.empty(), "cannot count an empty episode");
  if (episodes.empty()) {
    if (exits != nullptr) exits->clear();
    return {};
  }
  gm::expects(episodes.size() <= std::numeric_limits<std::uint32_t>::max(),
              "too many episodes for the single-scan index");

  if (semantics == Semantics::kContiguousRestart) {
    return count_dense(episodes, database, semantics, expiry, exits);
  }

  // Deadlines are computed as first_pos + window, so clamp huge user-supplied
  // windows to the database size before they can overflow: any window >= |DB|
  // behaves identically (pos - first_pos never reaches it inside the scan,
  // exactly as in the serial automaton's subtraction form).
  if (expiry.enabled()) {
    expiry.window =
        std::min(expiry.window, static_cast<std::int64_t>(database.size()));
  }

  std::vector<Slot> slots;
  slots.reserve(episodes.size());
  // Symbol is 8-bit, so a direct-mapped bucket table covers every alphabet.
  std::vector<std::vector<BucketEntry>> buckets(256);
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(episodes.size()); ++i) {
    Slot slot;
    slot.episode = episodes[i].symbols();
    slots.push_back(slot);
    buckets[slots[i].episode[0]].push_back({i, 0});
  }

  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<>> deadlines;
  std::vector<BucketEntry> scratch;

  for (std::size_t i = 0; i < database.size(); ++i) {
    const Symbol s = database[i];
    const auto pos = static_cast<std::int64_t>(i);

    // Expire matches that can no longer finish by this position: the serial
    // automaton resets them at step time, so they must be back in their
    // episode[0] bucket before this symbol is dispatched.
    if (expiry.enabled()) {
      while (!deadlines.empty() && deadlines.top().at <= pos) {
        const Deadline d = deadlines.top();
        deadlines.pop();
        Slot& slot = slots[d.slot];
        if (slot.state > 0 && slot.first_pos + expiry.window == d.at) {
          slot.state = 0;
          ++slot.gen;  // the entry still filed under the old awaited symbol dies
          buckets[slot.episode[0]].push_back({d.slot, slot.gen});
        }
      }
    }

    auto& bucket = buckets[s];
    if (bucket.empty()) continue;
    // Swap the bucket out before advancing: an automaton whose next awaited
    // symbol is also `s` (repeated-symbol episode) must re-file for the NEXT
    // occurrence, not be stepped twice on this one.
    scratch.swap(bucket);
    for (const BucketEntry entry : scratch) {
      Slot& slot = slots[entry.slot];
      if (slot.gen != entry.gen) continue;  // stale: expired/re-bucketed since
      if (slot.state == 0) {
        slot.first_pos = pos;
        // Level-1 episodes complete in this same step, so a deadline could
        // never fire usefully — don't flood the heap with one per match.
        if (expiry.enabled() && slot.episode.size() > 1) {
          deadlines.push({pos + expiry.window, entry.slot});
        }
      }
      ++slot.state;
      ++slot.gen;
      if (slot.state == static_cast<int>(slot.episode.size())) {
        ++slot.count;
        slot.state = 0;
      }
      buckets[slot.episode[static_cast<std::size_t>(slot.state)]].push_back(
          {entry.slot, slot.gen});
    }
    scratch.clear();
  }

  std::vector<std::int64_t> counts;
  counts.reserve(slots.size());
  for (const Slot& slot : slots) counts.push_back(slot.count);
  if (exits != nullptr) {
    exits->assign(slots.size(), {});
    for (std::size_t a = 0; a < slots.size(); ++a) {
      (*exits)[a] = {slots[a].state, slots[a].first_pos};
    }
  }
  return counts;
}

}  // namespace

std::vector<std::int64_t> count_all_single_scan(std::span<const Episode> episodes,
                                                std::span<const Symbol> database,
                                                Semantics semantics, ExpiryPolicy expiry) {
  return count_all_single_scan_impl(episodes, database, semantics, expiry, nullptr);
}

std::vector<std::int64_t> count_all_single_scan(std::span<const Episode> episodes,
                                                std::span<const Symbol> database,
                                                Semantics semantics, ExpiryPolicy expiry,
                                                std::vector<ScanExit>& exits) {
  return count_all_single_scan_impl(episodes, database, semantics, expiry, &exits);
}

}  // namespace gm::core

// CPU baselines vs. the simulated GPU: the single-core reference miner (the
// GMiner-class tool the paper motivates against) and the episode-parallel
// multicore backend, on a reduced database so the bench completes in seconds.
// The GPU side reports the *predicted device time* for the same workload at
// full paper scale, for context.
#include <iostream>

#include "bench_support/paper_setup.hpp"
#include "core/candidate_gen.hpp"
#include "core/cpu_backend.hpp"
#include "data/generators.hpp"

int main() {
  using gm::core::Alphabet;

  const Alphabet alphabet = Alphabet::english_uppercase();
  const std::int64_t host_db_size = 100'000;
  const auto db = gm::data::uniform_database(alphabet, host_db_size, 11);

  std::cout << "CPU baselines (100k-symbol database; level 2 = 650 episodes)\n\n";
  const auto episodes = gm::core::all_distinct_episodes(alphabet, 2);

  gm::core::CountRequest request;
  request.database = db;
  request.episodes = episodes;

  gm::core::SerialCpuBackend serial;
  const auto serial_result = serial.count(request);
  std::cout << serial.name() << ": " << serial_result.host_ms << " ms\n";

  gm::core::ParallelCpuBackend parallel;
  const auto parallel_result = parallel.count(request);
  std::cout << parallel.name() << ": " << parallel_result.host_ms << " ms (speedup "
            << serial_result.host_ms / parallel_result.host_ms << "x)\n";

  if (serial_result.counts != parallel_result.counts) {
    std::cout << "ERROR: backend disagreement\n";
    return 1;
  }

  // Context: the simulated GTX 280 at full paper scale for the same level.
  const double scale = static_cast<double>(gm::data::kPaperDatabaseSize) / host_db_size;
  const double serial_full_est = serial_result.host_ms * scale;
  const double gpu_ms = gm::bench::paper_time_ms(gpusim::geforce_gtx_280(),
                                                 gm::kernels::Algorithm::kBlockTexture, 2, 64);
  std::cout << "\nAt full paper scale (393,019 symbols):\n";
  std::cout << "  serial CPU (extrapolated): ~" << serial_full_est << " ms\n";
  std::cout << "  simulated GTX280, best L2 config (Algo3 @64tpb): " << gpu_ms << " ms\n";
  std::cout << "  modelled GPU speedup over one 2008-class CPU core: ~"
            << serial_full_est / gpu_ms << "x (host CPU here is not the paper's E4500)\n";
  return 0;
}

// Dataset persistence: a simple, self-describing text format so users can
// feed their own event streams to the miner (and the CLI example).
//
// Format, line oriented:
//   # comments and blank lines ignored
//   alphabet <N>
//   <events: either contiguous letters 'A'.. on any number of lines, or
//            whitespace-separated decimal symbol ids; the encoding is
//            detected from the first event character, independent of N>
//
// Parse errors name the offending line ("line 7: event id 31 outside...").
#pragma once

#include <iosfwd>
#include <string>

#include "core/alphabet.hpp"

namespace gm::data {

struct Dataset {
  core::Alphabet alphabet{1};
  core::Sequence events;
};

/// Parse a dataset from a stream.  Throws gm::PreconditionError on malformed
/// input (missing header, out-of-range symbols, mixed encodings), with the
/// line number in the message.
[[nodiscard]] Dataset read_dataset(std::istream& in);

/// Load from a file path.
[[nodiscard]] Dataset load_dataset(const std::string& path);

/// Write in the same format (letters for alphabets up to 26, ids otherwise).
void write_dataset(std::ostream& out, const Dataset& dataset);

/// Save to a file path.
void save_dataset(const std::string& path, const Dataset& dataset);

}  // namespace gm::data

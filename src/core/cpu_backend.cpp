#include "core/cpu_backend.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/episode_trie.hpp"
#include "core/multi_counter.hpp"
#include "core/segment_counter.hpp"
#include "core/serial_counter.hpp"

namespace gm::core {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int resolved_thread_count(int threads) noexcept {
  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  return threads > 0 ? threads : 1;
}

namespace {

/// Run `work(worker_index)` on min(threads, tasks) threads (inline when one
/// suffices).  Shared by the parallel backends.
template <typename Fn>
void run_on_pool(int threads, std::size_t tasks, Fn&& work) {
  const std::size_t cap = std::max<std::size_t>(tasks, 1);
  const int workers =
      static_cast<int>(std::min<std::size_t>(static_cast<std::size_t>(threads), cap));
  if (workers <= 1) {
    work(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back([&work, w] { work(w); });
  for (auto& t : pool) t.join();
}

/// Claim episode indices from a shared counter, compute `count_one(i)` for
/// each, and write the results into `out` after the join.  Workers accumulate
/// (episode, count) pairs privately so no two threads ever write adjacent
/// `out` slots (false sharing).
template <typename CountFn>
void count_episodes_on_pool(int threads, std::vector<std::int64_t>& out,
                            CountFn&& count_one) {
  const std::size_t episode_count = out.size();
  std::atomic<std::size_t> next{0};
  std::vector<std::vector<std::pair<std::size_t, std::int64_t>>> partials(
      static_cast<std::size_t>(threads));
  run_on_pool(threads, episode_count, [&](int worker) {
    auto& local = partials[static_cast<std::size_t>(worker)];
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= episode_count) return;
      local.emplace_back(i, count_one(i));
    }
  });
  for (const auto& local : partials) {
    for (const auto& [episode, occurrences] : local) out[episode] = occurrences;
  }
}

}  // namespace

CountResult SerialCpuBackend::count(const CountRequest& request) {
  const auto start = Clock::now();
  CountResult result;
  result.counts = count_all(request.episodes, request.database, request.semantics,
                            request.expiry);
  result.host_ms = elapsed_ms(start);
  return result;
}

ParallelCpuBackend::ParallelCpuBackend(int threads) : threads_(resolved_thread_count(threads)) {}

std::string ParallelCpuBackend::name() const {
  return "cpu-parallel-x" + std::to_string(threads_);
}

CountResult ParallelCpuBackend::count(const CountRequest& request) {
  const auto start = Clock::now();
  CountResult result;
  result.counts.assign(request.episodes.size(), 0);
  count_episodes_on_pool(threads_, result.counts, [&](std::size_t i) {
    return count_occurrences(request.episodes[i], request.database, request.semantics,
                             request.expiry);
  });
  result.host_ms = elapsed_ms(start);
  return result;
}

ShardedCpuBackend::ShardedCpuBackend(int threads) : threads_(resolved_thread_count(threads)) {}

std::string ShardedCpuBackend::name() const {
  return "cpu-sharded-x" + std::to_string(threads_);
}

CountResult ShardedCpuBackend::count(const CountRequest& request) {
  const auto start = Clock::now();
  CountResult result;
  const std::size_t episode_count = request.episodes.size();
  result.counts.assign(episode_count, 0);
  if (episode_count == 0 || request.database.empty()) {
    result.host_ms = elapsed_ms(start);
    return result;
  }

  if (!request.expiry.enabled()) {
    const int shards = threads_;
    const auto bounds =
        chunk_boundaries(static_cast<std::int64_t>(request.database.size()), shards);
    const auto shard_count = static_cast<std::size_t>(shards);
    // Map: every (episode, shard) task computes the shard's transfer function
    // independently.  Fold: compose exit states left to right — exactly the
    // serial count (see segment_counter.hpp, kStateComposition).
    std::vector<SegmentTransfer> transfers(episode_count * shard_count);
    std::atomic<std::size_t> next{0};
    run_on_pool(threads_, transfers.size(), [&](int) {
      for (;;) {
        const std::size_t task = next.fetch_add(1, std::memory_order_relaxed);
        if (task >= transfers.size()) return;
        const std::size_t episode = task / shard_count;
        const std::size_t shard = task % shard_count;
        transfers[task] = segment_transfer(request.episodes[episode].symbols(),
                                           request.semantics, request.expiry,
                                           request.database, bounds[shard], bounds[shard + 1]);
      }
    });
    for (std::size_t e = 0; e < episode_count; ++e) {
      std::int64_t occurrences = 0;
      int state = 0;
      for (std::size_t c = 0; c < shard_count; ++c) {
        const SegmentOutcome& outcome =
            transfers[e * shard_count + c].by_entry_state[static_cast<std::size_t>(state)];
        occurrences += outcome.count;
        state = outcome.exit_state;
      }
      result.counts[e] = occurrences;
    }
  } else {
    // Expiry makes the transfer function depend on absolute positions, so a
    // blind per-shard map is not well-defined; scan each episode serially
    // (chaining contiguous chunks from entry state 0 IS the serial scan) and
    // let the parallel axis degrade to episodes.
    count_episodes_on_pool(threads_, result.counts, [&](std::size_t e) {
      return count_occurrences(request.episodes[e], request.database, request.semantics,
                               request.expiry);
    });
  }
  result.host_ms = elapsed_ms(start);
  return result;
}

CountResult SingleScanCpuBackend::count(const CountRequest& request) {
  const auto start = Clock::now();
  CountResult result;
  result.counts = count_all_single_scan(request.episodes, request.database, request.semantics,
                                        request.expiry);
  result.host_ms = elapsed_ms(start);
  return result;
}

CountResult TrieCpuBackend::count(const CountRequest& request) {
  const auto start = Clock::now();
  CountResult result;
  result.counts = count_all_trie_scan(request.episodes, request.database, request.semantics,
                                      request.expiry);
  result.host_ms = elapsed_ms(start);
  return result;
}

std::unique_ptr<CountingBackend> make_cpu_backend(std::string_view name, int threads) {
  auto matches = [&](std::string_view canonical) {
    return name == canonical ||
           (canonical.starts_with("cpu-") && name == canonical.substr(4));
  };
  if (matches("cpu-serial")) return std::make_unique<SerialCpuBackend>();
  if (matches("cpu-parallel")) return std::make_unique<ParallelCpuBackend>(threads);
  if (matches("cpu-sharded")) return std::make_unique<ShardedCpuBackend>(threads);
  if (matches("cpu-single-scan")) return std::make_unique<SingleScanCpuBackend>();
  if (matches("cpu-trie-scan")) return std::make_unique<TrieCpuBackend>();
  return nullptr;
}

}  // namespace gm::core

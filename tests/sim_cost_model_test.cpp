// Timing-model tests: mechanism properties (clock scaling, bandwidth
// ordering, occupancy waves, latency hiding) and the calibration pin against
// the paper's published curve levels.
#include <gtest/gtest.h>

#include <cmath>

#include "bench_support/paper_setup.hpp"
#include "data/generators.hpp"
#include "kernels/workload_model.hpp"
#include "sim/cost_model.hpp"

namespace gpusim {
namespace {

using gm::bench::paper_time_ms;
using gm::kernels::Algorithm;
using gm::kernels::WorkloadSpec;

WorkloadSpec paper_spec(Algorithm algorithm, int level, int tpb) {
  WorkloadSpec spec;
  spec.db_size = gm::data::kPaperDatabaseSize;
  spec.episode_count = gm::bench::paper_episode_count(level);
  spec.level = level;
  spec.params.algorithm = algorithm;
  spec.params.threads_per_block = tpb;
  return spec;
}

TEST(CostModel, LatencyBoundKernelsScaleWithClock) {
  // C7: same cycle counts, time inversely proportional to shader clock.
  const double gts = paper_time_ms(geforce_8800_gts_512(), Algorithm::kThreadTexture, 2, 128);
  const double gtx = paper_time_ms(geforce_gtx_280(), Algorithm::kThreadTexture, 2, 128);
  EXPECT_NEAR(gtx / gts, 1625.0 / 1296.0, 0.02);
}

TEST(CostModel, BandwidthBoundKernelsFollowBandwidth) {
  // C8: Algo3's strided traffic makes the 141.7 GB/s card win.
  const double gts = paper_time_ms(geforce_8800_gts_512(), Algorithm::kBlockTexture, 1, 256);
  const double gtx = paper_time_ms(geforce_gtx_280(), Algorithm::kBlockTexture, 1, 256);
  EXPECT_LT(gtx, gts);
  EXPECT_GT(gts / gtx, 1.8);
}

TEST(CostModel, MoreEpisodesNearlyFreeUntilCardFills) {
  // C1: 650 vs 26 episodes on thread-level kernels costs < 15% extra.
  const double l1 = paper_time_ms(geforce_gtx_280(), Algorithm::kThreadTexture, 1, 96);
  const double l2 = paper_time_ms(geforce_gtx_280(), Algorithm::kThreadTexture, 2, 96);
  EXPECT_LT(l2 / l1, 1.15);
}

TEST(CostModel, BlockLevelPaysPerEpisode) {
  // Block kernels launch one block per episode: L2 is ~an order of magnitude
  // more expensive than L1 at the same configuration.
  const double l1 = paper_time_ms(geforce_gtx_280(), Algorithm::kBlockTexture, 1, 128);
  const double l2 = paper_time_ms(geforce_gtx_280(), Algorithm::kBlockTexture, 2, 128);
  EXPECT_GT(l2 / l1, 8.0);
}

TEST(CostModel, WavesGrowWithBlockCount) {
  const CostModel model;
  const auto gtx = geforce_gtx_280();
  const auto spec_l1 = paper_spec(Algorithm::kBlockTexture, 1, 128);
  const auto spec_l3 = paper_spec(Algorithm::kBlockTexture, 3, 128);
  const auto t1 = predict_mining_time(gtx, spec_l1, model);
  const auto t3 = predict_mining_time(gtx, spec_l3, model);
  EXPECT_EQ(t1.waves, 1);       // 26 blocks on 30 SMs
  EXPECT_GT(t3.waves, 50);      // 15,600 blocks, 240 concurrent
}

TEST(CostModel, BreakdownSumsToTotal) {
  const CostModel model;
  const auto gtx = geforce_gtx_280();
  for (const auto algorithm : gm::kernels::all_algorithms()) {
    const auto breakdown =
        predict_mining_time(gtx, paper_spec(algorithm, 2, 128), model);
    EXPECT_GT(breakdown.total_ms, 0.0);
    // The bound categories + overheads account for the total.
    const double parts = breakdown.issue_ms + breakdown.latency_ms + breakdown.bandwidth_ms +
                         breakdown.sync_ms + breakdown.dispatch_ms + breakdown.launch_ms;
    EXPECT_NEAR(parts, breakdown.total_ms, 1e-6);
    EXPECT_TRUE(breakdown.bound_by == "issue" || breakdown.bound_by == "latency" ||
                breakdown.bound_by == "bandwidth");
  }
}

TEST(CostModel, LaunchOverheadFloorsTinyKernels) {
  CostParams params;
  params.kernel_launch_overhead_us = 500.0;
  const CostModel model(params);
  const auto t =
      predict_mining_time(geforce_gtx_280(), paper_spec(Algorithm::kBlockBuffered, 1, 256),
                          model);
  EXPECT_GE(t.total_ms, 0.5);
}

TEST(CostModel, RejectsMismatchedProfile) {
  const CostModel model;
  const auto gtx = geforce_gtx_280();
  const auto spec = paper_spec(Algorithm::kThreadTexture, 1, 128);
  auto profile = model_profile(gtx, spec);
  auto launch = model_launch_config(spec);
  launch.grid = Dim3(static_cast<int>(profile.total_blocks()) + 1);
  EXPECT_THROW((void)model.predict(gtx, launch, profile), gm::PreconditionError);
}

// --------------------------------------------------------------------------
// Calibration pin: the model must stay within the accuracy band recorded in
// EXPERIMENTS.md against readings of the paper's figures.
// --------------------------------------------------------------------------

struct Reference {
  const char* card;
  Algorithm algorithm;
  int level;
  int tpb;
  double paper_ms;
};

TEST(Calibration, ReferencePointsWithinBand) {
  const Reference references[] = {
      {"8800", Algorithm::kThreadTexture, 1, 128, 127.0},
      {"gx2", Algorithm::kThreadTexture, 1, 128, 140.0},
      {"gtx280", Algorithm::kThreadTexture, 1, 128, 160.0},
      {"gtx280", Algorithm::kThreadTexture, 1, 512, 290.0},
      {"gtx280", Algorithm::kThreadTexture, 3, 96, 300.0},
      {"gtx280", Algorithm::kThreadBuffered, 1, 512, 45.0},
      {"8800", Algorithm::kBlockTexture, 1, 16, 13.0},
      {"gtx280", Algorithm::kBlockTexture, 1, 256, 2.0},
      {"gtx280", Algorithm::kBlockTexture, 2, 64, 70.0},
      {"gtx280", Algorithm::kBlockTexture, 3, 512, 2000.0},
      {"8800", Algorithm::kBlockTexture, 3, 512, 3700.0},
      {"gtx280", Algorithm::kBlockBuffered, 1, 256, 1.0},
      {"gtx280", Algorithm::kBlockBuffered, 3, 96, 900.0},
  };
  double log_error = 0.0;
  for (const auto& r : references) {
    const double predicted =
        paper_time_ms(device_by_name(r.card), r.algorithm, r.level, r.tpb);
    const double ratio = predicted / r.paper_ms;
    EXPECT_GT(ratio, 0.2) << to_string(r.algorithm) << " L" << r.level << " @" << r.tpb;
    EXPECT_LT(ratio, 5.0) << to_string(r.algorithm) << " L" << r.level << " @" << r.tpb;
    log_error += std::abs(std::log(ratio));
  }
  EXPECT_LT(log_error / std::size(references), 0.45)
      << "mean |log ratio| regression: see bench/calibration_table";
}

}  // namespace
}  // namespace gpusim

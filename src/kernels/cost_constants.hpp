// Instruction-charge constants for the mining kernels.
//
// The functional engine counts *charged* instructions, so these constants
// pin down the arithmetic cost of each kernel's inner loop (memory
// operations charge themselves).  They are calibration inputs: first-order
// estimates of what nvcc 2.0 emitted for each loop shape, refined so the
// full model reproduces the paper's published curve levels (the reference
// points live in bench_support/paper_refs.cpp; bench/calibration_table
// prints the residuals, and `backend_shootout --fit-calibration` refits the
// KernelCostProfile view below at runtime — see src/calib/).
//
// Two asymmetries are deliberate and load-bearing:
//
//  * The unbuffered kernels (Algorithms 1 and 3) read the episode symbol
//    they are waiting for from device memory on every database symbol,
//    modelling the CC 1.x local-memory spill of an indexed episode array
//    (uncached, ~global latency).  The paper's flat, clock-scaled ~130-170ms
//    thread-level times (Figs. 8(a), 9(a-c)) are only consistent with an
//    uncovered per-symbol stall of this magnitude, and the same access in
//    the block-level kernels reproduces Algorithm 4's level-2 magnitudes
//    (Fig. 7(b)).
//
//  * The buffered thread-level kernel (Algorithm 2) keeps its episode in
//    registers (the loop is rewritten anyway to stage through shared
//    memory), giving the much lower issue-bound times of Fig. 9(d-f).
#pragma once

namespace gm::kernels {

/// Algorithm 1: loop control + texture coordinate math + FSM update per
/// database symbol (memory ops excluded).
inline constexpr int kUnbufferedScanInstr = 13;

/// Algorithm 2: tight shared-memory loop per buffered symbol.
inline constexpr int kBufferedScanInstr = 2;

/// Algorithms 3/4: loop control + chunk addressing per database symbol.
inline constexpr int kBlockScanInstr = 4;

/// Per automaton-state update in the block kernels' transfer-function scan
/// (one per entry state per symbol).
inline constexpr int kAutomatonStepInstr = 2;

/// Cooperative buffer-load loop: index math per copied element.
inline constexpr int kBufferCopyInstr = 2;

/// Fold step per (thread, entry-state) entry in the block kernels' reduce.
inline constexpr int kFoldStepInstr = 4;

/// Boundary-rescan loop body (expiry mode) per window symbol.
inline constexpr int kRescanInstr = 4;

// --- Algorithm 5 (block-bucketed single-scan) ------------------------------

/// Episode automata each thread owns (the frame/"register file" budget that
/// fixes a block's slot capacity at threads_per_block * this).  Eight keeps
/// the waiting-symbol set register-resident on CC 1.x-class hardware while
/// still amortizing one database read over many automata.
inline constexpr int kBucketEpisodesPerThread = 8;

/// Per scanned symbol per thread: loop control, deadline-heap peek and
/// bucket-head lookup.
inline constexpr int kBucketProbeInstr = 3;

/// Per drained bucket entry: list pop, generation-tag check, branch.
inline constexpr int kBucketDrainInstr = 3;

/// Per (re-)filing of an automaton into the bucket of its next awaited
/// symbol (including the initial filing under episode[0]).
inline constexpr int kBucketFileInstr = 2;

/// Per expiry-deadline min-heap push or pop.
inline constexpr int kExpiryHeapInstr = 4;

/// Trie mode: per drained shared-prefix token — child-edge lookup plus the
/// interval split that moves the surviving members one trie level deeper.
/// Heavier than a flat drain (kBucketDrainInstr), but one token drain
/// advances every episode sharing the prefix.
inline constexpr int kTrieDrainInstr = 6;

/// Trie mode: per completed episode occurrence at a trie terminal (count
/// bump + membership removal + idle-interval return).
inline constexpr int kTrieAcceptInstr = 4;

/// Registers per thread declared to the occupancy calculator.
inline constexpr int kRegistersPerThread = 10;

/// Shared-memory staging buffer for the buffered kernels, in bytes.
/// 16 KB (the full shared memory) forces one resident block per
/// SM, matching the paper's observation that "only one block may be resident
/// on a multiprocessor during this [load]" (C2).
inline constexpr int kDefaultBufferBytes = 16384;

// --- Runtime-calibratable view ---------------------------------------------

/// The instruction-charge constants above, as a value type the analytic
/// workload models take per call.  Defaults are the shipped constexprs, so a
/// default-constructed profile predicts bit-identically to the pre-profile
/// code; `backend_shootout --fit-calibration` fits these fields (per term,
/// non-negative) from measured samples and `--calibration` feeds the fitted
/// values back in.
///
/// Only the *charge* constants are here.  The structural constants
/// (kBucketEpisodesPerThread, kRegistersPerThread, kDefaultBufferBytes) fix
/// launch geometry and occupancy, which the functional engine shares —
/// fitting them would desynchronize the model from what actually runs.
struct KernelCostProfile {
  double unbuffered_scan_instr = kUnbufferedScanInstr;
  double buffered_scan_instr = kBufferedScanInstr;
  double block_scan_instr = kBlockScanInstr;
  double automaton_step_instr = kAutomatonStepInstr;
  double buffer_copy_instr = kBufferCopyInstr;
  double fold_step_instr = kFoldStepInstr;
  double rescan_instr = kRescanInstr;
  double bucket_probe_instr = kBucketProbeInstr;
  double bucket_drain_instr = kBucketDrainInstr;
  double bucket_file_instr = kBucketFileInstr;
  double expiry_heap_instr = kExpiryHeapInstr;
  double trie_drain_instr = kTrieDrainInstr;
  double trie_accept_instr = kTrieAcceptInstr;
};

}  // namespace gm::kernels

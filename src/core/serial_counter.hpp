// Serial reference counter: the ground truth every parallel backend (CPU
// threads, all four GPU algorithms) is validated against, and the stand-in
// for the single-CPU GMiner-class baseline the paper motivates against.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "core/episode.hpp"

namespace gm::core {

/// Count occurrences of one episode over the full database.
[[nodiscard]] std::int64_t count_occurrences(const Episode& episode,
                                             std::span<const Symbol> database,
                                             Semantics semantics,
                                             ExpiryPolicy expiry = {});

/// Count each episode independently (one full scan per episode, mirroring
/// the paper's map function).
[[nodiscard]] std::vector<std::int64_t> count_all(std::span<const Episode> episodes,
                                                  std::span<const Symbol> database,
                                                  Semantics semantics,
                                                  ExpiryPolicy expiry = {});

}  // namespace gm::core

// Episode counting expressed as MapReduce jobs, mirroring the paper's two
// parallelization granularities (section 3.3.1):
//
//  * thread-level: the map unit is one episode; map emits its full-database
//    count; reduce is the identity (one value per key).
//  * block-level: the map unit is one (episode, chunk) pair; map emits the
//    chunk's transfer outcome; reduce composes the outcomes in chunk order —
//    the "intermediate step" of Figure 5 folded into the reduce function.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/episode.hpp"
#include "core/segment_counter.hpp"
#include "mapreduce/mapreduce.hpp"

namespace gm::mapreduce {

struct EpisodeCountOptions {
  core::Semantics semantics = core::Semantics::kNonOverlappedSubsequence;
  core::ExpiryPolicy expiry = {};
  int threads = 0;  ///< host workers
  int chunks = 16;  ///< block-level: database chunks per episode
};

/// Thread-level job: one map call per episode, identity reduce.
[[nodiscard]] std::vector<std::int64_t> count_episodes_thread_level(
    std::span<const core::Symbol> database, std::span<const core::Episode> episodes,
    const EpisodeCountOptions& options = {});

/// Block-level job: one map call per (episode, chunk), composing reduce.
/// Exact (state-composition spanning fix) when expiry is disabled; with
/// expiry it applies the overlap-rescan fix like the GPU kernels.
[[nodiscard]] std::vector<std::int64_t> count_episodes_block_level(
    std::span<const core::Symbol> database, std::span<const core::Episode> episodes,
    const EpisodeCountOptions& options = {});

}  // namespace gm::mapreduce

#include "sim/device_spec.hpp"

#include <algorithm>
#include <cctype>

#include "common/error.hpp"

namespace gpusim {

void DeviceSpec::validate() const {
  gm::expects(multiprocessors > 0, "device must have at least one SM");
  gm::expects(cores_per_sm > 0, "SM must have at least one core");
  gm::expects(core_clock_mhz > 0, "clock must be positive");
  gm::expects(mem_bandwidth_gbps > 0, "bandwidth must be positive");
  gm::expects(warp_size > 0 && (warp_size & (warp_size - 1)) == 0,
              "warp size must be a positive power of two");
  gm::expects(max_threads_per_block > 0 && max_threads_per_sm >= max_threads_per_block,
              "thread limits inconsistent");
  gm::expects(max_blocks_per_sm > 0, "must allow at least one active block");
  gm::expects(max_warps_per_sm * warp_size >= max_threads_per_sm,
              "warp limit below thread limit");
  gm::expects(shared_mem_per_block <= shared_mem_per_sm,
              "per-block shared memory exceeds per-SM shared memory");
  gm::expects(tex_cache_line_bytes > 0 && tex_cache_bytes >= tex_cache_line_bytes,
              "texture cache must hold at least one line");
}

DeviceSpec geforce_8800_gts_512() {
  DeviceSpec d;
  d.name = "GeForce 8800 GTS 512 (G92)";
  d.multiprocessors = 16;
  d.cores_per_sm = 8;
  d.core_clock_mhz = 1625.0;
  d.mem_bandwidth_gbps = 57.6;
  d.device_mem_mb = 512;
  d.compute_capability = {1, 1};
  d.registers_per_sm = 8192;
  d.max_threads_per_block = 512;
  d.max_threads_per_sm = 768;
  d.max_blocks_per_sm = 8;
  d.max_warps_per_sm = 24;
  return d;
}

DeviceSpec geforce_9800_gx2() {
  DeviceSpec d = geforce_8800_gts_512();
  d.name = "GeForce 9800 GX2 (1x G92 die)";
  d.core_clock_mhz = 1500.0;
  d.mem_bandwidth_gbps = 64.0;  // per die
  d.device_mem_mb = 512;        // per die
  return d;
}

DeviceSpec geforce_gtx_280() {
  DeviceSpec d;
  d.name = "GeForce GTX 280 (GT200)";
  d.multiprocessors = 30;
  d.cores_per_sm = 8;
  d.core_clock_mhz = 1296.0;
  d.mem_bandwidth_gbps = 141.7;
  d.device_mem_mb = 1024;
  d.compute_capability = {1, 3};
  d.registers_per_sm = 16384;
  d.max_threads_per_block = 512;
  d.max_threads_per_sm = 1024;
  d.max_blocks_per_sm = 8;
  d.max_warps_per_sm = 32;
  return d;
}

std::vector<DeviceSpec> paper_testbed() {
  return {geforce_8800_gts_512(), geforce_9800_gx2(), geforce_gtx_280()};
}

namespace {
std::string lowered(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}
}  // namespace

DeviceSpec device_by_name(const std::string& name) {
  const std::string n = lowered(name);
  if (n.find("8800") != std::string::npos || n.find("gts") != std::string::npos) {
    return geforce_8800_gts_512();
  }
  if (n.find("9800") != std::string::npos || n.find("gx2") != std::string::npos) {
    return geforce_9800_gx2();
  }
  if (n.find("280") != std::string::npos || n.find("gt200") != std::string::npos) {
    return geforce_gtx_280();
  }
  gm::raise_precondition("unknown device name: " + name);
}

}  // namespace gpusim

#include "service/session.hpp"

#include <algorithm>
#include <chrono>
#include <iomanip>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "core/scan_checkpoint.hpp"

namespace gm::service {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since).count();
}

std::string fmt_ms(double ms) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(3) << ms;
  return os.str();
}

/// Per-level budget enforcement + plan-note collection for one mining run.
/// Before each level is counted, the planner scores the level's actual
/// candidate set; once the accumulated prediction exceeds the budget the run
/// stops between levels, so every level that did run is complete and exact.
class BudgetObserver final : public core::LevelObserver {
 public:
  BudgetObserver(planner::Workload base, const planner::PlannerOptions& options,
                 double budget_ms)
      : base_(std::move(base)), options_(options), budget_ms_(budget_ms) {}

  bool on_level_start(int level, std::span<const core::Episode> candidates) override {
    base_.level = level;
    base_.episode_count = static_cast<std::int64_t>(candidates.size());
    std::string note = "level " + std::to_string(level) + ": " +
                       std::to_string(candidates.size()) + " candidates";
    double level_ms = 0.0;
    try {
      const planner::Plan plan = planner::plan_level(base_, options_);
      level_ms = plan.winner().predicted_ms;
      note += ", plan " + plan.winner().config.label() + ", predicted " + fmt_ms(level_ms) +
              " ms";
    } catch (const gm::Error&) {
      // No feasible formulation to predict with: count anyway (the backend
      // itself will surface a real capability failure).
      note += ", no feasible formulation to predict";
    }
    predicted_total_ms_ += level_ms;
    if (budget_ms_ > 0.0 && predicted_total_ms_ > budget_ms_) {
      stop_ = Rejection{
          ErrorCode::kAdmissionRejected,
          "admission control: planner predicts " + fmt_ms(predicted_total_ms_) +
              " ms through level " + std::to_string(level) + " (" +
              std::to_string(candidates.size()) + " candidates), over the " +
              fmt_ms(budget_ms_) + " ms latency budget"};
      notes_.push_back(note + " — stopped: over budget");
      return false;
    }
    notes_.push_back(std::move(note));
    return true;
  }

  void on_level_done(const core::LevelReport& report) override {
    notes_.back() += " -> " + std::to_string(report.frequent) + " frequent (counted in " +
                     fmt_ms(report.count_host_ms) + " ms)";
  }

  [[nodiscard]] double predicted_total_ms() const noexcept { return predicted_total_ms_; }
  [[nodiscard]] const Rejection& stop() const noexcept { return stop_; }
  [[nodiscard]] bool stopped() const noexcept { return stop_.code != ErrorCode::kUnknown; }
  [[nodiscard]] std::vector<std::string>&& take_notes() noexcept { return std::move(notes_); }

 private:
  planner::Workload base_;
  const planner::PlannerOptions& options_;
  double budget_ms_;
  double predicted_total_ms_ = 0.0;
  std::vector<std::string> notes_;
  Rejection stop_;
};

}  // namespace

MiningSession::MiningSession(data::Dataset dataset, SessionOptions options)
    : options_(std::move(options)),
      planner_options_(planner_options_for(options_.backend)),
      mine_cache_(options_.mine_cache_capacity),
      count_cache_(options_.count_cache_capacity),
      backend_(make_backend(options_.backend)) {
  load_locked(std::move(dataset));
}

void MiningSession::load_locked(data::Dataset dataset) {
  gm::expects(!dataset.events.empty(), "session database must be non-empty");
  for (const core::Symbol s : dataset.events) {
    gm::expects(dataset.alphabet.contains(s), "session database symbol outside its alphabet");
  }
  dataset_ = std::move(dataset);
  ++generation_;
  db_digest_state_ = Digest();
  db_digest_state_.mix(static_cast<std::uint64_t>(dataset_.alphabet.size()));
  for (const core::Symbol s : dataset_.events) {
    db_digest_state_.mix(static_cast<std::uint64_t>(s));
  }
  db_digest_ = db_digest_state_.value();
  symbol_counts_.assign(static_cast<std::size_t>(dataset_.alphabet.size()), 0);
  for (const core::Symbol s : dataset_.events) ++symbol_counts_[s];
  refresh_symbol_freq_locked();
  monitors_.clear();  // their scans describe the replaced stream
}

void MiningSession::refresh_symbol_freq_locked() {
  // Mirrors kernels::measured_symbol_freq bit-for-bit: counts accumulate as
  // integers (the double conversion is exact far past any real stream), so
  // the incremental path and a full re-measure agree exactly.
  const double denom = static_cast<double>(dataset_.events.size()) +
                       static_cast<double>(dataset_.alphabet.size());
  symbol_freq_.resize(symbol_counts_.size());
  for (std::size_t s = 0; s < symbol_counts_.size(); ++s) {
    symbol_freq_[s] = (static_cast<double>(symbol_counts_[s]) + 1.0) / denom;
  }
}

void MiningSession::reload(data::Dataset dataset) {
  std::unique_lock db_lock(db_mutex_);
  load_locked(std::move(dataset));
  std::lock_guard cache_lock(cache_mutex_);
  mine_cache_.clear();
  count_cache_.clear();
  mine_cache_.set_generation(generation_);
  count_cache_.set_generation(generation_);
}

MiningSession::AppendOutcome MiningSession::append_events(std::span<const core::Symbol> events) {
  gm::expects(!events.empty(), "append batch must carry at least one event");
  std::unique_lock db_lock(db_mutex_);
  for (const core::Symbol s : events) {
    gm::expects(dataset_.alphabet.contains(s), "append symbol outside the session alphabet");
  }
  dataset_.events.insert(dataset_.events.end(), events.begin(), events.end());
  ++generation_;
  for (const core::Symbol s : events) {
    db_digest_state_.mix(static_cast<std::uint64_t>(s));
    ++symbol_counts_[s];
  }
  db_digest_ = db_digest_state_.value();
  refresh_symbol_freq_locked();
  // Deliberately no cache clear: the new generation is mixed into every
  // future cache key, so stale entries can never hit again — they simply age
  // out of the LRU.  Telling the caches the new generation lets them book
  // those exits as stale_evictions instead of capacity pressure.
  {
    std::lock_guard cache_lock(cache_mutex_);
    mine_cache_.set_generation(generation_);
    count_cache_.set_generation(generation_);
  }
  AppendOutcome outcome;
  outcome.generation = generation_;
  outcome.database_size = static_cast<std::int64_t>(dataset_.events.size());
  for (StreamingMonitor& monitor : monitors_) {
    monitor.on_append(events, generation_, outcome.alerts);
  }
  return outcome;
}

std::vector<Alert> MiningSession::register_monitor(MonitorSpec spec) {
  std::unique_lock db_lock(db_mutex_);
  for (const StreamingMonitor& monitor : monitors_) {
    gm::expects(monitor.spec().name != spec.name,
                "a monitor with this name is already registered");
  }
  for (const core::Episode& episode : spec.episodes) {
    for (const core::Symbol s : episode.symbols()) {
      gm::expects(dataset_.alphabet.contains(s),
                  "monitor episode symbol outside the session alphabet");
    }
  }
  StreamingMonitor monitor(std::move(spec));
  std::vector<Alert> alerts;
  monitor.on_append(dataset_.events, generation_, alerts);
  monitors_.push_back(std::move(monitor));
  return alerts;
}

std::vector<Alert> MiningSession::restore_monitor(const MonitorSnapshot& snapshot) {
  std::unique_lock db_lock(db_mutex_);
  for (const StreamingMonitor& monitor : monitors_) {
    gm::expects(monitor.spec().name != snapshot.spec.name,
                "a monitor with this name is already registered");
  }
  const auto db_size = static_cast<std::int64_t>(dataset_.events.size());
  gm::expects(snapshot.checkpoint.high_water <= db_size,
              "monitor checkpoint is ahead of the loaded database");
  const std::span<const core::Symbol> prefix(
      dataset_.events.data(), static_cast<std::size_t>(snapshot.checkpoint.high_water));
  gm::expects(core::stream_digest_extend(core::stream_digest_seed(), prefix) ==
                  snapshot.checkpoint.prefix_digest,
              "monitor checkpoint does not match the loaded database prefix");
  StreamingMonitor monitor(snapshot.spec, snapshot.checkpoint);
  std::vector<Alert> alerts;
  const std::span<const core::Symbol> tail(
      dataset_.events.data() + snapshot.checkpoint.high_water,
      static_cast<std::size_t>(db_size - snapshot.checkpoint.high_water));
  if (!tail.empty()) monitor.on_append(tail, generation_, alerts);
  monitors_.push_back(std::move(monitor));
  return alerts;
}

std::vector<std::int64_t> MiningSession::monitor_counts(std::string_view name) const {
  std::shared_lock db_lock(db_mutex_);
  for (const StreamingMonitor& monitor : monitors_) {
    if (monitor.spec().name == name) return monitor.counts();
  }
  gm::raise_precondition("no monitor registered under '" + std::string(name) + "'");
}

std::vector<MonitorSnapshot> MiningSession::monitor_snapshots() const {
  std::shared_lock db_lock(db_mutex_);
  std::vector<MonitorSnapshot> snapshots;
  snapshots.reserve(monitors_.size());
  for (const StreamingMonitor& monitor : monitors_) {
    snapshots.push_back({monitor.spec(), monitor.checkpoint(generation_)});
  }
  return snapshots;
}

std::vector<double> MiningSession::measured_frequencies() const {
  std::shared_lock db_lock(db_mutex_);
  return symbol_freq_;
}

planner::Workload MiningSession::level_workload(std::int64_t episode_count, int level,
                                                core::Semantics semantics,
                                                core::ExpiryPolicy expiry) const {
  planner::Workload w;
  w.db_size = static_cast<std::int64_t>(dataset_.events.size());
  w.episode_count = episode_count;
  w.level = level;
  w.alphabet_size = dataset_.alphabet.size();
  w.symbol_freq = symbol_freq_;
  w.semantics = semantics;
  w.expiry = expiry;
  return w;
}

std::uint64_t MiningSession::mine_key(const core::MinerConfig& config) const {
  return Digest()
      .mix(std::uint64_t{1})  // request-type tag
      .mix(generation_)
      .mix(db_digest_)
      .mix(static_cast<int>(config.semantics))
      .mix(config.expiry.window)
      .mix(config.support_threshold)
      .mix(config.max_level)
      .mix(config.apriori_prune)
      .mix(dataset_.alphabet.size())
      .value();
}

std::uint64_t MiningSession::count_key(const CountRequest& request) const {
  Digest digest;
  digest.mix(std::uint64_t{2})
      .mix(generation_)
      .mix(db_digest_)
      .mix(static_cast<int>(request.semantics))
      .mix(request.expiry.window)
      .mix(static_cast<std::int64_t>(request.episodes.size()));
  digest.mix_range(request.episodes);
  return digest.value();
}

std::uint64_t MiningSession::batch_key(const CountRequest& request) {
  const int level = request.episodes.empty() ? 0 : request.episodes.front().level();
  return Digest()
      .mix(level)
      .mix(static_cast<int>(request.semantics))
      .mix(request.expiry.window)
      .value();
}

std::unique_ptr<core::CountingBackend> MiningSession::new_backend() const {
  return make_backend(options_.backend);
}

MineResponse MiningSession::mine(const MineRequest& request) {
  std::lock_guard lock(backend_mutex_);
  return mine_with(request, *backend_);
}

CountResponse MiningSession::count(const CountRequest& request) {
  std::lock_guard lock(backend_mutex_);
  return count_with(request, *backend_);
}

MineResponse MiningSession::mine_with(const MineRequest& request,
                                      core::CountingBackend& backend) {
  const auto start = Clock::now();
  MineResponse response;

  std::shared_lock db_lock(db_mutex_);
  response.database_generation = generation_;

  try {
    core::validate_miner_config(request.config);
  } catch (const gm::Error& e) {
    response.rejection = {e.code(), e.what()};
    response.timing.service_ms = elapsed_ms(start);
    return response;
  }
  response.cache_key = mine_key(request.config);

  {
    std::lock_guard cache_lock(cache_mutex_);
    if (auto cached = mine_cache_.get(response.cache_key)) {
      response.disposition = Disposition::kCached;
      response.result = std::move(cached->result);
      response.plan_notes = std::move(cached->plan_notes);
      response.timing.predicted_ms = cached->predicted_ms;
      response.timing.service_ms = elapsed_ms(start);
      return response;
    }
  }

  BudgetObserver observer(
      level_workload(dataset_.alphabet.size(), 1, request.config.semantics,
                     request.config.expiry),
      planner_options_, request.limits.latency_budget_ms);
  core::MiningResult result;
  try {
    result = core::mine_frequent_episodes(dataset_.events, dataset_.alphabet, backend,
                                          request.config, &observer);
  } catch (const gm::Error& e) {
    response.rejection = {e.code(), e.what()};
    response.plan_notes = observer.take_notes();
    response.timing.predicted_ms = observer.predicted_total_ms();
    response.timing.service_ms = elapsed_ms(start);
    return response;
  }

  response.plan_notes = observer.take_notes();
  response.timing.predicted_ms = observer.predicted_total_ms();
  if (result.truncated) {
    response.rejection = observer.stop();
    if (result.levels.empty()) {
      // Budget blown at level 1: nothing ran, a pure admission rejection.
      response.timing.service_ms = elapsed_ms(start);
      return response;
    }
    response.disposition = Disposition::kTruncated;
    response.result = std::move(result);
    response.timing.service_ms = elapsed_ms(start);
    return response;
  }

  response.disposition = Disposition::kServed;
  response.result = std::move(result);
  {
    std::lock_guard cache_lock(cache_mutex_);
    mine_cache_.put(response.cache_key, CachedMine{response.result, response.plan_notes,
                                                  response.timing.predicted_ms});
  }
  response.timing.service_ms = elapsed_ms(start);
  return response;
}

CountResponse MiningSession::count_with(const CountRequest& request,
                                        core::CountingBackend& backend) {
  return count_batch_with({&request, 1}, backend).front();
}

std::vector<CountResponse> MiningSession::count_batch_with(
    std::span<const CountRequest> requests, core::CountingBackend& backend) {
  const auto start = Clock::now();
  std::vector<CountResponse> responses(requests.size());

  std::shared_lock db_lock(db_mutex_);

  // Per-request validation, cache lookup and admission; survivors join their
  // batch group (same level/semantics/expiry) for a shared backend call.
  struct Group {
    core::Semantics semantics;
    core::ExpiryPolicy expiry;
    std::vector<std::size_t> members;  ///< request indices
  };
  std::vector<std::pair<std::uint64_t, Group>> groups;

  for (std::size_t i = 0; i < requests.size(); ++i) {
    const CountRequest& request = requests[i];
    CountResponse& response = responses[i];
    response.database_generation = generation_;

    if (request.episodes.empty()) {
      response.rejection = {ErrorCode::kInvalidConfig, "count request carries no episodes"};
      continue;
    }
    const int level = requests[i].episodes.front().level();
    bool valid = level >= 1;
    for (const core::Episode& episode : request.episodes) {
      valid = valid && episode.level() == level;
      for (const core::Symbol s : episode.symbols()) {
        valid = valid && dataset_.alphabet.contains(s);
      }
    }
    if (!valid) {
      response.rejection = {ErrorCode::kInvalidConfig,
                            "count request episodes must all share one level >= 1 and use "
                            "only symbols inside the session alphabet (" +
                                std::to_string(dataset_.alphabet.size()) + " symbols)"};
      continue;
    }
    if (const int cap = backend.max_level(); cap > 0 && level > cap) {
      response.rejection = {ErrorCode::kCapability,
                            "backend '" + backend.name() + "' counts episodes only up to level " +
                                std::to_string(cap) + ", request is level " +
                                std::to_string(level)};
      continue;
    }

    response.cache_key = count_key(request);
    {
      std::lock_guard cache_lock(cache_mutex_);
      if (auto cached = count_cache_.get(response.cache_key)) {
        response.disposition = Disposition::kCached;
        response.counts = std::move(cached->counts);
        response.timing.predicted_ms = cached->predicted_ms;
        response.timing.service_ms = elapsed_ms(start);
        continue;
      }
    }

    try {
      const planner::Plan plan = planner::plan_level(
          level_workload(static_cast<std::int64_t>(request.episodes.size()), level,
                         request.semantics, request.expiry),
          planner_options_);
      response.timing.predicted_ms = plan.winner().predicted_ms;
    } catch (const gm::Error&) {
      // No feasible formulation to predict with; admission passes and the
      // backend call below decides.
    }
    if (request.limits.latency_budget_ms > 0.0 &&
        response.timing.predicted_ms > request.limits.latency_budget_ms) {
      response.rejection = {ErrorCode::kAdmissionRejected,
                            "admission control: planner predicts " +
                                fmt_ms(response.timing.predicted_ms) + " ms for " +
                                std::to_string(request.episodes.size()) +
                                " level-" + std::to_string(level) + " episodes, over the " +
                                fmt_ms(request.limits.latency_budget_ms) +
                                " ms latency budget"};
      response.timing.service_ms = elapsed_ms(start);
      continue;
    }

    const std::uint64_t key = batch_key(request);
    auto it = std::find_if(groups.begin(), groups.end(),
                           [key](const auto& g) { return g.first == key; });
    if (it == groups.end()) {
      groups.push_back({key, Group{request.semantics, request.expiry, {}}});
      it = groups.end() - 1;
    }
    it->second.members.push_back(i);
  }

  for (auto& [key, group] : groups) {
    const auto group_start = Clock::now();
    std::vector<core::Episode> combined;
    for (const std::size_t i : group.members) {
      combined.insert(combined.end(), requests[i].episodes.begin(),
                      requests[i].episodes.end());
    }

    core::CountRequest core_request;
    core_request.database = dataset_.events;
    core_request.episodes = combined;
    core_request.semantics = group.semantics;
    core_request.expiry = group.expiry;

    core::CountResult counted;
    try {
      counted = backend.count(core_request);
    } catch (const gm::Error& e) {
      for (const std::size_t i : group.members) {
        responses[i].rejection = {e.code(), e.what()};
        responses[i].timing.service_ms = elapsed_ms(group_start);
      }
      continue;
    }

    std::size_t offset = 0;
    for (const std::size_t i : group.members) {
      CountResponse& response = responses[i];
      const std::size_t n = requests[i].episodes.size();
      response.disposition = Disposition::kServed;
      response.counts.assign(counted.counts.begin() + static_cast<std::ptrdiff_t>(offset),
                             counted.counts.begin() + static_cast<std::ptrdiff_t>(offset + n));
      response.batched_with = static_cast<int>(group.members.size()) - 1;
      response.timing.service_ms = elapsed_ms(group_start);
      offset += n;
      std::lock_guard cache_lock(cache_mutex_);
      count_cache_.put(response.cache_key,
                       CachedCount{response.counts, response.timing.predicted_ms});
    }
  }

  return responses;
}

std::uint64_t MiningSession::generation() const {
  std::shared_lock lock(db_mutex_);
  return generation_;
}

std::int64_t MiningSession::database_size() const {
  std::shared_lock lock(db_mutex_);
  return static_cast<std::int64_t>(dataset_.events.size());
}

int MiningSession::alphabet_size() const {
  std::shared_lock lock(db_mutex_);
  return dataset_.alphabet.size();
}

CacheStats MiningSession::mine_cache_stats() const {
  std::lock_guard lock(cache_mutex_);
  return mine_cache_.stats();
}

CacheStats MiningSession::count_cache_stats() const {
  std::lock_guard lock(cache_mutex_);
  return count_cache_.stats();
}

}  // namespace gm::service

#include "kernels/mining_kernels.hpp"

#include <algorithm>
#include <array>
#include <numeric>
#include <optional>
#include <queue>
#include <span>

#include "common/error.hpp"
#include "core/episode_trie.hpp"
#include "core/segment_counter.hpp"

namespace gm::kernels {
namespace {

using core::EpisodeAutomaton;
using core::Symbol;
using gpusim::TexAccessKind;
using gpusim::ThreadCtx;

/// Everything a kernel thread needs, copied by value into the coroutine
/// frame (safe against the enclosing lambda's lifetime).
struct Views {
  gpusim::TextureView<Symbol> db_tex;
  gpusim::GlobalView<Symbol> episodes;      ///< charged device accesses
  std::span<const Symbol> episodes_host;    ///< zero-cost host mirror
  gpusim::GlobalView<std::uint32_t> counts;
  /// Block-level (algorithms 3/4): transfer tables, blocks x threads x level
  /// entries (count<<8 | exit_state per entry).  Bucketed (algorithm 5): one
  /// automaton record per episode slot (state<<8 | awaited symbol), re-read
  /// and written back on every bucket drain.
  gpusim::GlobalView<std::uint32_t> scratch;
  std::int64_t db_size = 0;
  std::int64_t episode_count = 0;  ///< real episodes (bucketed slot range)
  int level = 1;
  core::Semantics semantics = core::Semantics::kNonOverlappedSubsequence;
  core::ExpiryPolicy expiry = {};
  int buffer_bytes = kDefaultBufferBytes;
  bool trie_buckets = false;  ///< algorithm 5: shared-prefix token buckets
};

/// [begin, end) of thread `tid` when `size` symbols are split across
/// `threads` (remainder to the lowest tids — must match
/// core::chunk_boundaries).
struct Range {
  std::int64_t begin = 0;
  std::int64_t end = 0;
  [[nodiscard]] std::int64_t size() const noexcept { return end - begin; }
};

Range thread_chunk(std::int64_t size, int threads, int tid) {
  const std::int64_t base = size / threads;
  const std::int64_t extra = size % threads;
  Range r;
  r.begin = tid * base + std::min<std::int64_t>(tid, extra);
  r.end = r.begin + base + (tid < extra ? 1 : 0);
  return r;
}

std::uint32_t pack_outcome(std::uint32_t count, int exit_state) {
  return (count << 8) | static_cast<std::uint32_t>(exit_state);
}

/// Count window-crossing occurrences around absolute boundary `bound` by
/// rescanning [bound-window, bound+window) through the texture path.  An
/// occurrence is attributed to the last boundary it crosses (end must fall
/// before `next_bound`).  Mirrors core's count_overlap_rescan exactly so CPU
/// reference and kernel agree.
std::uint32_t rescan_boundary(ThreadCtx& ctx, const Views& v, std::span<const Symbol> episode,
                              std::int64_t bound, std::int64_t next_bound,
                              std::int64_t window) {
  const std::int64_t lo = std::max<std::int64_t>(0, bound - window);
  const std::int64_t hi = std::min<std::int64_t>(v.db_size, bound + window);
  EpisodeAutomaton automaton(episode, v.semantics, v.expiry);
  std::uint32_t crossers = 0;
  for (std::int64_t i = lo; i < hi; ++i) {
    ctx.charge(kRescanInstr);
    const Symbol c = v.db_tex.fetch(ctx, static_cast<std::size_t>(i));
    ctx.charge(kAutomatonStepInstr);
    if (automaton.step(c, i) && i >= bound && i < next_bound &&
        automaton.first_match_pos() < bound) {
      ++crossers;
    }
  }
  return crossers;
}

// --------------------------------------------------------------------------
// Algorithm 1: thread-level, texture memory.
// --------------------------------------------------------------------------
gpusim::KernelTask algo1_kernel(ThreadCtx& ctx, Views v) {
  ctx.declare_texture_pattern(
      {TexAccessKind::kBroadcast, static_cast<double>(v.db_size), /*sharing_key=*/1});

  const std::int64_t ep = ctx.global_thread();
  const std::int64_t ep_off = ep * v.level;
  const std::span<const Symbol> episode =
      v.episodes_host.subspan(static_cast<std::size_t>(ep_off),
                              static_cast<std::size_t>(v.level));

  EpisodeAutomaton automaton(episode, v.semantics, v.expiry);
  std::uint32_t count = 0;
  for (std::int64_t i = 0; i < v.db_size; ++i) {
    ctx.charge(kUnbufferedScanInstr);
    const Symbol c = v.db_tex.fetch(ctx, static_cast<std::size_t>(i));
    // The episode symbol we wait for lives in spilled local memory and is
    // re-read every iteration (see cost_constants.hpp).
    (void)v.episodes.load(ctx, static_cast<std::size_t>(ep_off + automaton.state()));
    if (automaton.step(c, i)) ++count;
  }
  v.counts.store(ctx, static_cast<std::size_t>(ep), count);
  co_return;
}

// --------------------------------------------------------------------------
// Algorithm 2: thread-level, shared-memory buffering.
// --------------------------------------------------------------------------
gpusim::KernelTask algo2_kernel(ThreadCtx& ctx, Views v) {
  ctx.declare_texture_pattern(
      {TexAccessKind::kCoalescedStream, static_cast<double>(v.db_size), /*sharing_key=*/2});

  const int t = ctx.block_dim();
  const int tid = ctx.thread_idx();
  const std::int64_t ep = ctx.global_thread();
  const std::int64_t ep_off = ep * v.level;

  // Episode staged once into frame registers.
  std::array<Symbol, kMaxLevel> ep_syms{};
  for (int k = 0; k < v.level; ++k) {
    ep_syms[static_cast<std::size_t>(k)] =
        v.episodes.load(ctx, static_cast<std::size_t>(ep_off + k));
  }
  const std::span<const Symbol> episode(ep_syms.data(), static_cast<std::size_t>(v.level));

  gpusim::SharedArray<Symbol> buffer(ctx, static_cast<std::size_t>(v.buffer_bytes), 0);
  EpisodeAutomaton automaton(episode, v.semantics, v.expiry);
  std::uint32_t count = 0;

  const std::int64_t B = v.buffer_bytes;
  for (std::int64_t base = 0; base < v.db_size; base += B) {
    const std::int64_t n = std::min<std::int64_t>(B, v.db_size - base);
    // Cooperative interleaved load: warp lanes fetch consecutive addresses.
    for (std::int64_t j = tid; j < n; j += t) {
      ctx.charge(kBufferCopyInstr);
      buffer.store(static_cast<std::size_t>(j),
                   v.db_tex.fetch(ctx, static_cast<std::size_t>(base + j)));
    }
    co_await ctx.syncthreads();
    // Every thread scans the whole buffer for its own episode.
    for (std::int64_t j = 0; j < n; ++j) {
      ctx.charge(kBufferedScanInstr);
      const Symbol c = buffer.load(static_cast<std::size_t>(j));
      if (automaton.step(c, base + j)) ++count;
    }
    co_await ctx.syncthreads();
  }
  v.counts.store(ctx, static_cast<std::size_t>(ep), count);
  co_return;
}

// --------------------------------------------------------------------------
// Algorithm 3: block-level, texture memory.
// --------------------------------------------------------------------------
gpusim::KernelTask algo3_kernel(ThreadCtx& ctx, Views v) {
  ctx.declare_texture_pattern(
      {TexAccessKind::kStridedPerLane, static_cast<double>(v.db_size), /*sharing_key=*/0});

  const int t = ctx.block_dim();
  const int tid = ctx.thread_idx();
  const std::int64_t ep = ctx.block_idx();
  const std::int64_t ep_off = ep * v.level;
  const int L = v.level;

  std::array<Symbol, kMaxLevel> ep_syms{};
  for (int k = 0; k < L; ++k) {
    ep_syms[static_cast<std::size_t>(k)] =
        v.episodes.load(ctx, static_cast<std::size_t>(ep_off + k));
  }
  const std::span<const Symbol> episode(ep_syms.data(), static_cast<std::size_t>(L));

  const Range chunk = thread_chunk(v.db_size, t, tid);
  // Transfer table for this block lives in device memory.
  const std::size_t scratch_base =
      static_cast<std::size_t>(ep) * static_cast<std::size_t>(t) * static_cast<std::size_t>(L);

  // Level-1 occurrences are single symbols and can never span a chunk
  // boundary, so the transfer-function machinery is skipped (one automaton,
  // plain sum reduce) — likewise in expiry mode, where boundary rescans
  // replace composition.
  if (!v.expiry.enabled() && L > 1) {
    // Transfer-function scan: one automaton per entry state, single fetch
    // per symbol.
    std::vector<EpisodeAutomaton> automata;
    std::vector<std::uint32_t> found(static_cast<std::size_t>(L), 0);
    automata.reserve(static_cast<std::size_t>(L));
    for (int a = 0; a < L; ++a) {
      automata.emplace_back(episode, v.semantics, v.expiry);
      automata.back().restore(a, chunk.begin - 1);
    }
    for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
      ctx.charge(kBlockScanInstr);
      const Symbol c = v.db_tex.fetch(ctx, static_cast<std::size_t>(i));
      (void)v.episodes.load(ctx,
                            static_cast<std::size_t>(ep_off + automata[0].state()));
      for (int a = 0; a < L; ++a) {
        ctx.charge(kAutomatonStepInstr);
        if (automata[static_cast<std::size_t>(a)].step(c, i)) {
          ++found[static_cast<std::size_t>(a)];
        }
      }
    }
    for (int a = 0; a < L; ++a) {
      ctx.charge(1);
      v.scratch.store(ctx,
                      scratch_base + static_cast<std::size_t>(tid) * L +
                          static_cast<std::size_t>(a),
                      pack_outcome(found[static_cast<std::size_t>(a)],
                                   automata[static_cast<std::size_t>(a)].state()));
    }
    co_await ctx.syncthreads();
    if (tid == 0) {
      std::uint32_t total = 0;
      int state = 0;
      for (int th = 0; th < t; ++th) {
        ctx.charge(kFoldStepInstr);
        const std::uint32_t o =
            v.scratch.load(ctx, scratch_base + static_cast<std::size_t>(th) * L +
                                    static_cast<std::size_t>(state));
        total += o >> 8;
        state = static_cast<int>(o & 0xFF);
      }
      v.counts.store(ctx, static_cast<std::size_t>(ep), total);
    }
    co_return;
  }

  // Simple mode (expiry or level 1): fresh scan per chunk + (expiry only)
  // boundary-window rescan.
  EpisodeAutomaton automaton(episode, v.semantics, v.expiry);
  std::uint32_t count = 0;
  for (std::int64_t i = chunk.begin; i < chunk.end; ++i) {
    ctx.charge(kBlockScanInstr);
    const Symbol c = v.db_tex.fetch(ctx, static_cast<std::size_t>(i));
    (void)v.episodes.load(ctx, static_cast<std::size_t>(ep_off + automaton.state()));
    ctx.charge(kAutomatonStepInstr);
    if (automaton.step(c, i)) ++count;
  }
  if (v.expiry.enabled() && chunk.end < v.db_size) {
    const std::int64_t next_bound = thread_chunk(v.db_size, t, tid + 1).end;
    count += rescan_boundary(ctx, v, episode, chunk.end, next_bound, v.expiry.window);
  }
  ctx.charge(1);
  v.scratch.store(ctx, scratch_base + static_cast<std::size_t>(tid) * L, count);
  co_await ctx.syncthreads();
  if (tid == 0) {
    std::uint32_t total = 0;
    for (int th = 0; th < t; ++th) {
      ctx.charge(kFoldStepInstr);
      total += v.scratch.load(ctx, scratch_base + static_cast<std::size_t>(th) * L);
    }
    v.counts.store(ctx, static_cast<std::size_t>(ep), total);
  }
  co_return;
}

// --------------------------------------------------------------------------
// Algorithm 4: block-level, shared-memory buffering.
// --------------------------------------------------------------------------
gpusim::KernelTask algo4_kernel(ThreadCtx& ctx, Views v) {
  ctx.declare_texture_pattern(
      {TexAccessKind::kCoalescedStream, static_cast<double>(v.db_size), /*sharing_key=*/4});

  const int t = ctx.block_dim();
  const int tid = ctx.thread_idx();
  const std::int64_t ep = ctx.block_idx();
  const std::int64_t ep_off = ep * v.level;
  const int L = v.level;

  std::array<Symbol, kMaxLevel> ep_syms{};
  for (int k = 0; k < L; ++k) {
    ep_syms[static_cast<std::size_t>(k)] =
        v.episodes.load(ctx, static_cast<std::size_t>(ep_off + k));
  }
  const std::span<const Symbol> episode(ep_syms.data(), static_cast<std::size_t>(L));

  gpusim::SharedArray<Symbol> buffer(ctx, static_cast<std::size_t>(v.buffer_bytes), 0);
  const std::size_t scratch_base =
      static_cast<std::size_t>(ep) * static_cast<std::size_t>(t) * static_cast<std::size_t>(L);

  // Simple mode: expiry (rescan-based spanning fix) or level 1 (occurrences
  // cannot span a slice).
  const bool simple = v.expiry.enabled() || L == 1;
  const std::int64_t B = v.buffer_bytes;

  // Composition fold state (thread 0) / simple-mode partial count.
  std::uint32_t fold_total = 0;
  int fold_state = 0;
  EpisodeAutomaton simple_automaton(episode, v.semantics, v.expiry);
  std::uint32_t simple_count = 0;
  bool first_iteration = true;

  for (std::int64_t base = 0; base < v.db_size; base += B) {
    const std::int64_t n = std::min<std::int64_t>(B, v.db_size - base);

    // Between iterations, thread 0 folds the previous iteration's transfer
    // table while the other threads proceed into this load phase (the
    // regions are disjoint; the barrier below orders the phases).
    if (!simple && !first_iteration && tid == 0) {
      for (int th = 0; th < t; ++th) {
        ctx.charge(kFoldStepInstr);
        const std::uint32_t o =
            v.scratch.load(ctx, scratch_base + static_cast<std::size_t>(th) * L +
                                    static_cast<std::size_t>(fold_state));
        fold_total += o >> 8;
        fold_state = static_cast<int>(o & 0xFF);
      }
    }
    first_iteration = false;

    for (std::int64_t j = tid; j < n; j += t) {
      ctx.charge(kBufferCopyInstr);
      buffer.store(static_cast<std::size_t>(j),
                   v.db_tex.fetch(ctx, static_cast<std::size_t>(base + j)));
    }
    co_await ctx.syncthreads();

    const Range slice = thread_chunk(n, t, tid);
    if (!simple) {
      std::vector<EpisodeAutomaton> automata;
      std::vector<std::uint32_t> found(static_cast<std::size_t>(L), 0);
      automata.reserve(static_cast<std::size_t>(L));
      for (int a = 0; a < L; ++a) {
        automata.emplace_back(episode, v.semantics, v.expiry);
        automata.back().restore(a, base + slice.begin - 1);
      }
      for (std::int64_t j = slice.begin; j < slice.end; ++j) {
        ctx.charge(kBlockScanInstr);
        const Symbol c = buffer.load(static_cast<std::size_t>(j));
        (void)v.episodes.load(ctx,
                              static_cast<std::size_t>(ep_off + automata[0].state()));
        for (int a = 0; a < L; ++a) {
          ctx.charge(kAutomatonStepInstr);
          if (automata[static_cast<std::size_t>(a)].step(c, base + j)) {
            ++found[static_cast<std::size_t>(a)];
          }
        }
      }
      for (int a = 0; a < L; ++a) {
        ctx.charge(1);
        v.scratch.store(ctx,
                        scratch_base + static_cast<std::size_t>(tid) * L +
                            static_cast<std::size_t>(a),
                        pack_outcome(found[static_cast<std::size_t>(a)],
                                     automata[static_cast<std::size_t>(a)].state()));
      }
    } else {
      for (std::int64_t j = slice.begin; j < slice.end; ++j) {
        ctx.charge(kBlockScanInstr);
        const Symbol c = buffer.load(static_cast<std::size_t>(j));
        (void)v.episodes.load(
            ctx, static_cast<std::size_t>(ep_off + simple_automaton.state()));
        ctx.charge(kAutomatonStepInstr);
        if (simple_automaton.step(c, base + j)) ++simple_count;
      }
      // Fresh automaton per slice: abandon carried progress to mirror the
      // independent-chunk map phase, then (expiry only) patch the slice's
      // end boundary.
      simple_automaton.reset();
      const std::int64_t bound = base + slice.end;
      if (v.expiry.enabled() && bound < v.db_size) {
        std::int64_t next_bound;
        if (tid < t - 1) {
          next_bound = base + thread_chunk(n, t, tid + 1).end;
        } else {
          // Iteration edge: the next boundary is the first slice end of the
          // following staged buffer.
          const std::int64_t n2 = std::min<std::int64_t>(B, v.db_size - (base + n));
          next_bound = base + n + thread_chunk(n2, t, 0).end;
        }
        simple_count += rescan_boundary(ctx, v, episode, bound, next_bound, v.expiry.window);
      }
    }
    co_await ctx.syncthreads();
  }

  if (!simple) {
    if (tid == 0) {
      for (int th = 0; th < t; ++th) {
        ctx.charge(kFoldStepInstr);
        const std::uint32_t o =
            v.scratch.load(ctx, scratch_base + static_cast<std::size_t>(th) * L +
                                    static_cast<std::size_t>(fold_state));
        fold_total += o >> 8;
        fold_state = static_cast<int>(o & 0xFF);
      }
      v.counts.store(ctx, static_cast<std::size_t>(ep), fold_total);
    }
  } else {
    ctx.charge(1);
    v.scratch.store(ctx, scratch_base + static_cast<std::size_t>(tid) * L, simple_count);
    co_await ctx.syncthreads();
    if (tid == 0) {
      std::uint32_t total = 0;
      for (int th = 0; th < t; ++th) {
        ctx.charge(kFoldStepInstr);
        total += v.scratch.load(ctx, scratch_base + static_cast<std::size_t>(th) * L);
      }
      v.counts.store(ctx, static_cast<std::size_t>(ep), total);
    }
  }
  co_return;
}

// --------------------------------------------------------------------------
// Algorithm 5: block-bucketed single-scan.
// --------------------------------------------------------------------------

/// One owned episode automaton, flattened for the bucket index.  `gen`
/// invalidates bucket entries left behind by expiry re-bucketing.
struct BucketOwned {
  std::span<const Symbol> episode;
  std::int64_t slot = 0;  ///< global episode slot (sorted order)
  std::int64_t first_pos = 0;
  std::uint64_t gen = 0;
  std::uint32_t count = 0;
  int state = 0;
};

struct BucketEntry {
  std::uint32_t u = 0;  ///< index into the thread's owned list
  std::uint64_t gen = 0;
};

/// Pending expiry deadline, validated on pop against the live first_pos.
struct BucketDeadline {
  std::int64_t at = 0;
  std::uint32_t u = 0;
  friend bool operator>(const BucketDeadline& a, const BucketDeadline& b) {
    return a.at > b.at;
  }
};

/// The automaton record word written back to device scratch per drain.
std::uint32_t bucket_state_word(const BucketOwned& o) {
  return (static_cast<std::uint32_t>(o.state) << 8) |
         o.episode[static_cast<std::size_t>(o.state)];
}

// Device port of the host single-scan engine (core/multi_counter).  The
// block owns the contiguous slot range of the first-symbol-sorted episode
// list that launch_geometry assigned it, thread `tid` owns the interleaved
// sub-slice {begin+tid, begin+tid+t, ...}, and every owned automaton is
// filed in a bucket keyed by the symbol it currently awaits, so per-symbol
// work is proportional to bucket occupancy, not to the episode count.  The
// database is staged through shared memory in algorithm-2 fashion (every
// thread reads every symbol, so the buffered path wins for the same reason
// it does there).  Automaton records (state | awaited symbol) live in device
// scratch, one word per episode slot, fetched and written back per drain;
// bucket entry lists, generation tags and the expiry deadline heap live in
// the thread's frame ("local memory"), charged via the kBucket*/kExpiryHeap
// constants.  Expiry mirrors the host engine exactly: lazy deadlines on a
// min-heap, reset-and-re-bucket under episode[0] when a match can no longer
// finish, generation tags invalidating the stale entry left in the old
// bucket.  Contiguous-restart semantics fall back to a dense per-thread scan
// (its mismatch edges let any symbol transition any in-flight automaton, so
// a waiting-symbol index cannot skip work) — still one database pass.
// Because the database is never chunked, counts are bit-exact against the
// serial oracle for both semantics and every expiry window.
gpusim::KernelTask algo5_kernel(ThreadCtx& ctx, Views v) {
  ctx.declare_texture_pattern(
      {TexAccessKind::kCoalescedStream, static_cast<double>(v.db_size), /*sharing_key=*/5});

  const int t = ctx.block_dim();
  const int tid = ctx.thread_idx();
  const int L = v.level;
  const Range slots = thread_chunk(v.episode_count, ctx.grid_dim(), ctx.block_idx());
  const bool dense = v.semantics == core::Semantics::kContiguousRestart;

  // Deadlines are computed as first_pos + window; clamp huge windows to the
  // database size before they can overflow.  Any window >= |DB| behaves
  // identically (mirrors core::count_all_single_scan).
  core::ExpiryPolicy expiry = v.expiry;
  if (expiry.enabled()) {
    expiry.window = std::min(expiry.window, v.db_size);
  }

  // Stage owned episodes (device loads; symbol data through the host
  // mirror), then file each automaton under its first symbol.  Trie mode
  // takes a *contiguous* slice of the block's (lexicographically staged)
  // slot range so the owned episodes form whole trie subtrees; the flat
  // formulation keeps the interleaved slice.  Both assignments give lane
  // `tid` the same owned count, so the workload model's occupancy math is
  // shared.
  const bool trie = v.trie_buckets && !dense;
  std::vector<BucketOwned> owned;
  const auto stage_slot = [&](std::int64_t s) {
    BucketOwned o;
    o.slot = s;
    const std::int64_t off = s * L;
    for (int k = 0; k < L; ++k) {
      (void)v.episodes.load(ctx, static_cast<std::size_t>(off + k));
    }
    o.episode = v.episodes_host.subspan(static_cast<std::size_t>(off),
                                        static_cast<std::size_t>(L));
    owned.push_back(o);
  };
  if (v.trie_buckets) {
    const Range sub = thread_chunk(slots.size(), t, tid);
    for (std::int64_t s = slots.begin + sub.begin; s < slots.begin + sub.end; ++s) {
      stage_slot(s);
    }
  } else {
    for (std::int64_t s = slots.begin + tid; s < slots.end; s += t) stage_slot(s);
  }

  // Dense fallback state (contiguous restart).
  std::vector<EpisodeAutomaton> dense_automata;
  // Bucketed state: a direct-mapped table covers every 8-bit alphabet.
  std::vector<std::vector<BucketEntry>> buckets;
  std::priority_queue<BucketDeadline, std::vector<BucketDeadline>, std::greater<>>
      deadlines;
  std::vector<BucketEntry> drain;
  // Trie mode: the host shared-prefix engine runs the thread's contiguous
  // episode range; device charges are replayed from its per-position op
  // deltas below.
  std::vector<core::Episode> trie_episodes;
  std::optional<core::TrieCounter> trie_counter;
  core::TrieCounter::Ops trie_prev{};
  if (dense) {
    dense_automata.reserve(owned.size());
    for (const BucketOwned& o : owned) {
      dense_automata.emplace_back(o.episode, v.semantics, v.expiry);
    }
  } else if (trie) {
    trie_episodes.reserve(owned.size());
    for (const BucketOwned& o : owned) {
      trie_episodes.emplace_back(
          std::vector<Symbol>(o.episode.begin(), o.episode.end()));
    }
    if (!owned.empty()) {
      trie_counter.emplace(trie_episodes, v.semantics, v.expiry, v.db_size);
      // Initial idle filing under episode[0], one per owned slot — the same
      // upfront charge as the flat formulation's first-symbol bucketing.
      ctx.charge(static_cast<int>(owned.size()) * kBucketFileInstr);
    }
  } else {
    buckets.resize(256);
    for (std::uint32_t u = 0; u < owned.size(); ++u) {
      ctx.charge(kBucketFileInstr);
      buckets[owned[u].episode[0]].push_back({u, 0});
    }
  }

  gpusim::SharedArray<Symbol> buffer(ctx, static_cast<std::size_t>(v.buffer_bytes), 0);
  const std::int64_t B = v.buffer_bytes;
  for (std::int64_t base = 0; base < v.db_size; base += B) {
    const std::int64_t n = std::min<std::int64_t>(B, v.db_size - base);
    for (std::int64_t j = tid; j < n; j += t) {
      ctx.charge(kBufferCopyInstr);
      buffer.store(static_cast<std::size_t>(j),
                   v.db_tex.fetch(ctx, static_cast<std::size_t>(base + j)));
    }
    co_await ctx.syncthreads();

    if (!owned.empty()) {
      for (std::int64_t j = 0; j < n; ++j) {
        const Symbol c = buffer.load(static_cast<std::size_t>(j));
        const std::int64_t pos = base + j;
        if (dense) {
          ctx.charge(kBufferedScanInstr);
          for (std::uint32_t u = 0; u < owned.size(); ++u) {
            ctx.charge(kAutomatonStepInstr);
            if (dense_automata[u].step(c, pos)) ++owned[u].count;
          }
          continue;
        }

        if (trie) {
          // One probe per position (loop control, deadline peek, bucket-head
          // lookup — same shape as the flat path), then replay the host trie
          // engine's op deltas as device charges: each token drain re-reads
          // and writes back one automaton record in device scratch exactly
          // like a flat drain, but one drain now advances every episode
          // sharing the prefix.
          ctx.charge(kBucketProbeInstr);
          trie_counter->advance(c, pos);
          const core::TrieCounter::Ops ops = trie_counter->ops();
          const auto drains = static_cast<int>(ops.drains - trie_prev.drains);
          const auto files = static_cast<int>(ops.files - trie_prev.files);
          const auto accepts = static_cast<int>(ops.accepts - trie_prev.accepts);
          const auto heap_ops = static_cast<int>(ops.heap_ops - trie_prev.heap_ops);
          trie_prev = ops;
          if (drains > 0) {
            ctx.charge(drains * kTrieDrainInstr);
            const auto record = static_cast<std::size_t>(owned.front().slot);
            for (int d = 0; d < drains; ++d) {
              (void)v.scratch.load(ctx, record);
              v.scratch.store(ctx, record, 0);
            }
          }
          if (files > 0) ctx.charge(files * kBucketFileInstr);
          if (accepts > 0) ctx.charge(accepts * kTrieAcceptInstr);
          if (heap_ops > 0) ctx.charge(heap_ops * kExpiryHeapInstr);
          continue;
        }

        ctx.charge(kBucketProbeInstr);
        // Expire matches that can no longer finish by this position: the
        // serial automaton resets them at step time, so they must be back in
        // their episode[0] bucket before this symbol is dispatched.
        if (expiry.enabled()) {
          while (!deadlines.empty() && deadlines.top().at <= pos) {
            const BucketDeadline d = deadlines.top();
            deadlines.pop();
            ctx.charge(kExpiryHeapInstr);
            BucketOwned& o = owned[d.u];
            if (o.state > 0 && o.first_pos + expiry.window == d.at) {
              o.state = 0;
              ++o.gen;  // the entry filed under the old awaited symbol dies
              v.scratch.store(ctx, static_cast<std::size_t>(o.slot), bucket_state_word(o));
              ctx.charge(kBucketFileInstr);
              buckets[o.episode[0]].push_back({d.u, o.gen});
            }
          }
        }

        auto& bucket = buckets[c];
        if (bucket.empty()) continue;
        // Swap the bucket out before advancing: an automaton whose next
        // awaited symbol is also `c` (repeated-symbol episode) must re-file
        // for the NEXT occurrence, not be stepped twice on this one.
        drain.swap(bucket);
        for (const BucketEntry entry : drain) {
          ctx.charge(kBucketDrainInstr);
          BucketOwned& o = owned[entry.u];
          if (o.gen != entry.gen) continue;  // stale: expired/re-bucketed since
          (void)v.scratch.load(ctx, static_cast<std::size_t>(o.slot));
          if (o.state == 0) {
            o.first_pos = pos;
            // Level-1 episodes complete in this same step, so a deadline
            // could never fire usefully — don't flood the heap.
            if (expiry.enabled() && o.episode.size() > 1) {
              ctx.charge(kExpiryHeapInstr);
              deadlines.push({pos + expiry.window, entry.u});
            }
          }
          ctx.charge(kAutomatonStepInstr);
          ++o.state;
          ++o.gen;
          if (o.state == static_cast<int>(o.episode.size())) {
            ++o.count;
            o.state = 0;
          }
          v.scratch.store(ctx, static_cast<std::size_t>(o.slot), bucket_state_word(o));
          ctx.charge(kBucketFileInstr);
          buckets[o.episode[static_cast<std::size_t>(o.state)]].push_back(
              {entry.u, o.gen});
        }
        drain.clear();
      }
    }
    co_await ctx.syncthreads();
  }

  if (trie && trie_counter.has_value()) {
    const std::vector<std::int64_t> trie_counts = trie_counter->counts();
    for (std::size_t k = 0; k < owned.size(); ++k) {
      owned[k].count = static_cast<std::uint32_t>(trie_counts[k]);
    }
  }
  for (const BucketOwned& o : owned) {
    ctx.charge(1);
    v.counts.store(ctx, static_cast<std::size_t>(o.slot), o.count);
  }
  co_return;
}

}  // namespace

std::string to_string(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kThreadTexture: return "algo1-thread-texture";
    case Algorithm::kThreadBuffered: return "algo2-thread-buffered";
    case Algorithm::kBlockTexture: return "algo3-block-texture";
    case Algorithm::kBlockBuffered: return "algo4-block-buffered";
    case Algorithm::kBlockBucketed: return "algo5-block-bucketed";
  }
  return "?";
}

int algorithm_number(Algorithm algorithm) { return static_cast<int>(algorithm); }

bool is_block_level(Algorithm algorithm) {
  return algorithm == Algorithm::kBlockTexture || algorithm == Algorithm::kBlockBuffered;
}

bool is_buffered(Algorithm algorithm) {
  return algorithm == Algorithm::kThreadBuffered || algorithm == Algorithm::kBlockBuffered ||
         algorithm == Algorithm::kBlockBucketed;
}

bool is_bucketed(Algorithm algorithm) { return algorithm == Algorithm::kBlockBucketed; }

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> algorithms = {
      Algorithm::kThreadTexture, Algorithm::kThreadBuffered, Algorithm::kBlockTexture,
      Algorithm::kBlockBuffered, Algorithm::kBlockBucketed};
  return algorithms;
}

const std::vector<Algorithm>& paper_algorithms() {
  static const std::vector<Algorithm> algorithms = {
      Algorithm::kThreadTexture, Algorithm::kThreadBuffered, Algorithm::kBlockTexture,
      Algorithm::kBlockBuffered};
  return algorithms;
}

void validate_launch_params(const MiningLaunchParams& params, int level) {
  const int number = static_cast<int>(params.algorithm);
  if (number < 1 || number > 5) {
    gm::raise_precondition("unknown algorithm number " + std::to_string(number) +
                           " (expected 1..5)");
  }
  if (params.threads_per_block < 1) {
    gm::raise_precondition("threads_per_block must be >= 1, got " +
                           std::to_string(params.threads_per_block));
  }
  if (params.trie_buckets && !is_bucketed(params.algorithm)) {
    gm::raise_precondition("trie_buckets applies to algo5-block-bucketed only, got " +
                           to_string(params.algorithm));
  }
  if (is_buffered(params.algorithm) && params.buffer_bytes < 1) {
    gm::raise_precondition(to_string(params.algorithm) +
                           " stages the database through shared memory and needs "
                           "buffer_bytes >= 1, got " +
                           std::to_string(params.buffer_bytes));
  }
  if (level < 1) {
    gm::raise_precondition("episode level must be >= 1, got " + std::to_string(level));
  }
  if (level > kMaxLevel) {
    gm::raise_precondition(
        "episode level " + std::to_string(level) + " exceeds the GPU kernel limit (kMaxLevel = " +
        std::to_string(kMaxLevel) +
        ", the frame-register episode staging bound); count with a CPU backend or lower the "
        "level cap");
  }
}

LaunchGeometry launch_geometry(Algorithm algorithm, std::int64_t episode_count, int level,
                               int threads_per_block, int buffer_bytes) {
  gm::expects(episode_count > 0, "need at least one episode");
  gm::expects(threads_per_block > 0, "need at least one thread per block");
  if (level < 1 || level > kMaxLevel) {
    gm::raise_precondition("episode level " + std::to_string(level) +
                           " outside kernel support [1, " + std::to_string(kMaxLevel) + "]");
  }

  LaunchGeometry geo;
  if (is_block_level(algorithm)) {
    geo.blocks = episode_count;
    geo.padded_episodes = episode_count;
    // Transfer tables live in device memory; shared memory holds only the
    // staging buffer (Algorithm 4).
    geo.shared_mem_per_block = is_buffered(algorithm) ? buffer_bytes : 0;
  } else if (is_bucketed(algorithm)) {
    // Each block owns up to threads_per_block * kBucketEpisodesPerThread
    // episode slots of the first-symbol-sorted list; threads take interleaved
    // slices, so no padding is needed (a thread may own zero slots).
    const std::int64_t capacity =
        static_cast<std::int64_t>(threads_per_block) * kBucketEpisodesPerThread;
    geo.blocks = (episode_count + capacity - 1) / capacity;
    geo.padded_episodes = episode_count;
    geo.shared_mem_per_block = buffer_bytes;
  } else {
    geo.blocks = (episode_count + threads_per_block - 1) / threads_per_block;
    geo.padded_episodes = geo.blocks * threads_per_block;
    geo.shared_mem_per_block = is_buffered(algorithm) ? buffer_bytes : 0;
  }
  return geo;
}

namespace {

/// Device scratch words a formulation needs (see Views::scratch).
std::size_t scratch_words(const MiningLaunchParams& params, const core::PackedEpisodes& packed) {
  if (is_block_level(params.algorithm)) {
    return static_cast<std::size_t>(packed.episode_count) *
           static_cast<std::size_t>(params.threads_per_block) *
           static_cast<std::size_t>(packed.level);
  }
  if (is_bucketed(params.algorithm)) {
    return static_cast<std::size_t>(packed.episode_count);
  }
  return 1;
}

}  // namespace

core::PackedEpisodes DeviceProblem::stage_episodes(std::span<const core::Episode> episodes,
                                                   const MiningLaunchParams& params,
                                                   std::vector<std::int64_t>& order) {
  gm::expects(!episodes.empty(), "cannot pack an empty episode list");
  const int level = episodes.front().level();
  validate_launch_params(params, level);

  if (!is_bucketed(params.algorithm)) {
    const LaunchGeometry geo =
        launch_geometry(params.algorithm, static_cast<std::int64_t>(episodes.size()), level,
                        params.threads_per_block, params.buffer_bytes);
    return core::pack_episodes(episodes, geo.padded_episodes);
  }

  // Bucketed: pack in first-symbol order so every block's contiguous slot
  // range covers a contiguous symbol range — the block's waiting buckets at
  // scan start and after every expiry reset.  Trie mode sorts by the FULL
  // episode (lexicographic), which refines first-symbol order so the block
  // property still holds and, additionally, every shared-prefix trie subtree
  // becomes a contiguous slot range inside each thread's contiguous slice.
  // `order` records sorted slot -> caller index so extract_counts can hand
  // results back unpermuted.
  order.resize(episodes.size());
  std::iota(order.begin(), order.end(), std::int64_t{0});
  if (params.trie_buckets) {
    std::stable_sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
      return episodes[static_cast<std::size_t>(a)] < episodes[static_cast<std::size_t>(b)];
    });
  } else {
    std::stable_sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
      return episodes[static_cast<std::size_t>(a)].at(0) <
             episodes[static_cast<std::size_t>(b)].at(0);
    });
  }

  core::PackedEpisodes packed;
  packed.level = level;
  packed.episode_count = static_cast<std::int64_t>(episodes.size());
  packed.padded_count = packed.episode_count;
  packed.symbols.reserve(static_cast<std::size_t>(packed.episode_count) *
                         static_cast<std::size_t>(level));
  for (const std::int64_t i : order) {
    const auto& episode = episodes[static_cast<std::size_t>(i)];
    gm::expects(episode.level() == level, "all packed episodes must share one level");
    packed.symbols.insert(packed.symbols.end(), episode.symbols().begin(),
                          episode.symbols().end());
  }
  return packed;
}

DeviceProblem::DeviceProblem(const core::Sequence& database,
                             std::span<const core::Episode> episodes,
                             const MiningLaunchParams& params)
    : params_(params),
      packed_(stage_episodes(episodes, params, order_)),
      db_(std::span<const Symbol>(database)),
      episodes_(std::span<const Symbol>(packed_.symbols)),
      counts_(static_cast<std::size_t>(packed_.padded_count)),
      scratch_(scratch_words(params, packed_)),
      db_size_(static_cast<std::int64_t>(database.size())) {
  gm::expects(!database.empty(), "database must be non-empty");
  for (const Symbol s : database) {
    gm::expects(s < core::PackedEpisodes::kSentinel,
                "database symbol collides with the padding sentinel");
  }
  const LaunchGeometry geo =
      launch_geometry(params.algorithm, packed_.episode_count, packed_.level,
                      params.threads_per_block, params.buffer_bytes);
  config_.grid = gpusim::Dim3(static_cast<int>(geo.blocks));
  config_.block = gpusim::Dim3(params.threads_per_block);
  config_.shared_mem_per_block = geo.shared_mem_per_block;
  config_.registers_per_thread = kRegistersPerThread;
  if (is_block_level(params.algorithm)) {
    gm::expects(params.threads_per_block <= db_size_,
                "block-level kernels need at least one symbol per thread");
  }
}

gpusim::KernelFn DeviceProblem::kernel() {
  Views v;
  v.db_tex = db_.texture();
  v.episodes = episodes_.global();
  v.episodes_host = packed_.symbols;
  v.counts = counts_.global();
  v.scratch = scratch_.global();
  v.db_size = db_size_;
  v.episode_count = packed_.episode_count;
  v.level = packed_.level;
  v.semantics = params_.semantics;
  v.expiry = params_.expiry;
  v.buffer_bytes = params_.buffer_bytes;
  v.trie_buckets = params_.trie_buckets;

  switch (params_.algorithm) {
    case Algorithm::kThreadTexture:
      return [v](ThreadCtx& ctx) { return algo1_kernel(ctx, v); };
    case Algorithm::kThreadBuffered:
      return [v](ThreadCtx& ctx) { return algo2_kernel(ctx, v); };
    case Algorithm::kBlockTexture:
      return [v](ThreadCtx& ctx) { return algo3_kernel(ctx, v); };
    case Algorithm::kBlockBuffered:
      return [v](ThreadCtx& ctx) { return algo4_kernel(ctx, v); };
    case Algorithm::kBlockBucketed:
      return [v](ThreadCtx& ctx) { return algo5_kernel(ctx, v); };
  }
  gm::raise_invariant("unhandled algorithm");
}

std::vector<std::int64_t> DeviceProblem::extract_counts() const {
  std::vector<std::int64_t> out(static_cast<std::size_t>(packed_.episode_count), 0);
  const auto host = counts_.host();
  for (std::int64_t i = 0; i < packed_.episode_count; ++i) {
    // Bucketed staging sorted the episodes by first symbol; hand counts back
    // in the caller's order.
    const std::int64_t caller = order_.empty() ? i : order_[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(caller)] =
        static_cast<std::int64_t>(host[static_cast<std::size_t>(i)]);
  }
  return out;
}

MiningRun run_mining_kernel(const gpusim::Engine& engine, const core::Sequence& database,
                            std::span<const core::Episode> episodes,
                            const MiningLaunchParams& params) {
  DeviceProblem problem(database, episodes, params);
  const gpusim::KernelFn kernel = problem.kernel();
  MiningRun run;
  run.launch = engine.launch(problem.launch_config(), kernel);
  run.counts = problem.extract_counts();
  return run;
}

}  // namespace gm::kernels

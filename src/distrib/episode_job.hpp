// Episode counting at the paper's two MapReduce granularities (section
// 3.3.1), re-expressed on the distribution substrate.  Formerly
// src/mapreduce/ — retired in favor of this layer; the generic typed
// map/shuffle/reduce engine went with it, since both jobs reduce to the
// chunk-grid + fold primitives everything else here uses.
//
//  * thread-level: the map unit is one episode; map emits its full-database
//    count; reduce is the identity (one value per key).
//  * block-level: the map unit is one (episode, chunk) pair; map emits the
//    chunk's cold-scan outcome; reduce folds the outcomes in chunk order via
//    core::fold_cold_scans — the "intermediate step" of the paper's Figure 5
//    folded into the reduce function.  Unlike the retired implementation
//    (overlap-rescan under expiry, approximate), the fold is bit-exact
//    against the serial reference for every semantics x expiry combination.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/automaton.hpp"
#include "core/episode.hpp"

namespace gm::distrib {

struct EpisodeCountOptions {
  core::Semantics semantics = core::Semantics::kNonOverlappedSubsequence;
  core::ExpiryPolicy expiry = {};
  int threads = 0;  ///< host workers; 0 = hardware concurrency
  int chunks = 16;  ///< block-level: database chunks per episode
};

/// Thread-level job: one map call per episode, identity reduce.
[[nodiscard]] std::vector<std::int64_t> count_episodes_thread_level(
    std::span<const core::Symbol> database, std::span<const core::Episode> episodes,
    const EpisodeCountOptions& options = {});

/// Block-level job: one map call per (episode, chunk), exact fold reduce.
[[nodiscard]] std::vector<std::int64_t> count_episodes_block_level(
    std::span<const core::Symbol> database, std::span<const core::Episode> episodes,
    const EpisodeCountOptions& options = {});

}  // namespace gm::distrib

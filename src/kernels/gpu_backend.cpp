#include "kernels/gpu_backend.hpp"

#include <chrono>

#include "common/error.hpp"

namespace gm::kernels {

SimGpuBackend::SimGpuBackend(gpusim::DeviceSpec device, MiningLaunchParams params,
                             gpusim::CostParams cost_params,
                             gpusim::EngineOptions engine_options)
    : engine_(std::move(device), engine_options),
      params_(params),
      cost_model_(cost_params) {}

std::string SimGpuBackend::name() const {
  return "gpusim/" + to_string(params_.algorithm) + "/t" +
         std::to_string(params_.threads_per_block) + "/" + engine_.spec().name;
}

core::CountResult SimGpuBackend::count(const core::CountRequest& request) {
  const auto start = std::chrono::steady_clock::now();

  MiningLaunchParams params = params_;
  params.semantics = request.semantics;
  params.expiry = request.expiry;

  // Reject unsupportable requests (level > kMaxLevel, bad geometry) with an
  // actionable gm::Error before any device staging happens.
  gm::expects(!request.episodes.empty(), "count request carries no episodes");
  validate_launch_params(params, request.episodes.front().level());

  core::Sequence database(request.database.begin(), request.database.end());
  DeviceProblem problem(database, request.episodes, params);
  const gpusim::KernelFn kernel = problem.kernel();
  const gpusim::LaunchResult launch = engine_.launch(problem.launch_config(), kernel);

  core::CountResult result;
  result.counts = problem.extract_counts();
  result.simulated_kernel_ms =
      cost_model_.predict(engine_.spec(), problem.launch_config(), launch.profile).total_ms;
  result.host_ms = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return result;
}

}  // namespace gm::kernels

// Level-wise candidate episode generation and elimination (paper Algorithm 1,
// generation/elimination steps) plus the exhaustive episode spaces of the
// paper's evaluation (Table 1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/alphabet.hpp"
#include "core/episode.hpp"

namespace gm::core {

/// Number of length-`level` episodes over `alphabet_size` distinct symbols:
/// N!/(N-L)! (paper Table 1).  Returns 0 when level > alphabet_size.
/// Throws gm::PreconditionError if the value would overflow uint64.
[[nodiscard]] std::uint64_t episode_space_size(int alphabet_size, int level);

/// All episodes of `level` distinct symbols over the alphabet, in
/// lexicographic order.  Level 1 yields N episodes, level 2 yields N(N-1),
/// level 3 yields N(N-1)(N-2) — the 26/650/15,600 sets of the paper.
[[nodiscard]] std::vector<Episode> all_distinct_episodes(const Alphabet& alphabet, int level);

/// Apriori-style join: candidates of level k from the frequent episodes of
/// level k-1.  Two frequent episodes a, b join into a ++ b.back() when
/// a[1..] == b[..k-2].  When `prune` is set, candidates with any level-(k-1)
/// sub-episode (single deletion) absent from `frequent_prev` are dropped
/// (anti-monotonicity of episode support).  Candidates are always emitted in
/// lexicographic (prefix-sorted) order, so the shared-prefix trie
/// (core/episode_trie.hpp) builds over them in one linear pass.
[[nodiscard]] std::vector<Episode> generate_candidates(const std::vector<Episode>& frequent_prev,
                                                       bool prune = true);

/// Level-1 candidates: one per alphabet symbol.
[[nodiscard]] std::vector<Episode> level1_candidates(const Alphabet& alphabet);

/// Elimination step: indices of the episodes whose count/database_size >
/// threshold, in input order.  Returning indices (rather than a filtered
/// copy) lets every consumer of the level — next-level candidate generation
/// AND the mining report — apply the one support decision, so the two can
/// never drift.
[[nodiscard]] std::vector<std::size_t> eliminate_infrequent(
    std::span<const Episode> episodes, const std::vector<std::int64_t>& counts,
    std::int64_t database_size, double support_threshold);

}  // namespace gm::core

// Service-layer suite: sessions, the concurrent MiningService, result
// caching, batching, and planner-driven admission control.
//
// The load-bearing property is bit-exactness: whatever path a request takes
// through the service — fresh, cached, batched with strangers, served by any
// worker — the response must be identical to a direct mine_frequent_episodes
// / SerialCpuBackend::count of the same request.
#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/cpu_backend.hpp"
#include "core/miner.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "kernels/mining_kernels.hpp"
#include "service/result_cache.hpp"
#include "service/service.hpp"
#include "service/session.hpp"

namespace gm::service {
namespace {

data::Dataset make_dataset(int alphabet_size, std::int64_t size, std::uint64_t seed) {
  data::Dataset dataset{core::Alphabet(alphabet_size), {}};
  dataset.events = data::uniform_database(dataset.alphabet, size, seed);
  return dataset;
}

std::vector<core::Episode> random_level_episodes(Rng& rng, int alphabet_size, int count,
                                                 int level) {
  std::vector<core::Episode> episodes;
  episodes.reserve(static_cast<std::size_t>(count));
  for (int e = 0; e < count; ++e) {
    std::vector<core::Symbol> symbols;
    for (int i = 0; i < level; ++i) {
      symbols.push_back(
          static_cast<core::Symbol>(rng.below(static_cast<std::uint64_t>(alphabet_size))));
    }
    episodes.emplace_back(std::move(symbols));
  }
  return episodes;
}

std::vector<std::int64_t> oracle_counts(const data::Dataset& dataset,
                                        const std::vector<core::Episode>& episodes,
                                        core::Semantics semantics, core::ExpiryPolicy expiry) {
  core::SerialCpuBackend serial;
  core::CountRequest request;
  request.database = dataset.events;
  request.episodes = episodes;
  request.semantics = semantics;
  request.expiry = expiry;
  return serial.count(request).counts;
}

void expect_same_mining(const core::MiningResult& got, const core::MiningResult& want) {
  ASSERT_EQ(got.frequent.size(), want.frequent.size());
  for (std::size_t i = 0; i < want.frequent.size(); ++i) {
    EXPECT_EQ(got.frequent[i].episode, want.frequent[i].episode);
    EXPECT_EQ(got.frequent[i].count, want.frequent[i].count);
    EXPECT_DOUBLE_EQ(got.frequent[i].support, want.frequent[i].support);
  }
  ASSERT_EQ(got.levels.size(), want.levels.size());
  for (std::size_t i = 0; i < want.levels.size(); ++i) {
    EXPECT_EQ(got.levels[i].candidates, want.levels[i].candidates);
    EXPECT_EQ(got.levels[i].frequent, want.levels[i].frequent);
  }
}

TEST(ServiceSession, MineMatchesOracleAndRepeatHitsCache) {
  for (const auto semantics :
       {core::Semantics::kNonOverlappedSubsequence, core::Semantics::kContiguousRestart}) {
    for (const std::int64_t window : {std::int64_t{0}, std::int64_t{5}}) {
      data::Dataset dataset = make_dataset(10, 4000, 42);
      MiningSession session(dataset, {.backend = {.name = "cpu-single-scan"}});

      MineRequest request;
      request.config.support_threshold = 0.002;
      request.config.max_level = 3;
      request.config.semantics = semantics;
      request.config.expiry = {window};

      const MineResponse first = session.mine(request);
      ASSERT_EQ(first.disposition, Disposition::kServed)
          << first.rejection.reason;
      EXPECT_EQ(first.database_generation, 1u);
      EXPECT_EQ(first.plan_notes.size(), first.result.levels.size());

      core::SerialCpuBackend serial;
      const core::MiningResult want =
          core::mine_frequent_episodes(dataset.events, dataset.alphabet, serial, request.config);
      expect_same_mining(first.result, want);

      const MineResponse second = session.mine(request);
      ASSERT_EQ(second.disposition, Disposition::kCached);
      EXPECT_EQ(second.cache_key, first.cache_key);
      expect_same_mining(second.result, first.result);
      EXPECT_GE(session.mine_cache_stats().hits, 1u);
    }
  }
}

TEST(ServiceSession, RandomizedCountsMatchOracleAcrossSemanticsAndExpiry) {
  Rng rng(2026);
  data::Dataset dataset = make_dataset(14, 5000, 7);
  MiningSession session(dataset, {.backend = {.name = "auto", .threads = 2}});

  for (const auto semantics :
       {core::Semantics::kNonOverlappedSubsequence, core::Semantics::kContiguousRestart}) {
    for (const std::int64_t window : {std::int64_t{0}, std::int64_t{6}}) {
      for (int round = 0; round < 3; ++round) {
        CountRequest request;
        request.episodes = random_level_episodes(
            rng, 14, 10 + static_cast<int>(rng.below(20)), 1 + static_cast<int>(rng.below(3)));
        request.semantics = semantics;
        request.expiry = {window};

        const CountResponse response = session.count(request);
        ASSERT_EQ(response.disposition, Disposition::kServed) << response.rejection.reason;
        EXPECT_EQ(response.counts,
                  oracle_counts(dataset, request.episodes, semantics, {window}));

        // A repeat of the same episode set must come from the cache,
        // bit-identical.
        const CountResponse repeat = session.count(request);
        ASSERT_EQ(repeat.disposition, Disposition::kCached);
        EXPECT_EQ(repeat.counts, response.counts);
      }
    }
  }
}

TEST(ServiceSession, ReloadInvalidatesCachesAndBumpsGeneration) {
  data::Dataset first = make_dataset(8, 3000, 1);
  MiningSession session(first, {.backend = {.name = "cpu-serial"}});

  MineRequest request;
  request.config.support_threshold = 0.001;
  request.config.max_level = 2;

  const MineResponse warm = session.mine(request);
  ASSERT_EQ(warm.disposition, Disposition::kServed);
  ASSERT_EQ(session.mine(request).disposition, Disposition::kCached);

  data::Dataset second = make_dataset(8, 3000, 999);
  session.reload(second);
  EXPECT_EQ(session.generation(), 2u);
  EXPECT_GE(session.mine_cache_stats().invalidations, 1u);

  // Same request, new database: a fresh run against the new events, not a
  // stale cached answer.
  const MineResponse fresh = session.mine(request);
  ASSERT_EQ(fresh.disposition, Disposition::kServed);
  EXPECT_EQ(fresh.database_generation, 2u);
  EXPECT_NE(fresh.cache_key, warm.cache_key);
  core::SerialCpuBackend serial;
  const core::MiningResult want =
      core::mine_frequent_episodes(second.events, second.alphabet, serial, request.config);
  expect_same_mining(fresh.result, want);
}

TEST(ServiceSession, AppendKeepsCachesWarmWhereReloadInvalidates) {
  // The cache-coherence contract that separates the two database mutations:
  // reload() clears both caches (its events are unrelated to the old ones),
  // while append_events() only bumps the generation — old entries become
  // unreachable through new keys but are NOT invalidated, so repeating a
  // request from before the append re-counts (fresh key, miss) and repeating
  // it again hits, all with exact counts for the grown stream.
  data::Dataset dataset = make_dataset(6, 800, 21);
  std::vector<core::Symbol> full = dataset.events;
  MiningSession session(dataset,
                        {.backend = {.name = "cpu-serial"}, .count_cache_capacity = 1});

  CountRequest request;
  request.episodes = {core::Episode({1, 2}), core::Episode({3, 4})};
  request.expiry = {5};

  const CountResponse warm = session.count(request);
  ASSERT_EQ(warm.disposition, Disposition::kServed);
  ASSERT_EQ(session.count(request).disposition, Disposition::kCached);
  const CacheStats before = session.count_cache_stats();

  const auto extra = data::uniform_database(core::Alphabet(6), 200, 77);
  (void)session.append_events(extra);
  full.insert(full.end(), extra.begin(), extra.end());

  // No invalidations — unlike reload — yet the same request cannot hit the
  // pre-append entry: its key now mixes the new generation.
  EXPECT_EQ(session.count_cache_stats().invalidations, before.invalidations);
  const CountResponse regrown = session.count(request);
  ASSERT_EQ(regrown.disposition, Disposition::kServed);
  EXPECT_NE(regrown.cache_key, warm.cache_key);
  std::vector<std::int64_t> expected;
  for (const core::Episode& e : request.episodes) {
    expected.push_back(core::count_occurrences(e, full, request.semantics, request.expiry));
  }
  EXPECT_EQ(regrown.counts, expected);
  EXPECT_EQ(session.count(request).disposition, Disposition::kCached);

  // With capacity 1, caching the post-append answer pushed out the pre-append
  // entry — an unreachable old-generation leftover, so the cache books it as
  // a stale eviction, never capacity pressure (and reload never books either:
  // its drops are invalidations, asserted above).
  EXPECT_EQ(session.count_cache_stats().stale_evictions, 1u);
  EXPECT_EQ(session.count_cache_stats().evictions, before.evictions);
}

TEST(ServiceSession, InvalidConfigsAreRejectedWithStableCodes) {
  MiningSession session(make_dataset(6, 500, 3), {.backend = {.name = "cpu-serial"}});

  MineRequest bad_support;
  bad_support.config.support_threshold = 1.5;
  const MineResponse r1 = session.mine(bad_support);
  EXPECT_EQ(r1.disposition, Disposition::kRejected);
  EXPECT_EQ(r1.rejection.code, ErrorCode::kInvalidConfig);
  EXPECT_NE(r1.rejection.reason.find("[0, 1]"), std::string::npos);

  MineRequest bad_level;
  bad_level.config.max_level = -2;
  const MineResponse r2 = session.mine(bad_level);
  EXPECT_EQ(r2.disposition, Disposition::kRejected);
  EXPECT_EQ(r2.rejection.code, ErrorCode::kInvalidConfig);

  CountRequest empty;
  const CountResponse r3 = session.count(empty);
  EXPECT_EQ(r3.disposition, Disposition::kRejected);
  EXPECT_EQ(r3.rejection.code, ErrorCode::kInvalidConfig);

  CountRequest mixed;
  mixed.episodes = {core::Episode({0, 1}), core::Episode({2})};  // mixed levels
  const CountResponse r4 = session.count(mixed);
  EXPECT_EQ(r4.disposition, Disposition::kRejected);
  EXPECT_EQ(r4.rejection.code, ErrorCode::kInvalidConfig);

  CountRequest outside;
  outside.episodes = {core::Episode({0, 42})};  // symbol outside the 6-symbol alphabet
  const CountResponse r5 = session.count(outside);
  EXPECT_EQ(r5.disposition, Disposition::kRejected);
  EXPECT_EQ(r5.rejection.code, ErrorCode::kInvalidConfig);
}

TEST(ServiceSession, AdmissionRejectsWorkOverTheLatencyBudget) {
  MiningSession session(make_dataset(12, 6000, 11), {.backend = {.name = "cpu-single-scan"}});

  MineRequest request;
  request.config.support_threshold = 0.001;
  request.config.max_level = 3;
  request.limits.latency_budget_ms = 1e-9;  // nothing fits

  const MineResponse response = session.mine(request);
  EXPECT_EQ(response.disposition, Disposition::kRejected);
  EXPECT_EQ(response.rejection.code, ErrorCode::kAdmissionRejected);
  EXPECT_NE(response.rejection.reason.find("latency budget"), std::string::npos);
  EXPECT_TRUE(response.result.frequent.empty());
  EXPECT_GT(response.timing.predicted_ms, 0.0);

  CountRequest count;
  Rng rng(5);
  count.episodes = random_level_episodes(rng, 12, 30, 2);
  count.limits.latency_budget_ms = 1e-9;
  const CountResponse count_response = session.count(count);
  EXPECT_EQ(count_response.disposition, Disposition::kRejected);
  EXPECT_EQ(count_response.rejection.code, ErrorCode::kAdmissionRejected);
}

TEST(ServiceSession, MidBudgetMineTruncatesBetweenLevelsExactly) {
  data::Dataset dataset = make_dataset(12, 6000, 13);
  SessionOptions options{.backend = {.name = "cpu-single-scan"}};
  MiningSession session(dataset, options);

  MineRequest unbounded;
  unbounded.config.support_threshold = 0.0;  // everything survives to level 3
  unbounded.config.max_level = 3;
  const MineResponse full = session.mine(unbounded);
  ASSERT_EQ(full.disposition, Disposition::kServed);
  ASSERT_EQ(full.result.levels.size(), 3u);

  // Budget covers level 1 (26 candidates' worth of prediction) but not the
  // accumulated prediction through level 2's candidate explosion: pick the
  // midpoint of the planner's own per-level accumulation by probing with the
  // full run's predicted total.
  MineRequest budgeted = unbounded;
  budgeted.limits.latency_budget_ms = full.timing.predicted_ms * 0.5;
  const MineResponse partial = session.mine(budgeted);
  if (partial.disposition == Disposition::kTruncated) {
    EXPECT_TRUE(partial.result.truncated);
    EXPECT_EQ(partial.rejection.code, ErrorCode::kAdmissionRejected);
    ASSERT_LT(partial.result.levels.size(), full.result.levels.size());
    // The levels that did run are complete and identical to the full run.
    for (std::size_t i = 0; i < partial.result.levels.size(); ++i) {
      EXPECT_EQ(partial.result.levels[i].candidates, full.result.levels[i].candidates);
      EXPECT_EQ(partial.result.levels[i].frequent, full.result.levels[i].frequent);
    }
    for (std::size_t i = 0; i < partial.result.frequent.size(); ++i) {
      EXPECT_EQ(partial.result.frequent[i].episode, full.result.frequent[i].episode);
      EXPECT_EQ(partial.result.frequent[i].count, full.result.frequent[i].count);
    }
  } else {
    // Half the predicted total still covered every level on this machine's
    // cost model — the budget path was still exercised by the tiny-budget
    // rejection test above.
    EXPECT_EQ(partial.disposition, Disposition::kCached);
  }
}

TEST(ServiceSession, LevelCapIsACapabilityRejection) {
  MiningSession session(make_dataset(6, 400, 9),
                        {.backend = {.name = "gpusim"}});
  CountRequest request;
  std::vector<core::Symbol> symbols(static_cast<std::size_t>(kernels::kMaxLevel) + 1, 0);
  request.episodes = {core::Episode(symbols)};
  const CountResponse response = session.count(request);
  EXPECT_EQ(response.disposition, Disposition::kRejected);
  EXPECT_EQ(response.rejection.code, ErrorCode::kCapability);
  EXPECT_NE(response.rejection.reason.find("level"), std::string::npos);
}

TEST(MiningServiceTest, PausedBurstBatchesCompatibleCounts) {
  data::Dataset dataset = make_dataset(10, 3000, 21);
  auto session = std::make_shared<MiningSession>(dataset,
                                                 SessionOptions{.backend = {.name = "cpu-serial"}});
  MiningService service(session,
                        {.workers = 1, .max_queue = 64, .max_batch = 16, .start_paused = true});

  Rng rng(77);
  std::vector<CountRequest> requests;
  std::vector<std::future<CountResponse>> futures;
  for (int i = 0; i < 5; ++i) {
    CountRequest request;
    request.episodes = random_level_episodes(rng, 10, 8, 2);
    futures.push_back(service.submit(request));
    requests.push_back(std::move(request));
  }
  // One incompatible straggler (different expiry window): must not join.
  CountRequest straggler;
  straggler.episodes = random_level_episodes(rng, 10, 8, 2);
  straggler.expiry = {4};
  futures.push_back(service.submit(straggler));
  requests.push_back(std::move(straggler));

  EXPECT_EQ(service.queue_depth(), 6u);
  service.resume();

  for (std::size_t i = 0; i < futures.size(); ++i) {
    const CountResponse response = futures[i].get();
    ASSERT_EQ(response.disposition, Disposition::kServed) << response.rejection.reason;
    EXPECT_EQ(response.counts, oracle_counts(dataset, requests[i].episodes,
                                             requests[i].semantics, requests[i].expiry));
    if (i < 5) {
      EXPECT_EQ(response.batched_with, 4);
    } else {
      EXPECT_EQ(response.batched_with, 0);
    }
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.served, 6u);
  EXPECT_EQ(stats.batched, 5u);
}

TEST(MiningServiceTest, ZeroCapacityQueueRejectsAtSubmit) {
  auto session = std::make_shared<MiningSession>(make_dataset(6, 300, 2),
                                                 SessionOptions{.backend = {.name = "cpu-serial"}});
  MiningService service(session, {.workers = 1, .max_queue = 0, .start_paused = true});
  MineRequest request;
  const MineResponse response = service.submit(request).get();
  EXPECT_EQ(response.disposition, Disposition::kRejected);
  EXPECT_EQ(response.rejection.code, ErrorCode::kQueueFull);
  EXPECT_NE(response.rejection.reason.find("max_queue"), std::string::npos);
}

TEST(MiningServiceTest, StopRejectsQueuedWorkWithShutdownCode) {
  auto session = std::make_shared<MiningSession>(make_dataset(6, 300, 2),
                                                 SessionOptions{.backend = {.name = "cpu-serial"}});
  MiningService service(session, {.workers = 1, .max_queue = 8, .start_paused = true});
  MineRequest request;
  auto queued = service.submit(request);
  service.stop();
  const MineResponse response = queued.get();
  EXPECT_EQ(response.disposition, Disposition::kRejected);
  EXPECT_EQ(response.rejection.code, ErrorCode::kShutdown);
  // Post-stop submissions are rejected immediately, not queued forever.
  const MineResponse late = service.submit(request).get();
  EXPECT_EQ(late.rejection.code, ErrorCode::kShutdown);
}

// Many clients, many workers, mixed mine/count traffic with repeats: every
// future resolves, every response is either bit-exact or a coded rejection,
// and cached responses equal their freshly-served twins.  Runs under the
// sanitizer-clean label (and the CI TSan job) to keep the locking honest.
TEST(MiningServiceTest, ConcurrentMixedTrafficStaysExact) {
  data::Dataset dataset = make_dataset(10, 2500, 31);
  auto session = std::make_shared<MiningSession>(
      dataset, SessionOptions{.backend = {.name = "cpu-single-scan"}});
  MiningService service(session, {.workers = 4, .max_queue = 1024, .max_batch = 8});

  // Oracle answers for the three mine templates the clients will replay.
  std::vector<MineRequest> templates(3);
  templates[0].config = {.support_threshold = 0.002, .max_level = 2};
  templates[1].config = {.support_threshold = 0.01,
                         .max_level = 2,
                         .semantics = core::Semantics::kContiguousRestart};
  templates[2].config = {.support_threshold = 0.005, .max_level = 3, .expiry = {6}};
  std::vector<core::MiningResult> oracles;
  for (const MineRequest& t : templates) {
    core::SerialCpuBackend serial;
    oracles.push_back(
        core::mine_frequent_episodes(dataset.events, dataset.alphabet, serial, t.config));
  }

  constexpr int kClients = 8;
  constexpr int kPerClient = 12;
  std::vector<std::vector<std::future<MineResponse>>> mine_futures(kClients);
  std::vector<std::vector<int>> mine_template(kClients);
  std::vector<std::vector<std::future<CountResponse>>> count_futures(kClients);
  std::vector<std::vector<CountRequest>> count_requests(kClients);

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + static_cast<std::uint64_t>(c));
      for (int i = 0; i < kPerClient; ++i) {
        if (rng.chance(0.5)) {
          const int t = static_cast<int>(rng.below(templates.size()));
          mine_template[c].push_back(t);
          mine_futures[c].push_back(service.submit(templates[t]));
        } else {
          CountRequest request;
          request.episodes = random_level_episodes(rng, 10, 6, 2);
          count_futures[c].push_back(service.submit(request));
          count_requests[c].push_back(std::move(request));
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  for (int c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < mine_futures[c].size(); ++i) {
      const MineResponse response = mine_futures[c][i].get();
      ASSERT_TRUE(response.ok()) << response.rejection.reason;
      expect_same_mining(response.result, oracles[static_cast<std::size_t>(
                                              mine_template[c][i])]);
    }
    for (std::size_t i = 0; i < count_futures[c].size(); ++i) {
      const CountResponse response = count_futures[c][i].get();
      ASSERT_TRUE(response.ok()) << response.rejection.reason;
      EXPECT_EQ(response.counts,
                oracle_counts(dataset, count_requests[c][i].episodes,
                              count_requests[c][i].semantics, count_requests[c][i].expiry));
    }
  }
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kClients * kPerClient));
  EXPECT_EQ(stats.served + stats.cached, stats.submitted);
  EXPECT_GE(stats.cached, 1u);  // repeated mine templates must hit the cache
}

// Concurrent reload against live traffic: responses are always internally
// consistent (counts from exactly one generation, never a torn mix).
TEST(MiningServiceTest, ReloadUnderTrafficKeepsGenerationsCoherent) {
  data::Dataset gen1 = make_dataset(8, 1500, 51);
  data::Dataset gen2 = make_dataset(8, 1500, 52);
  auto session = std::make_shared<MiningSession>(
      gen1, SessionOptions{.backend = {.name = "cpu-serial"}});
  MiningService service(session, {.workers = 3, .max_queue = 1024});

  CountRequest probe;
  probe.episodes = {core::Episode({0, 1}), core::Episode({2, 3})};
  const std::vector<std::int64_t> want1 =
      oracle_counts(gen1, probe.episodes, probe.semantics, probe.expiry);
  const std::vector<std::int64_t> want2 =
      oracle_counts(gen2, probe.episodes, probe.semantics, probe.expiry);

  std::vector<std::future<CountResponse>> futures;
  futures.reserve(40);
  for (int i = 0; i < 20; ++i) futures.push_back(service.submit(probe));
  session->reload(gen2);
  for (int i = 0; i < 20; ++i) futures.push_back(service.submit(probe));

  for (auto& future : futures) {
    const CountResponse response = future.get();
    ASSERT_TRUE(response.ok()) << response.rejection.reason;
    if (response.database_generation == 1) {
      EXPECT_EQ(response.counts, want1);
    } else {
      ASSERT_EQ(response.database_generation, 2u);
      EXPECT_EQ(response.counts, want2);
    }
  }
}

TEST(ResultCacheTest, LruEvictionAndStats) {
  ResultCache<int> cache(2);
  cache.put(1, 100);
  cache.put(2, 200);
  EXPECT_EQ(cache.get(1), std::optional<int>(100));  // refreshes 1
  cache.put(3, 300);                                 // evicts 2 (least recent)
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1), std::optional<int>(100));
  EXPECT_EQ(cache.get(3), std::optional<int>(300));
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().hits, 3u);
  EXPECT_EQ(cache.stats().misses, 1u);
  cache.clear();
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, StaleGenerationExitsAreNotCapacityEvictions) {
  ResultCache<int> cache(2);
  cache.put(1, 100);
  cache.put(2, 200);
  cache.set_generation(1);  // an append: both resident entries go stale
  cache.put(3, 300);        // pushes out stale entry 1
  cache.put(4, 400);        // pushes out stale entry 2
  EXPECT_EQ(cache.stats().stale_evictions, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.put(5, 500);  // pushes out current-generation entry 3: real pressure
  EXPECT_EQ(cache.stats().stale_evictions, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.clear();  // a reload is an invalidation, not an eviction of any kind
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().stale_evictions, 2u);
}

TEST(ResultCacheTest, DigestSeparatesNearbyKeys) {
  // Same fields, different order/values must not collide (regression guard
  // for the cache key construction, not a hash-quality proof).
  const std::uint64_t a = Digest().mix(1).mix(2).value();
  const std::uint64_t b = Digest().mix(2).mix(1).value();
  const std::uint64_t c = Digest().mix(1).mix(3).value();
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  const std::uint64_t e1 = Digest().mix(core::Episode({0, 1})).value();
  const std::uint64_t e2 = Digest().mix(core::Episode({1, 0})).value();
  EXPECT_NE(e1, e2);
  EXPECT_NE(Digest().mix(0.5).value(), Digest().mix(0.25).value());
}

}  // namespace
}  // namespace gm::service

#include "data/dataset_io.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace gm::data {

Dataset read_dataset(std::istream& in) {
  std::string line;
  int alphabet_size = -1;

  // Header: first significant line must be "alphabet <N>".
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream header(line);
    std::string keyword;
    header >> keyword >> alphabet_size;
    gm::expects(keyword == "alphabet" && alphabet_size >= 1,
                "dataset must start with 'alphabet <N>'");
    break;
  }
  gm::expects(alphabet_size >= 1, "dataset missing 'alphabet <N>' header");

  Dataset dataset{core::Alphabet(alphabet_size), {}};
  const bool letters = alphabet_size <= 26;
  while (std::getline(in, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    if (letters) {
      for (const char c : line) {
        if (c == ' ' || c == '\t' || c == '\r') continue;
        const int v = c - 'A';
        gm::expects(v >= 0 && v < alphabet_size,
                    std::string("event '") + c + "' outside the declared alphabet");
        dataset.events.push_back(static_cast<core::Symbol>(v));
      }
    } else {
      std::istringstream tokens(line);
      int v = 0;
      while (tokens >> v) {
        gm::expects(v >= 0 && v < alphabet_size, "event id outside the declared alphabet");
        dataset.events.push_back(static_cast<core::Symbol>(v));
      }
    }
  }
  return dataset;
}

Dataset load_dataset(const std::string& path) {
  std::ifstream in(path);
  gm::expects(static_cast<bool>(in), "cannot open dataset file: " + path);
  return read_dataset(in);
}

void write_dataset(std::ostream& out, const Dataset& dataset) {
  out << "# gpuminer dataset\n";
  out << "alphabet " << dataset.alphabet.size() << "\n";
  const bool letters = dataset.alphabet.size() <= 26;
  constexpr std::size_t kWrap = 80;
  std::size_t column = 0;
  for (const core::Symbol s : dataset.events) {
    gm::expects(dataset.alphabet.contains(s), "event outside the dataset's alphabet");
    if (letters) {
      out << static_cast<char>('A' + s);
      if (++column == kWrap) {
        out << "\n";
        column = 0;
      }
    } else {
      out << static_cast<int>(s);
      out << ((++column % 20 == 0) ? "\n" : " ");
    }
  }
  if (column != 0) out << "\n";
}

void save_dataset(const std::string& path, const Dataset& dataset) {
  std::ofstream out(path);
  gm::expects(static_cast<bool>(out), "cannot create dataset file: " + path);
  write_dataset(out, dataset);
}

}  // namespace gm::data

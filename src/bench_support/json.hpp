// Minimal streaming JSON emitter for the machine-readable benchmark
// artifacts (BENCH_*.json), plus the matching reader: the CI bench job
// uploads what the drivers write here, and downstream tooling (regression
// dashboards, the regret gate, the calibration-profile loader) parses it.
// Commas and nesting are managed automatically; misuse (a value in an object
// without a key, unbalanced end calls) trips a precondition error rather
// than emitting malformed JSON.  The reader (`parse_json`) accepts exactly
// standard JSON — everything the writer emits round-trips losslessly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gm::bench {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Name the next value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);  ///< non-finite numbers emit null
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);

  /// Shorthand: key(name).value(v).
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The finished document.  Throws if containers are still open.
  [[nodiscard]] const std::string& str() const;

  /// Write the finished document (plus a trailing newline) to `path`,
  /// throwing gm::Error when the file cannot be written.
  void write_file(const std::string& path) const;

 private:
  enum class Scope { kObject, kArray };

  void before_value();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

/// A parsed JSON value: a small tagged tree, enough to read back the BENCH_*
/// artifacts and calibration profiles this repo writes.  Object members keep
/// document order (and may legally repeat; lookups return the first match).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }

  /// Checked accessors: throw gm::PreconditionError on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int64() const;  ///< also rejects non-integers
  [[nodiscard]] const std::string& as_string() const;

  /// First member named `key`, or nullptr (objects only; throws otherwise).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Like find(), but a missing key throws with the key name.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).  Throws gm::PreconditionError with an offset-carrying
/// message on malformed input.
[[nodiscard]] JsonValue parse_json(std::string_view text);

/// Read and parse `path`, throwing gm::Error when unreadable or malformed.
[[nodiscard]] JsonValue parse_json_file(const std::string& path);

/// Write an already-serialized JSON document (plus a trailing newline) to
/// `path` with the same error contract as JsonWriter::write_file, which
/// delegates here.
void write_json_file(std::string_view text, const std::string& path);

}  // namespace gm::bench

// Synthetic database generators.
//
// The paper's evaluation database is 393,019 letters over the upper-case
// English alphabet; its timing results are data-independent (the FSM scan is
// O(1) per symbol), so a seeded uniform generator at the exact paper size is
// a faithful substitute.  The spike-train generator plants episodes with
// controllable firing rates for correctness-oriented workloads (the
// neuroscience use case the paper motivates), and the Markov generator
// produces non-uniform symbol statistics for property tests.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "core/alphabet.hpp"
#include "core/episode.hpp"

namespace gm::data {

/// The paper's database length (section 5).
inline constexpr std::int64_t kPaperDatabaseSize = 393'019;

/// Uniform i.i.d. symbols.
[[nodiscard]] core::Sequence uniform_database(const core::Alphabet& alphabet, std::int64_t size,
                                              std::uint64_t seed);

/// The exact evaluation workload of the paper: 393,019 uniform letters over
/// 'A'..'Z' (fixed seed so every bench run sees the same data).
[[nodiscard]] core::Sequence paper_database(std::uint64_t seed = 20090525);

/// First-order Markov chain: each symbol repeats with probability
/// `self_transition`, otherwise draws uniformly.  Produces bursty data that
/// stresses automaton restarts.
[[nodiscard]] core::Sequence markov_database(const core::Alphabet& alphabet, std::int64_t size,
                                             double self_transition, std::uint64_t seed);

/// Zipf-distributed i.i.d. symbols: symbol k is drawn with probability
/// proportional to (k+1)^-exponent.  `exponent` = 0 degenerates to uniform;
/// 1.0 is the classic heavy skew of natural event streams.  This is the
/// stress shape for the bucket-indexed formulations, whose per-symbol work
/// tracks bucket occupancy rather than |episodes| (see
/// kernels::bucket_drain_rate for the matching analytic term).
[[nodiscard]] core::Sequence zipf_database(const core::Alphabet& alphabet, std::int64_t size,
                                           double exponent, std::uint64_t seed);

/// The Zipf(exponent) symbol distribution `zipf_database` draws from:
/// frequencies[k] = (k+1)^-exponent, normalized to sum to 1.
[[nodiscard]] std::vector<double> zipf_frequencies(int alphabet_size, double exponent);

/// Configuration for the planted-episode spike-train generator.
struct SpikeTrainConfig {
  std::int64_t size = 10'000;       ///< events in the recording
  double noise_rate = 0.8;          ///< probability an event is background noise
  std::int64_t max_jitter = 3;      ///< 0..max_jitter noise events between pattern symbols
  std::uint64_t seed = 1;
};

struct SpikeTrain {
  core::Sequence events;
  /// Number of complete copies of each planted episode emitted.  A lower
  /// bound on the non-overlapped subsequence count (noise can only create
  /// additional occurrences, never destroy a planted one).
  std::vector<std::int64_t> planted_copies;
};

/// Generate a synthetic multi-neuron recording in which `planted` episodes
/// (firing cascades) are embedded in background noise.
[[nodiscard]] SpikeTrain spike_train(const core::Alphabet& alphabet,
                                     const std::vector<core::Episode>& planted,
                                     const SpikeTrainConfig& config);

}  // namespace gm::data

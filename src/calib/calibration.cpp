#include "calib/calibration.hpp"

#include "bench_support/json.hpp"
#include "common/error.hpp"
#include "planner/planner.hpp"

namespace gm::calib {

const std::vector<ParamRef>& calibration_params() {
  static const std::vector<ParamRef> kParams = {
      // Kernel workload-model instruction charges (cost_constants.hpp).
      {"kernel.unbuffered_scan_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.unbuffered_scan_instr; }},
      {"kernel.buffered_scan_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.buffered_scan_instr; }},
      {"kernel.block_scan_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.block_scan_instr; }},
      {"kernel.automaton_step_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.automaton_step_instr; }},
      {"kernel.buffer_copy_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.buffer_copy_instr; }},
      {"kernel.fold_step_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.fold_step_instr; }},
      {"kernel.rescan_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.rescan_instr; }},
      {"kernel.bucket_probe_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.bucket_probe_instr; }},
      {"kernel.bucket_drain_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.bucket_drain_instr; }},
      {"kernel.bucket_file_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.bucket_file_instr; }},
      {"kernel.expiry_heap_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.expiry_heap_instr; }},
      {"kernel.trie_drain_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.trie_drain_instr; }},
      {"kernel.trie_accept_instr",
       [](CalibrationProfile& p) -> double& { return p.kernel.trie_accept_instr; }},
      // CPU cost-curve constants (planner/cpu_cost_model.hpp).
      {"cpu.serial_step_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.serial_step_ns; }},
      {"cpu.serial_expiry_step_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.serial_expiry_step_ns; }},
      {"cpu.sharded_step_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.sharded_step_ns; }},
      {"cpu.scan_probe_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.scan_probe_ns; }},
      {"cpu.scan_drain_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.scan_drain_ns; }},
      {"cpu.scan_dense_step_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.scan_dense_step_ns; }},
      {"cpu.trie_drain_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.trie_drain_ns; }},
      {"cpu.trie_accept_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.trie_accept_ns; }},
      {"cpu.expiry_heap_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.expiry_heap_ns; }},
      {"cpu.thread_spawn_us",
       [](CalibrationProfile& p) -> double& { return p.cpu.thread_spawn_us; }},
      {"cpu.fold_step_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.fold_step_ns; }},
      {"cpu.distrib_merge_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.distrib_merge_ns; }},
      {"cpu.distrib_rescan_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.distrib_rescan_ns; }},
      {"cpu.distrib_steal_ns",
       [](CalibrationProfile& p) -> double& { return p.cpu.distrib_steal_ns; }},
  };
  return kParams;
}

namespace {

const ParamRef& param_by_name(std::string_view name) {
  for (const ParamRef& param : calibration_params()) {
    if (param.name == name) return param;
  }
  std::string known;
  for (const ParamRef& param : calibration_params()) {
    if (!known.empty()) known += ", ";
    known += param.name;
  }
  gm::raise_precondition("unknown calibration parameter '" + std::string(name) +
                         "' (expected one of: " + known + ")");
}

}  // namespace

double get_param(const CalibrationProfile& profile, std::string_view name) {
  // The accessor is non-const by design (one registry serves reads, writes
  // and the fitter); reading through it does not mutate.
  return param_by_name(name).ref(const_cast<CalibrationProfile&>(profile));
}

void set_param(CalibrationProfile& profile, std::string_view name, double value) {
  gm::expects(value >= 0.0, "calibration parameter '" + std::string(name) +
                                "' must be non-negative, got " + std::to_string(value));
  param_by_name(name).ref(profile) = value;
}

void apply_profile(const CalibrationProfile& profile, planner::PlannerOptions& options) {
  options.cpu_constants = profile.cpu;
  options.kernel_costs = profile.kernel;
}

std::string to_json(const CalibrationProfile& profile) {
  bench::JsonWriter json;
  json.begin_object();
  json.field("schema", kProfileSchema);
  json.field("source", profile.source);
  json.field("host", profile.host);
  json.field("samples", profile.sample_count);
  json.key("params").begin_object();
  for (const ParamRef& param : calibration_params()) {
    json.field(param.name, get_param(profile, param.name));
  }
  json.end_object();
  json.end_object();
  return json.str();
}

namespace {

CalibrationProfile profile_from_value(const bench::JsonValue& doc) {
  gm::expects(doc.is_object(), "calibration profile must be a JSON object");
  const std::string& schema = doc.at("schema").as_string();
  gm::expects(schema == kProfileSchema,
              "calibration profile schema '" + schema + "' is not the expected '" +
                  std::string(kProfileSchema) + "'");

  CalibrationProfile profile;
  if (const bench::JsonValue* source = doc.find("source")) profile.source = source->as_string();
  if (const bench::JsonValue* host = doc.find("host")) profile.host = host->as_string();
  if (const bench::JsonValue* samples = doc.find("samples")) {
    profile.sample_count = static_cast<int>(samples->as_int64());
  }
  // Unknown parameter names are rejected (a typo would otherwise silently
  // leave the shipped default in place); absent ones keep their defaults so
  // older profiles stay loadable after new constants appear.
  const bench::JsonValue& params = doc.at("params");
  gm::expects(params.is_object(), "calibration 'params' must be a JSON object");
  for (const auto& [name, value] : params.object) {
    set_param(profile, name, value.as_double());
  }
  return profile;
}

}  // namespace

CalibrationProfile profile_from_json(std::string_view text) {
  return profile_from_value(bench::parse_json(text));
}

CalibrationProfile load_profile(const std::string& path) {
  return profile_from_value(bench::parse_json_file(path));
}

void save_profile(const CalibrationProfile& profile, const std::string& path) {
  bench::write_json_file(to_json(profile), path);
}

}  // namespace gm::calib

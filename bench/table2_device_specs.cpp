// Table 2: architectural features of the three simulated testbed cards.
#include <iomanip>
#include <iostream>

#include "sim/device_spec.hpp"

int main() {
  const auto cards = gpusim::paper_testbed();

  auto row = [&](const std::string& label, auto getter) {
    std::cout << std::left << std::setw(42) << label;
    for (const auto& card : cards) {
      std::cout << std::right << std::setw(16) << getter(card);
    }
    std::cout << "\n";
  };

  std::cout << "Table 2: simulated testbed (paper order)\n\n";
  std::cout << std::left << std::setw(42) << "Card";
  for (const auto& card : cards) {
    std::cout << std::right << std::setw(16) << card.name.substr(8, 14);
  }
  std::cout << "\n";
  row("Memory (MB)", [](const auto& c) { return c.device_mem_mb; });
  row("Memory bandwidth (GB/s)", [](const auto& c) { return c.mem_bandwidth_gbps; });
  row("Multiprocessors", [](const auto& c) { return c.multiprocessors; });
  row("Cores", [](const auto& c) { return c.total_cores(); });
  row("Processor clock (MHz)", [](const auto& c) { return c.core_clock_mhz; });
  row("Compute capability", [](const auto& c) {
    return std::to_string(c.compute_capability.major) + "." +
           std::to_string(c.compute_capability.minor);
  });
  row("Registers per multiprocessor", [](const auto& c) { return c.registers_per_sm; });
  row("Threads per block (max)", [](const auto& c) { return c.max_threads_per_block; });
  row("Active threads per SM (max)", [](const auto& c) { return c.max_threads_per_sm; });
  row("Active blocks per SM (max)", [](const auto& c) { return c.max_blocks_per_sm; });
  row("Active warps per SM (max)", [](const auto& c) { return c.max_warps_per_sm; });
  row("Supports atomics", [](const auto& c) { return c.supports_atomics() ? "yes" : "no"; });
  row("Supports double precision",
      [](const auto& c) { return c.supports_double_precision() ? "yes" : "no"; });
  return 0;
}

#!/usr/bin/env bash
# The CI bench job's gates, runnable locally one at a time.
#
#   ci/run_benches.sh [-B BUILD_DIR] [STEP...]
#
# With no STEP every gate runs in CI order; `ci/run_benches.sh list` prints
# the step names.  BUILD_DIR defaults to build/bench-ci and must already hold
# a Release build of the bench drivers (micro_gbench, backend_shootout,
# calibration_table, planner_explain, service_replay, streaming_replay), e.g.:
#
#   cmake -B build/bench-ci -S . -DCMAKE_BUILD_TYPE=Release -DGM_BUILD_TESTS=OFF
#   cmake --build build/bench-ci -j
#   ci/run_benches.sh planner-cpu
#
# Every step writes its BENCH_* artifact into the current directory — the
# same files the CI job uploads — and exits non-zero when its gate fails, so
# a local run reproduces exactly what CI would flag.
set -euo pipefail

BUILD_DIR=build/bench-ci
while getopts "B:h" flag; do
  case "$flag" in
    B) BUILD_DIR=$OPTARG ;;
    h) sed -n '2,16p' "$0"; exit 0 ;;
    *) exit 2 ;;
  esac
done
shift $((OPTIND - 1))

BENCH="$BUILD_DIR/bench"
EXAMPLES="$BUILD_DIR/examples"

# Counting hot-path microbench: single scan of the large-alphabet reference
# shape must stay at least 2x the serial oracle and clear an absolute
# events/sec floor set ~10x below the measured rate, so only a real
# regression (not runner noise) trips it.  Every shape is cross-checked
# bit-exact against the serial counts before any timing is reported.
step_counting() {
  "$BENCH/micro_gbench" --counting \
    --db 200000 --episodes 256 --level 3 --repeat 3 --seed 2009 \
    --min-speedup 2 --min-events-per-sec 3000000 --out BENCH_counting.json
}

# CPU formulation race on a workload big enough for stable wall-clock;
# --threads 1 keeps the gate about formulation choice rather than whether the
# runner really delivers a core per worker.
step_planner_cpu() {
  "$BENCH/backend_shootout" --validate-planner \
    --db 150000 --alphabet 64 --episodes 150 --level 3 --threads 1 \
    --repeat 3 --max-regret 2.0 --json BENCH_shootout.json
}

step_planner_gpu() {
  "$BENCH/backend_shootout" --validate-planner \
    --db 6000 --alphabet 26 --episodes 80 --level 3 --threads 1 \
    --repeat 2 --gpu --tpb-sweep 32,128 --max-regret 2.0 \
    --json BENCH_shootout_gpu.json
}

# Shared-prefix candidate sets (--prefix-pool): the trie formulations enter
# the measured table and the planner should pick gpusim-algo5-trie at levels
# 2-3, so the 2x regret gate covers the trie-vs-flat decision too.
step_planner_trie() {
  "$BENCH/backend_shootout" --validate-planner \
    --db 20000 --alphabet 64 --episodes 1024 --level 3 --threads 1 \
    --prefix-pool 8 --repeat 2 --gpu --tpb-sweep 32 --max-regret 2.0 \
    --json BENCH_shootout_trie.json
}

# Device-count axis: with --devices 2 the planner must flip to a multi-card
# distrib candidate on this kernel-bound shape, and the 2x regret gate holds
# the flip honest against the measured table.
step_planner_devices() {
  "$BENCH/backend_shootout" --validate-planner \
    --db 20000 --alphabet 26 --episodes 300 --level 3 --threads 1 \
    --repeat 2 --gpu --tpb-sweep 32 --devices 2 --max-regret 2.0 \
    --json BENCH_shootout_devices.json
}

# Work-stealing scaling sweep gated on the *simulated* efficiency at 4 cards
# (deterministic kernel time); host wall-clock efficiency is reported ungated
# because CI runners have fewer cores than the sweep has shards.
step_scaling() {
  "$BENCH/backend_shootout" \
    --db 200000 --alphabet 26 --episodes 100 --level 2 --repeat 3 \
    --shard-sweep 1..8 --min-efficiency 0.6 --json BENCH_scaling.json
}

# Fit a calibration profile on this machine from the reference shape; the
# fitted re-validation below is report-only (the 2x gate stays on the shipped
# profile in planner-cpu).
step_fit_calibration() {
  "$BENCH/backend_shootout" --fit-calibration BENCH_calibration.json \
    --db 150000 --alphabet 64 --episodes 150 --level 3 --threads 1 \
    --repeat 3 --seed 2009 --json BENCH_shootout_fit.json
}

step_planner_fitted() {
  "$BENCH/backend_shootout" --validate-planner \
    --calibration BENCH_calibration.json \
    --db 150000 --alphabet 64 --episodes 150 --level 3 --threads 1 \
    --repeat 3 --seed 2009 --json BENCH_shootout_fitted.json
}

step_planner_tables() {
  "$EXAMPLES/planner_explain" --json BENCH_planner.json \
    --calibration BENCH_calibration.json
}

step_calibration_table() {
  "$BENCH/calibration_table" | tee BENCH_calibration.txt
}

# Service traffic replay: concurrent clients over a repeated-query mix.  The
# driver fails when any response differs from the uncached oracle or the
# cache served fewer hits than the gate, so the uploaded throughput/p50/p99
# numbers always describe bit-exact answers.
step_service_replay() {
  "$BENCH/service_replay" \
    --db 60000 --alphabet 26 --clients 8 --requests 60 --workers 4 \
    --mine-templates 3 --count-templates 6 --max-level 3 \
    --min-cache-hits 50 --out BENCH_service.json
}

# Streaming replay: live append batches against registered monitors, every
# batch cross-checked bit-for-bit against a full recount, plus the
# out-of-order shard-fold lane.  Gated: the incremental path must beat the
# recount by at least 5x on this shape (the measured margin is far larger).
step_streaming_replay() {
  "$BENCH/streaming_replay" \
    --db 60000 --alphabet 20 --batches 40 --batch-size 1500 \
    --monitors 3 --episodes 16 --max-level 3 --expiry 8 --shard-chunks 12 \
    --min-speedup 5 --out BENCH_streaming.json
}

ALL_STEPS=(counting planner-cpu planner-gpu planner-trie planner-devices
  scaling fit-calibration planner-fitted planner-tables calibration-table
  service-replay streaming-replay)

if [[ $# -eq 1 && $1 == list ]]; then
  printf '%s\n' "${ALL_STEPS[@]}"
  exit 0
fi

STEPS=("$@")
[[ ${#STEPS[@]} -eq 0 ]] && STEPS=("${ALL_STEPS[@]}")
for step in "${STEPS[@]}"; do
  fn=step_${step//-/_}
  if ! declare -F "$fn" >/dev/null; then
    echo "unknown step '$step' (try: ci/run_benches.sh list)" >&2
    exit 2
  fi
  echo "== $step =="
  "$fn"
done

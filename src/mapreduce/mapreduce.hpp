// Generic in-process MapReduce (paper section 2.2 framing).
//
// A small, fully typed map/shuffle/reduce engine: map runs in parallel over
// records across a host thread pool, intermediate pairs are grouped by key,
// and reduce runs in parallel over keys.  The episode-counting adapters in
// episode_job.hpp express the paper's algorithms in these terms: the map
// unit is an episode (thread-level) or an (episode, chunk) pair
// (block-level), and reduce is identity or a sum with a spanning fix-up.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace gm::mapreduce {

/// Collects intermediate key/value pairs emitted by one map invocation.
template <typename Key, typename Value>
class Emitter {
 public:
  void emit(Key key, Value value) { pairs_.emplace_back(std::move(key), std::move(value)); }
  [[nodiscard]] std::vector<std::pair<Key, Value>>& pairs() noexcept { return pairs_; }

 private:
  std::vector<std::pair<Key, Value>> pairs_;
};

template <typename Input, typename Key, typename Value>
struct Job {
  /// map(record, emitter): emit any number of intermediate pairs.
  std::function<void(const Input&, Emitter<Key, Value>&)> map;
  /// reduce(key, values) -> final value for that key.
  std::function<Value(const Key&, const std::vector<Value>&)> reduce;
  /// Host threads for the map and reduce phases (0 = hardware default).
  int threads = 0;
};

/// Run the job; results are sorted by key.
template <typename Input, typename Key, typename Value>
[[nodiscard]] std::vector<std::pair<Key, Value>> run(
    const Job<Input, Key, Value>& job, const std::vector<Input>& inputs) {
  gm::expects(static_cast<bool>(job.map), "job needs a map function");
  gm::expects(static_cast<bool>(job.reduce), "job needs a reduce function");

  int workers = job.threads > 0 ? job.threads
                                : static_cast<int>(std::thread::hardware_concurrency());
  workers = std::max(1, std::min<int>(workers, static_cast<int>(std::max<std::size_t>(
                                                   inputs.size(), 1))));

  // --- map phase ------------------------------------------------------------
  std::vector<std::vector<std::pair<Key, Value>>> partials(
      static_cast<std::size_t>(workers));
  {
    std::atomic<std::size_t> next{0};
    auto work = [&](int w) {
      Emitter<Key, Value> emitter;
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= inputs.size()) break;
        job.map(inputs[i], emitter);
      }
      partials[static_cast<std::size_t>(w)] = std::move(emitter.pairs());
    };
    if (workers == 1) {
      work(0);
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) pool.emplace_back(work, w);
      for (auto& t : pool) t.join();
    }
  }

  // --- shuffle: group by key --------------------------------------------------
  std::map<Key, std::vector<Value>> grouped;
  for (auto& part : partials) {
    for (auto& [key, value] : part) grouped[key].push_back(std::move(value));
  }

  // --- reduce phase -----------------------------------------------------------
  std::vector<std::pair<Key, std::vector<Value>>> items;
  items.reserve(grouped.size());
  for (auto& [key, values] : grouped) items.emplace_back(key, std::move(values));

  std::vector<std::pair<Key, Value>> results(items.size());
  {
    std::atomic<std::size_t> next{0};
    auto work = [&]() {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= items.size()) break;
        results[i] = {items[i].first, job.reduce(items[i].first, items[i].second)};
      }
    };
    if (workers == 1) {
      work();
    } else {
      std::vector<std::thread> pool;
      pool.reserve(static_cast<std::size_t>(workers));
      for (int w = 0; w < workers; ++w) pool.emplace_back(work);
      for (auto& t : pool) t.join();
    }
  }
  return results;
}

}  // namespace gm::mapreduce

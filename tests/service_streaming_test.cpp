// Streaming-session suite: live appends advance generations without
// invalidating still-valid cached results, measured symbol frequencies stay
// bit-identical to a full re-measure, monitors alert exactly once per
// threshold crossing with exact counts, and the gm-checkpoint/1 JSON
// round-trip restores a session's monitors after a restart — resuming from
// the persisted position instead of recounting the stream.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "kernels/workload_model.hpp"
#include "service/checkpoint_store.hpp"
#include "service/session.hpp"
#include "service/streaming_monitor.hpp"

namespace gm::service {
namespace {

data::Dataset make_dataset(int alphabet_size, std::int64_t size, std::uint64_t seed) {
  data::Dataset dataset{core::Alphabet(alphabet_size), {}};
  dataset.events = data::uniform_database(dataset.alphabet, size, seed);
  return dataset;
}

SessionOptions serial_options() {
  SessionOptions options;
  options.backend = {.name = "serial"};
  return options;
}

TEST(AppendEvents, CountsStayExactAndGenerationAdvances) {
  Rng rng(0xAA55);
  data::Dataset dataset = make_dataset(10, 400, rng());
  std::vector<core::Symbol> full = dataset.events;
  MiningSession session(std::move(dataset), serial_options());
  const std::uint64_t gen0 = session.generation();

  std::vector<core::Episode> episodes = {core::Episode({1, 2}), core::Episode({3, 3})};
  for (int batch = 0; batch < 5; ++batch) {
    const auto events =
        data::uniform_database(core::Alphabet(10), 120 + 17 * batch, rng());
    const auto outcome = session.append_events(events);
    full.insert(full.end(), events.begin(), events.end());
    EXPECT_EQ(outcome.generation, gen0 + static_cast<std::uint64_t>(batch) + 1);
    EXPECT_EQ(outcome.database_size, static_cast<std::int64_t>(full.size()));

    CountRequest request;
    request.episodes = episodes;
    request.expiry = {7};
    const CountResponse response = session.count(request);
    ASSERT_TRUE(response.ok()) << response.rejection.reason;
    std::vector<std::int64_t> expected;
    for (const core::Episode& e : episodes) {
      expected.push_back(
          core::count_occurrences(e, full, request.semantics, request.expiry));
    }
    EXPECT_EQ(response.counts, expected) << "batch " << batch;
    EXPECT_EQ(response.database_generation, outcome.generation);
  }
}

TEST(AppendEvents, IncrementalFrequenciesMatchFullRemeasure) {
  Rng rng(0xF0E1);
  data::Dataset dataset = make_dataset(12, 300, rng());
  std::vector<core::Symbol> full = dataset.events;
  MiningSession session(std::move(dataset), serial_options());
  for (int batch = 0; batch < 4; ++batch) {
    const auto events = data::markov_database(core::Alphabet(12), 90, 0.5, rng());
    (void)session.append_events(events);
    full.insert(full.end(), events.begin(), events.end());
    EXPECT_EQ(session.measured_frequencies(),
              kernels::measured_symbol_freq(full, 12))
        << "batch " << batch;
  }
}

TEST(AppendEvents, RejectsSymbolsOutsideTheAlphabetAtomically) {
  MiningSession session(make_dataset(4, 50, 7), serial_options());
  const std::uint64_t gen = session.generation();
  const std::int64_t size = session.database_size();
  const std::vector<core::Symbol> bad = {1, 2, 200};
  EXPECT_THROW((void)session.append_events(bad), gm::Error);
  EXPECT_EQ(session.generation(), gen);
  EXPECT_EQ(session.database_size(), size);
}

TEST(StreamingMonitorTest, AlertsFireOnceWithExactCountsAcrossEngines) {
  for (const core::ScanEngine engine :
       {core::ScanEngine::kSingleScan, core::ScanEngine::kTrie}) {
    Rng rng(0xA1E27);
    data::Dataset dataset = make_dataset(6, 200, rng());
    std::vector<core::Symbol> full = dataset.events;
    MiningSession session(std::move(dataset), serial_options());

    MonitorSpec spec;
    spec.name = "watch";
    spec.episodes = {core::Episode({0, 1}), core::Episode({2, 3, 2})};
    spec.expiry = {9};
    spec.engine = engine;
    const auto initial_counts = [&] {
      std::vector<std::int64_t> counts;
      for (const core::Episode& e : spec.episodes) {
        counts.push_back(core::count_occurrences(e, full, spec.semantics, spec.expiry));
      }
      return counts;
    }();
    // Threshold above the current count of episode 0 so the crossing happens
    // mid-stream, during one specific later batch.
    spec.threshold = initial_counts[0] + 5;
    std::vector<Alert> alerts = session.register_monitor(spec);
    for (const Alert& alert : alerts) {
      EXPECT_GE(alert.count, spec.threshold);  // only already-over episodes fire here
    }

    int fired_for_episode0 = 0;
    for (const Alert& a : alerts) fired_for_episode0 += a.episode_index == 0 ? 1 : 0;
    for (int batch = 0; batch < 20; ++batch) {
      const auto events = data::uniform_database(core::Alphabet(6), 60, rng());
      const auto outcome = session.append_events(events);
      full.insert(full.end(), events.begin(), events.end());
      std::vector<std::int64_t> expected;
      for (const core::Episode& e : spec.episodes) {
        expected.push_back(core::count_occurrences(e, full, spec.semantics, spec.expiry));
      }
      ASSERT_EQ(session.monitor_counts("watch"), expected) << "batch " << batch;
      for (const Alert& alert : outcome.alerts) {
        EXPECT_EQ(alert.monitor, "watch");
        EXPECT_GE(alert.count, spec.threshold);
        EXPECT_EQ(alert.position, static_cast<std::int64_t>(full.size()));
        fired_for_episode0 += alert.episode_index == 0 ? 1 : 0;
      }
    }
    // The stream is long enough that episode 0 must have crossed — and the
    // alert-once latch means exactly one alert total.
    EXPECT_EQ(fired_for_episode0, 1) << "engine " << static_cast<int>(engine);
  }
}

TEST(StreamingMonitorTest, CheckpointJsonRoundTripsLosslessly) {
  Rng rng(0x77AA);
  const auto events = data::uniform_database(core::Alphabet(9), 150, rng());
  core::StreamScan scan({core::Episode({1, 2, 3}), core::Episode({4, 4})},
                        core::Semantics::kNonOverlappedSubsequence, {11},
                        core::ScanEngine::kTrie);
  scan.feed(events);
  const core::ScanCheckpoint original = scan.checkpoint(97);

  bench::JsonWriter json;
  write_checkpoint(json, original);
  const core::ScanCheckpoint reloaded = read_checkpoint(bench::parse_json(json.str()));
  EXPECT_EQ(reloaded.semantics, original.semantics);
  EXPECT_EQ(reloaded.expiry, original.expiry);
  EXPECT_EQ(reloaded.high_water, original.high_water);
  EXPECT_EQ(reloaded.prefix_digest, original.prefix_digest);
  EXPECT_EQ(reloaded.generation, original.generation);
  EXPECT_EQ(reloaded.episodes, original.episodes);
  EXPECT_EQ(reloaded.progress, original.progress);
}

TEST(StreamingMonitorTest, SessionRestartResumesMonitorsFromPersistedJson) {
  Rng rng(0xD15C);
  data::Dataset dataset = make_dataset(8, 250, rng());
  const data::Dataset dataset_copy = dataset;
  MiningSession session(std::move(dataset), serial_options());

  MonitorSpec spec;
  spec.name = "persist";
  spec.episodes = {core::Episode({0, 1, 2}), core::Episode({3, 4})};
  spec.expiry = {8};
  spec.threshold = 3;
  (void)session.register_monitor(spec);
  const auto first_batch = data::uniform_database(core::Alphabet(8), 100, rng());
  (void)session.append_events(first_batch);

  // Persist, then "restart": a new session over the stream as it stood at
  // capture, restored from the JSON round trip.
  const std::string persisted = monitors_to_json(session.monitor_snapshots());

  data::Dataset reborn = dataset_copy;
  reborn.events.insert(reborn.events.end(), first_batch.begin(), first_batch.end());
  MiningSession restarted(std::move(reborn), serial_options());
  const auto snapshots = monitors_from_json(persisted);
  ASSERT_EQ(snapshots.size(), 1u);
  // Restoring against the matching stream replays nothing (high_water == db
  // size) and fires nothing new.
  const auto alerts = restarted.restore_monitor(snapshots.front());
  EXPECT_TRUE(alerts.empty());
  EXPECT_EQ(restarted.monitor_counts("persist"), session.monitor_counts("persist"));

  // Both sessions continue identically.
  const auto second_batch = data::uniform_database(core::Alphabet(8), 100, rng());
  const auto live = session.append_events(second_batch);
  const auto resumed = restarted.append_events(second_batch);
  EXPECT_EQ(restarted.monitor_counts("persist"), session.monitor_counts("persist"));
  ASSERT_EQ(live.alerts.size(), resumed.alerts.size());
  for (std::size_t i = 0; i < live.alerts.size(); ++i) {
    EXPECT_EQ(live.alerts[i].episode_index, resumed.alerts[i].episode_index);
    EXPECT_EQ(live.alerts[i].count, resumed.alerts[i].count);
    EXPECT_EQ(live.alerts[i].position, resumed.alerts[i].position);
  }
}

TEST(StreamingMonitorTest, RestoreRefusesAMismatchedStreamPrefix) {
  Rng rng(0xBADF00D);
  data::Dataset dataset = make_dataset(5, 80, rng());
  data::Dataset tampered = dataset;
  tampered.events[10] = static_cast<core::Symbol>((tampered.events[10] + 1) % 5);

  MonitorSpec spec;
  spec.name = "strict";
  spec.episodes = {core::Episode({1, 2})};
  MiningSession session(std::move(dataset), serial_options());
  (void)session.register_monitor(spec);
  const auto snapshots = session.monitor_snapshots();

  MiningSession other(std::move(tampered), serial_options());
  EXPECT_THROW((void)other.restore_monitor(snapshots.front()), gm::Error);
}

TEST(StreamingMonitorTest, IdleEvictionKeepsLiveEpisodeAlertsExact) {
  // Two monitors over the same stream, identical except that one evicts the
  // in-flight state of episodes idle for 3 batches.  Episode 0 keeps scoring
  // every batch (live); episode 1 starts a match in the first batch and then
  // sees nothing until its second symbol finally arrives long past the idle
  // horizon.  Eviction must drop exactly that straddling occurrence — and
  // nothing about the live episode's counts or alerts.
  for (const core::ScanEngine engine :
       {core::ScanEngine::kSingleScan, core::ScanEngine::kTrie}) {
    MonitorSpec spec;
    spec.name = "evict";
    spec.episodes = {core::Episode({0, 1}), core::Episode({2, 3})};
    spec.threshold = 5;
    spec.engine = engine;
    MonitorSpec evicting = spec;
    evicting.idle_eviction_generations = 3;
    StreamingMonitor plain(spec);
    StreamingMonitor pruned(evicting);

    const std::vector<std::vector<core::Symbol>> batches = {
        {2}, {0, 1}, {0, 1}, {0, 1}, {0, 1}, {3}, {0, 1}};
    std::vector<Alert> plain_alerts;
    std::vector<Alert> pruned_alerts;
    std::uint64_t generation = 1;
    for (const auto& batch : batches) {
      plain.on_append(batch, generation, plain_alerts);
      pruned.on_append(batch, generation, pruned_alerts);
      ++generation;
    }

    EXPECT_EQ(plain.idle_evictions(), 0);
    EXPECT_EQ(pruned.idle_evictions(), 1) << "engine " << static_cast<int>(engine);
    // The live episode is untouched: same exact counts, same single alert at
    // the same crossing.
    EXPECT_EQ(plain.counts()[0], pruned.counts()[0]);
    ASSERT_EQ(plain_alerts.size(), pruned_alerts.size());
    for (std::size_t i = 0; i < plain_alerts.size(); ++i) {
      EXPECT_EQ(plain_alerts[i].episode_index, 0u);
      EXPECT_EQ(plain_alerts[i].episode_index, pruned_alerts[i].episode_index);
      EXPECT_EQ(plain_alerts[i].count, pruned_alerts[i].count);
      EXPECT_EQ(plain_alerts[i].position, pruned_alerts[i].position);
      EXPECT_EQ(plain_alerts[i].generation, pruned_alerts[i].generation);
    }
    // The idle episode's half-built match was really dropped: only the
    // non-evicting monitor completes it when symbol 3 finally shows up.
    EXPECT_EQ(plain.counts()[1], 1);
    EXPECT_EQ(pruned.counts()[1], 0);
  }
}

TEST(StreamingMonitorTest, TicksRecordEveryAppendBatch) {
  data::Dataset dataset = make_dataset(4, 40, 3);
  MiningSession session(std::move(dataset), serial_options());
  MonitorSpec spec;
  spec.name = "ticks";
  spec.episodes = {core::Episode({0, 1})};
  (void)session.register_monitor(spec);
  (void)session.append_events(std::vector<core::Symbol>{0, 1, 0, 1});
  (void)session.append_events(std::vector<core::Symbol>{2, 3});
  const auto snapshots = session.monitor_snapshots();
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots.front().checkpoint.high_water, 46);
}

}  // namespace
}  // namespace gm::service

#include "sim/engine.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace gpusim {
namespace {

struct Snapshot {
  std::uint64_t instructions = 0;
  std::uint64_t tex_ops = 0;
  std::uint64_t shared_ops = 0;
  std::uint64_t global_ops = 0;
  std::uint64_t atomic_ops = 0;
};

Snapshot snap(const ThreadCounters& c) {
  return {c.instructions, c.tex_ops, c.shared_ops, c.global_ops, c.atomic_ops};
}

/// Executes one block and returns its profile.
class BlockRunner {
 public:
  BlockRunner(const DeviceSpec& spec, const LaunchConfig& config, const KernelFn& kernel,
              int block_index, bool simulate_cache)
      : spec_(spec), config_(config), kernel_(kernel), block_index_(block_index) {
    env_.shared_mem.assign(static_cast<std::size_t>(config.shared_mem_per_block), std::byte{0});
    if (simulate_cache) {
      cache_.emplace(spec.tex_cache_bytes, spec.tex_cache_line_bytes, spec.tex_cache_assoc);
      env_.texture_cache = &*cache_;
    }
  }

  BlockProfile run() {
    const int threads = static_cast<int>(config_.threads_per_block());
    const int warp = spec_.warp_size;
    const int warps = (threads + warp - 1) / warp;

    contexts_.reserve(static_cast<std::size_t>(threads));
    tasks_.reserve(static_cast<std::size_t>(threads));
    snapshots_.assign(static_cast<std::size_t>(threads), Snapshot{});
    for (int t = 0; t < threads; ++t) {
      ThreadCoordinates coords;
      coords.block_index = block_index_;
      coords.thread_index = t;
      coords.block_dim = threads;
      coords.grid_dim = static_cast<int>(config_.total_blocks());
      contexts_.emplace_back(spec_, coords, env_);
    }
    for (int t = 0; t < threads; ++t) {
      tasks_.push_back(kernel_(contexts_[static_cast<std::size_t>(t)]));
    }

    BlockProfile profile;
    profile.warps = warps;

    for (;;) {
      for (auto& task : tasks_) {
        if (!task.done() && !task.at_barrier()) task.resume();
      }
      int done = 0;
      int at_barrier = 0;
      for (const auto& task : tasks_) {
        if (task.done()) {
          ++done;
        } else if (task.at_barrier()) {
          ++at_barrier;
        }
      }
      gm::ensure(done + at_barrier == threads,
                 "thread neither finished nor at barrier after resume");
      if (at_barrier == 0) break;  // all threads returned
      if (done != 0) {
        gm::raise_device("divergent __syncthreads: " + std::to_string(done) +
                         " thread(s) exited while " + std::to_string(at_barrier) +
                         " wait at the barrier (block " + std::to_string(block_index_) + ")");
      }
      close_segment(profile, warps, warp, threads);
      ++profile.syncs;
      for (auto& task : tasks_) task.clear_barrier();
    }
    close_segment(profile, warps, warp, threads);

    for (const auto& ctx : contexts_) {
      const auto& c = ctx.counters();
      profile.lane_instructions += static_cast<double>(c.instructions);
      profile.tex_requests += static_cast<double>(c.tex_ops);
      profile.shared_requests += static_cast<double>(c.shared_ops);
      profile.global_requests += static_cast<double>(c.global_ops);
      profile.global_bytes += static_cast<double>(c.global_bytes);
      profile.atomic_requests += static_cast<double>(c.atomic_ops);
    }
    if (cache_) {
      profile.tex_miss_bytes = static_cast<double>(cache_->miss_bytes());
    }
    if (env_.pattern_declared) {
      profile.texture = env_.declared_pattern;
    } else if (cache_) {
      // Without a declared pattern, approximate the footprint by the isolated
      // miss traffic (exact when the block streams without capacity misses).
      profile.texture.footprint_bytes = profile.tex_miss_bytes;
    }
    return profile;
  }

 private:
  void close_segment(BlockProfile& profile, int warps, int warp, int threads) {
    Snapshot segment_max;  // max over warps: the segment's critical path
    for (int w = 0; w < warps; ++w) {
      Snapshot delta_max;
      const int lane_begin = w * warp;
      const int lane_end = std::min(threads, lane_begin + warp);
      for (int t = lane_begin; t < lane_end; ++t) {
        const auto& c = contexts_[static_cast<std::size_t>(t)].counters();
        const auto& s = snapshots_[static_cast<std::size_t>(t)];
        delta_max.instructions = std::max(delta_max.instructions, c.instructions - s.instructions);
        delta_max.tex_ops = std::max(delta_max.tex_ops, c.tex_ops - s.tex_ops);
        delta_max.shared_ops = std::max(delta_max.shared_ops, c.shared_ops - s.shared_ops);
        delta_max.global_ops = std::max(delta_max.global_ops, c.global_ops - s.global_ops);
        delta_max.atomic_ops = std::max(delta_max.atomic_ops, c.atomic_ops - s.atomic_ops);
      }
      profile.warp_instructions += static_cast<double>(delta_max.instructions);
      profile.warp_tex_ops += static_cast<double>(delta_max.tex_ops);
      profile.warp_shared_ops += static_cast<double>(delta_max.shared_ops);
      profile.warp_global_ops += static_cast<double>(delta_max.global_ops);
      profile.warp_atomic_ops += static_cast<double>(delta_max.atomic_ops);
      segment_max.instructions = std::max(segment_max.instructions, delta_max.instructions);
      segment_max.tex_ops = std::max(segment_max.tex_ops, delta_max.tex_ops);
      segment_max.shared_ops = std::max(segment_max.shared_ops, delta_max.shared_ops);
      segment_max.global_ops = std::max(segment_max.global_ops, delta_max.global_ops);
    }
    profile.path_instructions += static_cast<double>(segment_max.instructions);
    profile.path_tex_ops += static_cast<double>(segment_max.tex_ops);
    profile.path_shared_ops += static_cast<double>(segment_max.shared_ops);
    profile.path_global_ops += static_cast<double>(segment_max.global_ops);
    for (int t = 0; t < threads; ++t) {
      snapshots_[static_cast<std::size_t>(t)] =
          snap(contexts_[static_cast<std::size_t>(t)].counters());
    }
  }

  const DeviceSpec& spec_;
  const LaunchConfig& config_;
  const KernelFn& kernel_;
  int block_index_;
  BlockEnv env_;
  std::optional<CacheSim> cache_;
  std::vector<ThreadCtx> contexts_;
  std::vector<KernelTask> tasks_;
  std::vector<Snapshot> snapshots_;
};

}  // namespace

Engine::Engine(DeviceSpec spec, EngineOptions options)
    : spec_(std::move(spec)), options_(options) {
  spec_.validate();
}

LaunchResult Engine::launch(const LaunchConfig& config, const KernelFn& kernel) const {
  LaunchResult result;
  result.occupancy = compute_occupancy(spec_, config);  // validates the launch

  const std::int64_t blocks = config.total_blocks();
  std::vector<BlockProfile> per_block(static_cast<std::size_t>(blocks));

  int workers = options_.host_threads > 0
                    ? options_.host_threads
                    : static_cast<int>(std::thread::hardware_concurrency());
  workers = std::max(1, std::min<int>(workers, static_cast<int>(blocks)));

  std::atomic<std::int64_t> next{0};
  std::exception_ptr failure;
  std::mutex failure_mutex;

  auto worker = [&]() {
    for (;;) {
      const std::int64_t b = next.fetch_add(1, std::memory_order_relaxed);
      if (b >= blocks) return;
      try {
        BlockRunner runner(spec_, config, kernel, static_cast<int>(b),
                           options_.simulate_texture_cache);
        per_block[static_cast<std::size_t>(b)] = runner.run();
      } catch (...) {
        std::lock_guard lock(failure_mutex);
        if (!failure) failure = std::current_exception();
        next.store(blocks, std::memory_order_relaxed);  // stop other workers
        return;
      }
    }
  };

  if (workers == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  if (failure) std::rethrow_exception(failure);

  for (const auto& bp : per_block) {
    result.profile.add_block(bp);
    result.texture_cache.accesses += static_cast<std::uint64_t>(bp.tex_requests);
    result.texture_cache.misses +=
        static_cast<std::uint64_t>(bp.tex_miss_bytes / spec_.tex_cache_line_bytes);
  }
  result.texture_cache.hits = result.texture_cache.accesses >= result.texture_cache.misses
                                  ? result.texture_cache.accesses - result.texture_cache.misses
                                  : 0;
  result.totals = aggregate(result.profile);
  return result;
}

}  // namespace gpusim

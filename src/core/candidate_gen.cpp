#include "core/candidate_gen.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <unordered_set>

#include "common/error.hpp"

namespace gm::core {

std::uint64_t episode_space_size(int alphabet_size, int level) {
  gm::expects(alphabet_size >= 1, "alphabet size must be positive");
  gm::expects(level >= 1, "level must be positive");
  if (level > alphabet_size) return 0;
  std::uint64_t total = 1;
  for (int i = 0; i < level; ++i) {
    const auto factor = static_cast<std::uint64_t>(alphabet_size - i);
    gm::expects(total <= std::numeric_limits<std::uint64_t>::max() / factor,
                "episode space size overflows uint64");
    total *= factor;
  }
  return total;
}

namespace {

/// 256-bit membership mask over the 8-bit symbol space: O(1) "is this symbol
/// already in the prefix" instead of scanning the prefix per symbol tried.
struct SymbolMask {
  std::array<std::uint64_t, 4> words{};

  [[nodiscard]] bool test(Symbol s) const noexcept {
    return ((words[s >> 6] >> (s & 63)) & 1u) != 0;
  }
  void set(Symbol s) noexcept { words[s >> 6] |= std::uint64_t{1} << (s & 63); }
  void clear(Symbol s) noexcept { words[s >> 6] &= ~(std::uint64_t{1} << (s & 63)); }
};

void extend(const Alphabet& alphabet, std::vector<Symbol>& prefix, SymbolMask& used,
            int level, std::vector<Episode>& out) {
  if (static_cast<int>(prefix.size()) == level) {
    out.emplace_back(prefix);
    return;
  }
  for (int s = 0; s < alphabet.size(); ++s) {
    const auto symbol = static_cast<Symbol>(s);
    if (used.test(symbol)) continue;
    used.set(symbol);
    prefix.push_back(symbol);
    extend(alphabet, prefix, used, level, out);
    prefix.pop_back();
    used.clear(symbol);
  }
}

}  // namespace

std::vector<Episode> all_distinct_episodes(const Alphabet& alphabet, int level) {
  gm::expects(level >= 1, "level must be positive");
  const std::uint64_t n = episode_space_size(alphabet.size(), level);
  gm::expects(n <= (1ULL << 26), "episode space too large to materialize");
  std::vector<Episode> out;
  out.reserve(n);
  std::vector<Symbol> prefix;
  prefix.reserve(static_cast<std::size_t>(level));
  SymbolMask used;
  extend(alphabet, prefix, used, level, out);
  gm::ensure(out.size() == n, "episode enumeration disagrees with Table 1 formula");
  return out;
}

std::vector<Episode> level1_candidates(const Alphabet& alphabet) {
  return all_distinct_episodes(alphabet, 1);
}

std::vector<Episode> generate_candidates(const std::vector<Episode>& frequent_prev, bool prune) {
  if (frequent_prev.empty()) return {};
  const int prev_level = frequent_prev.front().level();
  for (const auto& e : frequent_prev) {
    gm::expects(e.level() == prev_level, "frequent set must share one level");
  }

  std::unordered_set<Episode, EpisodeHash> frequent_set(frequent_prev.begin(),
                                                        frequent_prev.end());

  // Join from a lexicographically sorted view so candidates come out in
  // prefix-sorted order (the trie engine then builds in one linear pass):
  // a-major emission sorts by the full (level-1)-prefix a, and every b
  // joinable with one a shares the prefix a[1..], so within the group the
  // appended last symbols are ascending too.  Mining levels are usually
  // already sorted (level 1 is, and this function keeps the invariant), so
  // the copy is the exceptional path.
  std::vector<Episode> sorted_view;
  const std::vector<Episode>* frequent = &frequent_prev;
  if (!std::is_sorted(frequent_prev.begin(), frequent_prev.end())) {
    sorted_view = frequent_prev;
    std::sort(sorted_view.begin(), sorted_view.end());
    frequent = &sorted_view;
  }
  std::vector<Episode> candidates;

  if (prev_level == 1) {
    // Join two level-1 episodes <a>, <b> (a != b allowed to repeat? the
    // episode model permits repeats; the paper's space uses distinct symbols
    // but general mining should not assume it).
    for (const auto& a : *frequent) {
      for (const auto& b : *frequent) {
        std::vector<Symbol> symbols{a.at(0), b.at(0)};
        candidates.emplace_back(std::move(symbols));
      }
    }
  } else {
    for (const auto& a : *frequent) {
      for (const auto& b : *frequent) {
        // a = <x, m...>, b = <m..., y>  ->  <x, m..., y>
        bool joinable = true;
        for (int i = 0; i + 1 < prev_level; ++i) {
          if (a.at(i + 1) != b.at(i)) {
            joinable = false;
            break;
          }
        }
        if (!joinable) continue;
        std::vector<Symbol> symbols(a.symbols().begin(), a.symbols().end());
        symbols.push_back(b.at(prev_level - 1));
        candidates.emplace_back(std::move(symbols));
      }
    }
  }

  gm::ensure(std::is_sorted(candidates.begin(), candidates.end()),
             "candidate join must emit lexicographic prefix-sorted episodes");
  if (!prune) return candidates;

  std::vector<Episode> pruned;
  pruned.reserve(candidates.size());
  for (const auto& c : candidates) {
    bool keep = true;
    for (int drop = 0; drop < c.level(); ++drop) {
      if (!frequent_set.contains(c.without(drop))) {
        keep = false;
        break;
      }
    }
    if (keep) pruned.push_back(c);
  }
  return pruned;
}

std::vector<std::size_t> eliminate_infrequent(std::span<const Episode> episodes,
                                              const std::vector<std::int64_t>& counts,
                                              std::int64_t database_size,
                                              double support_threshold) {
  gm::expects(episodes.size() == counts.size(), "episode/count size mismatch");
  gm::expects(database_size > 0, "database must be non-empty");
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < episodes.size(); ++i) {
    const double support =
        static_cast<double>(counts[i]) / static_cast<double>(database_size);
    if (support > support_threshold) keep.push_back(i);
  }
  return keep;
}

}  // namespace gm::core

// Exact-equality tests for the shared-prefix trie engine: randomized
// cross-checks against the per-episode serial reference across both counting
// semantics and expiry windows, the degenerate trie shapes (singleton
// candidate set, all-shared-prefix, no-shared-prefix), and the token
// mechanics that differ from the flat single-scan engine (divergence at
// accepting nodes, episodes that are prefixes of other episodes).
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.hpp"
#include "core/cpu_backend.hpp"
#include "core/episode_trie.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "random_episode_util.hpp"

namespace gm::core {
namespace {

using test::random_episodes;

TEST(TrieCounter, MatchesSerialOnRandomizedWorkloads) {
  Rng rng(0xBEEFCAFE);
  const Semantics all_semantics[] = {Semantics::kNonOverlappedSubsequence,
                                     Semantics::kContiguousRestart};
  const std::int64_t windows[] = {0, 1, 2, 3, 7, 16};
  for (int trial = 0; trial < 40; ++trial) {
    const auto alphabet_size = static_cast<int>(rng.between(2, 24));
    const Alphabet alphabet(alphabet_size);
    const auto db = (trial % 2 == 0)
                        ? data::uniform_database(alphabet, 1500, rng())
                        : data::markov_database(alphabet, 1500, 0.6, rng());
    const auto episodes =
        random_episodes(rng, alphabet_size, static_cast<int>(rng.between(1, 40)), 4);
    for (const Semantics semantics : all_semantics) {
      for (const std::int64_t window : windows) {
        const ExpiryPolicy expiry{window};
        const auto expected = count_all(episodes, db, semantics, expiry);
        const auto actual = count_all_trie_scan(episodes, db, semantics, expiry);
        ASSERT_EQ(actual, expected)
            << "trial " << trial << " alphabet " << alphabet_size << " semantics "
            << to_string(semantics) << " window " << window;
      }
    }
  }
}

// Small alphabets force heavy prefix overlap AND heavy token desynchronization
// (accept-and-restart while prefix-siblings continue), the exact regime where
// a per-node (rather than per-token) representation would drift from serial.
TEST(TrieCounter, MatchesSerialUnderHeavySharingAndDesync) {
  Rng rng(0x7121E);
  for (int trial = 0; trial < 20; ++trial) {
    const Alphabet alphabet(3);
    const auto db = data::uniform_database(alphabet, 800, rng());
    const auto episodes =
        random_episodes(rng, 3, static_cast<int>(rng.between(10, 90)), 5);
    for (const std::int64_t window : {std::int64_t{0}, std::int64_t{4}, std::int64_t{9}}) {
      const ExpiryPolicy expiry{window};
      const auto expected =
          count_all(episodes, db, Semantics::kNonOverlappedSubsequence, expiry);
      ASSERT_EQ(count_all_trie_scan(episodes, db, Semantics::kNonOverlappedSubsequence,
                                    expiry),
                expected)
          << "trial " << trial << " window " << window;
    }
  }
}

TEST(TrieCounter, SingletonCandidateSetDegeneratesToOneChain) {
  const std::vector<Episode> episodes = {Episode({2, 0, 1})};
  const EpisodeTrie trie(episodes);
  EXPECT_EQ(trie.node_count(), 4u);  // root + one node per symbol
  EXPECT_DOUBLE_EQ(prefix_compression(episodes), 1.0);

  const Sequence db = {2, 2, 0, 1, 2, 0, 0, 1, 1};
  for (const std::int64_t window : {std::int64_t{0}, std::int64_t{3}}) {
    EXPECT_EQ(count_all_trie_scan(episodes, db, Semantics::kNonOverlappedSubsequence,
                                  ExpiryPolicy{window}),
              count_all(episodes, db, Semantics::kNonOverlappedSubsequence,
                        ExpiryPolicy{window}));
  }
}

TEST(TrieCounter, AllSharedPrefixCollapsesToNearOneTokenPerStep) {
  // 8 level-4 candidates share the same 3-prefix: the trie has 3 + 8 nodes
  // below the root, against 32 flat automaton states.
  std::vector<Episode> episodes;
  for (Symbol last = 0; last < 8; ++last) episodes.push_back(Episode({9, 4, 7, last}));
  EXPECT_DOUBLE_EQ(prefix_compression(episodes), (3.0 + 8.0) / 32.0);

  Rng rng(42);
  const Alphabet alphabet(12);
  const auto db = data::uniform_database(alphabet, 2000, 7);
  for (const std::int64_t window : {std::int64_t{0}, std::int64_t{6}, std::int64_t{40}}) {
    const ExpiryPolicy expiry{window};
    EXPECT_EQ(count_all_trie_scan(episodes, db, Semantics::kNonOverlappedSubsequence, expiry),
              count_all(episodes, db, Semantics::kNonOverlappedSubsequence, expiry));
  }

  // The shared chain really is walked once: per-symbol token work must be far
  // below the flat engine's per-automaton work on the same candidate set.
  TrieCounter counter(episodes, Semantics::kNonOverlappedSubsequence, {},
                      static_cast<std::int64_t>(db.size()));
  for (std::size_t i = 0; i < db.size(); ++i) {
    counter.advance(db[i], static_cast<std::int64_t>(i));
  }
  EXPECT_LT(counter.ops().drains,
            static_cast<std::int64_t>(episodes.size() * db.size() / 4));
}

TEST(TrieCounter, NoSharedPrefixMatchesFlatEngineShape) {
  // Pairwise-distinct first symbols: every subtree is a chain of its own and
  // the compression factor is exactly 1 (no sharing to exploit).
  const std::vector<Episode> episodes = {Episode({0, 1, 2}), Episode({1, 2, 3}),
                                         Episode({2, 3, 4}), Episode({3, 4})};
  EXPECT_DOUBLE_EQ(prefix_compression(episodes), 1.0);

  Rng rng(0xA11CE);
  const Alphabet alphabet(5);
  const auto db = data::markov_database(alphabet, 1200, 0.5, 99);
  for (const std::int64_t window : {std::int64_t{0}, std::int64_t{5}}) {
    const ExpiryPolicy expiry{window};
    EXPECT_EQ(count_all_trie_scan(episodes, db, Semantics::kNonOverlappedSubsequence, expiry),
              count_all(episodes, db, Semantics::kNonOverlappedSubsequence, expiry));
  }
}

TEST(TrieCounter, PrefixEpisodeAcceptsWhileExtensionContinues) {
  // <A,B> is a proper prefix of <A,B,C>: the short episode must accept and
  // restart at the internal trie node while the long one keeps waiting — the
  // per-token divergence the shared representation has to get right.
  const std::vector<Episode> episodes = {Episode({0, 1}), Episode({0, 1, 2}), Episode({0})};
  const Sequence db = {0, 1, 0, 1, 2, 0, 2, 1, 2};
  const auto expected = count_all(episodes, db, Semantics::kNonOverlappedSubsequence);
  EXPECT_EQ(count_all_trie_scan(episodes, db, Semantics::kNonOverlappedSubsequence),
            expected);
  EXPECT_EQ(expected, (std::vector<std::int64_t>{3, 2, 3}));
}

TEST(TrieCounter, RepeatedSymbolPrefixConsumesOneEventPerStep) {
  // <A,A> and <A,A,A> share the repeated-symbol prefix: the re-file of the
  // advanced token must land in the swapped-out bucket's replacement, never
  // double-stepping on one event.
  const std::vector<Episode> episodes = {Episode({0, 0}), Episode({0, 0, 0})};
  const Sequence db = {0, 0, 0, 0, 0, 0, 0};
  const auto counts = count_all_trie_scan(episodes, db, Semantics::kNonOverlappedSubsequence);
  EXPECT_EQ(counts, count_all(episodes, db, Semantics::kNonOverlappedSubsequence));
  EXPECT_EQ(counts, (std::vector<std::int64_t>{3, 2}));
}

TEST(TrieCounter, ExpiredTokenRestartsOnAFreshFirstSymbol) {
  // Shared prefix <A,B> with window 2 over "A C C A B ...": the first match
  // expires mid-prefix; both episodes must catch the second A together.
  const std::vector<Episode> episodes = {Episode({0, 1, 2}), Episode({0, 1, 3})};
  const Sequence db = {0, 2, 2, 0, 1, 2, 3};
  const ExpiryPolicy expiry{3};
  const auto expected = count_all(episodes, db, Semantics::kNonOverlappedSubsequence, expiry);
  EXPECT_EQ(count_all_trie_scan(episodes, db, Semantics::kNonOverlappedSubsequence, expiry),
            expected);
}

TEST(TrieCounter, HugeExpiryWindowDoesNotOverflow) {
  const std::vector<Episode> episodes = {Episode({0, 1}), Episode({0, 1, 2}),
                                         Episode({1, 0, 1})};
  const Sequence db = {0, 2, 1, 0, 1, 1, 0, 2};
  const ExpiryPolicy huge{std::numeric_limits<std::int64_t>::max()};
  EXPECT_EQ(count_all_trie_scan(episodes, db, Semantics::kNonOverlappedSubsequence, huge),
            count_all(episodes, db, Semantics::kNonOverlappedSubsequence, huge));
}

TEST(TrieCounter, DuplicateEpisodesCountIndependently) {
  const std::vector<Episode> episodes = {Episode({0, 1}), Episode({0, 1}), Episode({1})};
  const Sequence db = {0, 1, 0, 1, 1};
  EXPECT_EQ(count_all_trie_scan(episodes, db, Semantics::kNonOverlappedSubsequence),
            (std::vector<std::int64_t>{2, 2, 3}));
}

TEST(TrieCounter, EmptyInputsHandled) {
  const Sequence db = {0, 1, 2};
  EXPECT_TRUE(count_all_trie_scan({}, db, Semantics::kNonOverlappedSubsequence).empty());
  const std::vector<Episode> episodes = {Episode({0, 1})};
  EXPECT_EQ(count_all_trie_scan(episodes, {}, Semantics::kNonOverlappedSubsequence),
            (std::vector<std::int64_t>{0}));
  EXPECT_DOUBLE_EQ(prefix_compression({}), 1.0);
}

TEST(TrieCounter, ContiguousRestartDensePathMatchesSerial) {
  Rng rng(77);
  const Alphabet alphabet(5);
  const auto db = data::markov_database(alphabet, 3000, 0.5, 123);
  const auto episodes = random_episodes(rng, 5, 25, 3);
  for (const std::int64_t window : {std::int64_t{0}, std::int64_t{4}}) {
    EXPECT_EQ(count_all_trie_scan(episodes, db, Semantics::kContiguousRestart,
                                  ExpiryPolicy{window}),
              count_all(episodes, db, Semantics::kContiguousRestart, ExpiryPolicy{window}));
  }
}

TEST(TrieCounter, BackendAndFactoryExposeTheEngine) {
  TrieCpuBackend backend;
  EXPECT_EQ(backend.name(), "cpu-trie-scan");
  const std::vector<Episode> episodes = {Episode({0, 1}), Episode({0, 2})};
  const Sequence db = {0, 1, 0, 2, 0, 1};
  CountRequest request;
  request.database = db;
  request.episodes = episodes;
  request.semantics = Semantics::kNonOverlappedSubsequence;
  const auto result = backend.count(request);
  EXPECT_EQ(result.counts, count_all(episodes, db, request.semantics, request.expiry));

  const auto by_name = make_cpu_backend("cpu-trie-scan");
  ASSERT_NE(by_name, nullptr);
  EXPECT_EQ(by_name->name(), "cpu-trie-scan");
  EXPECT_NE(make_cpu_backend("trie-scan"), nullptr);  // unprefixed alias
}

TEST(EpisodeTrie, SubtreeRangesCoverSortedOrder) {
  const std::vector<Episode> episodes = {Episode({1, 2}), Episode({0, 1, 2}), Episode({0, 1}),
                                         Episode({1, 2}), Episode({0, 3})};
  const EpisodeTrie trie(episodes);
  // Sorted order: <0,1>, <0,1,2>, <0,3>, <1,2>, <1,2>.
  EXPECT_EQ(trie.order().size(), 5u);
  EXPECT_EQ(trie.root().lo, 0u);
  EXPECT_EQ(trie.root().hi, 5u);
  const auto& zero = trie.node(trie.root_child(0));
  EXPECT_EQ(zero.lo, 0u);
  EXPECT_EQ(zero.hi, 3u);
  const auto& one = trie.node(trie.root_child(1));
  EXPECT_EQ(one.lo, 3u);
  EXPECT_EQ(one.hi, 5u);
  EXPECT_EQ(trie.root_child(7), 0u);  // absent first symbol -> root sentinel
  // Distinct prefixes: 0, 01, 012, 03, 1, 12 -> 6 nodes below the root; the
  // duplicated <1,2> shares everything.
  EXPECT_EQ(trie.node_count(), 7u);
  EXPECT_DOUBLE_EQ(prefix_compression(episodes), 6.0 / 11.0);
}

}  // namespace
}  // namespace gm::core

// Public counting-backend factory: everything needed to name a backend on a
// command line (or in a service session config) and construct it.
//
// Promoted out of bench_support/paper_setup so real clients — gminer_cli, the
// examples, MiningSession — pick backends without linking the benchmark
// harness; gm::bench keeps thin deprecated aliases for old call sites.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/counting.hpp"
#include "kernels/mining_kernels.hpp"
#include "planner/planner.hpp"

namespace gm::service {

/// Everything needed to name a counting backend on a command line.
struct BackendSpec {
  /// "cpu-serial" | "cpu-parallel" | "cpu-sharded" | "cpu-single-scan" |
  /// "distrib" | "distrib-gpu" | "gpusim" | "auto" (unprefixed cpu aliases
  /// accepted).  "auto" plans the formulation per counting level
  /// (planner::AutoBackend): `card` names the device its GPU candidates are
  /// scored for and `threads` its CPU worker budget; `launch` is ignored
  /// (the planner sweeps algorithms and threads-per-block itself).
  std::string name = "gpusim";
  int threads = 0;  ///< CPU backends: 0 = hardware concurrency
  std::string card = "gtx280";
  kernels::MiningLaunchParams launch = {};  ///< gpusim only
  /// "auto" only: path of a fitted calibration profile (see calib/ and
  /// `backend_shootout --fit-calibration`) whose constants replace the
  /// shipped cost-model defaults the planner scores with.  Empty = shipped.
  std::string calibration = {};
  /// "distrib"/"distrib-gpu": shard/device count (0 = hardware concurrency
  /// for host workers, 2 cards — the GX2 — for the gpu flavor).  "auto":
  /// shards > 0 opens the planner's device axis, scoring distrib candidates
  /// at every count in 1..shards.  Other backends ignore it.
  int shards = 0;
};

/// Construct the backend a spec names.  Throws gm::PreconditionError for an
/// unknown name, listing the valid ones.
[[nodiscard]] std::unique_ptr<core::CountingBackend> make_backend(const BackendSpec& spec);

/// The names make_backend accepts (for --help text and shootout sweeps).
[[nodiscard]] std::vector<std::string_view> backend_names();

/// The planner options a spec implies: the device its card names, its CPU
/// thread budget, and (when set) its calibration profile applied on top of
/// the shipped cost constants.  This is what "auto" constructs AutoBackend
/// with; MiningSession uses the same options for admission-control
/// predictions so the planner scoring requests is the planner running them.
[[nodiscard]] planner::PlannerOptions planner_options_for(const BackendSpec& spec);

}  // namespace gm::service

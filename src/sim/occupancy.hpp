// Occupancy calculator: how many blocks of a given launch can be resident on
// one SM simultaneously, and which hardware limit binds.
//
// This mirrors the NVIDIA CUDA Occupancy Calculator the paper discusses in
// section 6 (and improves on it: the cost model also accounts for how many
// SMs are busy, which the paper notes the official calculator ignores —
// "30 multiprocessors of occupancy 66% might perform better than 15
// multiprocessors at 100%").
#pragma once

#include <string>

#include "sim/device_spec.hpp"
#include "sim/launch.hpp"

namespace gpusim {

/// Which per-SM resource capped the number of active blocks.
enum class OccupancyLimiter {
  kThreadsPerSm,
  kBlocksPerSm,
  kWarpsPerSm,
  kRegisters,
  kSharedMemory,
  kGridTooSmall,  ///< fewer blocks in the grid than the hardware could host
};

[[nodiscard]] std::string to_string(OccupancyLimiter limiter);

/// Result of the occupancy computation for one (device, launch) pair.
struct Occupancy {
  int active_blocks_per_sm = 0;  ///< co-resident blocks on one SM
  int active_warps_per_sm = 0;
  int active_threads_per_sm = 0;
  /// active warps / max warps, in [0, 1]; the official calculator's metric.
  double warp_occupancy = 0.0;
  OccupancyLimiter limiter = OccupancyLimiter::kBlocksPerSm;

  /// Blocks simultaneously resident across the whole device.
  int concurrent_blocks_device = 0;
  /// Number of SMs that receive at least one block in the first wave.
  int busy_sms = 0;
  /// ceil(total_blocks / concurrent_blocks_device): full scheduling waves.
  int waves = 0;
};

/// Compute occupancy; throws gm::DeviceError if the launch is not runnable at
/// all (block too large, shared memory over per-block limit, zero registers
/// fit, ...).
[[nodiscard]] Occupancy compute_occupancy(const DeviceSpec& device, const LaunchConfig& launch);

/// Warps needed to hold `threads` threads (ceiling division by warp size).
[[nodiscard]] int warps_for_threads(const DeviceSpec& device, std::int64_t threads);

}  // namespace gpusim

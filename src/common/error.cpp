#include "common/error.hpp"

#include <sstream>

namespace gm {
namespace {

std::string format(std::string_view kind, std::string_view message,
                   const std::source_location& loc) {
  std::ostringstream os;
  os << kind << ": " << message << " [" << loc.file_name() << ":" << loc.line() << " "
     << loc.function_name() << "]";
  return os.str();
}

}  // namespace

std::string_view error_code_name(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kUnknown: return "unknown";
    case ErrorCode::kUsage: return "usage";
    case ErrorCode::kInvalidConfig: return "invalid_config";
    case ErrorCode::kPrecondition: return "precondition";
    case ErrorCode::kInvariant: return "invariant";
    case ErrorCode::kDevice: return "device";
    case ErrorCode::kCapability: return "capability";
    case ErrorCode::kAdmissionRejected: return "admission_rejected";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kShutdown: return "shutdown";
  }
  return "unknown";
}

void raise_precondition(std::string_view message, std::source_location loc) {
  raise_precondition(message, ErrorCode::kPrecondition, loc);
}

void raise_precondition(std::string_view message, ErrorCode code, std::source_location loc) {
  throw PreconditionError(format("precondition violated", message, loc), code);
}

void raise_invariant(std::string_view message, std::source_location loc) {
  throw InvariantError(format("invariant violated", message, loc));
}

void raise_device(std::string_view message, std::source_location loc) {
  throw DeviceError(format("device error", message, loc));
}

}  // namespace gm

#include "bench_support/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/error.hpp"

namespace gm::bench {
namespace {

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

void JsonWriter::before_value() {
  if (stack_.empty()) {
    gm::expects(out_.empty(), "JSON document already holds a complete top-level value");
    return;
  }
  if (stack_.back() == Scope::kObject) {
    gm::expects(pending_key_, "JSON object values need a key() first");
    pending_key_ = false;
    return;
  }
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  gm::expects(!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_,
              "unbalanced JSON end_object");
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  gm::expects(!stack_.empty() && stack_.back() == Scope::kArray, "unbalanced JSON end_array");
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  gm::expects(!stack_.empty() && stack_.back() == Scope::kObject && !pending_key_,
              "JSON key() belongs inside an object, once per value");
  if (has_items_.back()) out_ += ',';
  has_items_.back() = true;
  append_escaped(out_, name);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  append_escaped(out_, text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  if (!std::isfinite(number)) {
    out_ += "null";  // JSON has no inf/nan
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", number);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  out_ += std::to_string(number);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() const {
  gm::expects(stack_.empty(), "JSON document has unclosed containers");
  return out_;
}

void JsonWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  gm::expects(file.good(), "cannot open '" + path + "' for writing");
  file << str() << '\n';
  file.close();
  gm::expects(file.good(), "failed writing '" + path + "'");
}

}  // namespace gm::bench

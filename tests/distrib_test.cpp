// Distribution-layer tests: the exact cold-scan fold, the weighted shard
// plan, the work-stealing scheduler (exactly-once execution, steals under
// skew), DistribBackend's bit-exact equivalence with the serial reference
// across semantics x expiry x shard counts x steal granularity, and the
// relocated episode jobs (the block-level job is now exact under expiry,
// closing the seed-era overlap-rescan approximation).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/candidate_gen.hpp"
#include "core/multi_counter.hpp"
#include "core/scan_checkpoint.hpp"
#include "core/segment_counter.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "distrib/distrib_backend.hpp"
#include "distrib/episode_job.hpp"
#include "distrib/scale_model.hpp"
#include "distrib/scheduler.hpp"
#include "distrib/shard_plan.hpp"
#include "distrib/stream_fold.hpp"
#include "kernels/mining_kernels.hpp"

namespace gm::distrib {
namespace {

using core::Alphabet;
using core::Episode;
using core::ExpiryPolicy;
using core::Semantics;

std::vector<Episode> random_episodes(Rng& rng, int count, int max_level, int alphabet) {
  std::vector<Episode> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto level = rng.between(1, max_level);
    std::vector<core::Symbol> symbols;
    for (std::int64_t k = 0; k < level; ++k) {
      symbols.push_back(static_cast<core::Symbol>(rng.below(static_cast<std::uint64_t>(alphabet))));
    }
    out.emplace_back(std::move(symbols));
  }
  return out;
}

// --- core primitive: exact cold-scan fold ----------------------------------

TEST(FoldColdScans, ExactOnAdversarialSmallInputs) {
  Rng rng(20090808);
  for (int trial = 0; trial < 300; ++trial) {
    const auto size = rng.between(1, 40);
    core::Sequence db;
    for (std::int64_t i = 0; i < size; ++i) {
      db.push_back(static_cast<core::Symbol>(rng.below(3)));
    }
    const auto episodes = random_episodes(rng, 1, 4, 3);
    const auto symbols = episodes[0].symbols();
    const Semantics semantics = rng.chance(0.5) ? Semantics::kNonOverlappedSubsequence
                                                : Semantics::kContiguousRestart;
    const ExpiryPolicy expiry{rng.between(0, 3) == 0 ? 0 : rng.between(1, size + 2)};
    const auto chunks = static_cast<int>(rng.between(1, 6));
    const auto bounds = core::chunk_boundaries(size, chunks);

    std::vector<core::SegmentOutcome> cold;
    for (int c = 0; c < chunks; ++c) {
      cold.push_back(core::scan_segment(symbols, semantics, expiry, db,
                                        bounds[static_cast<std::size_t>(c)],
                                        bounds[static_cast<std::size_t>(c) + 1], 0, 0));
    }
    const auto folded = core::fold_cold_scans(symbols, semantics, expiry, db, bounds, cold);
    const auto expected = core::count_occurrences(episodes[0], db, semantics, expiry);
    ASSERT_EQ(folded, expected)
        << "trial " << trial << " |DB|=" << size << " chunks=" << chunks
        << " window=" << expiry.window << " semantics=" << core::to_string(semantics);
  }
}

TEST(SingleScanExits, MatchTheSerialAutomatonConfiguration) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    const auto size = rng.between(1, 120);
    core::Sequence db;
    for (std::int64_t i = 0; i < size; ++i) {
      db.push_back(static_cast<core::Symbol>(rng.below(4)));
    }
    const auto episodes = random_episodes(rng, 8, 3, 4);
    const Semantics semantics = rng.chance(0.5) ? Semantics::kNonOverlappedSubsequence
                                                : Semantics::kContiguousRestart;
    const ExpiryPolicy expiry{rng.chance(0.5) ? std::int64_t{0} : rng.between(1, 9)};

    std::vector<core::ScanExit> exits;
    const auto counts = core::count_all_single_scan(episodes, db, semantics, expiry, exits);
    ASSERT_EQ(exits.size(), episodes.size());
    for (std::size_t e = 0; e < episodes.size(); ++e) {
      core::EpisodeAutomaton automaton(episodes[e].symbols(), semantics, expiry);
      std::int64_t count = 0;
      for (std::size_t i = 0; i < db.size(); ++i) {
        if (automaton.step(db[i], static_cast<std::int64_t>(i))) ++count;
      }
      EXPECT_EQ(counts[e], count);
      EXPECT_EQ(exits[e].state, automaton.state()) << "trial " << trial << " episode " << e;
      if (automaton.state() > 0) {
        EXPECT_EQ(exits[e].first_match_pos, automaton.first_match_pos());
      }
    }
  }
}

// --- shard plan -------------------------------------------------------------

TEST(ShardPlan, UnweightedEqualsEqualSymbolChunking) {
  const Alphabet alphabet(4);
  const auto db = data::uniform_database(alphabet, 1003, 7);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);
  const auto plan = make_shard_plan(db, episodes, {3, 4, /*weighted=*/false});
  EXPECT_EQ(plan.chunk_bounds, core::chunk_boundaries(1003, 12));
  EXPECT_EQ(plan.chunk_count(), 12);
  EXPECT_EQ(plan.home_shard(0), 0);
  EXPECT_EQ(plan.home_shard(11), 2);
}

TEST(ShardPlan, WeightedCutsShrinkDrainHeavyChunks) {
  // First half of the stream is all symbol 0 — which every episode contains —
  // so its estimated drain work dwarfs the second half's (symbol 3 appears in
  // no episode).  Weighted cuts must put the midpoint boundary well before
  // the symbol midpoint.
  core::Sequence db;
  for (int i = 0; i < 2000; ++i) db.push_back(0);
  for (int i = 0; i < 2000; ++i) db.push_back(3);
  std::vector<Episode> episodes;
  episodes.emplace_back(core::Sequence{0, 1});
  episodes.emplace_back(core::Sequence{0, 2});
  episodes.emplace_back(core::Sequence{1, 0});

  const auto plan = make_shard_plan(db, episodes, {2, 1, /*weighted=*/true});
  ASSERT_EQ(plan.chunk_count(), 2);
  EXPECT_EQ(plan.chunk_bounds.front(), 0);
  EXPECT_EQ(plan.chunk_bounds.back(), 4000);
  EXPECT_LT(plan.chunk_bounds[1], 1500);
  // The weight estimate itself should be near-balanced across the cut.
  EXPECT_NEAR(plan.chunk_weight[0], plan.chunk_weight[1], plan.chunk_weight[0] * 0.1);
}

// --- scheduler --------------------------------------------------------------

TEST(ShardScheduler, EveryChunkRunsExactlyOnce) {
  const Alphabet alphabet(5);
  const auto db = data::zipf_database(alphabet, 5000, 1.0, 3);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);
  const auto plan = make_shard_plan(db, episodes, {8, 4});
  std::vector<std::atomic<int>> runs(static_cast<std::size_t>(plan.chunk_count()));
  for (auto& r : runs) r.store(0);

  const auto stats = run_sharded(plan, [&](int, int chunk, std::int64_t begin,
                                           std::int64_t end) {
    EXPECT_EQ(begin, plan.chunk_bounds[static_cast<std::size_t>(chunk)]);
    EXPECT_EQ(end, plan.chunk_bounds[static_cast<std::size_t>(chunk) + 1]);
    runs[static_cast<std::size_t>(chunk)].fetch_add(1);
  });

  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
  ASSERT_EQ(stats.chunks_by_worker.size(), 8u);
  std::int64_t total = 0;
  for (const auto n : stats.chunks_by_worker) total += n;
  EXPECT_EQ(total, plan.chunk_count());
}

TEST(ShardScheduler, SkewedShardsProvokeSteals) {
  // All the real work parked on shard 0's chunks: the other three workers
  // finish their (trivial) home runs immediately and must steal shard 0's
  // remaining chunks while its owner sleeps through the first one.
  ShardPlan plan;
  plan.shards = 4;
  plan.steal_granularity = 4;
  for (int c = 0; c <= 16; ++c) plan.chunk_bounds.push_back(c);
  plan.chunk_weight.assign(16, 1.0);

  std::vector<std::atomic<int>> runs(16);
  for (auto& r : runs) r.store(0);
  const auto stats = run_sharded(plan, [&](int, int chunk, std::int64_t, std::int64_t) {
    runs[static_cast<std::size_t>(chunk)].fetch_add(1);
    if (chunk < 4) std::this_thread::sleep_for(std::chrono::milliseconds(25));
  });

  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
  EXPECT_GT(stats.steals, 0);
}

// --- DistribBackend ---------------------------------------------------------

TEST(DistribBackendProperty, BitExactVsSerialAcrossShardsSemanticsExpiry) {
  Rng rng(20090525);
  const Alphabet alphabet(6);
  const auto uniform = data::uniform_database(alphabet, 4001, 11);
  const auto zipf = data::zipf_database(alphabet, 4001, 1.0, 13);

  int trial = 0;
  for (const auto* db : {&uniform, &zipf}) {
    for (const Semantics semantics :
         {Semantics::kNonOverlappedSubsequence, Semantics::kContiguousRestart}) {
      for (const std::int64_t window : {std::int64_t{0}, std::int64_t{3}, std::int64_t{17},
                                        std::int64_t{4001}}) {
        for (const int shards : {1, 2, 3, 5, 16}) {
          const int granularity = 1 + trial % 4;
          const WorkerKind worker =
              trial % 3 == 0 ? WorkerKind::kSerial : WorkerKind::kSingleScan;
          ++trial;

          const auto episodes = random_episodes(rng, 24, 4, 6);
          const ExpiryPolicy expiry{window};
          const auto expected = core::count_all(episodes, *db, semantics, expiry);

          DistribOptions options;
          options.shards = shards;
          options.steal_granularity = granularity;
          options.worker = worker;
          DistribBackend backend(options);
          core::CountRequest request;
          request.database = *db;
          request.episodes = episodes;
          request.semantics = semantics;
          request.expiry = expiry;
          const auto result = backend.count(request);
          ASSERT_EQ(result.counts, expected)
              << "shards=" << shards << " granularity=" << granularity
              << " worker=" << to_string(worker) << " window=" << window
              << " semantics=" << core::to_string(semantics);
          EXPECT_EQ(backend.last_run().chunks, shards * granularity);
          // The fold's boundary fix-up replays at most the whole database per
          // episode (lockstep convergence usually stops far earlier), and a
          // single-chunk plan has no boundaries to fix at all.
          const std::int64_t rescanned = backend.last_run().rescanned_symbols;
          EXPECT_GE(rescanned, 0);
          EXPECT_LE(rescanned, static_cast<std::int64_t>(episodes.size()) *
                                   static_cast<std::int64_t>(db->size()));
          if (shards * granularity == 1) {
            EXPECT_EQ(rescanned, 0);
          }
        }
      }
    }
  }
}

TEST(DistribBackend, NameAndTelemetryDescribeTheRun) {
  DistribOptions options;
  options.shards = 4;
  options.steal_granularity = 2;
  DistribBackend backend(options);
  EXPECT_EQ(backend.name(), "distrib-x4[cpu-single-scan]");

  const Alphabet alphabet(4);
  const auto db = data::uniform_database(alphabet, 800, 3);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);
  core::CountRequest request;
  request.database = db;
  request.episodes = episodes;
  (void)backend.count(request);
  EXPECT_EQ(backend.last_run().chunks, 8);
  // Eight chunks means seven boundaries to reconcile: with level-2 episodes on
  // a dense stream some automaton is always mid-match at a cut, so the fold
  // must replay a nonzero (but bounded) number of symbols.
  EXPECT_GT(backend.last_run().rescanned_symbols, 0);
  EXPECT_LE(backend.last_run().rescanned_symbols,
            static_cast<std::int64_t>(episodes.size()) *
                static_cast<std::int64_t>(db.size()));
  std::int64_t total = 0;
  for (const auto n : backend.last_run().steal.chunks_by_worker) total += n;
  EXPECT_EQ(total, 8);
}

TEST(DistribBackend, SimulatedCardsScaleAndStayExact) {
  const Alphabet alphabet(6);
  const auto db = data::uniform_database(alphabet, 20000, 17);
  const auto episodes = core::all_distinct_episodes(alphabet, 2);
  const auto expected =
      core::count_all(episodes, db, Semantics::kNonOverlappedSubsequence);

  auto run_with = [&](int shards) {
    DistribOptions options;
    options.shards = shards;
    options.steal_granularity = 2;
    options.worker = WorkerKind::kGpuSim;
    options.launch.threads_per_block = 128;
    DistribBackend backend(options);
    EXPECT_EQ(backend.max_level(), kernels::kMaxLevel);
    core::CountRequest request;
    request.database = db;
    request.episodes = episodes;
    const auto result = backend.count(request);
    EXPECT_EQ(result.counts, expected) << shards << " cards";
    return result.simulated_kernel_ms;
  };

  const double one_card = run_with(1);
  const double two_cards = run_with(2);
  EXPECT_GT(two_cards, 0.0);
  // Chunks are pinned to their owning card in the device-time model, so two
  // cards split the stream and the slowest card carries about half the work.
  EXPECT_GT(one_card / two_cards, 1.5);
  EXPECT_LE(one_card / two_cards, 2.1);
}

// --- scale model ------------------------------------------------------------

TEST(ScaleModel, DatabaseAxisChargesMergeAndSplitsTheStream) {
  kernels::WorkloadSpec spec;
  spec.db_size = 100000;
  spec.episode_count = 500;
  spec.level = 2;
  spec.params.algorithm = kernels::Algorithm::kThreadTexture;
  spec.params.threads_per_block = 128;

  const auto device = gpusim::geforce_gtx_280();
  const auto one = predict_scaled_mining(device, 1, spec, ShardAxis::kDatabase);
  const auto four = predict_scaled_mining(device, 4, spec, ShardAxis::kDatabase);
  ASSERT_EQ(four.share_per_device.size(), 4u);
  EXPECT_EQ(four.share_per_device[0] + four.share_per_device[1] +
                four.share_per_device[2] + four.share_per_device[3],
            100000);
  EXPECT_GT(four.merge_ms, one.merge_ms);
  EXPECT_GT(one.total_ms / four.total_ms, 1.0);
  EXPECT_NEAR(four.imbalance, 1.0, 0.05);
}

// --- relocated episode jobs (block-level now exact under expiry) ------------

class EpisodeJobProperty : public ::testing::TestWithParam<int /*chunks*/> {};

TEST_P(EpisodeJobProperty, BothGranularitiesMatchTheOracleIncludingExpiry) {
  const int chunks = GetParam();
  const Alphabet alphabet(5);
  const auto db = data::uniform_database(alphabet, 3001, 77);

  for (int level = 1; level <= 3; ++level) {
    const auto episodes = core::all_distinct_episodes(alphabet, level);
    for (const std::int64_t window : {std::int64_t{0}, std::int64_t{5}, std::int64_t{29}}) {
      const ExpiryPolicy expiry{window};
      const auto expected =
          core::count_all(episodes, db, Semantics::kNonOverlappedSubsequence, expiry);

      EpisodeCountOptions options;
      options.threads = 2;
      options.chunks = chunks;
      options.expiry = expiry;
      EXPECT_EQ(count_episodes_thread_level(db, episodes, options), expected)
          << "thread-level, L" << level << " window " << window;
      EXPECT_EQ(count_episodes_block_level(db, episodes, options), expected)
          << "block-level, L" << level << " chunks " << chunks << " window " << window;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EpisodeJobProperty, ::testing::Values(1, 4, 13, 64));

TEST(EpisodeJob, BlockLevelExpiryBitExactRandomized) {
  // The seed-era block-level job was only approximate under expiry (overlap
  // rescan); the fold-based one must match the serial reference exactly on
  // randomized (semantics x expiry x chunks) draws.
  Rng rng(8);
  const Alphabet alphabet(4);
  for (int trial = 0; trial < 20; ++trial) {
    const auto size = rng.between(200, 2200);
    const auto db = data::uniform_database(alphabet, size, 100 + trial);
    const auto episodes = random_episodes(rng, 12, 3, 4);
    EpisodeCountOptions options;
    options.semantics = rng.chance(0.5) ? Semantics::kNonOverlappedSubsequence
                                        : Semantics::kContiguousRestart;
    options.expiry = ExpiryPolicy{rng.between(1, 40)};
    options.chunks = static_cast<int>(rng.between(1, 33));
    options.threads = 2;
    const auto expected = core::count_all(episodes, db, options.semantics, options.expiry);
    ASSERT_EQ(count_episodes_block_level(db, episodes, options), expected)
        << "trial " << trial << " chunks " << options.chunks << " window "
        << options.expiry.window;
  }
}

TEST(DistribStreamFold, OutOfOrderDeliveryIsBitExactWithOneScan) {
  Rng rng(0x0DD0);
  const Semantics all_semantics[] = {Semantics::kNonOverlappedSubsequence,
                                     Semantics::kContiguousRestart};
  for (int trial = 0; trial < 10; ++trial) {
    const auto alphabet_size = static_cast<int>(rng.between(3, 10));
    const Alphabet alphabet(alphabet_size);
    const auto db = data::uniform_database(alphabet, 1200, 500 + trial);
    const auto episodes = random_episodes(rng, 10, 4, alphabet_size);
    const Semantics semantics = all_semantics[trial % 2];
    const ExpiryPolicy expiry{rng.between(0, 20)};
    const auto expected = core::count_all(episodes, db, semantics, expiry);

    // Slice the stream into uneven chunks, cold-scan each, shuffle delivery.
    std::vector<ChunkScan> chunks;
    std::int64_t begin = 0;
    while (begin < static_cast<std::int64_t>(db.size())) {
      const auto len = std::min<std::int64_t>(
          static_cast<std::int64_t>(rng.between(1, 300)),
          static_cast<std::int64_t>(db.size()) - begin);
      chunks.push_back(cold_scan_chunk(
          episodes, semantics, expiry,
          {db.begin() + begin, db.begin() + begin + len}, begin));
      begin += len;
    }
    for (std::size_t i = chunks.size(); i > 1; --i) {
      std::swap(chunks[i - 1], chunks[rng.below(i)]);
    }

    StreamAssembler assembler(episodes, semantics, expiry);
    for (ChunkScan& chunk : chunks) (void)assembler.deliver(std::move(chunk));
    EXPECT_EQ(assembler.pending(), 0u);
    EXPECT_EQ(assembler.high_water(), static_cast<std::int64_t>(db.size()));
    ASSERT_EQ(assembler.counts(), expected)
        << "trial " << trial << " window " << expiry.window << " chunks " << chunks.size();

    // The assembled prefix checkpoints like any scan: digest matches a
    // straight-line digest of the stream, and the checkpoint restores into
    // the incremental engine.
    const core::ScanCheckpoint checkpoint = assembler.checkpoint();
    EXPECT_EQ(checkpoint.prefix_digest,
              core::stream_digest_extend(core::stream_digest_seed(), db));
    EXPECT_EQ(core::StreamScan(checkpoint).counts(), expected);
  }
}

TEST(DistribStreamFold, GapsHoldCountsAtTheContiguousPrefix) {
  Rng rng(0x9A9);
  const Alphabet alphabet(5);
  const auto db = data::uniform_database(alphabet, 600, 11);
  const auto episodes = random_episodes(rng, 8, 3, 5);
  const Semantics semantics = Semantics::kNonOverlappedSubsequence;
  const ExpiryPolicy expiry{7};

  auto slice = [&](std::int64_t lo, std::int64_t hi) {
    return cold_scan_chunk(episodes, semantics, expiry, {db.begin() + lo, db.begin() + hi},
                           lo);
  };

  StreamAssembler assembler(episodes, semantics, expiry);
  EXPECT_EQ(assembler.deliver(slice(0, 200)), 1u);
  EXPECT_EQ(assembler.deliver(slice(400, 600)), 0u);  // parked behind the gap
  EXPECT_EQ(assembler.pending(), 1u);
  EXPECT_EQ(assembler.high_water(), 200);
  const core::Sequence head(db.begin(), db.begin() + 200);
  EXPECT_EQ(assembler.counts(), core::count_all(episodes, head, semantics, expiry));

  // Filling the gap folds the parked chunk too, in one delivery.
  EXPECT_EQ(assembler.deliver(slice(200, 400)), 2u);
  EXPECT_EQ(assembler.pending(), 0u);
  EXPECT_EQ(assembler.counts(), core::count_all(episodes, db, semantics, expiry));

  // Overlapping or replayed chunks are refused loudly.
  EXPECT_THROW((void)assembler.deliver(slice(300, 500)), gm::Error);
}

}  // namespace
}  // namespace gm::distrib

// Figure 6: impact of problem size (episode level) on the GTX 280 for each
// algorithm — execution time relative to level 1 vs. threads per block.
// The paper's panels are 6(a)-(d); Algorithm 5 (block-bucketed, not in the
// paper) is printed as an explicitly-labelled extension panel.
#include <iostream>

#include "bench_support/paper_setup.hpp"
#include "bench_support/report.hpp"
#include "kernels/mining_kernels.hpp"

int main() {
  using gm::bench::paper_time_ms;
  using gm::kernels::Algorithm;

  const auto device = gpusim::geforce_gtx_280();
  const auto sweep = gm::bench::paper_thread_sweep();

  std::cout << "Figure 6: execution time relative to level 1 on the GTX 280\n";
  for (const Algorithm algorithm : gm::kernels::all_algorithms()) {
    const bool in_paper = algorithm_number(algorithm) <= 4;
    const std::string panel =
        in_paper ? "Fig 6(" +
                       std::string(1, static_cast<char>('a' + algorithm_number(algorithm) - 1)) +
                       ")"
                 : "Fig 6 extension (not in paper)";
    gm::bench::SeriesTable table(panel + ": " + to_string(algorithm) +
                                     " — time relative to level 1",
                                 "tpb", sweep);
    std::vector<double> level1;
    level1.reserve(sweep.size());
    for (const int tpb : sweep) level1.push_back(paper_time_ms(device, algorithm, 1, tpb));
    for (int level = 1; level <= 3; ++level) {
      gm::bench::Series series;
      series.label = "Level" + std::to_string(level);
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        series.values.push_back(paper_time_ms(device, algorithm, level, sweep[i]) /
                                level1[i]);
      }
      table.add(std::move(series));
    }
    table.print();
  }
  return 0;
}

// Integration tests: the simulated-GPU counting backend inside the miner,
// and the multi-device scale-model extension (distrib/scale_model.hpp).
#include <gtest/gtest.h>

#include "core/cpu_backend.hpp"
#include "core/miner.hpp"
#include "core/serial_counter.hpp"
#include "data/generators.hpp"
#include "kernels/gpu_backend.hpp"
#include "distrib/scale_model.hpp"

namespace gm::kernels {
namespace {

using core::Alphabet;

gpusim::EngineOptions fast_engine() {
  gpusim::EngineOptions opts;
  opts.host_threads = 2;
  opts.simulate_texture_cache = false;
  return opts;
}

TEST(SimGpuBackend, MinerMatchesCpuAcrossAlgorithms) {
  const Alphabet alphabet(6);
  const auto db = data::uniform_database(alphabet, 2000, 21);

  core::MinerConfig config;
  config.support_threshold = 0.001;
  config.max_level = 3;

  core::SerialCpuBackend cpu;
  const auto reference = core::mine_frequent_episodes(db, alphabet, cpu, config);

  for (const Algorithm algorithm : all_algorithms()) {
    MiningLaunchParams params;
    params.algorithm = algorithm;
    params.threads_per_block = 64;
    params.buffer_bytes = 512;
    SimGpuBackend gpu(gpusim::geforce_gtx_280(), params, {}, fast_engine());

    const auto mined = core::mine_frequent_episodes(db, alphabet, gpu, config);
    ASSERT_EQ(mined.total_frequent(), reference.total_frequent()) << to_string(algorithm);
    for (std::size_t i = 0; i < mined.frequent.size(); ++i) {
      EXPECT_EQ(mined.frequent[i].episode, reference.frequent[i].episode);
      EXPECT_EQ(mined.frequent[i].count, reference.frequent[i].count);
    }
    for (const auto& level : mined.levels) {
      EXPECT_GT(level.simulated_kernel_ms, 0.0);
    }
  }
}

TEST(SimGpuBackend, NameDescribesConfiguration) {
  MiningLaunchParams params;
  params.algorithm = Algorithm::kBlockTexture;
  params.threads_per_block = 96;
  SimGpuBackend gpu(gpusim::geforce_8800_gts_512(), params, {}, fast_engine());
  const auto name = gpu.name();
  EXPECT_NE(name.find("algo3"), std::string::npos);
  EXPECT_NE(name.find("t96"), std::string::npos);
  EXPECT_NE(name.find("8800"), std::string::npos);
}

TEST(SimGpuBackend, RequestSemanticsOverrideLaunchDefaults) {
  const Alphabet alphabet(4);
  const auto db = data::uniform_database(alphabet, 1500, 5);
  MiningLaunchParams params;
  params.algorithm = Algorithm::kThreadTexture;
  params.threads_per_block = 32;
  SimGpuBackend gpu(gpusim::geforce_gtx_280(), params, {}, fast_engine());

  const auto episodes = core::all_distinct_episodes(alphabet, 2);
  core::CountRequest request;
  request.database = db;
  request.episodes = episodes;
  request.semantics = core::Semantics::kContiguousRestart;
  const auto result = gpu.count(request);
  EXPECT_EQ(result.counts,
            core::count_all(request.episodes, db, core::Semantics::kContiguousRestart));
}

TEST(MultiGpu, TwoDiesNearlyHalveLargeProblems) {
  WorkloadSpec spec;
  spec.db_size = data::kPaperDatabaseSize;
  spec.episode_count = 15'600;
  spec.level = 3;
  spec.params.algorithm = Algorithm::kThreadTexture;
  spec.params.threads_per_block = 128;

  const auto gx2 = gpusim::geforce_9800_gx2();
  const auto one =
      distrib::predict_scaled_mining(gx2, 1, spec, distrib::ShardAxis::kEpisodes);
  const auto two =
      distrib::predict_scaled_mining(gx2, 2, spec, distrib::ShardAxis::kEpisodes);
  EXPECT_EQ(two.share_per_device.size(), 2u);
  EXPECT_EQ(two.share_per_device[0] + two.share_per_device[1], 15'600);
  EXPECT_GT(one.total_ms / two.total_ms, 1.5);
  EXPECT_LE(one.total_ms / two.total_ms, 2.05);
}

TEST(MultiGpu, SmallProblemsDoNotScale) {
  // 26 episodes at L1 underfill even one die: a second die barely helps
  // (there is no work to split once per-die launches dominate).
  WorkloadSpec spec;
  spec.db_size = data::kPaperDatabaseSize;
  spec.episode_count = 26;
  spec.level = 1;
  spec.params.algorithm = Algorithm::kThreadTexture;
  spec.params.threads_per_block = 32;

  const auto gx2 = gpusim::geforce_9800_gx2();
  const auto one =
      distrib::predict_scaled_mining(gx2, 1, spec, distrib::ShardAxis::kEpisodes);
  const auto two =
      distrib::predict_scaled_mining(gx2, 2, spec, distrib::ShardAxis::kEpisodes);
  EXPECT_LT(one.total_ms / two.total_ms, 1.2);
}

TEST(MultiGpu, MoreDiesThanEpisodes) {
  WorkloadSpec spec;
  spec.db_size = 10'000;
  spec.episode_count = 2;
  spec.level = 1;
  spec.params.algorithm = Algorithm::kThreadTexture;
  spec.params.threads_per_block = 32;
  const auto p = distrib::predict_scaled_mining(gpusim::geforce_gtx_280(), 4, spec,
                                                distrib::ShardAxis::kEpisodes);
  EXPECT_EQ(p.share_per_device, (std::vector<std::int64_t>{1, 1, 0, 0}));
  EXPECT_GT(p.total_ms, 0.0);
}

}  // namespace
}  // namespace gm::kernels

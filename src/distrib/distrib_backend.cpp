#include "distrib/distrib_backend.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/multi_counter.hpp"
#include "core/segment_counter.hpp"
#include "kernels/workload_model.hpp"

namespace gm::distrib {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

std::string to_string(WorkerKind kind) {
  switch (kind) {
    case WorkerKind::kSingleScan: return "cpu-single-scan";
    case WorkerKind::kSerial: return "cpu-serial";
    case WorkerKind::kGpuSim: return "gpusim";
  }
  return "?";
}

DistribOptions::DistribOptions() : device(gpusim::geforce_gtx_280()) {}

DistribBackend::DistribBackend(DistribOptions options) : options_(std::move(options)) {
  gm::expects(options_.shards >= 1, "need at least one shard");
  gm::expects(options_.steal_granularity >= 1, "need at least one chunk per shard");
}

std::string DistribBackend::name() const {
  return "distrib-x" + std::to_string(options_.shards) + "[" + to_string(options_.worker) +
         "]";
}

int DistribBackend::max_level() const {
  return options_.worker == WorkerKind::kGpuSim ? kernels::kMaxLevel : 0;
}

core::CountResult DistribBackend::count(const core::CountRequest& request) {
  const auto start = Clock::now();
  core::CountResult result;
  result.counts.assign(request.episodes.size(), 0);
  telemetry_ = {};

  // Validate on the calling thread: a worker-thread throw would terminate.
  int max_level_requested = 0;
  for (const auto& e : request.episodes) {
    gm::expects(!e.empty(), "cannot count an empty episode");
    max_level_requested = std::max(max_level_requested, e.level());
  }
  if (options_.worker == WorkerKind::kGpuSim) {
    gm::expects(max_level_requested <= kernels::kMaxLevel,
                "gpusim worker caps the level at kernels::kMaxLevel "
                "(frame-register episode staging)");
  }
  if (request.episodes.empty() || request.database.empty()) {
    result.host_ms = elapsed_ms(start);
    return result;
  }

  const ShardPlan plan = make_shard_plan(
      request.database, request.episodes,
      {options_.shards, options_.steal_granularity, options_.weighted_plan});
  const int chunks = plan.chunk_count();
  telemetry_.chunks = chunks;
  const std::size_t episode_count = request.episodes.size();

  // Map phase: every chunk scanned cold by whichever worker claims it.  All
  // writes are chunk-private slots read only after the scheduler joins; each
  // worker keeps one single-scan arena across every chunk it claims (reset()
  // re-files the automata but keeps all capacity), so the map phase allocates
  // per worker, not per chunk.
  std::vector<std::vector<core::SegmentOutcome>> cold(static_cast<std::size_t>(chunks));
  std::vector<std::optional<core::MultiCounter>> arenas(
      static_cast<std::size_t>(options_.shards));
  telemetry_.steal = run_sharded(plan, [&](int worker, int chunk, std::int64_t begin,
                                           std::int64_t end) {
    auto& out = cold[static_cast<std::size_t>(chunk)];
    out.assign(episode_count, {});
    if (options_.worker == WorkerKind::kSerial) {
      for (std::size_t e = 0; e < episode_count; ++e) {
        out[e] = core::scan_segment(request.episodes[e].symbols(), request.semantics,
                                    request.expiry, request.database, begin, end, 0, 0);
      }
      return;
    }
    // Single-scan engine on the chunk subspan: positions come back relative
    // to the chunk, and a cold scan is position-invariant (the automaton only
    // compares position differences), so normalizing the exit's first-match
    // position by the chunk offset yields the absolute-position outcome.
    const auto span =
        request.database.subspan(static_cast<std::size_t>(begin),
                                 static_cast<std::size_t>(end - begin));
    auto& arena = arenas[static_cast<std::size_t>(worker)];
    if (arena.has_value()) {
      arena->reset();
    } else {
      arena.emplace(request.episodes, request.semantics, request.expiry);
    }
    arena->advance_batch(span, 0);
    for (std::size_t e = 0; e < episode_count; ++e) {
      const core::EpisodeProgress p = arena->progress_of(e);
      out[e] = {p.count, p.state, p.first_pos + begin};
    }
  });

  // Reduce phase: exact fold of the cold outcomes in chunk order.
  std::vector<core::SegmentOutcome> per_episode(static_cast<std::size_t>(chunks));
  for (std::size_t e = 0; e < episode_count; ++e) {
    for (int c = 0; c < chunks; ++c) {
      per_episode[static_cast<std::size_t>(c)] = cold[static_cast<std::size_t>(c)][e];
    }
    std::int64_t rescanned = 0;
    result.counts[e] =
        core::fold_cold_scans(request.episodes[e].symbols(), request.semantics,
                              request.expiry, request.database, plan.chunk_bounds,
                              per_episode, &rescanned);
    telemetry_.rescanned_symbols += rescanned;
  }

  // Simulated cards: charge each chunk's analytic kernel time to the card
  // that OWNS it — the modeled deployment pins chunks to cards, so the
  // device-time prediction stays deterministic while host-side stealing only
  // accelerates the wall-clock simulation.  Cards run concurrently, so the
  // backend's device time is the slowest card's accumulated total (computed
  // after the join, so a model precondition throws on the calling thread).
  if (options_.worker == WorkerKind::kGpuSim) {
    int alphabet = 1;
    for (const core::Symbol s : request.database) {
      alphabet = std::max(alphabet, static_cast<int>(s) + 1);
    }
    const gpusim::CostModel model(options_.cost_params);
    std::vector<double> card_ms(static_cast<std::size_t>(options_.shards), 0.0);
    for (int c = 0; c < chunks; ++c) {
      const std::int64_t size = plan.chunk_bounds[static_cast<std::size_t>(c) + 1] -
                                plan.chunk_bounds[static_cast<std::size_t>(c)];
      if (size == 0) continue;
      kernels::WorkloadSpec spec;
      spec.db_size = size;
      spec.episode_count = static_cast<std::int64_t>(episode_count);
      spec.level = max_level_requested;
      spec.alphabet_size = alphabet;
      spec.params = options_.launch;
      spec.params.semantics = request.semantics;
      spec.params.expiry = request.expiry;
      card_ms[static_cast<std::size_t>(plan.home_shard(c))] +=
          kernels::predict_mining_time(options_.device, spec, model, options_.kernel_costs)
              .total_ms;
    }
    result.simulated_kernel_ms = *std::max_element(card_ms.begin(), card_ms.end());
  }

  result.host_ms = elapsed_ms(start);
  return result;
}

}  // namespace gm::distrib

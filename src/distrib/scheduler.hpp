// Work-stealing execution of a ShardPlan's chunk grid.
//
// One worker thread per shard; each drains its home run of chunks through a
// per-shard atomic cursor, then steals single chunks from the most-loaded
// shard until every cursor is exhausted.  Chunk claims are fetch_add races,
// so a chunk runs exactly once; workers write only chunk-private or
// worker-private slots and the caller reads after the join, keeping the whole
// run free of data races (the distrib tests run under TSan).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "distrib/shard_plan.hpp"

namespace gm::distrib {

/// Telemetry of one run_sharded call.
struct StealStats {
  /// Chunks executed by a worker other than their home shard's.
  std::int64_t steals = 0;
  /// Chunks each worker completed (size = plan.shards).
  std::vector<std::int64_t> chunks_by_worker;
};

/// Run every chunk of `plan` over `plan.shards` worker threads with dynamic
/// stealing.  `chunk_fn(worker, chunk, begin, end)` is called exactly once
/// per chunk, possibly from any worker thread; it must touch only state
/// private to that chunk or that worker.  Returns after all chunks ran.
StealStats run_sharded(
    const ShardPlan& plan,
    const std::function<void(int worker, int chunk, std::int64_t begin, std::int64_t end)>&
        chunk_fn);

}  // namespace gm::distrib

// Analytic timing model: (DeviceSpec, LaunchConfig, KernelProfile) -> time.
//
// The model reproduces the first-order mechanisms the paper's eight
// characterizations invoke:
//
//  * issue throughput — an SM retires one warp instruction per
//    `cycles_per_warp_instruction` (4) cycles; total issue demand grows with
//    resident warps (paper C1/C7: clock-bound thread-level kernels).
//  * dependent-chain latency — the mining kernels advance one database symbol
//    per fetch, so a warp cannot run faster than its serial memory chain; a
//    wave cannot finish before its slowest warp (explains why 2 warps and 12
//    warps can take the same time: latency is only hidden once enough warps
//    supply issue work — paper Fig 6(a) vs 6(b)).
//  * texture-cache behaviour — per-SM working set = concurrent streams x line
//    size; overflowing the 8 KB cache multiplies traffic (paper C5/C8).
//  * bandwidth contention — device bytes/cycle shared by busy SMs (C8).
//  * occupancy waves + per-block dispatch and per-barrier costs (C2/C3/C6).
//
// Blocks are dealt to SMs in launch order, `Occupancy::active_blocks_per_sm`
// at a time; a wave's time is the max over busy SMs of
//   max(issue, slowest-warp latency path, bandwidth) + sync + dispatch.
#pragma once

#include <string>

#include "sim/device_spec.hpp"
#include "sim/launch.hpp"
#include "sim/occupancy.hpp"
#include "sim/profile.hpp"

namespace gpusim {

/// Calibration constants of the timing model.  Defaults are first-principles
/// estimates for CC 1.x parts, refined against the paper's published curves
/// (see tests/sim/cost_model_calibration_test.cpp and EXPERIMENTS.md).
struct CostParams {
  /// Host-side launch + driver overhead added to every kernel (the paper
  /// measures invocation-to-return, which includes it).
  double kernel_launch_overhead_us = 20.0;
  /// SM-side cost of scheduling one block (fetch parameters, init barriers).
  double block_dispatch_cycles = 1500.0;
  /// Cost of one __syncthreads barrier for one block (drain + resync).
  double barrier_cycles = 120.0;
  /// Outstanding memory requests per warp.  1.0 models fully dependent
  /// chains (the FSM scan); larger values model unrolled/prefetched code.
  double mem_level_parallelism = 1.0;
  /// Concurrent per-lane strided streams per SM beyond which effective DRAM
  /// bandwidth degrades (row-buffer thrashing).
  double bandwidth_stream_knee = 2048.0;
};

/// Predicted execution time with its mechanism decomposition.
struct TimeBreakdown {
  double total_ms = 0.0;
  double launch_ms = 0.0;     ///< fixed launch overhead
  double issue_ms = 0.0;      ///< waves bound by warp-instruction issue
  double latency_ms = 0.0;    ///< waves bound by the slowest warp's chain
  double bandwidth_ms = 0.0;  ///< waves bound by device-memory bandwidth
  double sync_ms = 0.0;       ///< barrier costs
  double dispatch_ms = 0.0;   ///< block scheduling costs
  int waves = 0;
  std::string bound_by;       ///< dominant mechanism over the whole kernel

  [[nodiscard]] double milliseconds() const noexcept { return total_ms; }
};

class CostModel {
 public:
  explicit CostModel(CostParams params = {}) : params_(params) {}

  [[nodiscard]] const CostParams& params() const noexcept { return params_; }

  /// Predict the kernel's execution time on `device`.
  [[nodiscard]] TimeBreakdown predict(const DeviceSpec& device, const LaunchConfig& launch,
                                      const KernelProfile& profile) const;

 private:
  CostParams params_;
};

}  // namespace gpusim

#include "sim/cache.hpp"

#include <bit>

#include "common/error.hpp"

namespace gpusim {

namespace {
bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }
}  // namespace

CacheSim::CacheSim(int size_bytes, int line_bytes, int assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  gm::expects(is_pow2(line_bytes), "cache line size must be a power of two");
  gm::expects(assoc > 0, "associativity must be positive");
  gm::expects(size_bytes >= line_bytes * assoc, "cache must hold at least one set");
  sets_ = size_bytes / (line_bytes * assoc);
  gm::expects(is_pow2(sets_), "cache set count must be a power of two");
  line_shift_ = std::countr_zero(static_cast<unsigned>(line_bytes));
  set_mask_ = static_cast<std::uint64_t>(sets_) - 1;
  ways_.assign(static_cast<std::size_t>(sets_) * assoc_, Way{});
}

bool CacheSim::access(std::uint64_t address) noexcept {
  const std::uint64_t line = address >> line_shift_;
  const auto set = static_cast<std::size_t>(line & set_mask_);
  const std::uint64_t tag = line >> std::countr_zero(static_cast<unsigned long long>(sets_));
  Way* base = &ways_[set * static_cast<std::size_t>(assoc_)];

  ++stats_.accesses;
  ++tick_;

  Way* victim = base;
  for (int w = 0; w < assoc_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.last_use = tick_;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->last_use = tick_;
  ++stats_.misses;
  return false;
}

int CacheSim::access_range(std::uint64_t address, int bytes) noexcept {
  int misses = 0;
  const std::uint64_t first = address >> line_shift_;
  const std::uint64_t span = static_cast<std::uint64_t>(bytes > 0 ? bytes - 1 : 0);
  const std::uint64_t last = (address + span) >> line_shift_;
  for (std::uint64_t line = first; line <= last; ++line) {
    if (!access(line << line_shift_)) ++misses;
  }
  return misses;
}

void CacheSim::reset() noexcept {
  for (auto& w : ways_) w = Way{};
  stats_ = Stats{};
  tick_ = 0;
}

}  // namespace gpusim

#include "service/service.hpp"

#include <string>
#include <utility>

namespace gm::service {
namespace {

double since_ms(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t)
      .count();
}

}  // namespace

MiningService::MiningService(std::shared_ptr<MiningSession> session, ServiceOptions options)
    : session_(std::move(session)), options_(options), paused_(options.start_paused) {
  gm::expects(session_ != nullptr, "service needs a session");
  gm::expects(options_.workers >= 1, "service needs at least one worker");
  gm::expects(options_.max_batch >= 1, "max_batch must be >= 1");
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MiningService::~MiningService() { stop(); }

void MiningService::record(Disposition disposition) {
  // Caller holds mutex_.
  switch (disposition) {
    case Disposition::kServed: ++stats_.served; break;
    case Disposition::kCached: ++stats_.cached; break;
    case Disposition::kTruncated:
      ++stats_.served;
      ++stats_.truncated;
      break;
    case Disposition::kRejected: ++stats_.rejected; break;
  }
}

std::future<MineResponse> MiningService::submit(MineRequest request) {
  MineJob job{std::move(request), {}, Clock::now()};
  std::future<MineResponse> future = job.promise.get_future();
  std::unique_lock lock(mutex_);
  ++stats_.submitted;
  if (stopping_ || queue_.size() >= options_.max_queue) {
    MineResponse response;
    response.rejection =
        stopping_ ? Rejection{ErrorCode::kShutdown, "service is stopping"}
                  : Rejection{ErrorCode::kQueueFull,
                              "queue depth " + std::to_string(queue_.size()) +
                                  " at capacity " + std::to_string(options_.max_queue) +
                                  " — retry later or raise ServiceOptions.max_queue"};
    ++stats_.rejected;
    lock.unlock();
    job.promise.set_value(std::move(response));
    return future;
  }
  queue_.emplace_back(std::move(job));
  lock.unlock();
  cv_.notify_one();
  return future;
}

std::future<CountResponse> MiningService::submit(CountRequest request) {
  CountJob job{std::move(request), {}, Clock::now(), 0};
  job.batch = MiningSession::batch_key(job.request);
  std::future<CountResponse> future = job.promise.get_future();
  std::unique_lock lock(mutex_);
  ++stats_.submitted;
  if (stopping_ || queue_.size() >= options_.max_queue) {
    CountResponse response;
    response.rejection =
        stopping_ ? Rejection{ErrorCode::kShutdown, "service is stopping"}
                  : Rejection{ErrorCode::kQueueFull,
                              "queue depth " + std::to_string(queue_.size()) +
                                  " at capacity " + std::to_string(options_.max_queue) +
                                  " — retry later or raise ServiceOptions.max_queue"};
    ++stats_.rejected;
    lock.unlock();
    job.promise.set_value(std::move(response));
    return future;
  }
  queue_.emplace_back(std::move(job));
  lock.unlock();
  cv_.notify_one();
  return future;
}

void MiningService::resume() {
  {
    std::lock_guard lock(mutex_);
    paused_ = false;
  }
  cv_.notify_all();
}

void MiningService::stop() {
  std::deque<Job> drained;
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
    paused_ = false;
    drained.swap(queue_);
    stats_.rejected += drained.size();
  }
  cv_.notify_all();
  for (Job& job : drained) {
    if (auto* mine = std::get_if<MineJob>(&job)) {
      MineResponse response;
      response.rejection = {ErrorCode::kShutdown, "service stopped before the request ran"};
      mine->promise.set_value(std::move(response));
    } else {
      auto& count = std::get<CountJob>(job);
      CountResponse response;
      response.rejection = {ErrorCode::kShutdown, "service stopped before the request ran"};
      count.promise.set_value(std::move(response));
    }
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ServiceStats MiningService::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t MiningService::queue_depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

void MiningService::worker_loop() {
  // Each worker owns its backend so counting really runs in parallel; built
  // lazily on the first job so spinning up a large idle pool stays cheap.
  std::unique_ptr<core::CountingBackend> backend;

  for (;;) {
    std::unique_lock lock(mutex_);
    cv_.wait(lock, [this] { return stopping_ || (!paused_ && !queue_.empty()); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }

    Job job = std::move(queue_.front());
    queue_.pop_front();

    if (auto* count = std::get_if<CountJob>(&job)) {
      // Drain compatible queued count work into one backend call.
      std::vector<CountJob> batch;
      batch.push_back(std::move(*count));
      const std::uint64_t key = batch.front().batch;
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < options_.max_batch;) {
        auto* other = std::get_if<CountJob>(&*it);
        if (other != nullptr && other->batch == key) {
          batch.push_back(std::move(*other));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      lock.unlock();
      if (!backend) backend = session_->new_backend();
      serve_counts(std::move(batch), *backend);
    } else {
      lock.unlock();
      if (!backend) backend = session_->new_backend();
      serve_mine(std::move(std::get<MineJob>(job)), *backend);
    }
  }
}

void MiningService::serve_mine(MineJob job, core::CountingBackend& backend) {
  const double queue_ms = since_ms(job.submitted);
  MineResponse response = session_->mine_with(job.request, backend);
  response.timing.queue_ms = queue_ms;
  {
    std::lock_guard lock(mutex_);
    record(response.disposition);
  }
  job.promise.set_value(std::move(response));
}

void MiningService::serve_counts(std::vector<CountJob> jobs, core::CountingBackend& backend) {
  std::vector<CountRequest> requests;
  requests.reserve(jobs.size());
  for (CountJob& job : jobs) requests.push_back(std::move(job.request));

  std::vector<CountResponse> responses = session_->count_batch_with(requests, backend);

  {
    std::lock_guard lock(mutex_);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      record(responses[i].disposition);
      if (responses[i].batched_with > 0) ++stats_.batched;
    }
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    responses[i].timing.queue_ms = since_ms(jobs[i].submitted);
    jobs[i].promise.set_value(std::move(responses[i]));
  }
}

}  // namespace gm::service
